// Tests for the selection strategies: MES, MES-A, SW-MES and the §5.3
// baselines, on synthetic matrices with controlled reward structure.

#include <gtest/gtest.h>

#include <cmath>

#include "core/baselines.h"
#include "core/engine.h"
#include "core/mes.h"
#include "core/mes_b.h"
#include "test_util.h"

namespace vqe {
namespace {

using test::SimpleTwoModelMatrix;
using test::SyntheticMatrix;

EngineOptions DefaultEngine() {
  EngineOptions opt;
  opt.sc = ScoringFunction{0.5, 0.5};
  return opt;
}

// Three-model matrix: best arm is the singleton {M0}; ensembles cost more
// for marginal AP; arm {M1,M2} is mediocre.
FrameMatrix ThreeModelMatrix(size_t frames, uint64_t seed = 1,
                             double noise = 0.05) {
  //                   mask:  -    1     2     3     4     5     6     7
  return SyntheticMatrix(3, frames,
                         {0.0, 0.85, 0.40, 0.87, 0.30, 0.88, 0.50, 0.90},
                         {10.0, 10.0, 10.0}, false, noise, seed);
}

// ------------------------------------------------------------------- MES --

TEST(MesTest, InitializationSelectsFullPool) {
  MesStrategy mes({/*gamma=*/5});
  StrategyContext ctx;
  ctx.num_models = 3;
  mes.BeginVideo(ctx);
  for (size_t t = 0; t < 5; ++t) {
    EXPECT_EQ(mes.Select(t), FullEnsemble(3));
  }
}

TEST(MesTest, SubsetUpdatesCoverAllArmsAfterInit) {
  const FrameMatrix matrix = ThreeModelMatrix(20);
  MesStrategy mes({/*gamma=*/4});
  const auto run = RunStrategy(matrix, &mes, DefaultEngine());
  ASSERT_TRUE(run.ok());
  for (EnsembleId s = 1; s <= 7; ++s) {
    EXPECT_GE(mes.stats().Count(s), 4u) << "arm " << s;
  }
}

TEST(MesTest, ConvergesToBestArm) {
  const FrameMatrix matrix = ThreeModelMatrix(3000, /*seed=*/3);
  MesStrategy mes({/*gamma=*/5});
  const auto run = RunStrategy(matrix, &mes, DefaultEngine());
  ASSERT_TRUE(run.ok());
  // Best arm by score: {M0} (AP 0.85, one model's cost). In the second half
  // of a long run MES should mostly select it.
  uint64_t best_count = run->selection_counts[1];
  uint64_t total = 0;
  for (uint64_t c : run->selection_counts) total += c;
  EXPECT_GT(best_count, total / 2);
}

TEST(MesTest, RegretSublinear) {
  // Average per-frame regret should shrink with horizon (O(log n / n)).
  MesStrategy mes({/*gamma=*/5});
  const FrameMatrix short_m = ThreeModelMatrix(300, 7);
  const FrameMatrix long_m = ThreeModelMatrix(6000, 7);
  const auto run_short = RunStrategy(short_m, &mes, DefaultEngine());
  MesStrategy mes2({/*gamma=*/5});
  const auto run_long = RunStrategy(long_m, &mes2, DefaultEngine());
  ASSERT_TRUE(run_short.ok());
  ASSERT_TRUE(run_long.ok());
  const double per_frame_short = run_short->regret / 300.0;
  const double per_frame_long = run_long->regret / 6000.0;
  EXPECT_LT(per_frame_long, per_frame_short);
}

TEST(MesTest, BeatsRandomAndBruteForce) {
  const FrameMatrix matrix = ThreeModelMatrix(2000, 11);
  MesStrategy mes({/*gamma=*/5});
  RandomStrategy rand;
  BruteForceStrategy bf;
  const auto run_mes = RunStrategy(matrix, &mes, DefaultEngine());
  const auto run_rand = RunStrategy(matrix, &rand, DefaultEngine());
  const auto run_bf = RunStrategy(matrix, &bf, DefaultEngine());
  ASSERT_TRUE(run_mes.ok());
  EXPECT_GT(run_mes->s_sum, run_rand->s_sum);
  EXPECT_GT(run_mes->s_sum, run_bf->s_sum);
}

TEST(MesTest, NameReflectsAblation) {
  EXPECT_EQ(MesStrategy(MesOptions{}).name(), "MES");
  MesOptions ablated;
  ablated.subset_updates = false;
  EXPECT_EQ(MesStrategy(ablated).name(), "MES-A");
}

TEST(MesTest, AblationLearnsSlower) {
  // MES-A observes ~1 arm per frame instead of 2^|S|-1; with equal horizon
  // its regret should be no better, typically clearly worse.
  double mes_total = 0.0;
  double mes_a_total = 0.0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    const FrameMatrix matrix = ThreeModelMatrix(1200, seed);
    MesStrategy mes({/*gamma=*/5});
    MesOptions opt_a;
    opt_a.gamma = 5;
    opt_a.subset_updates = false;
    MesStrategy mes_a(opt_a);
    mes_total += RunStrategy(matrix, &mes, DefaultEngine())->s_sum;
    mes_a_total += RunStrategy(matrix, &mes_a, DefaultEngine())->s_sum;
  }
  EXPECT_GT(mes_total, mes_a_total);
}

TEST(MesOptionsTest, Validation) {
  MesOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.gamma = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = MesOptions{};
  o.exploration_scale = 0.0;
  EXPECT_FALSE(o.Validate().ok());
}

// ---------------------------------------------------------------- SW-MES --

TEST(SwMesTest, OptionsValidation) {
  SwMesOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.window = 1;
  EXPECT_FALSE(o.Validate().ok());
  o = SwMesOptions{};
  o.exploration_scale = -1;
  EXPECT_FALSE(o.Validate().ok());
  o = SwMesOptions{};
  o.gamma = 0;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(SwMesTest, AdaptsToAbruptDrift) {
  // Arm profile flips at the midpoint: {M0} is best first, then its
  // complement {M1,M2}. SW-MES must beat cumulative MES here.
  double sw_total = 0.0;
  double mes_total = 0.0;
  for (uint64_t seed = 0; seed < 4; ++seed) {
    const FrameMatrix matrix = SyntheticMatrix(
        3, 4000, {0.0, 0.9, 0.25, 0.5, 0.25, 0.5, 0.3, 0.55},
        {10.0, 10.0, 10.0}, /*drift_flip=*/true, 0.05, seed);
    SwMesOptions sw_opt;
    sw_opt.window = 300;
    sw_opt.exploration_scale = 0.1;
    SwMesStrategy sw(sw_opt);
    MesStrategy mes({/*gamma=*/5});
    sw_total += RunStrategy(matrix, &sw, DefaultEngine())->s_sum;
    mes_total += RunStrategy(matrix, &mes, DefaultEngine())->s_sum;
  }
  EXPECT_GT(sw_total, mes_total);
}

TEST(SwMesTest, WindowStatsStayBounded) {
  const FrameMatrix matrix = ThreeModelMatrix(500);
  SwMesOptions opt;
  opt.window = 50;
  SwMesStrategy sw(opt);
  const auto run = RunStrategy(matrix, &sw, DefaultEngine());
  ASSERT_TRUE(run.ok());
  EXPECT_LE(sw.stats().FramesInWindow(), 50u);
  for (EnsembleId s = 1; s <= 7; ++s) {
    EXPECT_LE(sw.stats().Count(s), 50u);
  }
}

TEST(SwMesTest, TheoreticalWindowFormula) {
  // λ = sqrt(n log n / ξ), clamped.
  EXPECT_EQ(TheoreticalWindow(0, 3), 2u);
  EXPECT_EQ(TheoreticalWindow(10000, 0), 10000u);  // no drift: no forgetting
  const size_t w = TheoreticalWindow(10000, 10);
  const double expected = std::sqrt(10000.0 * std::log(10000.0) / 10.0);
  EXPECT_NEAR(static_cast<double>(w), expected, 1.0);
  EXPECT_EQ(TheoreticalWindow(100, 1000), 16u);  // clamped from below
}

// ----------------------------------------------------------------- MES-B --

TEST(MesBTest, OptionsValidation) {
  MesBOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.gamma = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = MesBOptions{};
  o.exploration_scale = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = MesBOptions{};
  o.min_cost = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = MesBOptions{};
  o.min_cost = 1.5;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(MesBTest, PrefersEfficientArmsUnderBudget) {
  // Arm {M0} (mask 1): score 0.8, cheap. Arm {M0,M1,M2} (mask 7): score
  // 0.9, 3x the cost. Per unit budget, mask 1 wins; MES-B must concentrate
  // there while plain MES (per-frame optimal) may prefer mask 7.
  const FrameMatrix matrix = SyntheticMatrix(
      3, 4000, {0.0, 0.80, 0.40, 0.82, 0.40, 0.82, 0.55, 0.90},
      {10.0, 10.0, 10.0}, false, 0.03, 5);
  EngineOptions opt = DefaultEngine();
  opt.budget_ms = 8000.0;  // ~700 cheap frames or ~260 expensive ones

  MesBStrategy mes_b;
  MesStrategy mes({/*gamma=*/10});
  const auto run_b = RunStrategy(matrix, &mes_b, opt);
  const auto run_plain = RunStrategy(matrix, &mes, opt);
  ASSERT_TRUE(run_b.ok() && run_plain.ok());
  // The ratio rule processes more frames and collects a higher total.
  EXPECT_GT(run_b->frames_processed, run_plain->frames_processed);
  EXPECT_GT(run_b->s_sum, run_plain->s_sum);
  // The cheap efficient arm dominates MES-B's selections.
  EXPECT_GT(run_b->selection_counts[1], run_b->frames_processed / 2);
}

TEST(MesBTest, TracksMeanCosts) {
  const FrameMatrix matrix = SimpleTwoModelMatrix(100, 3, 0.0);
  MesBStrategy mes_b;
  const auto run = RunStrategy(matrix, &mes_b, DefaultEngine());
  ASSERT_TRUE(run.ok());
  // Arm 3 (both models) costs ~2x arm 1.
  EXPECT_GT(mes_b.MeanCost(3), 1.8 * mes_b.MeanCost(1));
  EXPECT_GT(mes_b.MeanCost(1), 0.0);
}

TEST(MesBTest, UnbudgetedStillConvergesToGoodArms) {
  const FrameMatrix matrix = ThreeModelMatrix(2000, 9);
  MesBStrategy mes_b;
  RandomStrategy rand;
  const auto run_b = RunStrategy(matrix, &mes_b, DefaultEngine());
  const auto run_rand = RunStrategy(matrix, &rand, DefaultEngine());
  ASSERT_TRUE(run_b.ok());
  EXPECT_GT(run_b->s_sum, run_rand->s_sum);
}

// -------------------------------------------------------------- baselines --

TEST(BaselinesTest, OptSelectsPerFrameArgmax) {
  const FrameMatrix matrix = ThreeModelMatrix(100);
  OptStrategy opt;
  const auto run = RunStrategy(matrix, &opt, DefaultEngine());
  ASSERT_TRUE(run.ok());
  EXPECT_DOUBLE_EQ(run->regret, 0.0);
}

TEST(BaselinesTest, SglPicksBestAverageSingleton) {
  const FrameMatrix matrix = ThreeModelMatrix(200);
  SingleBestStrategy sgl;
  const auto run = RunStrategy(matrix, &sgl, DefaultEngine());
  ASSERT_TRUE(run.ok());
  // {M0} has the highest singleton AP (0.85): all selections go there.
  EXPECT_EQ(run->selection_counts[1], 200u);
}

TEST(BaselinesTest, RandSelectsBroadly) {
  const FrameMatrix matrix = ThreeModelMatrix(2000);
  RandomStrategy rand;
  const auto run = RunStrategy(matrix, &rand, DefaultEngine());
  ASSERT_TRUE(run.ok());
  size_t arms_used = 0;
  for (EnsembleId s = 1; s <= 7; ++s) {
    if (run->selection_counts[s] > 0) ++arms_used;
    // Uniform over 7 arms: each within a loose band of 2000/7.
    EXPECT_GT(run->selection_counts[s], 150u);
    EXPECT_LT(run->selection_counts[s], 450u);
  }
  EXPECT_EQ(arms_used, 7u);
}

TEST(BaselinesTest, RandIsSeedDeterministic) {
  const FrameMatrix matrix = ThreeModelMatrix(50);
  RandomStrategy a, b;
  EngineOptions opt = DefaultEngine();
  opt.strategy_seed = 99;
  const auto run_a = RunStrategy(matrix, &a, opt);
  const auto run_b = RunStrategy(matrix, &b, opt);
  ASSERT_TRUE(run_a.ok());
  EXPECT_EQ(run_a->selection_counts, run_b->selection_counts);
}

TEST(BaselinesTest, EfExploresThenCommits) {
  const FrameMatrix matrix = ThreeModelMatrix(1000, /*seed=*/5,
                                              /*noise=*/0.01);
  ExploreFirstStrategy ef(/*frames_per_arm=*/2);
  const auto run = RunStrategy(matrix, &ef, DefaultEngine());
  ASSERT_TRUE(run.ok());
  // Exploration: 7 arms x 2 frames = 14; each arm selected >= 2 times.
  for (EnsembleId s = 1; s <= 7; ++s) {
    EXPECT_GE(run->selection_counts[s], 2u);
  }
  // With tiny noise EF commits to the true best arm {M0}.
  EXPECT_EQ(run->selection_counts[1], 1000u - 12u);
}

TEST(BaselinesTest, EfHighNoiseMiscommits) {
  // With large estimation noise EF's 1-pull estimates commit to a
  // suboptimal arm in at least some seeds — the instability the paper's
  // whiskers show (Fig. 4).
  int miscommits = 0;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    const FrameMatrix matrix = ThreeModelMatrix(300, seed, /*noise=*/0.3);
    ExploreFirstStrategy ef(/*frames_per_arm=*/1);
    const auto run = RunStrategy(matrix, &ef, DefaultEngine());
    ASSERT_TRUE(run.ok());
    // Committed arm = argmax of selection counts after exploration.
    EnsembleId committed = 1;
    uint64_t best = 0;
    for (EnsembleId s = 1; s <= 7; ++s) {
      if (run->selection_counts[s] > best) {
        best = run->selection_counts[s];
        committed = s;
      }
    }
    if (committed != 1) ++miscommits;
  }
  EXPECT_GT(miscommits, 0);
}

TEST(BaselinesTest, StrategiesAreReusableAcrossRuns) {
  const FrameMatrix a = ThreeModelMatrix(300, 1);
  const FrameMatrix b = ThreeModelMatrix(300, 2);
  MesStrategy mes({/*gamma=*/5});
  const auto run1 = RunStrategy(a, &mes, DefaultEngine());
  const auto run2 = RunStrategy(b, &mes, DefaultEngine());
  const auto run1_again = RunStrategy(a, &mes, DefaultEngine());
  ASSERT_TRUE(run1.ok() && run2.ok() && run1_again.ok());
  // BeginVideo resets state: same matrix gives the same outcome.
  EXPECT_DOUBLE_EQ(run1->s_sum, run1_again->s_sum);
}

}  // namespace
}  // namespace vqe
