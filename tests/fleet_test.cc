// Fleet-layer chaos matrix for ISSUE 8: sharded serving with live session
// migration, shard failover and deterministic chaos injection. The load-
// bearing invariant is bit-identity — every stream that completes, whether
// it ran on one shard, migrated mid-video, or was restarted after a shard
// crash or a corrupted migration payload, must produce a RunResult
// bit-identical to its solo RunStrategy run. On top of that: the hostile
// payload sweeps (every bit flip and truncation of a migration envelope is
// rejected with DataLoss before any state moves), cross-session identity
// rejection (FailedPrecondition, target untouched), the fleet admission
// front door, and skew rebalancing.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/baselines.h"
#include "core/ducb.h"
#include "core/engine.h"
#include "core/experiment.h"
#include "core/lazy_frame_evaluator.h"
#include "core/mes.h"
#include "core/mes_b.h"
#include "fleet/chaos.h"
#include "fleet/migration.h"
#include "fleet/sharded_server.h"
#include "models/model_zoo.h"
#include "runtime/fault_injection.h"
#include "serve/scheduler.h"
#include "serve/stream_session.h"
#include "sim/dataset.h"

namespace vqe {
namespace {

DetectorPool MakePool(int m) {
  const std::vector<std::string> names = {
      "yolov7-tiny@clear", "yolov7-tiny@night", "yolov7-tiny@rainy",
      "yolov7@clear",      "yolov7-micro@clear"};
  std::vector<DetectorProfile> profiles;
  for (int i = 0; i < m; ++i) {
    profiles.push_back(
        std::move(ParseDetectorName(names[static_cast<size_t>(i)])).value());
  }
  return std::move(BuildPool(profiles)).value();
}

Video MakeVideo(double scene_scale, uint64_t seed) {
  const DatasetSpec* spec = *DatasetCatalog::Default().Find("nusc-night");
  SampleOptions sample;
  sample.scene_scale = scene_scale;
  sample.seed = seed;
  return std::move(SampleVideo(*spec, sample)).value();
}

std::unique_ptr<SelectionStrategy> MakeStrategy(const std::string& kind) {
  if (kind == "MES") {
    MesOptions o;
    o.gamma = 2;
    return std::make_unique<MesStrategy>(o);
  }
  if (kind == "MES-B") {
    MesBOptions o;
    o.gamma = 2;
    return std::make_unique<MesBStrategy>(o);
  }
  if (kind == "SW-MES") {
    SwMesOptions o;
    o.gamma = 2;
    o.window = 8;
    return std::make_unique<SwMesStrategy>(o);
  }
  if (kind == "D-MES") {
    DucbOptions o;
    o.gamma = 2;
    return std::make_unique<DucbMesStrategy>(o);
  }
  return std::make_unique<RandomStrategy>();
}

/// The serve_test fault mix: a scripted mid-video outage on model 0,
/// random per-attempt errors on model 1.
std::vector<FaultScript> MakeScripts(size_t m) {
  std::vector<FaultScript> scripts(m);
  scripts[0].bursts.push_back({2, 8, FaultKind::kError, -1});
  if (m > 1) scripts[1].error_rate = 0.2;
  return scripts;
}

struct StreamSpec {
  std::string name;
  std::string strategy = "MES";
  PriorityClass priority = PriorityClass::kStandard;
  uint64_t trial_seed = 9;
  uint64_t strategy_seed = 42;
};

EngineOptions MakeEngine(const StreamSpec& spec) {
  EngineOptions e;
  e.strategy_seed = spec.strategy_seed;
  e.compute_regret = false;
  return e;
}

RunResult SoloBaseline(const Video& video, const DetectorPool& base,
                       const StreamSpec& spec, bool lazy, bool faults) {
  const DetectorPool* pool = &base;
  DetectorPool faulty;
  if (faults) {
    faulty =
        std::move(ApplyFaultScripts(base, MakeScripts(base.size()))).value();
    pool = &faulty;
  }
  std::unique_ptr<SelectionStrategy> strategy = MakeStrategy(spec.strategy);
  const EngineOptions engine = MakeEngine(spec);
  if (lazy) {
    auto source = LazyFrameEvaluator::Create(video, *pool, spec.trial_seed, {});
    EXPECT_TRUE(source.ok()) << source.status().ToString();
    return std::move(RunStrategy(**source, strategy.get(), engine)).value();
  }
  auto matrix = BuildFrameMatrix(video, *pool, spec.trial_seed, {});
  EXPECT_TRUE(matrix.ok()) << matrix.status().ToString();
  return std::move(RunStrategy(*matrix, strategy.get(), engine)).value();
}

/// Result-returning session builder — safe to call from shard threads
/// (no gtest assertions), which is exactly what SessionFactory requires.
Result<std::unique_ptr<StreamSession>> BuildSession(
    const Video& video, const DetectorPool& base, const StreamSpec& spec,
    bool lazy, bool faults) {
  std::vector<std::unique_ptr<DetectorPool>> owned;
  const DetectorPool* pool = &base;
  if (faults) {
    VQE_ASSIGN_OR_RETURN(DetectorPool faulty,
                         ApplyFaultScripts(*pool, MakeScripts(pool->size())));
    auto holder = std::make_unique<DetectorPool>(std::move(faulty));
    pool = holder.get();
    owned.push_back(std::move(holder));
  }
  std::unique_ptr<EvaluationSource> source;
  if (lazy) {
    VQE_ASSIGN_OR_RETURN(
        source, LazyFrameEvaluator::Create(video, *pool, spec.trial_seed, {}));
  } else {
    VQE_ASSIGN_OR_RETURN(FrameMatrix matrix,
                         BuildFrameMatrix(video, *pool, spec.trial_seed, {}));
    source = std::make_unique<OwningMatrixSource>(std::move(matrix));
  }
  StreamSessionConfig cfg;
  cfg.name = spec.name;
  cfg.priority = spec.priority;
  cfg.engine = MakeEngine(spec);
  for (const auto& det : pool->detectors) {
    cfg.model_names.push_back(det->name());
  }
  return StreamSession::Create(std::move(cfg), std::move(source),
                               MakeStrategy(spec.strategy), std::move(owned));
}

SessionFactory MakeFactory(const Video& video, const DetectorPool& base,
                           StreamSpec spec, bool lazy, bool faults) {
  return [&video, &base, spec, lazy, faults] {
    return BuildSession(video, base, spec, lazy, faults);
  };
}

void ExpectSameRun(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.s_sum, b.s_sum);
  EXPECT_EQ(a.avg_true_ap, b.avg_true_ap);
  EXPECT_EQ(a.avg_norm_cost, b.avg_norm_cost);
  EXPECT_EQ(a.frames_processed, b.frames_processed);
  EXPECT_EQ(a.regret_available, b.regret_available);
  EXPECT_EQ(a.regret, b.regret);
  EXPECT_EQ(a.charged_cost_ms, b.charged_cost_ms);
  EXPECT_EQ(a.breakdown.detector_ms, b.breakdown.detector_ms);
  EXPECT_EQ(a.breakdown.reference_ms, b.breakdown.reference_ms);
  EXPECT_EQ(a.breakdown.ensembling_ms, b.breakdown.ensembling_ms);
  EXPECT_EQ(a.breakdown.fault_ms, b.breakdown.fault_ms);
  EXPECT_EQ(a.selection_counts, b.selection_counts);
  EXPECT_EQ(a.cost_curve, b.cost_curve);
  EXPECT_EQ(a.fallback_frames, b.fallback_frames);
  EXPECT_EQ(a.failed_frames, b.failed_frames);
  ASSERT_EQ(a.model_availability.size(), b.model_availability.size());
  for (size_t i = 0; i < a.model_availability.size(); ++i) {
    EXPECT_EQ(a.model_availability[i].frames_selected,
              b.model_availability[i].frames_selected);
    EXPECT_EQ(a.model_availability[i].frames_failed,
              b.model_availability[i].frames_failed);
    EXPECT_EQ(a.model_availability[i].breaker_opens,
              b.model_availability[i].breaker_opens);
    EXPECT_EQ(a.model_availability[i].fault_ms,
              b.model_availability[i].fault_ms);
  }
}

/// Shard a name routes to under `num_shards`.
int HomeShard(const std::string& name, int num_shards) {
  return static_cast<int>(FleetRouteHash(name) %
                          static_cast<uint64_t>(num_shards));
}

/// A stream name with the given home shard ("<prefix><k>" search).
std::string NameOnShard(const std::string& prefix, int shard,
                        int num_shards) {
  for (int k = 0; k < 1000; ++k) {
    const std::string name = prefix + std::to_string(k);
    if (HomeShard(name, num_shards) == shard) return name;
  }
  ADD_FAILURE() << "no name found on shard " << shard;
  return prefix;
}

/// Fine-grained rounds so chaos events land mid-video: ~1 frame per round.
ServeOptions FineGrainedShard(int workers) {
  ServeOptions shard;
  shard.quantum_ms = 10.0;
  shard.max_frames_per_round = 2;
  shard.parallelism = workers;
  return shard;
}

// ---------------------------------------------------------------------------
// Migration payload wire format (satellite: hostile payload sweeps).

MigrationPayload SamplePayload(const std::vector<uint8_t>& snapshot) {
  MigrationPayload payload;
  payload.stream_name = "stream-7";
  payload.source_shard = 3;
  payload.sequence = 99;
  payload.carry.frames = 17;
  payload.carry.rounds_active = 5;
  payload.engine_snapshot = snapshot;
  return payload;
}

TEST(MigrationPayloadTest, RoundTrip) {
  const std::vector<uint8_t> snapshot = {1, 2, 3, 250, 0, 7};
  const std::vector<uint8_t> bytes =
      EncodeMigrationPayload(SamplePayload(snapshot));
  const MigrationPayload decoded =
      std::move(DecodeMigrationPayload(bytes)).value();
  EXPECT_EQ(decoded.stream_name, "stream-7");
  EXPECT_EQ(decoded.source_shard, 3);
  EXPECT_EQ(decoded.sequence, 99u);
  EXPECT_EQ(decoded.carry.frames, 17u);
  EXPECT_EQ(decoded.carry.rounds_active, 5u);
  EXPECT_EQ(decoded.engine_snapshot, snapshot);
}

TEST(MigrationPayloadTest, EveryBitFlipIsRejected) {
  const std::vector<uint8_t> bytes =
      EncodeMigrationPayload(SamplePayload({9, 8, 7, 6, 5}));
  for (size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> bad = bytes;
      bad[i] ^= static_cast<uint8_t>(1u << bit);
      const auto decoded = DecodeMigrationPayload(bad);
      EXPECT_FALSE(decoded.ok())
          << "flip byte " << i << " bit " << bit << " was accepted";
    }
  }
}

TEST(MigrationPayloadTest, EveryTruncationIsDataLoss) {
  const std::vector<uint8_t> bytes =
      EncodeMigrationPayload(SamplePayload({1, 2, 3}));
  for (size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<uint8_t> bad(bytes.begin(),
                                   bytes.begin() + static_cast<long>(len));
    const auto decoded = DecodeMigrationPayload(bad);
    ASSERT_FALSE(decoded.ok()) << "prefix of " << len << " bytes accepted";
    EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
  }
}

// ---------------------------------------------------------------------------
// Session-level implant rejection (satellite: state untouched on reject).

TEST(SessionImplantTest, CorruptSnapshotRejectedAndTargetUnharmed) {
  const DetectorPool pool = MakePool(3);
  const Video video = MakeVideo(0.02, 17);
  const StreamSpec spec{"victim", "MES", PriorityClass::kStandard, 9, 42};

  auto source =
      std::move(BuildSession(video, pool, spec, /*lazy=*/false, false))
          .value();
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(source->StepFrame().ok());
  std::vector<uint8_t> snapshot = std::move(source->ExportState()).value();

  // Every 3rd byte flipped (the full sweep lives at the payload layer; here
  // we pin that a damaged *engine* snapshot is DataLoss and leaves the
  // target in its pristine state).
  auto target =
      std::move(BuildSession(video, pool, spec, /*lazy=*/false, false))
          .value();
  for (size_t i = 0; i < snapshot.size(); i += 3) {
    std::vector<uint8_t> bad = snapshot;
    bad[i] ^= 0x10;
    const Status status = target->ImplantState(bad);
    ASSERT_FALSE(status.ok()) << "flip at byte " << i << " was accepted";
    EXPECT_EQ(status.code(), StatusCode::kDataLoss);
    EXPECT_EQ(target->next_frame(), 0u) << "rejected implant moved state";
  }

  // The pristine target still runs its whole solo video bit-identically.
  while (!target->done()) ASSERT_TRUE(target->StepFrame().ok());
  ExpectSameRun(SoloBaseline(video, pool, spec, false, false),
                std::move(target->Finish()).value());
}

TEST(SessionImplantTest, CrossSessionFingerprintIsFailedPrecondition) {
  const DetectorPool pool = MakePool(3);
  const Video video = MakeVideo(0.02, 17);
  const StreamSpec mes{"a", "MES", PriorityClass::kStandard, 9, 42};
  const StreamSpec sw{"b", "SW-MES", PriorityClass::kStandard, 9, 42};
  const StreamSpec reseeded{"c", "MES", PriorityClass::kStandard, 9, 43};

  auto source =
      std::move(BuildSession(video, pool, mes, /*lazy=*/false, false)).value();
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(source->StepFrame().ok());
  const std::vector<uint8_t> snapshot =
      std::move(source->ExportState()).value();

  for (const StreamSpec* other : {&sw, &reseeded}) {
    auto target =
        std::move(BuildSession(video, pool, *other, /*lazy=*/false, false))
            .value();
    const Status status = target->ImplantState(snapshot);
    EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition)
        << status.ToString();
    EXPECT_EQ(target->next_frame(), 0u) << "rejected implant moved state";
  }
}

// ---------------------------------------------------------------------------
// Scheduler-level extract/implant: a stitched run is one run.

TEST(SchedulerMigrationTest, ExtractImplantStitchesOneBitIdenticalRun) {
  const DetectorPool pool = MakePool(3);
  const Video video = MakeVideo(0.02, 17);
  const StreamSpec spec{"mover", "MES-B", PriorityClass::kStandard, 9, 42};

  ServeOptions opt = FineGrainedShard(/*workers=*/1);
  StreamScheduler source_shard(opt);
  StreamScheduler target_shard(opt);
  ASSERT_TRUE(
      source_shard
          .Submit(std::move(BuildSession(video, pool, spec, true, true))
                      .value())
          .ok());

  // A few fine-grained rounds: the session is mid-video.
  ASSERT_TRUE(source_shard.BeginServing().ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(std::move(source_shard.RunRound()).value());
  }
  auto extracted = std::move(source_shard.ExtractSession("mover")).value();
  ASSERT_GT(extracted.carry.frames, 0u);
  ASSERT_FALSE(extracted.session->done());
  EXPECT_EQ(source_shard.active_sessions(), 0);
  EXPECT_EQ(source_shard.ExtractSession("mover").status().code(),
            StatusCode::kNotFound);

  // Through the wire: export -> envelope -> decode -> fresh shell -> overlay.
  MigrationPayload payload;
  payload.stream_name = spec.name;
  payload.carry = extracted.carry;
  payload.engine_snapshot = std::move(extracted.session->ExportState()).value();
  const MigrationPayload arrived =
      std::move(DecodeMigrationPayload(EncodeMigrationPayload(payload)))
          .value();
  auto implanted =
      std::move(BuildSession(video, pool, spec, true, true)).value();
  ASSERT_TRUE(implanted->ImplantState(arrived.engine_snapshot).ok());
  ASSERT_TRUE(
      target_shard.ImplantSession(std::move(implanted), arrived.carry).ok());

  const ServeReport report =
      std::move(target_shard.RunUntilDrained()).value();
  ASSERT_EQ(report.streams.size(), 1u);
  const StreamReport& sr = report.streams[0];
  ASSERT_TRUE(sr.status.ok()) << sr.status.ToString();
  EXPECT_EQ(sr.frames, video.size()) << "carried frames must continue";
  ExpectSameRun(SoloBaseline(video, pool, spec, true, true), sr.result);
}

// ---------------------------------------------------------------------------
// Fleet options / chaos script validation.

TEST(FleetOptionsTest, Validation) {
  FleetOptions ok;
  EXPECT_TRUE(ok.Validate().ok());
  FleetOptions bad = ok;
  bad.num_shards = 0;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
  bad = ok;
  bad.max_sessions = 0;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
  bad = ok;
  bad.max_restarts = -1;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
  bad = ok;
  bad.shard.quantum_ms = 0.0;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(ChaosScriptTest, Validation) {
  ChaosScript script;
  EXPECT_TRUE(script.Validate(2).ok());
  ChaosEvent kill;
  kill.kind = ChaosEvent::Kind::kKillShard;
  kill.shard = 2;
  script.events = {kill};
  EXPECT_EQ(script.Validate(2).code(), StatusCode::kInvalidArgument);
  ChaosEvent migrate;
  migrate.kind = ChaosEvent::Kind::kMigrate;
  migrate.shard = 0;
  migrate.target_shard = 0;
  migrate.stream = "s";
  script.events = {migrate};
  EXPECT_EQ(script.Validate(2).code(), StatusCode::kInvalidArgument);
  migrate.target_shard = 1;
  migrate.stream.clear();
  script.events = {migrate};
  EXPECT_EQ(script.Validate(2).code(), StatusCode::kInvalidArgument);
  migrate.stream = "s";
  script.events = {migrate};
  EXPECT_TRUE(script.Validate(2).ok());
}

// ---------------------------------------------------------------------------
// Fleet serving.

TEST(ShardedServerTest, MultiShardFleetMatchesSoloAcrossBackendsAndWorkers) {
  const DetectorPool pool = MakePool(3);
  const Video video = MakeVideo(0.02, 17);
  const std::vector<StreamSpec> specs = {
      {"f0", "MES", PriorityClass::kInteractive, 9, 42},
      {"f1", "MES-B", PriorityClass::kStandard, 10, 43},
      {"f2", "SW-MES", PriorityClass::kBatch, 11, 44},
      {"f3", "D-MES", PriorityClass::kStandard, 12, 45},
      {"f4", "RAND", PriorityClass::kStandard, 13, 46},
      {"f5", "MES", PriorityClass::kBatch, 14, 47},
  };
  for (const bool lazy : {false, true}) {
    for (const int workers : {1, 4}) {
      for (const int num_shards : {2, 4}) {
        SCOPED_TRACE((lazy ? "lazy" : "eager") + std::string("/w") +
                     std::to_string(workers) + "/shards" +
                     std::to_string(num_shards));
        FleetOptions opt;
        opt.num_shards = num_shards;
        opt.shard = FineGrainedShard(workers);
        ShardedServer server(opt);
        std::vector<FleetStreamSpec> fleet;
        for (const StreamSpec& spec : specs) {
          fleet.push_back(
              {spec.name, MakeFactory(video, pool, spec, lazy, true)});
        }
        const FleetReport report =
            std::move(server.Run(std::move(fleet))).value();
        EXPECT_EQ(report.stats.admitted, specs.size());
        EXPECT_EQ(report.stats.shed, 0u);
        EXPECT_EQ(report.stats.completed_streams, specs.size());
        ASSERT_EQ(report.streams.size(), specs.size());
        for (size_t i = 0; i < specs.size(); ++i) {
          SCOPED_TRACE(specs[i].name);
          const FleetStreamReport& fsr = report.streams[i];
          EXPECT_EQ(fsr.name, specs[i].name);
          ASSERT_TRUE(fsr.report.status.ok())
              << fsr.report.status.ToString();
          ExpectSameRun(SoloBaseline(video, pool, specs[i], lazy, true),
                        fsr.report.result);
        }
      }
    }
  }
}

TEST(ShardedServerTest, FleetFrontDoorShedsBeyondGlobalCap) {
  const DetectorPool pool = MakePool(2);
  const Video video = MakeVideo(0.01, 3);
  FleetOptions opt;
  opt.num_shards = 2;
  opt.max_sessions = 2;
  opt.shard = FineGrainedShard(1);
  ShardedServer server(opt);
  std::vector<FleetStreamSpec> fleet;
  std::vector<StreamSpec> specs;
  for (int i = 0; i < 4; ++i) {
    StreamSpec spec{"shed" + std::to_string(i), "MES",
                    PriorityClass::kStandard, 9, 42};
    specs.push_back(spec);
    fleet.push_back({spec.name, MakeFactory(video, pool, spec, false, false)});
  }
  const FleetReport report = std::move(server.Run(std::move(fleet))).value();
  EXPECT_EQ(report.stats.submitted, 4u);
  EXPECT_EQ(report.stats.admitted, 2u);
  EXPECT_EQ(report.stats.shed, 2u);
  EXPECT_EQ(report.stats.completed_streams, 2u);
  EXPECT_EQ(report.stats.failed_streams, 2u);
  ASSERT_EQ(report.streams.size(), 4u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(report.streams[i].report.status.ok());
    ExpectSameRun(SoloBaseline(video, pool, specs[i], false, false),
                  report.streams[i].report.result);
  }
  for (size_t i = 2; i < 4; ++i) {
    EXPECT_EQ(report.streams[i].report.status.code(),
              StatusCode::kResourceExhausted);
    EXPECT_EQ(report.streams[i].shard, -1);
  }
}

TEST(ShardedServerTest, ScriptedMigrationMovesLiveSessionBitIdentically) {
  const DetectorPool pool = MakePool(3);
  const Video video = MakeVideo(0.02, 17);
  const std::string mover = NameOnShard("mig", 0, 2);
  const StreamSpec spec{mover, "MES", PriorityClass::kStandard, 9, 42};

  FleetOptions opt;
  opt.num_shards = 2;
  opt.shard = FineGrainedShard(1);
  ChaosScript chaos;
  ChaosEvent migrate;
  migrate.kind = ChaosEvent::Kind::kMigrate;
  migrate.at_round = 3;  // fine-grained rounds => mid-video
  migrate.shard = 0;
  migrate.stream = mover;
  migrate.target_shard = 1;
  chaos.events.push_back(migrate);

  ShardedServer server(opt);
  const FleetReport report =
      std::move(server.Run({{mover, MakeFactory(video, pool, spec, true,
                                                true)}},
                           chaos))
          .value();
  EXPECT_EQ(report.stats.migration.attempted, 1u);
  EXPECT_EQ(report.stats.migration.completed, 1u);
  EXPECT_EQ(report.stats.migration.rejected_corrupt, 0u);
  EXPECT_EQ(report.stats.migration.fallback_restarts, 0u);
  ASSERT_EQ(report.streams.size(), 1u);
  const FleetStreamReport& fsr = report.streams[0];
  ASSERT_TRUE(fsr.report.status.ok()) << fsr.report.status.ToString();
  EXPECT_EQ(fsr.shard, 1) << "stream must finish on the migration target";
  EXPECT_EQ(fsr.migrations, 1);
  EXPECT_EQ(fsr.restarts, 0);
  EXPECT_EQ(fsr.report.frames, video.size());
  ExpectSameRun(SoloBaseline(video, pool, spec, true, true),
                fsr.report.result);
}

TEST(ShardedServerTest, CorruptedMigrationIsRejectedAndStreamRestarts) {
  const DetectorPool pool = MakePool(3);
  const Video video = MakeVideo(0.02, 17);
  const std::string mover = NameOnShard("cor", 0, 2);
  const StreamSpec spec{mover, "MES", PriorityClass::kStandard, 9, 42};

  for (const bool truncate : {false, true}) {
    SCOPED_TRACE(truncate ? "truncate" : "bit-flip");
    FleetOptions opt;
    opt.num_shards = 2;
    opt.shard = FineGrainedShard(1);
    ChaosScript chaos;
    ChaosEvent migrate;
    migrate.kind = ChaosEvent::Kind::kMigrate;
    migrate.at_round = 3;
    migrate.shard = 0;
    migrate.stream = mover;
    migrate.target_shard = 1;
    chaos.events.push_back(migrate);
    ChaosEvent damage;
    damage.kind = ChaosEvent::Kind::kCorruptNextMigration;
    damage.shard = 1;  // damages the payload addressed to the target
    damage.flip_byte = 41;
    damage.flip_bit = 5;
    damage.truncate = truncate;
    chaos.events.push_back(damage);

    ShardedServer server(opt);
    const FleetReport report =
        std::move(server.Run({{mover, MakeFactory(video, pool, spec, false,
                                                  true)}},
                             chaos))
            .value();
    EXPECT_EQ(report.stats.migration.attempted, 1u);
    EXPECT_EQ(report.stats.migration.completed, 0u);
    EXPECT_EQ(report.stats.migration.rejected_corrupt, 1u)
        << "a damaged payload must be DataLoss, never an implant";
    EXPECT_EQ(report.stats.migration.fallback_restarts, 1u);
    ASSERT_EQ(report.streams.size(), 1u);
    const FleetStreamReport& fsr = report.streams[0];
    ASSERT_TRUE(fsr.report.status.ok()) << fsr.report.status.ToString();
    EXPECT_EQ(fsr.restarts, 1);
    ExpectSameRun(SoloBaseline(video, pool, spec, false, true),
                  fsr.report.result);
  }
}

TEST(ShardedServerTest, ShardDeathFailsOverAndResultsStayBitIdentical) {
  const DetectorPool pool = MakePool(3);
  const Video video = MakeVideo(0.02, 17);
  // Two streams homed on the doomed shard 0, one safe on shard 1.
  const std::vector<StreamSpec> specs = {
      {NameOnShard("dead-a", 0, 2), "MES", PriorityClass::kStandard, 9, 42},
      {NameOnShard("dead-b", 0, 2), "MES-B", PriorityClass::kStandard, 10,
       43},
      {NameOnShard("safe", 1, 2), "SW-MES", PriorityClass::kStandard, 11,
       44},
  };
  FleetOptions opt;
  opt.num_shards = 2;
  opt.shard = FineGrainedShard(1);
  ChaosScript chaos;
  ChaosEvent kill;
  kill.kind = ChaosEvent::Kind::kKillShard;
  kill.at_round = 4;  // streams are mid-video when the shard dies
  kill.shard = 0;
  chaos.events.push_back(kill);

  ShardedServer server(opt);
  std::vector<FleetStreamSpec> fleet;
  for (const StreamSpec& spec : specs) {
    fleet.push_back({spec.name, MakeFactory(video, pool, spec, true, true)});
  }
  const FleetReport report =
      std::move(server.Run(std::move(fleet), chaos)).value();
  EXPECT_EQ(report.stats.shards_killed, 1);
  // At least one doomed stream was live on shard 0 when it died (its round
  // clock only advances with work); the other may still have been in the
  // shard's inbox, in which case it reroutes via the submit-failure path
  // instead of counting as a failover.
  EXPECT_GE(report.stats.failover_streams, 1u);
  EXPECT_LE(report.stats.failover_streams, 2u);
  EXPECT_EQ(report.stats.completed_streams, specs.size());
  ASSERT_EQ(report.stats.shards.size(), 2u);
  EXPECT_TRUE(report.stats.shards[0].dead);
  EXPECT_FALSE(report.stats.shards[1].dead);
  EXPECT_GT(report.stats.shards[1].stats.frames, 0u);
  ASSERT_EQ(report.streams.size(), specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE(specs[i].name);
    const FleetStreamReport& fsr = report.streams[i];
    ASSERT_TRUE(fsr.report.status.ok()) << fsr.report.status.ToString();
    EXPECT_EQ(fsr.shard, 1) << "only shard 1 survived";
    if (i < 2) EXPECT_EQ(fsr.restarts, 1);
    ExpectSameRun(SoloBaseline(video, pool, specs[i], true, true),
                  fsr.report.result);
  }
}

TEST(ShardedServerTest, SkewRebalancingMigratesOffTheBusiestShard) {
  const DetectorPool pool = MakePool(2);
  const Video video = MakeVideo(0.02, 17);
  // All four streams hash-home to shard 0: without rebalancing shard 1
  // would idle the whole run.
  std::vector<StreamSpec> specs;
  std::vector<std::string> used;
  for (int k = 0; specs.size() < 4 && k < 1000; ++k) {
    const std::string name = "skew" + std::to_string(k);
    if (HomeShard(name, 2) != 0) continue;
    specs.push_back({name, "MES", PriorityClass::kStandard,
                     static_cast<uint64_t>(20 + k),
                     static_cast<uint64_t>(50 + k)});
  }
  ASSERT_EQ(specs.size(), 4u);

  FleetOptions opt;
  opt.num_shards = 2;
  opt.rebalance_threshold = 2;
  opt.shard = FineGrainedShard(1);
  ShardedServer server(opt);
  std::vector<FleetStreamSpec> fleet;
  for (const StreamSpec& spec : specs) {
    fleet.push_back({spec.name, MakeFactory(video, pool, spec, false, false)});
  }
  const FleetReport report =
      std::move(server.Run(std::move(fleet))).value();
  EXPECT_GE(report.stats.migration.attempted, 1u);
  EXPECT_GE(report.stats.migration.completed, 1u);
  EXPECT_EQ(report.stats.completed_streams, specs.size());
  bool any_on_shard_1 = false;
  ASSERT_EQ(report.streams.size(), specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE(specs[i].name);
    const FleetStreamReport& fsr = report.streams[i];
    ASSERT_TRUE(fsr.report.status.ok()) << fsr.report.status.ToString();
    any_on_shard_1 = any_on_shard_1 || fsr.shard == 1;
    ExpectSameRun(SoloBaseline(video, pool, specs[i], false, false),
                  fsr.report.result);
  }
  EXPECT_TRUE(any_on_shard_1) << "rebalancing must spread the skewed load";
}

// ---------------------------------------------------------------------------
// The full chaos matrix: concurrent faults — detector outages, a scripted
// shard crash, a migration, a corrupted payload — across backends and
// worker counts. Every stream must still complete bit-identically.

TEST(ShardedServerTest, ChaosMatrixEveryCompletingStreamIsBitIdentical) {
  const DetectorPool pool = MakePool(3);
  const Video video = MakeVideo(0.02, 17);
  const std::string mover = NameOnShard("cm-mig", 0, 2);
  const std::string doomed = NameOnShard("cm-dead", 1, 2);
  const std::vector<StreamSpec> specs = {
      {mover, "MES", PriorityClass::kStandard, 9, 42},
      {doomed, "MES-B", PriorityClass::kInteractive, 10, 43},
      {NameOnShard("cm-a", 0, 2), "SW-MES", PriorityClass::kBatch, 11, 44},
      {NameOnShard("cm-b", 1, 2), "D-MES", PriorityClass::kStandard, 12, 45},
      {NameOnShard("cm-c", 0, 2), "RAND", PriorityClass::kStandard, 13, 46},
  };

  for (const bool lazy : {false, true}) {
    for (const int workers : {1, 4}) {
      SCOPED_TRACE((lazy ? "lazy" : "eager") + std::string("/w") +
                   std::to_string(workers));
      FleetOptions opt;
      opt.num_shards = 2;
      opt.max_restarts = 3;
      opt.shard = FineGrainedShard(workers);

      ChaosScript chaos;
      ChaosEvent migrate;  // clean migration 0 -> 1, mid-video
      migrate.kind = ChaosEvent::Kind::kMigrate;
      migrate.at_round = 2;
      migrate.shard = 0;
      migrate.stream = mover;
      migrate.target_shard = 1;
      chaos.events.push_back(migrate);
      ChaosEvent damage;  // ...but the payload arrives damaged
      damage.kind = ChaosEvent::Kind::kCorruptNextMigration;
      damage.shard = 1;
      damage.flip_byte = 7;
      damage.flip_bit = 2;
      chaos.events.push_back(damage);
      ChaosEvent kill;  // and later shard 1 dies outright
      kill.kind = ChaosEvent::Kind::kKillShard;
      kill.at_round = 6;
      kill.shard = 1;
      chaos.events.push_back(kill);

      ShardedServer server(opt);
      std::vector<FleetStreamSpec> fleet;
      for (const StreamSpec& spec : specs) {
        fleet.push_back(
            {spec.name, MakeFactory(video, pool, spec, lazy, true)});
      }
      const FleetReport report =
          std::move(server.Run(std::move(fleet), chaos)).value();
      EXPECT_EQ(report.stats.shards_killed, 1);
      EXPECT_EQ(report.stats.migration.attempted, 1u);
      // The corrupted payload is either implant-rejected with DataLoss
      // (shard 1 still alive when it arrives) or undeliverable (shard 1
      // already executed its kill) — never implanted. Either way the
      // stream falls back to a restart. The deterministic always-rejected
      // guarantee is pinned by CorruptedMigrationIsRejectedAndStreamRestarts.
      EXPECT_EQ(report.stats.migration.completed, 0u)
          << "a corrupted payload must never implant";
      EXPECT_LE(report.stats.migration.rejected_corrupt, 1u);
      EXPECT_GE(report.stats.migration.fallback_restarts, 1u);
      EXPECT_EQ(report.stats.completed_streams, specs.size())
          << "every stream must survive the chaos script";
      ASSERT_EQ(report.streams.size(), specs.size());
      for (size_t i = 0; i < specs.size(); ++i) {
        SCOPED_TRACE(specs[i].name);
        const FleetStreamReport& fsr = report.streams[i];
        ASSERT_TRUE(fsr.report.status.ok()) << fsr.report.status.ToString();
        EXPECT_EQ(fsr.shard, 0) << "only shard 0 survives this script";
        ExpectSameRun(SoloBaseline(video, pool, specs[i], lazy, true),
                      fsr.report.result);
      }
    }
  }
}

}  // namespace
}  // namespace vqe
