// FrameArena: bump allocation, alignment, Mark/Rewind LIFO reclamation,
// block growth/reuse, the STL allocator adapter, and the arena stable
// sort's equivalence with std::stable_sort.

#include "common/arena.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <random>
#include <vector>

#include "gtest/gtest.h"

namespace vqe {
namespace {

TEST(FrameArenaTest, AllocateReturnsAlignedNonNull) {
  FrameArena arena;
  void* p8 = arena.Allocate(1, 8);
  void* p64 = arena.Allocate(3, 64);
  ASSERT_NE(p8, nullptr);
  ASSERT_NE(p64, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p8) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p64) % 64, 0u);
}

TEST(FrameArenaTest, AllocationsDoNotOverlap) {
  FrameArena arena;
  char* a = arena.AllocateArray<char>(100);
  char* b = arena.AllocateArray<char>(100);
  for (int i = 0; i < 100; ++i) a[i] = 'a';
  for (int i = 0; i < 100; ++i) b[i] = 'b';
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a[i], 'a');
}

TEST(FrameArenaTest, RewindReclaimsAndReusesMemory) {
  FrameArena arena;
  const FrameArena::Marker mark = arena.Mark();
  void* first = arena.Allocate(64, 8);
  arena.Rewind(mark);
  void* second = arena.Allocate(64, 8);
  EXPECT_EQ(first, second);  // bump pointer returned to the mark
}

TEST(FrameArenaTest, ArenaScopeRewindsOnDestruction) {
  FrameArena arena;
  const size_t before = arena.live_bytes();
  {
    ArenaScope scope(arena);
    arena.Allocate(1024, 8);
    EXPECT_GT(arena.live_bytes(), before);
  }
  EXPECT_EQ(arena.live_bytes(), before);
}

TEST(FrameArenaTest, NestedScopesUnwindInLifoOrder) {
  FrameArena arena;
  ArenaScope outer(arena);
  int* x = arena.AllocateArray<int>(10);
  x[0] = 7;
  {
    ArenaScope inner(arena);
    int* y = arena.AllocateArray<int>(10);
    y[0] = 9;
  }
  int* z = arena.AllocateArray<int>(10);
  EXPECT_EQ(x[0], 7);  // outer allocation untouched by inner scope unwind
  z[0] = 3;
  EXPECT_EQ(x[0], 7);
}

TEST(FrameArenaTest, GrowsBeyondOneBlockAndCountsStats) {
  FrameArena arena(/*min_block_bytes=*/1024);
  const FrameArena::Marker mark = arena.Mark();
  for (int i = 0; i < 64; ++i) arena.Allocate(512, 8);  // 32 KiB total
  EXPECT_GT(arena.stats().block_allocs, 1u);
  EXPECT_GE(arena.stats().high_water_bytes, size_t{32 * 512});

  // A rewound arena serves the same demand without new blocks.
  const uint64_t blocks_before = arena.stats().block_allocs;
  arena.Rewind(mark);
  for (int i = 0; i < 64; ++i) arena.Allocate(512, 8);
  EXPECT_EQ(arena.stats().block_allocs, blocks_before);
}

TEST(FrameArenaTest, OversizedRequestGetsDedicatedBlock) {
  FrameArena arena(/*min_block_bytes=*/256);
  char* big = arena.AllocateArray<char>(1 << 20);
  ASSERT_NE(big, nullptr);
  big[0] = 1;
  big[(1 << 20) - 1] = 2;
  EXPECT_EQ(big[0], 1);
  EXPECT_EQ(big[(1 << 20) - 1], 2);
}

TEST(FrameArenaTest, ThreadLocalReturnsSameArenaPerThread) {
  FrameArena* a = &FrameArena::ThreadLocal();
  FrameArena* b = &FrameArena::ThreadLocal();
  EXPECT_EQ(a, b);
}

TEST(ArenaVectorTest, GrowsAndHoldsValues) {
  FrameArena arena;
  ArenaScope scope(arena);
  ArenaVector<int> v = MakeArenaVector<int>(arena);
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  ASSERT_EQ(v.size(), 1000u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(v[static_cast<size_t>(i)], i);
}

TEST(ArenaStableSortTest, MatchesStdStableSortOnRandomData) {
  std::mt19937 rng(1234);
  FrameArena arena;
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = rng() % 200;
    // Few distinct keys force ties, which is where stability matters.
    std::vector<std::pair<int, int>> data(n);
    for (size_t i = 0; i < n; ++i) {
      data[i] = {static_cast<int>(rng() % 7), static_cast<int>(i)};
    }
    std::vector<std::pair<int, int>> expected = data;
    std::stable_sort(expected.begin(), expected.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    ArenaScope scope(arena);
    ArenaStableSort(data.data(), data.size(), arena,
                    [](const auto& a, const auto& b) {
                      return a.first < b.first;
                    });
    EXPECT_EQ(data, expected) << "trial " << trial << " n=" << n;
  }
}

TEST(ArenaStableSortTest, HandlesEmptyAndSingleton) {
  FrameArena arena;
  std::vector<int> empty;
  ArenaStableSort(empty.data(), empty.size(), arena, std::less<int>());
  std::vector<int> one{42};
  ArenaStableSort(one.data(), one.size(), arena, std::less<int>());
  EXPECT_EQ(one[0], 42);
}

}  // namespace
}  // namespace vqe
