// Tests for the extension features: D-MES (discounted UCB), COCO-protocol
// evaluation, WBF per-model weights, query EXPLAIN, CSV export, and
// context-dependent scene composition.

#include <gtest/gtest.h>

#include <sstream>

#include "common/table_printer.h"
#include "core/ducb.h"
#include "core/engine.h"
#include "core/mes.h"
#include "detection/coco_eval.h"
#include "fusion/wbf.h"
#include "query/explain.h"
#include "query/parser.h"
#include "sim/object_classes.h"
#include "sim/scene_generator.h"
#include "test_util.h"

namespace vqe {
namespace {

using test::SyntheticMatrix;

EngineOptions DefaultEngine() {
  EngineOptions opt;
  opt.sc = ScoringFunction{0.5, 0.5};
  return opt;
}

// ------------------------------------------------------------------ D-MES --

TEST(DucbTest, OptionsValidation) {
  DucbOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.discount = 1.0;
  EXPECT_FALSE(o.Validate().ok());
  o = DucbOptions{};
  o.discount = 0.0;
  EXPECT_FALSE(o.Validate().ok());
  o = DucbOptions{};
  o.gamma = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = DucbOptions{};
  o.exploration_scale = 0;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(DucbTest, HorizonHelpers) {
  DucbOptions o;
  o.discount = 0.99;
  EXPECT_NEAR(o.EffectiveHorizon(), 100.0, 1e-9);
  EXPECT_NEAR(DucbOptions::DiscountForHorizon(100.0), 0.99, 1e-12);
  EXPECT_DOUBLE_EQ(DucbOptions::DiscountForHorizon(0.5), 0.5);
}

TEST(DucbTest, DiscountedCountsDecay) {
  DucbMesStrategy ducb({/*gamma=*/1, /*discount=*/0.9,
                        /*exploration_scale=*/0.1, /*probe_interval=*/0});
  StrategyContext ctx;
  ctx.num_models = 2;
  ducb.BeginVideo(ctx);
  std::vector<double> rewards(4, 0.5);
  FrameFeedback fb;
  fb.est_score = &rewards;
  fb.selected = 3;  // full pool: updates arms 1, 2, 3
  fb.t = 0;
  ducb.Observe(fb);
  EXPECT_NEAR(ducb.DiscountedCount(1), 1.0, 1e-12);
  fb.selected = 1;  // only arm 1
  fb.t = 1;
  ducb.Observe(fb);
  // Arm 1: decayed to 0.9 then +1 = 1.9. Arm 2: decayed to 0.9.
  EXPECT_NEAR(ducb.DiscountedCount(1), 1.9, 1e-12);
  EXPECT_NEAR(ducb.DiscountedCount(2), 0.9, 1e-12);
  EXPECT_NEAR(ducb.DiscountedMean(2), 0.5, 1e-12);
}

TEST(DucbTest, ConvergesOnStationaryMatrix) {
  const FrameMatrix matrix = SyntheticMatrix(
      3, 2500, {0.0, 0.85, 0.40, 0.87, 0.30, 0.88, 0.50, 0.90},
      {10.0, 10.0, 10.0}, false, 0.05, 3);
  DucbOptions opt;
  opt.probe_interval = 60;
  DucbMesStrategy ducb(opt);
  const auto run = RunStrategy(matrix, &ducb, DefaultEngine());
  ASSERT_TRUE(run.ok());
  // Most selections go to the best arm {M0} (mask 1), modulo probes.
  EXPECT_GT(run->selection_counts[1], run->frames_processed / 2);
}

TEST(DucbTest, AdaptsToDriftAtLeastAsWellAsMes) {
  double ducb_total = 0.0;
  double mes_total = 0.0;
  for (uint64_t seed = 0; seed < 4; ++seed) {
    const FrameMatrix matrix = SyntheticMatrix(
        3, 4000, {0.0, 0.9, 0.25, 0.5, 0.25, 0.5, 0.3, 0.55},
        {10.0, 10.0, 10.0}, /*drift_flip=*/true, 0.05, seed);
    DucbOptions opt;
    opt.discount = DucbOptions::DiscountForHorizon(300.0);
    DucbMesStrategy ducb(opt);
    MesStrategy mes({/*gamma=*/5});
    ducb_total += RunStrategy(matrix, &ducb, DefaultEngine())->s_sum;
    mes_total += RunStrategy(matrix, &mes, DefaultEngine())->s_sum;
  }
  EXPECT_GT(ducb_total, mes_total);
}

// -------------------------------------------------------------- COCO eval --

Detection Det(double x, double y, double w, double h, double conf,
              ClassId label = 0) {
  Detection d;
  d.box = BBox::FromXYWH(x, y, w, h);
  d.confidence = conf;
  d.label = label;
  return d;
}

GroundTruthBox Gt(double x, double y, double w, double h, ClassId label = 0) {
  GroundTruthBox g;
  g.box = BBox::FromXYWH(x, y, w, h);
  g.label = label;
  return g;
}

TEST(CocoEvalTest, PerfectDetectionsScoreOneEverywhere) {
  std::vector<DetectionList> dets{{Det(0, 0, 10, 10, 0.9, 0),
                                   Det(50, 0, 10, 10, 0.8, 1)}};
  std::vector<GroundTruthList> gts{{Gt(0, 0, 10, 10, 0),
                                    Gt(50, 0, 10, 10, 1)}};
  const CocoMetrics m = CocoEvaluate(dets, gts);
  EXPECT_DOUBLE_EQ(m.map_50, 1.0);
  EXPECT_DOUBLE_EQ(m.map_75, 1.0);
  EXPECT_DOUBLE_EQ(m.map_50_95, 1.0);
  ASSERT_EQ(m.per_class_ap50.size(), 2u);
  EXPECT_DOUBLE_EQ(m.per_class_ap50.at(0), 1.0);
}

TEST(CocoEvalTest, LooseBoxPassesAp50ButNotAp75) {
  // Detection offset so IoU ≈ 0.54: counts at 0.5, fails at 0.75.
  std::vector<DetectionList> dets{{Det(3, 0, 10, 10, 0.9)}};
  std::vector<GroundTruthList> gts{{Gt(0, 0, 10, 10)}};
  const CocoMetrics m = CocoEvaluate(dets, gts);
  EXPECT_DOUBLE_EQ(m.map_50, 1.0);
  EXPECT_DOUBLE_EQ(m.map_75, 0.0);
  EXPECT_GT(m.map_50_95, 0.0);
  EXPECT_LT(m.map_50_95, 0.5);
}

TEST(CocoEvalTest, Map5095IsAverageAcrossThresholds) {
  // Exact box: AP 1.0 at every threshold -> mAP@[.5:.95] = 1.
  std::vector<DetectionList> dets{{Det(0, 0, 10, 10, 0.9)}};
  std::vector<GroundTruthList> gts{{Gt(0, 0, 10, 10)}};
  EXPECT_DOUBLE_EQ(CocoEvaluate(dets, gts).map_50_95, 1.0);
}

TEST(CocoEvalTest, ClassesWithoutGtExcluded) {
  std::vector<DetectionList> dets{{Det(0, 0, 10, 10, 0.9, 7)}};  // spurious
  std::vector<GroundTruthList> gts{{Gt(0, 0, 10, 10, 0)}};
  const CocoMetrics m = CocoEvaluate(dets, gts);
  // Only class 0 is evaluated; nothing detected for it.
  EXPECT_DOUBLE_EQ(m.map_50, 0.0);
  EXPECT_EQ(m.per_class_ap50.count(7), 0u);
}

TEST(CocoEvalTest, EmptyEverythingIsVacuouslyPerfect) {
  const CocoMetrics m = CocoEvaluate({{}, {}}, {{}, {}});
  EXPECT_DOUBLE_EQ(m.map_50_95, 1.0);
}

TEST(CocoEvalTest, DatasetClassApMatchesPooledProtocol) {
  // Class 0 across two frames: one hit, one miss -> AP 0.5 at IoU 0.5.
  std::vector<DetectionList> dets{{Det(0, 0, 10, 10, 0.9)}, {}};
  std::vector<GroundTruthList> gts{{Gt(0, 0, 10, 10)}, {Gt(0, 0, 10, 10)}};
  EXPECT_NEAR(DatasetClassAp(dets, gts, 0, 0.5), 0.5, 0.01);
  EXPECT_DOUBLE_EQ(DatasetClassAp(dets, gts, 5, 0.5), 1.0);  // vacuous class
}

// -------------------------------------------------------- WBF model weights --

TEST(WbfWeightsTest, WeightsScaleConfidenceBeforeFusion) {
  FusionOptions opt;
  opt.iou_threshold = 0.5;
  opt.model_weights = {2.0, 1.0};
  WbfFusion wbf(opt);
  // Same box from both models at conf 0.4; model 0 weighted 2x.
  const auto out = wbf.Fuse({{Det(0, 0, 10, 10, 0.4)},
                             {Det(0, 0, 10, 10, 0.4)}});
  ASSERT_EQ(out.size(), 1u);
  // Confidences become 0.8 and 0.4 -> mean 0.6 (both models voted).
  EXPECT_NEAR(out[0].confidence, 0.6, 1e-9);
}

TEST(WbfWeightsTest, WeightCapsAtOne) {
  FusionOptions opt;
  opt.model_weights = {10.0};
  WbfFusion wbf(opt);
  const auto out = wbf.Fuse({{Det(0, 0, 10, 10, 0.5)}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_LE(out[0].confidence, 1.0);
}

TEST(WbfWeightsTest, MismatchedWeightVectorIgnored) {
  FusionOptions opt;
  opt.model_weights = {2.0, 1.0, 1.0};  // three weights, two models
  WbfFusion wbf(opt);
  const auto out = wbf.Fuse({{Det(0, 0, 10, 10, 0.4)},
                             {Det(0, 0, 10, 10, 0.4)}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0].confidence, 0.4, 1e-9);  // unweighted behaviour
}

TEST(WbfWeightsTest, ValidationRejectsNonPositive) {
  FusionOptions opt;
  opt.model_weights = {1.0, 0.0};
  EXPECT_FALSE(opt.Validate().ok());
  opt.model_weights = {1.0, -2.0};
  EXPECT_FALSE(opt.Validate().ok());
  opt.model_weights = {1.0, 2.0};
  EXPECT_TRUE(opt.Validate().ok());
}

// ----------------------------------------------------------------- EXPLAIN --

TEST(ExplainTest, RendersPlanAndPredicate) {
  const auto q = ParseQuery(
      "SELECT frameID FROM (PROCESS nusc PRODUCE frameID, Detections "
      "USING MES(yolov7-tiny@clear; REF)) "
      "WHERE COUNT(car) >= 2 AND NOT EXISTS(bus) BUDGET 500 LIMIT 7");
  ASSERT_TRUE(q.ok());
  const std::string plan = ExplainQuery(*q);
  EXPECT_NE(plan.find("Select frameID"), std::string::npos);
  EXPECT_NE(plan.find("Limit: 7"), std::string::npos);
  EXPECT_NE(plan.find("(COUNT(car) >= 2 AND NOT EXISTS(bus))"),
            std::string::npos);
  EXPECT_NE(plan.find("video=nusc"), std::string::npos);
  EXPECT_NE(plan.find("strategy=MES"), std::string::npos);
  EXPECT_NE(plan.find("detectors=[yolov7-tiny@clear]"), std::string::npos);
  EXPECT_NE(plan.find("ref=yes"), std::string::npos);
  EXPECT_NE(plan.find("budget=500ms"), std::string::npos);
}

TEST(ExplainTest, DefaultPoolAndNoWhere) {
  const auto q = ParseQuery(
      "SELECT frameID FROM (PROCESS bdd PRODUCE frameID, Detections "
      "USING BF(*))");
  ASSERT_TRUE(q.ok());
  const std::string plan = ExplainQuery(*q);
  EXPECT_NE(plan.find("detectors=[default pool]"), std::string::npos);
  EXPECT_NE(plan.find("ref=no"), std::string::npos);
  EXPECT_EQ(plan.find("Filter"), std::string::npos);
}

TEST(ExplainTest, PredicateToStringForms) {
  EXPECT_EQ(PredicateToString(nullptr), "true");
  const auto q = ParseQuery(
      "SELECT frameID FROM (PROCESS nusc PRODUCE frameID, Detections "
      "USING MES(*; REF)) "
      "WHERE (MAX_CONF(car) > 0.5 OR AVG_CONF(*) <= 0.25) AND "
      "COUNT(truck) != 3");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(PredicateToString(q->where.get()),
            "((MAX_CONF(car) > 0.5 OR AVG_CONF(*) <= 0.25) AND "
            "COUNT(truck) != 3)");
}

// --------------------------------------------------------------- CSV export --

TEST(CsvTest, EscapesSpecialCells) {
  TablePrinter t({"a", "b"});
  t.AddRow({"plain", "with,comma"});
  t.AddRow({"with\"quote", "multi\nline"});
  std::ostringstream os;
  t.WriteCsv(os);
  EXPECT_EQ(os.str(),
            "a,b\n"
            "plain,\"with,comma\"\n"
            "\"with\"\"quote\",\"multi\nline\"\n");
}

// ----------------------------------------------- context-dependent classes --

TEST(ContextFrequencyTest, NightThinsVulnerableRoadUsers) {
  const ClassId pedestrian = *ClassIdFromName("pedestrian");
  const ClassId car = *ClassIdFromName("car");
  EXPECT_LT(ContextFrequencyScale(1 /*night*/, pedestrian),
            ContextFrequencyScale(0 /*clear*/, pedestrian));
  EXPECT_GE(ContextFrequencyScale(1, car), 0.5);
  // Out-of-range inputs are neutral.
  EXPECT_DOUBLE_EQ(ContextFrequencyScale(-1, car), 1.0);
  EXPECT_DOUBLE_EQ(ContextFrequencyScale(0, 99), 1.0);
}

TEST(ContextFrequencyTest, SceneCompositionShifts) {
  SceneGeneratorOptions opt;
  opt.initial_objects_mean = 8.0;
  const ClassId pedestrian = *ClassIdFromName("pedestrian");
  size_t clear_peds = 0, clear_total = 0, night_peds = 0, night_total = 0;
  for (int s = 0; s < 120; ++s) {
    const Video c = GenerateScene(opt, SceneContext::kClear, s, 1, 500 + s);
    const Video n = GenerateScene(opt, SceneContext::kNight, s, 1, 500 + s);
    for (const auto& o : c.frames[0].objects) {
      ++clear_total;
      if (o.label == pedestrian) ++clear_peds;
    }
    for (const auto& o : n.frames[0].objects) {
      ++night_total;
      if (o.label == pedestrian) ++night_peds;
    }
  }
  ASSERT_GT(clear_total, 200u);
  ASSERT_GT(night_total, 200u);
  const double clear_frac = static_cast<double>(clear_peds) / clear_total;
  const double night_frac = static_cast<double>(night_peds) / night_total;
  EXPECT_LT(night_frac, clear_frac);
}

}  // namespace
}  // namespace vqe
