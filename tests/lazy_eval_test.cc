// Lazy memoized evaluation: every cell a LazyFrameEvaluator materializes
// must be bit-identical to the eagerly built FrameMatrix (both run the
// shared FrameEvalContext kernel — these tests pin the contract), engine
// runs must be indistinguishable across backends, and lazy MES runs must
// actually skip most of the lattice.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/baselines.h"
#include "core/engine.h"
#include "core/experiment.h"
#include "core/lazy_frame_evaluator.h"
#include "core/mes.h"
#include "models/model_zoo.h"
#include "sim/dataset.h"

namespace vqe {
namespace {

// Eight distinct structure@context detectors; pools take the first m.
DetectorPool MakePool(int m) {
  const std::vector<std::string> names = {
      "yolov7-tiny@clear", "yolov7-tiny@night", "yolov7-tiny@rainy",
      "yolov7@clear",      "yolov7-micro@clear", "yolov7@night",
      "faster-rcnn@clear", "yolov7-micro@rainy"};
  std::vector<DetectorProfile> profiles;
  for (int i = 0; i < m; ++i) {
    profiles.push_back(
        std::move(ParseDetectorName(names[static_cast<size_t>(i)])).value());
  }
  return std::move(BuildPool(profiles)).value();
}

Video MakeVideo(double scene_scale, uint64_t seed) {
  const DatasetSpec* spec = *DatasetCatalog::Default().Find("nusc-night");
  SampleOptions sample;
  sample.scene_scale = scene_scale;
  sample.seed = seed;
  return std::move(SampleVideo(*spec, sample)).value();
}

void ExpectSameRun(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.s_sum, b.s_sum);
  EXPECT_EQ(a.avg_true_ap, b.avg_true_ap);
  EXPECT_EQ(a.avg_norm_cost, b.avg_norm_cost);
  EXPECT_EQ(a.frames_processed, b.frames_processed);
  EXPECT_EQ(a.regret, b.regret);
  EXPECT_EQ(a.regret_available, b.regret_available);
  EXPECT_EQ(a.charged_cost_ms, b.charged_cost_ms);
  EXPECT_EQ(a.breakdown.detector_ms, b.breakdown.detector_ms);
  EXPECT_EQ(a.breakdown.reference_ms, b.breakdown.reference_ms);
  EXPECT_EQ(a.breakdown.ensembling_ms, b.breakdown.ensembling_ms);
  EXPECT_EQ(a.selection_counts, b.selection_counts);
}

// Every cell and every frame stat, for each fusion family the cache
// treats differently (WBF bypasses the IoU tile; NMS and Consensus
// consume it), and for eager builds at several worker counts.
TEST(LazyEvalTest, EveryCellBitIdenticalToEagerMatrix) {
  const int m = 4;
  const DetectorPool pool = MakePool(m);
  const Video video = MakeVideo(/*scene_scale=*/0.02, /*seed=*/11);
  ASSERT_GT(video.size(), 0u);

  for (const FusionKind kind :
       {FusionKind::kWbf, FusionKind::kNms, FusionKind::kConsensus}) {
    MatrixOptions options;
    options.fusion = kind;
    for (const int workers : {1, 2, 8}) {
      options.parallelism = workers;
      const auto matrix =
          std::move(BuildFrameMatrix(video, pool, /*trial_seed=*/7, options))
              .value();
      auto lazy = std::move(LazyFrameEvaluator::Create(video, pool,
                                                       /*trial_seed=*/7,
                                                       options))
                      .value();
      ASSERT_EQ(lazy->num_frames(), matrix.size());
      ASSERT_EQ(lazy->num_models(), matrix.num_models);
      const uint32_t num_masks = matrix.num_ensembles();
      for (size_t t = 0; t < matrix.size(); ++t) {
        const FrameEvaluation& fe = matrix.frames[t];
        const FrameStats stats = lazy->Stats(t);
        EXPECT_EQ(stats.context, fe.context);
        EXPECT_EQ(*stats.model_cost_ms, fe.model_cost_ms);
        EXPECT_EQ(stats.ref_cost_ms, fe.ref_cost_ms);
        EXPECT_EQ(stats.max_cost_ms, fe.max_cost_ms)
            << "FullEnsembleCostMs must equal the eager running max";
        for (EnsembleId mask = 1; mask <= num_masks; ++mask) {
          const MaskEvaluation e = lazy->Eval(t, mask);
          ASSERT_EQ(e.est_ap, fe.est_ap[mask])
              << FusionKindToString(kind) << " t=" << t << " mask=" << mask;
          ASSERT_EQ(e.true_ap, fe.true_ap[mask]);
          ASSERT_EQ(e.cost_ms, fe.cost_ms[mask]);
          ASSERT_EQ(e.fusion_overhead_ms, fe.fusion_overhead_ms[mask]);
        }
      }
      EXPECT_EQ(lazy->frames_touched(), matrix.size());
      EXPECT_EQ(lazy->masks_materialized(),
                static_cast<uint64_t>(matrix.size()) * num_masks);
    }
  }
}

// Memoization: re-reading a cell serves the memo and returns the same
// value; instrumentation counts distinct cells, not reads.
TEST(LazyEvalTest, EvalIsMemoized) {
  const DetectorPool pool = MakePool(3);
  auto lazy = std::move(LazyFrameEvaluator::Create(
                            MakeVideo(0.02, 3), pool, /*trial_seed=*/3))
                  .value();
  ASSERT_GT(lazy->num_frames(), 0u);
  const MaskEvaluation first = lazy->Eval(0, 5);
  EXPECT_EQ(lazy->masks_materialized(), 1u);
  EXPECT_EQ(lazy->memo_hits(), 0u);
  const MaskEvaluation again = lazy->Eval(0, 5);
  EXPECT_EQ(lazy->masks_materialized(), 1u);
  EXPECT_EQ(lazy->memo_hits(), 1u);
  EXPECT_EQ(first.est_ap, again.est_ap);
  EXPECT_EQ(first.true_ap, again.true_ap);
  EXPECT_EQ(first.cost_ms, again.cost_ms);
  EXPECT_EQ(first.fusion_overhead_ms, again.fusion_overhead_ms);
}

// An MES run observes only the subset lattices of its selections, so the
// lazy backend must (a) reproduce the eager run bit-for-bit and (b)
// materialize strictly less than the full 2^m − 1 masks per frame on
// average — the whole point of laziness at m = 8.
TEST(LazyEvalTest, MesM8RunsBitIdenticalAndMaterializesSparsely) {
  const int m = 8;
  const DetectorPool pool = MakePool(m);
  const Video video = MakeVideo(/*scene_scale=*/0.03, /*seed=*/17);
  ASSERT_GT(video.size(), 20u);

  EngineOptions engine;
  engine.sc = ScoringFunction{};
  engine.strategy_seed = 99;
  engine.compute_regret = false;

  MesOptions mes;
  mes.gamma = 2;

  const auto matrix =
      std::move(BuildFrameMatrix(video, pool, /*trial_seed=*/17)).value();
  MesStrategy eager_mes(mes);
  const RunResult eager =
      std::move(RunStrategy(matrix, &eager_mes, engine)).value();

  auto lazy = std::move(LazyFrameEvaluator::Create(video, pool,
                                                   /*trial_seed=*/17))
                  .value();
  MesStrategy lazy_mes(mes);
  const RunResult lazy_run =
      std::move(RunStrategy(*lazy, &lazy_mes, engine)).value();

  ExpectSameRun(eager, lazy_run);

  const uint64_t full_lattice =
      static_cast<uint64_t>(lazy->num_frames()) * matrix.num_ensembles();
  EXPECT_LT(lazy->masks_materialized(), full_lattice)
      << "lazy MES run materialized the whole lattice";
}

// With compute_regret on, a lazy source has no Pareto frontier, so the
// engine falls back to the exhaustive scan — slower, but the regret it
// reports must still match the eager frontier-accelerated scan.
TEST(LazyEvalTest, LazyRegretMatchesEagerFrontierRegret) {
  const DetectorPool pool = MakePool(4);
  const Video video = MakeVideo(0.02, 5);

  EngineOptions engine;
  engine.strategy_seed = 21;
  engine.compute_regret = true;

  const auto matrix =
      std::move(BuildFrameMatrix(video, pool, /*trial_seed=*/5)).value();
  RandomStrategy eager_rand;
  const RunResult eager =
      std::move(RunStrategy(matrix, &eager_rand, engine)).value();

  auto lazy =
      std::move(LazyFrameEvaluator::Create(video, pool, /*trial_seed=*/5))
          .value();
  RandomStrategy lazy_rand;
  const RunResult lazy_run =
      std::move(RunStrategy(*lazy, &lazy_rand, engine)).value();

  EXPECT_TRUE(eager.regret_available);
  ExpectSameRun(eager, lazy_run);
  // The exhaustive fallback materialized everything.
  EXPECT_EQ(lazy->masks_materialized(),
            static_cast<uint64_t>(lazy->num_frames()) *
                matrix.num_ensembles());
}

TEST(LazyEvalTest, RegretSkippedWhenDisabled) {
  const DetectorPool pool = MakePool(3);
  const Video video = MakeVideo(0.02, 5);
  EngineOptions engine;
  engine.compute_regret = false;
  const auto matrix =
      std::move(BuildFrameMatrix(video, pool, /*trial_seed=*/5)).value();
  BruteForceStrategy bf;
  const RunResult run = std::move(RunStrategy(matrix, &bf, engine)).value();
  EXPECT_FALSE(run.regret_available);
  EXPECT_EQ(run.regret, 0.0);
}

TEST(LazyEvalTest, FullLatticeFlags) {
  EXPECT_TRUE(OptStrategy().needs_full_lattice());
  EXPECT_TRUE(BruteForceStrategy().needs_full_lattice());
  EXPECT_FALSE(SingleBestStrategy().needs_full_lattice());
  EXPECT_FALSE(RandomStrategy().needs_full_lattice());
  EXPECT_FALSE(ExploreFirstStrategy().needs_full_lattice());
  EXPECT_FALSE(MesStrategy(MesOptions{}).needs_full_lattice());
}

// The experiment harness must produce identical outcomes whichever
// backend a config picks — including kAuto, which goes lazy here (all
// online strategies, regret off).
TEST(LazyEvalTest, ExperimentBackendsAgree) {
  const DetectorPool pool = MakePool(3);
  const DatasetSpec* spec = *DatasetCatalog::Default().Find("nusc-night");

  ExperimentConfig config;
  config.dataset = spec;
  config.scene_scale = 0.02;
  config.trials = 2;
  config.pool_size = 3;
  config.base_seed = 77;
  config.engine.compute_regret = false;

  std::vector<StrategySpec> strategies = {
      {"MES",
       [] {
         MesOptions opt;
         opt.gamma = 2;
         return std::make_unique<MesStrategy>(opt);
       }},
      {"RAND", [] { return std::make_unique<RandomStrategy>(); }},
      {"SGL", [] { return std::make_unique<SingleBestStrategy>(); }},
  };

  config.evaluation = EvaluationMode::kEager;
  const auto eager =
      std::move(RunExperiment(config, pool, strategies)).value();
  config.evaluation = EvaluationMode::kLazy;
  const auto lazy = std::move(RunExperiment(config, pool, strategies)).value();
  config.evaluation = EvaluationMode::kAuto;
  const auto autom = std::move(RunExperiment(config, pool, strategies)).value();

  ASSERT_EQ(eager.outcomes.size(), strategies.size());
  for (size_t i = 0; i < strategies.size(); ++i) {
    for (const auto* other : {&lazy, &autom}) {
      ASSERT_EQ(other->outcomes[i].runs.size(), eager.outcomes[i].runs.size());
      for (size_t trial = 0; trial < eager.outcomes[i].runs.size(); ++trial) {
        ExpectSameRun(eager.outcomes[i].runs[trial],
                      other->outcomes[i].runs[trial]);
      }
      EXPECT_FALSE(other->outcomes[i].regret_available);
    }
  }
}

// kAuto must stay eager when a full-lattice strategy (OPT) is in the
// line-up: the run still works and reports regret when asked.
TEST(LazyEvalTest, AutoKeepsEagerForOracleLineup) {
  const DetectorPool pool = MakePool(3);
  const DatasetSpec* spec = *DatasetCatalog::Default().Find("nusc-night");

  ExperimentConfig config;
  config.dataset = spec;
  config.scene_scale = 0.02;
  config.trials = 1;
  config.pool_size = 3;
  config.base_seed = 13;
  config.evaluation = EvaluationMode::kAuto;  // regret on -> eager

  std::vector<StrategySpec> strategies = {
      {"OPT", [] { return std::make_unique<OptStrategy>(); }},
  };
  const auto result =
      std::move(RunExperiment(config, pool, strategies)).value();
  ASSERT_EQ(result.outcomes.size(), 1u);
  EXPECT_TRUE(result.outcomes[0].regret_available);
  // OPT's regret against its own argmax baseline is exactly zero.
  EXPECT_EQ(result.outcomes[0].runs[0].regret, 0.0);
}

}  // namespace
}  // namespace vqe
