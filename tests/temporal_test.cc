// Tests for the temporal-coherence fast path (ISSUE 7): the difficulty
// signal, the skip policy (fixed / gated / bandit) and its snapshot
// round-trip, tracker propagation, and the engine/query integration —
// including the two load-bearing invariants: the disabled path is
// bit-identical to a skip-free build across every strategy, backend and
// worker count, and a skip-enabled run crash-resumes bit-identically.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/baselines.h"
#include "core/ducb.h"
#include "core/engine.h"
#include "core/frame_matrix.h"
#include "core/lazy_frame_evaluator.h"
#include "core/mes.h"
#include "core/mes_b.h"
#include "models/model_zoo.h"
#include "query/executor.h"
#include "sim/dataset.h"
#include "snapshot/wire.h"
#include "temporal/difficulty.h"
#include "temporal/gate.h"
#include "temporal/propagation.h"
#include "temporal/skip_policy.h"
#include "track/tracker.h"

namespace vqe {
namespace {

// ------------------------------------------------------------ options --

TEST(SkipOptionsTest, DefaultsAreOffAndValid) {
  SkipOptions o;
  EXPECT_TRUE(o.Validate().ok());
  EXPECT_FALSE(o.enabled());
  // Mode without budget (and vice versa) still means "no gate".
  o.mode = SkipMode::kFixedInterval;
  EXPECT_FALSE(o.enabled());
  o.mode = SkipMode::kOff;
  o.skip_budget = 4;
  EXPECT_FALSE(o.enabled());
  o.mode = SkipMode::kBandit;
  EXPECT_TRUE(o.enabled());
}

TEST(SkipOptionsTest, ValidationBounds) {
  const auto bad = [](const std::function<void(SkipOptions&)>& mutate) {
    SkipOptions o;
    mutate(o);
    return !o.Validate().ok();
  };
  EXPECT_TRUE(bad([](SkipOptions& o) { o.skip_budget = -1; }));
  EXPECT_TRUE(bad([](SkipOptions& o) { o.skip_budget = 1025; }));
  EXPECT_FALSE(bad([](SkipOptions& o) { o.skip_budget = 1024; }));
  EXPECT_TRUE(bad([](SkipOptions& o) { o.difficulty_threshold = -0.1; }));
  EXPECT_TRUE(bad([](SkipOptions& o) { o.difficulty_threshold = 1.1; }));
  EXPECT_TRUE(bad([](SkipOptions& o) { o.confidence_decay = 0.0; }));
  EXPECT_TRUE(bad([](SkipOptions& o) { o.confidence_decay = 1.5; }));
  EXPECT_FALSE(bad([](SkipOptions& o) { o.confidence_decay = 1.0; }));
  EXPECT_TRUE(bad([](SkipOptions& o) { o.agreement_floor = -0.5; }));
  EXPECT_TRUE(bad([](SkipOptions& o) { o.agreement_floor = 2.0; }));
  EXPECT_TRUE(bad([](SkipOptions& o) { o.drift_penalty = -0.01; }));
  EXPECT_TRUE(bad([](SkipOptions& o) { o.ucb_exploration = -1.0; }));
  // An invalid embedded tracker config must fail the whole bundle.
  EXPECT_TRUE(bad([](SkipOptions& o) { o.tracker.min_hits = 0; }));
}

TEST(SkipOptionsTest, PropagationTrackerLowersConfidenceFloorOnly) {
  const TrackerOptions prop = PropagationTrackerDefaults();
  const TrackerOptions plain;
  EXPECT_DOUBLE_EQ(prop.min_confidence, 0.05);
  EXPECT_DOUBLE_EQ(prop.iou_threshold, plain.iou_threshold);
  EXPECT_EQ(prop.max_missed, plain.max_missed);
  EXPECT_EQ(prop.min_hits, plain.min_hits);
}

TEST(SkipOptionsTest, ModeNames) {
  EXPECT_STREQ(SkipModeToString(SkipMode::kOff), "off");
  EXPECT_STREQ(SkipModeToString(SkipMode::kFixedInterval), "fixed");
  EXPECT_STREQ(SkipModeToString(SkipMode::kDifficultyGated), "gated");
  EXPECT_STREQ(SkipModeToString(SkipMode::kBandit), "bandit");
}

TEST(SkipOptionsTest, IdentityRoundTripAndMismatchNaming) {
  SkipOptions o;
  o.mode = SkipMode::kBandit;
  o.skip_budget = 7;
  o.difficulty_threshold = 0.41;
  o.tracker.min_hits = 2;

  ByteWriter w;
  WriteSkipOptionsIdentity(w, o);
  ByteReader r(w.bytes().data(), w.size());
  SkipOptions back;
  ASSERT_TRUE(ReadSkipOptionsIdentity(r, &back).ok());
  EXPECT_TRUE(ExpectSkipOptionsMatch(back, o).ok());

  SkipOptions other = o;
  other.skip_budget = 8;
  const Status mismatch = ExpectSkipOptionsMatch(o, other);
  EXPECT_EQ(mismatch.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(mismatch.ToString().find("skip_budget"), std::string::npos);
}

// --------------------------------------------------------- difficulty --

TEST(DifficultyTest, ContextChangeDominatesEverything) {
  DifficultySignals s;
  s.context_changed = true;
  s.detection_churn = 0.0;
  s.track_instability = 0.0;
  s.agreement = 1.0;
  EXPECT_DOUBLE_EQ(DifficultyScore(s), 1.0);
}

TEST(DifficultyTest, ConvexWeights) {
  DifficultySignals s;  // churn 0, instability 0, agreement 1
  EXPECT_DOUBLE_EQ(DifficultyScore(s), 0.0);
  s.detection_churn = 1.0;
  EXPECT_DOUBLE_EQ(DifficultyScore(s), 0.45);
  s.detection_churn = 0.0;
  s.track_instability = 1.0;
  EXPECT_DOUBLE_EQ(DifficultyScore(s), 0.35);
  s.track_instability = 0.0;
  s.agreement = 0.0;
  EXPECT_DOUBLE_EQ(DifficultyScore(s), 0.20);
  // Out-of-range inputs are clamped, never amplified.
  s.detection_churn = 5.0;
  s.track_instability = 5.0;
  s.agreement = -3.0;
  EXPECT_DOUBLE_EQ(DifficultyScore(s), 1.0);
}

TEST(DifficultyTest, BucketEdges) {
  EXPECT_EQ(DifficultyBucket(0.0), 0);
  EXPECT_EQ(DifficultyBucket(0.33), 0);
  EXPECT_EQ(DifficultyBucket(0.34), 1);
  EXPECT_EQ(DifficultyBucket(0.66), 1);
  EXPECT_EQ(DifficultyBucket(0.67), 2);
  EXPECT_EQ(DifficultyBucket(1.0), 2);
}

// -------------------------------------------------------- skip policy --

TEST(SkipPolicyTest, FixedIntervalIgnoresDifficulty) {
  SkipOptions o;
  o.mode = SkipMode::kFixedInterval;
  o.skip_budget = 5;
  SkipPolicy p(o);
  EXPECT_EQ(p.PlanSkips(0.0), 5);
  EXPECT_EQ(p.PlanSkips(1.0), 5);
}

TEST(SkipPolicyTest, DifficultyGateIsAThreshold) {
  SkipOptions o;
  o.mode = SkipMode::kDifficultyGated;
  o.skip_budget = 3;
  o.difficulty_threshold = 0.35;
  SkipPolicy p(o);
  EXPECT_EQ(p.PlanSkips(0.0), 3);
  EXPECT_EQ(p.PlanSkips(0.349), 3);
  EXPECT_EQ(p.PlanSkips(0.35), 0);  // strict less-than
  EXPECT_EQ(p.PlanSkips(0.9), 0);
}

TEST(SkipPolicyTest, BanditWarmsUpShallowestFirst) {
  SkipOptions o;
  o.mode = SkipMode::kBandit;
  o.skip_budget = 2;
  SkipPolicy p(o);
  // Untried arms win in depth order; each episode close records one play.
  EXPECT_EQ(p.PlanSkips(0.0), 0);
  p.OnEpisodeEnd(0, 1.0);
  EXPECT_EQ(p.PlanSkips(0.0), 1);
  p.OnEpisodeEnd(1, 1.0);
  EXPECT_EQ(p.PlanSkips(0.0), 2);
  p.OnEpisodeEnd(2, 1.0);
  EXPECT_EQ(p.episodes(), 3u);
  EXPECT_EQ(p.ArmPlays(0, 0), 1u);
  EXPECT_EQ(p.ArmPlays(0, 1), 1u);
  EXPECT_EQ(p.ArmPlays(0, 2), 1u);
  // Arm 0 has no throughput gain to reward; the full-agreement skip arms
  // earned completed/planned * agreement = 1.
  EXPECT_DOUBLE_EQ(p.ArmRewardSum(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(p.ArmRewardSum(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(p.ArmRewardSum(0, 2), 1.0);
  // Buckets are independent: a hard frame starts its own warmup.
  EXPECT_EQ(p.PlanSkips(0.9), 0);
  EXPECT_EQ(p.ArmPlays(2, 0), 0u);
}

TEST(SkipPolicyTest, BanditPenalizesDriftedEpisodes) {
  SkipOptions o;
  o.mode = SkipMode::kBandit;
  o.skip_budget = 1;
  o.agreement_floor = 0.5;
  o.drift_penalty = 0.25;
  SkipPolicy p(o);
  ASSERT_EQ(p.PlanSkips(0.0), 0);
  p.OnEpisodeEnd(0, 1.0);
  ASSERT_EQ(p.PlanSkips(0.0), 1);
  p.OnEpisodeEnd(1, 0.2);  // drifted: agreement below the floor
  EXPECT_DOUBLE_EQ(p.ArmRewardSum(0, 1), -0.25);
  // With the skip arm's mean negative and the detect arm's at 0, UCB must
  // steer back toward detecting as exploration decays.
  SkipOptions greedy = o;
  greedy.ucb_exploration = 0.0;
  SkipPolicy q(greedy);
  ASSERT_EQ(q.PlanSkips(0.0), 0);
  q.OnEpisodeEnd(0, 1.0);
  ASSERT_EQ(q.PlanSkips(0.0), 1);
  q.OnEpisodeEnd(1, 0.2);
  EXPECT_EQ(q.PlanSkips(0.0), 0);
}

TEST(SkipPolicyTest, BanditIsDeterministic) {
  SkipOptions o;
  o.mode = SkipMode::kBandit;
  o.skip_budget = 3;
  SkipPolicy a(o);
  SkipPolicy b(o);
  for (int i = 0; i < 200; ++i) {
    // A deterministic but varied difficulty/agreement schedule.
    const double difficulty = (i * 37 % 100) / 100.0;
    const double agreement = (i * 13 % 100) / 100.0;
    const int plan_a = a.PlanSkips(difficulty);
    const int plan_b = b.PlanSkips(difficulty);
    ASSERT_EQ(plan_a, plan_b) << "diverged at step " << i;
    a.OnEpisodeEnd(plan_a, agreement);
    b.OnEpisodeEnd(plan_b, agreement);
  }
  EXPECT_EQ(a.episodes(), b.episodes());
}

TEST(SkipPolicyTest, SaveRestoreRoundTripsBanditState) {
  SkipOptions o;
  o.mode = SkipMode::kBandit;
  o.skip_budget = 2;
  SkipPolicy original(o);
  for (int i = 0; i < 40; ++i) {
    const int plan = original.PlanSkips((i * 29 % 100) / 100.0);
    original.OnEpisodeEnd(plan, (i * 17 % 100) / 100.0);
  }
  // Leave an episode OPEN so pending_cell/pending_depth are exercised.
  const int open_plan = original.PlanSkips(0.1);

  ByteWriter w;
  ASSERT_TRUE(original.SaveState(w).ok());
  SkipPolicy restored(o);
  ByteReader r(w.bytes().data(), w.size());
  ASSERT_TRUE(restored.RestoreState(r).ok());
  EXPECT_TRUE(r.ExpectEnd().ok());

  EXPECT_EQ(restored.episodes(), original.episodes());
  for (int bucket = 0; bucket < kNumDifficultyBuckets; ++bucket) {
    for (int depth = 0; depth <= o.skip_budget; ++depth) {
      EXPECT_EQ(restored.ArmPlays(bucket, depth),
                original.ArmPlays(bucket, depth));
      EXPECT_EQ(restored.ArmRewardSum(bucket, depth),
                original.ArmRewardSum(bucket, depth));
    }
  }
  // The restored policy continues exactly where the original would.
  original.OnEpisodeEnd(open_plan, 0.8);
  restored.OnEpisodeEnd(open_plan, 0.8);
  for (int i = 0; i < 50; ++i) {
    const double difficulty = (i * 41 % 100) / 100.0;
    const int plan_o = original.PlanSkips(difficulty);
    const int plan_r = restored.PlanSkips(difficulty);
    ASSERT_EQ(plan_o, plan_r) << "post-restore divergence at step " << i;
    original.OnEpisodeEnd(plan_o, 0.9);
    restored.OnEpisodeEnd(plan_r, 0.9);
  }
}

TEST(SkipPolicyTest, RestoreRejectsMismatchedDimensions) {
  SkipOptions o;
  o.mode = SkipMode::kBandit;
  o.skip_budget = 2;
  SkipPolicy saved(o);
  ByteWriter w;
  ASSERT_TRUE(saved.SaveState(w).ok());

  SkipOptions wider = o;
  wider.skip_budget = 3;  // 4 arms, snapshot has 3
  SkipPolicy other(wider);
  ByteReader r(w.bytes().data(), w.size());
  EXPECT_EQ(other.RestoreState(r).code(), StatusCode::kDataLoss);
}

// -------------------------------------------------------- propagation --

Detection Det(double x, double y, double w, double h, double conf,
              ClassId label = 0) {
  Detection d;
  d.box = BBox::FromXYWH(x, y, w, h);
  d.confidence = conf;
  d.label = label;
  return d;
}

TEST(TrackPropagatorTest, PropagateCoastsAndDecaysExactly) {
  TrackPropagator prop(PropagationTrackerDefaults(), 0.9);
  prop.ObserveDetections({Det(0, 0, 40, 40, 0.8)}, 0);
  prop.ObserveDetections({Det(6, 0, 40, 40, 0.8)}, 1);
  ASSERT_EQ(prop.tracker().tracks().size(), 1u);
  const Track base = prop.tracker().tracks()[0];
  ASSERT_GT(base.vx, 0.0);

  // Two coast steps: the box advances by the velocity one Euler step at a
  // time (bit-exact incremental accumulation), confidence by decay^streak.
  const DetectionList& first = prop.Propagate();
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].box.x1, base.box.x1 + base.vx);
  EXPECT_EQ(first[0].confidence, base.confidence * 0.9);
  EXPECT_EQ(prop.coast_streak(), 1);

  const DetectionList& second = prop.Propagate();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].box.x1, (base.box.x1 + base.vx) + base.vx);
  EXPECT_EQ(second[0].confidence, base.confidence * (0.9 * 0.9));
  EXPECT_EQ(prop.coast_streak(), 2);

  // A detect frame resets the streak.
  prop.ObserveDetections({Det(18, 0, 40, 40, 0.8)}, 4);
  EXPECT_EQ(prop.coast_streak(), 0);
}

TEST(TrackPropagatorTest, TentativeTracksPropagateTooAndMissedOnesDoNot) {
  TrackPropagator prop(PropagationTrackerDefaults(), 0.92);
  // One observation: the track is tentative (1 hit < min_hits) but it IS
  // what the detector just reported, so the propagated list must carry it.
  prop.ObserveDetections({Det(0, 0, 40, 40, 0.8)}, 0);
  EXPECT_TRUE(prop.CanPropagate());
  EXPECT_EQ(prop.Propagate().size(), 1u);

  // The detectors then contradict the track (empty frame): it coasts as
  // missed and must drop out of propagation.
  prop.ObserveDetections({}, 1);
  EXPECT_TRUE(prop.Propagate().empty());
}

TEST(TrackPropagatorTest, EmptySceneIsPropagatable) {
  TrackPropagator prop(PropagationTrackerDefaults(), 0.92);
  prop.ObserveDetections({}, 0);
  EXPECT_TRUE(prop.CanPropagate());
  EXPECT_TRUE(prop.Propagate().empty());
  EXPECT_DOUBLE_EQ(prop.agreement(), 1.0);

  // Detections present but below the confidence floor: nothing tracked,
  // nothing to coast — the gate must force a detect instead.
  prop.ObserveDetections({Det(0, 0, 40, 40, 0.01)}, 1);
  EXPECT_FALSE(prop.CanPropagate());
}

TEST(TrackPropagatorTest, SaveRestoreRoundTrip) {
  TrackPropagator prop(PropagationTrackerDefaults(), 0.9);
  prop.ObserveDetections({Det(0, 0, 40, 40, 0.8)}, 0);
  prop.ObserveDetections({Det(5, 0, 40, 40, 0.8), Det(200, 0, 30, 30, 0.7)},
                         1);
  prop.Propagate();

  ByteWriter w;
  ASSERT_TRUE(prop.SaveState(w).ok());
  TrackPropagator restored(PropagationTrackerDefaults(), 0.9);
  ByteReader r(w.bytes().data(), w.size());
  ASSERT_TRUE(restored.RestoreState(r).ok());
  EXPECT_TRUE(r.ExpectEnd().ok());

  EXPECT_EQ(restored.coast_streak(), prop.coast_streak());
  EXPECT_EQ(restored.detection_churn(), prop.detection_churn());
  EXPECT_EQ(restored.track_instability(), prop.track_instability());
  EXPECT_EQ(restored.agreement(), prop.agreement());
  // Both propagate the same boxes afterwards.
  const DetectionList a = prop.Propagate();
  const DetectionList b = restored.Propagate();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].box.x1, b[i].box.x1);
    EXPECT_EQ(a[i].confidence, b[i].confidence);
  }
}

// ------------------------------------------------- engine integration --

DetectorPool MakePool(int m) {
  const std::vector<std::string> names = {
      "yolov7-tiny@clear", "yolov7-tiny@night", "yolov7-tiny@rainy",
      "yolov7@clear",      "yolov7-micro@clear"};
  std::vector<DetectorProfile> profiles;
  for (int i = 0; i < m; ++i) {
    profiles.push_back(
        std::move(ParseDetectorName(names[static_cast<size_t>(i)])).value());
  }
  return std::move(BuildPool(profiles)).value();
}

Video MakeVideo(const std::string& dataset, double scene_scale,
                uint64_t seed) {
  const DatasetSpec* spec = *DatasetCatalog::Default().Find(dataset);
  SampleOptions sample;
  sample.scene_scale = scene_scale;
  sample.seed = seed;
  return std::move(SampleVideo(*spec, sample)).value();
}

std::unique_ptr<SelectionStrategy> MakeStrategy(const std::string& kind) {
  if (kind == "MES") {
    MesOptions o;
    o.gamma = 2;
    return std::make_unique<MesStrategy>(o);
  }
  if (kind == "MES-B") {
    MesBOptions o;
    o.gamma = 2;
    return std::make_unique<MesBStrategy>(o);
  }
  if (kind == "SW-MES") {
    SwMesOptions o;
    o.gamma = 2;
    o.window = 8;
    return std::make_unique<SwMesStrategy>(o);
  }
  if (kind == "D-MES") {
    DucbOptions o;
    o.gamma = 2;
    return std::make_unique<DucbMesStrategy>(o);
  }
  if (kind == "RAND") return std::make_unique<RandomStrategy>();
  if (kind == "EF") return std::make_unique<ExploreFirstStrategy>(2);
  ADD_FAILURE() << "unknown strategy kind " << kind;
  return nullptr;
}

/// One run on the chosen backend/worker count, fresh source each call.
Result<RunResult> RunOnce(const Video& video, const DetectorPool& pool,
                          const std::string& kind, bool lazy_backend,
                          int workers, bool keep_temporal,
                          const EngineOptions& engine) {
  MatrixOptions matrix_options;
  matrix_options.parallelism = workers;
  matrix_options.keep_temporal_outputs = keep_temporal;
  std::unique_ptr<SelectionStrategy> strategy = MakeStrategy(kind);
  if (lazy_backend) {
    auto lazy = LazyFrameEvaluator::Create(video, pool, /*trial_seed=*/9,
                                           matrix_options);
    if (!lazy.ok()) return lazy.status();
    return RunStrategy(**lazy, strategy.get(), engine);
  }
  auto matrix = BuildFrameMatrix(video, pool, /*trial_seed=*/9,
                                 matrix_options);
  if (!matrix.ok()) return matrix.status();
  return RunStrategy(*matrix, strategy.get(), engine);
}

/// Bit-identity over every deterministic RunResult field, the skip stats
/// and tracker time included. algorithm_ms and the checkpoint report are
/// wall-clock/process bookkeeping and are the only exclusions.
void ExpectSameRun(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.s_sum, b.s_sum);
  EXPECT_EQ(a.avg_true_ap, b.avg_true_ap);
  EXPECT_EQ(a.avg_norm_cost, b.avg_norm_cost);
  EXPECT_EQ(a.frames_processed, b.frames_processed);
  EXPECT_EQ(a.regret_available, b.regret_available);
  EXPECT_EQ(a.regret, b.regret);
  EXPECT_EQ(a.charged_cost_ms, b.charged_cost_ms);
  EXPECT_EQ(a.breakdown.detector_ms, b.breakdown.detector_ms);
  EXPECT_EQ(a.breakdown.reference_ms, b.breakdown.reference_ms);
  EXPECT_EQ(a.breakdown.ensembling_ms, b.breakdown.ensembling_ms);
  EXPECT_EQ(a.breakdown.fault_ms, b.breakdown.fault_ms);
  EXPECT_EQ(a.breakdown.tracker_ms, b.breakdown.tracker_ms);
  EXPECT_EQ(a.selection_counts, b.selection_counts);
  EXPECT_EQ(a.cost_curve, b.cost_curve);
  EXPECT_EQ(a.fallback_frames, b.fallback_frames);
  EXPECT_EQ(a.failed_frames, b.failed_frames);
  EXPECT_EQ(a.skip.skipped_frames, b.skip.skipped_frames);
  EXPECT_EQ(a.skip.detect_frames, b.skip.detect_frames);
  EXPECT_EQ(a.skip.forced_detects, b.skip.forced_detects);
  EXPECT_EQ(a.skip.propagated_ap_sum, b.skip.propagated_ap_sum);
}

// The disabled-path invariant: with skipping off (the default, and the
// explicit budget-0 spelling), every strategy on both backends at several
// worker counts produces the same bits it produced before this subsystem
// existed — including on a matrix that carries the temporal extras.
TEST(TemporalEngineTest, DisabledPathIsBitIdenticalEverywhere) {
  const DetectorPool pool = MakePool(3);
  const Video video = MakeVideo("nusc-night", 0.02, 17);
  ASSERT_GT(video.size(), 12u);

  EngineOptions engine;
  engine.strategy_seed = 42;
  engine.compute_regret = false;

  // Budget 0 means !enabled(): no gate is constructed at all.
  EngineOptions budget_zero = engine;
  budget_zero.skip.mode = SkipMode::kDifficultyGated;
  budget_zero.skip.skip_budget = 0;

  const std::vector<std::string> kinds = {"MES",   "MES-B", "SW-MES",
                                          "D-MES", "RAND",  "EF"};
  for (const std::string& kind : kinds) {
    const Result<RunResult> baseline =
        RunOnce(video, pool, kind, /*lazy=*/false, /*workers=*/1,
                /*keep_temporal=*/false, engine);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    EXPECT_EQ(baseline->skip.skipped_frames, 0u);
    EXPECT_EQ(baseline->breakdown.tracker_ms, 0.0);

    for (const bool lazy_backend : {false, true}) {
      for (const int workers : {1, 4}) {
        for (const bool zero_budget : {false, true}) {
          for (const bool keep_temporal : {false, true}) {
            SCOPED_TRACE(kind + (lazy_backend ? "/lazy" : "/eager") + "/w" +
                         std::to_string(workers) +
                         (zero_budget ? "/budget0" : "/default") +
                         (keep_temporal ? "/keep" : ""));
            const Result<RunResult> run = RunOnce(
                video, pool, kind, lazy_backend, workers, keep_temporal,
                zero_budget ? budget_zero : engine);
            ASSERT_TRUE(run.ok()) << run.status().ToString();
            ExpectSameRun(*baseline, *run);
          }
        }
      }
    }
  }
}

TEST(TemporalEngineTest, SkipEnabledRunsMatchAcrossBackendsAndWorkers) {
  const DetectorPool pool = MakePool(3);
  const Video video = MakeVideo("nusc-lowmotion", 0.004, 17);
  ASSERT_GT(video.size(), 12u);

  EngineOptions engine;
  engine.strategy_seed = 42;
  engine.compute_regret = false;
  engine.skip.mode = SkipMode::kFixedInterval;
  engine.skip.skip_budget = 3;

  const Result<RunResult> baseline =
      RunOnce(video, pool, "MES", /*lazy=*/true, /*workers=*/1,
              /*keep_temporal=*/false, engine);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  EXPECT_GT(baseline->skip.skipped_frames, 0u);
  EXPECT_GT(baseline->breakdown.tracker_ms, 0.0);

  for (const bool lazy_backend : {false, true}) {
    for (const int workers : {1, 4}) {
      SCOPED_TRACE(std::string(lazy_backend ? "lazy" : "eager") + "/w" +
                   std::to_string(workers));
      // The eager backend needs the temporal extras kept in the matrix.
      const Result<RunResult> run =
          RunOnce(video, pool, "MES", lazy_backend, workers,
                  /*keep_temporal=*/!lazy_backend, engine);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      ExpectSameRun(*baseline, *run);
    }
  }
}

TEST(TemporalEngineTest, EagerBackendWithoutTemporalOutputsIsRejected) {
  const DetectorPool pool = MakePool(2);
  const Video video = MakeVideo("nusc-night", 0.02, 17);

  EngineOptions engine;
  engine.compute_regret = false;
  engine.skip.mode = SkipMode::kFixedInterval;
  engine.skip.skip_budget = 2;

  const Result<RunResult> run =
      RunOnce(video, pool, "MES", /*lazy=*/false, /*workers=*/1,
              /*keep_temporal=*/false, engine);
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

TEST(TemporalEngineTest, LowMotionSkippingCutsSimulatedTime) {
  const DetectorPool pool = MakePool(3);
  const Video video = MakeVideo("nusc-lowmotion", 0.004, 23);
  ASSERT_GT(video.size(), 20u);

  EngineOptions plain;
  plain.strategy_seed = 7;
  plain.compute_regret = false;

  EngineOptions skipping = plain;
  skipping.skip.mode = SkipMode::kFixedInterval;
  skipping.skip.skip_budget = 4;

  const Result<RunResult> base =
      RunOnce(video, pool, "MES", /*lazy=*/true, 1, false, plain);
  const Result<RunResult> fast =
      RunOnce(video, pool, "MES", /*lazy=*/true, 1, false, skipping);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();

  EXPECT_EQ(fast->frames_processed, base->frames_processed);
  EXPECT_GT(fast->skip.skipped_frames, fast->frames_processed / 2);
  EXPECT_LT(fast->breakdown.SimulatedMs(),
            0.5 * base->breakdown.SimulatedMs());
  // Skipped frames still contribute accuracy accounting.
  EXPECT_GT(fast->skip.propagated_ap_sum, 0.0);
  // Skipped frames select no ensemble: the selection histogram only counts
  // detect frames.
  uint64_t selections = 0;
  for (const uint64_t c : fast->selection_counts) selections += c;
  EXPECT_EQ(selections, fast->skip.detect_frames);
  EXPECT_EQ(fast->skip.detect_frames + fast->skip.skipped_frames,
            fast->frames_processed);
}

/// Fresh (empty) checkpoint directory under the test temp root.
std::string ScratchDir(const std::string& name) {
  const std::string dir =
      ::testing::TempDir() + "vqe_temporal_test/" + name;
  const int rc = std::system(("rm -rf '" + dir + "'").c_str());
  EXPECT_EQ(rc, 0);
  return dir;
}

// Crash mid-skip-run and resume: the gate (policy arms, open episode,
// tracker, coast streak) is part of the snapshot, so the resumed run must
// be bit-identical — bandit mode exercises all of that state.
TEST(TemporalEngineTest, BanditSkipRunCrashResumesBitIdentically) {
  const DetectorPool pool = MakePool(3);
  const Video video = MakeVideo("nusc-lowmotion", 0.004, 31);
  ASSERT_GT(video.size(), 12u);

  EngineOptions engine;
  engine.strategy_seed = 11;
  engine.compute_regret = false;
  engine.skip.mode = SkipMode::kBandit;
  engine.skip.skip_budget = 3;

  const Result<RunResult> baseline =
      RunOnce(video, pool, "MES", /*lazy=*/true, 1, false, engine);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_GT(baseline->skip.skipped_frames, 0u);

  EngineOptions ck = engine;
  ck.checkpoint.every_frames = 4;
  ck.checkpoint.crash_after_frames = 6;
  ck.checkpoint.directory = ScratchDir("bandit-crash");
  int invocations = 0;
  RunResult resumed;
  for (int attempt = 1; attempt <= 64; ++attempt) {
    Result<RunResult> run =
        RunOnce(video, pool, "MES", /*lazy=*/true, 1, false, ck);
    if (run.ok()) {
      invocations = attempt;
      resumed = std::move(run).value();
      break;
    }
    ASSERT_EQ(run.status().code(), StatusCode::kAborted)
        << run.status().ToString();
  }
  ASSERT_GT(invocations, 1) << "the crash must actually fire";
  ExpectSameRun(*baseline, resumed);
}

// Resuming a skip-enabled run under different skip settings must be
// refused — the options are part of the run identity.
TEST(TemporalEngineTest, ResumeWithDifferentSkipSettingsIsRejected) {
  const DetectorPool pool = MakePool(3);
  const Video video = MakeVideo("nusc-lowmotion", 0.004, 31);

  EngineOptions ck;
  ck.strategy_seed = 11;
  ck.compute_regret = false;
  ck.skip.mode = SkipMode::kFixedInterval;
  ck.skip.skip_budget = 3;
  ck.checkpoint.every_frames = 4;
  ck.checkpoint.crash_after_frames = 6;
  ck.checkpoint.directory = ScratchDir("skip-identity");
  ASSERT_EQ(RunOnce(video, pool, "MES", true, 1, false, ck).status().code(),
            StatusCode::kAborted);

  EngineOptions other = ck;
  other.checkpoint.crash_after_frames = 0;
  other.skip.skip_budget = 4;
  EXPECT_EQ(
      RunOnce(video, pool, "MES", true, 1, false, other).status().code(),
      StatusCode::kFailedPrecondition);

  ck.checkpoint.crash_after_frames = 0;
  const Result<RunResult> ok =
      RunOnce(video, pool, "MES", true, 1, false, ck);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_TRUE(ok->checkpoint.resumed);
}

// -------------------------------------------------- query integration --

void ExpectSameQuery(const QueryOutput& a, const QueryOutput& b) {
  EXPECT_EQ(a.frame_ids, b.frame_ids);
  EXPECT_EQ(a.frames_processed, b.frames_processed);
  EXPECT_EQ(a.frames_matched, b.frames_matched);
  EXPECT_EQ(a.charged_cost_ms, b.charged_cost_ms);
  EXPECT_EQ(a.selection_counts, b.selection_counts);
  EXPECT_EQ(a.fallback_frames, b.fallback_frames);
  EXPECT_EQ(a.failed_frames, b.failed_frames);
  EXPECT_EQ(a.skipped_frames, b.skipped_frames);
  EXPECT_EQ(a.tracker_ms, b.tracker_ms);
}

constexpr char kCountSql[] =
    "SELECT frameID FROM (PROCESS nusc-lowmotion PRODUCE frameID, "
    "Detections USING MES(yolov7-tiny@clear, yolov7-tiny@night; REF)) "
    "WHERE COUNT(car) >= 1";

QueryEngineOptions SmallQueryOptions() {
  QueryEngineOptions opt;
  opt.scene_scale = 0.004;
  opt.seed = 3;
  return opt;
}

TEST(TemporalQueryTest, SkipAnswersFramesFromPropagation) {
  QueryEngineOptions opt = SmallQueryOptions();
  const Result<QueryOutput> plain = ExecuteQuery(kCountSql, opt);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_EQ(plain->skipped_frames, 0u);
  EXPECT_EQ(plain->tracker_ms, 0.0);

  opt.skip.mode = SkipMode::kFixedInterval;
  opt.skip.skip_budget = 4;
  const Result<QueryOutput> fast = ExecuteQuery(kCountSql, opt);
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  EXPECT_EQ(fast->frames_processed, plain->frames_processed);
  EXPECT_GT(fast->skipped_frames, 0u);
  EXPECT_GT(fast->tracker_ms, 0.0);
  EXPECT_LT(fast->charged_cost_ms, plain->charged_cost_ms);
  // Skipped frames still answer the predicate; on a low-motion video the
  // propagated answers should track the detect-path answers closely.
  EXPECT_GT(fast->frames_matched, 0u);
}

TEST(TemporalQueryTest, BudgetZeroIsBitIdenticalToNoSkip) {
  const QueryEngineOptions plain = SmallQueryOptions();
  const Result<QueryOutput> base = ExecuteQuery(kCountSql, plain);
  ASSERT_TRUE(base.ok()) << base.status().ToString();

  QueryEngineOptions zero = plain;
  zero.skip.mode = SkipMode::kBandit;
  zero.skip.skip_budget = 0;  // !enabled(): no gate is constructed
  const Result<QueryOutput> run = ExecuteQuery(kCountSql, zero);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ExpectSameQuery(*base, *run);
}

TEST(TemporalQueryTest, TracksPredicateSharesTheGateTracker) {
  // With the gate enabled there is exactly one tracker per run: TRACKS()
  // reads the gate's tracker, on skipped and detect frames alike.
  QueryEngineOptions opt = SmallQueryOptions();
  opt.skip.mode = SkipMode::kFixedInterval;
  opt.skip.skip_budget = 3;
  const Result<QueryOutput> out = ExecuteQuery(
      "SELECT frameID FROM (PROCESS nusc-lowmotion PRODUCE frameID, "
      "Detections USING MES(yolov7-tiny@clear, yolov7-tiny@night; REF)) "
      "WHERE TRACKS(car) >= 1",
      opt);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_GT(out->skipped_frames, 0u);
  EXPECT_GT(out->frames_matched, 0u);
  EXPECT_LE(out->frames_matched, out->frames_processed);
}

TEST(TemporalQueryTest, SkipQueryCrashResumesBitIdentically) {
  QueryEngineOptions opt = SmallQueryOptions();
  opt.skip.mode = SkipMode::kBandit;
  opt.skip.skip_budget = 3;
  const Result<QueryOutput> baseline = ExecuteQuery(kCountSql, opt);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_GT(baseline->skipped_frames, 0u);

  QueryEngineOptions ck = opt;
  ck.checkpoint.every_frames = 5;
  ck.checkpoint.crash_after_frames = 7;
  ck.checkpoint.directory = ScratchDir("query-bandit-crash");
  int invocations = 0;
  QueryOutput resumed;
  for (int attempt = 1; attempt <= 64; ++attempt) {
    const Result<QueryOutput> out = ExecuteQuery(kCountSql, ck);
    if (out.ok()) {
      invocations = attempt;
      resumed = *out;
      break;
    }
    ASSERT_EQ(out.status().code(), StatusCode::kAborted)
        << out.status().ToString();
  }
  ASSERT_GT(invocations, 1) << "the crash must actually fire";
  ExpectSameQuery(*baseline, resumed);
  EXPECT_TRUE(resumed.checkpoint.resumed);
}

// ------------------------------------------------ overload skip boost --
// The gate's dynamic degradation overlay (ISSUE 9): SetSkipBoost extends
// every planned episode, including zero-plans, survives the snapshot
// round-trip as bounded dynamic state, and rejects hostile counters.

SkipOptions BoostOptions() {
  SkipOptions o;
  o.mode = SkipMode::kFixedInterval;
  o.skip_budget = 2;
  return o;
}

TEST(TemporalGateBoostTest, SetSkipBoostClampsToBounds) {
  auto gate = std::move(TemporalGate::Create(BoostOptions())).value();
  EXPECT_EQ(gate->skip_boost(), 0);
  gate->SetSkipBoost(-7);
  EXPECT_EQ(gate->skip_boost(), 0);
  gate->SetSkipBoost(kMaxSkipBoost + 500);
  EXPECT_EQ(gate->skip_boost(), kMaxSkipBoost);
  gate->SetSkipBoost(3);
  EXPECT_EQ(gate->skip_boost(), 3);
}

TEST(TemporalGateBoostTest, BoostExtendsEveryPlannedEpisode) {
  auto plain = std::move(TemporalGate::Create(BoostOptions())).value();
  auto boosted = std::move(TemporalGate::Create(BoostOptions())).value();
  boosted->SetSkipBoost(3);
  for (TemporalGate* g : {plain.get(), boosted.get()}) {
    EXPECT_FALSE(g->ShouldSkip(SceneContext::kClear));  // first frame
    g->ObserveDetections({Det(0, 0, 40, 40, 0.9)}, 0);
  }
  EXPECT_EQ(boosted->remaining_skips(), plain->remaining_skips() + 3);
}

TEST(TemporalGateBoostTest, BoostCoastsEvenZeroPlans) {
  // A threshold no difficulty score can undercut: the gated policy plans
  // zero skips on every episode — the boost must still coast frames.
  SkipOptions o = BoostOptions();
  o.mode = SkipMode::kDifficultyGated;
  o.difficulty_threshold = 1e-9;
  auto plain = std::move(TemporalGate::Create(o)).value();
  auto boosted = std::move(TemporalGate::Create(o)).value();
  boosted->SetSkipBoost(2);
  for (TemporalGate* g : {plain.get(), boosted.get()}) {
    EXPECT_FALSE(g->ShouldSkip(SceneContext::kClear));
    g->ObserveDetections({Det(0, 0, 40, 40, 0.9)}, 0);
  }
  EXPECT_EQ(plain->remaining_skips(), 0);
  EXPECT_EQ(boosted->remaining_skips(), 2);
  // The boosted gate actually answers the next frames from propagation.
  EXPECT_TRUE(boosted->ShouldSkip(SceneContext::kClear));
  EXPECT_FALSE(plain->ShouldSkip(SceneContext::kClear));
}

TEST(TemporalGateBoostTest, BoostIncreasesCoastedFramesEndToEnd) {
  const DetectorPool pool = MakePool(2);
  const Video video = MakeVideo("nusc-night", 0.02, 7);
  const auto run_with_boost = [&](int boost) {
    auto source = std::move(LazyFrameEvaluator::Create(video, pool,
                                                       /*trial_seed=*/9, {}))
                      .value();
    std::unique_ptr<SelectionStrategy> strategy = MakeStrategy("MES");
    EngineOptions e;
    e.strategy_seed = 42;
    e.compute_regret = false;
    e.skip.mode = SkipMode::kFixedInterval;
    e.skip.skip_budget = 1;
    auto run =
        std::move(EngineRun::Create(*source, strategy.get(), e)).value();
    while (!run->done()) {
      run->SetDegradation(boost, 0);
      const Status st = run->StepFrame();
      if (!st.ok()) {
        ADD_FAILURE() << st.ToString();
        break;
      }
    }
    return std::move(run->Finish()).value();
  };
  const RunResult base = run_with_boost(0);
  const RunResult boosted = run_with_boost(6);
  EXPECT_EQ(base.frames_processed, boosted.frames_processed);
  EXPECT_GT(boosted.skip.skipped_frames, base.skip.skipped_frames);
  // The boosted run spends fewer detector calls for the same frames.
  EXPECT_LT(boosted.charged_cost_ms, base.charged_cost_ms);
}

TEST(TemporalGateBoostTest, SaveRestoreRoundTripsBoostedState) {
  auto original = std::move(TemporalGate::Create(BoostOptions())).value();
  original->SetSkipBoost(3);
  EXPECT_FALSE(original->ShouldSkip(SceneContext::kClear));
  original->ObserveDetections({Det(0, 0, 40, 40, 0.9)}, 0);
  ASSERT_GT(original->remaining_skips(), BoostOptions().skip_budget)
      << "episode must be boosted past the configured budget";

  ByteWriter w;
  ASSERT_TRUE(original->SaveState(w).ok());
  auto restored = std::move(TemporalGate::Create(BoostOptions())).value();
  ByteReader r(w.bytes().data(), w.size());
  ASSERT_TRUE(restored->RestoreState(r).ok());
  EXPECT_TRUE(r.ExpectEnd().ok());

  EXPECT_EQ(restored->skip_boost(), original->skip_boost());
  EXPECT_EQ(restored->remaining_skips(), original->remaining_skips());
  EXPECT_EQ(restored->forced_detects(), original->forced_detects());
  EXPECT_EQ(restored->last_difficulty(), original->last_difficulty());
  // Both gates take the same decisions afterwards.
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(original->ShouldSkip(SceneContext::kClear),
              restored->ShouldSkip(SceneContext::kClear))
        << "divergence at post-restore frame " << i;
  }
}

/// The gate header exactly as SaveState lays it out, with attacker-chosen
/// counters. Restore must bounds-check BEFORE touching policy bytes, so
/// the truncated tail is never reached.
ByteWriter HostileGateHeader(int64_t remaining, int64_t completed,
                             int64_t boost, int64_t planned_base) {
  ByteWriter w;
  w.I64(remaining);
  w.I64(completed);
  w.Bool(false);  // episode_open
  w.Bool(false);  // has_context
  w.Bool(false);  // context_changed
  w.U8(0);        // last_context
  w.F64(1.0);     // last_difficulty
  w.U64(0);       // forced_detects
  w.I64(boost);
  w.I64(planned_base);
  return w;
}

TEST(TemporalGateBoostTest, RestoreRejectsHostileCounters) {
  const struct {
    const char* name;
    int64_t remaining, completed, boost, planned_base;
  } corpus[] = {
      {"boost over cap", 0, 0, kMaxSkipBoost + 1, 0},
      {"negative boost", 0, 0, -1, 0},
      {"planned base over budget", 0, 0, 0, 3},
      {"remaining past budget+boost", 5, 0, 2, 2},
      {"negative remaining", -1, 0, 0, 0},
      {"completed past budget+boost", 0, 9, 1, 1},
  };
  for (const auto& c : corpus) {
    auto gate = std::move(TemporalGate::Create(BoostOptions())).value();
    const ByteWriter w = HostileGateHeader(c.remaining, c.completed, c.boost,
                                           c.planned_base);
    ByteReader r(w.bytes().data(), w.size());
    EXPECT_EQ(gate->RestoreState(r).code(), StatusCode::kDataLoss) << c.name;
  }
}

}  // namespace
}  // namespace vqe
