// Integration tests: the full simulated pipeline (datasets -> detectors ->
// fusion -> matrix -> strategies) must reproduce the qualitative shapes the
// paper reports. These run on small dataset replicas, so assertions target
// robust orderings rather than exact values.

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/experiment.h"
#include "core/mes.h"
#include "core/pareto.h"
#include "models/model_zoo.h"

namespace vqe {
namespace {

ExperimentConfig SmallConfig(const char* dataset, double scale = 0.04,
                             int trials = 3) {
  ExperimentConfig config;
  config.dataset = *DatasetCatalog::Default().Find(dataset);
  config.scene_scale = scale;
  config.trials = trials;
  config.engine.sc = ScoringFunction{0.5, 0.5};
  return config;
}

TEST(IntegrationTest, MatrixBuildProducesConsistentEvaluations) {
  auto pool = std::move(BuildNuscenesPool(3)).value();
  const auto matrix = BuildTrialMatrix(SmallConfig("nusc-clear", 0.01), pool,
                                       /*trial=*/0);
  ASSERT_TRUE(matrix.ok()) << matrix.status().ToString();
  EXPECT_EQ(matrix->num_models, 3);
  EXPECT_GT(matrix->size(), 0u);
  for (const auto& fe : matrix->frames) {
    EXPECT_GT(fe.max_cost_ms, 0.0);
    EXPECT_GT(fe.ref_cost_ms, 0.0);
    for (EnsembleId s = 1; s <= 7; ++s) {
      EXPECT_GE(fe.true_ap[s], 0.0);
      EXPECT_LE(fe.true_ap[s], 1.0);
      EXPECT_GE(fe.est_ap[s], 0.0);
      EXPECT_LE(fe.est_ap[s], 1.0);
      EXPECT_GT(fe.cost_ms[s], 0.0);
      EXPECT_LE(fe.cost_ms[s], fe.max_cost_ms + 1e-9);
      EXPECT_LT(fe.fusion_overhead_ms[s], 1.0);  // ensembling is cheap
      // Cost is superadditive in members: supersets cost more.
      for (EnsembleId sub = 1; sub < s; ++sub) {
        if (IsSubsetOf(sub, s) && sub != s) {
          EXPECT_LT(fe.cost_ms[sub], fe.cost_ms[s]);
        }
      }
    }
  }
}

TEST(IntegrationTest, EnsemblingRaisesApOverSingles) {
  // Figure 2's premise: the fused trio has clearly higher AP than the best
  // single model, at proportionally higher cost.
  auto pool = std::move(BuildNuscenesPool(3)).value();
  const auto matrix =
      BuildTrialMatrix(SmallConfig("nusc", 0.02), pool, /*trial=*/0);
  ASSERT_TRUE(matrix.ok());
  const auto avg_ap = AverageTrueApPerEnsemble(*matrix);
  const double best_single =
      std::max({avg_ap[1], avg_ap[2], avg_ap[4]});
  EXPECT_GT(avg_ap[7], best_single * 1.05);  // trio beats best single
}

TEST(IntegrationTest, TuviOrderingMatchesFigure4) {
  auto pool = std::move(BuildNuscenesPool(5)).value();
  const auto result = RunExperiment(SmallConfig("nusc", 0.05, 3), pool,
                                    DefaultTuviStrategies(10, 2));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto* opt = result->Find("OPT");
  const auto* bf = result->Find("BF");
  const auto* sgl = result->Find("SGL");
  const auto* rand = result->Find("RAND");
  const auto* mes = result->Find("MES");
  ASSERT_TRUE(opt && bf && sgl && rand && mes);
  // OPT dominates everything; MES above the non-adaptive baselines.
  EXPECT_GT(opt->s_sum.mean, mes->s_sum.mean);
  EXPECT_GT(mes->s_sum.mean, sgl->s_sum.mean);
  EXPECT_GT(mes->s_sum.mean, bf->s_sum.mean);
  EXPECT_GT(mes->s_sum.mean, rand->s_sum.mean);
  // MES reaches a large fraction of OPT (paper: > 85% at full scale; the
  // small replica warrants a safety margin).
  EXPECT_GT(mes->s_sum.mean, 0.75 * opt->s_sum.mean);
  // BF has normalized cost 1 by definition.
  EXPECT_NEAR(bf->avg_norm_cost.mean, 1.0, 1e-9);
}

TEST(IntegrationTest, BudgetedRunsProcessFewerFrames) {
  auto pool = std::move(BuildNuscenesPool(3)).value();
  ExperimentConfig config = SmallConfig("nusc-clear", 0.03, 2);
  auto strategies = std::vector<StrategySpec>{
      {"MES", [] { return std::make_unique<MesStrategy>(); }}};
  const auto unrestricted = RunExperiment(config, pool, strategies);
  ASSERT_TRUE(unrestricted.ok());

  config.engine.budget_ms = 4000.0;
  const auto budgeted = RunExperiment(config, pool, strategies);
  ASSERT_TRUE(budgeted.ok());
  EXPECT_LT(budgeted->outcomes[0].frames_processed.mean,
            unrestricted->outcomes[0].frames_processed.mean);
  EXPECT_LT(budgeted->outcomes[0].s_sum.mean,
            unrestricted->outcomes[0].s_sum.mean);
}

TEST(IntegrationTest, SwMesBeatsMesUnderDrift) {
  auto pool = std::move(BuildNuscenesPool(5)).value();
  ExperimentConfig config = SmallConfig("c&n", 0.6, 2);
  std::vector<StrategySpec> strategies{
      {"MES", [] { return std::make_unique<MesStrategy>(); }},
      {"SW-MES",
       [] {
         SwMesOptions o;
         o.window = 450;
         o.exploration_scale = 0.05;
         return std::make_unique<SwMesStrategy>(o);
       }},
  };
  const auto result = RunExperiment(config, pool, strategies);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->Find("SW-MES")->s_sum.mean,
            result->Find("MES")->s_sum.mean);
}

TEST(IntegrationTest, ParetoFrontierContainsCheapAndAccurateExtremes) {
  auto pool = std::move(BuildNuscenesPool(3)).value();
  const auto matrix =
      BuildTrialMatrix(SmallConfig("nusc", 0.02), pool, /*trial=*/0);
  ASSERT_TRUE(matrix.ok());
  const auto frontier = ParetoFrontier(EnsembleObjectives(*matrix));
  ASSERT_GE(frontier.size(), 2u);
  // The cheapest frontier point is a singleton; the most accurate point
  // must have at least as high AP as every ensemble.
  EXPECT_EQ(EnsembleSize(frontier.front().id), 1);
  const auto avg_ap = AverageTrueApPerEnsemble(*matrix);
  for (EnsembleId s = 1; s <= 7; ++s) {
    EXPECT_GE(frontier.back().avg_ap + 1e-9, avg_ap[s]);
  }
}

TEST(IntegrationTest, ExperimentValidation) {
  auto pool = std::move(BuildNuscenesPool(3)).value();
  ExperimentConfig config;  // no dataset
  EXPECT_FALSE(
      RunExperiment(config, pool, DefaultTuviStrategies(10, 2)).ok());
  config = SmallConfig("nusc");
  config.trials = 0;
  EXPECT_FALSE(
      RunExperiment(config, pool, DefaultTuviStrategies(10, 2)).ok());
  config = SmallConfig("nusc");
  EXPECT_FALSE(RunExperiment(config, pool, {}).ok());  // no strategies
  config.scene_scale = 2.0;
  EXPECT_FALSE(
      RunExperiment(config, pool, DefaultTuviStrategies(10, 2)).ok());
}

TEST(IntegrationTest, ParallelTrialsMatchSerialBitForBit) {
  auto pool = std::move(BuildNuscenesPool(3)).value();
  ExperimentConfig config = SmallConfig("nusc-clear", 0.02, 4);
  auto strategies = DefaultTuviStrategies(10, 2);

  config.parallelism = 1;
  const auto serial = RunExperiment(config, pool, strategies);
  config.parallelism = 4;
  const auto parallel = RunExperiment(config, pool, strategies);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  ASSERT_EQ(serial->outcomes.size(), parallel->outcomes.size());
  for (size_t i = 0; i < serial->outcomes.size(); ++i) {
    ASSERT_EQ(serial->outcomes[i].runs.size(),
              parallel->outcomes[i].runs.size());
    for (size_t t = 0; t < serial->outcomes[i].runs.size(); ++t) {
      EXPECT_DOUBLE_EQ(serial->outcomes[i].runs[t].s_sum,
                       parallel->outcomes[i].runs[t].s_sum)
          << serial->outcomes[i].label << " trial " << t;
      EXPECT_EQ(serial->outcomes[i].runs[t].selection_counts,
                parallel->outcomes[i].runs[t].selection_counts);
    }
  }
}

TEST(IntegrationTest, TimeBreakdownShapeMatchesFigure13) {
  // Detector inference dominates; reference follows; ensembling and
  // algorithm overheads are negligible.
  auto pool = std::move(BuildNuscenesPool(5)).value();
  ExperimentConfig config = SmallConfig("nusc", 0.02, 1);
  std::vector<StrategySpec> strategies{
      {"MES", [] { return std::make_unique<MesStrategy>(); }}};
  const auto result = RunExperiment(config, pool, strategies);
  ASSERT_TRUE(result.ok());
  const TimeBreakdown& bd = result->outcomes[0].runs[0].breakdown;
  EXPECT_GT(bd.detector_ms, bd.reference_ms);
  EXPECT_GT(bd.reference_ms, bd.ensembling_ms);
  EXPECT_LT(bd.ensembling_ms + bd.algorithm_ms, 0.1 * bd.TotalMs());
}

}  // namespace
}  // namespace vqe
