// Unit tests for the snapshot subsystem: the wire format, the checksummed
// container, the crash-atomic generation manager, and the SaveState/Restore
// round-trips of every stateful component a checkpoint captures. The
// crash-injection matrix (resumed runs bit-identical to uninterrupted ones)
// lives in resume_test.cc.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/arm_stats.h"
#include "core/engine_snapshot.h"
#include "runtime/circuit_breaker.h"
#include "snapshot/checkpoint.h"
#include "snapshot/crc32.h"
#include "snapshot/snapshot.h"
#include "snapshot/wire.h"

namespace vqe {
namespace {

// Fresh scratch directory per test; gtest's TempDir() is shared, so suffix
// with the test name.
std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "vqe_snapshot_test/" + name;
  std::system(("rm -rf '" + dir + "'").c_str());
  return dir;
}

// ------------------------------------------------------------------ Wire --

TEST(WireTest, PrimitivesRoundTrip) {
  ByteWriter w;
  w.U8(0xAB);
  w.U32(0xDEADBEEFu);
  w.U64(0x0123456789ABCDEFull);
  w.I64(-42);
  w.F64(3.14159);
  w.Bool(true);
  w.Bool(false);
  w.Str("hello");

  ByteReader r(w.bytes().data(), w.size());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  double f64;
  bool b1, b0;
  std::string s;
  ASSERT_TRUE(r.U8(&u8).ok());
  ASSERT_TRUE(r.U32(&u32).ok());
  ASSERT_TRUE(r.U64(&u64).ok());
  ASSERT_TRUE(r.I64(&i64).ok());
  ASSERT_TRUE(r.F64(&f64).ok());
  ASSERT_TRUE(r.Bool(&b1).ok());
  ASSERT_TRUE(r.Bool(&b0).ok());
  ASSERT_TRUE(r.Str(&s).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(f64, 3.14159);
  EXPECT_TRUE(b1);
  EXPECT_FALSE(b0);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(r.ExpectEnd().ok());
}

TEST(WireTest, DoublePreservesNanPayloadBits) {
  const uint64_t weird_nan = 0x7FF800000000BEEFull;
  ByteWriter w;
  w.F64(std::bit_cast<double>(weird_nan));
  ByteReader r(w.bytes().data(), w.size());
  double out;
  ASSERT_TRUE(r.F64(&out).ok());
  EXPECT_EQ(std::bit_cast<uint64_t>(out), weird_nan);
}

TEST(WireTest, TruncatedReadsReturnDataLoss) {
  ByteWriter w;
  w.U32(7);
  ByteReader r(w.bytes().data(), w.size());
  uint64_t u64;
  EXPECT_EQ(r.U64(&u64).code(), StatusCode::kDataLoss);
  // The failed read consumed nothing; a U32 still works.
  uint32_t u32;
  EXPECT_TRUE(r.U32(&u32).ok());
  EXPECT_EQ(u32, 7u);
}

TEST(WireTest, BoolRejectsOutOfRangeByte) {
  const uint8_t byte = 2;
  ByteReader r(&byte, 1);
  bool out;
  EXPECT_EQ(r.Bool(&out).code(), StatusCode::kDataLoss);
}

TEST(WireTest, StringRejectsForgedLength) {
  ByteWriter w;
  w.U32(0xFFFFFFFFu);  // claims 4 GiB of characters
  w.U8('x');
  ByteReader r(w.bytes().data(), w.size());
  std::string s;
  EXPECT_EQ(r.Str(&s).code(), StatusCode::kDataLoss);
}

TEST(WireTest, VectorsRoundTripAndRejectForgedCounts) {
  ByteWriter w;
  WriteVecU64(w, {1, 2, 3});
  WriteVecF64(w, {0.5, -0.25});
  WriteVecU32(w, {7, 8});
  ByteReader r(w.bytes().data(), w.size());
  std::vector<uint64_t> u;
  std::vector<double> f;
  std::vector<uint32_t> u32;
  ASSERT_TRUE(ReadVecU64(r, &u).ok());
  ASSERT_TRUE(ReadVecF64(r, &f).ok());
  ASSERT_TRUE(ReadVecU32(r, &u32).ok());
  EXPECT_EQ(u, (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_EQ(f, (std::vector<double>{0.5, -0.25}));
  EXPECT_EQ(u32, (std::vector<uint32_t>{7, 8}));
  EXPECT_TRUE(r.ExpectEnd().ok());

  // A forged element count larger than the remaining payload is rejected
  // before any allocation happens.
  ByteWriter forged;
  forged.U64(uint64_t{1} << 60);
  ByteReader fr(forged.bytes().data(), forged.size());
  std::vector<uint64_t> out;
  EXPECT_EQ(ReadVecU64(fr, &out).code(), StatusCode::kDataLoss);
}

TEST(WireTest, ExpectEndCatchesTrailingBytes) {
  ByteWriter w;
  w.U32(1);
  w.U8(0);
  ByteReader r(w.bytes().data(), w.size());
  uint32_t v;
  ASSERT_TRUE(r.U32(&v).ok());
  EXPECT_EQ(r.ExpectEnd().code(), StatusCode::kDataLoss);
}

// ------------------------------------------------------------------- CRC --

TEST(Crc32Test, MatchesKnownVector) {
  // The canonical CRC-32/ISO-HDLC check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
}

TEST(Crc32Test, IncrementalEqualsOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t inc = 0;
  inc = Crc32Update(inc, data.data(), 10);
  inc = Crc32Update(inc, data.data() + 10, data.size() - 10);
  EXPECT_EQ(inc, Crc32(data.data(), data.size()));
}

// ------------------------------------------------------------- Container --

std::vector<uint8_t> MakeTwoSectionSnapshot() {
  SnapshotWriter w;
  ByteWriter& a = w.AddSection("alpha");
  a.U64(123);
  a.Str("payload-a");
  ByteWriter& b = w.AddSection("beta");
  b.F64(2.5);
  return w.Finish();
}

TEST(SnapshotContainerTest, RoundTripsSections) {
  auto parsed = SnapshotReader::Parse(MakeTwoSectionSnapshot());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->section_names(),
            (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_TRUE(parsed->HasSection("alpha"));
  EXPECT_FALSE(parsed->HasSection("gamma"));
  EXPECT_EQ(parsed->Section("gamma").status().code(), StatusCode::kNotFound);

  auto a = parsed->Section("alpha");
  ASSERT_TRUE(a.ok());
  uint64_t v;
  std::string s;
  ASSERT_TRUE(a->U64(&v).ok());
  ASSERT_TRUE(a->Str(&s).ok());
  EXPECT_EQ(v, 123u);
  EXPECT_EQ(s, "payload-a");
  EXPECT_TRUE(a->ExpectEnd().ok());

  auto b = parsed->Section("beta");
  ASSERT_TRUE(b.ok());
  double d;
  ASSERT_TRUE(b->F64(&d).ok());
  EXPECT_EQ(d, 2.5);
}

TEST(SnapshotContainerTest, RejectsEveryPossibleTruncation) {
  const std::vector<uint8_t> good = MakeTwoSectionSnapshot();
  for (size_t len = 0; len < good.size(); ++len) {
    std::vector<uint8_t> cut(good.begin(), good.begin() + len);
    auto parsed = SnapshotReader::Parse(std::move(cut));
    EXPECT_FALSE(parsed.ok()) << "truncation to " << len << " bytes accepted";
    EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss);
  }
}

TEST(SnapshotContainerTest, RejectsEverySingleBitFlip) {
  const std::vector<uint8_t> good = MakeTwoSectionSnapshot();
  for (size_t i = 0; i < good.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> bad = good;
      bad[i] ^= uint8_t(1) << bit;
      auto parsed = SnapshotReader::Parse(std::move(bad));
      EXPECT_FALSE(parsed.ok())
          << "bit flip at byte " << i << " bit " << bit << " accepted";
    }
  }
}

TEST(SnapshotContainerTest, RejectsTrailingGarbage) {
  std::vector<uint8_t> bytes = MakeTwoSectionSnapshot();
  bytes.push_back(0x00);
  auto parsed = SnapshotReader::Parse(std::move(bytes));
  EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss);
}

TEST(SnapshotContainerTest, RejectsWrongMagic) {
  std::vector<uint8_t> bytes = MakeTwoSectionSnapshot();
  bytes[0] = 'X';
  EXPECT_EQ(SnapshotReader::Parse(std::move(bytes)).status().code(),
            StatusCode::kDataLoss);
}

TEST(SnapshotContainerTest, EmptySnapshotParses) {
  SnapshotWriter w;
  auto parsed = SnapshotReader::Parse(w.Finish());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->section_names().empty());
}

// ----------------------------------------------------- CheckpointManager --

TEST(CheckpointManagerTest, EmptyDirectoryIsNotFound) {
  CheckpointManager mgr(ScratchDir("empty"));
  ASSERT_TRUE(mgr.Init().ok());
  EXPECT_EQ(mgr.LoadLatestGood().status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(mgr.ListGenerations().empty());
}

TEST(CheckpointManagerTest, WriteLoadRoundTrip) {
  CheckpointManager mgr(ScratchDir("roundtrip"));
  ASSERT_TRUE(mgr.Write(1, MakeTwoSectionSnapshot()).ok());
  auto loaded = mgr.LoadLatestGood();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->sequence, 1u);
  EXPECT_EQ(loaded->rejected, 0);
  EXPECT_TRUE(loaded->snapshot.HasSection("alpha"));
}

TEST(CheckpointManagerTest, PrunesBeyondRetentionWindow) {
  CheckpointManager mgr(ScratchDir("prune"), /*keep_generations=*/2);
  for (uint64_t seq = 1; seq <= 5; ++seq) {
    ASSERT_TRUE(mgr.Write(seq, MakeTwoSectionSnapshot()).ok());
  }
  EXPECT_EQ(mgr.ListGenerations(), (std::vector<uint64_t>{4, 5}));
}

TEST(CheckpointManagerTest, FallsBackPastCorruptNewestGeneration) {
  CheckpointManager mgr(ScratchDir("fallback"));
  ASSERT_TRUE(mgr.Write(1, MakeTwoSectionSnapshot()).ok());
  ASSERT_TRUE(mgr.Write(2, MakeTwoSectionSnapshot()).ok());

  // Flip one byte in the newest generation, as a torn write or bit rot
  // would.
  const std::string path = mgr.GenerationPath(2);
  std::vector<char> bytes;
  {
    std::ifstream is(path, std::ios::binary);
    ASSERT_TRUE(is.is_open());
    bytes.assign(std::istreambuf_iterator<char>(is),
                 std::istreambuf_iterator<char>());
  }
  bytes[bytes.size() / 2] ^= 0x40;
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  auto loaded = mgr.LoadLatestGood();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->sequence, 1u);
  EXPECT_EQ(loaded->rejected, 1);
}

TEST(CheckpointManagerTest, AllGenerationsCorruptIsNotFound) {
  CheckpointManager mgr(ScratchDir("all_bad"));
  ASSERT_TRUE(mgr.Write(1, MakeTwoSectionSnapshot()).ok());
  {
    std::ofstream os(mgr.GenerationPath(1), std::ios::binary | std::ios::trunc);
    os << "garbage";
  }
  auto loaded = mgr.LoadLatestGood();
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(CheckpointManagerTest, CorruptGenerationCounterAccumulatesAcrossLoads) {
  CheckpointManager mgr(ScratchDir("corrupt_counter"));
  EXPECT_EQ(mgr.corrupt_generations_detected(), 0u);
  ASSERT_TRUE(mgr.Write(1, MakeTwoSectionSnapshot()).ok());
  ASSERT_TRUE(mgr.Write(2, MakeTwoSectionSnapshot()).ok());
  ASSERT_TRUE(mgr.Write(3, MakeTwoSectionSnapshot()).ok());

  // Clean load: nothing rejected, counter untouched.
  ASSERT_TRUE(mgr.LoadLatestGood().ok());
  EXPECT_EQ(mgr.corrupt_generations_detected(), 0u);

  // Damage the newest generation: each load skips it and the cumulative
  // counter keeps growing — unlike Loaded::rejected, which reports only
  // the skips of its own load.
  {
    std::ofstream os(mgr.GenerationPath(3), std::ios::binary | std::ios::trunc);
    os << "garbage";
  }
  auto first = mgr.LoadLatestGood();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->sequence, 2u);
  EXPECT_EQ(first->rejected, 1);
  EXPECT_EQ(mgr.corrupt_generations_detected(), 1u);

  auto second = mgr.LoadLatestGood();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->rejected, 1);
  EXPECT_EQ(mgr.corrupt_generations_detected(), 2u);

  // A fully corrupt directory still counts its rejects before NotFound.
  {
    std::ofstream os(mgr.GenerationPath(2), std::ios::binary | std::ios::trunc);
    os << "also garbage";
  }
  EXPECT_EQ(mgr.LoadLatestGood().status().code(), StatusCode::kNotFound);
  EXPECT_EQ(mgr.corrupt_generations_detected(), 4u);
}

TEST(CheckpointPolicyTest, ValidatesKnobs) {
  CheckpointPolicy p;
  EXPECT_TRUE(p.Validate().ok());  // disabled is fine
  p.every_frames = 10;
  EXPECT_FALSE(p.Validate().ok());  // cadence without a directory
  p.directory = "/tmp/x";
  EXPECT_TRUE(p.Validate().ok());
  p.keep_generations = 0;
  EXPECT_FALSE(p.Validate().ok());
}

// ------------------------------------------------------------ Components --

TEST(ArmStatsSnapshotTest, RoundTripsBitExactly) {
  ArmStats a;
  a.Reset(3);
  a.Record(1, 0.25);
  a.Record(1, 0.5);
  a.Record(7, 1.0 / 3.0);

  ByteWriter w;
  a.Save(w);
  ArmStats b;
  b.Reset(3);
  ByteReader r(w.bytes().data(), w.size());
  ASSERT_TRUE(b.Restore(r).ok());
  ASSERT_TRUE(r.ExpectEnd().ok());
  for (EnsembleId s = 1; s <= NumEnsembles(3); ++s) {
    EXPECT_EQ(b.Count(s), a.Count(s));
    EXPECT_EQ(std::bit_cast<uint64_t>(b.Mean(s)),
              std::bit_cast<uint64_t>(a.Mean(s)));
  }
}

TEST(ArmStatsSnapshotTest, RejectsWrongPoolSize) {
  ArmStats a;
  a.Reset(3);
  ByteWriter w;
  a.Save(w);
  ArmStats b;
  b.Reset(2);  // different arm count
  ByteReader r(w.bytes().data(), w.size());
  EXPECT_EQ(b.Restore(r).code(), StatusCode::kDataLoss);
  EXPECT_EQ(b.size(), NumEnsembles(2) + 1);  // untouched
}

TEST(SlidingWindowSnapshotTest, RestoredWindowEvictsIdentically) {
  // Drive two instances: record, snapshot A into B mid-stream, then feed
  // both the same continuation. Eviction depends on the history contents,
  // so only a full window restore keeps them in lockstep.
  SlidingWindowArmStats a;
  a.Reset(2, /*window=*/3);
  a.RecordFrame({{1, 0.1}, {3, 0.7}});
  a.RecordFrame({{2, 0.2}});
  a.RecordFrame({{3, 1.0 / 7.0}});

  ByteWriter w;
  a.Save(w);
  SlidingWindowArmStats b;
  b.Reset(2, 3);
  ByteReader r(w.bytes().data(), w.size());
  ASSERT_TRUE(b.Restore(r).ok());
  ASSERT_TRUE(r.ExpectEnd().ok());
  EXPECT_EQ(b.FramesInWindow(), a.FramesInWindow());

  for (int step = 0; step < 5; ++step) {
    const double reward = 0.3 + 0.1 * step;
    a.RecordFrame({{1, reward}});
    b.RecordFrame({{1, reward}});
    for (EnsembleId s = 1; s <= NumEnsembles(2); ++s) {
      ASSERT_EQ(b.Count(s), a.Count(s)) << "step " << step;
      ASSERT_EQ(std::bit_cast<uint64_t>(b.Mean(s)),
                std::bit_cast<uint64_t>(a.Mean(s)))
          << "step " << step;
    }
  }
}

TEST(SlidingWindowSnapshotTest, RejectsMalformedHistory) {
  SlidingWindowArmStats a;
  a.Reset(2, 3);
  a.RecordFrame({{1, 0.5}});
  ByteWriter w;
  a.Save(w);

  // Window mismatch.
  {
    SlidingWindowArmStats b;
    b.Reset(2, 4);
    ByteReader r(w.bytes().data(), w.size());
    EXPECT_EQ(b.Restore(r).code(), StatusCode::kDataLoss);
  }
  // Arm id out of range inside the history.
  {
    ByteWriter bad;
    WriteVecU64(bad, {0, 0, 0, 0});
    WriteVecF64(bad, {0, 0, 0, 0});
    bad.U64(3);  // window
    bad.U64(1);  // one history frame
    bad.U64(1);  // one observation
    bad.U32(99);  // arm id out of range for m=2
    bad.F64(0.5);
    SlidingWindowArmStats b;
    b.Reset(2, 3);
    ByteReader r(bad.bytes().data(), bad.size());
    EXPECT_EQ(b.Restore(r).code(), StatusCode::kDataLoss);
  }
}

TEST(CircuitBreakerSnapshotTest, RestoredBreakerReplaysTrajectory) {
  CircuitBreakerOptions opts;
  opts.failure_threshold = 2;
  opts.open_frames = 3;
  opts.half_open_probes = 1;

  CircuitBreaker a(opts);
  a.RecordFailure(0);
  a.RecordFailure(1);  // trips open at frame 1
  ASSERT_EQ(a.StateAt(2), BreakerState::kOpen);

  ByteWriter w;
  ASSERT_TRUE(a.SaveState(w).ok());
  CircuitBreaker b(opts);
  ByteReader r(w.bytes().data(), w.size());
  ASSERT_TRUE(b.RestoreState(r).ok());
  ASSERT_TRUE(r.ExpectEnd().ok());

  // Both replay the same trajectory from here.
  for (size_t t = 2; t < 10; ++t) {
    ASSERT_EQ(b.StateAt(t), a.StateAt(t)) << "frame " << t;
    if (a.StateAt(t) == BreakerState::kHalfOpen) {
      a.RecordSuccess(t);
      b.RecordSuccess(t);
    }
  }
  EXPECT_EQ(b.successes(), a.successes());
  EXPECT_EQ(b.failures(), a.failures());
  EXPECT_EQ(b.opens(), a.opens());
}

TEST(CircuitBreakerSnapshotTest, RejectsCorruptState) {
  CircuitBreaker a;
  ByteWriter w;
  ASSERT_TRUE(a.SaveState(w).ok());
  std::vector<uint8_t> bytes = w.bytes();
  bytes[0] = 9;  // state enum out of range
  CircuitBreaker b;
  ByteReader r(bytes.data(), bytes.size());
  EXPECT_EQ(b.RestoreState(r).code(), StatusCode::kDataLoss);
}

TEST(RunResultSnapshotTest, RoundTripsEveryField) {
  RunResult a;
  a.s_sum = 12.75;
  a.avg_true_ap = 6.5;  // mid-run running sum
  a.avg_norm_cost = 3.25;
  a.frames_processed = 17;
  a.regret = 0.125;
  a.regret_available = true;
  a.charged_cost_ms = 987.5;
  a.breakdown.detector_ms = 700.0;
  a.breakdown.reference_ms = 100.0;
  a.breakdown.ensembling_ms = 50.0;
  a.breakdown.fault_ms = 12.5;
  a.breakdown.algorithm_ms = 1.5;
  a.selection_counts = {0, 5, 3, 9};
  a.cost_curve = {{1, 10.5}, {2, 20.25}};
  a.model_availability.resize(2);
  a.model_availability[0].frames_selected = 9;
  a.model_availability[0].frames_failed = 2;
  a.model_availability[0].breaker_opens = 1;
  a.model_availability[0].fault_ms = 7.5;
  a.model_availability[1].frames_selected = 8;
  a.fallback_frames = 3;
  a.failed_frames = 1;
  a.checkpoint.snapshots_written = 99;  // must NOT travel

  ByteWriter w;
  WriteRunResult(w, a);
  RunResult b;
  ByteReader r(w.bytes().data(), w.size());
  ASSERT_TRUE(ReadRunResult(r, &b).ok());
  ASSERT_TRUE(r.ExpectEnd().ok());

  EXPECT_EQ(b.s_sum, a.s_sum);
  EXPECT_EQ(b.avg_true_ap, a.avg_true_ap);
  EXPECT_EQ(b.avg_norm_cost, a.avg_norm_cost);
  EXPECT_EQ(b.frames_processed, a.frames_processed);
  EXPECT_EQ(b.regret, a.regret);
  EXPECT_EQ(b.regret_available, a.regret_available);
  EXPECT_EQ(b.charged_cost_ms, a.charged_cost_ms);
  EXPECT_EQ(b.breakdown.detector_ms, a.breakdown.detector_ms);
  EXPECT_EQ(b.breakdown.reference_ms, a.breakdown.reference_ms);
  EXPECT_EQ(b.breakdown.ensembling_ms, a.breakdown.ensembling_ms);
  EXPECT_EQ(b.breakdown.fault_ms, a.breakdown.fault_ms);
  EXPECT_EQ(b.breakdown.algorithm_ms, a.breakdown.algorithm_ms);
  EXPECT_EQ(b.selection_counts, a.selection_counts);
  EXPECT_EQ(b.cost_curve, a.cost_curve);
  ASSERT_EQ(b.model_availability.size(), 2u);
  EXPECT_EQ(b.model_availability[0].frames_selected, 9u);
  EXPECT_EQ(b.model_availability[0].frames_failed, 2u);
  EXPECT_EQ(b.model_availability[0].breaker_opens, 1u);
  EXPECT_EQ(b.model_availability[0].fault_ms, 7.5);
  EXPECT_EQ(b.model_availability[1].frames_selected, 8u);
  EXPECT_EQ(b.fallback_frames, 3u);
  EXPECT_EQ(b.failed_frames, 1u);
  EXPECT_EQ(b.checkpoint.snapshots_written, 0u);  // per-invocation only
}

TEST(EngineIdentityTest, DetectsEveryMismatch) {
  EngineRunIdentity base;
  base.strategy_name = "MES";
  base.num_models = 3;
  base.num_frames = 100;
  base.strategy_seed = 42;
  base.budget_ms = 500.0;

  ByteWriter w;
  WriteEngineIdentity(w, base);
  ByteReader r(w.bytes().data(), w.size());
  EngineRunIdentity read_back;
  ASSERT_TRUE(ReadEngineIdentity(r, &read_back).ok());
  ASSERT_TRUE(r.ExpectEnd().ok());
  EXPECT_TRUE(read_back.ExpectMatches(base).ok());

  auto expect_mismatch = [&](EngineRunIdentity other) {
    EXPECT_EQ(base.ExpectMatches(other).code(),
              StatusCode::kFailedPrecondition);
  };
  EngineRunIdentity m = base;
  m.strategy_name = "RAND";
  expect_mismatch(m);
  m = base;
  m.num_models = 4;
  expect_mismatch(m);
  m = base;
  m.strategy_seed = 43;
  expect_mismatch(m);
  m = base;
  m.budget_ms = 501.0;
  expect_mismatch(m);
  m = base;
  m.sc.w1 += 0.5;
  expect_mismatch(m);
  m = base;
  m.compute_regret = !m.compute_regret;
  expect_mismatch(m);
  m = base;
  m.breaker.failure_threshold += 1;
  expect_mismatch(m);
}

// ------------------------------------------------------------------- RNG --

TEST(RngSnapshotTest, RestoredStreamContinuesExactly) {
  Rng a = MakeStreamRng(123, 4, 5);
  for (int i = 0; i < 17; ++i) a.Next();

  uint64_t state[4];
  a.GetState(state);
  Rng b;  // different stream entirely until restored
  ASSERT_TRUE(b.SetState(state));
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(b.Next(), a.Next()) << "draw " << i;
  }
}

TEST(RngSnapshotTest, RejectsAllZeroState) {
  Rng a = MakeStreamRng(1, 2);
  const uint64_t before = Rng(a).Next();
  const uint64_t zeros[4] = {0, 0, 0, 0};
  EXPECT_FALSE(a.SetState(zeros));
  EXPECT_EQ(Rng(a).Next(), before);  // state untouched
}

}  // namespace
}  // namespace vqe
