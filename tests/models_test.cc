// Tests for the simulated detector substrate: structure specs (Table 3),
// context affinity, the detection channel's statistical properties, the
// LiDAR-like reference model, and the model zoo.

#include <gtest/gtest.h>

#include <cmath>

#include "detection/ap.h"
#include "models/model_zoo.h"
#include "models/reference_detector.h"
#include "models/simulated_detector.h"
#include "sim/scene_generator.h"

namespace vqe {
namespace {

VideoFrame MakeFrame(int objects, SceneContext ctx = SceneContext::kClear,
                     uint64_t seed = 3) {
  SceneGeneratorOptions opt;
  opt.initial_objects_mean = objects;
  opt.difficult_fraction = 0.0;
  Video v = GenerateScene(opt, ctx, 0, 1, seed);
  VideoFrame frame = v.frames.at(0);
  frame.context = ctx;
  return frame;
}

// ------------------------------------------------------- structure spec --

TEST(StructureSpecTest, Table3ParameterCounts) {
  EXPECT_EQ(GetStructureSpec(DetectorStructure::kYoloV7).param_count,
            37'200'000u);
  EXPECT_EQ(GetStructureSpec(DetectorStructure::kYoloV7Tiny).param_count,
            6'030'000u);
  EXPECT_EQ(GetStructureSpec(DetectorStructure::kYoloV7Micro).param_count,
            2'680'000u);
  EXPECT_EQ(GetStructureSpec(DetectorStructure::kFasterRcnn).param_count,
            42'100'000u);
}

TEST(StructureSpecTest, Table3InferenceTimes) {
  EXPECT_DOUBLE_EQ(GetStructureSpec(DetectorStructure::kYoloV7).cost_ms_mean,
                   49.5);
  EXPECT_DOUBLE_EQ(
      GetStructureSpec(DetectorStructure::kYoloV7Tiny).cost_ms_mean, 10.0);
  EXPECT_DOUBLE_EQ(
      GetStructureSpec(DetectorStructure::kYoloV7Micro).cost_ms_mean, 7.7);
  EXPECT_DOUBLE_EQ(
      GetStructureSpec(DetectorStructure::kFasterRcnn).cost_ms_mean, 212.0);
}

TEST(StructureSpecTest, AccuracyOrderingMatchesPaper) {
  // Paper §5.2: accuracy YOLOv7 > tiny > micro > Faster R-CNN.
  const double v7 = GetStructureSpec(DetectorStructure::kYoloV7).recall_base;
  const double tiny =
      GetStructureSpec(DetectorStructure::kYoloV7Tiny).recall_base;
  const double micro =
      GetStructureSpec(DetectorStructure::kYoloV7Micro).recall_base;
  const double frcnn =
      GetStructureSpec(DetectorStructure::kFasterRcnn).recall_base;
  EXPECT_GT(v7, tiny);
  EXPECT_GT(tiny, micro);
  EXPECT_GT(micro, frcnn);
}

// ------------------------------------------------------ context affinity --

TEST(ContextAffinityTest, DiagonalIsOne) {
  for (int c = 0; c < kNumSceneContexts; ++c) {
    EXPECT_DOUBLE_EQ(ContextAffinity(static_cast<SceneContext>(c),
                                     static_cast<SceneContext>(c)),
                     1.0);
  }
}

TEST(ContextAffinityTest, OffDiagonalDegrades) {
  for (int a = 0; a < kNumSceneContexts; ++a) {
    for (int b = 0; b < kNumSceneContexts; ++b) {
      const double aff = ContextAffinity(static_cast<SceneContext>(a),
                                         static_cast<SceneContext>(b));
      EXPECT_GT(aff, 0.0);
      EXPECT_LE(aff, 1.0);
      if (a != b) EXPECT_LT(aff, 1.0);
    }
  }
}

TEST(ContextAffinityTest, NightIsHardestTransfer) {
  // Day-trained models lose the most at night (paper's motivation).
  EXPECT_LT(ContextAffinity(SceneContext::kClear, SceneContext::kNight),
            ContextAffinity(SceneContext::kClear, SceneContext::kRainy));
}

// ----------------------------------------------------- simulated detector --

TEST(SimulatedDetectorTest, DeterministicPerTrialSeed) {
  SimulatedDetector det({"tiny@clear", DetectorStructure::kYoloV7Tiny,
                         SceneContext::kClear, 1.0});
  const VideoFrame frame = MakeFrame(6);
  const auto a = det.Detect(frame, 5);
  const auto b = det.Detect(frame, 5);
  const auto c = det.Detect(frame, 6);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].box, b[i].box);
    EXPECT_DOUBLE_EQ(a[i].confidence, b[i].confidence);
  }
  bool differs = a.size() != c.size();
  for (size_t i = 0; !differs && i < a.size(); ++i) {
    differs = !(a[i].box == c[i].box);
  }
  EXPECT_TRUE(differs);
}

TEST(SimulatedDetectorTest, QualityInMatchesAffinity) {
  SimulatedDetector det({"tiny@night", DetectorStructure::kYoloV7Tiny,
                         SceneContext::kNight, 1.0});
  EXPECT_DOUBLE_EQ(det.QualityIn(SceneContext::kNight), 1.0);
  EXPECT_DOUBLE_EQ(det.QualityIn(SceneContext::kClear),
                   ContextAffinity(SceneContext::kNight, SceneContext::kClear));
}

TEST(SimulatedDetectorTest, InDomainBeatsOutOfDomainAp) {
  SimulatedDetector det({"tiny@clear", DetectorStructure::kYoloV7Tiny,
                         SceneContext::kClear, 1.0});
  double ap_in = 0.0, ap_out = 0.0;
  const int kTrials = 60;
  for (int s = 0; s < kTrials; ++s) {
    const VideoFrame in_frame = MakeFrame(6, SceneContext::kClear, s);
    VideoFrame out_frame = in_frame;
    out_frame.context = SceneContext::kNight;
    ap_in += FrameMeanAp(det.Detect(in_frame, s), in_frame.objects, {});
    ap_out += FrameMeanAp(det.Detect(out_frame, s), out_frame.objects, {});
  }
  EXPECT_GT(ap_in / kTrials, ap_out / kTrials + 0.15);
}

TEST(SimulatedDetectorTest, BetterStructureHasBetterAp) {
  SimulatedDetector big({"v7@clear", DetectorStructure::kYoloV7,
                         SceneContext::kClear, 1.0});
  SimulatedDetector small({"micro@clear", DetectorStructure::kYoloV7Micro,
                           SceneContext::kClear, 1.0});
  double ap_big = 0.0, ap_small = 0.0;
  const int kTrials = 60;
  for (int s = 0; s < kTrials; ++s) {
    const VideoFrame frame = MakeFrame(6, SceneContext::kClear, s);
    ap_big += FrameMeanAp(big.Detect(frame, s), frame.objects, {});
    ap_small += FrameMeanAp(small.Detect(frame, s), frame.objects, {});
  }
  EXPECT_GT(ap_big / kTrials, ap_small / kTrials + 0.1);
}

TEST(SimulatedDetectorTest, CostMatchesTable3Mean) {
  SimulatedDetector det({"tiny@clear", DetectorStructure::kYoloV7Tiny,
                         SceneContext::kClear, 1.0});
  double sum = 0.0;
  const int kTrials = 500;
  for (int s = 0; s < kTrials; ++s) {
    VideoFrame frame = MakeFrame(3);
    frame.frame_index = s;
    const double c = det.InferenceCostMs(frame, s);
    EXPECT_GT(c, 0.0);
    sum += c;
  }
  EXPECT_NEAR(sum / kTrials, 10.0, 0.3);
}

TEST(SimulatedDetectorTest, DetectionsStayInImage) {
  SimulatedDetector det({"micro@clear", DetectorStructure::kYoloV7Micro,
                         SceneContext::kClear, 1.0});
  for (int s = 0; s < 20; ++s) {
    const VideoFrame frame = MakeFrame(8, SceneContext::kClear, s);
    for (const auto& d : det.Detect(frame, s)) {
      EXPECT_GE(d.box.x1, 0.0);
      EXPECT_LE(d.box.x2, frame.image_width);
      EXPECT_GE(d.box.y1, 0.0);
      EXPECT_LE(d.box.y2, frame.image_height);
      EXPECT_GE(d.confidence, 0.0);
      EXPECT_LE(d.confidence, 1.0);
      EXPECT_FALSE(d.box.IsEmpty());
    }
  }
}

TEST(SimulatedDetectorTest, OutOfDomainProducesMoreFalsePositives) {
  SimulatedDetector det({"tiny@clear", DetectorStructure::kYoloV7Tiny,
                         SceneContext::kClear, 1.0});
  // Count detections on empty frames (all are FPs by construction).
  VideoFrame empty;
  empty.image_width = 1600;
  empty.image_height = 900;
  double fp_in = 0.0, fp_out = 0.0;
  for (int s = 0; s < 300; ++s) {
    empty.frame_index = s;
    empty.context = SceneContext::kClear;
    fp_in += det.Detect(empty, s).size();
    empty.context = SceneContext::kNight;
    fp_out += det.Detect(empty, s).size();
  }
  EXPECT_GT(fp_out, fp_in * 1.5);
}

TEST(SimulatedDetectorTest, ProfileValidation) {
  EXPECT_FALSE(MakeSimulatedDetector({"", DetectorStructure::kYoloV7,
                                      SceneContext::kClear, 1.0})
                   .ok());
  EXPECT_FALSE(MakeSimulatedDetector({"x", DetectorStructure::kYoloV7,
                                      SceneContext::kClear, 0.0})
                   .ok());
  EXPECT_TRUE(MakeSimulatedDetector({"x", DetectorStructure::kYoloV7,
                                     SceneContext::kClear, 1.0})
                  .ok());
}

// ----------------------------------------------------- reference detector --

TEST(ReferenceDetectorTest, RobustAcrossContexts) {
  ReferenceDetector ref;
  double recall[2] = {0, 0};
  size_t gts[2] = {0, 0};
  for (int s = 0; s < 80; ++s) {
    const VideoFrame clear_frame = MakeFrame(6, SceneContext::kClear, s);
    VideoFrame night_frame = clear_frame;
    night_frame.context = SceneContext::kNight;
    const MatchResult m0 =
        MatchDetections(ref.Detect(clear_frame, s), clear_frame.objects, 0.4);
    const MatchResult m1 =
        MatchDetections(ref.Detect(night_frame, s), night_frame.objects, 0.4);
    for (const auto& m : m0.matches) recall[0] += m.is_tp ? 1 : 0;
    for (const auto& m : m1.matches) recall[1] += m.is_tp ? 1 : 0;
    gts[0] += m0.num_gt;
    gts[1] += m1.num_gt;
  }
  const double r_clear = recall[0] / static_cast<double>(gts[0]);
  const double r_night = recall[1] / static_cast<double>(gts[1]);
  EXPECT_NEAR(r_clear, r_night, 0.05);  // LiDAR does not care about light
  EXPECT_GT(r_clear, 0.4);
}

TEST(ReferenceDetectorTest, MuchCheaperThanCameraModels) {
  ReferenceDetector ref;
  const VideoFrame frame = MakeFrame(4);
  const double ref_cost = ref.InferenceCostMs(frame, 1);
  for (DetectorStructure s :
       {DetectorStructure::kYoloV7, DetectorStructure::kYoloV7Tiny,
        DetectorStructure::kYoloV7Micro, DetectorStructure::kFasterRcnn}) {
    EXPECT_LT(ref_cost * 2, GetStructureSpec(s).cost_ms_mean);
  }
}

TEST(ReferenceDetectorTest, EstimatedApPreservesRanking) {
  // AP measured against REF boxes must rank a good detector above a bad
  // one, which is all the paper requires of the estimate (§2.3).
  ReferenceDetector ref;
  SimulatedDetector good({"v7@clear", DetectorStructure::kYoloV7,
                          SceneContext::kClear, 1.0});
  SimulatedDetector bad({"micro@night", DetectorStructure::kYoloV7Micro,
                         SceneContext::kNight, 1.0});
  double est_good = 0, est_bad = 0, true_good = 0, true_bad = 0;
  const int kTrials = 80;
  for (int s = 0; s < kTrials; ++s) {
    const VideoFrame frame = MakeFrame(6, SceneContext::kClear, s);
    const auto ref_gt = DetectionsAsGroundTruth(ref.Detect(frame, s), 0.5);
    est_good += FrameMeanAp(good.Detect(frame, s), ref_gt, {});
    est_bad += FrameMeanAp(bad.Detect(frame, s), ref_gt, {});
    true_good += FrameMeanAp(good.Detect(frame, s), frame.objects, {});
    true_bad += FrameMeanAp(bad.Detect(frame, s), frame.objects, {});
  }
  EXPECT_GT(true_good, true_bad);  // sanity
  EXPECT_GT(est_good, est_bad);    // the ranking survives estimation
}

// -------------------------------------------------------------- model zoo --

TEST(ModelZooTest, NuscenesPoolSizes) {
  for (int m : {2, 3, 5}) {
    const auto pool = BuildNuscenesPool(m);
    ASSERT_TRUE(pool.ok()) << m;
    EXPECT_EQ(static_cast<int>(pool->size()), m);
    EXPECT_NE(pool->reference, nullptr);
  }
  EXPECT_FALSE(BuildNuscenesPool(4).ok());
  EXPECT_FALSE(BuildNuscenesPool(0).ok());
}

TEST(ModelZooTest, PoolPrefixesAreStable) {
  // Figure 11 reduces m by taking prefixes; the m=3 pool must be the first
  // three detectors of the m=5 pool.
  const auto p3 = BuildNuscenesPool(3);
  const auto p5 = BuildNuscenesPool(5);
  ASSERT_TRUE(p3.ok() && p5.ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(p3->detectors[i]->name(), p5->detectors[i]->name());
  }
}

TEST(ModelZooTest, BddPool) {
  const auto pool = BuildBddPool(5);
  ASSERT_TRUE(pool.ok());
  EXPECT_EQ(pool->size(), 5u);
  bool has_frcnn = false;
  for (const auto& d : pool->detectors) {
    if (d->structure_name() == "Faster R-CNN") has_frcnn = true;
  }
  EXPECT_TRUE(has_frcnn);
}

TEST(ModelZooTest, PoolForDataset) {
  const auto nusc = BuildPoolForDataset("nusc-night", 3);
  ASSERT_TRUE(nusc.ok());
  const auto bdd = BuildPoolForDataset("bdd-rainy", 3);
  ASSERT_TRUE(bdd.ok());
  EXPECT_NE(nusc->detectors[0]->name(), bdd->detectors[0]->name());
}

TEST(ModelZooTest, BuildPoolRejectsEmptyAndHuge) {
  EXPECT_FALSE(BuildPool({}).ok());
  std::vector<DetectorProfile> many(21, {"x", DetectorStructure::kYoloV7Tiny,
                                         SceneContext::kClear, 1.0});
  EXPECT_FALSE(BuildPool(many).ok());
}

TEST(ModelZooTest, ParseDetectorName) {
  const auto p = ParseDetectorName("yolov7-tiny@night");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->structure, DetectorStructure::kYoloV7Tiny);
  EXPECT_EQ(p->trained_on, SceneContext::kNight);

  EXPECT_TRUE(ParseDetectorName("faster-rcnn@snow").ok());
  EXPECT_TRUE(ParseDetectorName("YOLOV7@CLEAR").ok());
  EXPECT_FALSE(ParseDetectorName("yolov9@clear").ok());
  EXPECT_FALSE(ParseDetectorName("yolov7").ok());
  EXPECT_FALSE(ParseDetectorName("yolov7@fog").ok());
  EXPECT_FALSE(ParseDetectorName("@clear").ok());
}

}  // namespace
}  // namespace vqe
