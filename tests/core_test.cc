// Tests for the paper's core machinery: scoring function, arm statistics,
// the experiment engine (budget, regret, accounting invariants), and LRBP.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/arm_stats.h"
#include "core/baselines.h"
#include "core/engine.h"
#include "core/lrbp.h"
#include "core/mes.h"
#include "core/pareto.h"
#include "core/scoring.h"
#include "test_util.h"

namespace vqe {
namespace {

// ---------------------------------------------------------------- scoring --

TEST(ScoringTest, BoundsAndEndpoints) {
  ScoringFunction sc{0.5, 0.5};
  EXPECT_DOUBLE_EQ(sc.Score(1.0, 0.0), 1.0);  // perfect AP, free
  EXPECT_DOUBLE_EQ(sc.Score(0.0, 1.0), 0.0);  // useless and maximally slow
  EXPECT_NEAR(sc.Score(0.0, 0.0), 0.5, 1e-12);
  EXPECT_NEAR(sc.Score(1.0, 1.0), 0.5, 1e-12);
}

TEST(ScoringTest, ClampsOutOfRangeInputs) {
  ScoringFunction sc{0.5, 0.5};
  EXPECT_DOUBLE_EQ(sc.Score(2.0, -1.0), sc.Score(1.0, 0.0));
}

TEST(ScoringTest, Validation) {
  EXPECT_TRUE((ScoringFunction{0.5, 0.5}).Validate().ok());
  EXPECT_TRUE((ScoringFunction{0.0, 1.0}).Validate().ok());
  EXPECT_FALSE((ScoringFunction{0.6, 0.6}).Validate().ok());
  EXPECT_FALSE((ScoringFunction{-0.1, 1.1}).Validate().ok());
}

// Monotonicity sweep: score rises in AP and falls in cost for all weights.
class ScoringMonotonicityTest : public ::testing::TestWithParam<double> {};

TEST_P(ScoringMonotonicityTest, MonotoneInApAndCost) {
  const double w1 = GetParam();
  ScoringFunction sc{w1, 1.0 - w1};
  for (double ap = 0.0; ap < 0.99; ap += 0.1) {
    for (double cost = 0.0; cost < 0.99; cost += 0.1) {
      const double base = sc.Score(ap, cost);
      if (w1 > 0) EXPECT_GT(sc.Score(ap + 0.1, cost), base);
      if (w1 < 1) EXPECT_LT(sc.Score(ap, cost + 0.1), base);
      EXPECT_GE(base, 0.0);
      EXPECT_LE(base, 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Weights, ScoringMonotonicityTest,
                         ::testing::Values(0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0));

// -------------------------------------------------------------- arm stats --

TEST(ArmStatsTest, RunningMean) {
  ArmStats stats;
  stats.Reset(2);
  EXPECT_EQ(stats.Count(1), 0u);
  EXPECT_DOUBLE_EQ(stats.Mean(1), 0.0);
  stats.Record(1, 0.5);
  stats.Record(1, 1.0);
  stats.Record(1, 0.0);
  EXPECT_EQ(stats.Count(1), 3u);
  EXPECT_NEAR(stats.Mean(1), 0.5, 1e-12);
  EXPECT_EQ(stats.Count(2), 0u);  // other arms untouched
}

TEST(ArmStatsTest, ResetClears) {
  ArmStats stats;
  stats.Reset(2);
  stats.Record(3, 1.0);
  stats.Reset(2);
  EXPECT_EQ(stats.Count(3), 0u);
}

TEST(SlidingWindowStatsTest, EvictsBeyondWindow) {
  SlidingWindowArmStats stats;
  stats.Reset(2, /*window=*/2);
  stats.RecordFrame({{1, 1.0}});
  stats.RecordFrame({{1, 0.0}});
  EXPECT_EQ(stats.Count(1), 2u);
  EXPECT_NEAR(stats.Mean(1), 0.5, 1e-12);
  stats.RecordFrame({{2, 0.7}});  // evicts the first frame
  EXPECT_EQ(stats.Count(1), 1u);
  EXPECT_NEAR(stats.Mean(1), 0.0, 1e-12);
  EXPECT_EQ(stats.FramesInWindow(), 2u);
}

TEST(SlidingWindowStatsTest, MatchesNaiveRecomputation) {
  Rng rng(8);
  SlidingWindowArmStats stats;
  const size_t window = 7;
  stats.Reset(3, window);
  std::vector<std::vector<std::pair<EnsembleId, double>>> history;
  for (int t = 0; t < 100; ++t) {
    std::vector<std::pair<EnsembleId, double>> obs;
    const EnsembleId sel = 1 + rng.UniformInt(7);
    ForEachSubset(sel, [&](EnsembleId s) {
      obs.emplace_back(s, rng.NextDouble());
    });
    history.push_back(obs);
    stats.RecordFrame(obs);

    // Naive recomputation over the last `window` frames.
    const size_t start = history.size() > window ? history.size() - window : 0;
    for (EnsembleId s = 1; s <= 7; ++s) {
      uint64_t count = 0;
      double sum = 0;
      for (size_t h = start; h < history.size(); ++h) {
        for (const auto& [arm, r] : history[h]) {
          if (arm == s) {
            ++count;
            sum += r;
          }
        }
      }
      ASSERT_EQ(stats.Count(s), count) << "arm " << s << " at t=" << t;
      if (count > 0) {
        ASSERT_NEAR(stats.Mean(s), sum / count, 1e-9);
      }
    }
  }
}

// Synthetic matrices come from tests/test_util.h.
using test::SimpleTwoModelMatrix;
using test::SyntheticMatrix;

// ----------------------------------------------------------------- engine --

EngineOptions DefaultEngine() {
  EngineOptions opt;
  opt.sc = ScoringFunction{0.5, 0.5};
  return opt;
}

TEST(EngineTest, OptHasZeroRegretAndTopScore) {
  const FrameMatrix matrix = SimpleTwoModelMatrix(200);
  OptStrategy opt_strategy;
  const auto run = RunStrategy(matrix, &opt_strategy, DefaultEngine());
  ASSERT_TRUE(run.ok());
  EXPECT_DOUBLE_EQ(run->regret, 0.0);
  EXPECT_EQ(run->frames_processed, 200u);
}

TEST(EngineTest, SelectionCountsSumToFrames) {
  const FrameMatrix matrix = SimpleTwoModelMatrix(150);
  MesStrategy mes({/*gamma=*/5});
  const auto run = RunStrategy(matrix, &mes, DefaultEngine());
  ASSERT_TRUE(run.ok());
  uint64_t total = 0;
  for (uint64_t c : run->selection_counts) total += c;
  EXPECT_EQ(total, run->frames_processed);
}

TEST(EngineTest, BruteForceAlwaysPaysMaxCost) {
  const FrameMatrix matrix = SimpleTwoModelMatrix(100);
  BruteForceStrategy bf;
  const auto run = RunStrategy(matrix, &bf, DefaultEngine());
  ASSERT_TRUE(run.ok());
  EXPECT_NEAR(run->avg_norm_cost, 1.0, 1e-9);
  EXPECT_EQ(run->selection_counts[3], 100u);
}

TEST(EngineTest, RegretNonNegative) {
  const FrameMatrix matrix = SimpleTwoModelMatrix(100);
  for (int variant = 0; variant < 3; ++variant) {
    std::unique_ptr<SelectionStrategy> strategy;
    if (variant == 0) strategy = std::make_unique<RandomStrategy>();
    if (variant == 1) strategy = std::make_unique<MesStrategy>();
    if (variant == 2) strategy = std::make_unique<BruteForceStrategy>();
    const auto run = RunStrategy(matrix, strategy.get(), DefaultEngine());
    ASSERT_TRUE(run.ok());
    EXPECT_GE(run->regret, 0.0);
  }
}

TEST(EngineTest, BudgetStopsProcessing) {
  const FrameMatrix matrix = SimpleTwoModelMatrix(500);
  EngineOptions opt = DefaultEngine();
  // Each frame costs >= 10ms; 200ms allows ~20 frames at most (init frames
  // cost ~20ms each).
  opt.budget_ms = 200.0;
  MesStrategy mes({/*gamma=*/2});
  const auto run = RunStrategy(matrix, &mes, opt);
  ASSERT_TRUE(run.ok());
  EXPECT_LT(run->frames_processed, 30u);
  EXPECT_GT(run->frames_processed, 5u);
  // Overshoot bounded by one frame's cost (Alg. 2 checks at loop top).
  EXPECT_LE(run->charged_cost_ms, opt.budget_ms + 25.0);
}

TEST(EngineTest, ZeroBudgetMeansUnrestricted) {
  const FrameMatrix matrix = SimpleTwoModelMatrix(50);
  MesStrategy mes({/*gamma=*/2});
  const auto run = RunStrategy(matrix, &mes, DefaultEngine());
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->frames_processed, 50u);
}

TEST(EngineTest, CostCurveRecordedWhenRequested) {
  const FrameMatrix matrix = SimpleTwoModelMatrix(60);
  EngineOptions opt = DefaultEngine();
  opt.record_cost_curve = true;
  MesStrategy mes({/*gamma=*/2});
  const auto run = RunStrategy(matrix, &mes, opt);
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run->cost_curve.size(), 60u);
  // Strictly increasing cumulative cost, 1-based iterations.
  EXPECT_EQ(run->cost_curve.front().first, 1u);
  for (size_t i = 1; i < run->cost_curve.size(); ++i) {
    EXPECT_GT(run->cost_curve[i].second, run->cost_curve[i - 1].second);
  }
}

TEST(EngineTest, BreakdownAccountsComponents) {
  const FrameMatrix matrix = SimpleTwoModelMatrix(100);
  MesStrategy mes({/*gamma=*/5});
  const auto run = RunStrategy(matrix, &mes, DefaultEngine());
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run->breakdown.detector_ms, 0.0);
  EXPECT_GT(run->breakdown.reference_ms, 0.0);  // MES uses REF every frame
  EXPECT_GT(run->breakdown.ensembling_ms, 0.0);
  // Ensembling overhead is tiny relative to inference (paper Fig. 13).
  EXPECT_LT(run->breakdown.ensembling_ms,
            0.05 * run->breakdown.detector_ms);
  // charged = detectors + ensembling (REF excluded per Alg. 2).
  EXPECT_NEAR(run->charged_cost_ms,
              run->breakdown.detector_ms + run->breakdown.ensembling_ms,
              1e-6);
}

TEST(EngineTest, OracleFreeStrategiesDontPayReference) {
  const FrameMatrix matrix = SimpleTwoModelMatrix(50);
  BruteForceStrategy bf;
  const auto run = RunStrategy(matrix, &bf, DefaultEngine());
  ASSERT_TRUE(run.ok());
  EXPECT_DOUBLE_EQ(run->breakdown.reference_ms, 0.0);
}

TEST(EngineTest, RejectsBadOptions) {
  const FrameMatrix matrix = SimpleTwoModelMatrix(10);
  MesStrategy mes;
  EngineOptions opt = DefaultEngine();
  opt.budget_ms = -1;
  EXPECT_FALSE(RunStrategy(matrix, &mes, opt).ok());
  opt = DefaultEngine();
  opt.sc.w1 = 0.9;  // weights no longer sum to 1
  EXPECT_FALSE(RunStrategy(matrix, &mes, opt).ok());
  EXPECT_FALSE(RunStrategy(matrix, nullptr, DefaultEngine()).ok());
}

// ------------------------------------------------------------------- LRBP --

TEST(LrbpTest, ExactOnLinearCostCurve) {
  std::vector<std::pair<size_t, double>> curve;
  for (size_t t = 1; t <= 100; ++t) {
    curve.emplace_back(t, 12.5 * t);
  }
  const auto pred = PredictExtraBudget(curve, 400);
  ASSERT_TRUE(pred.ok());
  EXPECT_NEAR(pred->total_cost, 12.5 * 400, 1e-6);
  EXPECT_NEAR(pred->b_extra, 12.5 * 300, 1e-6);
  EXPECT_NEAR(pred->fit.slope, 12.5, 1e-9);
}

TEST(LrbpTest, NoisyCurveWithinTolerance) {
  Rng rng(10);
  std::vector<std::pair<size_t, double>> curve;
  double c = 0;
  for (size_t t = 1; t <= 500; ++t) {
    c += 20.0 + rng.Gaussian(0, 5.0);
    curve.emplace_back(t, c);
  }
  const auto pred = PredictExtraBudget(curve, 1000);
  ASSERT_TRUE(pred.ok());
  const double actual_extra = 20.0 * 500;
  EXPECT_NEAR(pred->b_extra, actual_extra, 0.1 * actual_extra);
}

TEST(LrbpTest, FullyProcessedVideoNeedsNothing) {
  std::vector<std::pair<size_t, double>> curve;
  for (size_t t = 1; t <= 50; ++t) curve.emplace_back(t, 10.0 * t);
  const auto pred = PredictExtraBudget(curve, 50);
  ASSERT_TRUE(pred.ok());
  EXPECT_NEAR(pred->b_extra, 0.0, 1e-9);
}

TEST(LrbpTest, ErrorCases) {
  EXPECT_FALSE(PredictExtraBudget({}, 10).ok());
  EXPECT_FALSE(PredictExtraBudget({{1, 5.0}}, 10).ok());
  std::vector<std::pair<size_t, double>> curve{{1, 5.0}, {2, 9.0}};
  EXPECT_FALSE(PredictExtraBudget(curve, 1).ok());  // fewer than processed
  EXPECT_TRUE(PredictExtraBudget(curve, 2).ok());
}

TEST(LrbpTest, EngineCurveFeedsLrbp) {
  const FrameMatrix matrix = SimpleTwoModelMatrix(400);
  EngineOptions opt = DefaultEngine();
  opt.budget_ms = 1500.0;
  opt.record_cost_curve = true;
  MesStrategy mes({/*gamma=*/3});
  const auto run = RunStrategy(matrix, &mes, opt);
  ASSERT_TRUE(run.ok());
  ASSERT_LT(run->frames_processed, 400u);
  const auto pred = PredictExtraBudget(run->cost_curve, 400);
  ASSERT_TRUE(pred.ok());
  EXPECT_GT(pred->b_extra, 0.0);

  // The prediction should land within 25% of the true remaining cost,
  // measured by actually finishing the video without a budget.
  MesStrategy mes_full({/*gamma=*/3});
  EngineOptions unrestricted = DefaultEngine();
  const auto full = RunStrategy(matrix, &mes_full, unrestricted);
  ASSERT_TRUE(full.ok());
  const double actual_extra = full->charged_cost_ms - run->charged_cost_ms;
  EXPECT_NEAR(pred->b_extra, actual_extra, 0.25 * actual_extra);
}

// ----------------------------------------------------------------- pareto --

TEST(ParetoTest, Dominance) {
  EnsemblePoint a{1, 0.8, 0.2};
  EnsemblePoint b{2, 0.7, 0.3};
  EnsemblePoint c{3, 0.8, 0.2};
  EXPECT_TRUE(Dominates(a, b));
  EXPECT_FALSE(Dominates(b, a));
  EXPECT_FALSE(Dominates(a, c));  // equal points don't dominate
}

TEST(ParetoTest, FrontierAgainstBruteForce) {
  Rng rng(21);
  std::vector<EnsemblePoint> points;
  for (uint32_t i = 1; i <= 31; ++i) {
    points.push_back({i, rng.NextDouble(), rng.NextDouble()});
  }
  const auto frontier = ParetoFrontier(points);
  ASSERT_FALSE(frontier.empty());
  // Brute force: a point is on the frontier iff nothing dominates it.
  for (const auto& p : points) {
    bool dominated = false;
    for (const auto& q : points) {
      if (Dominates(q, p)) dominated = true;
    }
    const bool on_frontier =
        std::any_of(frontier.begin(), frontier.end(),
                    [&](const EnsemblePoint& f) { return f.id == p.id; });
    EXPECT_EQ(on_frontier, !dominated) << "point " << p.id;
  }
  // Frontier sorted by cost with strictly increasing AP.
  for (size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_GE(frontier[i].avg_norm_cost, frontier[i - 1].avg_norm_cost);
    EXPECT_GT(frontier[i].avg_ap, frontier[i - 1].avg_ap);
  }
}

TEST(ParetoTest, ObjectivesFromMatrix) {
  const FrameMatrix matrix = SimpleTwoModelMatrix(100);
  const auto points = EnsembleObjectives(matrix);
  ASSERT_EQ(points.size(), 3u);
  // Arm 3 (both models) has roughly double the cost of arm 1.
  EXPECT_GT(points[2].avg_norm_cost, points[0].avg_norm_cost * 1.5);
  // Arm 1 (AP 0.8) clearly better than arm 2 (AP 0.3).
  EXPECT_GT(points[0].avg_ap, points[1].avg_ap);
  const auto frontier = ParetoFrontier(points);
  // Arm 2 is dominated by arm 1 (same cost, lower AP).
  for (const auto& f : frontier) EXPECT_NE(f.id, 2u);
}

}  // namespace
}  // namespace vqe
