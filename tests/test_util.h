// Shared helpers for tests: synthetic frame matrices with controlled
// per-arm reward structure (and optional concept drift).

#ifndef VQE_TESTS_TEST_UTIL_H_
#define VQE_TESTS_TEST_UTIL_H_

#include <vector>

#include "common/math_util.h"
#include "common/rng.h"
#include "core/frame_matrix.h"

namespace vqe {
namespace test {

/// Builds a synthetic matrix with per-arm mean true APs (arm_ap indexed by
/// mask; index 0 unused) and per-model costs. When drift_flip is set, the
/// AP profile of every arm is swapped with its complement arm at the
/// midpoint frame — an abrupt breakpoint in the §2.4 sense. Estimated AP is
/// true AP plus independent noise (reference-model estimation error).
inline FrameMatrix SyntheticMatrix(int m, size_t frames,
                                   std::vector<double> arm_ap,
                                   std::vector<double> model_cost,
                                   bool drift_flip = false,
                                   double noise = 0.05, uint64_t seed = 1) {
  const uint32_t num_masks = NumEnsembles(m);
  FrameMatrix matrix;
  matrix.num_models = m;
  for (int i = 0; i < m; ++i) {
    matrix.model_names.push_back("M" + std::to_string(i));
  }
  Rng rng(seed);
  for (size_t t = 0; t < frames; ++t) {
    FrameEvaluation fe;
    fe.context = SceneContext::kClear;
    fe.est_ap.assign(num_masks + 1, 0.0);
    fe.true_ap.assign(num_masks + 1, 0.0);
    fe.cost_ms.assign(num_masks + 1, 0.0);
    fe.fusion_overhead_ms.assign(num_masks + 1, 0.01);
    fe.model_cost_ms = model_cost;
    fe.ref_cost_ms = 1.0;
    const bool flipped = drift_flip && t >= frames / 2;
    for (EnsembleId s = 1; s <= num_masks; ++s) {
      EnsembleId key = s;
      if (flipped) {
        const EnsembleId complement = num_masks ^ s;
        if (complement != 0) key = complement;
      }
      fe.true_ap[s] = Clamp(arm_ap[key] + rng.Gaussian(0, noise), 0, 1);
      fe.est_ap[s] = Clamp(fe.true_ap[s] + rng.Gaussian(0, noise), 0, 1);
      double cost = 0.01;
      for (int i = 0; i < m; ++i) {
        if (ContainsModel(s, i)) cost += model_cost[static_cast<size_t>(i)];
      }
      fe.cost_ms[s] = cost;
      if (cost > fe.max_cost_ms) fe.max_cost_ms = cost;
    }
    matrix.frames.push_back(std::move(fe));
  }
  return matrix;
}

/// Two-model matrix: arm {M0} good & cheap (AP 0.8), {M1} poor (0.3),
/// {M0,M1} marginally better AP (0.85) at double cost. Best arm: 1.
inline FrameMatrix SimpleTwoModelMatrix(size_t frames, uint64_t seed = 1,
                                        double noise = 0.05) {
  return SyntheticMatrix(2, frames, {0.0, 0.8, 0.3, 0.85}, {10.0, 10.0},
                         false, noise, seed);
}

}  // namespace test
}  // namespace vqe

#endif  // VQE_TESTS_TEST_UTIL_H_
