// Tests for the trace-driven workload engine (ISSUE 9): the hostile-input
// corpus for the trace parser (the trust boundary for operator-supplied
// traces), plan-expansion determinism, the scheduler driver's bit-identity
// and worker-count invariance under overload control, ladder shedding
// landing on batch only, and fleet-wide degradation propagation.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "models/model_zoo.h"
#include "serve/overload.h"
#include "serve/scheduler.h"
#include "workload/trace.h"
#include "workload/workload.h"

namespace vqe {
namespace {

// A small, fully featured reference trace: every line kind appears once.
const char kGoodTrace[] =
    "VQEWORK 1\n"
    "# comment lines and blank lines are ignored\n"
    "seed 7\n"
    "rounds 6\n"
    "dataset nusc-night\n"
    "scale 0.05\n"
    "models 3\n"
    "arrivals rate 0.6 alpha 1.6 cap 4\n"
    "diurnal period 6 amplitude 0.3\n"
    "drift lambda0 0.1 lambda1 0.4\n"
    "class interactive share 0.5 frames 8 skip bandit 2\n"
    "class batch share 0.5 frames 12 skip off 0\n"
    "slo interactive p99 50 shed 0.0\n"
    "storm rounds 1 3 models 1 kind error rate 1.0\n"
    "storm rounds 2 4 models 2 kind spike rate 0.5\n"
    "end\n";

DetectorPool MakePool(int m) {
  const std::vector<std::string> names = {
      "yolov7-tiny@clear", "yolov7-tiny@night", "yolov7-tiny@rainy"};
  std::vector<DetectorProfile> profiles;
  for (int i = 0; i < m; ++i) {
    profiles.push_back(
        std::move(ParseDetectorName(names[static_cast<size_t>(i)])).value());
  }
  return std::move(BuildPool(profiles)).value();
}

/// Deep plan equality, fault scripts included.
void ExpectSamePlan(const WorkloadPlan& a, const WorkloadPlan& b) {
  EXPECT_EQ(a.capped_arrivals, b.capped_arrivals);
  ASSERT_EQ(a.sessions.size(), b.sessions.size());
  for (size_t i = 0; i < a.sessions.size(); ++i) {
    const SessionPlan& x = a.sessions[i];
    const SessionPlan& y = b.sessions[i];
    EXPECT_EQ(x.arrival_round, y.arrival_round);
    EXPECT_EQ(x.name, y.name);
    EXPECT_EQ(x.priority, y.priority);
    EXPECT_EQ(x.frames, y.frames);
    EXPECT_EQ(x.skip_mode, y.skip_mode);
    EXPECT_EQ(x.skip_budget, y.skip_budget);
    EXPECT_EQ(x.trial_seed, y.trial_seed);
    EXPECT_EQ(x.strategy_seed, y.strategy_seed);
    EXPECT_EQ(x.video_seed, y.video_seed);
    EXPECT_EQ(x.lambda0, y.lambda0);
    EXPECT_EQ(x.lambda1, y.lambda1);
    ASSERT_EQ(x.scripts.size(), y.scripts.size());
    for (size_t m = 0; m < x.scripts.size(); ++m) {
      ASSERT_EQ(x.scripts[m].bursts.size(), y.scripts[m].bursts.size());
      for (size_t k = 0; k < x.scripts[m].bursts.size(); ++k) {
        EXPECT_EQ(x.scripts[m].bursts[k].begin_frame,
                  y.scripts[m].bursts[k].begin_frame);
        EXPECT_EQ(x.scripts[m].bursts[k].end_frame,
                  y.scripts[m].bursts[k].end_frame);
        EXPECT_EQ(x.scripts[m].bursts[k].kind, y.scripts[m].bursts[k].kind);
      }
    }
  }
}

void ExpectSameRun(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.s_sum, b.s_sum);
  EXPECT_EQ(a.avg_true_ap, b.avg_true_ap);
  EXPECT_EQ(a.frames_processed, b.frames_processed);
  EXPECT_EQ(a.charged_cost_ms, b.charged_cost_ms);
  EXPECT_EQ(a.selection_counts, b.selection_counts);
  EXPECT_EQ(a.fallback_frames, b.fallback_frames);
  EXPECT_EQ(a.failed_frames, b.failed_frames);
  EXPECT_EQ(a.skip.skipped_frames, b.skip.skipped_frames);
  EXPECT_EQ(a.skip.detect_frames, b.skip.detect_frames);
}

// ------------------------------------------------------------- parser --

TEST(WorkloadTraceTest, ParsesTheReferenceTrace) {
  auto trace_or = ParseWorkloadTrace(kGoodTrace);
  ASSERT_TRUE(trace_or.ok()) << trace_or.status().ToString();
  const WorkloadTrace t = std::move(trace_or).value();
  EXPECT_EQ(t.seed, 7u);
  EXPECT_EQ(t.rounds, 6u);
  EXPECT_EQ(t.dataset, "nusc-night");
  EXPECT_DOUBLE_EQ(t.scene_scale, 0.05);
  EXPECT_EQ(t.models, 3);
  EXPECT_DOUBLE_EQ(t.arrival_rate, 0.6);
  EXPECT_DOUBLE_EQ(t.pareto_alpha, 1.6);
  EXPECT_DOUBLE_EQ(t.diurnal_amplitude, 0.3);
  ASSERT_EQ(t.mix.size(), 2u);
  EXPECT_EQ(t.mix[0].priority, PriorityClass::kInteractive);
  EXPECT_EQ(t.mix[0].skip_mode, SkipMode::kBandit);
  EXPECT_EQ(t.mix[0].skip_budget, 2);
  EXPECT_EQ(t.mix[1].priority, PriorityClass::kBatch);
  ASSERT_EQ(t.storms.size(), 2u);
  EXPECT_EQ(t.storms[0].models, EnsembleId{1});
  EXPECT_EQ(t.storms[0].kind, FaultKind::kError);
  EXPECT_EQ(t.storms[1].kind, FaultKind::kLatencySpike);
  const int ii = PriorityClassIndex(PriorityClass::kInteractive);
  EXPECT_TRUE(t.has_slo[ii]);
  EXPECT_DOUBLE_EQ(t.slo[ii].p99_ms, 50.0);
  EXPECT_DOUBLE_EQ(t.slo[ii].shed_budget, 0.0);
  EXPECT_FALSE(t.has_slo[PriorityClassIndex(PriorityClass::kBatch)]);
}

TEST(WorkloadTraceTest, FormatRoundTripsExactly) {
  const WorkloadTrace t = std::move(ParseWorkloadTrace(kGoodTrace)).value();
  const std::string text = FormatWorkloadTrace(t);
  auto back = ParseWorkloadTrace(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  // Fixed point: formatting the reparsed trace reproduces the bytes.
  EXPECT_EQ(FormatWorkloadTrace(std::move(back).value()), text);
}

/// Structural violations die with kParseError (named corpus entries).
TEST(WorkloadTraceTest, HostileCorpusDiesWithParseError) {
  const struct {
    const char* name;
    const char* text;
  } corpus[] = {
      {"empty input", ""},
      {"bad magic", "VQEWRK 1\nend\n"},
      {"magic version", "VQEWORK 2\nend\n"},
      {"missing end (truncated)",
       "VQEWORK 1\nseed 3\nclass batch share 1 frames 8 skip off 0\n"},
      {"content after end",
       "VQEWORK 1\nclass batch share 1 frames 8 skip off 0\nend\nseed 3\n"},
      {"duplicate seed",
       "VQEWORK 1\nseed 1\nseed 2\n"
       "class batch share 1 frames 8 skip off 0\nend\n"},
      {"duplicate arrivals",
       "VQEWORK 1\narrivals rate 1 alpha 2 cap 2\n"
       "arrivals rate 1 alpha 2 cap 2\n"
       "class batch share 1 frames 8 skip off 0\nend\n"},
      {"duplicate class",
       "VQEWORK 1\nclass batch share 1 frames 8 skip off 0\n"
       "class batch share 2 frames 8 skip off 0\nend\n"},
      {"duplicate slo",
       "VQEWORK 1\nclass batch share 1 frames 8 skip off 0\n"
       "slo batch p99 1 shed 0.5\nslo batch p99 2 shed 0.5\nend\n"},
      {"class missing budget",
       "VQEWORK 1\nclass batch share 1 frames 8 skip off\nend\n"},
      {"class extra token",
       "VQEWORK 1\nclass batch share 1 frames 8 skip off 0 0\nend\n"},
      {"class bad label",
       "VQEWORK 1\nclass batch weight 1 frames 8 skip off 0\nend\n"},
      {"unknown priority",
       "VQEWORK 1\nclass premium share 1 frames 8 skip off 0\nend\n"},
      {"unknown skip mode",
       "VQEWORK 1\nclass batch share 1 frames 8 skip turbo 1\nend\n"},
      {"unknown fault kind",
       "VQEWORK 1\nclass batch share 1 frames 8 skip off 0\n"
       "storm rounds 0 2 models 1 kind meteor rate 1\nend\n"},
      {"nan rate",
       "VQEWORK 1\narrivals rate nan alpha 2 cap 2\n"
       "class batch share 1 frames 8 skip off 0\nend\n"},
      {"inf scale",
       "VQEWORK 1\nscale inf\n"
       "class batch share 1 frames 8 skip off 0\nend\n"},
      {"negative seed",
       "VQEWORK 1\nseed -4\n"
       "class batch share 1 frames 8 skip off 0\nend\n"},
      {"trailing garbage number",
       "VQEWORK 1\nrounds 12x\n"
       "class batch share 1 frames 8 skip off 0\nend\n"},
      {"unknown key",
       "VQEWORK 1\nturbo 9\n"
       "class batch share 1 frames 8 skip off 0\nend\n"},
      {"frames over cap",
       "VQEWORK 1\nclass batch share 1 frames 999999 skip off 0\nend\n"},
      {"skip budget over cap",
       "VQEWORK 1\nclass batch share 1 frames 8 skip fixed 9999\nend\n"},
  };
  for (const auto& c : corpus) {
    const auto r = ParseWorkloadTrace(c.text);
    ASSERT_FALSE(r.ok()) << "corpus entry accepted: " << c.name;
    EXPECT_EQ(r.status().code(), StatusCode::kParseError)
        << c.name << ": " << r.status().ToString();
  }
}

/// Semantic violations (well-formed lines, hostile values) die with
/// kInvalidArgument from Validate — still a clean Status, never a crash.
TEST(WorkloadTraceTest, SemanticCorpusDiesWithInvalidArgument) {
  const struct {
    const char* name;
    const char* text;
  } corpus[] = {
      {"no classes", "VQEWORK 1\nseed 1\nend\n"},
      {"zero share",
       "VQEWORK 1\nclass batch share 0 frames 8 skip off 0\nend\n"},
      {"zero rounds",
       "VQEWORK 1\nrounds 0\n"
       "class batch share 1 frames 8 skip off 0\nend\n"},
      {"zero models",
       "VQEWORK 1\nmodels 0\n"
       "class batch share 1 frames 8 skip off 0\nend\n"},
      {"zero scale",
       "VQEWORK 1\nscale 0\n"
       "class batch share 1 frames 8 skip off 0\nend\n"},
      {"amplitude one",
       "VQEWORK 1\ndiurnal period 8 amplitude 1.0\n"
       "class batch share 1 frames 8 skip off 0\nend\n"},
      {"drift lambda over one",
       "VQEWORK 1\ndrift lambda0 0.2 lambda1 1.5\n"
       "class batch share 1 frames 8 skip off 0\nend\n"},
      {"skip mode without budget",
       "VQEWORK 1\nclass batch share 1 frames 8 skip bandit 0\nend\n"},
      {"inverted storm window",
       "VQEWORK 1\nclass batch share 1 frames 8 skip off 0\n"
       "storm rounds 5 5 models 1 kind error rate 1\nend\n"},
      {"storm mask outside pool",
       "VQEWORK 1\nmodels 2\nclass batch share 1 frames 8 skip off 0\n"
       "storm rounds 0 2 models 4 kind error rate 1\nend\n"},
      {"storm mask zero",
       "VQEWORK 1\nclass batch share 1 frames 8 skip off 0\n"
       "storm rounds 0 2 models 0 kind error rate 1\nend\n"},
      {"slo shed over one",
       "VQEWORK 1\nclass batch share 1 frames 8 skip off 0\n"
       "slo batch p99 1 shed 1.5\nend\n"},
  };
  for (const auto& c : corpus) {
    const auto r = ParseWorkloadTrace(c.text);
    ASSERT_FALSE(r.ok()) << "corpus entry accepted: " << c.name;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
        << c.name << ": " << r.status().ToString();
  }
}

/// Every proper line-prefix of the reference trace is a truncation and
/// must be rejected (the trailing `end` is the anti-truncation seal).
TEST(WorkloadTraceTest, EveryTruncationPrefixIsRejected) {
  std::vector<std::string> lines;
  std::istringstream in(kGoodTrace);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line + "\n");
  std::string prefix;
  for (size_t i = 0; i + 1 < lines.size(); ++i) {
    prefix += lines[i];
    EXPECT_FALSE(ParseWorkloadTrace(prefix).ok())
        << "prefix of " << i + 1 << " lines accepted";
  }
}

// ------------------------------------------------------ plan expansion --

TEST(WorkloadPlanTest, SameTraceSamePlan) {
  const WorkloadTrace t = std::move(ParseWorkloadTrace(kGoodTrace)).value();
  ExpectSamePlan(BuildWorkloadPlan(t), BuildWorkloadPlan(t));
}

TEST(WorkloadPlanTest, SeedMovesThePlan) {
  WorkloadTrace t = std::move(ParseWorkloadTrace(kGoodTrace)).value();
  const WorkloadPlan a = BuildWorkloadPlan(t);
  t.seed = 8;
  const WorkloadPlan b = BuildWorkloadPlan(t);
  bool differs = a.sessions.size() != b.sessions.size();
  for (size_t i = 0; !differs && i < a.sessions.size(); ++i) {
    differs = a.sessions[i].trial_seed != b.sessions[i].trial_seed;
  }
  EXPECT_TRUE(differs) << "seed change left the plan untouched";
}

TEST(WorkloadPlanTest, ArrivalCapsAreReportedNotSilent) {
  WorkloadTrace t = std::move(ParseWorkloadTrace(kGoodTrace)).value();
  t.arrival_rate = 64.0;  // far over both per-round and total caps
  t.rounds = 64;
  t.storms.clear();
  const WorkloadPlan plan = BuildWorkloadPlan(t);
  EXPECT_EQ(plan.sessions.size(), kMaxPlannedSessions);
  EXPECT_GT(plan.capped_arrivals, 0u);
}

TEST(WorkloadPlanTest, StormCoverageFollowsTheWindow) {
  WorkloadTrace t = std::move(ParseWorkloadTrace(kGoodTrace)).value();
  // A full-horizon persistent storm afflicts every session...
  t.storms.clear();
  t.storms.push_back({0, t.rounds, EnsembleId{1}, FaultKind::kError, 1.0});
  const WorkloadPlan stormy = BuildWorkloadPlan(t);
  ASSERT_FALSE(stormy.sessions.empty());
  for (const SessionPlan& s : stormy.sessions) {
    EXPECT_TRUE(s.stormy()) << s.name;
    // ...and only the masked model carries bursts.
    EXPECT_FALSE(s.scripts[0].bursts.empty());
    EXPECT_TRUE(s.scripts[1].bursts.empty());
    EXPECT_TRUE(s.scripts[2].bursts.empty());
  }
  // No storms: no session is stormy.
  t.storms.clear();
  for (const SessionPlan& s : BuildWorkloadPlan(t).sessions) {
    EXPECT_FALSE(s.stormy()) << s.name;
  }
}

TEST(WorkloadPlanTest, SessionVideoIsDeterministicAndTruncated) {
  const WorkloadTrace t = std::move(ParseWorkloadTrace(kGoodTrace)).value();
  const WorkloadPlan plan = BuildWorkloadPlan(t);
  ASSERT_FALSE(plan.sessions.empty());
  const SessionPlan& s = plan.sessions[0];
  const Video a = std::move(BuildSessionVideo(plan, s)).value();
  const Video b = std::move(BuildSessionVideo(plan, s)).value();
  EXPECT_LE(a.frames.size(), static_cast<size_t>(s.frames));
  ASSERT_EQ(a.frames.size(), b.frames.size());
  for (size_t i = 0; i < a.frames.size(); ++i) {
    EXPECT_EQ(a.frames[i].context, b.frames[i].context);
    EXPECT_EQ(a.frames[i].scene_id, b.frames[i].scene_id);
  }
}

TEST(WorkloadPlanTest, MakeServeOptionsLayersTraceSlos) {
  const WorkloadTrace t = std::move(ParseWorkloadTrace(kGoodTrace)).value();
  ServeOptions base;
  base.overload.queue_trigger = 3;
  const ServeOptions off = MakeServeOptions(t, base, false);
  EXPECT_FALSE(off.overload.enabled);
  const ServeOptions on = MakeServeOptions(t, base, true);
  EXPECT_TRUE(on.overload.enabled);
  EXPECT_EQ(on.overload.queue_trigger, 3);
  const int ii = PriorityClassIndex(PriorityClass::kInteractive);
  EXPECT_DOUBLE_EQ(on.overload.slo[ii].p99_ms, 50.0);
  // Classes without an slo line keep the base target.
  const int bi = PriorityClassIndex(PriorityClass::kBatch);
  EXPECT_DOUBLE_EQ(on.overload.slo[bi].p99_ms, base.overload.slo[bi].p99_ms);
}

// ------------------------------------------------------------- driver --

ServeOptions SmallServe() {
  ServeOptions o;
  o.max_sessions = 2;
  o.queue_depth = 64;
  o.quantum_ms = 60.0;
  o.max_frames_per_round = 8;
  o.overload.window = 64;
  o.overload.min_samples = 8;
  o.overload.queue_trigger = 2;
  o.overload.dwell_rounds = 1;
  o.overload.recover_rounds = 2;
  o.overload.skip_boost = 2;
  o.overload.shrink_mask = 0x1;
  return o;
}

TEST(WorkloadDriverTest, SchedulerRunIsIdenticalAcrossWorkerCounts) {
  const WorkloadTrace t = std::move(ParseWorkloadTrace(kGoodTrace)).value();
  const WorkloadPlan plan = BuildWorkloadPlan(t);
  const DetectorPool pool = MakePool(t.models);

  WorkloadRunReport runs[2];
  for (int i = 0; i < 2; ++i) {
    ServeOptions serve = MakeServeOptions(t, SmallServe(), true);
    serve.parallelism = i == 0 ? 1 : 0;
    runs[i] =
        std::move(RunWorkloadOnScheduler(plan, pool, serve)).value();
  }
  const ServeStats& a = runs[0].serve.stats;
  const ServeStats& b = runs[1].serve.stats;
  ASSERT_EQ(a.degradations.size(), b.degradations.size());
  for (size_t i = 0; i < a.degradations.size(); ++i) {
    EXPECT_EQ(a.degradations[i], b.degradations[i]);
  }
  EXPECT_EQ(a.peak_degradation_level, b.peak_degradation_level);
  for (int c = 0; c < kNumPriorityClasses; ++c) {
    EXPECT_EQ(a.classes[c].submitted, b.classes[c].submitted);
    EXPECT_EQ(a.classes[c].frames, b.classes[c].frames);
    EXPECT_EQ(a.classes[c].shed_submissions, b.classes[c].shed_submissions);
    EXPECT_EQ(a.classes[c].sim_p99_ms, b.classes[c].sim_p99_ms);
  }
  // Per-stream results agree too (retirement order may differ only if the
  // schedule differed — it must not).
  ASSERT_EQ(runs[0].serve.streams.size(), runs[1].serve.streams.size());
  for (size_t i = 0; i < runs[0].serve.streams.size(); ++i) {
    EXPECT_EQ(runs[0].serve.streams[i].name, runs[1].serve.streams[i].name);
    ExpectSameRun(runs[0].serve.streams[i].result,
                  runs[1].serve.streams[i].result);
  }
}

TEST(WorkloadDriverTest, DisabledControllerMatchesSoloBaselines) {
  const WorkloadTrace t = std::move(ParseWorkloadTrace(kGoodTrace)).value();
  const WorkloadPlan plan = BuildWorkloadPlan(t);
  const DetectorPool pool = MakePool(t.models);
  const ServeOptions serve = MakeServeOptions(t, SmallServe(), false);
  const WorkloadRunReport run =
      std::move(RunWorkloadOnScheduler(plan, pool, serve)).value();
  ASSERT_GT(run.submitted, 0u);
  size_t compared = 0;
  for (const StreamReport& sr : run.serve.streams) {
    if (!sr.status.ok()) continue;
    const SessionPlan* sp = nullptr;
    for (const SessionPlan& s : plan.sessions) {
      if (s.name == sr.name) sp = &s;
    }
    ASSERT_NE(sp, nullptr) << sr.name;
    ExpectSameRun(std::move(RunWorkloadSessionSolo(plan, *sp, pool)).value(),
                  sr.result);
    ++compared;
  }
  EXPECT_GT(compared, 0u);
}

/// A deliberately under-provisioned run: one slot, steady arrivals. The
/// ladder must walk down one rung at a time to shed-batch, every shed must
/// land on batch, and the ledger must be monotone single-rung steps.
TEST(WorkloadDriverTest, LadderWalksToShedBatchAndBatchAbsorbsSheds) {
  WorkloadTrace t = std::move(ParseWorkloadTrace(kGoodTrace)).value();
  t.rounds = 10;
  t.arrival_rate = 3.0;
  t.pareto_cap = 1.0;  // burst multiplier pinned at 1: steady arrivals
  t.diurnal_amplitude = 0.0;
  t.storms.clear();
  ServeOptions serve = MakeServeOptions(t, SmallServe(), true);
  serve.max_sessions = 1;
  serve.overload.queue_trigger = 1;
  serve.parallelism = 1;

  const WorkloadPlan plan = BuildWorkloadPlan(t);
  const DetectorPool pool = MakePool(t.models);
  const WorkloadRunReport run =
      std::move(RunWorkloadOnScheduler(plan, pool, serve)).value();
  const ServeStats& stats = run.serve.stats;

  EXPECT_EQ(stats.peak_degradation_level, 3);
  ASSERT_GE(stats.degradations.size(), 3u);
  int level = 0;
  for (const DegradationTransition& tr : stats.degradations) {
    EXPECT_EQ(tr.from, level);
    EXPECT_EQ(tr.to - tr.from == 1 || tr.from - tr.to == 1, true)
        << "ladder moved more than one rung";
    if (tr.to > tr.from) {
      EXPECT_TRUE(tr.queue_triggered || tr.trigger_class >= 0);
    }
    level = tr.to;
  }
  const auto& icls = stats.classes[PriorityClassIndex(
      PriorityClass::kInteractive)];
  const auto& bcls = stats.classes[PriorityClassIndex(PriorityClass::kBatch)];
  EXPECT_EQ(icls.shed_submissions, 0u);
  EXPECT_GT(bcls.shed_submissions, 0u);
  EXPECT_EQ(run.shed, bcls.shed_submissions);
  // Shed + submitted accounts for every planned session.
  EXPECT_EQ(run.submitted + run.shed, run.planned);
}

TEST(WorkloadFleetTest, FleetPropagatesOverloadToEveryShard) {
  WorkloadTrace t = std::move(ParseWorkloadTrace(kGoodTrace)).value();
  t.rounds = 6;
  t.arrival_rate = 2.0;
  t.pareto_cap = 1.0;
  t.storms.clear();
  const WorkloadPlan plan = BuildWorkloadPlan(t);
  const DetectorPool pool = MakePool(t.models);

  FleetOptions fleet;
  fleet.num_shards = 2;
  fleet.max_sessions = 64;
  fleet.shard = MakeServeOptions(t, SmallServe(), true);
  fleet.shard.max_sessions = 1;
  fleet.shard.overload.queue_trigger = 1;

  const FleetReport report =
      std::move(RunWorkloadOnFleet(plan, pool, fleet)).value();
  EXPECT_EQ(report.streams.size(), plan.sessions.size());
  EXPECT_GT(report.stats.completed_streams, 0u);
  // Both shards ran under pressure: the aggregate ladder stats must show
  // degradation, and every per-shard ledger is exposed for audit.
  EXPECT_GE(report.stats.peak_degradation_level, 1);
  EXPECT_GE(report.stats.degradation_transitions, 1u);
  uint64_t ledger_sum = 0;
  for (const auto& shard : report.stats.shards) {
    ledger_sum += shard.stats.degradations.size();
  }
  EXPECT_EQ(report.stats.degradation_transitions, ledger_sum);
}

}  // namespace
}  // namespace vqe
