// Tests for the simulation substrate: scene generation, dataset catalogs
// (Table 1/2 structure), sampling, and drift composition.

#include <gtest/gtest.h>

#include <set>

#include "sim/dataset.h"
#include "sim/object_classes.h"
#include "sim/scene_context.h"
#include "sim/scene_generator.h"
#include "sim/video.h"

namespace vqe {
namespace {

// --------------------------------------------------------- scene context --

TEST(SceneContextTest, RoundTripNames) {
  for (SceneContext ctx : {SceneContext::kClear, SceneContext::kNight,
                           SceneContext::kRainy, SceneContext::kSnow}) {
    const auto parsed = SceneContextFromString(SceneContextToString(ctx));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, ctx);
  }
  EXPECT_FALSE(SceneContextFromString("foggy").ok());
  EXPECT_EQ(*SceneContextFromString("NIGHT"), SceneContext::kNight);
}

// -------------------------------------------------------- object classes --

TEST(ObjectClassesTest, VocabularyIsConsistent) {
  const auto& classes = DrivingClasses();
  ASSERT_GE(classes.size(), 6u);
  std::set<ClassId> ids;
  for (const auto& c : classes) {
    EXPECT_FALSE(c.name.empty());
    EXPECT_GT(c.frequency, 0.0);
    EXPECT_GT(c.width_mean, 0.0);
    EXPECT_GT(c.aspect_mean, 0.0);
    ids.insert(c.id);
  }
  EXPECT_EQ(ids.size(), classes.size());  // unique ids
}

TEST(ObjectClassesTest, NameLookup) {
  const auto car = ClassIdFromName("car");
  ASSERT_TRUE(car.ok());
  EXPECT_EQ(ClassIdToName(*car), "car");
  EXPECT_EQ(ClassIdToName(-99), "unknown");
  EXPECT_FALSE(ClassIdFromName("spaceship").ok());
  EXPECT_EQ(*ClassIdFromName("CAR"), *car);  // case-insensitive
}

// -------------------------------------------------------- scene generator --

TEST(SceneGeneratorTest, DeterministicInSeedAndSceneId) {
  SceneGeneratorOptions opt;
  const Video a = GenerateScene(opt, SceneContext::kClear, 3, 20, 42);
  const Video b = GenerateScene(opt, SceneContext::kClear, 3, 20, 42);
  ASSERT_EQ(a.size(), b.size());
  for (size_t t = 0; t < a.size(); ++t) {
    ASSERT_EQ(a[t].objects.size(), b[t].objects.size());
    for (size_t i = 0; i < a[t].objects.size(); ++i) {
      EXPECT_EQ(a[t].objects[i].box, b[t].objects[i].box);
      EXPECT_EQ(a[t].objects[i].object_id, b[t].objects[i].object_id);
    }
  }
}

TEST(SceneGeneratorTest, DifferentSeedsDiffer) {
  SceneGeneratorOptions opt;
  const Video a = GenerateScene(opt, SceneContext::kClear, 3, 20, 42);
  const Video b = GenerateScene(opt, SceneContext::kClear, 3, 20, 43);
  bool any_diff = a.size() != b.size();
  for (size_t t = 0; !any_diff && t < a.size(); ++t) {
    any_diff = a[t].objects.size() != b[t].objects.size();
  }
  EXPECT_TRUE(any_diff);
}

TEST(SceneGeneratorTest, FramesCarryMetadata) {
  SceneGeneratorOptions opt;
  const Video v = GenerateScene(opt, SceneContext::kRainy, 7, 10, 1);
  ASSERT_EQ(v.size(), 10u);
  for (size_t t = 0; t < v.size(); ++t) {
    EXPECT_EQ(v[t].frame_index, static_cast<int64_t>(t));
    EXPECT_EQ(v[t].scene_id, 7);
    EXPECT_EQ(v[t].context, SceneContext::kRainy);
    EXPECT_DOUBLE_EQ(v[t].image_width, opt.geometry.width);
  }
}

TEST(SceneGeneratorTest, ObjectsWithinImageAndValid) {
  SceneGeneratorOptions opt;
  const Video v = GenerateScene(opt, SceneContext::kClear, 0, 50, 5);
  for (const auto& frame : v.frames) {
    for (const auto& obj : frame.objects) {
      EXPECT_TRUE(obj.box.IsValid());
      EXPECT_FALSE(obj.box.IsEmpty());
      EXPECT_GE(obj.box.x1, 0.0);
      EXPECT_LE(obj.box.x2, opt.geometry.width);
      EXPECT_GE(obj.box.y1, 0.0);
      EXPECT_LE(obj.box.y2, opt.geometry.height);
      EXPECT_GE(obj.hardness, 0.0);
      EXPECT_LE(obj.hardness, 1.0);
    }
  }
}

TEST(SceneGeneratorTest, ObjectIdsPersistAcrossFrames) {
  SceneGeneratorOptions opt;
  opt.motion_scale = 0.1;  // slow scene: objects persist
  const Video v = GenerateScene(opt, SceneContext::kClear, 0, 10, 7);
  ASSERT_GE(v.size(), 2u);
  if (v[0].objects.empty()) GTEST_SKIP() << "empty initial scene";
  std::set<int64_t> first_ids;
  for (const auto& o : v[0].objects) first_ids.insert(o.object_id);
  size_t persisted = 0;
  for (const auto& o : v[1].objects) {
    if (first_ids.count(o.object_id)) ++persisted;
  }
  EXPECT_GT(persisted, 0u);
}

TEST(SceneGeneratorTest, MotionMovesObjects) {
  SceneGeneratorOptions opt;
  const Video v = GenerateScene(opt, SceneContext::kClear, 0, 30, 11);
  // Find an object present in consecutive frames and check it moved or at
  // least stayed valid (cones have zero speed, so check across all).
  bool any_motion = false;
  for (size_t t = 1; t < v.size() && !any_motion; ++t) {
    for (const auto& cur : v[t].objects) {
      for (const auto& prev : v[t - 1].objects) {
        if (cur.object_id == prev.object_id &&
            (cur.box.cx() != prev.box.cx() || cur.box.cy() != prev.box.cy())) {
          any_motion = true;
        }
      }
    }
  }
  EXPECT_TRUE(any_motion);
}

TEST(SceneGeneratorTest, ZeroFrames) {
  SceneGeneratorOptions opt;
  EXPECT_TRUE(GenerateScene(opt, SceneContext::kClear, 0, 0, 1).empty());
  EXPECT_TRUE(GenerateScene(opt, SceneContext::kClear, 0, -5, 1).empty());
}

TEST(SceneGeneratorTest, DifficultFractionRoughlyRespected) {
  SceneGeneratorOptions opt;
  opt.difficult_fraction = 0.25;
  size_t total = 0, difficult = 0;
  for (int s = 0; s < 30; ++s) {
    const Video v = GenerateScene(opt, SceneContext::kClear, s, 5, 99);
    for (const auto& f : v.frames) {
      for (const auto& o : f.objects) {
        ++total;
        if (o.difficult) ++difficult;
      }
    }
  }
  ASSERT_GT(total, 100u);
  const double frac = static_cast<double>(difficult) / total;
  EXPECT_GT(frac, 0.05);
  EXPECT_LT(frac, 0.5);
}

TEST(SceneGeneratorOptionsTest, Validation) {
  SceneGeneratorOptions opt;
  EXPECT_TRUE(opt.Validate().ok());
  opt.spawn_probability = 1.5;
  EXPECT_FALSE(opt.Validate().ok());
  opt = SceneGeneratorOptions{};
  opt.geometry.width = -1;
  EXPECT_FALSE(opt.Validate().ok());
  opt = SceneGeneratorOptions{};
  opt.initial_objects_mean = -2;
  EXPECT_FALSE(opt.Validate().ok());
  opt = SceneGeneratorOptions{};
  opt.motion_scale = -1;
  EXPECT_FALSE(opt.Validate().ok());
}

// ---------------------------------------------------------------- video --

TEST(VideoTest, ContextCountsAndBreakpoints) {
  Video v;
  for (int i = 0; i < 6; ++i) {
    VideoFrame f;
    f.frame_index = i;
    f.context = i < 3 ? SceneContext::kClear : SceneContext::kNight;
    v.frames.push_back(f);
  }
  EXPECT_EQ(CountFramesInContext(v, SceneContext::kClear), 3u);
  EXPECT_EQ(CountFramesInContext(v, SceneContext::kNight), 3u);
  EXPECT_EQ(CountFramesInContext(v, SceneContext::kSnow), 0u);
  const auto breaks = ContextBreakpoints(v);
  ASSERT_EQ(breaks.size(), 1u);
  EXPECT_EQ(breaks[0], 3u);
}

// -------------------------------------------------------------- catalog --

TEST(DatasetCatalogTest, NuscMatchesTable1) {
  const auto spec = DatasetCatalog::Default().Find("nusc");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ((*spec)->TotalScenes(), 850);
  EXPECT_EQ((*spec)->TotalFrames(), 42500);
  EXPECT_NEAR((*spec)->DurationMinutes(), 354.0, 1.0);
}

TEST(DatasetCatalogTest, NuscGroupsMatchTable1) {
  const auto& catalog = DatasetCatalog::Default();
  struct Row {
    const char* name;
    int scenes;
    int samples;
  };
  for (const Row& row : {Row{"nusc-clear", 274, 13700},
                         Row{"nusc-night", 79, 3950},
                         Row{"nusc-rainy", 184, 9200}}) {
    const auto spec = catalog.Find(row.name);
    ASSERT_TRUE(spec.ok()) << row.name;
    EXPECT_EQ((*spec)->TotalScenes(), row.scenes) << row.name;
    EXPECT_EQ((*spec)->TotalFrames(), row.samples) << row.name;
  }
}

TEST(DatasetCatalogTest, BddMatchesTable2) {
  const auto spec = DatasetCatalog::Default().Find("bdd");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ((*spec)->TotalScenes(), 300);
  EXPECT_EQ((*spec)->TotalFrames(), 30000);
  EXPECT_NEAR((*spec)->DurationMinutes(), 200.0, 1.0);
}

TEST(DatasetCatalogTest, DriftSpecsExist) {
  const auto& catalog = DatasetCatalog::Default();
  for (const char* name : {"c&n", "n&r", "c&n&r"}) {
    const auto spec = catalog.Find(name);
    ASSERT_TRUE(spec.ok()) << name;
    EXPECT_EQ((*spec)->shuffle_segments, 10) << name;
    EXPECT_GE((*spec)->groups.size(), 2u) << name;
  }
}

TEST(DatasetCatalogTest, UnknownDataset) {
  EXPECT_FALSE(DatasetCatalog::Default().Find("kitti").ok());
}

TEST(DatasetSpecTest, Validation) {
  DatasetSpec d;
  EXPECT_FALSE(d.Validate().ok());  // no name, no groups
  d.name = "x";
  EXPECT_FALSE(d.Validate().ok());  // no groups
  d.groups.push_back({"g", SceneContext::kClear, 0, 10});
  EXPECT_FALSE(d.Validate().ok());  // zero scenes
  d.groups[0].num_scenes = 2;
  EXPECT_TRUE(d.Validate().ok());
  d.shuffle_segments = -1;
  EXPECT_FALSE(d.Validate().ok());
}

// ------------------------------------------------------------- sampling --

TEST(SampleVideoTest, ScaleControlsSize) {
  const auto spec = DatasetCatalog::Default().Find("nusc-night");
  ASSERT_TRUE(spec.ok());
  SampleOptions opts;
  opts.scene_scale = 0.1;
  opts.seed = 1;
  const auto video = SampleVideo(**spec, opts);
  ASSERT_TRUE(video.ok());
  // 79 scenes * 0.1 ≈ 8 scenes of 50 frames.
  EXPECT_NEAR(static_cast<double>(video->size()), 8 * 50, 50.0);
}

TEST(SampleVideoTest, FrameIndicesConsecutive) {
  const auto spec = DatasetCatalog::Default().Find("nusc-night");
  SampleOptions opts;
  opts.scene_scale = 0.05;
  const auto video = SampleVideo(**spec, opts);
  ASSERT_TRUE(video.ok());
  for (size_t t = 0; t < video->size(); ++t) {
    EXPECT_EQ(video->frames[t].frame_index, static_cast<int64_t>(t));
  }
}

TEST(SampleVideoTest, DeterministicInSeed) {
  const auto spec = DatasetCatalog::Default().Find("nusc-night");
  SampleOptions opts;
  opts.scene_scale = 0.05;
  opts.seed = 5;
  const auto a = SampleVideo(**spec, opts);
  const auto b = SampleVideo(**spec, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t t = 0; t < a->size(); ++t) {
    EXPECT_EQ(a->frames[t].objects.size(), b->frames[t].objects.size());
  }
}

TEST(SampleVideoTest, TrialsReSample) {
  const auto spec = DatasetCatalog::Default().Find("nusc-night");
  SampleOptions a_opts, b_opts;
  a_opts.scene_scale = b_opts.scene_scale = 0.05;
  a_opts.seed = 5;
  b_opts.seed = 6;
  const auto a = SampleVideo(**spec, a_opts);
  const auto b = SampleVideo(**spec, b_opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  bool differs = a->size() != b->size();
  for (size_t t = 0; !differs && t < a->size(); ++t) {
    differs = a->frames[t].objects.size() != b->frames[t].objects.size();
  }
  EXPECT_TRUE(differs);
}

TEST(SampleVideoTest, HomogeneousGroupHasOneContext) {
  const auto spec = DatasetCatalog::Default().Find("nusc-rainy");
  SampleOptions opts;
  opts.scene_scale = 0.05;
  const auto video = SampleVideo(**spec, opts);
  ASSERT_TRUE(video.ok());
  EXPECT_EQ(CountFramesInContext(*video, SceneContext::kRainy), video->size());
}

TEST(SampleVideoTest, DriftCompositionInterleavesContexts) {
  const auto spec = DatasetCatalog::Default().Find("c&n");
  SampleOptions opts;
  opts.scene_scale = 0.2;
  const auto video = SampleVideo(**spec, opts);
  ASSERT_TRUE(video.ok());
  const size_t clear = CountFramesInContext(*video, SceneContext::kClear);
  const size_t night = CountFramesInContext(*video, SceneContext::kNight);
  EXPECT_EQ(clear + night, video->size());
  EXPECT_GT(clear, 0u);
  EXPECT_GT(night, 0u);
  // Segment shuffling must introduce multiple breakpoints.
  const auto breaks = ContextBreakpoints(*video);
  EXPECT_GE(breaks.size(), 3u);
  EXPECT_LE(breaks.size(), 19u);  // at most segments-1 context switches
}

TEST(SampleVideoTest, RejectsBadScale) {
  const auto spec = DatasetCatalog::Default().Find("nusc");
  SampleOptions opts;
  opts.scene_scale = 0.0;
  EXPECT_FALSE(SampleVideo(**spec, opts).ok());
  opts.scene_scale = 1.5;
  EXPECT_FALSE(SampleVideo(**spec, opts).ok());
}

}  // namespace
}  // namespace vqe
