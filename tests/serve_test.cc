// Serving-layer matrix for ISSUE 5: per-stream bit-identity under the
// StreamScheduler (any session count, worker count, batch window, faults
// on/off, eager and lazy backends), admission control and load shedding
// (kResourceExhausted, never a stall), deficit-round-robin fairness across
// priority classes, cross-stream batch coalescing, fleet breaker
// aggregation, per-session checkpoint/resume under the scheduler, and the
// two-ledger time accounting (wall-clock vs summed frame-clock).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/baselines.h"
#include "core/ducb.h"
#include "core/engine.h"
#include "core/experiment.h"
#include "core/lazy_frame_evaluator.h"
#include "core/mes.h"
#include "core/mes_b.h"
#include "models/model_zoo.h"
#include "runtime/breaker_registry.h"
#include "runtime/fault_injection.h"
#include "serve/batch_dispatcher.h"
#include "serve/overload.h"
#include "serve/scheduler.h"
#include "serve/stream_session.h"
#include "sim/dataset.h"
#include "temporal/skip_policy.h"

namespace vqe {
namespace {

DetectorPool MakePool(int m) {
  const std::vector<std::string> names = {
      "yolov7-tiny@clear", "yolov7-tiny@night", "yolov7-tiny@rainy",
      "yolov7@clear",      "yolov7-micro@clear"};
  std::vector<DetectorProfile> profiles;
  for (int i = 0; i < m; ++i) {
    profiles.push_back(
        std::move(ParseDetectorName(names[static_cast<size_t>(i)])).value());
  }
  return std::move(BuildPool(profiles)).value();
}

Video MakeVideo(double scene_scale, uint64_t seed) {
  const DatasetSpec* spec = *DatasetCatalog::Default().Find("nusc-night");
  SampleOptions sample;
  sample.scene_scale = scene_scale;
  sample.seed = seed;
  return std::move(SampleVideo(*spec, sample)).value();
}

std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "vqe_serve_test/" + name;
  const int rc = std::system(("rm -rf '" + dir + "'").c_str());
  EXPECT_EQ(rc, 0);
  return dir;
}

std::unique_ptr<SelectionStrategy> MakeStrategy(const std::string& kind) {
  if (kind == "MES") {
    MesOptions o;
    o.gamma = 2;
    return std::make_unique<MesStrategy>(o);
  }
  if (kind == "MES-B") {
    MesBOptions o;
    o.gamma = 2;
    return std::make_unique<MesBStrategy>(o);
  }
  if (kind == "SW-MES") {
    SwMesOptions o;
    o.gamma = 2;
    o.window = 8;
    return std::make_unique<SwMesStrategy>(o);
  }
  if (kind == "D-MES") {
    DucbOptions o;
    o.gamma = 2;
    return std::make_unique<DucbMesStrategy>(o);
  }
  if (kind == "RAND") return std::make_unique<RandomStrategy>();
  ADD_FAILURE() << "unknown strategy kind " << kind;
  return nullptr;
}

/// The PR 3 fault mix: a scripted mid-video outage on model 0, random
/// per-attempt errors on model 1.
std::vector<FaultScript> MakeScripts(size_t m) {
  std::vector<FaultScript> scripts(m);
  scripts[0].bursts.push_back({2, 8, FaultKind::kError, -1});
  if (m > 1) scripts[1].error_rate = 0.2;
  return scripts;
}

/// One stream's identity inside the bit-identity matrix.
struct StreamSpec {
  std::string name;
  std::string strategy = "MES";
  PriorityClass priority = PriorityClass::kStandard;
  uint64_t trial_seed = 9;
  uint64_t strategy_seed = 42;
};

EngineOptions MakeEngine(const StreamSpec& spec) {
  EngineOptions e;
  e.strategy_seed = spec.strategy_seed;
  e.compute_regret = false;  // keeps the lazy backend lazy
  return e;
}

/// Solo ground truth: the exact run a stream would do alone, no scheduler,
/// no batching — the reference every serve configuration must reproduce.
RunResult SoloBaseline(const Video& video, const DetectorPool& base,
                       const StreamSpec& spec, bool lazy, bool faults) {
  const DetectorPool* pool = &base;
  DetectorPool faulty;
  if (faults) {
    faulty = std::move(ApplyFaultScripts(base, MakeScripts(base.size()))).value();
    pool = &faulty;
  }
  std::unique_ptr<SelectionStrategy> strategy = MakeStrategy(spec.strategy);
  const EngineOptions engine = MakeEngine(spec);
  if (lazy) {
    auto source =
        LazyFrameEvaluator::Create(video, *pool, spec.trial_seed, {});
    EXPECT_TRUE(source.ok()) << source.status().ToString();
    return std::move(RunStrategy(**source, strategy.get(), engine)).value();
  }
  auto matrix = BuildFrameMatrix(video, *pool, spec.trial_seed, {});
  EXPECT_TRUE(matrix.ok()) << matrix.status().ToString();
  return std::move(RunStrategy(*matrix, strategy.get(), engine)).value();
}

/// Builds a serving session over the decorated pool chain:
/// base → (faults?) → (batching?) → source.
std::unique_ptr<StreamSession> MakeServeSession(
    const Video& video, const DetectorPool& base, const StreamSpec& spec,
    bool lazy, bool faults, BatchDispatcher* dispatcher, uint64_t stream_id,
    EngineOptions engine_override = {}, bool use_override = false) {
  std::vector<std::unique_ptr<DetectorPool>> owned;
  const DetectorPool* pool = &base;
  if (faults) {
    auto faulty = std::make_unique<DetectorPool>(
        std::move(ApplyFaultScripts(*pool, MakeScripts(pool->size())))
            .value());
    pool = faulty.get();
    owned.push_back(std::move(faulty));
  }
  if (dispatcher != nullptr) {
    auto batching = std::make_unique<DetectorPool>(
        std::move(MakeBatchingPool(*pool, dispatcher, stream_id)).value());
    pool = batching.get();
    owned.push_back(std::move(batching));
  }
  std::unique_ptr<EvaluationSource> source;
  if (lazy) {
    source =
        std::move(LazyFrameEvaluator::Create(video, *pool, spec.trial_seed, {}))
            .value();
  } else {
    source = std::make_unique<OwningMatrixSource>(
        std::move(BuildFrameMatrix(video, *pool, spec.trial_seed, {}))
            .value());
  }
  StreamSessionConfig cfg;
  cfg.name = spec.name;
  cfg.priority = spec.priority;
  cfg.engine = use_override ? engine_override : MakeEngine(spec);
  for (const auto& det : pool->detectors) {
    cfg.model_names.push_back(det->name());
  }
  return std::move(StreamSession::Create(std::move(cfg), std::move(source),
                                         MakeStrategy(spec.strategy),
                                         std::move(owned)))
      .value();
}

/// Bit-identity over every deterministic RunResult field; algorithm_ms and
/// the checkpoint report are wall-clock/process bookkeeping and are the
/// only exclusions.
void ExpectSameRun(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.s_sum, b.s_sum);
  EXPECT_EQ(a.avg_true_ap, b.avg_true_ap);
  EXPECT_EQ(a.avg_norm_cost, b.avg_norm_cost);
  EXPECT_EQ(a.frames_processed, b.frames_processed);
  EXPECT_EQ(a.regret_available, b.regret_available);
  EXPECT_EQ(a.regret, b.regret);
  EXPECT_EQ(a.charged_cost_ms, b.charged_cost_ms);
  EXPECT_EQ(a.breakdown.detector_ms, b.breakdown.detector_ms);
  EXPECT_EQ(a.breakdown.reference_ms, b.breakdown.reference_ms);
  EXPECT_EQ(a.breakdown.ensembling_ms, b.breakdown.ensembling_ms);
  EXPECT_EQ(a.breakdown.fault_ms, b.breakdown.fault_ms);
  EXPECT_EQ(a.selection_counts, b.selection_counts);
  EXPECT_EQ(a.cost_curve, b.cost_curve);
  EXPECT_EQ(a.fallback_frames, b.fallback_frames);
  EXPECT_EQ(a.failed_frames, b.failed_frames);
  ASSERT_EQ(a.model_availability.size(), b.model_availability.size());
  for (size_t i = 0; i < a.model_availability.size(); ++i) {
    EXPECT_EQ(a.model_availability[i].frames_selected,
              b.model_availability[i].frames_selected);
    EXPECT_EQ(a.model_availability[i].frames_failed,
              b.model_availability[i].frames_failed);
    EXPECT_EQ(a.model_availability[i].breaker_opens,
              b.model_availability[i].breaker_opens);
    EXPECT_EQ(a.model_availability[i].fault_ms,
              b.model_availability[i].fault_ms);
  }
}

// ---------------------------------------------------------------------------
// Priority classes.

TEST(PriorityClassTest, WeightsAndNames) {
  EXPECT_EQ(PriorityWeight(PriorityClass::kInteractive), 4);
  EXPECT_EQ(PriorityWeight(PriorityClass::kStandard), 2);
  EXPECT_EQ(PriorityWeight(PriorityClass::kBatch), 1);
  EXPECT_STREQ(PriorityClassToString(PriorityClass::kInteractive),
               "interactive");
  EXPECT_STREQ(PriorityClassToString(PriorityClass::kStandard), "standard");
  EXPECT_STREQ(PriorityClassToString(PriorityClass::kBatch), "batch");
}

TEST(ServeOptionsTest, Validation) {
  ServeOptions ok;
  EXPECT_TRUE(ok.Validate().ok());
  ServeOptions bad = ok;
  bad.max_sessions = 0;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
  bad = ok;
  bad.queue_depth = -1;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
  bad = ok;
  bad.quantum_ms = 0.0;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
  bad = ok;
  bad.max_frames_per_round = 0;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(StreamSessionTest, CreateValidatesInputs) {
  const DetectorPool pool = MakePool(2);
  const Video video = MakeVideo(0.01, 3);
  StreamSpec spec{"s", "MES", PriorityClass::kStandard, 1, 2};

  StreamSessionConfig nameless;
  auto source = std::make_unique<OwningMatrixSource>(
      std::move(BuildFrameMatrix(video, pool, 1, {})).value());
  auto r = StreamSession::Create(nameless, std::move(source),
                                 MakeStrategy("MES"));
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  StreamSessionConfig cfg;
  cfg.name = "s";
  cfg.model_names = {"just-one"};  // pool has two models
  auto source2 = std::make_unique<OwningMatrixSource>(
      std::move(BuildFrameMatrix(video, pool, 1, {})).value());
  auto r2 = StreamSession::Create(cfg, std::move(source2),
                                  MakeStrategy("MES"));
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);

  cfg.model_names.clear();
  auto r3 = StreamSession::Create(cfg, nullptr, MakeStrategy("MES"));
  EXPECT_EQ(r3.status().code(), StatusCode::kInvalidArgument);
  (void)spec;
}

// ---------------------------------------------------------------------------
// BreakerRegistry: fleet-wide per-model health.

TEST(BreakerRegistryTest, UnknownModelIsHealthy) {
  BreakerRegistry registry;
  EXPECT_TRUE(registry.AllowsCall("never-seen", 0));
  EXPECT_TRUE(registry.Snapshot(0).empty());
}

TEST(BreakerRegistryTest, ConsecutiveFailuresTripTheFleetBreaker) {
  CircuitBreakerOptions opt;
  opt.failure_threshold = 3;
  BreakerRegistry registry(opt);
  registry.Record("yolo", /*tick=*/1, /*successes=*/0, /*failures=*/3);
  EXPECT_FALSE(registry.AllowsCall("yolo", 1));
  const auto health = registry.Snapshot(1);
  ASSERT_EQ(health.size(), 1u);
  EXPECT_EQ(health[0].model, "yolo");
  EXPECT_EQ(health[0].state, BreakerState::kOpen);
  EXPECT_EQ(health[0].failures, 3u);
  EXPECT_EQ(health[0].opens, 1u);
}

TEST(BreakerRegistryTest, SuccessesApplyBeforeFailures) {
  CircuitBreakerOptions opt;
  opt.failure_threshold = 3;
  BreakerRegistry registry(opt);
  // Each frame both succeeds and fails once: the success resets the
  // consecutive-failure streak first, so the single failure per frame can
  // never accumulate to the threshold.
  for (uint64_t t = 1; t <= 10; ++t) {
    registry.Record("yolo", t, /*successes=*/1, /*failures=*/1);
  }
  EXPECT_TRUE(registry.AllowsCall("yolo", 10));
  // Pure failures still trip it.
  registry.Record("yolo", 11, 0, 3);
  EXPECT_FALSE(registry.AllowsCall("yolo", 11));
}

TEST(BreakerRegistryTest, OpenBreakerAdmitsProbesAfterCooldown) {
  CircuitBreakerOptions opt;
  opt.failure_threshold = 2;
  opt.open_frames = 5;
  BreakerRegistry registry(opt);
  registry.Record("m", 10, 0, 2);
  EXPECT_FALSE(registry.AllowsCall("m", 10));
  EXPECT_TRUE(registry.AllowsCall("m", 15));  // half-open probe window
  const auto health = registry.Snapshot(15);
  ASSERT_EQ(health.size(), 1u);
  EXPECT_EQ(health[0].state, BreakerState::kHalfOpen);
}

TEST(BreakerRegistryTest, TicksAreClampedMonotone) {
  CircuitBreakerOptions opt;
  opt.failure_threshold = 2;
  opt.open_frames = 50;
  BreakerRegistry registry(opt);
  registry.Record("m", 100, 0, 2);  // opens at clamped tick 100
  // A stale, smaller tick must not rewind the clock past the open window.
  EXPECT_FALSE(registry.AllowsCall("m", 5));
  EXPECT_FALSE(registry.AllowsCall("m", 100));
  EXPECT_TRUE(registry.AllowsCall("m", 150));
}

TEST(BreakerRegistryTest, SnapshotIsSortedByModelName) {
  BreakerRegistry registry;
  registry.Record("zebra", 1, 1, 0);
  registry.Record("alpha", 1, 1, 0);
  registry.Record("mid", 1, 1, 0);
  const auto health = registry.Snapshot(1);
  ASSERT_EQ(health.size(), 3u);
  EXPECT_EQ(health[0].model, "alpha");
  EXPECT_EQ(health[1].model, "mid");
  EXPECT_EQ(health[2].model, "zebra");
}

// ---------------------------------------------------------------------------
// BatchDispatcher: cross-stream coalescing.

TEST(BatchDispatcherTest, OptionsValidation) {
  BatchDispatcherOptions opt;
  EXPECT_TRUE(opt.Validate().ok());
  opt.batch_window = 0;
  EXPECT_EQ(opt.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(BatchDispatcherTest, SoloStreamRunsBatchesOfOneBitIdentically) {
  const DetectorPool pool = MakePool(2);
  const Video video = MakeVideo(0.01, 5);
  ASSERT_GE(video.size(), 2u);
  BatchDispatcher dispatcher({/*batch_window=*/4});
  const DetectorPool batched =
      std::move(MakeBatchingPool(pool, &dispatcher, /*stream_id=*/0)).value();

  dispatcher.BeginStep();
  for (size_t i = 0; i < pool.detectors.size(); ++i) {
    const DetectionList direct =
        pool.detectors[i]->Detect(video.frames[0], /*trial_seed=*/7);
    const DetectionList via =
        batched.detectors[i]->Detect(video.frames[0], /*trial_seed=*/7);
    ASSERT_EQ(direct.size(), via.size());
    for (size_t d = 0; d < direct.size(); ++d) {
      EXPECT_EQ(direct[d].box.x1, via[d].box.x1);
      EXPECT_EQ(direct[d].confidence, via[d].confidence);
      EXPECT_EQ(direct[d].label, via[d].label);
    }
  }
  dispatcher.EndStep();

  const auto stats = dispatcher.stats();
  EXPECT_EQ(stats.requests, pool.detectors.size());
  EXPECT_EQ(stats.batches, pool.detectors.size());  // nothing to coalesce
  EXPECT_EQ(stats.max_batch, 1u);
  EXPECT_EQ(stats.coalesced_requests, 0u);
}

TEST(BatchDispatcherTest, FullWindowCoalescesConcurrentStreams) {
  const DetectorPool pool = MakePool(1);
  const Video video = MakeVideo(0.01, 5);
  constexpr int kStreams = 4;
  BatchDispatcher dispatcher({/*batch_window=*/kStreams});

  // All steps open BEFORE any request: no thread can fire a premature
  // all-blocked flush, so the window-full condition must assemble all
  // four requests into exactly one batch.
  for (int s = 0; s < kStreams; ++s) dispatcher.BeginStep();

  const DetectionList solo =
      pool.detectors[0]->Detect(video.frames[0], /*trial_seed=*/3);
  std::vector<DetectionList> results(kStreams);
  std::vector<std::thread> streams;
  streams.reserve(kStreams);
  for (int s = 0; s < kStreams; ++s) {
    streams.emplace_back([&, s] {
      BatchingDetector det(pool.detectors[0].get(), &dispatcher,
                           static_cast<uint64_t>(s));
      results[static_cast<size_t>(s)] =
          det.Detect(video.frames[0], /*trial_seed=*/3);
    });
  }
  for (auto& t : streams) t.join();
  for (int s = 0; s < kStreams; ++s) dispatcher.EndStep();

  const auto stats = dispatcher.stats();
  EXPECT_EQ(stats.requests, static_cast<uint64_t>(kStreams));
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.max_batch, static_cast<uint64_t>(kStreams));
  EXPECT_EQ(stats.coalesced_requests, static_cast<uint64_t>(kStreams));
  // Purity: every coalesced stream sees its exact solo output.
  for (const auto& r : results) {
    ASSERT_EQ(r.size(), solo.size());
    for (size_t d = 0; d < solo.size(); ++d) {
      EXPECT_EQ(r[d].box.x1, solo[d].box.x1);
      EXPECT_EQ(r[d].confidence, solo[d].confidence);
    }
  }
}

TEST(BatchDispatcherTest, AllBlockedFlushPreventsDeadlock) {
  // Three streams park on three DIFFERENT models with a huge window: the
  // window-full condition can never fire, so the all-steppers-blocked rule
  // must flush every queue — this test hanging would be the bug.
  const DetectorPool pool = MakePool(3);
  const Video video = MakeVideo(0.01, 5);
  BatchDispatcher dispatcher({/*batch_window=*/100});
  std::atomic<int> done{0};
  std::vector<std::thread> streams;
  for (int s = 0; s < 3; ++s) {
    streams.emplace_back([&, s] {
      dispatcher.BeginStep();
      BatchingDetector det(pool.detectors[static_cast<size_t>(s)].get(),
                           &dispatcher, static_cast<uint64_t>(s));
      (void)det.Detect(video.frames[0], 3);
      dispatcher.EndStep();
      done.fetch_add(1);
    });
  }
  for (auto& t : streams) t.join();
  EXPECT_EQ(done.load(), 3);
  const auto stats = dispatcher.stats();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_GE(stats.batches, 3u);  // distinct models cannot coalesce
}

TEST(BatchDispatcherTest, BatchingPreservesFallibility) {
  // The retry layer dispatches on FallibleDetector; the batching wrapper
  // must keep a faulted detector fallible and replay its exact per-attempt
  // outcomes, or faulted serve runs would silently diverge from solo runs.
  const DetectorPool pool = MakePool(2);
  const DetectorPool faulty =
      std::move(ApplyFaultScripts(pool, MakeScripts(2))).value();
  BatchDispatcher dispatcher;
  const DetectorPool batched =
      std::move(MakeBatchingPool(faulty, &dispatcher, 0)).value();
  const Video video = MakeVideo(0.01, 5);
  ASSERT_GT(video.size(), 3u);

  const auto* wrapped =
      dynamic_cast<const FallibleDetector*>(batched.detectors[0].get());
  ASSERT_NE(wrapped, nullptr) << "fallibility lost in decoration";
  const auto* inner =
      dynamic_cast<const FallibleDetector*>(faulty.detectors[0].get());
  ASSERT_NE(inner, nullptr);

  // Frame 3 is inside model 0's scripted outage burst [2, 8).
  const AttemptOutcome direct = inner->Attempt(video.frames[3], 7, 0);
  const AttemptOutcome via = wrapped->Attempt(video.frames[3], 7, 0);
  EXPECT_EQ(direct.status.code(), via.status.code());
  EXPECT_EQ(direct.latency_ms, via.latency_ms);
  EXPECT_EQ(direct.status.code(), StatusCode::kUnavailable);
}

// ---------------------------------------------------------------------------
// Admission control and shedding.

TEST(StreamSchedulerTest, ShedsBeyondCapacityWithResourceExhausted) {
  const DetectorPool pool = MakePool(2);
  const Video video = MakeVideo(0.01, 7);
  ServeOptions opt;
  opt.max_sessions = 2;
  opt.queue_depth = 1;
  StreamScheduler scheduler(opt);

  auto submit = [&](const std::string& name) {
    StreamSpec spec{name, "MES", PriorityClass::kStandard, 1, 2};
    return scheduler.Submit(MakeServeSession(video, pool, spec, /*lazy=*/true,
                                             /*faults=*/false, nullptr, 0));
  };
  EXPECT_EQ(std::move(submit("a")).value(), 0u);
  EXPECT_EQ(std::move(submit("b")).value(), 1u);
  EXPECT_EQ(std::move(submit("c")).value(), 2u);  // queued
  EXPECT_EQ(scheduler.active_sessions(), 2);
  EXPECT_EQ(scheduler.queued_sessions(), 1);
  const auto shed = submit("d");
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);

  // Overload rejected new work but admitted work must drain completely.
  const ServeReport report = std::move(scheduler.RunUntilDrained()).value();
  ASSERT_EQ(report.streams.size(), 3u);
  for (const auto& s : report.streams) {
    EXPECT_TRUE(s.status.ok()) << s.name << ": " << s.status.ToString();
    EXPECT_GT(s.frames, 0u);
  }
  EXPECT_EQ(report.stats.shed_submissions, 1u);
  EXPECT_EQ(report.stats.admitted, 3u);
  EXPECT_EQ(report.stats.submitted, 4u);
  EXPECT_EQ(report.stats.peak_active, 2);
  EXPECT_EQ(report.stats.peak_queued, 1);
  // Queued stream admitted only after a slot freed.
  EXPECT_GT(report.streams[2].admitted_round, 0u);
}

TEST(StreamSchedulerTest, FleetDarkPoolIsShedAtAdmission) {
  const DetectorPool pool = MakePool(2);
  const Video video = MakeVideo(0.01, 7);
  CircuitBreakerOptions breaker;
  breaker.failure_threshold = 1;
  ServeOptions opt;
  opt.fleet_breaker = breaker;
  StreamScheduler scheduler(opt);
  // Every model of the candidate pool is fleet-open.
  for (const auto& det : pool.detectors) {
    scheduler.fleet_health().Record(det->name(), 1, 0, 1);
  }
  StreamSpec spec{"dark", "MES", PriorityClass::kStandard, 1, 2};
  const auto shed = scheduler.Submit(MakeServeSession(
      video, pool, spec, /*lazy=*/true, /*faults=*/false, nullptr, 0));
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// The bit-identity matrix (tentpole acceptance): every stream served under
// any scheduler/worker/batching/fault configuration must reproduce its
// solo run bit for bit.

void RunBitIdentityCase(const Video& video, const DetectorPool& pool,
                        bool lazy, int workers, bool faults, bool batching) {
  const std::vector<StreamSpec> specs = {
      {"interactive-mes", "MES", PriorityClass::kInteractive, 9, 42},
      {"standard-swmes", "SW-MES", PriorityClass::kStandard, 10, 43},
      {"batch-dmes", "D-MES", PriorityClass::kBatch, 11, 44},
      {"standard-rand", "RAND", PriorityClass::kStandard, 12, 45},
  };

  ServeOptions opt;
  opt.max_sessions = 3;  // forces the 4th stream through the queue
  opt.queue_depth = 4;
  opt.quantum_ms = 40.0;
  opt.max_frames_per_round = 8;
  opt.parallelism = workers;
  StreamScheduler scheduler(opt);
  BatchDispatcher dispatcher({/*batch_window=*/3});
  if (batching) scheduler.AttachBatchDispatcher(&dispatcher);

  for (size_t i = 0; i < specs.size(); ++i) {
    auto id = scheduler.Submit(MakeServeSession(
        video, pool, specs[i], lazy, faults,
        batching ? &dispatcher : nullptr, static_cast<uint64_t>(i)));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_EQ(*id, i);
  }
  const ServeReport report = std::move(scheduler.RunUntilDrained()).value();
  ASSERT_EQ(report.streams.size(), specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE(specs[i].name);
    const StreamReport& sr = report.streams[i];
    EXPECT_EQ(sr.stream_id, i);
    EXPECT_EQ(sr.name, specs[i].name);
    ASSERT_TRUE(sr.status.ok()) << sr.status.ToString();
    const RunResult solo = SoloBaseline(video, pool, specs[i], lazy, faults);
    ExpectSameRun(solo, sr.result);
  }
  // The two ledgers: summed simulated frame-clock is exactly the sum over
  // streams; wall-clock is measured, not summed.
  double simulated = 0.0;
  for (const auto& s : report.streams) {
    simulated += s.result.breakdown.SimulatedMs();
  }
  EXPECT_DOUBLE_EQ(report.stats.simulated_ms, simulated);
  EXPECT_GT(report.stats.simulated_ms, 0.0);
  EXPECT_GT(report.stats.wall_ms, 0.0);
  EXPECT_GT(report.stats.frames, 0u);
  if (batching) {
    EXPECT_GT(report.stats.batching.requests, 0u);
  }
}

TEST(ServeBitIdentityTest, EagerBackendMatrix) {
  const DetectorPool pool = MakePool(3);
  const Video video = MakeVideo(0.02, 17);
  ASSERT_GT(video.size(), 12u);
  for (const int workers : {1, 4}) {
    for (const bool faults : {false, true}) {
      SCOPED_TRACE("eager/w" + std::to_string(workers) +
                   (faults ? "/faults" : "/clean"));
      RunBitIdentityCase(video, pool, /*lazy=*/false, workers, faults,
                         /*batching=*/true);
    }
  }
}

TEST(ServeBitIdentityTest, LazyBackendMatrix) {
  const DetectorPool pool = MakePool(3);
  const Video video = MakeVideo(0.02, 17);
  ASSERT_GT(video.size(), 12u);
  for (const int workers : {1, 4}) {
    for (const bool faults : {false, true}) {
      SCOPED_TRACE("lazy/w" + std::to_string(workers) +
                   (faults ? "/faults" : "/clean"));
      RunBitIdentityCase(video, pool, /*lazy=*/true, workers, faults,
                         /*batching=*/true);
    }
  }
}

TEST(ServeBitIdentityTest, UnbatchedServeAlsoMatches) {
  const DetectorPool pool = MakePool(3);
  const Video video = MakeVideo(0.02, 17);
  RunBitIdentityCase(video, pool, /*lazy=*/true, /*workers=*/4,
                     /*faults=*/true, /*batching=*/false);
}

// ---------------------------------------------------------------------------
// Deficit round-robin fairness.

TEST(StreamSchedulerTest, InteractiveClassFinishesInFewerRounds) {
  const DetectorPool pool = MakePool(3);
  const Video video = MakeVideo(0.02, 17);
  // Identical work, different classes: weights 4/2/1 mean the interactive
  // stream earns quanta 4x faster and must retire in no more rounds than
  // standard, which in turn beats batch.
  const std::vector<StreamSpec> specs = {
      {"fast", "MES", PriorityClass::kInteractive, 9, 42},
      {"mid", "MES", PriorityClass::kStandard, 9, 42},
      {"slow", "MES", PriorityClass::kBatch, 9, 42},
  };
  ServeOptions opt;
  opt.max_sessions = 3;
  opt.quantum_ms = 20.0;  // small quantum => many rounds => weights matter
  opt.max_frames_per_round = 64;
  opt.parallelism = 1;
  StreamScheduler scheduler(opt);
  for (size_t i = 0; i < specs.size(); ++i) {
    ASSERT_TRUE(
        scheduler
            .Submit(MakeServeSession(video, pool, specs[i], /*lazy=*/true,
                                     /*faults=*/false, nullptr, i))
            .ok());
  }
  const ServeReport report = std::move(scheduler.RunUntilDrained()).value();
  ASSERT_EQ(report.streams.size(), 3u);
  const auto& interactive = report.streams[0];
  const auto& standard = report.streams[1];
  const auto& batch = report.streams[2];
  EXPECT_EQ(interactive.frames, standard.frames);  // same total work
  EXPECT_EQ(standard.frames, batch.frames);
  EXPECT_LE(interactive.rounds_active, standard.rounds_active);
  EXPECT_LE(standard.rounds_active, batch.rounds_active);
  EXPECT_LT(interactive.rounds_active, batch.rounds_active)
      << "a 4x weight advantage must be visible in rounds-to-finish";
}

// ---------------------------------------------------------------------------
// Per-stream fault containment and checkpoint/resume under the scheduler.

TEST(StreamSchedulerTest, CrashingSessionRetiresWithoutStallingOthers) {
  const DetectorPool pool = MakePool(3);
  const Video video = MakeVideo(0.02, 17);
  ServeOptions opt;
  opt.max_sessions = 2;
  opt.parallelism = 2;
  StreamScheduler scheduler(opt);

  StreamSpec healthy{"healthy", "MES", PriorityClass::kStandard, 9, 42};
  StreamSpec doomed{"doomed", "SW-MES", PriorityClass::kStandard, 10, 43};
  EngineOptions crash = MakeEngine(doomed);
  crash.checkpoint.directory = ScratchDir("crash-contained");
  crash.checkpoint.every_frames = 4;
  crash.checkpoint.crash_after_frames = 5;

  ASSERT_TRUE(scheduler
                  .Submit(MakeServeSession(video, pool, healthy, true, false,
                                           nullptr, 0))
                  .ok());
  ASSERT_TRUE(scheduler
                  .Submit(MakeServeSession(video, pool, doomed, true, false,
                                           nullptr, 1, crash,
                                           /*use_override=*/true))
                  .ok());

  const ServeReport report = std::move(scheduler.RunUntilDrained()).value();
  ASSERT_EQ(report.streams.size(), 2u);
  EXPECT_TRUE(report.streams[0].status.ok());
  EXPECT_EQ(report.streams[0].result.frames_processed, video.size());
  EXPECT_EQ(report.streams[1].status.code(), StatusCode::kAborted);
  EXPECT_LT(report.streams[1].frames, video.size());
  // The terminal error is surfaced in the aggregate stats, not only in the
  // per-stream report: fleet summaries read stats.errors to explain WHY
  // streams died.
  EXPECT_EQ(report.stats.failed_streams, 1u);
  ASSERT_EQ(report.stats.errors.size(), 1u);
  EXPECT_EQ(report.stats.errors[0].stream_id, report.streams[1].stream_id);
  EXPECT_EQ(report.stats.errors[0].name, "doomed");
  EXPECT_EQ(report.stats.errors[0].code, StatusCode::kAborted);
  EXPECT_FALSE(report.stats.errors[0].message.empty());
}

TEST(StreamSchedulerTest, SessionCheckpointResumesBitIdenticallyUnderServe) {
  const DetectorPool pool = MakePool(3);
  const Video video = MakeVideo(0.02, 17);
  StreamSpec spec{"resumable", "MES", PriorityClass::kStandard, 9, 42};
  const RunResult solo = SoloBaseline(video, pool, spec, /*lazy=*/true,
                                      /*faults=*/false);

  EngineOptions ck = MakeEngine(spec);
  ck.checkpoint.directory = ScratchDir("serve-resume");
  ck.checkpoint.every_frames = 4;
  ck.checkpoint.crash_after_frames = 6;

  // First serving process: the session dies mid-video (kAborted).
  {
    StreamScheduler scheduler;
    ASSERT_TRUE(scheduler
                    .Submit(MakeServeSession(video, pool, spec, true, false,
                                             nullptr, 0, ck, true))
                    .ok());
    const ServeReport report = std::move(scheduler.RunUntilDrained()).value();
    ASSERT_EQ(report.streams.size(), 1u);
    ASSERT_EQ(report.streams[0].status.code(), StatusCode::kAborted);
  }

  // Restarted serving process: a fresh session over the same checkpoint
  // directory resumes and completes; the stitched run must equal the
  // uninterrupted solo run bit for bit.
  ck.checkpoint.crash_after_frames = 0;
  StreamScheduler scheduler;
  ASSERT_TRUE(scheduler
                  .Submit(MakeServeSession(video, pool, spec, true, false,
                                           nullptr, 0, ck, true))
                  .ok());
  const ServeReport report = std::move(scheduler.RunUntilDrained()).value();
  ASSERT_EQ(report.streams.size(), 1u);
  ASSERT_TRUE(report.streams[0].status.ok())
      << report.streams[0].status.ToString();
  EXPECT_TRUE(report.streams[0].result.checkpoint.resumed);
  ExpectSameRun(solo, report.streams[0].result);
}

// ---------------------------------------------------------------------------
// Fleet health aggregation across sessions.

TEST(StreamSchedulerTest, FaultedSessionsPopulateFleetHealth) {
  const DetectorPool pool = MakePool(3);
  const Video video = MakeVideo(0.02, 17);
  ServeOptions opt;
  opt.max_sessions = 2;
  StreamScheduler scheduler(opt);
  const std::vector<StreamSpec> specs = {
      {"f0", "MES", PriorityClass::kStandard, 9, 42},
      {"f1", "SW-MES", PriorityClass::kStandard, 10, 43},
  };
  for (size_t i = 0; i < specs.size(); ++i) {
    ASSERT_TRUE(scheduler
                    .Submit(MakeServeSession(video, pool, specs[i],
                                             /*lazy=*/true, /*faults=*/true,
                                             nullptr, i))
                    .ok());
  }
  const ServeReport report = std::move(scheduler.RunUntilDrained()).value();
  ASSERT_FALSE(report.stats.fleet_health.empty());
  uint64_t total_failures = 0;
  uint64_t total_successes = 0;
  for (const auto& h : report.stats.fleet_health) {
    total_failures += h.failures;
    total_successes += h.successes;
  }
  // The scripted outage on model 0 must surface as fleet-visible failures,
  // aggregated from BOTH sessions' private runs.
  EXPECT_GT(total_failures, 0u);
  EXPECT_GT(total_successes, 0u);
  // Per-stream results remain solo-identical despite shared reporting.
  for (size_t i = 0; i < specs.size(); ++i) {
    const RunResult solo =
        SoloBaseline(video, pool, specs[i], /*lazy=*/true, /*faults=*/true);
    ExpectSameRun(solo, report.streams[i].result);
  }
}

// ---------------------------------------------------------------------------
// Two-ledger time accounting.

TEST(TimeBreakdownTest, SimulatedAndWallLedgersAreSeparate) {
  TimeBreakdown b;
  b.detector_ms = 10.0;
  b.reference_ms = 5.0;
  b.ensembling_ms = 2.0;
  b.fault_ms = 3.0;
  b.algorithm_ms = 100.0;  // wall-clock share, not simulated
  EXPECT_DOUBLE_EQ(b.SimulatedMs(), 20.0);
  EXPECT_DOUBLE_EQ(b.TotalMs(), 120.0);
}

TEST(StreamSchedulerTest, ServeStatsKeepLedgersApart) {
  const DetectorPool pool = MakePool(2);
  const Video video = MakeVideo(0.01, 7);
  ServeOptions opt;
  opt.max_sessions = 2;
  opt.record_frame_latency = true;
  StreamScheduler scheduler(opt);
  for (size_t i = 0; i < 2; ++i) {
    StreamSpec spec{"s" + std::to_string(i), "MES",
                    PriorityClass::kStandard, 9 + i, 42 + i};
    ASSERT_TRUE(scheduler
                    .Submit(MakeServeSession(video, pool, spec, true, false,
                                             nullptr, i))
                    .ok());
  }
  const ServeReport report = std::move(scheduler.RunUntilDrained()).value();
  double simulated = 0.0;
  double algo = 0.0;
  for (const auto& s : report.streams) {
    simulated += s.result.breakdown.SimulatedMs();
    algo += s.result.breakdown.algorithm_ms;
  }
  EXPECT_DOUBLE_EQ(report.stats.simulated_ms, simulated);
  EXPECT_DOUBLE_EQ(report.stats.algorithm_wall_ms, algo);
  EXPECT_GT(report.stats.wall_ms, 0.0);
  // Simulated frame-clock is orders of magnitude above the real wall
  // clock here (no real GPUs run), which is exactly why the ledgers must
  // never be summed together.
  EXPECT_NE(report.stats.simulated_ms, report.stats.wall_ms);
  // Latency percentiles recorded and ordered.
  EXPECT_GE(report.stats.frame_p99_ms, report.stats.frame_p50_ms);
}

// ---------------------------------------------------------------------------
// Overload control (ISSUE 9): the percentile sensor, option validation,
// the hysteresis ladder state machine, per-class serve accounting, the
// level-3 batch shed, and the engine-side degradation actuators.

TEST(SamplePercentileTest, NearestRank) {
  EXPECT_EQ(SamplePercentile({}, 0.99), 0.0);
  EXPECT_EQ(SamplePercentile({7.0}, 0.5), 7.0);
  std::vector<double> ten;
  for (int i = 10; i >= 1; --i) ten.push_back(static_cast<double>(i));
  EXPECT_EQ(SamplePercentile(ten, 0.5), 5.0);   // ceil(0.5 * 10) = 5th
  EXPECT_EQ(SamplePercentile(ten, 0.99), 10.0);  // ceil(9.9) = 10th
  EXPECT_EQ(SamplePercentile(ten, 1.0), 10.0);
}

TEST(OverloadOptionsTest, DisabledBypassesValidation) {
  OverloadOptions off;
  off.window = -5;  // nonsense, but the controller is never constructed
  EXPECT_TRUE(off.Validate().ok());
}

TEST(OverloadOptionsTest, EnabledValidatesEveryKnob) {
  OverloadOptions ok;
  ok.enabled = true;
  EXPECT_TRUE(ok.Validate().ok());
  const auto expect_bad = [&](void (*mutate)(OverloadOptions&)) {
    OverloadOptions bad = ok;
    mutate(bad);
    EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
  };
  expect_bad([](OverloadOptions& o) { o.window = 0; });
  expect_bad([](OverloadOptions& o) { o.min_samples = 0; });
  expect_bad([](OverloadOptions& o) { o.min_samples = o.window + 1; });
  expect_bad([](OverloadOptions& o) { o.queue_trigger = -1; });
  expect_bad([](OverloadOptions& o) { o.dwell_rounds = 0; });
  expect_bad([](OverloadOptions& o) { o.recover_rounds = 0; });
  expect_bad([](OverloadOptions& o) { o.skip_boost = -1; });
  expect_bad([](OverloadOptions& o) { o.skip_boost = kMaxSkipBoost + 1; });
  expect_bad([](OverloadOptions& o) { o.slo[0].p99_ms = std::nan(""); });
  expect_bad([](OverloadOptions& o) { o.slo[0].p99_ms = -1.0; });
  expect_bad([](OverloadOptions& o) { o.slo[1].shed_budget = -0.1; });
  expect_bad([](OverloadOptions& o) { o.slo[1].shed_budget = 1.5; });
}

OverloadOptions LadderOptions() {
  OverloadOptions o;
  o.enabled = true;
  o.window = 16;
  o.min_samples = 4;
  o.queue_trigger = 1;
  o.dwell_rounds = 2;
  o.recover_rounds = 2;
  o.skip_boost = 3;
  o.shrink_mask = 0x2;
  return o;
}

TEST(OverloadControllerTest, FirstQueueBreachStepsImmediatelyThenDwells) {
  OverloadController c(LadderOptions());
  ASSERT_EQ(c.level(), 0);
  c.EndRound(0, /*queue_depth=*/5);  // no prior transition: steps at once
  EXPECT_EQ(c.level(), 1);
  c.EndRound(1, 5);  // dwell_rounds = 2 gates the next step
  EXPECT_EQ(c.level(), 1);
  c.EndRound(2, 5);
  EXPECT_EQ(c.level(), 2);
  ASSERT_EQ(c.ledger().size(), 2u);
  EXPECT_EQ(c.ledger()[0].round, 0u);
  EXPECT_EQ(c.ledger()[0].from, 0);
  EXPECT_EQ(c.ledger()[0].to, 1);
  EXPECT_EQ(c.ledger()[0].trigger_class, -1);
  EXPECT_TRUE(c.ledger()[0].queue_triggered);
  EXPECT_EQ(c.ledger()[0].queue_depth, 5);
  EXPECT_EQ(c.ledger()[1].round, 2u);
}

TEST(OverloadControllerTest, LatencyBreachAttributesTheClass) {
  OverloadOptions opt = LadderOptions();
  opt.queue_trigger = 0;  // latency sensor only
  opt.slo[PriorityClassIndex(PriorityClass::kInteractive)].p99_ms = 10.0;
  OverloadController c(opt);
  // Below min_samples the window is not judged.
  for (int i = 0; i < 3; ++i) {
    c.RecordFrameCost(PriorityClass::kInteractive, 50.0);
  }
  c.EndRound(0, 0);
  EXPECT_EQ(c.level(), 0);
  c.RecordFrameCost(PriorityClass::kInteractive, 50.0);
  c.EndRound(1, 0);
  EXPECT_EQ(c.level(), 1);
  EXPECT_EQ(c.ClassP99(PriorityClassIndex(PriorityClass::kInteractive)), 50.0);
  ASSERT_EQ(c.ledger().size(), 1u);
  EXPECT_EQ(c.ledger()[0].trigger_class,
            PriorityClassIndex(PriorityClass::kInteractive));
  EXPECT_FALSE(c.ledger()[0].queue_triggered);
  EXPECT_EQ(c.ledger()[0].observed_p99_ms, 50.0);
}

TEST(OverloadControllerTest, RecoveryNeedsHealthyStreakAndDwell) {
  OverloadController c(LadderOptions());
  c.EndRound(0, 5);
  ASSERT_EQ(c.level(), 1);
  c.EndRound(1, 0);  // healthy, but streak 1 < recover_rounds
  EXPECT_EQ(c.level(), 1);
  c.EndRound(2, 0);  // streak 2, dwell satisfied: one rung up
  EXPECT_EQ(c.level(), 0);
  // The dwell gates BOTH directions: a breach one round after the
  // recovery transition cannot immediately re-trip.
  c.EndRound(3, 5);
  EXPECT_EQ(c.level(), 0);
  c.EndRound(4, 5);  // dwell satisfied: re-trips
  ASSERT_EQ(c.level(), 1);
  c.EndRound(5, 5);  // still hot: the healthy streak stays at zero
  EXPECT_EQ(c.level(), 1);
  c.EndRound(6, 0);  // streak 1 of 2
  EXPECT_EQ(c.level(), 1);
  c.EndRound(7, 0);  // streak 2: recovers
  EXPECT_EQ(c.level(), 0);
}

TEST(OverloadControllerTest, StaleWindowDrainsInsteadOfWedgingTheLadder) {
  OverloadOptions opt = LadderOptions();
  opt.queue_trigger = 0;
  opt.dwell_rounds = 1;
  opt.min_samples = 1;
  opt.slo[0].p99_ms = 10.0;
  OverloadController c(opt);
  c.RecordFrameCost(PriorityClass::kInteractive, 100.0);
  c.EndRound(0, 0);
  ASSERT_GE(c.level(), 1);
  EXPECT_EQ(c.ClassP99(0), 100.0);
  // The class never sends traffic again. The fossil sample must drain
  // after recover_rounds idle rounds and the ladder must fully recover.
  uint64_t round = 1;
  for (; round < 20 && c.level() != 0; ++round) c.EndRound(round, 0);
  EXPECT_EQ(c.level(), 0) << "ladder wedged on a stale window";
  EXPECT_EQ(c.ClassP99(0), 0.0);
}

TEST(OverloadControllerTest, ActuatorViewsFollowTheLevel) {
  OverloadOptions opt = LadderOptions();
  opt.dwell_rounds = 1;
  opt.recover_rounds = 1;
  OverloadController c(opt);
  EXPECT_EQ(c.skip_boost(), 0);
  EXPECT_EQ(c.model_mask(), EnsembleId{0});
  EXPECT_FALSE(c.throttle_batch());

  c.EndRound(0, 5);
  ASSERT_EQ(c.level(), 1);
  EXPECT_EQ(c.skip_boost(), 3);
  EXPECT_EQ(c.model_mask(), EnsembleId{0});
  EXPECT_FALSE(c.throttle_batch());

  c.EndRound(1, 5);
  ASSERT_EQ(c.level(), 2);
  EXPECT_EQ(c.skip_boost(), 3);
  EXPECT_EQ(c.model_mask(), EnsembleId{0x2});
  EXPECT_FALSE(c.throttle_batch());

  c.EndRound(2, 5);
  ASSERT_EQ(c.level(), 3);
  EXPECT_TRUE(c.throttle_batch());
  c.EndRound(3, 5);  // bottom rung: stays
  EXPECT_EQ(c.level(), 3);

  // Recovery walks the actuators back the same one-rung way.
  c.EndRound(4, 0);
  EXPECT_EQ(c.level(), 2);
  EXPECT_FALSE(c.throttle_batch());
  c.EndRound(5, 0);
  EXPECT_EQ(c.level(), 1);
  EXPECT_EQ(c.model_mask(), EnsembleId{0});
  c.EndRound(6, 0);
  EXPECT_EQ(c.level(), 0);
  EXPECT_EQ(c.skip_boost(), 0);
}

TEST(ServeClassStatsTest, PerClassAccountingAndPercentiles) {
  const DetectorPool pool = MakePool(2);
  const Video video = MakeVideo(0.02, 7);
  ServeOptions opt;
  opt.max_sessions = 3;
  StreamScheduler scheduler(opt);
  const std::vector<StreamSpec> specs = {
      {"i", "MES", PriorityClass::kInteractive, 9, 42},
      {"s", "MES", PriorityClass::kStandard, 10, 43},
      {"b", "MES", PriorityClass::kBatch, 11, 44},
  };
  for (size_t i = 0; i < specs.size(); ++i) {
    ASSERT_TRUE(scheduler
                    .Submit(MakeServeSession(video, pool, specs[i], true,
                                             false, nullptr, i))
                    .ok());
  }
  const ServeReport report = std::move(scheduler.RunUntilDrained()).value();
  uint64_t class_frames = 0;
  for (int c = 0; c < kNumPriorityClasses; ++c) {
    SCOPED_TRACE(PriorityClassToString(static_cast<PriorityClass>(c)));
    const auto& cs = report.stats.classes[c];
    EXPECT_EQ(cs.submitted, 1u);
    EXPECT_EQ(cs.admitted, 1u);
    EXPECT_EQ(cs.shed_submissions, 0u);
    EXPECT_EQ(cs.shed_rate, 0.0);
    EXPECT_GT(cs.frames, 0u);
    EXPECT_GT(cs.sim_p50_ms, 0.0);
    EXPECT_LE(cs.sim_p50_ms, cs.sim_p99_ms);
    EXPECT_LE(cs.sim_p99_ms, cs.sim_p999_ms);
    class_frames += cs.frames;
  }
  EXPECT_EQ(class_frames, report.stats.frames);
}

TEST(ServeOverloadTest, LevelThreeShedsBatchButAdmitsInteractive) {
  const DetectorPool pool = MakePool(2);
  const Video video = MakeVideo(0.02, 7);
  ServeOptions opt;
  opt.max_sessions = 1;  // one slot: submissions pile into the queue
  opt.queue_depth = 8;
  opt.overload.enabled = true;
  opt.overload.queue_trigger = 1;
  opt.overload.dwell_rounds = 1;
  opt.overload.recover_rounds = 64;  // never recovers inside this test
  StreamScheduler scheduler(opt);
  for (int i = 0; i < 3; ++i) {
    StreamSpec spec{"s" + std::to_string(i), "MES", PriorityClass::kStandard,
                    9 + static_cast<uint64_t>(i),
                    42 + static_cast<uint64_t>(i)};
    ASSERT_TRUE(scheduler
                    .Submit(MakeServeSession(video, pool, spec, true, false,
                                             nullptr,
                                             static_cast<uint64_t>(i)))
                    .ok());
  }
  ASSERT_TRUE(scheduler.BeginServing().ok());
  // Queue depth 2 >= trigger: the ladder walks one rung per round.
  for (int r = 0; r < 3; ++r) {
    ASSERT_TRUE(std::move(scheduler.RunRound()).value());
  }
  ASSERT_NE(scheduler.overload_controller(), nullptr);
  ASSERT_EQ(scheduler.overload_controller()->level(), 3);

  // At kShedBatch a new batch submission is refused even though the
  // queue has room — but interactive work is still welcome.
  StreamSpec batch{"late-batch", "MES", PriorityClass::kBatch, 20, 60};
  const auto shed = scheduler.Submit(
      MakeServeSession(video, pool, batch, true, false, nullptr, 20));
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  StreamSpec inter{"late-inter", "MES", PriorityClass::kInteractive, 21, 61};
  EXPECT_TRUE(scheduler
                  .Submit(MakeServeSession(video, pool, inter, true, false,
                                           nullptr, 21))
                  .ok());

  while (std::move(scheduler.RunRound()).value()) {
  }
  const ServeReport report = std::move(scheduler.FinishServing()).value();
  const auto& bcls =
      report.stats.classes[PriorityClassIndex(PriorityClass::kBatch)];
  EXPECT_EQ(bcls.submitted, 1u);
  EXPECT_EQ(bcls.shed_submissions, 1u);
  EXPECT_EQ(bcls.shed_rate, 1.0);
  const auto& icls =
      report.stats.classes[PriorityClassIndex(PriorityClass::kInteractive)];
  EXPECT_EQ(icls.shed_submissions, 0u);
  EXPECT_EQ(report.stats.peak_degradation_level, 3);
  EXPECT_GE(report.stats.degraded_rounds, 3u);
  ASSERT_GE(report.stats.degradations.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(report.stats.degradations[i].from, static_cast<int>(i));
    EXPECT_EQ(report.stats.degradations[i].to, static_cast<int>(i) + 1);
  }
}

TEST(ServeOverloadTest, QuietControllerStaysBitIdenticalToSolo) {
  const DetectorPool pool = MakePool(3);
  const Video video = MakeVideo(0.02, 17);
  const std::vector<StreamSpec> specs = {
      {"i", "MES", PriorityClass::kInteractive, 9, 42},
      {"b", "D-MES", PriorityClass::kBatch, 11, 44},
  };
  ServeOptions opt;
  opt.max_sessions = 2;
  // Enabled, but no latency SLO and no queue sensor: the controller runs
  // every round yet never leaves level 0 — SetDegradation(0, 0) must be a
  // true no-op on every stream.
  opt.overload.enabled = true;
  StreamScheduler scheduler(opt);
  for (size_t i = 0; i < specs.size(); ++i) {
    ASSERT_TRUE(scheduler
                    .Submit(MakeServeSession(video, pool, specs[i], true,
                                             false, nullptr, i))
                    .ok());
  }
  const ServeReport report = std::move(scheduler.RunUntilDrained()).value();
  ASSERT_EQ(report.streams.size(), specs.size());
  EXPECT_EQ(report.stats.peak_degradation_level, 0);
  EXPECT_TRUE(report.stats.degradations.empty());
  for (size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE(specs[i].name);
    ASSERT_TRUE(report.streams[i].status.ok());
    ExpectSameRun(SoloBaseline(video, pool, specs[i], /*lazy=*/true,
                               /*faults=*/false),
                  report.streams[i].result);
  }
}

// ---------------------------------------------------------------------------
// Engine-side degradation actuators.

RunResult RunEngineWithDegradation(const Video& video,
                                   const DetectorPool& pool, int skip_boost,
                                   EnsembleId mask, bool call_every_frame) {
  auto source =
      std::move(LazyFrameEvaluator::Create(video, pool, /*trial_seed=*/9, {}))
          .value();
  std::unique_ptr<SelectionStrategy> strategy = MakeStrategy("MES");
  EngineOptions e;
  e.strategy_seed = 42;
  e.compute_regret = false;
  auto run = std::move(EngineRun::Create(*source, strategy.get(), e)).value();
  bool applied = false;
  while (!run->done()) {
    if (call_every_frame || !applied) {
      run->SetDegradation(skip_boost, mask);
      applied = true;
    }
    const Status st = run->StepFrame();
    if (!st.ok()) {
      ADD_FAILURE() << st.ToString();
      break;
    }
  }
  return std::move(run->Finish()).value();
}

TEST(EngineDegradationTest, ShrinkMaskRestrictsSelection) {
  const DetectorPool pool = MakePool(2);
  const Video video = MakeVideo(0.02, 7);
  const RunResult r = RunEngineWithDegradation(video, pool, 0, EnsembleId{1},
                                               /*call_every_frame=*/true);
  ASSERT_FALSE(r.selection_counts.empty());
  for (size_t mask = 0; mask < r.selection_counts.size(); ++mask) {
    if (mask == 1) {
      EXPECT_EQ(r.selection_counts[mask], r.frames_processed);
    } else {
      EXPECT_EQ(r.selection_counts[mask], 0u) << "mask " << mask;
    }
  }
}

TEST(EngineDegradationTest, OutOfPoolMaskIsUnrestricted) {
  const DetectorPool pool = MakePool(2);  // full mask 0x3
  const Video video = MakeVideo(0.02, 7);
  const RunResult base = RunEngineWithDegradation(video, pool, 0, 0, false);
  // Bits entirely outside the pool drop out of the overlay; an all-foreign
  // mask degenerates to "unrestricted", never "select nothing".
  const RunResult foreign = RunEngineWithDegradation(
      video, pool, 0, EnsembleId{0x4}, /*call_every_frame=*/true);
  ExpectSameRun(base, foreign);
}

TEST(EngineDegradationTest, ZeroOverlayEveryFrameIsBitIdentical) {
  const DetectorPool pool = MakePool(2);
  const Video video = MakeVideo(0.02, 7);
  const RunResult base = RunEngineWithDegradation(video, pool, 0, 0, false);
  const RunResult zeroed =
      RunEngineWithDegradation(video, pool, 0, 0, /*call_every_frame=*/true);
  ExpectSameRun(base, zeroed);
}

// ---------------------------------------------------------------------------
// BreakerRegistry under concurrent multi-shard publication (ISSUE 9
// satellite): shards publish in parallel; totals must be exact and the
// open -> half-open -> closed walk must survive the contention. Run under
// TSan via tools/check.sh --full.

TEST(BreakerRegistryTest, ConcurrentPublicationKeepsExactTotals) {
  CircuitBreakerOptions opt;
  opt.failure_threshold = 3;
  BreakerRegistry registry(opt);
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 200;
  std::atomic<bool> stop{false};
  // Reader thread races Snapshot/AllowsCall against the publishers.
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)registry.AllowsCall("shared", 1);
      (void)registry.Snapshot(1);
    }
  });
  std::vector<std::thread> shards;
  for (int t = 0; t < kThreads; ++t) {
    shards.emplace_back([&registry, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        // success-before-failure per record: the shared breaker's
        // consecutive-failure count never reaches the threshold, so the
        // totals are pure counting with no state transitions racing.
        registry.Record("shared", i, 1, 1);
        registry.Record("own-" + std::to_string(t), i, 1, 0);
      }
    });
  }
  for (auto& th : shards) th.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  const auto health = registry.Snapshot(kPerThread);
  ASSERT_EQ(health.size(), static_cast<size_t>(kThreads) + 1);
  for (const auto& h : health) {
    if (h.model == "shared") {
      EXPECT_EQ(h.successes, kThreads * kPerThread);
      EXPECT_EQ(h.failures, kThreads * kPerThread);
      EXPECT_EQ(h.state, BreakerState::kClosed);
    } else {
      EXPECT_EQ(h.successes, kPerThread);
      EXPECT_EQ(h.failures, 0u);
    }
  }
  EXPECT_TRUE(registry.AllowsCall("shared", kPerThread));
}

TEST(BreakerRegistryTest, ConcurrentTripThenHalfOpenProbeCloses) {
  CircuitBreakerOptions opt;
  opt.failure_threshold = 3;
  opt.open_frames = 10;
  BreakerRegistry registry(opt);
  std::vector<std::thread> shards;
  for (int t = 0; t < 8; ++t) {
    shards.emplace_back([&registry, t] {
      for (uint64_t i = 0; i < 50; ++i) {
        registry.Record("flaky", 100 + i, 0, 1);
        (void)registry.AllowsCall("flaky", 100 + i);
      }
    });
  }
  for (auto& th : shards) th.join();
  // 400 consecutive failures: open, regardless of interleaving.
  EXPECT_FALSE(registry.AllowsCall("flaky", 150));
  {
    const auto health = registry.Snapshot(150);
    ASSERT_EQ(health.size(), 1u);
    EXPECT_EQ(health[0].state, BreakerState::kOpen);
    EXPECT_GE(health[0].opens, 1u);
    EXPECT_EQ(health[0].failures, 400u);
  }
  // Past the cooldown the breaker admits a probe; its success closes it.
  EXPECT_TRUE(registry.AllowsCall("flaky", 500));
  registry.Record("flaky", 500, /*successes=*/3, /*failures=*/0);
  const auto health = registry.Snapshot(501);
  ASSERT_EQ(health.size(), 1u);
  EXPECT_EQ(health[0].state, BreakerState::kClosed);
  EXPECT_TRUE(registry.AllowsCall("flaky", 501));
}

}  // namespace
}  // namespace vqe
