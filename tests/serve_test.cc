// Serving-layer matrix for ISSUE 5: per-stream bit-identity under the
// StreamScheduler (any session count, worker count, batch window, faults
// on/off, eager and lazy backends), admission control and load shedding
// (kResourceExhausted, never a stall), deficit-round-robin fairness across
// priority classes, cross-stream batch coalescing, fleet breaker
// aggregation, per-session checkpoint/resume under the scheduler, and the
// two-ledger time accounting (wall-clock vs summed frame-clock).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/baselines.h"
#include "core/ducb.h"
#include "core/engine.h"
#include "core/experiment.h"
#include "core/lazy_frame_evaluator.h"
#include "core/mes.h"
#include "core/mes_b.h"
#include "models/model_zoo.h"
#include "runtime/breaker_registry.h"
#include "runtime/fault_injection.h"
#include "serve/batch_dispatcher.h"
#include "serve/scheduler.h"
#include "serve/stream_session.h"
#include "sim/dataset.h"

namespace vqe {
namespace {

DetectorPool MakePool(int m) {
  const std::vector<std::string> names = {
      "yolov7-tiny@clear", "yolov7-tiny@night", "yolov7-tiny@rainy",
      "yolov7@clear",      "yolov7-micro@clear"};
  std::vector<DetectorProfile> profiles;
  for (int i = 0; i < m; ++i) {
    profiles.push_back(
        std::move(ParseDetectorName(names[static_cast<size_t>(i)])).value());
  }
  return std::move(BuildPool(profiles)).value();
}

Video MakeVideo(double scene_scale, uint64_t seed) {
  const DatasetSpec* spec = *DatasetCatalog::Default().Find("nusc-night");
  SampleOptions sample;
  sample.scene_scale = scene_scale;
  sample.seed = seed;
  return std::move(SampleVideo(*spec, sample)).value();
}

std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "vqe_serve_test/" + name;
  const int rc = std::system(("rm -rf '" + dir + "'").c_str());
  EXPECT_EQ(rc, 0);
  return dir;
}

std::unique_ptr<SelectionStrategy> MakeStrategy(const std::string& kind) {
  if (kind == "MES") {
    MesOptions o;
    o.gamma = 2;
    return std::make_unique<MesStrategy>(o);
  }
  if (kind == "MES-B") {
    MesBOptions o;
    o.gamma = 2;
    return std::make_unique<MesBStrategy>(o);
  }
  if (kind == "SW-MES") {
    SwMesOptions o;
    o.gamma = 2;
    o.window = 8;
    return std::make_unique<SwMesStrategy>(o);
  }
  if (kind == "D-MES") {
    DucbOptions o;
    o.gamma = 2;
    return std::make_unique<DucbMesStrategy>(o);
  }
  if (kind == "RAND") return std::make_unique<RandomStrategy>();
  ADD_FAILURE() << "unknown strategy kind " << kind;
  return nullptr;
}

/// The PR 3 fault mix: a scripted mid-video outage on model 0, random
/// per-attempt errors on model 1.
std::vector<FaultScript> MakeScripts(size_t m) {
  std::vector<FaultScript> scripts(m);
  scripts[0].bursts.push_back({2, 8, FaultKind::kError, -1});
  if (m > 1) scripts[1].error_rate = 0.2;
  return scripts;
}

/// One stream's identity inside the bit-identity matrix.
struct StreamSpec {
  std::string name;
  std::string strategy = "MES";
  PriorityClass priority = PriorityClass::kStandard;
  uint64_t trial_seed = 9;
  uint64_t strategy_seed = 42;
};

EngineOptions MakeEngine(const StreamSpec& spec) {
  EngineOptions e;
  e.strategy_seed = spec.strategy_seed;
  e.compute_regret = false;  // keeps the lazy backend lazy
  return e;
}

/// Solo ground truth: the exact run a stream would do alone, no scheduler,
/// no batching — the reference every serve configuration must reproduce.
RunResult SoloBaseline(const Video& video, const DetectorPool& base,
                       const StreamSpec& spec, bool lazy, bool faults) {
  const DetectorPool* pool = &base;
  DetectorPool faulty;
  if (faults) {
    faulty = std::move(ApplyFaultScripts(base, MakeScripts(base.size()))).value();
    pool = &faulty;
  }
  std::unique_ptr<SelectionStrategy> strategy = MakeStrategy(spec.strategy);
  const EngineOptions engine = MakeEngine(spec);
  if (lazy) {
    auto source =
        LazyFrameEvaluator::Create(video, *pool, spec.trial_seed, {});
    EXPECT_TRUE(source.ok()) << source.status().ToString();
    return std::move(RunStrategy(**source, strategy.get(), engine)).value();
  }
  auto matrix = BuildFrameMatrix(video, *pool, spec.trial_seed, {});
  EXPECT_TRUE(matrix.ok()) << matrix.status().ToString();
  return std::move(RunStrategy(*matrix, strategy.get(), engine)).value();
}

/// Builds a serving session over the decorated pool chain:
/// base → (faults?) → (batching?) → source.
std::unique_ptr<StreamSession> MakeServeSession(
    const Video& video, const DetectorPool& base, const StreamSpec& spec,
    bool lazy, bool faults, BatchDispatcher* dispatcher, uint64_t stream_id,
    EngineOptions engine_override = {}, bool use_override = false) {
  std::vector<std::unique_ptr<DetectorPool>> owned;
  const DetectorPool* pool = &base;
  if (faults) {
    auto faulty = std::make_unique<DetectorPool>(
        std::move(ApplyFaultScripts(*pool, MakeScripts(pool->size())))
            .value());
    pool = faulty.get();
    owned.push_back(std::move(faulty));
  }
  if (dispatcher != nullptr) {
    auto batching = std::make_unique<DetectorPool>(
        std::move(MakeBatchingPool(*pool, dispatcher, stream_id)).value());
    pool = batching.get();
    owned.push_back(std::move(batching));
  }
  std::unique_ptr<EvaluationSource> source;
  if (lazy) {
    source =
        std::move(LazyFrameEvaluator::Create(video, *pool, spec.trial_seed, {}))
            .value();
  } else {
    source = std::make_unique<OwningMatrixSource>(
        std::move(BuildFrameMatrix(video, *pool, spec.trial_seed, {}))
            .value());
  }
  StreamSessionConfig cfg;
  cfg.name = spec.name;
  cfg.priority = spec.priority;
  cfg.engine = use_override ? engine_override : MakeEngine(spec);
  for (const auto& det : pool->detectors) {
    cfg.model_names.push_back(det->name());
  }
  return std::move(StreamSession::Create(std::move(cfg), std::move(source),
                                         MakeStrategy(spec.strategy),
                                         std::move(owned)))
      .value();
}

/// Bit-identity over every deterministic RunResult field; algorithm_ms and
/// the checkpoint report are wall-clock/process bookkeeping and are the
/// only exclusions.
void ExpectSameRun(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.s_sum, b.s_sum);
  EXPECT_EQ(a.avg_true_ap, b.avg_true_ap);
  EXPECT_EQ(a.avg_norm_cost, b.avg_norm_cost);
  EXPECT_EQ(a.frames_processed, b.frames_processed);
  EXPECT_EQ(a.regret_available, b.regret_available);
  EXPECT_EQ(a.regret, b.regret);
  EXPECT_EQ(a.charged_cost_ms, b.charged_cost_ms);
  EXPECT_EQ(a.breakdown.detector_ms, b.breakdown.detector_ms);
  EXPECT_EQ(a.breakdown.reference_ms, b.breakdown.reference_ms);
  EXPECT_EQ(a.breakdown.ensembling_ms, b.breakdown.ensembling_ms);
  EXPECT_EQ(a.breakdown.fault_ms, b.breakdown.fault_ms);
  EXPECT_EQ(a.selection_counts, b.selection_counts);
  EXPECT_EQ(a.cost_curve, b.cost_curve);
  EXPECT_EQ(a.fallback_frames, b.fallback_frames);
  EXPECT_EQ(a.failed_frames, b.failed_frames);
  ASSERT_EQ(a.model_availability.size(), b.model_availability.size());
  for (size_t i = 0; i < a.model_availability.size(); ++i) {
    EXPECT_EQ(a.model_availability[i].frames_selected,
              b.model_availability[i].frames_selected);
    EXPECT_EQ(a.model_availability[i].frames_failed,
              b.model_availability[i].frames_failed);
    EXPECT_EQ(a.model_availability[i].breaker_opens,
              b.model_availability[i].breaker_opens);
    EXPECT_EQ(a.model_availability[i].fault_ms,
              b.model_availability[i].fault_ms);
  }
}

// ---------------------------------------------------------------------------
// Priority classes.

TEST(PriorityClassTest, WeightsAndNames) {
  EXPECT_EQ(PriorityWeight(PriorityClass::kInteractive), 4);
  EXPECT_EQ(PriorityWeight(PriorityClass::kStandard), 2);
  EXPECT_EQ(PriorityWeight(PriorityClass::kBatch), 1);
  EXPECT_STREQ(PriorityClassToString(PriorityClass::kInteractive),
               "interactive");
  EXPECT_STREQ(PriorityClassToString(PriorityClass::kStandard), "standard");
  EXPECT_STREQ(PriorityClassToString(PriorityClass::kBatch), "batch");
}

TEST(ServeOptionsTest, Validation) {
  ServeOptions ok;
  EXPECT_TRUE(ok.Validate().ok());
  ServeOptions bad = ok;
  bad.max_sessions = 0;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
  bad = ok;
  bad.queue_depth = -1;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
  bad = ok;
  bad.quantum_ms = 0.0;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
  bad = ok;
  bad.max_frames_per_round = 0;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(StreamSessionTest, CreateValidatesInputs) {
  const DetectorPool pool = MakePool(2);
  const Video video = MakeVideo(0.01, 3);
  StreamSpec spec{"s", "MES", PriorityClass::kStandard, 1, 2};

  StreamSessionConfig nameless;
  auto source = std::make_unique<OwningMatrixSource>(
      std::move(BuildFrameMatrix(video, pool, 1, {})).value());
  auto r = StreamSession::Create(nameless, std::move(source),
                                 MakeStrategy("MES"));
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  StreamSessionConfig cfg;
  cfg.name = "s";
  cfg.model_names = {"just-one"};  // pool has two models
  auto source2 = std::make_unique<OwningMatrixSource>(
      std::move(BuildFrameMatrix(video, pool, 1, {})).value());
  auto r2 = StreamSession::Create(cfg, std::move(source2),
                                  MakeStrategy("MES"));
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);

  cfg.model_names.clear();
  auto r3 = StreamSession::Create(cfg, nullptr, MakeStrategy("MES"));
  EXPECT_EQ(r3.status().code(), StatusCode::kInvalidArgument);
  (void)spec;
}

// ---------------------------------------------------------------------------
// BreakerRegistry: fleet-wide per-model health.

TEST(BreakerRegistryTest, UnknownModelIsHealthy) {
  BreakerRegistry registry;
  EXPECT_TRUE(registry.AllowsCall("never-seen", 0));
  EXPECT_TRUE(registry.Snapshot(0).empty());
}

TEST(BreakerRegistryTest, ConsecutiveFailuresTripTheFleetBreaker) {
  CircuitBreakerOptions opt;
  opt.failure_threshold = 3;
  BreakerRegistry registry(opt);
  registry.Record("yolo", /*tick=*/1, /*successes=*/0, /*failures=*/3);
  EXPECT_FALSE(registry.AllowsCall("yolo", 1));
  const auto health = registry.Snapshot(1);
  ASSERT_EQ(health.size(), 1u);
  EXPECT_EQ(health[0].model, "yolo");
  EXPECT_EQ(health[0].state, BreakerState::kOpen);
  EXPECT_EQ(health[0].failures, 3u);
  EXPECT_EQ(health[0].opens, 1u);
}

TEST(BreakerRegistryTest, SuccessesApplyBeforeFailures) {
  CircuitBreakerOptions opt;
  opt.failure_threshold = 3;
  BreakerRegistry registry(opt);
  // Each frame both succeeds and fails once: the success resets the
  // consecutive-failure streak first, so the single failure per frame can
  // never accumulate to the threshold.
  for (uint64_t t = 1; t <= 10; ++t) {
    registry.Record("yolo", t, /*successes=*/1, /*failures=*/1);
  }
  EXPECT_TRUE(registry.AllowsCall("yolo", 10));
  // Pure failures still trip it.
  registry.Record("yolo", 11, 0, 3);
  EXPECT_FALSE(registry.AllowsCall("yolo", 11));
}

TEST(BreakerRegistryTest, OpenBreakerAdmitsProbesAfterCooldown) {
  CircuitBreakerOptions opt;
  opt.failure_threshold = 2;
  opt.open_frames = 5;
  BreakerRegistry registry(opt);
  registry.Record("m", 10, 0, 2);
  EXPECT_FALSE(registry.AllowsCall("m", 10));
  EXPECT_TRUE(registry.AllowsCall("m", 15));  // half-open probe window
  const auto health = registry.Snapshot(15);
  ASSERT_EQ(health.size(), 1u);
  EXPECT_EQ(health[0].state, BreakerState::kHalfOpen);
}

TEST(BreakerRegistryTest, TicksAreClampedMonotone) {
  CircuitBreakerOptions opt;
  opt.failure_threshold = 2;
  opt.open_frames = 50;
  BreakerRegistry registry(opt);
  registry.Record("m", 100, 0, 2);  // opens at clamped tick 100
  // A stale, smaller tick must not rewind the clock past the open window.
  EXPECT_FALSE(registry.AllowsCall("m", 5));
  EXPECT_FALSE(registry.AllowsCall("m", 100));
  EXPECT_TRUE(registry.AllowsCall("m", 150));
}

TEST(BreakerRegistryTest, SnapshotIsSortedByModelName) {
  BreakerRegistry registry;
  registry.Record("zebra", 1, 1, 0);
  registry.Record("alpha", 1, 1, 0);
  registry.Record("mid", 1, 1, 0);
  const auto health = registry.Snapshot(1);
  ASSERT_EQ(health.size(), 3u);
  EXPECT_EQ(health[0].model, "alpha");
  EXPECT_EQ(health[1].model, "mid");
  EXPECT_EQ(health[2].model, "zebra");
}

// ---------------------------------------------------------------------------
// BatchDispatcher: cross-stream coalescing.

TEST(BatchDispatcherTest, OptionsValidation) {
  BatchDispatcherOptions opt;
  EXPECT_TRUE(opt.Validate().ok());
  opt.batch_window = 0;
  EXPECT_EQ(opt.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(BatchDispatcherTest, SoloStreamRunsBatchesOfOneBitIdentically) {
  const DetectorPool pool = MakePool(2);
  const Video video = MakeVideo(0.01, 5);
  ASSERT_GE(video.size(), 2u);
  BatchDispatcher dispatcher({/*batch_window=*/4});
  const DetectorPool batched =
      std::move(MakeBatchingPool(pool, &dispatcher, /*stream_id=*/0)).value();

  dispatcher.BeginStep();
  for (size_t i = 0; i < pool.detectors.size(); ++i) {
    const DetectionList direct =
        pool.detectors[i]->Detect(video.frames[0], /*trial_seed=*/7);
    const DetectionList via =
        batched.detectors[i]->Detect(video.frames[0], /*trial_seed=*/7);
    ASSERT_EQ(direct.size(), via.size());
    for (size_t d = 0; d < direct.size(); ++d) {
      EXPECT_EQ(direct[d].box.x1, via[d].box.x1);
      EXPECT_EQ(direct[d].confidence, via[d].confidence);
      EXPECT_EQ(direct[d].label, via[d].label);
    }
  }
  dispatcher.EndStep();

  const auto stats = dispatcher.stats();
  EXPECT_EQ(stats.requests, pool.detectors.size());
  EXPECT_EQ(stats.batches, pool.detectors.size());  // nothing to coalesce
  EXPECT_EQ(stats.max_batch, 1u);
  EXPECT_EQ(stats.coalesced_requests, 0u);
}

TEST(BatchDispatcherTest, FullWindowCoalescesConcurrentStreams) {
  const DetectorPool pool = MakePool(1);
  const Video video = MakeVideo(0.01, 5);
  constexpr int kStreams = 4;
  BatchDispatcher dispatcher({/*batch_window=*/kStreams});

  // All steps open BEFORE any request: no thread can fire a premature
  // all-blocked flush, so the window-full condition must assemble all
  // four requests into exactly one batch.
  for (int s = 0; s < kStreams; ++s) dispatcher.BeginStep();

  const DetectionList solo =
      pool.detectors[0]->Detect(video.frames[0], /*trial_seed=*/3);
  std::vector<DetectionList> results(kStreams);
  std::vector<std::thread> streams;
  streams.reserve(kStreams);
  for (int s = 0; s < kStreams; ++s) {
    streams.emplace_back([&, s] {
      BatchingDetector det(pool.detectors[0].get(), &dispatcher,
                           static_cast<uint64_t>(s));
      results[static_cast<size_t>(s)] =
          det.Detect(video.frames[0], /*trial_seed=*/3);
    });
  }
  for (auto& t : streams) t.join();
  for (int s = 0; s < kStreams; ++s) dispatcher.EndStep();

  const auto stats = dispatcher.stats();
  EXPECT_EQ(stats.requests, static_cast<uint64_t>(kStreams));
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.max_batch, static_cast<uint64_t>(kStreams));
  EXPECT_EQ(stats.coalesced_requests, static_cast<uint64_t>(kStreams));
  // Purity: every coalesced stream sees its exact solo output.
  for (const auto& r : results) {
    ASSERT_EQ(r.size(), solo.size());
    for (size_t d = 0; d < solo.size(); ++d) {
      EXPECT_EQ(r[d].box.x1, solo[d].box.x1);
      EXPECT_EQ(r[d].confidence, solo[d].confidence);
    }
  }
}

TEST(BatchDispatcherTest, AllBlockedFlushPreventsDeadlock) {
  // Three streams park on three DIFFERENT models with a huge window: the
  // window-full condition can never fire, so the all-steppers-blocked rule
  // must flush every queue — this test hanging would be the bug.
  const DetectorPool pool = MakePool(3);
  const Video video = MakeVideo(0.01, 5);
  BatchDispatcher dispatcher({/*batch_window=*/100});
  std::atomic<int> done{0};
  std::vector<std::thread> streams;
  for (int s = 0; s < 3; ++s) {
    streams.emplace_back([&, s] {
      dispatcher.BeginStep();
      BatchingDetector det(pool.detectors[static_cast<size_t>(s)].get(),
                           &dispatcher, static_cast<uint64_t>(s));
      (void)det.Detect(video.frames[0], 3);
      dispatcher.EndStep();
      done.fetch_add(1);
    });
  }
  for (auto& t : streams) t.join();
  EXPECT_EQ(done.load(), 3);
  const auto stats = dispatcher.stats();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_GE(stats.batches, 3u);  // distinct models cannot coalesce
}

TEST(BatchDispatcherTest, BatchingPreservesFallibility) {
  // The retry layer dispatches on FallibleDetector; the batching wrapper
  // must keep a faulted detector fallible and replay its exact per-attempt
  // outcomes, or faulted serve runs would silently diverge from solo runs.
  const DetectorPool pool = MakePool(2);
  const DetectorPool faulty =
      std::move(ApplyFaultScripts(pool, MakeScripts(2))).value();
  BatchDispatcher dispatcher;
  const DetectorPool batched =
      std::move(MakeBatchingPool(faulty, &dispatcher, 0)).value();
  const Video video = MakeVideo(0.01, 5);
  ASSERT_GT(video.size(), 3u);

  const auto* wrapped =
      dynamic_cast<const FallibleDetector*>(batched.detectors[0].get());
  ASSERT_NE(wrapped, nullptr) << "fallibility lost in decoration";
  const auto* inner =
      dynamic_cast<const FallibleDetector*>(faulty.detectors[0].get());
  ASSERT_NE(inner, nullptr);

  // Frame 3 is inside model 0's scripted outage burst [2, 8).
  const AttemptOutcome direct = inner->Attempt(video.frames[3], 7, 0);
  const AttemptOutcome via = wrapped->Attempt(video.frames[3], 7, 0);
  EXPECT_EQ(direct.status.code(), via.status.code());
  EXPECT_EQ(direct.latency_ms, via.latency_ms);
  EXPECT_EQ(direct.status.code(), StatusCode::kUnavailable);
}

// ---------------------------------------------------------------------------
// Admission control and shedding.

TEST(StreamSchedulerTest, ShedsBeyondCapacityWithResourceExhausted) {
  const DetectorPool pool = MakePool(2);
  const Video video = MakeVideo(0.01, 7);
  ServeOptions opt;
  opt.max_sessions = 2;
  opt.queue_depth = 1;
  StreamScheduler scheduler(opt);

  auto submit = [&](const std::string& name) {
    StreamSpec spec{name, "MES", PriorityClass::kStandard, 1, 2};
    return scheduler.Submit(MakeServeSession(video, pool, spec, /*lazy=*/true,
                                             /*faults=*/false, nullptr, 0));
  };
  EXPECT_EQ(std::move(submit("a")).value(), 0u);
  EXPECT_EQ(std::move(submit("b")).value(), 1u);
  EXPECT_EQ(std::move(submit("c")).value(), 2u);  // queued
  EXPECT_EQ(scheduler.active_sessions(), 2);
  EXPECT_EQ(scheduler.queued_sessions(), 1);
  const auto shed = submit("d");
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);

  // Overload rejected new work but admitted work must drain completely.
  const ServeReport report = std::move(scheduler.RunUntilDrained()).value();
  ASSERT_EQ(report.streams.size(), 3u);
  for (const auto& s : report.streams) {
    EXPECT_TRUE(s.status.ok()) << s.name << ": " << s.status.ToString();
    EXPECT_GT(s.frames, 0u);
  }
  EXPECT_EQ(report.stats.shed_submissions, 1u);
  EXPECT_EQ(report.stats.admitted, 3u);
  EXPECT_EQ(report.stats.submitted, 4u);
  EXPECT_EQ(report.stats.peak_active, 2);
  EXPECT_EQ(report.stats.peak_queued, 1);
  // Queued stream admitted only after a slot freed.
  EXPECT_GT(report.streams[2].admitted_round, 0u);
}

TEST(StreamSchedulerTest, FleetDarkPoolIsShedAtAdmission) {
  const DetectorPool pool = MakePool(2);
  const Video video = MakeVideo(0.01, 7);
  CircuitBreakerOptions breaker;
  breaker.failure_threshold = 1;
  ServeOptions opt;
  opt.fleet_breaker = breaker;
  StreamScheduler scheduler(opt);
  // Every model of the candidate pool is fleet-open.
  for (const auto& det : pool.detectors) {
    scheduler.fleet_health().Record(det->name(), 1, 0, 1);
  }
  StreamSpec spec{"dark", "MES", PriorityClass::kStandard, 1, 2};
  const auto shed = scheduler.Submit(MakeServeSession(
      video, pool, spec, /*lazy=*/true, /*faults=*/false, nullptr, 0));
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// The bit-identity matrix (tentpole acceptance): every stream served under
// any scheduler/worker/batching/fault configuration must reproduce its
// solo run bit for bit.

void RunBitIdentityCase(const Video& video, const DetectorPool& pool,
                        bool lazy, int workers, bool faults, bool batching) {
  const std::vector<StreamSpec> specs = {
      {"interactive-mes", "MES", PriorityClass::kInteractive, 9, 42},
      {"standard-swmes", "SW-MES", PriorityClass::kStandard, 10, 43},
      {"batch-dmes", "D-MES", PriorityClass::kBatch, 11, 44},
      {"standard-rand", "RAND", PriorityClass::kStandard, 12, 45},
  };

  ServeOptions opt;
  opt.max_sessions = 3;  // forces the 4th stream through the queue
  opt.queue_depth = 4;
  opt.quantum_ms = 40.0;
  opt.max_frames_per_round = 8;
  opt.parallelism = workers;
  StreamScheduler scheduler(opt);
  BatchDispatcher dispatcher({/*batch_window=*/3});
  if (batching) scheduler.AttachBatchDispatcher(&dispatcher);

  for (size_t i = 0; i < specs.size(); ++i) {
    auto id = scheduler.Submit(MakeServeSession(
        video, pool, specs[i], lazy, faults,
        batching ? &dispatcher : nullptr, static_cast<uint64_t>(i)));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_EQ(*id, i);
  }
  const ServeReport report = std::move(scheduler.RunUntilDrained()).value();
  ASSERT_EQ(report.streams.size(), specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE(specs[i].name);
    const StreamReport& sr = report.streams[i];
    EXPECT_EQ(sr.stream_id, i);
    EXPECT_EQ(sr.name, specs[i].name);
    ASSERT_TRUE(sr.status.ok()) << sr.status.ToString();
    const RunResult solo = SoloBaseline(video, pool, specs[i], lazy, faults);
    ExpectSameRun(solo, sr.result);
  }
  // The two ledgers: summed simulated frame-clock is exactly the sum over
  // streams; wall-clock is measured, not summed.
  double simulated = 0.0;
  for (const auto& s : report.streams) {
    simulated += s.result.breakdown.SimulatedMs();
  }
  EXPECT_DOUBLE_EQ(report.stats.simulated_ms, simulated);
  EXPECT_GT(report.stats.simulated_ms, 0.0);
  EXPECT_GT(report.stats.wall_ms, 0.0);
  EXPECT_GT(report.stats.frames, 0u);
  if (batching) {
    EXPECT_GT(report.stats.batching.requests, 0u);
  }
}

TEST(ServeBitIdentityTest, EagerBackendMatrix) {
  const DetectorPool pool = MakePool(3);
  const Video video = MakeVideo(0.02, 17);
  ASSERT_GT(video.size(), 12u);
  for (const int workers : {1, 4}) {
    for (const bool faults : {false, true}) {
      SCOPED_TRACE("eager/w" + std::to_string(workers) +
                   (faults ? "/faults" : "/clean"));
      RunBitIdentityCase(video, pool, /*lazy=*/false, workers, faults,
                         /*batching=*/true);
    }
  }
}

TEST(ServeBitIdentityTest, LazyBackendMatrix) {
  const DetectorPool pool = MakePool(3);
  const Video video = MakeVideo(0.02, 17);
  ASSERT_GT(video.size(), 12u);
  for (const int workers : {1, 4}) {
    for (const bool faults : {false, true}) {
      SCOPED_TRACE("lazy/w" + std::to_string(workers) +
                   (faults ? "/faults" : "/clean"));
      RunBitIdentityCase(video, pool, /*lazy=*/true, workers, faults,
                         /*batching=*/true);
    }
  }
}

TEST(ServeBitIdentityTest, UnbatchedServeAlsoMatches) {
  const DetectorPool pool = MakePool(3);
  const Video video = MakeVideo(0.02, 17);
  RunBitIdentityCase(video, pool, /*lazy=*/true, /*workers=*/4,
                     /*faults=*/true, /*batching=*/false);
}

// ---------------------------------------------------------------------------
// Deficit round-robin fairness.

TEST(StreamSchedulerTest, InteractiveClassFinishesInFewerRounds) {
  const DetectorPool pool = MakePool(3);
  const Video video = MakeVideo(0.02, 17);
  // Identical work, different classes: weights 4/2/1 mean the interactive
  // stream earns quanta 4x faster and must retire in no more rounds than
  // standard, which in turn beats batch.
  const std::vector<StreamSpec> specs = {
      {"fast", "MES", PriorityClass::kInteractive, 9, 42},
      {"mid", "MES", PriorityClass::kStandard, 9, 42},
      {"slow", "MES", PriorityClass::kBatch, 9, 42},
  };
  ServeOptions opt;
  opt.max_sessions = 3;
  opt.quantum_ms = 20.0;  // small quantum => many rounds => weights matter
  opt.max_frames_per_round = 64;
  opt.parallelism = 1;
  StreamScheduler scheduler(opt);
  for (size_t i = 0; i < specs.size(); ++i) {
    ASSERT_TRUE(
        scheduler
            .Submit(MakeServeSession(video, pool, specs[i], /*lazy=*/true,
                                     /*faults=*/false, nullptr, i))
            .ok());
  }
  const ServeReport report = std::move(scheduler.RunUntilDrained()).value();
  ASSERT_EQ(report.streams.size(), 3u);
  const auto& interactive = report.streams[0];
  const auto& standard = report.streams[1];
  const auto& batch = report.streams[2];
  EXPECT_EQ(interactive.frames, standard.frames);  // same total work
  EXPECT_EQ(standard.frames, batch.frames);
  EXPECT_LE(interactive.rounds_active, standard.rounds_active);
  EXPECT_LE(standard.rounds_active, batch.rounds_active);
  EXPECT_LT(interactive.rounds_active, batch.rounds_active)
      << "a 4x weight advantage must be visible in rounds-to-finish";
}

// ---------------------------------------------------------------------------
// Per-stream fault containment and checkpoint/resume under the scheduler.

TEST(StreamSchedulerTest, CrashingSessionRetiresWithoutStallingOthers) {
  const DetectorPool pool = MakePool(3);
  const Video video = MakeVideo(0.02, 17);
  ServeOptions opt;
  opt.max_sessions = 2;
  opt.parallelism = 2;
  StreamScheduler scheduler(opt);

  StreamSpec healthy{"healthy", "MES", PriorityClass::kStandard, 9, 42};
  StreamSpec doomed{"doomed", "SW-MES", PriorityClass::kStandard, 10, 43};
  EngineOptions crash = MakeEngine(doomed);
  crash.checkpoint.directory = ScratchDir("crash-contained");
  crash.checkpoint.every_frames = 4;
  crash.checkpoint.crash_after_frames = 5;

  ASSERT_TRUE(scheduler
                  .Submit(MakeServeSession(video, pool, healthy, true, false,
                                           nullptr, 0))
                  .ok());
  ASSERT_TRUE(scheduler
                  .Submit(MakeServeSession(video, pool, doomed, true, false,
                                           nullptr, 1, crash,
                                           /*use_override=*/true))
                  .ok());

  const ServeReport report = std::move(scheduler.RunUntilDrained()).value();
  ASSERT_EQ(report.streams.size(), 2u);
  EXPECT_TRUE(report.streams[0].status.ok());
  EXPECT_EQ(report.streams[0].result.frames_processed, video.size());
  EXPECT_EQ(report.streams[1].status.code(), StatusCode::kAborted);
  EXPECT_LT(report.streams[1].frames, video.size());
  // The terminal error is surfaced in the aggregate stats, not only in the
  // per-stream report: fleet summaries read stats.errors to explain WHY
  // streams died.
  EXPECT_EQ(report.stats.failed_streams, 1u);
  ASSERT_EQ(report.stats.errors.size(), 1u);
  EXPECT_EQ(report.stats.errors[0].stream_id, report.streams[1].stream_id);
  EXPECT_EQ(report.stats.errors[0].name, "doomed");
  EXPECT_EQ(report.stats.errors[0].code, StatusCode::kAborted);
  EXPECT_FALSE(report.stats.errors[0].message.empty());
}

TEST(StreamSchedulerTest, SessionCheckpointResumesBitIdenticallyUnderServe) {
  const DetectorPool pool = MakePool(3);
  const Video video = MakeVideo(0.02, 17);
  StreamSpec spec{"resumable", "MES", PriorityClass::kStandard, 9, 42};
  const RunResult solo = SoloBaseline(video, pool, spec, /*lazy=*/true,
                                      /*faults=*/false);

  EngineOptions ck = MakeEngine(spec);
  ck.checkpoint.directory = ScratchDir("serve-resume");
  ck.checkpoint.every_frames = 4;
  ck.checkpoint.crash_after_frames = 6;

  // First serving process: the session dies mid-video (kAborted).
  {
    StreamScheduler scheduler;
    ASSERT_TRUE(scheduler
                    .Submit(MakeServeSession(video, pool, spec, true, false,
                                             nullptr, 0, ck, true))
                    .ok());
    const ServeReport report = std::move(scheduler.RunUntilDrained()).value();
    ASSERT_EQ(report.streams.size(), 1u);
    ASSERT_EQ(report.streams[0].status.code(), StatusCode::kAborted);
  }

  // Restarted serving process: a fresh session over the same checkpoint
  // directory resumes and completes; the stitched run must equal the
  // uninterrupted solo run bit for bit.
  ck.checkpoint.crash_after_frames = 0;
  StreamScheduler scheduler;
  ASSERT_TRUE(scheduler
                  .Submit(MakeServeSession(video, pool, spec, true, false,
                                           nullptr, 0, ck, true))
                  .ok());
  const ServeReport report = std::move(scheduler.RunUntilDrained()).value();
  ASSERT_EQ(report.streams.size(), 1u);
  ASSERT_TRUE(report.streams[0].status.ok())
      << report.streams[0].status.ToString();
  EXPECT_TRUE(report.streams[0].result.checkpoint.resumed);
  ExpectSameRun(solo, report.streams[0].result);
}

// ---------------------------------------------------------------------------
// Fleet health aggregation across sessions.

TEST(StreamSchedulerTest, FaultedSessionsPopulateFleetHealth) {
  const DetectorPool pool = MakePool(3);
  const Video video = MakeVideo(0.02, 17);
  ServeOptions opt;
  opt.max_sessions = 2;
  StreamScheduler scheduler(opt);
  const std::vector<StreamSpec> specs = {
      {"f0", "MES", PriorityClass::kStandard, 9, 42},
      {"f1", "SW-MES", PriorityClass::kStandard, 10, 43},
  };
  for (size_t i = 0; i < specs.size(); ++i) {
    ASSERT_TRUE(scheduler
                    .Submit(MakeServeSession(video, pool, specs[i],
                                             /*lazy=*/true, /*faults=*/true,
                                             nullptr, i))
                    .ok());
  }
  const ServeReport report = std::move(scheduler.RunUntilDrained()).value();
  ASSERT_FALSE(report.stats.fleet_health.empty());
  uint64_t total_failures = 0;
  uint64_t total_successes = 0;
  for (const auto& h : report.stats.fleet_health) {
    total_failures += h.failures;
    total_successes += h.successes;
  }
  // The scripted outage on model 0 must surface as fleet-visible failures,
  // aggregated from BOTH sessions' private runs.
  EXPECT_GT(total_failures, 0u);
  EXPECT_GT(total_successes, 0u);
  // Per-stream results remain solo-identical despite shared reporting.
  for (size_t i = 0; i < specs.size(); ++i) {
    const RunResult solo =
        SoloBaseline(video, pool, specs[i], /*lazy=*/true, /*faults=*/true);
    ExpectSameRun(solo, report.streams[i].result);
  }
}

// ---------------------------------------------------------------------------
// Two-ledger time accounting.

TEST(TimeBreakdownTest, SimulatedAndWallLedgersAreSeparate) {
  TimeBreakdown b;
  b.detector_ms = 10.0;
  b.reference_ms = 5.0;
  b.ensembling_ms = 2.0;
  b.fault_ms = 3.0;
  b.algorithm_ms = 100.0;  // wall-clock share, not simulated
  EXPECT_DOUBLE_EQ(b.SimulatedMs(), 20.0);
  EXPECT_DOUBLE_EQ(b.TotalMs(), 120.0);
}

TEST(StreamSchedulerTest, ServeStatsKeepLedgersApart) {
  const DetectorPool pool = MakePool(2);
  const Video video = MakeVideo(0.01, 7);
  ServeOptions opt;
  opt.max_sessions = 2;
  opt.record_frame_latency = true;
  StreamScheduler scheduler(opt);
  for (size_t i = 0; i < 2; ++i) {
    StreamSpec spec{"s" + std::to_string(i), "MES",
                    PriorityClass::kStandard, 9 + i, 42 + i};
    ASSERT_TRUE(scheduler
                    .Submit(MakeServeSession(video, pool, spec, true, false,
                                             nullptr, i))
                    .ok());
  }
  const ServeReport report = std::move(scheduler.RunUntilDrained()).value();
  double simulated = 0.0;
  double algo = 0.0;
  for (const auto& s : report.streams) {
    simulated += s.result.breakdown.SimulatedMs();
    algo += s.result.breakdown.algorithm_ms;
  }
  EXPECT_DOUBLE_EQ(report.stats.simulated_ms, simulated);
  EXPECT_DOUBLE_EQ(report.stats.algorithm_wall_ms, algo);
  EXPECT_GT(report.stats.wall_ms, 0.0);
  // Simulated frame-clock is orders of magnitude above the real wall
  // clock here (no real GPUs run), which is exactly why the ledgers must
  // never be summed together.
  EXPECT_NE(report.stats.simulated_ms, report.stats.wall_ms);
  // Latency percentiles recorded and ordered.
  EXPECT_GE(report.stats.frame_p99_ms, report.stats.frame_p50_ms);
}

}  // namespace
}  // namespace vqe
