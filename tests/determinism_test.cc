// Cross-cutting determinism and self-consistency properties: the whole
// pipeline must be a pure function of its seeds, and evaluation primitives
// must satisfy identity properties.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/frame_matrix.h"
#include "core/scoring.h"
#include "detection/ap.h"
#include "fusion/ensemble_method.h"
#include "models/model_zoo.h"
#include "sim/dataset.h"

namespace vqe {
namespace {

DetectionList RandomDetections(Rng& rng, int n, int num_classes = 3) {
  DetectionList out;
  for (int i = 0; i < n; ++i) {
    Detection d;
    d.box = BBox::FromCenter(rng.Uniform(50, 1550), rng.Uniform(50, 850),
                             rng.Uniform(30, 200), rng.Uniform(30, 150));
    d.confidence = rng.Uniform(0.05, 1.0);
    d.label = static_cast<ClassId>(rng.UniformInt(num_classes));
    d.box_variance = rng.Uniform(0.1, 10.0);
    out.push_back(d);
  }
  return out;
}

bool SameDetections(const DetectionList& a, const DetectionList& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].box == b[i].box) || a[i].confidence != b[i].confidence ||
        a[i].label != b[i].label) {
      return false;
    }
  }
  return true;
}

TEST(DeterminismTest, FusionMethodsArePureFunctions) {
  Rng rng(5);
  std::vector<DetectionList> inputs;
  for (int i = 0; i < 3; ++i) inputs.push_back(RandomDetections(rng, 8));
  for (FusionKind kind : AllFusionKinds()) {
    auto method = std::move(CreateEnsembleMethod(kind)).value();
    const auto once = method->Fuse(inputs);
    const auto twice = method->Fuse(inputs);
    EXPECT_TRUE(SameDetections(once, twice)) << FusionKindToString(kind);
  }
}

TEST(DeterminismTest, MatrixBuildIsPureInSeed) {
  auto pool = std::move(BuildNuscenesPool(3)).value();
  const DatasetSpec* spec = *DatasetCatalog::Default().Find("nusc-night");
  SampleOptions sample;
  sample.scene_scale = 0.03;
  sample.seed = 9;
  const Video video = std::move(SampleVideo(*spec, sample)).value();
  const auto a = BuildFrameMatrix(video, pool, /*trial_seed=*/9);
  const auto b = BuildFrameMatrix(video, pool, /*trial_seed=*/9);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t t = 0; t < a->size(); ++t) {
    for (EnsembleId s = 1; s <= 7; ++s) {
      ASSERT_DOUBLE_EQ(a->frames[t].est_ap[s], b->frames[t].est_ap[s]);
      ASSERT_DOUBLE_EQ(a->frames[t].true_ap[s], b->frames[t].true_ap[s]);
      ASSERT_DOUBLE_EQ(a->frames[t].cost_ms[s], b->frames[t].cost_ms[s]);
    }
  }
}

TEST(DeterminismTest, ParallelMatrixBuildIsBitIdentical) {
  auto pool = std::move(BuildNuscenesPool(5)).value();
  const DatasetSpec* spec = *DatasetCatalog::Default().Find("nusc-night");
  SampleOptions sample;
  sample.scene_scale = 0.03;
  sample.seed = 21;
  const Video video = std::move(SampleVideo(*spec, sample)).value();
  ASSERT_GT(video.size(), 4u);

  MatrixOptions options;
  options.parallelism = 1;
  const auto serial = BuildFrameMatrix(video, pool, /*trial_seed=*/21,
                                       options);
  ASSERT_TRUE(serial.ok());
  for (int workers : {2, 8}) {
    options.parallelism = workers;
    const auto parallel = BuildFrameMatrix(video, pool, /*trial_seed=*/21,
                                           options);
    ASSERT_TRUE(parallel.ok());
    ASSERT_EQ(serial->size(), parallel->size());
    ASSERT_EQ(serial->model_names, parallel->model_names);
    for (size_t t = 0; t < serial->size(); ++t) {
      const FrameEvaluation& a = serial->frames[t];
      const FrameEvaluation& b = parallel->frames[t];
      ASSERT_EQ(a.est_ap, b.est_ap) << "workers=" << workers << " t=" << t;
      ASSERT_EQ(a.true_ap, b.true_ap);
      ASSERT_EQ(a.cost_ms, b.cost_ms);
      ASSERT_EQ(a.fusion_overhead_ms, b.fusion_overhead_ms);
      ASSERT_EQ(a.model_cost_ms, b.model_cost_ms);
      ASSERT_EQ(a.ref_cost_ms, b.ref_cost_ms);
      ASSERT_EQ(a.max_cost_ms, b.max_cost_ms);
      ASSERT_EQ(a.best_true_candidates, b.best_true_candidates);
      ASSERT_EQ(a.context, b.context);
    }
  }
}

TEST(DeterminismTest, OracleCandidatesAttainTheBestTrueScore) {
  // The cached per-frame Pareto frontier must reproduce the exhaustive
  // max_S r_{S*|v} for any monotone scoring function.
  auto pool = std::move(BuildNuscenesPool(3)).value();
  const DatasetSpec* spec = *DatasetCatalog::Default().Find("nusc-rainy");
  SampleOptions sample;
  sample.scene_scale = 0.02;
  sample.seed = 13;
  const Video video = std::move(SampleVideo(*spec, sample)).value();
  const auto matrix = BuildFrameMatrix(video, pool, /*trial_seed=*/13);
  ASSERT_TRUE(matrix.ok());

  const std::vector<ScoringFunction> scorers = {
      ScoringFunction{0.5, 0.5, ScoreForm::kLogarithmic},
      ScoringFunction{0.9, 0.1, ScoreForm::kLogarithmic},
      ScoringFunction{0.1, 0.9, ScoreForm::kLinear},
      ScoringFunction{1.0, 0.0, ScoreForm::kLinear},
  };
  for (const auto& fe : matrix->frames) {
    ASSERT_FALSE(fe.best_true_candidates.empty());
    const double inv_max = fe.max_cost_ms > 0 ? 1.0 / fe.max_cost_ms : 0.0;
    for (const auto& sc : scorers) {
      double best_all = -1e300;
      for (EnsembleId s = 1; s <= 7; ++s) {
        best_all = std::max(
            best_all, sc.Score(fe.true_ap[s], fe.cost_ms[s] * inv_max));
      }
      double best_cached = -1e300;
      for (EnsembleId s : fe.best_true_candidates) {
        best_cached = std::max(
            best_cached, sc.Score(fe.true_ap[s], fe.cost_ms[s] * inv_max));
      }
      ASSERT_EQ(best_all, best_cached);
    }
  }
}

TEST(DeterminismTest, MatrixDiffersAcrossTrialSeeds) {
  auto pool = std::move(BuildNuscenesPool(3)).value();
  const DatasetSpec* spec = *DatasetCatalog::Default().Find("nusc-night");
  SampleOptions sample;
  sample.scene_scale = 0.03;
  sample.seed = 9;
  const Video video = std::move(SampleVideo(*spec, sample)).value();
  const auto a = BuildFrameMatrix(video, pool, /*trial_seed=*/9);
  const auto b = BuildFrameMatrix(video, pool, /*trial_seed=*/10);
  ASSERT_TRUE(a.ok() && b.ok());
  bool any_diff = false;
  for (size_t t = 0; t < a->size() && !any_diff; ++t) {
    for (EnsembleId s = 1; s <= 7; ++s) {
      if (a->frames[t].true_ap[s] != b->frames[t].true_ap[s]) any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(SelfConsistencyTest, DetectionsEvaluatedAgainstThemselvesScoreOne) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const DetectionList dets = RandomDetections(rng, 6);
    const GroundTruthList as_gt = DetectionsAsGroundTruth(dets, 0.0);
    EXPECT_DOUBLE_EQ(FrameMeanAp(dets, as_gt, {}), 1.0);
  }
}

TEST(SelfConsistencyTest, ReferenceAgainstItselfScoresOne) {
  // The REF-estimation channel is exact when the candidate equals REF.
  auto pool = std::move(BuildNuscenesPool(2)).value();
  const DatasetSpec* spec = *DatasetCatalog::Default().Find("nusc-clear");
  SampleOptions sample;
  sample.scene_scale = 0.005;
  const Video video = std::move(SampleVideo(*spec, sample)).value();
  for (size_t t = 0; t < std::min<size_t>(video.size(), 20); ++t) {
    const DetectionList ref = pool.reference->Detect(video.frames[t], 1);
    const GroundTruthList ref_gt = DetectionsAsGroundTruth(ref, 0.0);
    EXPECT_DOUBLE_EQ(FrameMeanAp(ref, ref_gt, {}), 1.0);
  }
}

TEST(SelfConsistencyTest, SubsetCostsAreConsistentWithinMatrix) {
  // c_{S|v} = Σ_{M∈S} c_{M|v} + c^e_{S|v}, reconstructible from the parts.
  auto pool = std::move(BuildNuscenesPool(3)).value();
  const DatasetSpec* spec = *DatasetCatalog::Default().Find("nusc-rainy");
  SampleOptions sample;
  sample.scene_scale = 0.01;
  const Video video = std::move(SampleVideo(*spec, sample)).value();
  const auto matrix = BuildFrameMatrix(video, pool, 3);
  ASSERT_TRUE(matrix.ok());
  for (const auto& fe : matrix->frames) {
    for (EnsembleId s = 1; s <= 7; ++s) {
      double expected = fe.fusion_overhead_ms[s];
      for (int i = 0; i < 3; ++i) {
        if (ContainsModel(s, i)) {
          expected += fe.model_cost_ms[static_cast<size_t>(i)];
        }
      }
      ASSERT_NEAR(fe.cost_ms[s], expected, 1e-9);
    }
  }
}

}  // namespace
}  // namespace vqe
