// Tests for the ensemble bitmask algebra.

#include <gtest/gtest.h>

#include <set>

#include "core/ensemble_id.h"

namespace vqe {
namespace {

TEST(EnsembleIdTest, FullEnsembleAndCount) {
  EXPECT_EQ(FullEnsemble(1), 1u);
  EXPECT_EQ(FullEnsemble(3), 7u);
  EXPECT_EQ(FullEnsemble(5), 31u);
  EXPECT_EQ(NumEnsembles(5), 31u);
  EXPECT_EQ(NumEnsembles(2), 3u);
}

TEST(EnsembleIdTest, SizeAndMembership) {
  const EnsembleId s = 0b10110;
  EXPECT_EQ(EnsembleSize(s), 3);
  EXPECT_FALSE(ContainsModel(s, 0));
  EXPECT_TRUE(ContainsModel(s, 1));
  EXPECT_TRUE(ContainsModel(s, 2));
  EXPECT_FALSE(ContainsModel(s, 3));
  EXPECT_TRUE(ContainsModel(s, 4));
}

TEST(EnsembleIdTest, Singleton) {
  EXPECT_EQ(Singleton(0), 1u);
  EXPECT_EQ(Singleton(4), 16u);
  EXPECT_EQ(EnsembleSize(Singleton(7)), 1);
}

TEST(EnsembleIdTest, SubsetRelation) {
  EXPECT_TRUE(IsSubsetOf(0b101, 0b111));
  EXPECT_TRUE(IsSubsetOf(0b101, 0b101));
  EXPECT_FALSE(IsSubsetOf(0b101, 0b011));
  EXPECT_TRUE(IsSubsetOf(0, 0b011));  // empty set is a subset of anything
}

TEST(EnsembleIdTest, AllEnsemblesEnumeration) {
  const auto all = AllEnsembles(3);
  ASSERT_EQ(all.size(), 7u);
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i], static_cast<EnsembleId>(i + 1));
  }
}

TEST(EnsembleIdTest, SubsetsOfEnumeratesAllNonEmpty) {
  const auto subs = SubsetsOf(0b1011);
  // 2^3 - 1 = 7 non-empty subsets.
  EXPECT_EQ(subs.size(), 7u);
  std::set<EnsembleId> expected{0b0001, 0b0010, 0b0011, 0b1000,
                                0b1001, 0b1010, 0b1011};
  std::set<EnsembleId> got(subs.begin(), subs.end());
  EXPECT_EQ(got, expected);
  // The mask itself is included first.
  EXPECT_EQ(subs.front(), 0b1011u);
}

TEST(EnsembleIdTest, ForEachSubsetMatchesSubsetsOf) {
  for (EnsembleId mask : {1u, 5u, 7u, 21u, 31u}) {
    std::vector<EnsembleId> via_callback;
    ForEachSubset(mask, [&](EnsembleId s) { via_callback.push_back(s); });
    EXPECT_EQ(via_callback, SubsetsOf(mask));
    for (EnsembleId s : via_callback) {
      EXPECT_NE(s, 0u);
      EXPECT_TRUE(IsSubsetOf(s, mask));
    }
  }
}

TEST(EnsembleIdTest, SubsetCountIsPowerOfTwoMinusOne) {
  for (EnsembleId mask = 1; mask <= 31; ++mask) {
    size_t count = 0;
    ForEachSubset(mask, [&](EnsembleId) { ++count; });
    EXPECT_EQ(count, (size_t{1} << EnsembleSize(mask)) - 1);
  }
}

TEST(EnsembleIdTest, EnsembleModels) {
  const auto models = EnsembleModels(0b10101);
  ASSERT_EQ(models.size(), 3u);
  EXPECT_EQ(models[0], 0);
  EXPECT_EQ(models[1], 2);
  EXPECT_EQ(models[2], 4);
}

TEST(EnsembleIdTest, EnsembleName) {
  const std::vector<std::string> names{"a", "b", "c"};
  EXPECT_EQ(EnsembleName(0b101, names), "{a, c}");
  EXPECT_EQ(EnsembleName(0b1000, names), "{M3}");  // beyond provided names
  EXPECT_EQ(EnsembleName(0, names), "{}");
}

}  // namespace
}  // namespace vqe
