// Unit and property tests for bounding-box geometry and overlap measures.

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "detection/bbox.h"

namespace vqe {
namespace {

TEST(BBoxTest, Constructors) {
  const BBox a = BBox::FromXYWH(10, 20, 30, 40);
  EXPECT_DOUBLE_EQ(a.x1, 10);
  EXPECT_DOUBLE_EQ(a.y2, 60);
  EXPECT_DOUBLE_EQ(a.width(), 30);
  EXPECT_DOUBLE_EQ(a.height(), 40);

  const BBox b = BBox::FromCenter(50, 50, 20, 10);
  EXPECT_DOUBLE_EQ(b.x1, 40);
  EXPECT_DOUBLE_EQ(b.x2, 60);
  EXPECT_DOUBLE_EQ(b.cx(), 50);
  EXPECT_DOUBLE_EQ(b.cy(), 50);
}

TEST(BBoxTest, AreaAndValidity) {
  EXPECT_DOUBLE_EQ((BBox{0, 0, 2, 3}).Area(), 6.0);
  EXPECT_DOUBLE_EQ((BBox{0, 0, 0, 3}).Area(), 0.0);
  EXPECT_TRUE((BBox{0, 0, 1, 1}).IsValid());
  EXPECT_FALSE((BBox{1, 0, 0, 1}).IsValid());
  EXPECT_TRUE((BBox{0, 0, 0, 0}).IsEmpty());
}

TEST(BBoxTest, Contains) {
  const BBox b{0, 0, 10, 10};
  EXPECT_TRUE(b.Contains(5, 5));
  EXPECT_TRUE(b.Contains(0, 0));    // boundary inclusive
  EXPECT_TRUE(b.Contains(10, 10));
  EXPECT_FALSE(b.Contains(10.01, 5));
}

TEST(BBoxTest, ClippedToImage) {
  const BBox b{-10, -10, 50, 200};
  const BBox c = b.ClippedTo(100, 100);
  EXPECT_DOUBLE_EQ(c.x1, 0);
  EXPECT_DOUBLE_EQ(c.y1, 0);
  EXPECT_DOUBLE_EQ(c.x2, 50);
  EXPECT_DOUBLE_EQ(c.y2, 100);
}

TEST(BBoxTest, ClipFullyOutsideYieldsEmpty) {
  const BBox b{-50, -50, -10, -10};
  const BBox c = b.ClippedTo(100, 100);
  EXPECT_TRUE(c.IsEmpty());
  EXPECT_TRUE(c.IsValid());
}

TEST(IoUTest, IdenticalBoxes) {
  const BBox b{0, 0, 10, 10};
  EXPECT_DOUBLE_EQ(IoU(b, b), 1.0);
}

TEST(IoUTest, DisjointBoxes) {
  EXPECT_DOUBLE_EQ(IoU(BBox{0, 0, 1, 1}, BBox{2, 2, 3, 3}), 0.0);
}

TEST(IoUTest, TouchingBoxesHaveZeroIoU) {
  EXPECT_DOUBLE_EQ(IoU(BBox{0, 0, 1, 1}, BBox{1, 0, 2, 1}), 0.0);
}

TEST(IoUTest, KnownOverlap) {
  // 10x10 boxes offset by 5 in x: intersection 50, union 150.
  EXPECT_NEAR(IoU(BBox{0, 0, 10, 10}, BBox{5, 0, 15, 10}), 1.0 / 3.0, 1e-12);
}

TEST(IoUTest, NestedBoxes) {
  // 4x4 inside 10x10: 16 / 100.
  EXPECT_NEAR(IoU(BBox{0, 0, 10, 10}, BBox{3, 3, 7, 7}), 0.16, 1e-12);
  EXPECT_DOUBLE_EQ(IoMin(BBox{0, 0, 10, 10}, BBox{3, 3, 7, 7}), 1.0);
}

TEST(IoUTest, DegenerateBoxes) {
  const BBox point{5, 5, 5, 5};
  const BBox normal{0, 0, 10, 10};
  EXPECT_DOUBLE_EQ(IoU(point, normal), 0.0);
  EXPECT_DOUBLE_EQ(IoU(point, point), 0.0);
  EXPECT_DOUBLE_EQ(IoMin(point, normal), 0.0);
}

TEST(GIoUTest, IdenticalBoxesGiveOne) {
  const BBox b{0, 0, 10, 10};
  EXPECT_DOUBLE_EQ(GIoU(b, b), 1.0);
}

TEST(GIoUTest, DisjointBoxesAreNegative) {
  EXPECT_LT(GIoU(BBox{0, 0, 1, 1}, BBox{10, 10, 11, 11}), 0.0);
}

TEST(GIoUTest, FartherDisjointBoxesAreMoreNegative) {
  const BBox a{0, 0, 1, 1};
  EXPECT_GT(GIoU(a, BBox{2, 0, 3, 1}), GIoU(a, BBox{20, 0, 21, 1}));
}

// Property sweep over random box pairs.
class IoUPropertyTest : public ::testing::TestWithParam<uint64_t> {};

std::pair<BBox, BBox> RandomPair(uint64_t seed) {
  Rng rng(seed);
  auto make = [&] {
    const double x = rng.Uniform(0, 100);
    const double y = rng.Uniform(0, 100);
    return BBox{x, y, x + rng.Uniform(0.1, 50), y + rng.Uniform(0.1, 50)};
  };
  return {make(), make()};
}

TEST_P(IoUPropertyTest, SymmetricAndBounded) {
  const auto [a, b] = RandomPair(GetParam());
  const double iou = IoU(a, b);
  EXPECT_DOUBLE_EQ(iou, IoU(b, a));
  EXPECT_GE(iou, 0.0);
  EXPECT_LE(iou, 1.0);
}

TEST_P(IoUPropertyTest, IoMinDominatesIoU) {
  const auto [a, b] = RandomPair(GetParam());
  EXPECT_GE(IoMin(a, b) + 1e-12, IoU(a, b));
}

TEST_P(IoUPropertyTest, GIoUBoundedByIoU) {
  const auto [a, b] = RandomPair(GetParam());
  const double giou = GIoU(a, b);
  EXPECT_LE(giou, IoU(a, b) + 1e-12);
  EXPECT_GE(giou, -1.0);
  EXPECT_LE(giou, 1.0);
}

TEST_P(IoUPropertyTest, IntersectionBoundedByEitherArea) {
  const auto [a, b] = RandomPair(GetParam());
  const double inter = IntersectionArea(a, b);
  EXPECT_LE(inter, a.Area() + 1e-9);
  EXPECT_LE(inter, b.Area() + 1e-9);
  EXPECT_GE(inter, 0.0);
}

INSTANTIATE_TEST_SUITE_P(RandomPairs, IoUPropertyTest,
                         ::testing::Range<uint64_t>(0, 50));

}  // namespace
}  // namespace vqe
