// The fault-tolerant detector runtime (ISSUE 3): deterministic fault
// injection, deadline/retry semantics, the circuit-breaker state machine,
// and — end to end — graceful degradation through the evaluation engine:
// scripted outages never abort a run, open breakers mask models out of the
// strategy's candidate arms until recovery, and faulted runs stay
// bit-identical across worker counts and evaluation backends.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/baselines.h"
#include "core/engine.h"
#include "core/experiment.h"
#include "core/lazy_frame_evaluator.h"
#include "core/mes.h"
#include "models/model_zoo.h"
#include "runtime/circuit_breaker.h"
#include "runtime/fault_injection.h"
#include "runtime/resilient_detector.h"
#include "query/executor.h"
#include "runtime/retry.h"
#include "sim/dataset.h"

namespace vqe {
namespace {

// A detector with a fixed output and latency — the controlled inner model
// for retry/breaker unit tests.
class FakeDetector final : public ObjectDetector {
 public:
  explicit FakeDetector(double latency_ms = 10.0) : latency_ms_(latency_ms) {}

  const std::string& name() const override {
    static const std::string kName = "fake";
    return kName;
  }
  DetectionList Detect(const VideoFrame& frame, uint64_t) const override {
    Detection d;
    d.label = 0;
    d.box = BBox::FromCenter(frame.image_width / 2, frame.image_height / 2,
                             80.0, 60.0);
    d.confidence = 0.9;
    return {d};
  }
  double InferenceCostMs(const VideoFrame&, uint64_t) const override {
    return latency_ms_;
  }
  uint64_t param_count() const override { return 1; }
  const std::string& structure_name() const override {
    static const std::string kStructure = "Fake";
    return kStructure;
  }

 private:
  double latency_ms_;
};

VideoFrame MakeFrame(int64_t index,
                     SceneContext context = SceneContext::kClear) {
  VideoFrame frame;
  frame.frame_index = index;
  frame.scene_id = 1;
  frame.context = context;
  return frame;
}

// Eight distinct structure@context detectors; pools take the first m.
DetectorPool MakePool(int m) {
  const std::vector<std::string> names = {
      "yolov7-tiny@clear", "yolov7-tiny@night", "yolov7-tiny@rainy",
      "yolov7@clear",      "yolov7-micro@clear", "yolov7@night",
      "faster-rcnn@clear", "yolov7-micro@rainy"};
  std::vector<DetectorProfile> profiles;
  for (int i = 0; i < m; ++i) {
    profiles.push_back(
        std::move(ParseDetectorName(names[static_cast<size_t>(i)])).value());
  }
  return std::move(BuildPool(profiles)).value();
}

Video MakeVideo(double scene_scale, uint64_t seed) {
  const DatasetSpec* spec = *DatasetCatalog::Default().Find("nusc-night");
  SampleOptions sample;
  sample.scene_scale = scene_scale;
  sample.seed = seed;
  return std::move(SampleVideo(*spec, sample)).value();
}

// Bit-identity over everything a faulted run reports, including the new
// fault-tolerance counters.
void ExpectSameRun(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.s_sum, b.s_sum);
  EXPECT_EQ(a.avg_true_ap, b.avg_true_ap);
  EXPECT_EQ(a.avg_norm_cost, b.avg_norm_cost);
  EXPECT_EQ(a.frames_processed, b.frames_processed);
  EXPECT_EQ(a.charged_cost_ms, b.charged_cost_ms);
  EXPECT_EQ(a.breakdown.detector_ms, b.breakdown.detector_ms);
  EXPECT_EQ(a.breakdown.reference_ms, b.breakdown.reference_ms);
  EXPECT_EQ(a.breakdown.ensembling_ms, b.breakdown.ensembling_ms);
  EXPECT_EQ(a.breakdown.fault_ms, b.breakdown.fault_ms);
  EXPECT_EQ(a.selection_counts, b.selection_counts);
  EXPECT_EQ(a.fallback_frames, b.fallback_frames);
  EXPECT_EQ(a.failed_frames, b.failed_frames);
  ASSERT_EQ(a.model_availability.size(), b.model_availability.size());
  for (size_t i = 0; i < a.model_availability.size(); ++i) {
    EXPECT_EQ(a.model_availability[i].frames_selected,
              b.model_availability[i].frames_selected);
    EXPECT_EQ(a.model_availability[i].frames_failed,
              b.model_availability[i].frames_failed);
    EXPECT_EQ(a.model_availability[i].breaker_opens,
              b.model_availability[i].breaker_opens);
    EXPECT_EQ(a.model_availability[i].fault_ms,
              b.model_availability[i].fault_ms);
  }
}

// Records (t, eligible-at-select, selected) so tests can watch a model
// disappear from the candidate arms while its breaker is open.
class RecordingStrategy : public SelectionStrategy {
 public:
  struct Entry {
    size_t t;
    EnsembleId eligible;
    EnsembleId selected;
  };

  explicit RecordingStrategy(std::unique_ptr<SelectionStrategy> inner)
      : inner_(std::move(inner)) {}

  const std::string& name() const override { return inner_->name(); }
  void BeginVideo(const StrategyContext& ctx) override {
    log_.clear();
    last_eligible_ = 0;
    inner_->BeginVideo(ctx);
  }
  EnsembleId Select(size_t t) override {
    const EnsembleId selected = inner_->Select(t);
    log_.push_back({t, last_eligible_, selected});
    return selected;
  }
  void Observe(const FrameFeedback& feedback) override {
    inner_->Observe(feedback);
  }
  bool UsesReferenceModel() const override {
    return inner_->UsesReferenceModel();
  }
  bool needs_full_lattice() const override {
    return inner_->needs_full_lattice();
  }
  void SetEligibleModels(EnsembleId eligible) override {
    last_eligible_ = eligible;
    inner_->SetEligibleModels(eligible);
  }

  const std::vector<Entry>& log() const { return log_; }

 private:
  std::unique_ptr<SelectionStrategy> inner_;
  EnsembleId last_eligible_ = 0;
  std::vector<Entry> log_;
};

// ---------------------------------------------------------------------------
// Fault injection

TEST(FaultInjectionTest, FaultsAreDeterministicInSeedAndFrame) {
  FakeDetector inner;
  FaultScript script;
  script.error_rate = 0.2;
  script.spike_rate = 0.2;
  script.empty_rate = 0.2;
  script.garbage_rate = 0.2;
  const FaultInjectingDetector a(&inner, script);
  const FaultInjectingDetector b(&inner, script);

  bool any_fault = false;
  for (int64_t idx = 0; idx < 64; ++idx) {
    const VideoFrame frame = MakeFrame(idx);
    for (int attempt = 0; attempt < 3; ++attempt) {
      const FaultKind kind = a.FaultAt(frame, /*trial_seed=*/5, attempt);
      EXPECT_EQ(kind, b.FaultAt(frame, 5, attempt));
      EXPECT_EQ(kind, a.FaultAt(frame, 5, attempt)) << "draws must be pure";
      if (kind != FaultKind::kNone) any_fault = true;
    }
    // Distinct seeds draw independent faults but stay internally stable.
    EXPECT_EQ(a.FaultAt(frame, 9, 0), b.FaultAt(frame, 9, 0));
  }
  EXPECT_TRUE(any_fault) << "80% fault mass never fired across 192 draws";
}

TEST(FaultInjectionTest, BurstDominatesRatesAndPersistsAcrossAttempts) {
  FakeDetector inner;
  FaultScript script;
  script.bursts.push_back({/*begin_frame=*/2, /*end_frame=*/5,
                           FaultKind::kError, /*context=*/-1});
  const FaultInjectingDetector faulty(&inner, script);

  for (int attempt = 0; attempt < 4; ++attempt) {
    EXPECT_EQ(faulty.FaultAt(MakeFrame(2), 1, attempt), FaultKind::kError)
        << "bursts must not clear on retry";
    EXPECT_EQ(faulty.FaultAt(MakeFrame(4), 1, attempt), FaultKind::kError);
    EXPECT_EQ(faulty.FaultAt(MakeFrame(1), 1, attempt), FaultKind::kNone);
    EXPECT_EQ(faulty.FaultAt(MakeFrame(5), 1, attempt), FaultKind::kNone)
        << "end_frame is exclusive";
  }

  const AttemptOutcome out = faulty.Attempt(MakeFrame(3), 1, 0);
  EXPECT_EQ(out.status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(out.detections.empty());
  EXPECT_EQ(out.latency_ms, script.error_latency_ms);
}

TEST(FaultInjectionTest, ContextGatedBurstFiresOnlyInThatContext) {
  FakeDetector inner;
  FaultScript script;
  FaultBurst burst;
  burst.begin_frame = 0;
  burst.end_frame = 100;
  burst.kind = FaultKind::kEmptyOutput;
  burst.context = static_cast<int>(SceneContext::kNight);
  script.bursts.push_back(burst);
  const FaultInjectingDetector faulty(&inner, script);

  EXPECT_EQ(faulty.FaultAt(MakeFrame(7, SceneContext::kNight), 1, 0),
            FaultKind::kEmptyOutput);
  EXPECT_EQ(faulty.FaultAt(MakeFrame(7, SceneContext::kClear), 1, 0),
            FaultKind::kNone);
}

TEST(FaultInjectionTest, OutputFaultsSucceedWithCorruptedDetections) {
  FakeDetector inner;
  const VideoFrame frame = MakeFrame(0);

  FaultScript empty;
  empty.empty_rate = 1.0;
  const AttemptOutcome silent =
      FaultInjectingDetector(&inner, empty).Attempt(frame, 1, 0);
  EXPECT_TRUE(silent.status.ok());
  EXPECT_TRUE(silent.detections.empty());
  EXPECT_EQ(silent.latency_ms, inner.InferenceCostMs(frame, 1));

  FaultScript garbage;
  garbage.garbage_rate = 1.0;
  const AttemptOutcome corrupt =
      FaultInjectingDetector(&inner, garbage).Attempt(frame, 1, 0);
  EXPECT_TRUE(corrupt.status.ok());
  ASSERT_FALSE(corrupt.detections.empty());
  for (const Detection& d : corrupt.detections) {
    EXPECT_GE(d.confidence, 0.5) << "garbage must look confident";
  }
}

TEST(FaultInjectionTest, ValidateRejectsBadScripts) {
  FaultScript over;
  over.error_rate = 0.6;
  over.spike_rate = 0.6;
  EXPECT_FALSE(over.Validate().ok()) << "rates summing over 1 must fail";

  FaultScript bad_burst;
  bad_burst.bursts.push_back({5, 2, FaultKind::kError, -1});
  EXPECT_FALSE(bad_burst.Validate().ok());
}

// ---------------------------------------------------------------------------
// Deadlines and retries

TEST(RetryTest, PlainDetectorDefaultPolicyMatchesDirectCall) {
  const FakeDetector plain(12.5);
  const VideoFrame frame = MakeFrame(0);
  const DetectorCallOutcome call =
      DetectWithRetries(plain, frame, /*trial_seed=*/3, RetryPolicy{});
  EXPECT_TRUE(call.ok());
  EXPECT_EQ(call.attempts, 1);
  EXPECT_EQ(call.inference_ms, 12.5);
  EXPECT_EQ(call.fault_ms, 0.0);
  EXPECT_EQ(call.charged_ms(), 12.5);
  EXPECT_EQ(call.detections.size(), plain.Detect(frame, 3).size());
}

TEST(RetryTest, TransientErrorClearsOnRetryAndChargesBackoff) {
  FakeDetector inner(10.0);
  FaultScript script;
  script.error_rate = 0.5;
  const FaultInjectingDetector faulty(&inner, script);

  // Find a frame whose attempt 0 faults but attempt 1 succeeds — the
  // deterministic fault channel makes this a stable property of the seed.
  int64_t idx = -1;
  for (int64_t candidate = 0; candidate < 256; ++candidate) {
    if (faulty.FaultAt(MakeFrame(candidate), 7, 0) == FaultKind::kError &&
        faulty.FaultAt(MakeFrame(candidate), 7, 1) == FaultKind::kNone) {
      idx = candidate;
      break;
    }
  }
  ASSERT_GE(idx, 0) << "no transient-fault frame among 256 candidates";

  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_base_ms = 0.25;
  const DetectorCallOutcome call =
      DetectWithRetries(faulty, MakeFrame(idx), 7, policy);
  EXPECT_TRUE(call.ok());
  EXPECT_EQ(call.attempts, 2);
  EXPECT_EQ(call.inference_ms, 10.0);
  // Wasted: the failed attempt's error latency plus one backoff sleep.
  EXPECT_DOUBLE_EQ(call.fault_ms, script.error_latency_ms + 0.25);
  EXPECT_FALSE(call.detections.empty());
}

TEST(RetryTest, PersistentOutageExhaustsRetries) {
  FakeDetector inner;
  FaultScript script;
  script.bursts.push_back({0, 1000, FaultKind::kError, -1});
  const FaultInjectingDetector faulty(&inner, script);

  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_base_ms = 0.25;
  policy.backoff_multiplier = 2.0;
  const DetectorCallOutcome call =
      DetectWithRetries(faulty, MakeFrame(10), 1, policy);
  EXPECT_FALSE(call.ok());
  EXPECT_EQ(call.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(call.attempts, 3);
  EXPECT_EQ(call.inference_ms, 0.0);
  // Three error latencies plus backoffs 0.25 and 0.5.
  EXPECT_DOUBLE_EQ(call.fault_ms, 3 * script.error_latency_ms + 0.75);
  EXPECT_TRUE(call.detections.empty());
}

TEST(RetryTest, DeadlineOverrunIsChargedExactlyTheDeadline) {
  FakeDetector inner(10.0);
  FaultScript script;
  script.bursts.push_back({0, 1000, FaultKind::kLatencySpike, -1});
  script.spike_factor = 25.0;  // 250ms, far past the deadline
  const FaultInjectingDetector faulty(&inner, script);

  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.deadline_ms = 50.0;
  policy.backoff_base_ms = 0.5;
  const DetectorCallOutcome call =
      DetectWithRetries(faulty, MakeFrame(0), 1, policy);
  EXPECT_FALSE(call.ok());
  EXPECT_EQ(call.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(call.attempts, 2);
  // Each abandoned attempt costs exactly the deadline, plus one backoff.
  EXPECT_DOUBLE_EQ(call.fault_ms, 2 * 50.0 + 0.5);
  EXPECT_TRUE(call.detections.empty());

  // A comfortable deadline leaves the healthy path untouched.
  policy.deadline_ms = 500.0;
  const DetectorCallOutcome relaxed =
      DetectWithRetries(faulty, MakeFrame(0), 1, policy);
  EXPECT_TRUE(relaxed.ok());
  EXPECT_EQ(relaxed.inference_ms, 250.0);
}

// ---------------------------------------------------------------------------
// Circuit breaker

TEST(CircuitBreakerTest, ClosedToOpenToHalfOpenToClosed) {
  CircuitBreakerOptions options;
  options.failure_threshold = 3;
  options.open_frames = 10;
  options.half_open_probes = 2;
  CircuitBreaker breaker(options);

  EXPECT_EQ(breaker.StateAt(0), BreakerState::kClosed);
  breaker.RecordFailure(0);
  breaker.RecordFailure(1);
  EXPECT_EQ(breaker.StateAt(2), BreakerState::kClosed)
      << "below threshold must stay closed";
  // A success resets the consecutive-failure count.
  breaker.RecordSuccess(2);
  breaker.RecordFailure(3);
  breaker.RecordFailure(4);
  EXPECT_EQ(breaker.StateAt(5), BreakerState::kClosed);
  breaker.RecordFailure(5);
  EXPECT_EQ(breaker.StateAt(6), BreakerState::kOpen);
  EXPECT_FALSE(breaker.AllowsCallAt(14));
  EXPECT_EQ(breaker.StateAt(15), BreakerState::kHalfOpen)
      << "open_frames elapsed at 5 + 10";
  EXPECT_TRUE(breaker.AllowsCallAt(15));
  breaker.RecordSuccess(15);
  EXPECT_EQ(breaker.StateAt(16), BreakerState::kHalfOpen)
      << "needs two probe successes";
  breaker.RecordSuccess(16);
  EXPECT_EQ(breaker.StateAt(17), BreakerState::kClosed);
  EXPECT_EQ(breaker.opens(), 1u);
  EXPECT_EQ(breaker.failures(), 5u);
  EXPECT_EQ(breaker.successes(), 3u);
}

TEST(CircuitBreakerTest, HalfOpenFailureTripsOpenAgain) {
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.open_frames = 5;
  CircuitBreaker breaker(options);

  breaker.RecordFailure(0);
  EXPECT_EQ(breaker.StateAt(4), BreakerState::kOpen);
  EXPECT_EQ(breaker.StateAt(5), BreakerState::kHalfOpen);
  breaker.RecordFailure(5);
  EXPECT_EQ(breaker.StateAt(6), BreakerState::kOpen);
  EXPECT_EQ(breaker.StateAt(10), BreakerState::kHalfOpen)
      << "cool-down restarts from the re-trip frame";
  EXPECT_EQ(breaker.opens(), 2u);
}

// ---------------------------------------------------------------------------
// ResilientDetector

TEST(ResilientDetectorTest, ShortCircuitsWhileOpenAndRecovers) {
  FakeDetector inner;
  FaultScript script;
  script.bursts.push_back({0, 6, FaultKind::kError, -1});
  const FaultInjectingDetector faulty(&inner, script);

  CircuitBreakerOptions breaker;
  breaker.failure_threshold = 2;
  breaker.open_frames = 4;
  ResilientDetector resilient(&faulty, RetryPolicy{}, breaker);

  EXPECT_FALSE(resilient.Call(MakeFrame(0), 1, 0).ok());
  EXPECT_FALSE(resilient.Call(MakeFrame(1), 1, 1).ok());  // trips open
  const DetectorCallOutcome refused = resilient.Call(MakeFrame(2), 1, 2);
  EXPECT_FALSE(refused.ok());
  EXPECT_EQ(refused.attempts, 0) << "an open breaker refuses without calling";
  EXPECT_EQ(refused.charged_ms(), 0.0);
  EXPECT_EQ(resilient.stats().short_circuits, 1u);

  // Cool-down elapses at t = 1 + 4 = 5; the probe still hits the burst and
  // re-trips. The next probe at t = 9 lands after the burst and closes.
  EXPECT_FALSE(resilient.Call(MakeFrame(5), 1, 5).ok());
  EXPECT_EQ(resilient.StateAt(6), BreakerState::kOpen);
  const DetectorCallOutcome recovered = resilient.Call(MakeFrame(9), 1, 9);
  EXPECT_TRUE(recovered.ok());
  EXPECT_EQ(resilient.StateAt(10), BreakerState::kClosed);
  EXPECT_EQ(resilient.breaker().opens(), 2u);

  const Result<DetectionList> detections =
      resilient.TryDetect(MakeFrame(10), 1, 10);
  ASSERT_TRUE(detections.ok());
  EXPECT_FALSE(detections.value().empty());
  EXPECT_EQ(resilient.stats().failures, 3u);
}

// ---------------------------------------------------------------------------
// Engine-level degradation (the ISSUE 3 acceptance scenarios)

// (a) A scripted mid-video outage never aborts the run: every frame
// completes, outage frames fall back to the surviving sub-mask, and a
// window where *everything* is down still just counts failed frames.
TEST(EngineFaultToleranceTest, ScriptedOutageNeverAbortsTheRun) {
  const int m = 3;
  const DetectorPool pool = MakePool(m);
  const Video video = MakeVideo(/*scene_scale=*/0.03, /*seed=*/11);
  ASSERT_GE(video.size(), 20u);

  // Model 0 is down for the first ten frames; every model is down for
  // frames [12, 14).
  std::vector<FaultScript> scripts(static_cast<size_t>(m));
  scripts[0].bursts.push_back({0, 10, FaultKind::kError, -1});
  for (auto& script : scripts) {
    script.bursts.push_back({12, 14, FaultKind::kError, -1});
  }
  const DetectorPool faulty =
      std::move(ApplyFaultScripts(pool, scripts)).value();

  const auto matrix =
      std::move(BuildFrameMatrix(video, faulty, /*trial_seed=*/7)).value();

  EngineOptions engine;
  engine.strategy_seed = 5;
  engine.compute_regret = false;
  MesOptions mes;
  mes.gamma = 2;
  MesStrategy strategy(mes);
  const RunResult run = std::move(RunStrategy(matrix, &strategy, engine)).value();

  EXPECT_EQ(run.frames_processed, video.size())
      << "an outage must never abort the run";
  // At least the all-models window; the bandit may also have tried the
  // dead model alone during the first outage.
  EXPECT_GE(run.failed_frames, 2u);
  EXPECT_GE(run.fallback_frames, 2u)
      << "initialization selects the full pool while model 0 is down";
  EXPECT_GT(run.model_availability[0].frames_failed, 0u);
  EXPECT_GT(run.model_availability[0].fault_ms, 0.0);
  EXPECT_GT(run.breakdown.fault_ms, 0.0);
  // Wasted time is charged, split out of detector_ms, and in the total.
  EXPECT_GT(run.breakdown.TotalMs(), 0.0);
}

// (b) The breaker opens at the failure threshold, the open model disappears
// from the strategy's candidate arms, and it is re-included once the
// half-open probe succeeds.
TEST(EngineFaultToleranceTest, BreakerMasksModelOutUntilRecovery) {
  const int m = 3;
  const DetectorPool pool = MakePool(m);
  const Video video = MakeVideo(/*scene_scale=*/0.03, /*seed=*/11);
  ASSERT_GE(video.size(), 16u);

  std::vector<FaultScript> scripts(static_cast<size_t>(m));
  scripts[0].bursts.push_back({3, 9, FaultKind::kError, -1});
  const DetectorPool faulty =
      std::move(ApplyFaultScripts(pool, scripts)).value();
  const auto matrix =
      std::move(BuildFrameMatrix(video, faulty, /*trial_seed=*/7)).value();

  EngineOptions engine;
  engine.compute_regret = false;
  engine.breaker.failure_threshold = 2;
  engine.breaker.open_frames = 4;

  // BF always selects the whole eligible pool, so the outage is observed
  // immediately and the eligibility trace is easy to read.
  RecordingStrategy strategy(std::make_unique<BruteForceStrategy>());
  const RunResult run =
      std::move(RunStrategy(matrix, &strategy, engine)).value();
  EXPECT_EQ(run.frames_processed, video.size());

  const EnsembleId full = FullEnsemble(m);
  const EnsembleId without0 = full & ~Singleton(0);
  const auto& log = strategy.log();
  ASSERT_EQ(log.size(), video.size());

  // Failures at t = 3, 4 trip the breaker; frames 5..7 run without model 0.
  for (size_t t = 0; t <= 4; ++t) {
    EXPECT_EQ(log[t].eligible, full) << "t=" << t;
    EXPECT_EQ(log[t].selected, full) << "t=" << t;
  }
  for (size_t t = 5; t <= 7; ++t) {
    EXPECT_EQ(log[t].eligible, without0)
        << "open breaker must mask model 0 out, t=" << t;
    EXPECT_EQ(log[t].selected, without0) << "t=" << t;
  }
  // Cool-down elapsed at t = 4 + 4 = 8: the half-open probe at t = 8 still
  // hits the burst and re-trips; the probe at t = 12 succeeds and closes.
  EXPECT_EQ(log[8].eligible, full) << "half-open must re-admit the model";
  for (size_t t = 9; t <= 11; ++t) {
    EXPECT_EQ(log[t].eligible, without0) << "re-tripped open, t=" << t;
  }
  for (size_t t = 12; t < log.size(); ++t) {
    EXPECT_EQ(log[t].eligible, full) << "recovered for good, t=" << t;
    EXPECT_EQ(log[t].selected, full) << "t=" << t;
  }

  EXPECT_EQ(run.model_availability[0].breaker_opens, 2u);
  EXPECT_EQ(run.model_availability[0].frames_failed, 3u)
      << "t = 3, 4 and the failed half-open probe at t = 8";
  EXPECT_EQ(run.fallback_frames, 3u);
  EXPECT_EQ(run.failed_frames, 0u);
}

// (c) Identical fault scripts and seeds produce bit-identical runs across
// worker counts and across the eager and lazy evaluation backends.
TEST(EngineFaultToleranceTest, FaultedRunsBitIdenticalAcrossWorkersAndBackends) {
  const int m = 3;
  const DetectorPool pool = MakePool(m);
  const Video video = MakeVideo(/*scene_scale=*/0.03, /*seed=*/17);
  ASSERT_GT(video.size(), 10u);

  std::vector<FaultScript> scripts(static_cast<size_t>(m));
  scripts[0].bursts.push_back({2, 8, FaultKind::kError, -1});
  scripts[1].error_rate = 0.2;
  scripts[1].empty_rate = 0.2;
  scripts[2].spike_rate = 0.3;
  scripts[2].garbage_rate = 0.2;
  const DetectorPool faulty =
      std::move(ApplyFaultScripts(pool, scripts)).value();

  MatrixOptions options;
  options.retry.max_attempts = 2;
  options.retry.backoff_base_ms = 0.25;

  EngineOptions engine;
  engine.strategy_seed = 42;
  engine.compute_regret = false;
  engine.breaker.failure_threshold = 2;
  engine.breaker.open_frames = 5;
  MesOptions mes;
  mes.gamma = 2;

  auto run_eager = [&](int workers) {
    MatrixOptions opt = options;
    opt.parallelism = workers;
    const auto matrix =
        std::move(BuildFrameMatrix(video, faulty, /*trial_seed=*/9, opt))
            .value();
    MesStrategy strategy(mes);
    return std::move(RunStrategy(matrix, &strategy, engine)).value();
  };
  auto run_lazy = [&](int workers) {
    MatrixOptions opt = options;
    opt.parallelism = workers;
    auto lazy = std::move(LazyFrameEvaluator::Create(video, faulty,
                                                     /*trial_seed=*/9, opt))
                    .value();
    MesStrategy strategy(mes);
    return std::move(RunStrategy(*lazy, &strategy, engine)).value();
  };

  const RunResult baseline = run_eager(1);
  EXPECT_GT(baseline.fallback_frames + baseline.failed_frames, 0u)
      << "the scripts must actually degrade some frames";
  EXPECT_GT(baseline.breakdown.fault_ms, 0.0);
  for (const int workers : {1, 2, 8}) {
    ExpectSameRun(baseline, run_eager(workers));
    ExpectSameRun(baseline, run_lazy(workers));
  }
}

// Satellite (c): under faults, the lazy evaluator and the eager matrix
// agree cell-for-cell — availability, per-model fault charges, and every
// evaluation on the realized sub-masks — for every worker count.
TEST(EngineFaultToleranceTest, DegradedCellsBitIdenticalLazyVsEager) {
  const int m = 3;
  const DetectorPool pool = MakePool(m);
  const Video video = MakeVideo(/*scene_scale=*/0.02, /*seed=*/23);
  ASSERT_GT(video.size(), 0u);

  std::vector<FaultScript> scripts(static_cast<size_t>(m));
  scripts[0].error_rate = 0.3;
  scripts[1].bursts.push_back({1, 4, FaultKind::kError, -1});
  scripts[2].empty_rate = 0.3;
  const DetectorPool faulty =
      std::move(ApplyFaultScripts(pool, scripts)).value();

  MatrixOptions options;
  options.retry.max_attempts = 2;

  bool any_degraded = false;
  for (const int workers : {1, 2, 8}) {
    options.parallelism = workers;
    const auto matrix =
        std::move(BuildFrameMatrix(video, faulty, /*trial_seed=*/13, options))
            .value();
    auto lazy = std::move(LazyFrameEvaluator::Create(video, faulty,
                                                     /*trial_seed=*/13,
                                                     options))
                    .value();
    ASSERT_EQ(lazy->num_frames(), matrix.size());
    for (size_t t = 0; t < matrix.size(); ++t) {
      const FrameEvaluation& fe = matrix.frames[t];
      const FrameStats stats = lazy->Stats(t);
      ASSERT_TRUE(fe.fault_aware);
      ASSERT_TRUE(stats.fault_aware);
      ASSERT_EQ(stats.available_mask, fe.available_mask) << "t=" << t;
      ASSERT_NE(stats.model_fault_ms, nullptr);
      EXPECT_EQ(*stats.model_fault_ms, fe.model_fault_ms);
      EXPECT_EQ(*stats.model_cost_ms, fe.model_cost_ms);
      if (fe.available_mask != FullEnsemble(m)) any_degraded = true;
      if (fe.available_mask == 0) continue;
      ForEachSubset(fe.available_mask, [&](EnsembleId sub) {
        const MaskEvaluation e = lazy->Eval(t, sub);
        ASSERT_EQ(e.est_ap, fe.est_ap[sub]) << "t=" << t << " mask=" << sub;
        ASSERT_EQ(e.true_ap, fe.true_ap[sub]);
        ASSERT_EQ(e.cost_ms, fe.cost_ms[sub]);
        ASSERT_EQ(e.fusion_overhead_ms, fe.fusion_overhead_ms[sub]);
      });
    }
  }
  EXPECT_TRUE(any_degraded) << "scripts never produced a degraded frame";
}

// ---------------------------------------------------------------------------
// Experiment harness integration

TEST(ExperimentFaultTest, FaultScriptsSurfaceInTheReport) {
  const DetectorPool pool = MakePool(3);
  const DatasetSpec* spec = *DatasetCatalog::Default().Find("nusc-night");

  ExperimentConfig config;
  config.dataset = spec;
  config.scene_scale = 0.02;
  config.trials = 2;
  config.pool_size = 3;
  config.base_seed = 31;
  config.engine.compute_regret = false;
  config.fault_scripts.assign(3, FaultScript{});
  config.fault_scripts[0].bursts.push_back({0, 6, FaultKind::kError, -1});

  std::vector<StrategySpec> strategies = {
      {"MES",
       [] {
         MesOptions opt;
         opt.gamma = 2;
         return std::make_unique<MesStrategy>(opt);
       }},
  };
  const auto result =
      std::move(RunExperiment(config, pool, strategies)).value();
  ASSERT_EQ(result.outcomes.size(), 1u);
  const StrategyOutcome& outcome = result.outcomes[0];
  EXPECT_GT(outcome.fallback_frames.mean, 0.0)
      << "the outage must show up as fallback frames in the report";
  EXPECT_GT(outcome.fault_ms.mean, 0.0);

  // Fault-free configs keep the counters at exactly zero.
  config.fault_scripts.clear();
  const auto clean = std::move(RunExperiment(config, pool, strategies)).value();
  EXPECT_EQ(clean.outcomes[0].fallback_frames.mean, 0.0);
  EXPECT_EQ(clean.outcomes[0].fault_ms.mean, 0.0);
}

// The online executor runs the same stack live: an outage degrades frames
// to the surviving sub-ensemble, surfaces in the output counters, and
// never aborts the query. The resolved nusc-night pool has 3 detectors.
TEST(ExperimentFaultTest, OnlineQuerySurvivesScriptedOutage) {
  const std::string sql =
      "SELECT frameID FROM (PROCESS nusc-night PRODUCE frameID, Detections "
      "USING MES(*; REF)) WHERE COUNT(car) >= 1";

  QueryEngineOptions options;
  options.scene_scale = 0.03;
  const QueryOutput clean = std::move(ExecuteQuery(sql, options)).value();
  ASSERT_GT(clean.frames_processed, 10u);
  EXPECT_EQ(clean.fallback_frames, 0u);
  EXPECT_EQ(clean.failed_frames, 0u);
  EXPECT_EQ(clean.fault_ms, 0.0);

  options.fault_scripts.assign(clean.model_names.size(), FaultScript{});
  options.fault_scripts[0].bursts.push_back({0, 8, FaultKind::kError, -1});
  options.retry.max_attempts = 2;
  options.breaker.failure_threshold = 2;
  options.breaker.open_frames = 4;
  const QueryOutput outage = std::move(ExecuteQuery(sql, options)).value();
  EXPECT_EQ(outage.frames_processed, clean.frames_processed)
      << "the outage must never abort the query";
  EXPECT_GT(outage.fallback_frames, 0u);
  EXPECT_GT(outage.fault_ms, 0.0);
  EXPECT_GT(outage.model_failures[0], 0u);

  // Misaligned scripts are rejected up front.
  options.fault_scripts.resize(1);
  EXPECT_FALSE(ExecuteQuery(sql, options).ok());
}

TEST(ExperimentFaultTest, ApplyFaultScriptsValidatesAlignment) {
  const DetectorPool pool = MakePool(3);
  const std::vector<FaultScript> wrong_size(2);
  EXPECT_FALSE(ApplyFaultScripts(pool, wrong_size).ok());

  std::vector<FaultScript> scripts(3);
  const auto decorated = ApplyFaultScripts(pool, scripts);
  ASSERT_TRUE(decorated.ok());
  EXPECT_EQ(decorated.value().detectors.size(), pool.detectors.size());
  for (size_t i = 0; i < pool.detectors.size(); ++i) {
    EXPECT_EQ(decorated.value().detectors[i]->name(),
              pool.detectors[i]->name())
        << "decoration must be name-transparent";
  }
}

}  // namespace
}  // namespace vqe
