// Unit tests for src/common: Status/Result, RNG, math utilities, strings,
// table printer.

#include <gtest/gtest.h>

#include <cmath>
#include <iterator>
#include <set>
#include <sstream>
#include <string>

#include "common/math_util.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/table_printer.h"

namespace vqe {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad weight");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad weight");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad weight");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code : kAllStatusCodes) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

// Every enum value round-trips through a factory-built Status: the code is
// preserved, the name is unique, and ToString embeds that exact name. Fails
// when a new StatusCode is added without extending kAllStatusCodes, a
// factory, or StatusCodeToString.
TEST(StatusTest, EveryCodeRoundTripsThroughStatus) {
  auto make = [](StatusCode code) -> Status {
    switch (code) {
      case StatusCode::kOk:
        return Status::OK();
      case StatusCode::kInvalidArgument:
        return Status::InvalidArgument("m");
      case StatusCode::kOutOfRange:
        return Status::OutOfRange("m");
      case StatusCode::kNotFound:
        return Status::NotFound("m");
      case StatusCode::kAlreadyExists:
        return Status::AlreadyExists("m");
      case StatusCode::kFailedPrecondition:
        return Status::FailedPrecondition("m");
      case StatusCode::kParseError:
        return Status::ParseError("m");
      case StatusCode::kResourceExhausted:
        return Status::ResourceExhausted("m");
      case StatusCode::kInternal:
        return Status::Internal("m");
      case StatusCode::kDeadlineExceeded:
        return Status::DeadlineExceeded("m");
      case StatusCode::kUnavailable:
        return Status::Unavailable("m");
      case StatusCode::kDataLoss:
        return Status::DataLoss("m");
      case StatusCode::kAborted:
        return Status::Aborted("m");
    }
    return Status::Internal("unhandled code");
  };
  std::set<std::string> names;
  for (StatusCode code : kAllStatusCodes) {
    const Status s = make(code);
    EXPECT_EQ(s.code(), code);
    const std::string name = StatusCodeToString(code);
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
    if (code == StatusCode::kOk) {
      EXPECT_EQ(s.ToString(), "OK");
    } else {
      EXPECT_EQ(s.ToString(), name + ": m");
    }
  }
  EXPECT_EQ(names.size(), std::size(kAllStatusCodes));
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  VQE_ASSIGN_OR_RETURN(int h, Half(x));
  VQE_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_EQ(Quarter(6).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Quarter(5).status().code(), StatusCode::kInvalidArgument);
}

Status CheckPositive(double x) {
  if (x <= 0) return Status::OutOfRange("non-positive");
  return Status::OK();
}

Status CheckAll(double a, double b) {
  VQE_RETURN_NOT_OK(CheckPositive(a));
  VQE_RETURN_NOT_OK(CheckPositive(b));
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(CheckAll(1, 2).ok());
  EXPECT_FALSE(CheckAll(-1, 2).ok());
  EXPECT_FALSE(CheckAll(1, -2).ok());
}

// ------------------------------------------------------------------- RNG --

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(123), b(124);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng.UniformInt(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, UniformIntOfOneIsZero) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(1), 0u);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(77);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(42);
  const int n = 50000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, PoissonMoments) {
  Rng rng(11);
  const int n = 50000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Poisson(4.5);
  EXPECT_NEAR(sum / n, 4.5, 0.1);
}

TEST(RngTest, PoissonZeroLambda) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, PoissonLargeLambdaUsesNormalApprox) {
  Rng rng(13);
  const int n = 20000;
  double sum = 0;
  for (int i = 0; i < n; ++i) {
    const int v = rng.Poisson(100.0);
    EXPECT_GE(v, 0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(RngTest, StreamDerivationIsKeyed) {
  Rng a = MakeStreamRng(1, 2, 3);
  Rng b = MakeStreamRng(1, 2, 3);
  Rng c = MakeStreamRng(1, 2, 4);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, StreamKeysAreOrderSensitive) {
  Rng a = MakeStreamRng(1, 2, 3);
  Rng b = MakeStreamRng(1, 3, 2);
  EXPECT_NE(a.Next(), b.Next());
}

// ------------------------------------------------------------- math_util --

TEST(MathTest, MeanAndStd) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_NEAR(SampleStdDev(xs), 2.138, 1e-3);
}

TEST(MathTest, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(SampleStdDev({}), 0.0);
  EXPECT_DOUBLE_EQ(SampleStdDev({5.0}), 0.0);
  EXPECT_TRUE(std::isinf(Min({})));
  EXPECT_TRUE(std::isinf(Max({})));
}

TEST(MathTest, Summarize) {
  const SampleSummary s = Summarize({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_EQ(s.count, 4u);
}

TEST(MathTest, Clamp) {
  EXPECT_DOUBLE_EQ(Clamp(5, 0, 1), 1.0);
  EXPECT_DOUBLE_EQ(Clamp(-5, 0, 1), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(0.5, 0, 1), 0.5);
}

TEST(MathTest, FitLineExactOnLinearData) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i + 7.0);
  }
  const auto fit = FitLine(xs, ys);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 3.0, 1e-12);
  EXPECT_NEAR(fit->intercept, 7.0, 1e-10);
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit->Predict(100), 307.0, 1e-9);
}

TEST(MathTest, FitLineNoisy) {
  Rng rng(3);
  std::vector<double> xs, ys;
  for (int i = 0; i < 500; ++i) {
    xs.push_back(i);
    ys.push_back(2.0 * i + 5.0 + rng.Gaussian(0, 1.0));
  }
  const auto fit = FitLine(xs, ys);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 2.0, 0.01);
  EXPECT_GT(fit->r_squared, 0.99);
}

TEST(MathTest, FitLineErrors) {
  EXPECT_FALSE(FitLine({1}, {1}).ok());
  EXPECT_FALSE(FitLine({1, 2}, {1}).ok());
  EXPECT_FALSE(FitLine({2, 2, 2}, {1, 2, 3}).ok());  // vertical line
}

TEST(MathTest, FitLineConstantYHasUnitR2) {
  const auto fit = FitLine({1, 2, 3}, {5, 5, 5});
  ASSERT_TRUE(fit.ok());
  EXPECT_DOUBLE_EQ(fit->slope, 0.0);
  EXPECT_DOUBLE_EQ(fit->r_squared, 1.0);
}

// --------------------------------------------------------------- strings --

TEST(StringsTest, Split) {
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringsTest, SplitNoDelimiter) {
  const auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(ToLower("MiXeD-123"), "mixed-123");
  EXPECT_EQ(ToUpper("MiXeD-123"), "MIXED-123");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("bdd-rainy", "bdd"));
  EXPECT_FALSE(StartsWith("bd", "bdd"));
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
  EXPECT_EQ(StrFormat("no args"), "no args");
}

// --------------------------------------------------------- table printer --

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"alpha", "1.5"});
  t.AddRow({"b", "20"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha |   1.5 |"), std::string::npos);  // right align
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TablePrinterTest, PadsShortRows) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"x"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("| x |"), std::string::npos);
}

// --------------------------------------------------------------- timing --

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GT(sw.ElapsedSeconds(), 0.0);
  EXPECT_GE(sw.ElapsedMillis(), sw.ElapsedSeconds() * 1e3 * 0.99);
}

TEST(StopwatchTest, AccumulatorSums) {
  TimeAccumulator acc;
  acc.Add(0.5);
  acc.Add(0.25);
  EXPECT_DOUBLE_EQ(acc.total_seconds(), 0.75);
  acc.Reset();
  EXPECT_DOUBLE_EQ(acc.total_seconds(), 0.0);
}

TEST(StopwatchTest, ScopedTimerAddsOnDestruction) {
  TimeAccumulator acc;
  {
    ScopedTimer timer(&acc);
    volatile double sink = 0;
    for (int i = 0; i < 10000; ++i) sink += i;
  }
  EXPECT_GT(acc.total_seconds(), 0.0);
}

}  // namespace
}  // namespace vqe
