// Tests for the VQEVIDEO / VQEDET snapshot formats and the scoring-form
// variants.

#include <gtest/gtest.h>

#include <sstream>

#include "core/scoring.h"
#include "sim/dataset.h"
#include "sim/serialization.h"

namespace vqe {
namespace {

Video SampleSmallVideo() {
  const DatasetSpec* spec = *DatasetCatalog::Default().Find("nusc-night");
  SampleOptions opts;
  opts.scene_scale = 0.02;
  opts.seed = 4;
  return std::move(SampleVideo(*spec, opts)).value();
}

TEST(SerializationTest, VideoRoundTripIsLossless) {
  const Video original = SampleSmallVideo();
  std::stringstream buffer;
  ASSERT_TRUE(WriteVideo(original, buffer).ok());

  const auto restored = ReadVideo(buffer);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->size(), original.size());
  EXPECT_DOUBLE_EQ(restored->geometry.width, original.geometry.width);
  for (size_t t = 0; t < original.size(); ++t) {
    const VideoFrame& a = original.frames[t];
    const VideoFrame& b = restored->frames[t];
    EXPECT_EQ(a.frame_index, b.frame_index);
    EXPECT_EQ(a.scene_id, b.scene_id);
    EXPECT_EQ(a.context, b.context);
    ASSERT_EQ(a.objects.size(), b.objects.size());
    for (size_t i = 0; i < a.objects.size(); ++i) {
      EXPECT_EQ(a.objects[i].label, b.objects[i].label);
      EXPECT_EQ(a.objects[i].object_id, b.objects[i].object_id);
      EXPECT_EQ(a.objects[i].difficult, b.objects[i].difficult);
      EXPECT_DOUBLE_EQ(a.objects[i].hardness, b.objects[i].hardness);
      EXPECT_DOUBLE_EQ(a.objects[i].box.x1, b.objects[i].box.x1);
      EXPECT_DOUBLE_EQ(a.objects[i].box.y2, b.objects[i].box.y2);
    }
  }
}

TEST(SerializationTest, VideoFileRoundTrip) {
  const Video original = SampleSmallVideo();
  const std::string path = ::testing::TempDir() + "/vqe_video_test.txt";
  ASSERT_TRUE(WriteVideoFile(original, path).ok());
  const auto restored = ReadVideoFile(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->size(), original.size());
}

TEST(SerializationTest, RejectsCorruptInputs) {
  {
    std::stringstream empty;
    EXPECT_EQ(ReadVideo(empty).status().code(), StatusCode::kParseError);
  }
  {
    std::stringstream wrong_magic("NOTVIDEO 1\n");
    EXPECT_FALSE(ReadVideo(wrong_magic).ok());
  }
  {
    std::stringstream bad_version("VQEVIDEO 99\n");
    EXPECT_FALSE(ReadVideo(bad_version).ok());
  }
  {
    std::stringstream truncated(
        "VQEVIDEO 1\ngeometry 1600 900\nframe 0 0 0 1600 900 2\n"
        "obj 0 5 0 0.5 0 0 10 10\n");  // promises 2 objects, has 1
    EXPECT_FALSE(ReadVideo(truncated).ok());
  }
  {
    std::stringstream bad_context(
        "VQEVIDEO 1\ngeometry 1600 900\nframe 0 0 9 1600 900 0\n");
    EXPECT_FALSE(ReadVideo(bad_context).ok());
  }
  {
    std::stringstream invalid_box(
        "VQEVIDEO 1\ngeometry 1600 900\nframe 0 0 0 1600 900 1\n"
        "obj 0 5 0 0.5 10 10 0 0\n");  // x2 < x1
    EXPECT_FALSE(ReadVideo(invalid_box).ok());
  }
  EXPECT_FALSE(ReadVideoFile("/nonexistent/path.txt").ok());
}

TEST(SerializationTest, DetectionsRoundTrip) {
  std::vector<DetectionList> dets(3);
  Detection d;
  d.box = BBox::FromXYWH(10, 20, 30, 40);
  d.confidence = 0.875;
  d.label = 2;
  d.box_variance = 4.25;
  dets[0].push_back(d);
  d.box = BBox::FromXYWH(1, 2, 3, 4);
  d.confidence = 0.125;
  dets[2].push_back(d);
  dets[2].push_back(d);

  std::stringstream buffer;
  ASSERT_TRUE(WriteDetections(dets, buffer).ok());
  const auto restored = ReadDetections(buffer);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->size(), 3u);
  EXPECT_EQ((*restored)[0].size(), 1u);
  EXPECT_TRUE((*restored)[1].empty());
  EXPECT_EQ((*restored)[2].size(), 2u);
  EXPECT_DOUBLE_EQ((*restored)[0][0].confidence, 0.875);
  EXPECT_EQ((*restored)[0][0].label, 2);
  EXPECT_DOUBLE_EQ((*restored)[0][0].box_variance, 4.25);
  EXPECT_DOUBLE_EQ((*restored)[0][0].box.x2, 40.0);
}

TEST(SerializationTest, DetectionsRejectCorruptInput) {
  std::stringstream wrong("VQEVIDEO 1\n");
  EXPECT_FALSE(ReadDetections(wrong).ok());
  std::stringstream bad_index("VQEDET 1\nframe 5 0\n");
  EXPECT_FALSE(ReadDetections(bad_index).ok());
}

// Corpus of hostile inputs: lying headers, non-finite numerics, negative
// labels, huge declared counts. Every one must come back as a clean
// ParseError — no crash, no UB, no unbounded allocation.
TEST(SerializationTest, HostileInputCorpusIsRejectedCleanly) {
  const std::vector<const char*> hostile_videos = {
      // Declared count far beyond any real frame (allocation bomb).
      "VQEVIDEO 1\ngeometry 1600 900\nframe 0 0 0 1600 900 99999999999\n",
      // Count just above the per-frame cap.
      "VQEVIDEO 1\ngeometry 1600 900\nframe 0 0 0 1600 900 1048577\n",
      // Non-finite geometry.
      "VQEVIDEO 1\ngeometry nan 900\n",
      "VQEVIDEO 1\ngeometry inf inf\n",
      "VQEVIDEO 1\ngeometry -1600 900\n",
      "VQEVIDEO 1\ngeometry 0 0\n",
      // Non-finite frame dimensions.
      "VQEVIDEO 1\ngeometry 1600 900\nframe 0 0 0 nan 900 0\n",
      "VQEVIDEO 1\ngeometry 1600 900\nframe 0 0 0 1600 -900 0\n",
      // Negative frame index.
      "VQEVIDEO 1\ngeometry 1600 900\nframe -3 0 0 1600 900 0\n",
      // Negative label / non-finite hardness / inf box coordinate.
      "VQEVIDEO 1\ngeometry 1600 900\nframe 0 0 0 1600 900 1\n"
      "obj -1 5 0 0.5 0 0 10 10\n",
      "VQEVIDEO 1\ngeometry 1600 900\nframe 0 0 0 1600 900 1\n"
      "obj 0 5 0 nan 0 0 10 10\n",
      "VQEVIDEO 1\ngeometry 1600 900\nframe 0 0 0 1600 900 1\n"
      "obj 0 5 0 -0.5 0 0 10 10\n",
      "VQEVIDEO 1\ngeometry 1600 900\nframe 0 0 0 1600 900 1\n"
      "obj 0 5 0 0.5 0 0 inf 10\n",
      // Garbage tags and truncation mid-record.
      "VQEVIDEO 1\ngeometry 1600 900\nzzz 0 0 0 1600 900 0\n",
      "VQEVIDEO 1\ngeometry 1600 900\nframe 0 0 0 1600 900 1\nobj 0 5\n",
      "VQEVIDEO 1\ngeometry 1600 900\nframe 0 0 0 1600 900 1\n",
      "VQEVIDEO 1\n",
  };
  for (const char* text : hostile_videos) {
    std::stringstream is(text);
    const auto v = ReadVideo(is);
    ASSERT_FALSE(v.ok()) << text;
    EXPECT_EQ(v.status().code(), StatusCode::kParseError) << text;
  }

  const std::vector<const char*> hostile_detections = {
      // Allocation bomb / cap overflow.
      "VQEDET 1\nframe 0 99999999999\n",
      "VQEDET 1\nframe 0 1048577\n",
      // Non-finite or negative numerics.
      "VQEDET 1\nframe 0 1\ndet 0 nan 0 0 0 10 10\n",
      "VQEDET 1\nframe 0 1\ndet 0 -0.5 0 0 0 10 10\n",
      "VQEDET 1\nframe 0 1\ndet 0 0.9 nan 0 0 10 10\n",
      "VQEDET 1\nframe 0 1\ndet 0 0.9 -1 0 0 10 10\n",
      "VQEDET 1\nframe 0 1\ndet -2 0.9 0 0 0 10 10\n",
      "VQEDET 1\nframe 0 1\ndet 0 0.9 0 inf 0 10 10\n",
      // Misordered box, garbage tag, truncation.
      "VQEDET 1\nframe 0 1\ndet 0 0.9 0 10 10 0 0\n",
      "VQEDET 1\nframe 0 1\nzzz 0 0.9 0 0 0 10 10\n",
      "VQEDET 1\nframe 0 1\ndet 0 0.9\n",
      "VQEDET 1\nframe 0 1\n",
  };
  for (const char* text : hostile_detections) {
    std::stringstream is(text);
    const auto d = ReadDetections(is);
    ASSERT_FALSE(d.ok()) << text;
    EXPECT_EQ(d.status().code(), StatusCode::kParseError) << text;
  }
}

// --------------------------------------------------------- scoring forms --

TEST(ScoreFormTest, LinearFormMeetsCriteria) {
  ScoringFunction sc{0.5, 0.5, ScoreForm::kLinear};
  EXPECT_DOUBLE_EQ(sc.Score(1.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(sc.Score(0.0, 1.0), 0.0);
  for (double ap = 0.0; ap < 0.95; ap += 0.1) {
    for (double cost = 0.0; cost < 0.95; cost += 0.1) {
      const double base = sc.Score(ap, cost);
      EXPECT_GT(sc.Score(ap + 0.05, cost), base);
      EXPECT_LT(sc.Score(ap, cost + 0.05), base);
      EXPECT_GE(base, 0.0);
      EXPECT_LE(base, 1.0);
    }
  }
}

TEST(ScoreFormTest, FormsAgreeAtEndpointsDivergeInside) {
  ScoringFunction log_form{0.5, 0.5, ScoreForm::kLogarithmic};
  ScoringFunction lin_form{0.5, 0.5, ScoreForm::kLinear};
  EXPECT_DOUBLE_EQ(log_form.Score(1, 0), lin_form.Score(1, 0));
  EXPECT_DOUBLE_EQ(log_form.Score(0, 1), lin_form.Score(0, 1));
  // log2(x+1) >= x on [0,1]: the log form dominates inside.
  EXPECT_GT(log_form.Score(0.5, 0.5), lin_form.Score(0.5, 0.5));
}

}  // namespace
}  // namespace vqe
