// Information-protocol tests: the engine must expose estimated rewards only
// for ensembles whose outputs actually exist (subsets of the selection),
// charge costs per Equations (12)/(14), and keep oracle access explicit.

#include <gtest/gtest.h>

#include <cmath>

#include "core/baselines.h"
#include "core/engine.h"
#include "core/mes.h"
#include "test_util.h"

namespace vqe {
namespace {

using test::SimpleTwoModelMatrix;
using test::SyntheticMatrix;

EngineOptions DefaultEngine() {
  EngineOptions opt;
  opt.sc = ScoringFunction{0.5, 0.5};
  return opt;
}

// A probe strategy that records everything the engine shows it.
class ProbeStrategy : public SelectionStrategy {
 public:
  explicit ProbeStrategy(std::vector<EnsembleId> plan)
      : plan_(std::move(plan)) {}

  const std::string& name() const override {
    static const std::string kName = "probe";
    return kName;
  }
  void BeginVideo(const StrategyContext& ctx) override {
    num_models_ = ctx.num_models;
    saw_oracle_ = ctx.oracle != nullptr;
    observed_.clear();
  }
  EnsembleId Select(size_t t) override {
    return plan_[t % plan_.size()];
  }
  void Observe(const FrameFeedback& feedback) override {
    observed_.push_back(*feedback.est_score);  // copy the full vector
    selections_.push_back(feedback.selected);
  }

  int num_models_ = 0;
  bool saw_oracle_ = false;
  std::vector<std::vector<double>> observed_;
  std::vector<EnsembleId> selections_;

 private:
  std::vector<EnsembleId> plan_;
};

TEST(ProtocolTest, NonSubsetRewardsAreNaN) {
  const FrameMatrix matrix = SyntheticMatrix(
      3, 12, {0.0, 0.8, 0.4, 0.8, 0.3, 0.8, 0.5, 0.9}, {10, 10, 10});
  ProbeStrategy probe({/*{M0}*/ 1, /*{M0,M2}*/ 5, /*full*/ 7});
  const auto run = RunStrategy(matrix, &probe, DefaultEngine());
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(probe.observed_.size(), 12u);
  for (size_t t = 0; t < probe.observed_.size(); ++t) {
    const EnsembleId selected = probe.selections_[t];
    for (EnsembleId s = 1; s <= 7; ++s) {
      const double reward = probe.observed_[t][s];
      if (IsSubsetOf(s, selected)) {
        EXPECT_FALSE(std::isnan(reward))
            << "subset " << s << " of " << selected << " must be scored";
        EXPECT_GE(reward, 0.0);
        EXPECT_LE(reward, 1.0);
      } else {
        EXPECT_TRUE(std::isnan(reward))
            << "non-subset " << s << " of " << selected
            << " must be hidden (NaN)";
      }
    }
  }
}

TEST(ProtocolTest, ChargedCostMatchesEquation14) {
  // Eq. 14: per frame, the selected models' inference plus the fusion
  // overhead of every subset of the selection.
  const FrameMatrix matrix = SimpleTwoModelMatrix(10, /*seed=*/2,
                                                  /*noise=*/0.0);
  ProbeStrategy probe({/*{M0,M1}*/ 3});
  const auto run = RunStrategy(matrix, &probe, DefaultEngine());
  ASSERT_TRUE(run.ok());
  double expected = 0.0;
  for (const auto& fe : matrix.frames) {
    expected += fe.model_cost_ms[0] + fe.model_cost_ms[1];
    for (EnsembleId s : {1u, 2u, 3u}) expected += fe.fusion_overhead_ms[s];
  }
  EXPECT_NEAR(run->charged_cost_ms, expected, 1e-9);
}

TEST(ProtocolTest, SingletonSelectionChargesOneModel) {
  const FrameMatrix matrix = SimpleTwoModelMatrix(10, 2, 0.0);
  ProbeStrategy probe({/*{M0}*/ 1});
  const auto run = RunStrategy(matrix, &probe, DefaultEngine());
  ASSERT_TRUE(run.ok());
  double expected = 0.0;
  for (const auto& fe : matrix.frames) {
    expected += fe.model_cost_ms[0] + fe.fusion_overhead_ms[1];
  }
  EXPECT_NEAR(run->charged_cost_ms, expected, 1e-9);
}

TEST(ProtocolTest, OracleViewAlwaysAvailableButExplicit) {
  // The engine provides the oracle through the context; honest strategies
  // never read it, oracle baselines do. The probe verifies it is non-null.
  const FrameMatrix matrix = SimpleTwoModelMatrix(5);
  ProbeStrategy probe({1});
  const auto run = RunStrategy(matrix, &probe, DefaultEngine());
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(probe.saw_oracle_);
}

TEST(ProtocolTest, EstimatedRewardsUseEstimatedApNotTrue) {
  // Build a matrix where est_ap and true_ap diverge grossly for one arm;
  // the reward reported to strategies must follow est_ap.
  FrameMatrix matrix = SimpleTwoModelMatrix(3, 2, 0.0);
  for (auto& fe : matrix.frames) {
    fe.est_ap[1] = 0.0;
    fe.true_ap[1] = 1.0;
  }
  ProbeStrategy probe({1});
  EngineOptions opt = DefaultEngine();
  const auto run = RunStrategy(matrix, &probe, opt);
  ASSERT_TRUE(run.ok());
  const FrameEvaluation& fe = matrix.frames[0];
  const double expected_est =
      opt.sc.Score(0.0, fe.cost_ms[1] / fe.max_cost_ms);
  EXPECT_NEAR(probe.observed_[0][1], expected_est, 1e-12);
  // ...while the measured s_sum uses the true AP.
  const double expected_true =
      opt.sc.Score(1.0, fe.cost_ms[1] / fe.max_cost_ms);
  EXPECT_NEAR(run->s_sum / 3.0, expected_true, 1e-9);
}

TEST(ProtocolTest, InvalidSelectionIsAnError) {
  const FrameMatrix matrix = SimpleTwoModelMatrix(5);
  ProbeStrategy zero_probe({0});  // empty ensemble: invalid
  EXPECT_FALSE(RunStrategy(matrix, &zero_probe, DefaultEngine()).ok());
  ProbeStrategy oob_probe({9});  // beyond 2^m - 1
  EXPECT_FALSE(RunStrategy(matrix, &oob_probe, DefaultEngine()).ok());
}

TEST(ProtocolTest, MesNeverSelectsInvalidMask) {
  const FrameMatrix matrix = SyntheticMatrix(
      4, 400, {0.0, 0.8, 0.4, 0.8, 0.3, 0.8, 0.5, 0.9, 0.2, 0.5, 0.5, 0.6,
               0.4, 0.7, 0.6, 0.85},
      {10, 10, 10, 10});
  MesStrategy mes;
  const auto run = RunStrategy(matrix, &mes, DefaultEngine());
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->selection_counts[0], 0u);
  EXPECT_EQ(run->frames_processed, 400u);
}

}  // namespace
}  // namespace vqe
