// Tests for detection matching, precision-recall curves, and AP / mAP.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "detection/ap.h"
#include "detection/detection.h"
#include "detection/matching.h"

namespace vqe {
namespace {

Detection Det(double x, double y, double w, double h, double conf,
              ClassId label = 0) {
  Detection d;
  d.box = BBox::FromXYWH(x, y, w, h);
  d.confidence = conf;
  d.label = label;
  return d;
}

GroundTruthBox Gt(double x, double y, double w, double h, ClassId label = 0,
                  bool difficult = false) {
  GroundTruthBox g;
  g.box = BBox::FromXYWH(x, y, w, h);
  g.label = label;
  g.difficult = difficult;
  return g;
}

// ------------------------------------------------------------- matching --

TEST(MatchingTest, PerfectMatch) {
  const DetectionList dets{Det(0, 0, 10, 10, 0.9)};
  const GroundTruthList gts{Gt(0, 0, 10, 10)};
  const MatchResult r = MatchDetections(dets, gts, 0.5);
  ASSERT_EQ(r.matches.size(), 1u);
  EXPECT_TRUE(r.matches[0].is_tp);
  EXPECT_EQ(r.matches[0].gt_index, 0);
  EXPECT_DOUBLE_EQ(r.matches[0].iou, 1.0);
  EXPECT_EQ(r.num_gt, 1u);
}

TEST(MatchingTest, IoUBelowThresholdIsFp) {
  const DetectionList dets{Det(0, 0, 10, 10, 0.9)};
  const GroundTruthList gts{Gt(8, 8, 10, 10)};
  const MatchResult r = MatchDetections(dets, gts, 0.5);
  EXPECT_FALSE(r.matches[0].is_tp);
  EXPECT_EQ(r.matches[0].gt_index, -1);
}

TEST(MatchingTest, ClassMismatchNeverMatches) {
  const DetectionList dets{Det(0, 0, 10, 10, 0.9, /*label=*/1)};
  const GroundTruthList gts{Gt(0, 0, 10, 10, /*label=*/2)};
  const MatchResult r = MatchDetections(dets, gts, 0.5);
  EXPECT_FALSE(r.matches[0].is_tp);
}

TEST(MatchingTest, EachGtClaimedOnce) {
  // Two detections over the same GT box: only the higher-confidence one is TP.
  const DetectionList dets{Det(0, 0, 10, 10, 0.6), Det(1, 0, 10, 10, 0.9)};
  const GroundTruthList gts{Gt(0, 0, 10, 10)};
  const MatchResult r = MatchDetections(dets, gts, 0.5);
  ASSERT_EQ(r.matches.size(), 2u);
  // Processed in confidence order: the 0.9 detection first.
  EXPECT_DOUBLE_EQ(r.matches[0].confidence, 0.9);
  EXPECT_TRUE(r.matches[0].is_tp);
  EXPECT_FALSE(r.matches[1].is_tp);
}

TEST(MatchingTest, HigherConfidenceClaimsBestIoU) {
  // One detection, two candidate GTs: claims the higher-IoU one.
  const DetectionList dets{Det(0, 0, 10, 10, 0.9)};
  const GroundTruthList gts{Gt(3, 0, 10, 10), Gt(1, 0, 10, 10)};
  const MatchResult r = MatchDetections(dets, gts, 0.3);
  EXPECT_TRUE(r.matches[0].is_tp);
  EXPECT_EQ(r.matches[0].gt_index, 1);
}

TEST(MatchingTest, DifficultGtIgnoredNotFp) {
  const DetectionList dets{Det(0, 0, 10, 10, 0.9)};
  const GroundTruthList gts{Gt(0, 0, 10, 10, 0, /*difficult=*/true)};
  const MatchResult r = MatchDetections(dets, gts, 0.5);
  EXPECT_TRUE(r.matches[0].ignored);
  EXPECT_FALSE(r.matches[0].is_tp);
  EXPECT_EQ(r.num_gt, 0u);  // difficult GT not in recall denominator
}

TEST(MatchingTest, EmptyInputs) {
  EXPECT_EQ(MatchDetections({}, {}, 0.5).matches.size(), 0u);
  EXPECT_EQ(MatchDetections({}, {Gt(0, 0, 1, 1)}, 0.5).num_gt, 1u);
  const MatchResult r = MatchDetections({Det(0, 0, 1, 1, 0.5)}, {}, 0.5);
  ASSERT_EQ(r.matches.size(), 1u);
  EXPECT_FALSE(r.matches[0].is_tp);
}

// ------------------------------------------------------------- PR curve --

TEST(PrCurveTest, SimpleCurve) {
  std::vector<DetectionMatch> matches(3);
  matches[0].is_tp = true;
  matches[0].confidence = 0.9;
  matches[1].is_tp = false;
  matches[1].confidence = 0.8;
  matches[2].is_tp = true;
  matches[2].confidence = 0.7;
  const auto curve = PrecisionRecallCurve(matches, 2);
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_DOUBLE_EQ(curve[0].recall, 0.5);
  EXPECT_DOUBLE_EQ(curve[0].precision, 1.0);
  EXPECT_DOUBLE_EQ(curve[1].precision, 0.5);
  EXPECT_DOUBLE_EQ(curve[2].recall, 1.0);
  EXPECT_NEAR(curve[2].precision, 2.0 / 3.0, 1e-12);
}

TEST(PrCurveTest, IgnoredMatchesSkipped) {
  std::vector<DetectionMatch> matches(2);
  matches[0].ignored = true;
  matches[1].is_tp = true;
  const auto curve = PrecisionRecallCurve(matches, 1);
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_DOUBLE_EQ(curve[0].precision, 1.0);
}

TEST(PrCurveTest, ZeroGtYieldsEmptyCurve) {
  std::vector<DetectionMatch> matches(2);
  EXPECT_TRUE(PrecisionRecallCurve(matches, 0).empty());
}

TEST(PrCurveTest, IntegrationModes) {
  // Perfect detector: precision 1 at all recalls.
  std::vector<PrPoint> curve{{0.5, 1.0}, {1.0, 1.0}};
  EXPECT_DOUBLE_EQ(IntegratePrCurve(curve, ApInterpolation::kContinuous), 1.0);
  EXPECT_DOUBLE_EQ(IntegratePrCurve(curve, ApInterpolation::k101Point), 1.0);
  EXPECT_DOUBLE_EQ(IntegratePrCurve(curve, ApInterpolation::k11Point), 1.0);
  EXPECT_DOUBLE_EQ(IntegratePrCurve({}, ApInterpolation::kContinuous), 0.0);
}

TEST(PrCurveTest, MonotoneEnvelopeApplied) {
  // Precision dips then recovers: the envelope uses the max to the right.
  std::vector<PrPoint> curve{{0.25, 1.0}, {0.25, 0.5}, {0.5, 2.0 / 3.0}};
  // Envelope precision at recall<=0.5 region: max(1.0, ...) for first point.
  const double ap = IntegratePrCurve(curve, ApInterpolation::kContinuous);
  EXPECT_NEAR(ap, 0.25 * 1.0 + 0.25 * (2.0 / 3.0), 1e-12);
}

// ------------------------------------------------------------------- AP --

TEST(ApTest, PerfectDetectionsGiveApOne) {
  const DetectionList dets{Det(0, 0, 10, 10, 0.9), Det(20, 20, 10, 10, 0.8)};
  const GroundTruthList gts{Gt(0, 0, 10, 10), Gt(20, 20, 10, 10)};
  EXPECT_DOUBLE_EQ(FrameMeanAp(dets, gts, {}), 1.0);
}

TEST(ApTest, EmptyFrameConventions) {
  EXPECT_DOUBLE_EQ(FrameMeanAp({}, GroundTruthList{}, {}), 1.0);
  EXPECT_DOUBLE_EQ(FrameMeanAp({Det(0, 0, 1, 1, 0.9)}, GroundTruthList{}, {}),
                   0.0);
  EXPECT_DOUBLE_EQ(FrameMeanAp({}, {Gt(0, 0, 1, 1)}, {}), 0.0);
}

TEST(ApTest, MissedObjectLowersAp) {
  const GroundTruthList gts{Gt(0, 0, 10, 10), Gt(50, 50, 10, 10)};
  const DetectionList dets{Det(0, 0, 10, 10, 0.9)};
  const double ap = FrameMeanAp(dets, gts, {});
  EXPECT_NEAR(ap, 0.5, 1e-12);  // recall caps at 0.5, precision 1
}

TEST(ApTest, FalsePositiveBelowTpLowersApLess) {
  const GroundTruthList gts{Gt(0, 0, 10, 10)};
  const DetectionList clean{Det(0, 0, 10, 10, 0.9)};
  const DetectionList with_low_fp{Det(0, 0, 10, 10, 0.9),
                                  Det(50, 50, 10, 10, 0.3)};
  const DetectionList with_high_fp{Det(0, 0, 10, 10, 0.5),
                                   Det(50, 50, 10, 10, 0.9)};
  const double ap_clean = FrameMeanAp(clean, gts, {});
  const double ap_low = FrameMeanAp(with_low_fp, gts, {});
  const double ap_high = FrameMeanAp(with_high_fp, gts, {});
  EXPECT_DOUBLE_EQ(ap_clean, 1.0);
  // FP ranked below the TP does not hurt continuous AP...
  EXPECT_DOUBLE_EQ(ap_low, 1.0);
  // ...but an FP ranked above the TP does.
  EXPECT_NEAR(ap_high, 0.5, 1e-12);
  EXPECT_LT(ap_high, ap_low);
}

TEST(ApTest, WrongLabelCountsAgainstBothClasses) {
  const GroundTruthList gts{Gt(0, 0, 10, 10, /*label=*/0)};
  const DetectionList dets{Det(0, 0, 10, 10, 0.9, /*label=*/1)};
  // Class 0: GT but no detection -> 0. Class 1: detection but no GT -> 0.
  EXPECT_DOUBLE_EQ(FrameMeanAp(dets, gts, {}), 0.0);
}

TEST(ApTest, MeanAcrossClasses) {
  const GroundTruthList gts{Gt(0, 0, 10, 10, 0), Gt(50, 50, 10, 10, 1)};
  const DetectionList dets{Det(0, 0, 10, 10, 0.9, 0)};  // class 1 missed
  EXPECT_NEAR(FrameMeanAp(dets, gts, {}), 0.5, 1e-12);
}

TEST(ApTest, IouThresholdMatters) {
  const GroundTruthList gts{Gt(0, 0, 10, 10)};
  const DetectionList dets{Det(3, 0, 10, 10, 0.9)};  // IoU = 7/13 ≈ 0.538
  ApOptions loose;
  loose.iou_threshold = 0.5;
  ApOptions strict;
  strict.iou_threshold = 0.75;
  EXPECT_DOUBLE_EQ(FrameMeanAp(dets, gts, loose), 1.0);
  EXPECT_DOUBLE_EQ(FrameMeanAp(dets, gts, strict), 0.0);
}

TEST(ApTest, DifficultGtExcluded) {
  const GroundTruthList gts{Gt(0, 0, 10, 10, 0, /*difficult=*/true)};
  // Nothing detected and the only GT is difficult: perfect by convention.
  EXPECT_DOUBLE_EQ(FrameMeanAp({}, gts, {}), 1.0);
  // Detecting the difficult object is ignored (neither rewarded nor
  // penalized) but the spurious-class rule still applies via class union.
  const DetectionList dets{Det(0, 0, 10, 10, 0.9)};
  EXPECT_DOUBLE_EQ(FrameMeanAp(dets, gts, {}), 1.0);
}

// Removing a detection never *increases* continuous AP when the removed
// detection is a top-ranked true positive.
TEST(ApTest, RemovingTopTpNeverIncreasesAp) {
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    GroundTruthList gts;
    DetectionList dets;
    const int n = 3 + static_cast<int>(rng.UniformInt(4));
    for (int i = 0; i < n; ++i) {
      const double x = 20.0 * i;
      gts.push_back(Gt(x, 0, 10, 10));
      dets.push_back(Det(x, 0, 10, 10, rng.Uniform(0.5, 1.0)));
    }
    const double full_ap = FrameMeanAp(dets, gts, {});
    SortByConfidenceDesc(&dets);
    dets.erase(dets.begin());
    const double reduced_ap = FrameMeanAp(dets, gts, {});
    EXPECT_LE(reduced_ap, full_ap + 1e-9);
  }
}

TEST(ApTest, DetectionsAsGroundTruthFiltersByConfidence) {
  const DetectionList ref{Det(0, 0, 10, 10, 0.9), Det(5, 5, 10, 10, 0.2)};
  const GroundTruthList gt = DetectionsAsGroundTruth(ref, 0.5);
  ASSERT_EQ(gt.size(), 1u);
  EXPECT_DOUBLE_EQ(gt[0].box.x1, 0.0);
  EXPECT_FALSE(gt[0].difficult);
}

TEST(ApTest, DatasetMeanApPoolsAcrossFrames) {
  // Frame 1: perfect. Frame 2: missed object. Pooled AP for the class
  // reflects both frames (not the average of per-frame APs).
  std::vector<DetectionList> dets{{Det(0, 0, 10, 10, 0.9)}, {}};
  std::vector<GroundTruthList> gts{{Gt(0, 0, 10, 10)}, {Gt(0, 0, 10, 10)}};
  const double map = DatasetMeanAp(dets, gts, {});
  EXPECT_NEAR(map, 0.5, 1e-12);
}

TEST(ApTest, DatasetMeanApEmpty) {
  EXPECT_DOUBLE_EQ(DatasetMeanAp({}, {}, {}), 1.0);
}

TEST(ApTest, SingleClassApZeroGtConventions) {
  EXPECT_DOUBLE_EQ(SingleClassAp({}, {}, {}), 1.0);
  EXPECT_DOUBLE_EQ(SingleClassAp({Det(0, 0, 1, 1, 0.5)}, {}, {}), 0.0);
}

// Interpolation comparison: 11-point and 101-point should not exceed the
// continuous AP by more than a sampling artifact and agree on perfect input.
class ApInterpolationTest
    : public ::testing::TestWithParam<ApInterpolation> {};

TEST_P(ApInterpolationTest, BoundedInUnitInterval) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    GroundTruthList gts;
    DetectionList dets;
    for (int i = 0; i < 5; ++i) {
      const double x = 30.0 * i;
      gts.push_back(Gt(x, 0, 10, 10));
      if (rng.Bernoulli(0.7)) {
        dets.push_back(
            Det(x + rng.Uniform(-2, 2), 0, 10, 10, rng.Uniform(0.1, 1.0)));
      }
      if (rng.Bernoulli(0.3)) {
        dets.push_back(Det(500 + 30.0 * i, 0, 10, 10, rng.Uniform(0.1, 1.0)));
      }
    }
    ApOptions opt;
    opt.interpolation = GetParam();
    const double ap = FrameMeanAp(dets, gts, opt);
    EXPECT_GE(ap, 0.0);
    EXPECT_LE(ap, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, ApInterpolationTest,
                         ::testing::Values(ApInterpolation::kContinuous,
                                           ApInterpolation::k101Point,
                                           ApInterpolation::k11Point));

// ------------------------------------------------------ detection utils --

TEST(DetectionUtilTest, SortByConfidenceIsStable) {
  DetectionList dets{Det(0, 0, 1, 1, 0.5, 1), Det(1, 0, 1, 1, 0.9, 2),
                     Det(2, 0, 1, 1, 0.5, 3)};
  SortByConfidenceDesc(&dets);
  EXPECT_EQ(dets[0].label, 2);
  EXPECT_EQ(dets[1].label, 1);  // stable: first 0.5 stays ahead
  EXPECT_EQ(dets[2].label, 3);
}

TEST(DetectionUtilTest, Filters) {
  const DetectionList dets{Det(0, 0, 1, 1, 0.5, 1), Det(0, 0, 1, 1, 0.9, 2)};
  EXPECT_EQ(FilterByClass(dets, 1).size(), 1u);
  EXPECT_EQ(FilterByClass(dets, 3).size(), 0u);
  EXPECT_EQ(FilterByConfidence(dets, 0.6).size(), 1u);
  EXPECT_EQ(FilterByConfidence(dets, 0.0).size(), 2u);
}

TEST(DetectionUtilTest, DistinctLabels) {
  const DetectionList dets{Det(0, 0, 1, 1, 0.5, 3), Det(0, 0, 1, 1, 0.9, 1),
                           Det(0, 0, 1, 1, 0.9, 3)};
  const auto labels = DistinctLabels(dets);
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0], 1);
  EXPECT_EQ(labels[1], 3);
}

}  // namespace
}  // namespace vqe
