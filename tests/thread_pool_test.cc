// Tests for the shared worker-pool subsystem: ParallelFor's exactly-once
// index contract, nested-region serialization, knob resolution, and the
// shutdown contract (accepted tasks always run; submissions during/after
// shutdown are rejected deterministically, never dropped or hung).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace vqe {
namespace {

TEST(ThreadPoolTest, SubmitRunsTask) {
  std::atomic<int> ran{0};
  std::mutex mu;
  std::condition_variable cv;
  ASSERT_TRUE(SharedThreadPool().Submit([&] {
    ran.store(1);
    cv.notify_one();
  }));
  std::unique_lock<std::mutex> lock(mu);
  cv.wait_for(lock, std::chrono::seconds(10), [&] { return ran.load() == 1; });
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0);
  int ran = 0;
  EXPECT_TRUE(pool.Submit([&] { ran = 1; }));
  EXPECT_EQ(ran, 1);
}

TEST(ThreadPoolShutdownTest, SubmitAfterShutdownIsRejected) {
  ThreadPool pool(2);
  pool.Shutdown();
  bool ran = false;
  EXPECT_FALSE(pool.Submit([&] { ran = true; }));
  // Rejection means "will never run", not "dropped silently": the task was
  // refused at the submission site and must stay unexecuted.
  EXPECT_FALSE(ran);
  // Shutdown is idempotent; rejection stays deterministic.
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([&] { ran = true; }));
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolShutdownTest, ZeroWorkerPoolRejectsAfterShutdown) {
  // The inline-execution path must honor the same contract as the queued
  // path: after Shutdown, nothing runs inline either.
  ThreadPool pool(0);
  pool.Shutdown();
  bool ran = false;
  EXPECT_FALSE(pool.Submit([&] { ran = true; }));
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolShutdownTest, AcceptedTasksAllRunBeforeJoin) {
  // Every task accepted before Shutdown must execute exactly once even if
  // the destructor begins immediately — the queue drains, nothing is
  // dropped.
  constexpr int kTasks = 200;
  std::vector<std::atomic<int>> ran(kTasks);
  for (auto& r : ran) r.store(0);
  {
    ThreadPool pool(3);
    for (int i = 0; i < kTasks; ++i) {
      ASSERT_TRUE(pool.Submit([&ran, i] { ran[i].fetch_add(1); }));
    }
    // Destructor: Shutdown + drain + join.
  }
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(ran[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPoolShutdownTest, ConcurrentSubmitDuringShutdownStress) {
  // Submissions racing Shutdown must each resolve to exactly one of
  // {accepted-and-ran, rejected-and-never-ran} — no hangs, no silent
  // drops, no double-execution. Run under -DVQE_SANITIZE=thread; this is
  // the TSan regression test for the shutdown handshake.
  for (int round = 0; round < 50; ++round) {
    auto pool = std::make_unique<ThreadPool>(2);
    std::atomic<int> accepted{0};
    std::atomic<int> executed{0};
    std::atomic<bool> go{false};
    constexpr int kSubmitters = 4;
    constexpr int kPerThread = 25;
    std::vector<std::thread> submitters;
    submitters.reserve(kSubmitters);
    for (int s = 0; s < kSubmitters; ++s) {
      submitters.emplace_back([&] {
        while (!go.load()) std::this_thread::yield();
        for (int i = 0; i < kPerThread; ++i) {
          if (pool->Submit([&executed] { executed.fetch_add(1); })) {
            accepted.fetch_add(1);
          }
        }
      });
    }
    go.store(true);
    pool->Shutdown();
    for (auto& t : submitters) t.join();
    pool.reset();  // joins workers; all accepted tasks have drained
    EXPECT_EQ(executed.load(), accepted.load()) << "round=" << round;
    EXPECT_LE(accepted.load(), kSubmitters * kPerThread);
  }
}

TEST(ThreadPoolShutdownTest, ParallelForSurvivesSubmissionRejection) {
  // ParallelFor submits helpers into the shared pool; if the pool rejects
  // (e.g. process teardown), the caller must still complete every index
  // inline rather than hang on the completion handshake. We can't shut
  // down the shared pool here (other tests use it), so this exercises the
  // fallback by construction: a zero-worker pool region runs everything
  // on the calling thread and must still cover every index.
  std::vector<int> hits(64, 0);
  ParallelFor(64, 1, [&](size_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, EveryIndexRunsExactlyOnce) {
  for (int parallelism : {1, 2, 8, 0}) {
    constexpr size_t kN = 300;
    std::vector<std::atomic<int>> counts(kN);
    for (auto& c : counts) c.store(0);
    ParallelFor(kN, parallelism,
                [&](size_t i) { counts[i].fetch_add(1); });
    for (size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(counts[i].load(), 1) << "i=" << i << " p=" << parallelism;
    }
  }
}

TEST(ParallelForTest, EmptyAndSingleton) {
  int calls = 0;
  ParallelFor(0, 0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(1, 8, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, SlotWritesAreDeterministic) {
  constexpr size_t kN = 500;
  std::vector<double> serial(kN), parallel(kN);
  auto fill = [](std::vector<double>& out) {
    return [&out](size_t i) {
      out[i] = static_cast<double>(i) * 1.5 + 1.0 / (1.0 + i);
    };
  };
  ParallelFor(kN, 1, fill(serial));
  ParallelFor(kN, 8, fill(parallel));
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelForTest, ChunkedClaimingCoversEveryIndexExactlyOnce) {
  // The chunked scheduler claims ~8 ranges per worker instead of one index
  // per fetch_add; the disjoint-range partition must still visit every
  // index exactly once for sizes that do not divide evenly into chunks,
  // at any parallelism level.
  for (const size_t n : {1u, 2u, 7u, 63u, 64u, 65u, 1001u}) {
    for (const int workers : {0, 1, 2, 3, 8, 64}) {
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h.store(0);
      ParallelFor(n, workers, [&](size_t i) {
        ASSERT_LT(i, n);
        hits[i].fetch_add(1, std::memory_order_relaxed);
      });
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "n=" << n << " workers=" << workers
                                     << " index=" << i;
      }
    }
  }
}

TEST(ParallelForTest, CompletionHandshakeStress) {
  // Regression test for a use-after-scope in the completion handshake:
  // workers used to notify the done condition variable after releasing its
  // mutex, so ParallelFor could observe pending == 0, return, and destroy
  // the stack-local handshake state while a worker was still about to call
  // notify_one() on it. Thousands of short regions maximize that window;
  // run under -DVQE_SANITIZE=thread to surface any reintroduction.
  std::atomic<size_t> total{0};
  for (int round = 0; round < 2000; ++round) {
    ParallelFor(3, 0, [&](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 6000u);
}

TEST(ParallelForTest, WorkerExceptionRethrownOnCaller) {
  // A throwing body must not escape into the pool's worker loop (which would
  // std::terminate the process); the first exception is rethrown on the
  // calling thread and the pool stays usable afterwards. Repeated rounds
  // stress the cancel-then-rethrow handshake; run under -DVQE_SANITIZE=thread
  // to check the error slot's synchronization.
  for (int round = 0; round < 200; ++round) {
    bool caught = false;
    try {
      ParallelFor(64, 0, [&](size_t i) {
        if (i % 7 == 3) throw std::runtime_error("scripted failure");
      });
    } catch (const std::runtime_error& e) {
      caught = true;
      EXPECT_EQ(std::string(e.what()), "scripted failure");
    }
    EXPECT_TRUE(caught) << "round=" << round;
  }
  // The pool must still process normal regions after absorbing exceptions.
  std::atomic<size_t> total{0};
  ParallelFor(100, 0,
              [&](size_t) { total.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(total.load(), 100u);
}

TEST(ParallelForTest, SerialPathPropagatesExceptions) {
  EXPECT_THROW(
      ParallelFor(5, 1, [](size_t) { throw std::logic_error("serial"); }),
      std::logic_error);
}

TEST(ParallelForTest, NestedRegionsRunSerially) {
  // Inner ParallelFor bodies must execute on the thread already inside the
  // outer region (no pool re-entry, no deadlock). On a single-core host the
  // outer loop itself degrades to serial, which deliberately does NOT count
  // as a region (a serialized trial loop must still allow frame-level
  // parallelism), so the region assertions only apply when the shared pool
  // can actually go parallel.
  const bool can_parallel = SharedThreadPool().num_threads() > 0;
  std::atomic<int> total{0};
  std::atomic<bool> saw_nested_parallel{false};
  ParallelFor(8, 0, [&](size_t) {
    if (can_parallel) {
      EXPECT_TRUE(InParallelRegion());
      if (ResolveWorkers(/*parallelism=*/0, /*n=*/100) != 1) {
        saw_nested_parallel.store(true);
      }
    }
    ParallelFor(10, 0, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 80);
  EXPECT_FALSE(saw_nested_parallel.load());
  EXPECT_FALSE(InParallelRegion());
}

TEST(ResolveWorkersTest, KnobSemantics) {
  EXPECT_EQ(ResolveWorkers(1, 100), 1);     // explicit serial
  EXPECT_EQ(ResolveWorkers(8, 1), 1);       // one item
  EXPECT_EQ(ResolveWorkers(0, 0), 1);       // nothing to do
  const int cap = SharedThreadPool().num_threads() + 1;
  EXPECT_LE(ResolveWorkers(0, 1000), cap);  // auto caps at the pool
  EXPECT_LE(ResolveWorkers(64, 1000), cap); // explicit caps at the pool
  EXPECT_LE(ResolveWorkers(3, 2), 2);       // caps at n
}

}  // namespace
}  // namespace vqe
