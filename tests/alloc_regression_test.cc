// Zero-allocation regression gate for the fused hot path. Evaluating a
// frame's mask lattice must stop touching the heap once the scratch has
// warmed up: the fused-output buffer is reserved at context construction,
// fusion/scoring transients live in the thread's FrameArena, and the
// arena's blocks are recycled between masks. This test instruments global
// operator new and the arena's block counter, warms a FrameEvalContext
// with one full mask pass, then asserts a second identical pass performs
// exactly zero heap allocations — for both a cache-consuming fusion
// method (NMS) and the cache-skipping default (WBF).

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/arena.h"
#include "core/engine.h"
#include "core/frame_eval.h"
#include "core/frame_matrix.h"
#include "core/mes.h"
#include "models/model_zoo.h"
#include "sim/dataset.h"

namespace {

std::atomic<std::uint64_t> g_heap_allocs{0};

}  // namespace

// Counting overrides. Deallocation functions are pass-through: only
// allocation frequency matters here. GCC cannot see that every pointer
// these deletes free came from the malloc-backed news above, so quiet its
// mismatched-new-delete guess.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace vqe {
namespace {

DetectorPool MakePool(int m) {
  const std::vector<std::string> names = {
      "yolov7-tiny@clear", "yolov7-tiny@night", "yolov7-tiny@rainy",
      "yolov7@clear",      "yolov7-micro@clear", "yolov7@night"};
  std::vector<DetectorProfile> profiles;
  for (int i = 0; i < m; ++i) {
    profiles.push_back(
        std::move(ParseDetectorName(names[static_cast<size_t>(i)])).value());
  }
  return std::move(BuildPool(profiles)).value();
}

Video MakeVideo(double scene_scale, uint64_t seed) {
  const DatasetSpec* spec = *DatasetCatalog::Default().Find("nusc");
  SampleOptions sample;
  sample.scene_scale = scene_scale;
  sample.seed = seed;
  return std::move(SampleVideo(*spec, sample)).value();
}

struct PassCounters {
  std::uint64_t heap_allocs = 0;
  std::uint64_t arena_blocks = 0;
  double checksum = 0.0;
};

// One full pass over the frame's mask lattice, with heap and arena-block
// allocation counts taken around it.
PassCounters MaskPass(FrameEvalContext& ctx, uint32_t num_masks) {
  PassCounters c;
  const std::uint64_t heap_before =
      g_heap_allocs.load(std::memory_order_relaxed);
  const std::uint64_t blocks_before =
      FrameArena::ThreadLocal().stats().block_allocs;
  for (EnsembleId mask = 1; mask <= num_masks; ++mask) {
    const MaskEvaluation e = ctx.Evaluate(mask);
    c.checksum += e.est_ap + e.true_ap + e.cost_ms;
  }
  c.heap_allocs =
      g_heap_allocs.load(std::memory_order_relaxed) - heap_before;
  c.arena_blocks =
      FrameArena::ThreadLocal().stats().block_allocs - blocks_before;
  return c;
}

class AllocRegressionTest : public ::testing::TestWithParam<FusionKind> {};

TEST_P(AllocRegressionTest, SteadyStateMaskLoopIsAllocationFree) {
  const int m = 6;
  const DetectorPool pool = MakePool(m);
  const Video video = MakeVideo(/*scene_scale=*/0.02, /*seed=*/23);
  ASSERT_GE(video.size(), 2u);

  MatrixOptions options;
  options.fusion = GetParam();
  auto fusion =
      std::move(CreateEnsembleMethod(options.fusion, options.fusion_options))
          .value();
  const uint32_t num_masks = NumEnsembles(m);

  for (size_t t = 0; t < std::min<size_t>(video.size(), 3); ++t) {
    FrameEvalContext ctx(video.frames[t], pool, /*trial_seed=*/23, options,
                         *fusion);
    // Warm-up pass: may allocate (fused-buffer reserve already happened in
    // the constructor; the arena may still grow to its high-water mark).
    const PassCounters warm = MaskPass(ctx, num_masks);
    // Steady-state pass: bit-identical work, zero heap traffic.
    const PassCounters steady = MaskPass(ctx, num_masks);

    EXPECT_EQ(steady.heap_allocs, 0u)
        << FusionKindToString(options.fusion) << " frame " << t
        << ": steady-state mask pass hit the heap";
    EXPECT_EQ(steady.arena_blocks, 0u)
        << FusionKindToString(options.fusion) << " frame " << t
        << ": arena grew after warm-up";
    // Identical inputs must produce identical outputs (the counters'
    // absence of drift is only meaningful if the work really repeated).
    EXPECT_EQ(warm.checksum, steady.checksum);
  }
}

INSTANTIATE_TEST_SUITE_P(FusionKinds, AllocRegressionTest,
                         ::testing::Values(FusionKind::kWbf, FusionKind::kNms,
                                           FusionKind::kConsensus),
                         [](const ::testing::TestParamInfo<FusionKind>& info) {
                           switch (info.param) {
                             case FusionKind::kWbf: return std::string("Wbf");
                             case FusionKind::kNms: return std::string("Nms");
                             case FusionKind::kConsensus:
                               return std::string("Consensus");
                             default: return std::string("Other");
                           }
                         });

// The engine frame loop with observability DISABLED (the default) must be
// as quiet as the mask lattice underneath it: after the warm-up frames,
// every further StepFrame runs without touching the heap. This is the
// zero-cost half of the obs contract — the one `enabled()` branch per
// instrumentation site compiles down to a skipped pointer check, never a
// registration or a buffer.
TEST(EngineSteadyStateTest, DisabledObsFrameLoopIsAllocationFree) {
  const DetectorPool pool = MakePool(3);
  const Video video = MakeVideo(/*scene_scale=*/0.02, /*seed=*/23);
  ASSERT_GE(video.size(), 8u);
  const auto matrix =
      BuildFrameMatrix(video, pool, /*trial_seed=*/23, MatrixOptions{});
  ASSERT_TRUE(matrix.ok()) << matrix.status().ToString();
  MatrixEvaluationSource source(*matrix);

  MesOptions mes;
  mes.gamma = 2;
  MesStrategy strategy(mes);
  EngineOptions options;
  options.strategy_seed = 23;
  options.compute_regret = false;
  auto run = EngineRun::Create(source, &strategy, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  // Warm-up: the first half of the video may allocate (accumulator growth,
  // arena high-water marks, MES initialization episodes).
  const size_t warm = video.size() / 2;
  while (!(*run)->done() && (*run)->next_frame() < warm) {
    ASSERT_TRUE((*run)->StepFrame().ok());
  }
  ASSERT_FALSE((*run)->done());

  const std::uint64_t heap_before =
      g_heap_allocs.load(std::memory_order_relaxed);
  size_t steady_frames = 0;
  while (!(*run)->done()) {
    ASSERT_TRUE((*run)->StepFrame().ok());
    ++steady_frames;
  }
  EXPECT_GT(steady_frames, 0u);
  EXPECT_EQ(g_heap_allocs.load(std::memory_order_relaxed) - heap_before, 0u)
      << "steady-state StepFrame hit the heap with obs disabled";
}

// The arena itself must also be quiet in steady state: repeated
// scope-bounded workloads of the same shape reuse retained blocks.
TEST(ArenaSteadyStateTest, RepeatedScopesDoNotGrowArena) {
  FrameArena arena;
  auto workload = [&arena] {
    ArenaScope scope(arena);
    double* xs = arena.AllocateArray<double>(4096);
    for (int i = 0; i < 4096; ++i) xs[i] = static_cast<double>(i);
    ArenaVector<int> v = MakeArenaVector<int>(arena);
    for (int i = 0; i < 512; ++i) v.push_back(i);
  };
  workload();  // warm-up
  const std::uint64_t blocks = arena.stats().block_allocs;
  const std::uint64_t heap_before =
      g_heap_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 100; ++i) workload();
  EXPECT_EQ(arena.stats().block_allocs, blocks);
  EXPECT_EQ(g_heap_allocs.load(std::memory_order_relaxed), heap_before);
}

}  // namespace
}  // namespace vqe
