// Tests for the video-query dialect: lexer, parser, predicate evaluation,
// and the streaming executor.

#include <gtest/gtest.h>

#include "query/executor.h"
#include "query/explain.h"
#include "query/lexer.h"
#include "query/parser.h"
#include "query/predicate.h"

namespace vqe {
namespace {

// ------------------------------------------------------------------ lexer --

TEST(LexerTest, TokenizesBasicQuery) {
  const auto tokens = Tokenize("SELECT frameID FROM (x)");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 7u);  // SELECT frameID FROM ( x ) END
  EXPECT_EQ((*tokens)[0].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[3].type, TokenType::kLParen);
  EXPECT_EQ((*tokens)[6].type, TokenType::kEnd);
}

TEST(LexerTest, IdentifiersAllowModelAndDatasetNames) {
  const auto tokens = Tokenize("yolov7-tiny@night c&n bdd-rainy");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 4u);
  EXPECT_EQ((*tokens)[0].text, "yolov7-tiny@night");
  EXPECT_EQ((*tokens)[1].text, "c&n");
  EXPECT_EQ((*tokens)[2].text, "bdd-rainy");
}

TEST(LexerTest, NumbersAndOperators) {
  const auto tokens = Tokenize(">= 2.5 != 3 < 1");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, ">=");
  EXPECT_DOUBLE_EQ((*tokens)[1].number, 2.5);
  EXPECT_EQ((*tokens)[2].text, "!=");
  EXPECT_EQ((*tokens)[4].text, "<");
}

TEST(LexerTest, StringsAndErrors) {
  const auto ok = Tokenize("'hello world'");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ((*ok)[0].type, TokenType::kString);
  EXPECT_EQ((*ok)[0].text, "hello world");

  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
  EXPECT_FALSE(Tokenize("a # b").ok());
}

// ----------------------------------------------------------------- parser --

constexpr const char* kBasicQuery =
    "SELECT frameID FROM (PROCESS nusc PRODUCE frameID, Detections "
    "USING MES(yolov7-tiny@clear, yolov7-tiny@night; REF)) "
    "WHERE COUNT(car) >= 2";

TEST(ParserTest, ParsesBasicQuery) {
  const auto q = ParseQuery(kBasicQuery);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->select_column, "frameID");
  EXPECT_EQ(q->video_name, "nusc");
  EXPECT_EQ(q->using_clause.strategy, "MES");
  ASSERT_EQ(q->using_clause.detector_names.size(), 2u);
  EXPECT_EQ(q->using_clause.detector_names[1], "yolov7-tiny@night");
  EXPECT_TRUE(q->using_clause.has_reference);
  ASSERT_NE(q->where, nullptr);
  EXPECT_EQ(q->where->type, Predicate::Type::kComparison);
  EXPECT_EQ(q->where->aggregate.kind, AggregateKind::kCount);
  EXPECT_EQ(q->where->aggregate.class_name, "car");
  EXPECT_EQ(q->where->op, CompareOp::kGe);
  EXPECT_DOUBLE_EQ(q->where->value, 2.0);
}

TEST(ParserTest, KeywordsCaseInsensitive) {
  const auto q = ParseQuery(
      "select frameID from (process nusc produce frameID, detections "
      "using mes(*; ref))");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->using_clause.detector_names.empty());  // '*' = default pool
  EXPECT_TRUE(q->using_clause.has_reference);
}

TEST(ParserTest, NoWhereClauseMatchesAll) {
  const auto q = ParseQuery(
      "SELECT frameID FROM (PROCESS nusc-night PRODUCE frameID, Detections "
      "USING BF(*))");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->where, nullptr);
  EXPECT_FALSE(q->using_clause.has_reference);
}

TEST(ParserTest, BooleanOperatorsAndPrecedence) {
  const auto q = ParseQuery(
      "SELECT frameID FROM (PROCESS nusc PRODUCE frameID, Detections "
      "USING MES(*; REF)) "
      "WHERE COUNT(car) >= 1 OR COUNT(bus) >= 1 AND NOT EXISTS(pedestrian)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  // OR binds loosest: root is OR with AND on the right.
  ASSERT_EQ(q->where->type, Predicate::Type::kOr);
  EXPECT_EQ(q->where->lhs->type, Predicate::Type::kComparison);
  ASSERT_EQ(q->where->rhs->type, Predicate::Type::kAnd);
  EXPECT_EQ(q->where->rhs->rhs->type, Predicate::Type::kNot);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  const auto q = ParseQuery(
      "SELECT frameID FROM (PROCESS nusc PRODUCE frameID, Detections "
      "USING MES(*; REF)) "
      "WHERE (COUNT(car) >= 1 OR COUNT(bus) >= 1) AND COUNT(truck) = 0");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->where->type, Predicate::Type::kAnd);
  EXPECT_EQ(q->where->lhs->type, Predicate::Type::kOr);
}

TEST(ParserTest, BudgetAndLimit) {
  const auto q = ParseQuery(
      "SELECT frameID FROM (PROCESS nusc PRODUCE frameID, Detections "
      "USING MES-B(*; REF)) WHERE COUNT(*) >= 1 BUDGET 5000 LIMIT 10");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_DOUBLE_EQ(q->budget_ms, 5000.0);
  EXPECT_EQ(q->limit, 10u);
}

TEST(ParserTest, ProcessModifiers) {
  const auto q = ParseQuery(
      "SELECT frameID FROM (PROCESS nusc SCALE 0.1 SEED 42 STRIDE 3 "
      "PRODUCE frameID, Detections USING MES(*; REF))");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_DOUBLE_EQ(q->process.scale, 0.1);
  EXPECT_EQ(q->process.seed, 42u);
  EXPECT_EQ(q->process.stride, 3u);

  // Defaults when absent.
  const auto q2 = ParseQuery(
      "SELECT frameID FROM (PROCESS nusc PRODUCE frameID, Detections "
      "USING MES(*; REF))");
  ASSERT_TRUE(q2.ok());
  EXPECT_DOUBLE_EQ(q2->process.scale, 0.0);
  EXPECT_EQ(q2->process.stride, 1u);

  // Invalid modifier values.
  EXPECT_FALSE(ParseQuery("SELECT frameID FROM (PROCESS nusc SCALE 0 "
                          "PRODUCE frameID, Detections USING MES(*; REF))")
                   .ok());
  EXPECT_FALSE(ParseQuery("SELECT frameID FROM (PROCESS nusc SCALE 1.5 "
                          "PRODUCE frameID, Detections USING MES(*; REF))")
                   .ok());
  EXPECT_FALSE(ParseQuery("SELECT frameID FROM (PROCESS nusc STRIDE 0 "
                          "PRODUCE frameID, Detections USING MES(*; REF))")
                   .ok());
  EXPECT_FALSE(ParseQuery("SELECT frameID FROM (PROCESS nusc SEED 0 "
                          "PRODUCE frameID, Detections USING MES(*; REF))")
                   .ok());
}

TEST(ParserTest, ExistsDesugarsToGeOne) {
  const auto q = ParseQuery(
      "SELECT frameID FROM (PROCESS nusc PRODUCE frameID, Detections "
      "USING MES(*; REF)) WHERE EXISTS(car)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where->aggregate.kind, AggregateKind::kExists);
  EXPECT_EQ(q->where->op, CompareOp::kGe);
  EXPECT_DOUBLE_EQ(q->where->value, 1.0);
}

TEST(ParserTest, ConfidenceAggregates) {
  const auto q = ParseQuery(
      "SELECT frameID FROM (PROCESS nusc PRODUCE frameID, Detections "
      "USING MES(*; REF)) WHERE MAX_CONF(car) > 0.8 AND AVG_CONF(*) >= 0.3");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->where->lhs->aggregate.kind, AggregateKind::kMaxConf);
  EXPECT_EQ(q->where->rhs->aggregate.kind, AggregateKind::kAvgConf);
  EXPECT_EQ(q->where->rhs->aggregate.class_name, "*");
}

TEST(ParserTest, RejectsMalformedQueries) {
  const char* bad[] = {
      "",
      "SELECT detections FROM (PROCESS nusc PRODUCE frameID, Detections "
      "USING MES(*; REF))",  // only frameID selectable
      "SELECT frameID FROM PROCESS nusc",  // missing parens
      "SELECT frameID FROM (PROCESS nusc PRODUCE frameID USING MES(*; REF))",
      "SELECT frameID FROM (PROCESS nusc PRODUCE frameID, Detections "
      "USING MES(*; LIDAR))",  // REF misspelt
      "SELECT frameID FROM (PROCESS nusc PRODUCE frameID, Detections "
      "USING MES(*; REF)) WHERE COUNT(car) >=",  // dangling operator
      "SELECT frameID FROM (PROCESS nusc PRODUCE frameID, Detections "
      "USING MES(*; REF)) WHERE FROBNICATE(car) > 1",  // unknown aggregate
      "SELECT frameID FROM (PROCESS nusc PRODUCE frameID, Detections "
      "USING MES(*; REF)) LIMIT 0",  // bad limit
      "SELECT frameID FROM (PROCESS nusc PRODUCE frameID, Detections "
      "USING MES(*; REF)) BUDGET 0",  // bad budget
      "SELECT frameID FROM (PROCESS nusc PRODUCE frameID, Detections "
      "USING MES(*; REF)) trailing garbage",
  };
  for (const char* sql : bad) {
    EXPECT_FALSE(ParseQuery(sql).ok()) << sql;
  }
}

// -------------------------------------------------------------- predicate --

Detection Det(double conf, ClassId label) {
  Detection d;
  d.box = BBox::FromXYWH(0, 0, 10, 10);
  d.confidence = conf;
  d.label = label;
  return d;
}

TEST(PredicateTest, CountAggregate) {
  AggregateExpr agg;
  agg.kind = AggregateKind::kCount;
  agg.class_name = "car";  // class id 0
  const DetectionList dets{Det(0.9, 0), Det(0.8, 0), Det(0.9, 1),
                           Det(0.1, 0)};  // last below min_confidence
  EXPECT_DOUBLE_EQ(EvaluateAggregate(agg, dets), 2.0);
  agg.class_name = "*";
  EXPECT_DOUBLE_EQ(EvaluateAggregate(agg, dets), 3.0);
  agg.class_name = "unknown-class";
  EXPECT_DOUBLE_EQ(EvaluateAggregate(agg, dets), 0.0);
}

TEST(PredicateTest, ConfidenceAggregates) {
  AggregateExpr max_conf;
  max_conf.kind = AggregateKind::kMaxConf;
  AggregateExpr avg_conf;
  avg_conf.kind = AggregateKind::kAvgConf;
  const DetectionList dets{Det(0.9, 0), Det(0.5, 0)};
  EXPECT_DOUBLE_EQ(EvaluateAggregate(max_conf, dets), 0.9);
  EXPECT_DOUBLE_EQ(EvaluateAggregate(avg_conf, dets), 0.7);
  EXPECT_DOUBLE_EQ(EvaluateAggregate(max_conf, {}), 0.0);
  EXPECT_DOUBLE_EQ(EvaluateAggregate(avg_conf, {}), 0.0);
}

TEST(PredicateTest, BooleanEvaluation) {
  auto cmp = [](AggregateKind kind, const std::string& cls, CompareOp op,
                double value) {
    auto p = std::make_unique<Predicate>();
    p->type = Predicate::Type::kComparison;
    p->aggregate.kind = kind;
    p->aggregate.class_name = cls;
    p->op = op;
    p->value = value;
    return p;
  };
  const DetectionList dets{Det(0.9, 0), Det(0.8, 0), Det(0.9, 2)};

  auto both = std::make_unique<Predicate>();
  both->type = Predicate::Type::kAnd;
  both->lhs = cmp(AggregateKind::kCount, "car", CompareOp::kGe, 2);
  both->rhs = cmp(AggregateKind::kExists, "bus", CompareOp::kGe, 1);
  EXPECT_TRUE(EvaluatePredicate(both.get(), dets));

  auto negated = std::make_unique<Predicate>();
  negated->type = Predicate::Type::kNot;
  negated->lhs = cmp(AggregateKind::kCount, "car", CompareOp::kGe, 2);
  EXPECT_FALSE(EvaluatePredicate(negated.get(), dets));

  auto either = std::make_unique<Predicate>();
  either->type = Predicate::Type::kOr;
  either->lhs = cmp(AggregateKind::kCount, "truck", CompareOp::kGe, 1);
  either->rhs = cmp(AggregateKind::kCount, "car", CompareOp::kGe, 1);
  EXPECT_TRUE(EvaluatePredicate(either.get(), dets));

  EXPECT_TRUE(EvaluatePredicate(nullptr, dets));  // no WHERE: match all
}

TEST(PredicateTest, ComparisonOperators) {
  auto make = [](CompareOp op, double value) {
    Predicate p;
    p.type = Predicate::Type::kComparison;
    p.aggregate.kind = AggregateKind::kCount;
    p.aggregate.class_name = "*";
    p.op = op;
    p.value = value;
    return p;
  };
  const DetectionList dets{Det(0.9, 0), Det(0.8, 0)};  // count = 2
  EXPECT_TRUE(EvaluatePredicate(&*std::make_unique<Predicate>(
                                    make(CompareOp::kEq, 2)),
                                dets));
  Predicate p;
  p = make(CompareOp::kNe, 3);
  EXPECT_TRUE(EvaluatePredicate(&p, dets));
  p = make(CompareOp::kLt, 3);
  EXPECT_TRUE(EvaluatePredicate(&p, dets));
  p = make(CompareOp::kLe, 2);
  EXPECT_TRUE(EvaluatePredicate(&p, dets));
  p = make(CompareOp::kGt, 2);
  EXPECT_FALSE(EvaluatePredicate(&p, dets));
  p = make(CompareOp::kGe, 3);
  EXPECT_FALSE(EvaluatePredicate(&p, dets));
}

TEST(PredicateTest, ValidationCatchesUnknownClass) {
  Predicate p;
  p.type = Predicate::Type::kComparison;
  p.aggregate.class_name = "unicorn";
  EXPECT_FALSE(ValidatePredicate(&p).ok());
  p.aggregate.class_name = "car";
  EXPECT_TRUE(ValidatePredicate(&p).ok());
  p.aggregate.class_name = "*";
  EXPECT_TRUE(ValidatePredicate(&p).ok());
  EXPECT_TRUE(ValidatePredicate(nullptr).ok());
}

TEST(PredicateTest, ValidationCatchesMalformedTrees) {
  Predicate p;
  p.type = Predicate::Type::kAnd;  // missing operands
  EXPECT_FALSE(ValidatePredicate(&p).ok());
  p.type = Predicate::Type::kNot;
  EXPECT_FALSE(ValidatePredicate(&p).ok());
}

// --------------------------------------------------------------- executor --

QueryEngineOptions SmallOptions() {
  QueryEngineOptions opt;
  opt.scene_scale = 0.02;
  opt.seed = 3;
  return opt;
}

TEST(ExecutorTest, EndToEndBasicQuery) {
  const auto out = ExecuteQuery(kBasicQuery, SmallOptions());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_GT(out->frames_processed, 100u);
  EXPECT_GT(out->frames_matched, 0u);
  EXPECT_LE(out->frames_matched, out->frames_processed);
  EXPECT_EQ(out->frame_ids.size(), out->frames_matched);
  EXPECT_GT(out->charged_cost_ms, 0.0);
  EXPECT_GT(out->reference_cost_ms, 0.0);
  EXPECT_EQ(out->model_names.size(), 2u);
  // frameIDs ascending.
  for (size_t i = 1; i < out->frame_ids.size(); ++i) {
    EXPECT_LT(out->frame_ids[i - 1], out->frame_ids[i]);
  }
}

TEST(ExecutorTest, DeterministicInSeed) {
  const auto a = ExecuteQuery(kBasicQuery, SmallOptions());
  const auto b = ExecuteQuery(kBasicQuery, SmallOptions());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->frame_ids, b->frame_ids);
}

TEST(ExecutorTest, LimitStopsEarly) {
  QueryEngineOptions opt = SmallOptions();
  const std::string sql = std::string(kBasicQuery) + " LIMIT 5";
  const auto out = ExecuteQuery(sql, opt);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->frames_matched, 5u);
  const auto full = ExecuteQuery(kBasicQuery, opt);
  EXPECT_LT(out->frames_processed, full->frames_processed);
}

TEST(ExecutorTest, BudgetLimitsProcessing) {
  const std::string sql =
      "SELECT frameID FROM (PROCESS nusc PRODUCE frameID, Detections "
      "USING MES-B(yolov7-tiny@clear, yolov7-tiny@night; REF)) "
      "WHERE COUNT(*) >= 1 BUDGET 3000";
  const auto out = ExecuteQuery(sql, SmallOptions());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // 3000ms budget with >= 10ms frames: far fewer than the full video.
  EXPECT_LT(out->frames_processed, 300u);
  EXPECT_LE(out->charged_cost_ms, 3000.0 + 100.0);
}

TEST(ExecutorTest, DefaultPoolWithStar) {
  const auto out = ExecuteQuery(
      "SELECT frameID FROM (PROCESS nusc-night PRODUCE frameID, Detections "
      "USING MES(*; REF))",
      SmallOptions());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->model_names.size(), 5u);  // default nuScenes pool
  EXPECT_EQ(out->frames_matched, out->frames_processed);  // no WHERE
}

TEST(ExecutorTest, NonLearningStrategiesSkipReference) {
  const auto out = ExecuteQuery(
      "SELECT frameID FROM (PROCESS nusc-night PRODUCE frameID, Detections "
      "USING BF(yolov7-tiny@clear, yolov7-tiny@night))",
      SmallOptions());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_DOUBLE_EQ(out->reference_cost_ms, 0.0);
}

TEST(ExecutorTest, ErrorPaths) {
  const QueryEngineOptions opt = SmallOptions();
  // Unknown dataset.
  EXPECT_FALSE(ExecuteQuery("SELECT frameID FROM (PROCESS kitti PRODUCE "
                            "frameID, Detections USING MES(*; REF))",
                            opt)
                   .ok());
  // Unknown detector.
  EXPECT_FALSE(ExecuteQuery("SELECT frameID FROM (PROCESS nusc PRODUCE "
                            "frameID, Detections USING MES(yolo99@clear; "
                            "REF))",
                            opt)
                   .ok());
  // MES without REF.
  EXPECT_FALSE(ExecuteQuery("SELECT frameID FROM (PROCESS nusc PRODUCE "
                            "frameID, Detections USING MES(*))",
                            opt)
                   .ok());
  // Oracle strategy in an online query.
  EXPECT_FALSE(ExecuteQuery("SELECT frameID FROM (PROCESS nusc PRODUCE "
                            "frameID, Detections USING OPT(*))",
                            opt)
                   .ok());
  // MES-B without budget.
  EXPECT_FALSE(ExecuteQuery("SELECT frameID FROM (PROCESS nusc PRODUCE "
                            "frameID, Detections USING MES-B(*; REF))",
                            opt)
                   .ok());
  // Unknown strategy.
  EXPECT_FALSE(ExecuteQuery("SELECT frameID FROM (PROCESS nusc PRODUCE "
                            "frameID, Detections USING ZEUS(*; REF))",
                            opt)
                   .ok());
  // Unknown class in WHERE.
  EXPECT_FALSE(ExecuteQuery("SELECT frameID FROM (PROCESS nusc PRODUCE "
                            "frameID, Detections USING MES(*; REF)) "
                            "WHERE COUNT(unicorn) >= 1",
                            opt)
                   .ok());
  // Bad options.
  QueryEngineOptions bad = opt;
  bad.scene_scale = 0.0;
  EXPECT_FALSE(ExecuteQuery(kBasicQuery, bad).ok());
}

TEST(ExecutorTest, StrideSkipsFrames) {
  QueryEngineOptions opt = SmallOptions();
  const auto full = ExecuteQuery(
      "SELECT frameID FROM (PROCESS nusc-night PRODUCE frameID, Detections "
      "USING BF(yolov7-tiny@clear))",
      opt);
  const auto strided = ExecuteQuery(
      "SELECT frameID FROM (PROCESS nusc-night STRIDE 4 PRODUCE frameID, "
      "Detections USING BF(yolov7-tiny@clear))",
      opt);
  ASSERT_TRUE(full.ok() && strided.ok());
  // Every 4th frame: a quarter of the frames (rounded up), a quarter of
  // the inference cost.
  EXPECT_EQ(strided->frames_processed, (full->frames_processed + 3) / 4);
  EXPECT_LT(strided->charged_cost_ms, 0.3 * full->charged_cost_ms);
  // Emitted frameIDs respect the stride.
  for (int64_t id : strided->frame_ids) {
    EXPECT_EQ(id % 4, 0);
  }
}

TEST(ExecutorTest, SqlScaleAndSeedOverrideEngineDefaults) {
  QueryEngineOptions opt = SmallOptions();  // scale 0.02, seed 3
  const auto a = ExecuteQuery(
      "SELECT frameID FROM (PROCESS nusc-night SCALE 0.05 SEED 9 PRODUCE "
      "frameID, Detections USING BF(yolov7-tiny@clear))",
      opt);
  const auto b = ExecuteQuery(
      "SELECT frameID FROM (PROCESS nusc-night PRODUCE frameID, Detections "
      "USING BF(yolov7-tiny@clear))",
      opt);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_GE(a->frames_processed, 2 * b->frames_processed);  // larger replica
}

// ----------------------------------------------------------------- window --

TEST(ParserTest, WindowClauseParsesAndRecordsPosition) {
  const std::string sql =
      "SELECT frameID FROM (PROCESS nusc PRODUCE frameID, Detections "
      "USING SW-MES(*; REF)) WINDOW 64";
  const auto q = ParseQuery(sql);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->window, 64u);
  EXPECT_EQ(q->window_pos, sql.find("WINDOW"));
  EXPECT_NE(ExplainQuery(*q).find("window=64"), std::string::npos);
}

TEST(ParserTest, WindowOrdersAfterBudgetBeforeLimit) {
  const auto q = ParseQuery(
      "SELECT frameID FROM (PROCESS nusc PRODUCE frameID, Detections "
      "USING SW-MES(*; REF)) BUDGET 500 WINDOW 16 LIMIT 3");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_DOUBLE_EQ(q->budget_ms, 500.0);
  EXPECT_EQ(q->window, 16u);
  EXPECT_EQ(q->limit, 3u);
}

TEST(ParserTest, WindowRejectsDegenerateLengths) {
  EXPECT_FALSE(ParseQuery("SELECT frameID FROM (PROCESS nusc PRODUCE "
                          "frameID, Detections USING SW-MES(*; REF)) "
                          "WINDOW 1")
                   .ok());
  EXPECT_FALSE(ParseQuery("SELECT frameID FROM (PROCESS nusc PRODUCE "
                          "frameID, Detections USING SW-MES(*; REF)) "
                          "WINDOW")
                   .ok());
}

TEST(ExecutorTest, WindowMapsOntoSwMesWindow) {
  QueryEngineOptions opt = SmallOptions();
  const auto with_clause = ExecuteQuery(
      "SELECT frameID FROM (PROCESS nusc PRODUCE frameID, Detections "
      "USING SW-MES(*; REF)) WINDOW 32",
      opt);
  ASSERT_TRUE(with_clause.ok()) << with_clause.status().ToString();
  // The clause must act exactly like configuring the engine default.
  QueryEngineOptions tuned = opt;
  tuned.sw_window = 32;
  const auto via_options = ExecuteQuery(
      "SELECT frameID FROM (PROCESS nusc PRODUCE frameID, Detections "
      "USING SW-MES(*; REF))",
      tuned);
  ASSERT_TRUE(via_options.ok()) << via_options.status().ToString();
  EXPECT_EQ(with_clause->frame_ids, via_options->frame_ids);
  EXPECT_EQ(with_clause->selection_counts, via_options->selection_counts);
  EXPECT_DOUBLE_EQ(with_clause->charged_cost_ms, via_options->charged_cost_ms);
}

TEST(ExecutorTest, WindowRejectedForNonSlidingStrategies) {
  const std::string sql =
      "SELECT frameID FROM (PROCESS nusc PRODUCE frameID, Detections "
      "USING MES(*; REF)) WINDOW 64";
  const auto out = ExecuteQuery(sql, SmallOptions());
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
  // The diagnostic points back at the offending clause.
  EXPECT_NE(out.status().message().find(
                "offset " + std::to_string(sql.find("WINDOW"))),
            std::string::npos)
      << out.status().ToString();
  // Other non-sliding strategies reject too.
  EXPECT_FALSE(ExecuteQuery("SELECT frameID FROM (PROCESS nusc PRODUCE "
                            "frameID, Detections USING BF(*)) WINDOW 8",
                            SmallOptions())
                   .ok());
}

TEST(ExecutorTest, SelectiveVsBroadPredicates) {
  QueryEngineOptions opt = SmallOptions();
  const auto broad = ExecuteQuery(
      "SELECT frameID FROM (PROCESS nusc PRODUCE frameID, Detections "
      "USING MES(*; REF)) WHERE COUNT(*) >= 1",
      opt);
  const auto narrow = ExecuteQuery(
      "SELECT frameID FROM (PROCESS nusc PRODUCE frameID, Detections "
      "USING MES(*; REF)) WHERE COUNT(*) >= 6 AND MAX_CONF(car) > 0.9",
      opt);
  ASSERT_TRUE(broad.ok() && narrow.ok());
  EXPECT_GT(broad->frames_matched, narrow->frames_matched);
}

}  // namespace
}  // namespace vqe
