// Tests for the MOT metrics (CLEAR-MOT protocol) and profile calibration.

#include <gtest/gtest.h>

#include "models/calibration.h"
#include "track/mot_metrics.h"
#include "track/tracker.h"

namespace vqe {
namespace {

Track Trk(int64_t id, double x, double y, double w, double h,
          ClassId label = 0) {
  Track t;
  t.track_id = id;
  t.label = label;
  t.box = BBox::FromXYWH(x, y, w, h);
  return t;
}

GroundTruthBox Gt(int64_t object_id, double x, double y, double w, double h,
                  ClassId label = 0) {
  GroundTruthBox g;
  g.object_id = object_id;
  g.label = label;
  g.box = BBox::FromXYWH(x, y, w, h);
  return g;
}

// ------------------------------------------------------------ MOT metrics --

TEST(MotMetricsTest, PerfectTrackingScoresMotaOne) {
  std::vector<TrackFrame> tracks;
  std::vector<GroundTruthList> gts;
  for (int f = 0; f < 5; ++f) {
    tracks.push_back({Trk(1, 10.0 * f, 0, 20, 20)});
    gts.push_back({Gt(100, 10.0 * f, 0, 20, 20)});
  }
  const MotMetrics m = EvaluateMot(tracks, gts);
  EXPECT_EQ(m.num_gt, 5u);
  EXPECT_EQ(m.matches, 5u);
  EXPECT_EQ(m.misses, 0u);
  EXPECT_EQ(m.false_positives, 0u);
  EXPECT_EQ(m.id_switches, 0u);
  EXPECT_DOUBLE_EQ(m.Mota(), 1.0);
  EXPECT_NEAR(m.Motp(), 1.0, 1e-9);
}

TEST(MotMetricsTest, MissesAndFalsePositives) {
  // Frame 0: GT present, no track (miss). Frame 1: track, no GT (FP).
  std::vector<TrackFrame> tracks{{}, {Trk(1, 0, 0, 20, 20)}};
  std::vector<GroundTruthList> gts{{Gt(100, 0, 0, 20, 20)}, {}};
  const MotMetrics m = EvaluateMot(tracks, gts);
  EXPECT_EQ(m.misses, 1u);
  EXPECT_EQ(m.false_positives, 1u);
  EXPECT_EQ(m.num_gt, 1u);
  EXPECT_DOUBLE_EQ(m.Mota(), 1.0 - 2.0);  // can go negative
}

TEST(MotMetricsTest, IdSwitchCounted) {
  // Same GT object matched by track 1, then track 2.
  std::vector<TrackFrame> tracks{{Trk(1, 0, 0, 20, 20)},
                                 {Trk(2, 0, 0, 20, 20)}};
  std::vector<GroundTruthList> gts{{Gt(100, 0, 0, 20, 20)},
                                   {Gt(100, 0, 0, 20, 20)}};
  const MotMetrics m = EvaluateMot(tracks, gts);
  EXPECT_EQ(m.id_switches, 1u);
  EXPECT_EQ(m.matches, 2u);
  EXPECT_NEAR(m.Mota(), 1.0 - 0.5, 1e-9);
}

TEST(MotMetricsTest, GapWithoutSwitchIsNotASwitch) {
  // Object matched by track 1, unmatched a frame, matched by track 1 again.
  std::vector<TrackFrame> tracks{{Trk(1, 0, 0, 20, 20)},
                                 {},
                                 {Trk(1, 0, 0, 20, 20)}};
  std::vector<GroundTruthList> gts{{Gt(100, 0, 0, 20, 20)},
                                   {Gt(100, 0, 0, 20, 20)},
                                   {Gt(100, 0, 0, 20, 20)}};
  const MotMetrics m = EvaluateMot(tracks, gts);
  EXPECT_EQ(m.id_switches, 0u);
  EXPECT_EQ(m.misses, 1u);
}

TEST(MotMetricsTest, ClassGateAndIouGate) {
  // Wrong class: never matched despite perfect overlap.
  std::vector<TrackFrame> tracks{{Trk(1, 0, 0, 20, 20, /*label=*/1)}};
  std::vector<GroundTruthList> gts{{Gt(100, 0, 0, 20, 20, /*label=*/0)}};
  MotMetrics m = EvaluateMot(tracks, gts);
  EXPECT_EQ(m.matches, 0u);

  // IoU below gate: unmatched.
  tracks = {{Trk(1, 15, 0, 20, 20)}};
  gts = {{Gt(100, 0, 0, 20, 20)}};
  m = EvaluateMot(tracks, gts, /*iou_gate=*/0.5);
  EXPECT_EQ(m.matches, 0u);
  m = EvaluateMot(tracks, gts, /*iou_gate=*/0.1);
  EXPECT_EQ(m.matches, 1u);
}

TEST(MotMetricsTest, GreedyPrefersHighestIoU) {
  // Two GTs, one track overlapping both; it must claim the better one.
  std::vector<TrackFrame> tracks{{Trk(1, 2, 0, 20, 20)}};
  std::vector<GroundTruthList> gts{
      {Gt(100, 0, 0, 20, 20), Gt(101, 10, 0, 20, 20)}};
  const MotMetrics m = EvaluateMot(tracks, gts, 0.1);
  EXPECT_EQ(m.matches, 1u);
  EXPECT_EQ(m.misses, 1u);
  EXPECT_GT(m.Motp(), 0.7);  // matched the near-identical GT
}

TEST(MotMetricsTest, EmptySequences) {
  const MotMetrics m = EvaluateMot({}, {});
  EXPECT_DOUBLE_EQ(m.Mota(), 1.0);
  EXPECT_DOUBLE_EQ(m.Motp(), 0.0);
}

TEST(MotMetricsTest, EndToEndTrackerScoresReasonably) {
  // Drive the real tracker over clean synthetic detections of two moving
  // objects and check MOTA is high.
  std::vector<TrackFrame> track_frames;
  std::vector<GroundTruthList> gt_frames;
  IouTracker tracker;
  for (int f = 0; f < 30; ++f) {
    GroundTruthList gts{Gt(1, 5.0 * f, 0, 40, 40, 0),
                        Gt(2, 500 - 5.0 * f, 100, 40, 40, 0)};
    DetectionList dets;
    for (const auto& g : gts) {
      Detection d;
      d.box = g.box;
      d.confidence = 0.9;
      d.label = g.label;
      dets.push_back(d);
    }
    tracker.Update(dets, f);
    TrackFrame active;
    for (const Track& t : tracker.tracks()) {
      if (t.UpdatedThisFrame()) active.push_back(t);
    }
    track_frames.push_back(active);
    gt_frames.push_back(gts);
  }
  const MotMetrics m = EvaluateMot(track_frames, gt_frames);
  EXPECT_GT(m.Mota(), 0.95);
  EXPECT_EQ(m.id_switches, 0u);
}

// ------------------------------------------------------------ calibration --

TEST(CalibrationTest, MeasureApMonotoneInSkill) {
  DetectorProfile p{"cal", DetectorStructure::kYoloV7Tiny,
                    SceneContext::kClear, 0.4};
  CalibrationOptions opt;
  opt.eval_frames = 80;
  const double low = MeasureInDomainAp(p, opt);
  p.skill = 1.0;
  const double high = MeasureInDomainAp(p, opt);
  EXPECT_GT(high, low + 0.1);
}

TEST(CalibrationTest, HitsReachableTarget) {
  DetectorProfile p{"cal", DetectorStructure::kYoloV7Tiny,
                    SceneContext::kClear, 1.0};
  CalibrationOptions opt;
  opt.eval_frames = 60;
  const auto result = CalibrateSkillToAp(p, 0.35, opt);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NEAR(result->achieved_ap, 0.35, 0.05);
  EXPECT_GT(result->profile.skill, 0.05);
  EXPECT_LT(result->profile.skill, 1.5);
}

TEST(CalibrationTest, UnreachableTargetsRejected) {
  DetectorProfile p{"cal", DetectorStructure::kYoloV7Micro,
                    SceneContext::kClear, 1.0};
  CalibrationOptions opt;
  opt.eval_frames = 40;
  // A micro architecture cannot reach near-perfect per-frame AP.
  EXPECT_EQ(CalibrateSkillToAp(p, 0.99, opt).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(CalibrateSkillToAp(p, 0.005, opt).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_FALSE(CalibrateSkillToAp(p, 1.5, opt).ok());
  EXPECT_FALSE(CalibrateSkillToAp(p, 0.0, opt).ok());
}

TEST(CalibrationTest, OptionsValidation) {
  CalibrationOptions opt;
  opt.eval_frames = 5;
  DetectorProfile p{"cal", DetectorStructure::kYoloV7Tiny,
                    SceneContext::kClear, 1.0};
  EXPECT_FALSE(CalibrateSkillToAp(p, 0.4, opt).ok());
  opt = CalibrationOptions{};
  opt.iterations = 0;
  EXPECT_FALSE(CalibrateSkillToAp(p, 0.4, opt).ok());
}

}  // namespace
}  // namespace vqe
