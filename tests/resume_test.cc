// Crash-injection matrix for ISSUE 4: a run that is killed mid-video and
// resumed from its newest good checkpoint generation must be bit-identical
// to the same run left uninterrupted — across all six online strategies,
// both evaluation backends (eager matrix / lazy evaluator), multiple worker
// counts, and with PR 3 fault scripts active. Also covers the corruption
// fallback (newest generation damaged → previous one used), fresh-start
// behaviour when every generation is damaged, resume-identity validation,
// and end-to-end query resume including tracker (TRACKS) state.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/baselines.h"
#include "core/ducb.h"
#include "core/engine.h"
#include "core/experiment.h"
#include "core/lazy_frame_evaluator.h"
#include "core/mes.h"
#include "core/mes_b.h"
#include "models/model_zoo.h"
#include "query/executor.h"
#include "runtime/fault_injection.h"
#include "sim/dataset.h"
#include "snapshot/checkpoint.h"

namespace vqe {
namespace {

DetectorPool MakePool(int m) {
  const std::vector<std::string> names = {
      "yolov7-tiny@clear", "yolov7-tiny@night", "yolov7-tiny@rainy",
      "yolov7@clear",      "yolov7-micro@clear"};
  std::vector<DetectorProfile> profiles;
  for (int i = 0; i < m; ++i) {
    profiles.push_back(
        std::move(ParseDetectorName(names[static_cast<size_t>(i)])).value());
  }
  return std::move(BuildPool(profiles)).value();
}

Video MakeVideo(double scene_scale, uint64_t seed) {
  const DatasetSpec* spec = *DatasetCatalog::Default().Find("nusc-night");
  SampleOptions sample;
  sample.scene_scale = scene_scale;
  sample.seed = seed;
  return std::move(SampleVideo(*spec, sample)).value();
}

/// Fresh (empty) checkpoint directory under the test temp root.
std::string ScratchDir(const std::string& name) {
  const std::string dir =
      ::testing::TempDir() + "vqe_resume_test/" + name;
  const int rc = std::system(("rm -rf '" + dir + "'").c_str());
  EXPECT_EQ(rc, 0);
  return dir;  // CheckpointManager::Init mkdir -p's it
}

std::unique_ptr<SelectionStrategy> MakeStrategy(const std::string& kind) {
  if (kind == "MES") {
    MesOptions o;
    o.gamma = 2;
    return std::make_unique<MesStrategy>(o);
  }
  if (kind == "MES-B") {
    MesBOptions o;
    o.gamma = 2;
    return std::make_unique<MesBStrategy>(o);
  }
  if (kind == "SW-MES") {
    SwMesOptions o;
    o.gamma = 2;
    o.window = 8;  // small enough that the window actually evicts
    return std::make_unique<SwMesStrategy>(o);
  }
  if (kind == "D-MES") {
    DucbOptions o;
    o.gamma = 2;
    return std::make_unique<DucbMesStrategy>(o);
  }
  if (kind == "RAND") return std::make_unique<RandomStrategy>();
  if (kind == "EF") return std::make_unique<ExploreFirstStrategy>(2);
  ADD_FAILURE() << "unknown strategy kind " << kind;
  return nullptr;
}

/// Bit-identity over every deterministic RunResult field. algorithm_ms and
/// the checkpoint report are wall-clock/process bookkeeping and are the
/// only exclusions.
void ExpectSameRun(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.s_sum, b.s_sum);
  EXPECT_EQ(a.avg_true_ap, b.avg_true_ap);
  EXPECT_EQ(a.avg_norm_cost, b.avg_norm_cost);
  EXPECT_EQ(a.frames_processed, b.frames_processed);
  EXPECT_EQ(a.regret_available, b.regret_available);
  EXPECT_EQ(a.regret, b.regret);
  EXPECT_EQ(a.charged_cost_ms, b.charged_cost_ms);
  EXPECT_EQ(a.breakdown.detector_ms, b.breakdown.detector_ms);
  EXPECT_EQ(a.breakdown.reference_ms, b.breakdown.reference_ms);
  EXPECT_EQ(a.breakdown.ensembling_ms, b.breakdown.ensembling_ms);
  EXPECT_EQ(a.breakdown.fault_ms, b.breakdown.fault_ms);
  EXPECT_EQ(a.selection_counts, b.selection_counts);
  EXPECT_EQ(a.cost_curve, b.cost_curve);
  EXPECT_EQ(a.fallback_frames, b.fallback_frames);
  EXPECT_EQ(a.failed_frames, b.failed_frames);
  ASSERT_EQ(a.model_availability.size(), b.model_availability.size());
  for (size_t i = 0; i < a.model_availability.size(); ++i) {
    EXPECT_EQ(a.model_availability[i].frames_selected,
              b.model_availability[i].frames_selected);
    EXPECT_EQ(a.model_availability[i].frames_failed,
              b.model_availability[i].frames_failed);
    EXPECT_EQ(a.model_availability[i].breaker_opens,
              b.model_availability[i].breaker_opens);
    EXPECT_EQ(a.model_availability[i].fault_ms,
              b.model_availability[i].fault_ms);
  }
}

/// One engine invocation: builds a fresh source + strategy (as a restarted
/// process would) and runs it under `engine`.
using RunOnce = std::function<Result<RunResult>(const EngineOptions&)>;

/// Drives run_once to completion through repeated crash injections: every
/// invocation but the last must die with kAborted; the survivor's result is
/// returned. Invocation state is rebuilt from scratch each time — only the
/// checkpoint directory carries information across "crashes".
RunResult RunWithCrashes(const RunOnce& run_once, const EngineOptions& engine,
                         int* invocations = nullptr) {
  for (int attempt = 1; attempt <= 64; ++attempt) {
    Result<RunResult> run = run_once(engine);
    if (run.ok()) {
      if (invocations != nullptr) *invocations = attempt;
      return std::move(run).value();
    }
    EXPECT_EQ(run.status().code(), StatusCode::kAborted)
        << run.status().ToString();
  }
  ADD_FAILURE() << "crash-resume loop never completed";
  return RunResult{};
}

/// Builds the per-cell run_once closure for one backend/worker-count
/// combination. The eager matrix and the lazy evaluator are reconstructed
/// on every invocation — a real restart loses them with the process.
RunOnce MakeRunOnce(const Video& video, const DetectorPool& pool,
                    const std::string& kind, bool lazy_backend, int workers,
                    MatrixOptions matrix_options, uint64_t trial_seed) {
  matrix_options.parallelism = workers;
  return [&video, &pool, kind, lazy_backend, matrix_options,
          trial_seed](const EngineOptions& engine) -> Result<RunResult> {
    std::unique_ptr<SelectionStrategy> strategy = MakeStrategy(kind);
    if (lazy_backend) {
      auto lazy =
          LazyFrameEvaluator::Create(video, pool, trial_seed, matrix_options);
      if (!lazy.ok()) return lazy.status();
      return RunStrategy(**lazy, strategy.get(), engine);
    }
    auto matrix = BuildFrameMatrix(video, pool, trial_seed, matrix_options);
    if (!matrix.ok()) return matrix.status();
    return RunStrategy(*matrix, strategy.get(), engine);
  };
}

/// Flips one bit in the middle of a generation file.
void CorruptFile(const std::string& path) {
  std::fstream f(path,
                 std::ios::in | std::ios::out | std::ios::binary |
                     std::ios::ate);
  ASSERT_TRUE(f.is_open()) << path;
  const std::streampos size = f.tellg();
  ASSERT_GT(size, std::streampos(0));
  const std::streampos mid = size / 2;
  f.seekg(mid);
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  f.seekp(mid);
  f.write(&byte, 1);
  ASSERT_TRUE(f.good());
}

// ---------------------------------------------------------------------------
// The crash matrix (tentpole acceptance): six strategies × {eager, lazy} ×
// worker counts, clean pool.

void RunCrashMatrix(const Video& video, const DetectorPool& pool,
                    const MatrixOptions& matrix_options,
                    const EngineOptions& base_engine, const std::string& tag) {
  const std::vector<std::string> kinds = {"MES",   "MES-B", "SW-MES",
                                          "D-MES", "RAND",  "EF"};
  for (const std::string& kind : kinds) {
    for (const bool lazy_backend : {false, true}) {
      for (const int workers : {1, 4}) {
        SCOPED_TRACE(tag + "/" + kind +
                     (lazy_backend ? "/lazy" : "/eager") + "/w" +
                     std::to_string(workers));
        const RunOnce run_once = MakeRunOnce(video, pool, kind, lazy_backend,
                                             workers, matrix_options,
                                             /*trial_seed=*/9);
        const Result<RunResult> baseline = run_once(base_engine);
        ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

        EngineOptions ck = base_engine;
        ck.checkpoint.every_frames = 4;
        ck.checkpoint.crash_after_frames = 6;
        ck.checkpoint.directory = ScratchDir(
            tag + "/" + kind + (lazy_backend ? "-lazy" : "-eager") + "-w" +
            std::to_string(workers));
        int invocations = 0;
        const RunResult resumed = RunWithCrashes(run_once, ck, &invocations);
        ExpectSameRun(*baseline, resumed);
        EXPECT_GT(invocations, 1) << "the crash must actually fire";
        EXPECT_TRUE(resumed.checkpoint.resumed);
        EXPECT_GT(resumed.checkpoint.resumed_from_frame, 0u);
      }
    }
  }
}

TEST(CrashMatrixTest, AllStrategiesBackendsAndWorkersResumeBitIdentically) {
  const int m = 3;
  const DetectorPool pool = MakePool(m);
  const Video video = MakeVideo(/*scene_scale=*/0.02, /*seed=*/17);
  ASSERT_GT(video.size(), 12u);

  EngineOptions engine;
  engine.strategy_seed = 42;
  engine.compute_regret = false;
  RunCrashMatrix(video, pool, MatrixOptions{}, engine, "clean");
}

// The same matrix with PR 3 fault scripts active: a mid-video outage, random
// errors/empties/spikes, retries, and live circuit breakers — all of that
// state must survive the crash too.
TEST(CrashMatrixTest, FaultedRunsResumeBitIdentically) {
  const int m = 3;
  const DetectorPool pool = MakePool(m);
  const Video video = MakeVideo(/*scene_scale=*/0.02, /*seed=*/17);
  ASSERT_GT(video.size(), 12u);

  std::vector<FaultScript> scripts(static_cast<size_t>(m));
  scripts[0].bursts.push_back({2, 8, FaultKind::kError, -1});
  scripts[1].error_rate = 0.2;
  scripts[1].empty_rate = 0.2;
  scripts[2].spike_rate = 0.3;
  scripts[2].garbage_rate = 0.2;
  const DetectorPool faulty =
      std::move(ApplyFaultScripts(pool, scripts)).value();

  MatrixOptions matrix_options;
  matrix_options.retry.max_attempts = 2;
  matrix_options.retry.backoff_base_ms = 0.25;

  EngineOptions engine;
  engine.strategy_seed = 42;
  engine.compute_regret = false;
  engine.breaker.failure_threshold = 2;
  engine.breaker.open_frames = 5;
  RunCrashMatrix(video, faulty, matrix_options, engine, "faulted");
}

// ---------------------------------------------------------------------------
// Feature-specific resume coverage.

// Regret accumulation and the LRBP cost curve are part of the snapshot.
TEST(ResumeTest, RegretAndCostCurveSurviveResume) {
  const DetectorPool pool = MakePool(3);
  const Video video = MakeVideo(/*scene_scale=*/0.02, /*seed=*/21);
  ASSERT_GT(video.size(), 10u);

  EngineOptions engine;
  engine.strategy_seed = 7;
  engine.compute_regret = true;
  engine.record_cost_curve = true;

  const RunOnce run_once = MakeRunOnce(video, pool, "MES", /*lazy=*/false,
                                       /*workers=*/1, MatrixOptions{},
                                       /*trial_seed=*/3);
  const Result<RunResult> baseline = run_once(engine);
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(baseline->regret_available);
  ASSERT_FALSE(baseline->cost_curve.empty());

  EngineOptions ck = engine;
  ck.checkpoint.every_frames = 3;
  ck.checkpoint.crash_after_frames = 5;
  ck.checkpoint.directory = ScratchDir("regret-curve");
  const RunResult resumed = RunWithCrashes(run_once, ck);
  ExpectSameRun(*baseline, resumed);
}

// A TCVI budget run: the spent budget is part of the cursor, so a resumed
// run must stop at exactly the same frame.
TEST(ResumeTest, BudgetedRunStopsAtTheSameFrameAfterResume) {
  const DetectorPool pool = MakePool(3);
  const Video video = MakeVideo(/*scene_scale=*/0.02, /*seed=*/29);
  ASSERT_GT(video.size(), 10u);

  EngineOptions engine;
  engine.strategy_seed = 5;
  engine.compute_regret = false;
  engine.budget_ms = 400.0;  // cuts the run short mid-video

  const RunOnce run_once = MakeRunOnce(video, pool, "MES-B", /*lazy=*/false,
                                       /*workers=*/1, MatrixOptions{},
                                       /*trial_seed=*/3);
  const Result<RunResult> baseline = run_once(engine);
  ASSERT_TRUE(baseline.ok());

  EngineOptions ck = engine;
  ck.checkpoint.every_frames = 2;
  ck.checkpoint.crash_after_frames = 3;
  ck.checkpoint.directory = ScratchDir("budget");
  const RunResult resumed = RunWithCrashes(run_once, ck);
  ExpectSameRun(*baseline, resumed);
}

// A lazy run resumed WITHOUT the source memo section recomputes cells on
// demand but still produces identical results — the memo is only a cache.
TEST(ResumeTest, LazyResumeWithoutSourceSnapshotIsStillBitIdentical) {
  const DetectorPool pool = MakePool(3);
  const Video video = MakeVideo(/*scene_scale=*/0.02, /*seed=*/31);
  ASSERT_GT(video.size(), 10u);

  EngineOptions engine;
  engine.strategy_seed = 11;
  engine.compute_regret = false;

  const RunOnce run_once = MakeRunOnce(video, pool, "SW-MES", /*lazy=*/true,
                                       /*workers=*/2, MatrixOptions{},
                                       /*trial_seed=*/5);
  const Result<RunResult> baseline = run_once(engine);
  ASSERT_TRUE(baseline.ok());

  EngineOptions ck = engine;
  ck.checkpoint.every_frames = 4;
  ck.checkpoint.crash_after_frames = 6;
  ck.checkpoint.include_source = false;
  ck.checkpoint.directory = ScratchDir("lazy-no-source");
  const RunResult resumed = RunWithCrashes(run_once, ck);
  ExpectSameRun(*baseline, resumed);
}

// ---------------------------------------------------------------------------
// Corruption fallback and validation.

// Damage the newest generation after a crash: the resume must reject it,
// fall back to the previous good generation, report the rejection, and
// still finish bit-identically.
TEST(ResumeTest, FallsBackToPreviousGenerationWhenNewestIsCorrupt) {
  const DetectorPool pool = MakePool(3);
  const Video video = MakeVideo(/*scene_scale=*/0.02, /*seed=*/37);
  ASSERT_GT(video.size(), 8u);

  EngineOptions engine;
  engine.strategy_seed = 13;
  engine.compute_regret = false;

  const RunOnce run_once = MakeRunOnce(video, pool, "MES", /*lazy=*/false,
                                       /*workers=*/1, MatrixOptions{},
                                       /*trial_seed=*/7);
  const Result<RunResult> baseline = run_once(engine);
  ASSERT_TRUE(baseline.ok());

  const std::string dir = ScratchDir("fallback");
  EngineOptions ck = engine;
  ck.checkpoint.every_frames = 2;
  ck.checkpoint.crash_after_frames = 7;
  ck.checkpoint.directory = dir;

  // First invocation: writes generations at frames 2, 4, 6 then dies. The
  // retention window (2) keeps the two newest.
  const Result<RunResult> first = run_once(ck);
  ASSERT_FALSE(first.ok());
  ASSERT_EQ(first.status().code(), StatusCode::kAborted);

  CheckpointManager manager(dir);
  const std::vector<uint64_t> generations = manager.ListGenerations();
  ASSERT_EQ(generations.size(), 2u);
  CorruptFile(manager.GenerationPath(generations.back()));

  // Second invocation, no crash: must skip the damaged newest generation.
  ck.checkpoint.crash_after_frames = 0;
  const Result<RunResult> resumed = run_once(ck);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_TRUE(resumed->checkpoint.resumed);
  EXPECT_EQ(resumed->checkpoint.generations_rejected, 1);
  EXPECT_EQ(resumed->checkpoint.resumed_from_frame, 4u)
      << "generation at frame 6 was damaged; frame-4 generation is next";
  ExpectSameRun(*baseline, *resumed);
}

// Every generation damaged: the run reports nothing usable and starts
// fresh — same final result, resumed flag off.
TEST(ResumeTest, StartsFreshWhenEveryGenerationIsCorrupt) {
  const DetectorPool pool = MakePool(3);
  const Video video = MakeVideo(/*scene_scale=*/0.02, /*seed=*/37);
  ASSERT_GT(video.size(), 8u);

  EngineOptions engine;
  engine.strategy_seed = 13;
  engine.compute_regret = false;

  const RunOnce run_once = MakeRunOnce(video, pool, "MES", /*lazy=*/false,
                                       /*workers=*/1, MatrixOptions{},
                                       /*trial_seed=*/7);
  const Result<RunResult> baseline = run_once(engine);
  ASSERT_TRUE(baseline.ok());

  const std::string dir = ScratchDir("all-corrupt");
  EngineOptions ck = engine;
  ck.checkpoint.every_frames = 2;
  ck.checkpoint.crash_after_frames = 7;
  ck.checkpoint.directory = dir;
  ASSERT_EQ(run_once(ck).status().code(), StatusCode::kAborted);

  CheckpointManager manager(dir);
  for (const uint64_t sequence : manager.ListGenerations()) {
    CorruptFile(manager.GenerationPath(sequence));
  }

  ck.checkpoint.crash_after_frames = 0;
  const Result<RunResult> fresh = run_once(ck);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_FALSE(fresh->checkpoint.resumed);
  ExpectSameRun(*baseline, *fresh);
}

// A snapshot from a differently-configured run must be refused, not
// silently blended in.
TEST(ResumeTest, MismatchedRunIdentityIsRejected) {
  const DetectorPool pool = MakePool(3);
  const Video video = MakeVideo(/*scene_scale=*/0.02, /*seed=*/41);
  ASSERT_GT(video.size(), 8u);

  EngineOptions ck;
  ck.strategy_seed = 19;
  ck.compute_regret = false;
  ck.checkpoint.every_frames = 2;
  ck.checkpoint.crash_after_frames = 5;
  ck.checkpoint.directory = ScratchDir("identity");

  const RunOnce mes = MakeRunOnce(video, pool, "MES", /*lazy=*/false,
                                  /*workers=*/1, MatrixOptions{},
                                  /*trial_seed=*/7);
  ASSERT_EQ(mes(ck).status().code(), StatusCode::kAborted);

  // Different strategy seed.
  EngineOptions other_seed = ck;
  other_seed.strategy_seed = 20;
  other_seed.checkpoint.crash_after_frames = 0;
  EXPECT_EQ(mes(other_seed).status().code(), StatusCode::kFailedPrecondition);

  // Different strategy altogether.
  EngineOptions no_crash = ck;
  no_crash.checkpoint.crash_after_frames = 0;
  const RunOnce sw = MakeRunOnce(video, pool, "SW-MES", /*lazy=*/false,
                                 /*workers=*/1, MatrixOptions{},
                                 /*trial_seed=*/7);
  EXPECT_EQ(sw(no_crash).status().code(), StatusCode::kFailedPrecondition);

  // The original configuration still resumes fine.
  const Result<RunResult> ok = mes(no_crash);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_TRUE(ok->checkpoint.resumed);
}

// ---------------------------------------------------------------------------
// End-to-end query resume.

void ExpectSameQuery(const QueryOutput& a, const QueryOutput& b) {
  EXPECT_EQ(a.frame_ids, b.frame_ids);
  EXPECT_EQ(a.frames_processed, b.frames_processed);
  EXPECT_EQ(a.frames_matched, b.frames_matched);
  EXPECT_EQ(a.charged_cost_ms, b.charged_cost_ms);
  EXPECT_EQ(a.reference_cost_ms, b.reference_cost_ms);
  EXPECT_EQ(a.selection_counts, b.selection_counts);
  EXPECT_EQ(a.model_names, b.model_names);
  EXPECT_EQ(a.fallback_frames, b.fallback_frames);
  EXPECT_EQ(a.failed_frames, b.failed_frames);
  EXPECT_EQ(a.fault_ms, b.fault_ms);
  EXPECT_EQ(a.model_failures, b.model_failures);
}

QueryOutput RunQueryWithCrashes(const std::string& sql,
                                const QueryEngineOptions& options,
                                int* invocations = nullptr) {
  for (int attempt = 1; attempt <= 64; ++attempt) {
    const Result<QueryOutput> out = ExecuteQuery(sql, options);
    if (out.ok()) {
      if (invocations != nullptr) *invocations = attempt;
      return *out;
    }
    EXPECT_EQ(out.status().code(), StatusCode::kAborted)
        << out.status().ToString();
  }
  ADD_FAILURE() << "query crash-resume loop never completed";
  return QueryOutput{};
}

QueryEngineOptions SmallQueryOptions() {
  QueryEngineOptions opt;
  opt.scene_scale = 0.02;
  opt.seed = 3;
  return opt;
}

TEST(QueryResumeTest, BasicQueryResumesBitIdentically) {
  const std::string sql =
      "SELECT frameID FROM (PROCESS nusc-night PRODUCE frameID, Detections "
      "USING MES(yolov7-tiny@clear, yolov7-tiny@night; REF)) "
      "WHERE COUNT(car) >= 1";
  const QueryEngineOptions opt = SmallQueryOptions();
  const Result<QueryOutput> baseline = ExecuteQuery(sql, opt);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  QueryEngineOptions ck = opt;
  ck.checkpoint.every_frames = 5;
  ck.checkpoint.crash_after_frames = 7;
  ck.checkpoint.directory = ScratchDir("query-basic");
  int invocations = 0;
  const QueryOutput resumed = RunQueryWithCrashes(sql, ck, &invocations);
  ExpectSameQuery(*baseline, resumed);
  EXPECT_GT(invocations, 1);
  EXPECT_TRUE(resumed.checkpoint.resumed);
}

// TRACKS() queries carry the IoU tracker across frames; its confirmed and
// tentative tracks must survive the crash intact.
TEST(QueryResumeTest, TracksQueryResumesBitIdentically) {
  const std::string sql =
      "SELECT frameID FROM (PROCESS nusc-night PRODUCE frameID, Detections "
      "USING MES(*; REF)) WHERE TRACKS(car) >= 1";
  const QueryEngineOptions opt = SmallQueryOptions();
  const Result<QueryOutput> baseline = ExecuteQuery(sql, opt);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_GT(baseline->frames_matched, 0u)
      << "the predicate must actually depend on tracker state";

  QueryEngineOptions ck = opt;
  ck.checkpoint.every_frames = 5;
  ck.checkpoint.crash_after_frames = 8;
  ck.checkpoint.directory = ScratchDir("query-tracks");
  const QueryOutput resumed = RunQueryWithCrashes(sql, ck);
  ExpectSameQuery(*baseline, resumed);
  EXPECT_TRUE(resumed.checkpoint.resumed);
}

// Faulted query: retries, breakers, and per-model runtime stacks active.
TEST(QueryResumeTest, FaultedQueryResumesBitIdentically) {
  const std::string sql =
      "SELECT frameID FROM (PROCESS nusc-night PRODUCE frameID, Detections "
      "USING MES(yolov7-tiny@clear, yolov7-tiny@night; REF)) "
      "WHERE COUNT(*) >= 1";
  QueryEngineOptions opt = SmallQueryOptions();
  opt.retry.max_attempts = 2;
  opt.retry.backoff_base_ms = 0.25;
  opt.breaker.failure_threshold = 2;
  opt.breaker.open_frames = 4;
  opt.fault_scripts.resize(2);
  opt.fault_scripts[0].error_rate = 0.3;
  opt.fault_scripts[1].bursts.push_back({3, 9, FaultKind::kError, -1});

  const Result<QueryOutput> baseline = ExecuteQuery(sql, opt);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  EXPECT_GT(baseline->fallback_frames + baseline->failed_frames, 0u)
      << "the scripts must actually degrade some frames";

  QueryEngineOptions ck = opt;
  ck.checkpoint.every_frames = 4;
  ck.checkpoint.crash_after_frames = 6;
  ck.checkpoint.directory = ScratchDir("query-faulted");
  const QueryOutput resumed = RunQueryWithCrashes(sql, ck);
  ExpectSameQuery(*baseline, resumed);
  EXPECT_TRUE(resumed.checkpoint.resumed);
}

// A query snapshot belongs to one exact query + options; resuming with a
// different seed must be refused.
TEST(QueryResumeTest, MismatchedQueryIdentityIsRejected) {
  const std::string sql =
      "SELECT frameID FROM (PROCESS nusc-night PRODUCE frameID, Detections "
      "USING MES(yolov7-tiny@clear, yolov7-tiny@night; REF))";
  QueryEngineOptions ck = SmallQueryOptions();
  ck.checkpoint.every_frames = 4;
  ck.checkpoint.crash_after_frames = 6;
  ck.checkpoint.directory = ScratchDir("query-identity");
  ASSERT_EQ(ExecuteQuery(sql, ck).status().code(), StatusCode::kAborted);

  QueryEngineOptions other = ck;
  other.seed = 99;
  other.checkpoint.crash_after_frames = 0;
  EXPECT_EQ(ExecuteQuery(sql, other).status().code(),
            StatusCode::kFailedPrecondition);

  ck.checkpoint.crash_after_frames = 0;
  const Result<QueryOutput> ok = ExecuteQuery(sql, ck);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_TRUE(ok->checkpoint.resumed);
}

}  // namespace
}  // namespace vqe
