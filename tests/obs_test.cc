// Tests for the observability subsystem (ISSUE 10): registry determinism
// (fixed-point simulated-domain counters identical across thread counts),
// trace-buffer overflow accounting (never silent), the Chrome trace-event
// and Prometheus-text exporters with their built-in validators/parsers,
// and the two tentpole contracts — obs disabled leaves every run
// bit-identical with a zero-cost frame loop, obs enabled leaves results
// bit-identical while simulated metrics fingerprint identically across
// worker counts, shard counts and evaluation backends. Checkpoint/resume
// interaction rides the same harness as resume_test.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "core/experiment.h"
#include "core/mes.h"
#include "models/model_zoo.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "serve/scheduler.h"
#include "sim/dataset.h"
#include "workload/trace.h"
#include "workload/workload.h"

namespace vqe {
namespace {

DetectorPool MakePool(int m) {
  const std::vector<std::string> names = {
      "yolov7-tiny@clear", "yolov7-tiny@night", "yolov7-tiny@rainy",
      "yolov7@clear",      "yolov7-micro@clear"};
  std::vector<DetectorProfile> profiles;
  for (int i = 0; i < m; ++i) {
    profiles.push_back(
        std::move(ParseDetectorName(names[static_cast<size_t>(i)])).value());
  }
  return std::move(BuildPool(profiles)).value();
}

Video MakeVideo(double scene_scale, uint64_t seed) {
  const DatasetSpec* spec = *DatasetCatalog::Default().Find("nusc-night");
  SampleOptions sample;
  sample.scene_scale = scene_scale;
  sample.seed = seed;
  return std::move(SampleVideo(*spec, sample)).value();
}

std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "vqe_obs_test/" + name;
  const int rc = std::system(("rm -rf '" + dir + "'").c_str());
  EXPECT_EQ(rc, 0);
  return dir;
}

/// Bit-identity over every deterministic RunResult field (wall-clock
/// bookkeeping excluded) — same contract as resume_test.
void ExpectSameRun(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.s_sum, b.s_sum);
  EXPECT_EQ(a.avg_true_ap, b.avg_true_ap);
  EXPECT_EQ(a.avg_norm_cost, b.avg_norm_cost);
  EXPECT_EQ(a.frames_processed, b.frames_processed);
  EXPECT_EQ(a.regret_available, b.regret_available);
  EXPECT_EQ(a.regret, b.regret);
  EXPECT_EQ(a.charged_cost_ms, b.charged_cost_ms);
  EXPECT_EQ(a.breakdown.detector_ms, b.breakdown.detector_ms);
  EXPECT_EQ(a.breakdown.reference_ms, b.breakdown.reference_ms);
  EXPECT_EQ(a.breakdown.ensembling_ms, b.breakdown.ensembling_ms);
  EXPECT_EQ(a.breakdown.fault_ms, b.breakdown.fault_ms);
  EXPECT_EQ(a.selection_counts, b.selection_counts);
  EXPECT_EQ(a.fallback_frames, b.fallback_frames);
  EXPECT_EQ(a.failed_frames, b.failed_frames);
  EXPECT_EQ(a.skip.skipped_frames, b.skip.skipped_frames);
  EXPECT_EQ(a.skip.detect_frames, b.skip.detect_frames);
}

// ---------------------------------------------------------------- metrics --

TEST(MetricsRegistryTest, CountersGaugesAndHistogramsAccumulate) {
  MetricsRegistry reg;
  const auto frames =
      reg.Counter("frames_total", MetricDomain::kSimulated);
  const auto cost = reg.Counter("charged_cost_ms", MetricDomain::kSimulated,
                                MetricUnit::kMs);
  const auto depth = reg.Gauge("queue_depth", MetricDomain::kWall);
  const auto lat = reg.Histogram("frame_ms", MetricDomain::kSimulated,
                                 {1.0, 2.0});
  ASSERT_NE(frames, MetricsRegistry::kInvalidId);
  ASSERT_NE(lat, MetricsRegistry::kInvalidId);

  reg.Add(frames, 3);
  reg.AddMs(cost, 1.5);
  reg.AddMs(cost, -2.0);  // negative deltas clamp, counters stay monotone
  reg.Set(depth, 7.0);
  reg.Set(depth, 4.0);
  reg.Observe(lat, 0.5);
  reg.Observe(lat, 1.5);
  reg.Observe(lat, 9.0);

  bool saw_frames = false, saw_cost = false, saw_depth = false,
       saw_lat = false;
  for (const auto& view : reg.Snapshot()) {
    if (view.name == "frames_total") {
      saw_frames = true;
      EXPECT_EQ(view.kind, MetricKind::kCounter);
      EXPECT_EQ(view.raw, 3u);
      EXPECT_DOUBLE_EQ(view.value, 3.0);
    } else if (view.name == "charged_cost_ms") {
      saw_cost = true;
      EXPECT_EQ(view.raw, MsToTicks(1.5));
      EXPECT_DOUBLE_EQ(view.value, 1.5);
    } else if (view.name == "queue_depth") {
      saw_depth = true;
      EXPECT_EQ(view.kind, MetricKind::kGauge);
      EXPECT_DOUBLE_EQ(view.value, 4.0);  // last write wins
    } else if (view.name == "frame_ms") {
      saw_lat = true;
      EXPECT_EQ(view.kind, MetricKind::kHistogram);
      ASSERT_EQ(view.histogram.bucket_counts.size(), 3u);
      EXPECT_EQ(view.histogram.bucket_counts[0], 1u);  // <= 1
      EXPECT_EQ(view.histogram.bucket_counts[1], 1u);  // <= 2
      EXPECT_EQ(view.histogram.bucket_counts[2], 1u);  // +Inf
      EXPECT_EQ(view.histogram.count, 3u);
      EXPECT_DOUBLE_EQ(view.histogram.sum, 11.0);
    }
  }
  EXPECT_TRUE(saw_frames && saw_cost && saw_depth && saw_lat);
}

TEST(MetricsRegistryTest, ReRegistrationSharesSeriesAndChecksBounds) {
  MetricsRegistry reg;
  const auto a = reg.Counter("frames_total", MetricDomain::kSimulated);
  const auto b = reg.Counter("frames_total", MetricDomain::kSimulated);
  EXPECT_EQ(a, b);
  reg.Add(a, 1);
  reg.Add(b, 1);
  EXPECT_EQ(reg.Snapshot()[0].raw, 2u) << "re-registered id is a new series";

  const auto h = reg.Histogram("lat", MetricDomain::kWall, {1.0, 2.0});
  EXPECT_EQ(reg.Histogram("lat", MetricDomain::kWall, {1.0, 2.0}), h);
  // Same name with different bounds is a caller bug, not a silent merge.
  EXPECT_EQ(reg.Histogram("lat", MetricDomain::kWall, {1.0, 4.0}),
            MetricsRegistry::kInvalidId);
}

TEST(MetricsRegistryTest, FixedPointTickConversionIsExact) {
  EXPECT_EQ(MsToTicks(0.0), 0u);
  EXPECT_EQ(MsToTicks(-5.0), 0u);
  EXPECT_EQ(MsToTicks(1.0), static_cast<uint64_t>(kTicksPerMs));
  EXPECT_DOUBLE_EQ(TicksToMs(MsToTicks(123.456789)), 123.456789);
}

TEST(MetricsRegistryTest, SimulatedFingerprintIsThreadCountInvariant) {
  // The same multiset of observations, applied serially and by 4 threads
  // in arbitrary interleaving, must fingerprint byte-identically.
  auto apply = [](MetricsRegistry& reg, int begin, int end) {
    const auto frames =
        reg.Counter("frames_total", MetricDomain::kSimulated);
    const auto cost = reg.Counter("cost_ms", MetricDomain::kSimulated,
                                  MetricUnit::kMs);
    const auto lat =
        reg.Histogram("frame_ms", MetricDomain::kSimulated, {1.0, 4.0, 16.0});
    for (int i = begin; i < end; ++i) {
      reg.Add(frames);
      reg.AddMs(cost, 0.125 * i);
      reg.Observe(lat, 0.5 * (i % 40));
    }
  };

  MetricsRegistry serial;
  apply(serial, 0, 4000);

  MetricsRegistry threaded;
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back(
        [&threaded, &apply, w] { apply(threaded, w * 1000, (w + 1) * 1000); });
  }
  for (auto& t : workers) t.join();

  const std::string fp = serial.SimulatedFingerprint();
  EXPECT_FALSE(fp.empty());
  EXPECT_EQ(fp, threaded.SimulatedFingerprint());
}

TEST(MetricsRegistryTest, FingerprintExcludesWallMetricsAndGauges) {
  MetricsRegistry a, b;
  for (MetricsRegistry* reg : {&a, &b}) {
    reg->Add(reg->Counter("sim_total", MetricDomain::kSimulated), 5);
  }
  // Divergent wall-domain and gauge state must not move the fingerprint:
  // wall values are real measurements, gauges are last-write-wins races.
  a.AddMs(a.Counter("wall_ms", MetricDomain::kWall, MetricUnit::kMs), 123.0);
  b.Set(b.Gauge("depth", MetricDomain::kSimulated), 9.0);
  EXPECT_EQ(a.SimulatedFingerprint(), b.SimulatedFingerprint());
}

// ------------------------------------------------------------------ trace --

TEST(TraceRecorderTest, OverflowIsCountedNeverSilent) {
  TraceRecorder rec(/*capacity_per_thread=*/8);
  for (int i = 0; i < 20; ++i) {
    rec.Span(MetricDomain::kSimulated, /*track=*/1, /*frame=*/i, "step",
             /*ts_ms=*/static_cast<double>(i), /*dur_ms=*/0.5);
  }
  EXPECT_EQ(rec.event_count(), 8u);
  EXPECT_EQ(rec.dropped_events(), 12u);
  // Keep-oldest: the retained prefix is the first 8 events in order.
  const std::vector<TraceEvent> events = rec.Collect();
  ASSERT_EQ(events.size(), 8u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].frame, static_cast<int64_t>(i));
  }
  // The exporter surfaces the drop count and the result still validates.
  const std::string json = ChromeTraceJson(rec);
  EXPECT_NE(json.find("dropped_events"), std::string::npos);
  const Status valid = ValidateChromeTrace(json);
  EXPECT_TRUE(valid.ok()) << valid.ToString();
}

TEST(TraceRecorderTest, CollectMergesThreadBuffersInStableOrder) {
  TraceRecorder rec(64);
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&rec, w] {
      for (int i = 0; i < 8; ++i) {
        rec.Instant(MetricDomain::kWall, /*track=*/w, /*frame=*/i, "tick",
                    /*ts_ms=*/static_cast<double>(i));
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(rec.dropped_events(), 0u);
  const std::vector<TraceEvent> events = rec.Collect();
  ASSERT_EQ(events.size(), 32u);
  for (size_t i = 1; i < events.size(); ++i) {
    const bool ordered =
        events[i - 1].track < events[i].track ||
        (events[i - 1].track == events[i].track &&
         events[i - 1].ts_ms <= events[i].ts_ms);
    EXPECT_TRUE(ordered) << "Collect() order broke at event " << i;
  }
}

// -------------------------------------------------------------- exporters --

TEST(ChromeTraceValidatorTest, AcceptsBothContainerForms) {
  EXPECT_TRUE(ValidateChromeTrace("[]").ok());
  EXPECT_TRUE(ValidateChromeTrace(R"({"traceEvents": []})").ok());
  EXPECT_TRUE(ValidateChromeTrace(
                  R"([{"ph":"X","name":"a","pid":1,"tid":1,"ts":0,"dur":5},)"
                  R"({"ph":"i","name":"b","pid":1,"tid":1,"ts":7}])")
                  .ok());
}

TEST(ChromeTraceValidatorTest, MalformedJsonIsParseError) {
  for (const char* hostile :
       {"", "not json", "[{\"ph\":", "{\"traceEvents\": [",
        R"([{"ph":"X" "name":"a"}])", "[1,]"}) {
    const Status s = ValidateChromeTrace(hostile);
    ASSERT_FALSE(s.ok()) << "accepted: " << hostile;
    EXPECT_EQ(s.code(), StatusCode::kParseError) << hostile;
  }
}

TEST(ChromeTraceValidatorTest, StructuralViolationsAreInvalidArgument) {
  const struct {
    const char* name;
    const char* json;
  } corpus[] = {
      {"missing ph", R"([{"name":"a","pid":1,"tid":1,"ts":0}])"},
      {"missing name", R"([{"ph":"i","pid":1,"tid":1,"ts":0}])"},
      {"missing ts", R"([{"ph":"i","name":"a","pid":1,"tid":1}])"},
      {"negative dur",
       R"([{"ph":"X","name":"a","pid":1,"tid":1,"ts":0,"dur":-1}])"},
      {"unclosed B", R"([{"ph":"B","name":"a","pid":1,"tid":1,"ts":0}])"},
      {"E without B", R"([{"ph":"E","name":"a","pid":1,"tid":1,"ts":0}])"},
      {"ts regression on one track",
       R"([{"ph":"X","name":"a","pid":1,"tid":1,"ts":5,"dur":1},)"
       R"({"ph":"X","name":"b","pid":1,"tid":1,"ts":1,"dur":1}])"},
  };
  for (const auto& c : corpus) {
    const Status s = ValidateChromeTrace(c.json);
    ASSERT_FALSE(s.ok()) << "accepted: " << c.name;
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument)
        << c.name << ": " << s.ToString();
  }
  // Interleaved tracks each monotone: fine.
  EXPECT_TRUE(ValidateChromeTrace(
                  R"([{"ph":"i","name":"a","pid":1,"tid":1,"ts":5},)"
                  R"({"ph":"i","name":"b","pid":1,"tid":2,"ts":1}])")
                  .ok());
}

TEST(MetricsTextTest, ExportRoundTripsThroughTheParser) {
  MetricsRegistry reg;
  reg.Add(reg.Counter("frames_total", MetricDomain::kSimulated,
                      MetricUnit::kCount, "frames processed"),
          3);
  reg.AddMs(reg.Counter("wall_ms", MetricDomain::kWall, MetricUnit::kMs), 1.5);
  reg.Set(reg.Gauge("depth", MetricDomain::kWall), 4.0);
  const auto lat =
      reg.Histogram("frame_ms", MetricDomain::kSimulated, {1.0, 2.0});
  reg.Observe(lat, 0.5);
  reg.Observe(lat, 1.5);
  reg.Observe(lat, 9.0);

  const std::string text = ExportMetricsText(reg);
  EXPECT_NE(text.find("# HELP"), std::string::npos);
  EXPECT_NE(text.find("# TYPE"), std::string::npos);

  auto parsed = ParseMetricsText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  double frames = -1.0, wall = -1.0, depth = -1.0;
  double bucket_sum = -1.0, bucket_count = -1.0, inf_bucket = -1.0;
  size_t buckets = 0;
  for (const MetricSample& s : *parsed) {
    if (s.name == "frames_total") {
      frames = s.value;
      EXPECT_EQ(s.labels.at("domain"), "sim");
    } else if (s.name == "wall_ms") {
      wall = s.value;
      EXPECT_EQ(s.labels.at("domain"), "wall");
    } else if (s.name == "depth") {
      depth = s.value;
    } else if (s.name == "frame_ms_bucket") {
      ++buckets;
      if (s.labels.at("le") == "+Inf") inf_bucket = s.value;
    } else if (s.name == "frame_ms_sum") {
      bucket_sum = s.value;
    } else if (s.name == "frame_ms_count") {
      bucket_count = s.value;
    }
  }
  EXPECT_DOUBLE_EQ(frames, 3.0);
  EXPECT_DOUBLE_EQ(wall, 1.5);
  EXPECT_DOUBLE_EQ(depth, 4.0);
  EXPECT_EQ(buckets, 3u) << "two bounds + the +Inf bucket";
  EXPECT_DOUBLE_EQ(inf_bucket, 3.0) << "cumulative buckets end at count";
  EXPECT_DOUBLE_EQ(bucket_sum, 11.0);
  EXPECT_DOUBLE_EQ(bucket_count, 3.0);
}

TEST(MetricsTextTest, ParserRejectsMalformedLinesWithLineNumber) {
  for (const char* hostile :
       {"no_value_here\n", "name{unclosed=\"x\" 1\n", "name 1 2 3\n",
        "name{le=\"1\"} not_a_number\n"}) {
    const auto r = ParseMetricsText(hostile);
    ASSERT_FALSE(r.ok()) << "accepted: " << hostile;
    EXPECT_EQ(r.status().code(), StatusCode::kParseError) << hostile;
  }
}

// ------------------------------------------------ engine identity matrix --

/// One RunExperiment invocation over the Figure 4 line-up.
ExperimentResult RunMatrixOnce(const DetectorPool& pool,
                               EvaluationMode evaluation, int parallelism,
                               const ObsHandle& obs) {
  const DatasetSpec* spec = *DatasetCatalog::Default().Find("nusc-night");
  ExperimentConfig config;
  config.dataset = spec;
  config.scene_scale = 0.02;
  config.trials = 2;
  config.pool_size = 3;
  config.base_seed = 11;
  config.parallelism = parallelism;
  config.evaluation = evaluation;
  config.engine.obs = obs;
  auto result =
      RunExperiment(config, pool, DefaultTuviStrategies(2, 2));
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? std::move(result).value() : ExperimentResult{};
}

void ExpectSameExperiment(const ExperimentResult& a,
                          const ExperimentResult& b) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (size_t s = 0; s < a.outcomes.size(); ++s) {
    SCOPED_TRACE(a.outcomes[s].label);
    EXPECT_EQ(a.outcomes[s].label, b.outcomes[s].label);
    ASSERT_EQ(a.outcomes[s].runs.size(), b.outcomes[s].runs.size());
    for (size_t t = 0; t < a.outcomes[s].runs.size(); ++t) {
      ExpectSameRun(a.outcomes[s].runs[t], b.outcomes[s].runs[t]);
    }
  }
}

// The tentpole contract, both directions, over six strategies × eager/lazy
// × worker counts {1, 4}: disabling obs changes nothing, enabling obs
// changes nothing, and the enabled runs' simulated-domain fingerprint is
// one byte string regardless of backend or thread count.
TEST(ObsIdentityTest, EnabledAndDisabledRunsAreBitIdenticalEverywhere) {
  const DetectorPool pool = MakePool(3);

  ExperimentResult baseline;  // eager, serial, no obs
  std::string fingerprint;
  bool first = true;
  for (const EvaluationMode mode :
       {EvaluationMode::kEager, EvaluationMode::kLazy}) {
    for (const int workers : {1, 4}) {
      SCOPED_TRACE(std::string(mode == EvaluationMode::kEager ? "eager"
                                                              : "lazy") +
                   "/w" + std::to_string(workers));
      const ExperimentResult off = RunMatrixOnce(pool, mode, workers, {});

      Observability obs;
      const ExperimentResult on =
          RunMatrixOnce(pool, mode, workers, obs.handle());

      // Observation never perturbs selection...
      ExpectSameExperiment(off, on);
      // ...every cell matches the very first one...
      if (first) {
        baseline = off;
        first = false;
      } else {
        ExpectSameExperiment(baseline, off);
      }
      // ...and the simulated metrics are one fingerprint for all cells.
      const std::string fp = obs.metrics().SimulatedFingerprint();
      ASSERT_FALSE(fp.empty());
      EXPECT_GT(obs.trace().event_count(), 0u);
      if (fingerprint.empty()) {
        fingerprint = fp;
      } else {
        EXPECT_EQ(fp, fingerprint);
      }
    }
  }
}

// ------------------------------------------------- scheduler & fleet obs --

const char kObsTrace[] =
    "VQEWORK 1\n"
    "seed 7\n"
    "rounds 6\n"
    "dataset nusc-night\n"
    "scale 0.05\n"
    "models 3\n"
    "arrivals rate 0.6 alpha 1.6 cap 4\n"
    "class interactive share 0.5 frames 8 skip bandit 2\n"
    "class batch share 0.5 frames 12 skip off 0\n"
    "end\n";

ServeOptions SmallServe() {
  ServeOptions o;
  o.max_sessions = 4;
  o.queue_depth = 64;
  o.quantum_ms = 60.0;
  o.max_frames_per_round = 8;
  return o;
}

TEST(ObsServeTest, SchedulerMetricsFingerprintIsWorkerCountInvariant) {
  const WorkloadTrace t = std::move(ParseWorkloadTrace(kObsTrace)).value();
  const WorkloadPlan plan = BuildWorkloadPlan(t);
  const DetectorPool pool = MakePool(t.models);

  WorkloadRunReport uninstrumented;
  std::string fingerprint;
  for (const int parallelism : {1, 0}) {
    SCOPED_TRACE("parallelism " + std::to_string(parallelism));
    ServeOptions plain = MakeServeOptions(t, SmallServe(), false);
    plain.parallelism = parallelism;
    WorkloadRunReport off =
        std::move(RunWorkloadOnScheduler(plan, pool, plain)).value();

    Observability obs;
    ServeOptions instrumented = plain;
    instrumented.obs = obs.handle();
    const WorkloadRunReport on =
        std::move(RunWorkloadOnScheduler(plan, pool, instrumented)).value();

    // Instrumentation leaves every stream bit-identical...
    ASSERT_EQ(off.serve.streams.size(), on.serve.streams.size());
    for (size_t i = 0; i < off.serve.streams.size(); ++i) {
      EXPECT_EQ(off.serve.streams[i].name, on.serve.streams[i].name);
      ExpectSameRun(off.serve.streams[i].result, on.serve.streams[i].result);
    }
    // ...the scheduler recorded wall-domain activity on its node track...
    EXPECT_GT(obs.trace().event_count(), 0u);
    // ...and the simulated fingerprint ignores the worker count.
    const std::string fp = obs.metrics().SimulatedFingerprint();
    ASSERT_FALSE(fp.empty());
    if (fingerprint.empty()) {
      fingerprint = fp;
      uninstrumented = std::move(off);
    } else {
      EXPECT_EQ(fp, fingerprint);
    }
  }
  ASSERT_FALSE(uninstrumented.serve.streams.empty());
}

TEST(ObsFleetTest, FleetMetricsFingerprintIsShardCountInvariant) {
  const WorkloadTrace t = std::move(ParseWorkloadTrace(kObsTrace)).value();
  const WorkloadPlan plan = BuildWorkloadPlan(t);
  const DetectorPool pool = MakePool(t.models);

  std::string fingerprint;
  for (const int shards : {1, 2, 4}) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    Observability obs;
    FleetOptions fleet;
    fleet.num_shards = shards;
    fleet.max_sessions = 64;
    // Overload control off: the ladder reacts to per-shard queue depth, so
    // it is the one mechanism that legitimately varies with the topology.
    fleet.shard = MakeServeOptions(t, SmallServe(), false);
    fleet.obs = obs.handle();

    const FleetReport report =
        std::move(RunWorkloadOnFleet(plan, pool, fleet)).value();
    EXPECT_EQ(report.streams.size(), plan.sessions.size());
    EXPECT_GT(report.stats.completed_streams, 0u);

    const std::string fp = obs.metrics().SimulatedFingerprint();
    ASSERT_FALSE(fp.empty());
    EXPECT_GT(obs.trace().event_count(), 0u);
    if (fingerprint.empty()) {
      fingerprint = fp;
    } else {
      EXPECT_EQ(fp, fingerprint);
    }
  }
}

// --------------------------------------------------- checkpoint interplay --

// An instrumented run that crashes and resumes must end bit-identical to
// an uninstrumented, uninterrupted one: obs state is a node property and
// never enters the snapshot.
TEST(ObsCheckpointTest, InstrumentedCrashResumeMatchesPlainBaseline) {
  const DetectorPool pool = MakePool(3);
  const Video video = MakeVideo(/*scene_scale=*/0.02, /*seed=*/17);
  ASSERT_GT(video.size(), 10u);
  const auto matrix =
      BuildFrameMatrix(video, pool, /*trial_seed=*/9, MatrixOptions{});
  ASSERT_TRUE(matrix.ok()) << matrix.status().ToString();

  auto run_once = [&](const EngineOptions& engine) -> Result<RunResult> {
    MesOptions o;
    o.gamma = 2;
    MesStrategy strategy(o);
    return RunStrategy(*matrix, &strategy, engine);
  };

  EngineOptions engine;
  engine.strategy_seed = 42;
  engine.compute_regret = false;
  const Result<RunResult> baseline = run_once(engine);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  Observability obs;
  EngineOptions ck = engine;
  ck.obs = obs.handle();
  ck.checkpoint.every_frames = 4;
  ck.checkpoint.crash_after_frames = 6;
  ck.checkpoint.directory = ScratchDir("crash-resume");

  int invocations = 0;
  RunResult resumed;
  for (int attempt = 1;; ++attempt) {
    ASSERT_LE(attempt, 64) << "crash-resume loop never completed";
    Result<RunResult> run = run_once(ck);
    if (run.ok()) {
      invocations = attempt;
      resumed = std::move(run).value();
      break;
    }
    ASSERT_EQ(run.status().code(), StatusCode::kAborted)
        << run.status().ToString();
  }
  EXPECT_GT(invocations, 1) << "the crash must actually fire";
  EXPECT_TRUE(resumed.checkpoint.resumed);
  ExpectSameRun(*baseline, resumed);

  // The instrumented invocations left real evidence behind: simulated
  // frame metrics, and a wall-domain record of the checkpoint writes.
  EXPECT_FALSE(obs.metrics().SimulatedFingerprint().empty());
  EXPECT_GT(obs.trace().event_count(), 0u);
}

// ----------------------------------------------- emitted artifacts (sat 4) --

// A real instrumented run's exported trace passes the Chrome validator and
// its metrics text round-trips — the same gate tools/check.sh applies to
// the bench binaries' --trace-out output.
TEST(ObsExportTest, RealRunArtifactsValidateAndRoundTrip) {
  const DetectorPool pool = MakePool(3);
  const Video video = MakeVideo(/*scene_scale=*/0.02, /*seed=*/5);
  const auto matrix =
      BuildFrameMatrix(video, pool, /*trial_seed=*/5, MatrixOptions{});
  ASSERT_TRUE(matrix.ok()) << matrix.status().ToString();

  Observability obs;
  EngineOptions engine;
  engine.strategy_seed = 3;
  engine.compute_regret = false;
  engine.obs = obs.handle();
  MesOptions o;
  o.gamma = 2;
  MesStrategy strategy(o);
  const auto run = RunStrategy(*matrix, &strategy, engine);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  ASSERT_GT(obs.trace().event_count(), 0u);
  EXPECT_EQ(obs.trace().dropped_events(), 0u);
  const std::string json = ChromeTraceJson(obs.trace());
  const Status valid = ValidateChromeTrace(json);
  EXPECT_TRUE(valid.ok()) << valid.ToString();
  EXPECT_NE(json.find("traceEvents"), std::string::npos);

  const auto samples = ParseMetricsText(ExportMetricsText(obs.metrics()));
  ASSERT_TRUE(samples.ok()) << samples.status().ToString();
  EXPECT_FALSE(samples->empty());
  bool saw_sim = false;
  for (const MetricSample& s : *samples) {
    const auto domain = s.labels.find("domain");
    if (domain != s.labels.end() && domain->second == "sim") saw_sim = true;
  }
  EXPECT_TRUE(saw_sim) << "an engine run must emit simulated-domain series";
}

}  // namespace
}  // namespace vqe
