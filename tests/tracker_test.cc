// Tests for the SORT-style IoU tracker and its TRACKS() query integration.

#include <gtest/gtest.h>

#include "query/executor.h"
#include "query/parser.h"
#include "query/predicate.h"
#include "track/tracker.h"

namespace vqe {
namespace {

Detection Det(double x, double y, double w, double h, double conf,
              ClassId label = 0) {
  Detection d;
  d.box = BBox::FromXYWH(x, y, w, h);
  d.confidence = conf;
  d.label = label;
  return d;
}

TEST(TrackerOptionsTest, Validation) {
  TrackerOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.iou_threshold = 0.0;
  EXPECT_FALSE(o.Validate().ok());
  o = TrackerOptions{};
  o.iou_threshold = 1.5;
  EXPECT_FALSE(o.Validate().ok());
  o = TrackerOptions{};
  o.iou_threshold = 1.0;
  EXPECT_TRUE(o.Validate().ok());
  o = TrackerOptions{};
  o.max_missed = -1;
  EXPECT_FALSE(o.Validate().ok());
  o = TrackerOptions{};
  o.max_missed = 0;
  EXPECT_TRUE(o.Validate().ok());
  o = TrackerOptions{};
  o.min_hits = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = TrackerOptions{};
  o.min_confidence = 1.5;
  EXPECT_FALSE(o.Validate().ok());
  o = TrackerOptions{};
  o.min_confidence = -0.1;
  EXPECT_FALSE(o.Validate().ok());
  o = TrackerOptions{};
  o.min_confidence = 0.0;
  EXPECT_TRUE(o.Validate().ok());
}

TEST(TrackerTest, BirthsTrackPerConfidentDetection) {
  IouTracker tracker;
  const auto& tracks =
      tracker.Update({Det(0, 0, 20, 20, 0.9), Det(100, 0, 20, 20, 0.8),
                      Det(200, 0, 20, 20, 0.1)},  // below min_confidence
                     0);
  ASSERT_EQ(tracks.size(), 2u);
  EXPECT_NE(tracks[0].track_id, tracks[1].track_id);
  EXPECT_EQ(tracks[0].hits, 1);
  EXPECT_FALSE(tracks[0].IsConfirmed(tracker.options()));
}

TEST(TrackerTest, IdentityPersistsAcrossFrames) {
  IouTracker tracker;
  tracker.Update({Det(0, 0, 40, 40, 0.9)}, 0);
  const int64_t id = tracker.tracks()[0].track_id;
  // Object moves 5px per frame; IoU with previous position stays high.
  for (int t = 1; t <= 5; ++t) {
    const auto& tracks = tracker.Update({Det(5.0 * t, 0, 40, 40, 0.9)}, t);
    ASSERT_EQ(tracks.size(), 1u);
    EXPECT_EQ(tracks[0].track_id, id);
    EXPECT_EQ(tracks[0].hits, t + 1);
  }
  EXPECT_TRUE(tracker.tracks()[0].IsConfirmed(tracker.options()));
  EXPECT_EQ(tracker.tracks()[0].Age(), 6);
}

TEST(TrackerTest, VelocityPredictionBridgesFastMotion) {
  // 25px/frame steps: consecutive raw boxes overlap barely at IoU 1/3; once
  // the velocity estimate warms up the predicted box overlaps much better,
  // keeping the association alive for the whole run.
  TrackerOptions opt;
  opt.iou_threshold = 0.3;
  IouTracker tracker(opt);
  for (int t = 0; t <= 6; ++t) {
    tracker.Update({Det(25.0 * t, 0, 50, 50, 0.9)}, t);
  }
  ASSERT_EQ(tracker.tracks().size(), 1u);
  EXPECT_EQ(tracker.tracks()[0].hits, 7);
  // The learned velocity approaches the true 25 px/frame.
  EXPECT_GT(tracker.tracks()[0].vx, 15.0);
}

TEST(TrackerTest, ClassMismatchNeverAssociates) {
  IouTracker tracker;
  tracker.Update({Det(0, 0, 40, 40, 0.9, /*label=*/0)}, 0);
  const auto& tracks = tracker.Update({Det(0, 0, 40, 40, 0.9, /*label=*/1)}, 1);
  // The class-1 detection starts its own track; class-0 track coasts.
  EXPECT_EQ(tracks.size(), 2u);
}

TEST(TrackerTest, MissedTracksRetire) {
  TrackerOptions opt;
  opt.max_missed = 2;
  IouTracker tracker(opt);
  tracker.Update({Det(0, 0, 40, 40, 0.9)}, 0);
  tracker.Update({}, 1);
  tracker.Update({}, 2);
  EXPECT_EQ(tracker.tracks().size(), 1u);  // still coasting (missed == 2)
  tracker.Update({}, 3);
  EXPECT_EQ(tracker.tracks().size(), 0u);
  ASSERT_EQ(tracker.finished_tracks().size(), 1u);
  EXPECT_EQ(tracker.finished_tracks()[0].hits, 1);
}

TEST(TrackerTest, ReacquisitionWithinGraceWindow) {
  IouTracker tracker;
  tracker.Update({Det(0, 0, 40, 40, 0.9)}, 0);
  const int64_t id = tracker.tracks()[0].track_id;
  tracker.Update({}, 1);  // occluded one frame
  const auto& tracks = tracker.Update({Det(2, 0, 40, 40, 0.9)}, 2);
  ASSERT_EQ(tracks.size(), 1u);
  EXPECT_EQ(tracks[0].track_id, id);
  EXPECT_EQ(tracks[0].missed, 0);
}

TEST(TrackerTest, GreedyAssociationPrefersConfidentDetections) {
  IouTracker tracker;
  tracker.Update({Det(0, 0, 40, 40, 0.9)}, 0);
  // Two candidate detections overlap the track; the higher-confidence one
  // claims it, the other births a new track.
  const auto& tracks = tracker.Update(
      {Det(4, 0, 40, 40, 0.5), Det(2, 0, 40, 40, 0.95)}, 1);
  ASSERT_EQ(tracks.size(), 2u);
  // The original track carries the 0.95 confidence.
  const Track& original =
      tracks[0].track_id < tracks[1].track_id ? tracks[0] : tracks[1];
  EXPECT_DOUBLE_EQ(original.confidence, 0.95);
}

TEST(TrackerTest, ActiveConfirmedFilters) {
  TrackerOptions opt;
  opt.min_hits = 2;
  IouTracker tracker(opt);
  tracker.Update({Det(0, 0, 40, 40, 0.9)}, 0);
  EXPECT_TRUE(tracker.ActiveConfirmed().empty());  // 1 hit < min_hits
  tracker.Update({Det(1, 0, 40, 40, 0.9)}, 1);
  EXPECT_EQ(tracker.ActiveConfirmed().size(), 1u);
  tracker.Update({}, 2);  // coasting: not "active"
  EXPECT_TRUE(tracker.ActiveConfirmed().empty());
}

TEST(TrackerTest, ResetClearsState) {
  IouTracker tracker;
  tracker.Update({Det(0, 0, 40, 40, 0.9)}, 0);
  tracker.Reset();
  EXPECT_TRUE(tracker.tracks().empty());
  tracker.Update({Det(0, 0, 40, 40, 0.9)}, 0);
  EXPECT_EQ(tracker.tracks()[0].track_id, 1);  // ids restart
}

// ------------------------------------------------- coasting (skip path) --

// The skip fast path leans on CoastOne being a single Euler step: calling
// it k times must land on exactly the same doubles as accumulating the
// velocity one frame at a time (box + v + v + ..., never box + k*v).
TEST(TrackerCoastTest, KStepsMatchIncrementalPredictionBitExactly) {
  IouTracker tracker;
  // Warm the velocity estimate up over a few frames of steady motion.
  for (int t = 0; t <= 3; ++t) {
    tracker.Update({Det(7.0 * t, 3.0 * t, 40, 40, 0.9)}, t);
  }
  ASSERT_EQ(tracker.tracks().size(), 1u);
  const Track start = tracker.tracks()[0];
  ASSERT_NE(start.vx, 0.0);

  double ex1 = start.box.x1, ey1 = start.box.y1;
  double ex2 = start.box.x2, ey2 = start.box.y2;
  for (int k = 1; k <= 5; ++k) {
    tracker.CoastOne();
    ex1 += start.vx;
    ey1 += start.vy;
    ex2 += start.vx;
    ey2 += start.vy;
    const Track& coasted = tracker.tracks()[0];
    EXPECT_EQ(coasted.box.x1, ex1) << "step " << k;
    EXPECT_EQ(coasted.box.y1, ey1) << "step " << k;
    EXPECT_EQ(coasted.box.x2, ex2) << "step " << k;
    EXPECT_EQ(coasted.box.y2, ey2) << "step " << k;
    // Coasting moves ONLY the box: velocity, confidence and association
    // bookkeeping stay untouched.
    EXPECT_EQ(coasted.vx, start.vx);
    EXPECT_EQ(coasted.vy, start.vy);
    EXPECT_EQ(coasted.confidence, start.confidence);
  }
}

// A skipped frame is answered FROM the prediction — it is not evidence the
// object vanished, so coasting must not age or retire tracks the way a
// missed frame in Update() does.
TEST(TrackerCoastTest, CoastingDoesNotAgeOrRetireTracks) {
  TrackerOptions opt;
  opt.max_missed = 1;  // a single missed Update() frame would retire soon
  IouTracker tracker(opt);
  tracker.Update({Det(0, 0, 40, 40, 0.9)}, 0);
  tracker.Update({Det(5, 0, 40, 40, 0.9)}, 1);
  const Track before = tracker.tracks()[0];

  for (int k = 0; k < 10; ++k) tracker.CoastOne();
  ASSERT_EQ(tracker.tracks().size(), 1u);
  const Track& after = tracker.tracks()[0];
  EXPECT_EQ(after.missed, before.missed);
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.Age(), before.Age());
  EXPECT_TRUE(after.UpdatedThisFrame());
  EXPECT_TRUE(tracker.finished_tracks().empty());
}

// After coasting, a fresh detection near the coasted position must
// re-associate with the same identity — the detect frame that ends a skip
// episode continues the track, it does not fork it.
TEST(TrackerCoastTest, DetectionAfterCoastingKeepsIdentity) {
  IouTracker tracker;
  for (int t = 0; t <= 2; ++t) {
    tracker.Update({Det(6.0 * t, 0, 40, 40, 0.9)}, t);
  }
  const int64_t id = tracker.tracks()[0].track_id;
  tracker.CoastOne();
  tracker.CoastOne();
  // True object position after two more frames of the same motion.
  const auto& tracks = tracker.Update({Det(6.0 * 4, 0, 40, 40, 0.9)}, 4);
  ASSERT_EQ(tracks.size(), 1u);
  EXPECT_EQ(tracks[0].track_id, id);
  EXPECT_EQ(tracks[0].missed, 0);
}

// ----------------------------------------------------- TRACKS() in queries --

TEST(TracksAggregateTest, ParserAndExplain) {
  const auto q = ParseQuery(
      "SELECT frameID FROM (PROCESS nusc PRODUCE frameID, Detections "
      "USING MES(*; REF)) WHERE TRACKS(car) >= 2");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->where->aggregate.kind, AggregateKind::kTracks);
  EXPECT_TRUE(PredicateUsesTracks(q->where.get()));

  const auto q2 = ParseQuery(
      "SELECT frameID FROM (PROCESS nusc PRODUCE frameID, Detections "
      "USING MES(*; REF)) WHERE COUNT(car) >= 2");
  EXPECT_FALSE(PredicateUsesTracks(q2->where.get()));
}

TEST(TracksAggregateTest, EvaluatesAgainstTrackList) {
  AggregateExpr agg;
  agg.kind = AggregateKind::kTracks;
  agg.class_name = "car";
  std::vector<Track> tracks(3);
  tracks[0].label = 0;  // car
  tracks[1].label = 0;
  tracks[2].label = 3;  // pedestrian
  EXPECT_DOUBLE_EQ(EvaluateAggregate(agg, {}, &tracks), 2.0);
  agg.class_name = "*";
  EXPECT_DOUBLE_EQ(EvaluateAggregate(agg, {}, &tracks), 3.0);
  EXPECT_DOUBLE_EQ(EvaluateAggregate(agg, {}, nullptr), 0.0);
}

TEST(TracksAggregateTest, EndToEndQuery) {
  QueryEngineOptions opt;
  opt.scene_scale = 0.02;
  opt.seed = 3;
  const auto with_tracks = ExecuteQuery(
      "SELECT frameID FROM (PROCESS nusc PRODUCE frameID, Detections "
      "USING MES(yolov7-tiny@clear, yolov7-tiny@night; REF)) "
      "WHERE TRACKS(car) >= 1",
      opt);
  ASSERT_TRUE(with_tracks.ok()) << with_tracks.status().ToString();
  EXPECT_GT(with_tracks->frames_matched, 0u);
  EXPECT_LT(with_tracks->frames_matched, with_tracks->frames_processed);

  // Track confirmation requires min_hits frames, so TRACKS >= 1 matches no
  // more frames than the instantaneous COUNT >= 1.
  const auto with_count = ExecuteQuery(
      "SELECT frameID FROM (PROCESS nusc PRODUCE frameID, Detections "
      "USING MES(yolov7-tiny@clear, yolov7-tiny@night; REF)) "
      "WHERE COUNT(car) >= 1",
      opt);
  ASSERT_TRUE(with_count.ok());
  EXPECT_LE(with_tracks->frames_matched, with_count->frames_matched);
}

}  // namespace
}  // namespace vqe
