// Tests for the box-fusion algorithms: NMS, Soft-NMS, Softer-NMS, WBF, NMW
// and Consensus, plus the registry and option validation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "detection/ap.h"
#include "detection/frame_soa.h"
#include "fusion/consensus.h"
#include "fusion/ensemble_method.h"
#include "fusion/iou_cache.h"
#include "fusion/nms.h"
#include "fusion/nmw.h"
#include "fusion/wbf.h"

namespace vqe {
namespace {

Detection Det(double x, double y, double w, double h, double conf,
              ClassId label = 0) {
  Detection d;
  d.box = BBox::FromXYWH(x, y, w, h);
  d.confidence = conf;
  d.label = label;
  return d;
}

FusionOptions DefaultOptions() {
  FusionOptions o;
  o.iou_threshold = 0.5;
  return o;
}

// ---------------------------------------------------------------- NMS ----

TEST(NmsTest, SuppressesOverlappingLowerConfidence) {
  NmsFusion nms(DefaultOptions());
  const auto out = nms.Fuse({{Det(0, 0, 10, 10, 0.9)},
                             {Det(1, 0, 10, 10, 0.7)}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].confidence, 0.9);
  EXPECT_EQ(out[0].model_index, -1);
}

TEST(NmsTest, KeepsDisjointBoxes) {
  NmsFusion nms(DefaultOptions());
  const auto out = nms.Fuse({{Det(0, 0, 10, 10, 0.9)},
                             {Det(100, 100, 10, 10, 0.7)}});
  EXPECT_EQ(out.size(), 2u);
}

TEST(NmsTest, DifferentClassesNotSuppressed) {
  NmsFusion nms(DefaultOptions());
  const auto out = nms.Fuse({{Det(0, 0, 10, 10, 0.9, 0)},
                             {Det(0, 0, 10, 10, 0.7, 1)}});
  EXPECT_EQ(out.size(), 2u);
}

TEST(NmsTest, EmptyInput) {
  NmsFusion nms(DefaultOptions());
  EXPECT_TRUE(nms.Fuse({}).empty());
  EXPECT_TRUE(nms.Fuse(std::vector<DetectionList>(2)).empty());
}

TEST(NmsTest, IdempotentOnOwnOutput) {
  NmsFusion nms(DefaultOptions());
  Rng rng(17);
  std::vector<DetectionList> inputs(3);
  for (auto& list : inputs) {
    for (int i = 0; i < 10; ++i) {
      list.push_back(Det(rng.Uniform(0, 100), rng.Uniform(0, 100), 20, 20,
                         rng.Uniform(0.1, 1.0), rng.UniformInt(2)));
    }
  }
  const auto once = nms.Fuse(inputs);
  const auto twice = nms.Fuse({once});
  ASSERT_EQ(once.size(), twice.size());
}

TEST(NmsTest, ScoreThresholdDropsWeakBoxes) {
  FusionOptions opt = DefaultOptions();
  opt.score_threshold = 0.5;
  NmsFusion nms(opt);
  const auto out = nms.Fuse({{Det(0, 0, 10, 10, 0.4)},
                             {Det(100, 0, 10, 10, 0.6)}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].confidence, 0.6);
}

// ------------------------------------------------------------ Soft-NMS ---

TEST(SoftNmsTest, LinearDecayKeepsButWeakens) {
  SoftNmsFusion soft(DefaultOptions(), SoftNmsFusion::Decay::kLinear);
  // IoU of the two boxes is 9/11 ≈ 0.818 > 0.5 threshold.
  const auto out = soft.Fuse({{Det(0, 0, 10, 10, 0.9)},
                              {Det(1, 0, 10, 10, 0.8)}});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].confidence, 0.9);
  EXPECT_NEAR(out[1].confidence, 0.8 * (1.0 - 9.0 / 11.0), 1e-9);
}

TEST(SoftNmsTest, GaussianDecayAlwaysApplies) {
  FusionOptions opt = DefaultOptions();
  opt.sigma = 0.5;
  SoftNmsFusion soft(opt, SoftNmsFusion::Decay::kGaussian);
  const auto out = soft.Fuse({{Det(0, 0, 10, 10, 0.9)},
                              {Det(1, 0, 10, 10, 0.8)}});
  ASSERT_EQ(out.size(), 2u);
  const double iou = 9.0 / 11.0;
  EXPECT_NEAR(out[1].confidence, 0.8 * std::exp(-iou * iou / 0.5), 1e-9);
}

TEST(SoftNmsTest, DecayedBelowFloorIsDropped) {
  FusionOptions opt = DefaultOptions();
  opt.score_threshold = 0.3;
  SoftNmsFusion soft(opt, SoftNmsFusion::Decay::kLinear);
  // Second box decays to 0.8 * (1 - 0.818) ≈ 0.145 < 0.3.
  const auto out = soft.Fuse({{Det(0, 0, 10, 10, 0.9)},
                              {Det(1, 0, 10, 10, 0.8)}});
  EXPECT_EQ(out.size(), 1u);
}

TEST(SoftNmsTest, NonOverlappingUntouchedByLinear) {
  SoftNmsFusion soft(DefaultOptions(), SoftNmsFusion::Decay::kLinear);
  const auto out = soft.Fuse({{Det(0, 0, 10, 10, 0.9)},
                              {Det(100, 0, 10, 10, 0.8)}});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[1].confidence, 0.8);
}

// ----------------------------------------------------------- Softer-NMS --

TEST(SofterNmsTest, VarianceVotingAveragesCoordinates) {
  SofterNmsFusion softer(DefaultOptions());
  DetectionList a{Det(0, 0, 10, 10, 0.9)};
  DetectionList b{Det(2, 0, 10, 10, 0.85)};
  a[0].box_variance = 1.0;
  b[0].box_variance = 1.0;
  const auto out = softer.Fuse({a, b});
  ASSERT_EQ(out.size(), 1u);
  // Voted x1 strictly between the two inputs.
  EXPECT_GT(out[0].box.x1, 0.0);
  EXPECT_LT(out[0].box.x1, 2.0);
}

TEST(SofterNmsTest, LowVarianceBoxDominatesVote) {
  SofterNmsFusion softer(DefaultOptions());
  DetectionList a{Det(0, 0, 10, 10, 0.9)};
  DetectionList b{Det(2, 0, 10, 10, 0.8)};  // IoU 8/12 > threshold
  a[0].box_variance = 0.01;   // very certain
  b[0].box_variance = 100.0;  // very uncertain
  const auto out = softer.Fuse({a, b});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_LT(out[0].box.x1, 0.3);  // pulled strongly towards a
}

TEST(SofterNmsTest, KeepsConfidenceOfTopBox) {
  SofterNmsFusion softer(DefaultOptions());
  const auto out = softer.Fuse({{Det(0, 0, 10, 10, 0.9)},
                                {Det(1, 0, 10, 10, 0.7)}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].confidence, 0.9);
}

// ----------------------------------------------------------------- WBF ---

TEST(WbfTest, AveragesClusterWeightedByConfidence) {
  WbfFusion wbf(DefaultOptions());
  const auto out = wbf.Fuse({{Det(0, 0, 10, 10, 0.9)},
                             {Det(2, 0, 10, 10, 0.3)}});
  ASSERT_EQ(out.size(), 1u);
  // x1 = (0.9*0 + 0.3*2) / 1.2 = 0.5
  EXPECT_NEAR(out[0].box.x1, 0.5, 1e-9);
  // Confidence: mean(0.9, 0.3) * min(2,2)/2 = 0.6.
  EXPECT_NEAR(out[0].confidence, 0.6, 1e-9);
}

TEST(WbfTest, SingleModelBoxPenalized) {
  WbfFusion wbf(DefaultOptions());
  // Three models; only one detects the object.
  const auto out = wbf.Fuse({{Det(0, 0, 10, 10, 0.9)}, {}, {}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0].confidence, 0.9 / 3.0, 1e-9);
}

TEST(WbfTest, AgreementPreservesConfidence) {
  WbfFusion wbf(DefaultOptions());
  const auto out = wbf.Fuse({{Det(0, 0, 10, 10, 0.8)},
                             {Det(0, 0, 10, 10, 0.8)},
                             {Det(0, 0, 10, 10, 0.8)}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0].confidence, 0.8, 1e-9);  // min(3,3)/3 = 1
}

TEST(WbfTest, FusedBoxInsideInputHull) {
  WbfFusion wbf(DefaultOptions());
  Rng rng(23);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<DetectionList> inputs(3);
    double min_x = 1e9, max_x = -1e9;
    for (auto& list : inputs) {
      const double x = rng.Uniform(0, 3);
      list.push_back(Det(x, 0, 10, 10, rng.Uniform(0.2, 1.0)));
      min_x = std::min(min_x, x);
      max_x = std::max(max_x, x + 10);
    }
    const auto out = wbf.Fuse(inputs);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_GE(out[0].box.x1, min_x - 1e-9);
    EXPECT_LE(out[0].box.x2, max_x + 1e-9);
  }
}

TEST(WbfTest, SeparateClustersStaySeparate) {
  WbfFusion wbf(DefaultOptions());
  const auto out = wbf.Fuse({{Det(0, 0, 10, 10, 0.9), Det(50, 0, 10, 10, 0.8)},
                             {Det(1, 0, 10, 10, 0.7)}});
  EXPECT_EQ(out.size(), 2u);
}

TEST(WbfTest, OutputSortedByConfidence) {
  WbfFusion wbf(DefaultOptions());
  const auto out = wbf.Fuse({{Det(0, 0, 10, 10, 0.3), Det(50, 0, 10, 10, 0.9)},
                             {Det(0, 0, 10, 10, 0.4)}});
  ASSERT_GE(out.size(), 2u);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_GE(out[i - 1].confidence, out[i].confidence);
  }
}

// ----------------------------------------------------------------- NMW ---

TEST(NmwTest, WeightsByConfidenceTimesIoU) {
  NmwFusion nmw(DefaultOptions());
  const auto out = nmw.Fuse({{Det(0, 0, 10, 10, 0.9)},
                             {Det(1, 0, 10, 10, 0.9)}});
  ASSERT_EQ(out.size(), 1u);
  // Top box votes with IoU 1, second with IoU 9/11: x1 strictly in (0, 0.5].
  EXPECT_GT(out[0].box.x1, 0.0);
  EXPECT_LT(out[0].box.x1, 0.5);
  // Confidence is the cluster max.
  EXPECT_DOUBLE_EQ(out[0].confidence, 0.9);
}

TEST(NmwTest, SingletonPassesThrough) {
  NmwFusion nmw(DefaultOptions());
  const auto out = nmw.Fuse({{Det(5, 5, 10, 10, 0.7)}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0].box.x1, 5.0, 1e-9);
  EXPECT_DOUBLE_EQ(out[0].confidence, 0.7);
}

// ------------------------------------------------------------ Consensus --

TEST(ConsensusTest, MajorityRequiredByDefault) {
  ConsensusFusion fusion(DefaultOptions());
  // 3 models; object seen by 2 -> kept; object seen by 1 -> dropped.
  const auto out = fusion.Fuse({{Det(0, 0, 10, 10, 0.9)},
                                {Det(1, 0, 10, 10, 0.8),
                                 Det(100, 0, 10, 10, 0.9)},
                                {}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_LT(out[0].box.x1, 1.0);
}

TEST(ConsensusTest, SingleModelPoolKeepsAll) {
  ConsensusFusion fusion(DefaultOptions());
  const auto out = fusion.Fuse({{Det(0, 0, 10, 10, 0.9),
                                 Det(50, 0, 10, 10, 0.2)}});
  EXPECT_EQ(out.size(), 2u);  // majority of 1 is 1
}

TEST(ConsensusTest, MinVotesOverride) {
  FusionOptions opt = DefaultOptions();
  opt.min_votes = 3;
  ConsensusFusion fusion(opt);
  const auto out = fusion.Fuse({{Det(0, 0, 10, 10, 0.9)},
                                {Det(1, 0, 10, 10, 0.8)},
                                {}});
  EXPECT_TRUE(out.empty());  // only 2 of the required 3 votes
}

TEST(ConsensusTest, AgreementScalesConfidence) {
  ConsensusFusion fusion(DefaultOptions());
  // 2 of 4 models agree: confidence = mean * (2/4).
  const auto out = fusion.Fuse({{Det(0, 0, 10, 10, 0.8)},
                                {Det(0, 0, 10, 10, 0.8)},
                                {},
                                {}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0].confidence, 0.8 * 0.5, 1e-9);
}

TEST(ConsensusTest, DuplicatesFromOneModelAreOneVote) {
  ConsensusFusion fusion(DefaultOptions());
  // Model 0 emits two overlapping boxes; models 1 and 2 nothing.
  // One distinct voter < majority(3) = 2, despite two boxes in the cluster.
  const auto out = fusion.Fuse({{Det(0, 0, 10, 10, 0.9),
                                 Det(1, 0, 10, 10, 0.8)},
                                {},
                                {}});
  EXPECT_TRUE(out.empty());
}

// ------------------------------------------------- registry and options --

TEST(FusionRegistryTest, CreatesEveryKind) {
  for (FusionKind kind : AllFusionKinds()) {
    auto method = CreateEnsembleMethod(kind);
    ASSERT_TRUE(method.ok()) << FusionKindToString(kind);
    EXPECT_EQ((*method)->name(), FusionKindToString(kind));
  }
}

TEST(FusionRegistryTest, RoundTripNames) {
  for (FusionKind kind : AllFusionKinds()) {
    const auto parsed = FusionKindFromString(FusionKindToString(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
}

TEST(FusionRegistryTest, ParsesAliases) {
  EXPECT_EQ(*FusionKindFromString("wbf"), FusionKind::kWbf);
  EXPECT_EQ(*FusionKindFromString("WBF"), FusionKind::kWbf);
  EXPECT_EQ(*FusionKindFromString("soft-nms"), FusionKind::kSoftNmsLinear);
  EXPECT_EQ(*FusionKindFromString("consensus"), FusionKind::kConsensus);
  EXPECT_FALSE(FusionKindFromString("best-fusion-ever").ok());
}

TEST(FusionOptionsTest, Validation) {
  FusionOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.iou_threshold = 1.5;
  EXPECT_FALSE(o.Validate().ok());
  o = FusionOptions{};
  o.sigma = 0.0;
  EXPECT_FALSE(o.Validate().ok());
  o = FusionOptions{};
  o.score_threshold = -0.1;
  EXPECT_FALSE(o.Validate().ok());
  o = FusionOptions{};
  o.min_votes = -1;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(FusionRegistryTest, CreateRejectsBadOptions) {
  FusionOptions o;
  o.iou_threshold = -1;
  EXPECT_FALSE(CreateEnsembleMethod(FusionKind::kWbf, o).ok());
}

// Cross-method property sweep: outputs stay within the input hull per class
// and labels are preserved.
class FusionPropertyTest : public ::testing::TestWithParam<FusionKind> {};

TEST_P(FusionPropertyTest, OutputsBoundedAndLabeled) {
  auto method = CreateEnsembleMethod(GetParam());
  ASSERT_TRUE(method.ok());
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<DetectionList> inputs(3);
    double min_x = 1e9, max_x = -1e9, min_y = 1e9, max_y = -1e9;
    size_t total = 0;
    for (auto& list : inputs) {
      const int n = 1 + static_cast<int>(rng.UniformInt(5));
      for (int i = 0; i < n; ++i) {
        auto d = Det(rng.Uniform(0, 200), rng.Uniform(0, 200), 20, 20,
                     rng.Uniform(0.1, 1.0), rng.UniformInt(2));
        d.box_variance = rng.Uniform(0.1, 10.0);
        min_x = std::min(min_x, d.box.x1);
        max_x = std::max(max_x, d.box.x2);
        min_y = std::min(min_y, d.box.y1);
        max_y = std::max(max_y, d.box.y2);
        list.push_back(d);
        ++total;
      }
    }
    const auto out = (*method)->Fuse(inputs);
    EXPECT_LE(out.size(), total);
    for (const auto& d : out) {
      EXPECT_GE(d.box.x1, min_x - 1e-6);
      EXPECT_LE(d.box.x2, max_x + 1e-6);
      EXPECT_GE(d.box.y1, min_y - 1e-6);
      EXPECT_LE(d.box.y2, max_y + 1e-6);
      EXPECT_GE(d.confidence, 0.0);
      EXPECT_LE(d.confidence, 1.0);
      EXPECT_TRUE(d.label == 0 || d.label == 1);
      EXPECT_EQ(d.model_index, -1);
    }
  }
}

TEST_P(FusionPropertyTest, EmptyInputsGiveEmptyOutput) {
  auto method = CreateEnsembleMethod(GetParam());
  ASSERT_TRUE(method.ok());
  EXPECT_TRUE((*method)->Fuse({}).empty());
  EXPECT_TRUE((*method)->Fuse(std::vector<DetectionList>(3)).empty());
}

// The pointer-view input path (what matrix construction uses to avoid
// per-mask deep copies) must match the owning-vector path bit for bit.
TEST_P(FusionPropertyTest, PointerViewMatchesOwningInput) {
  auto method = CreateEnsembleMethod(GetParam());
  ASSERT_TRUE(method.ok());
  Rng rng(43);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<DetectionList> inputs(3);
    for (auto& list : inputs) {
      const int n = static_cast<int>(rng.UniformInt(6));
      for (int i = 0; i < n; ++i) {
        auto d = Det(rng.Uniform(0, 100), rng.Uniform(0, 100), 20, 20,
                     rng.Uniform(0.1, 1.0), rng.UniformInt(2));
        d.box_variance = rng.Uniform(0.1, 10.0);
        list.push_back(d);
      }
    }
    std::vector<const DetectionList*> ptrs;
    for (const auto& list : inputs) ptrs.push_back(&list);

    const auto from_copy = (*method)->Fuse(inputs);
    const auto from_view = (*method)->Fuse(DetectionListSpan(ptrs));
    ASSERT_EQ(from_copy.size(), from_view.size());
    for (size_t i = 0; i < from_copy.size(); ++i) {
      EXPECT_EQ(from_copy[i].confidence, from_view[i].confidence);
      EXPECT_EQ(from_copy[i].label, from_view[i].label);
      EXPECT_EQ(from_copy[i].box.x1, from_view[i].box.x1);
      EXPECT_EQ(from_copy[i].box.y1, from_view[i].box.y1);
      EXPECT_EQ(from_copy[i].box.x2, from_view[i].box.x2);
      EXPECT_EQ(from_copy[i].box.y2, from_view[i].box.y2);
    }
  }
}

// Fusing with the per-frame pairwise-IoU tile must match the uncached
// path bit for bit: the tile stores exactly what IoU() returns, methods
// that measure IoU against derived boxes (WBF) opt out, and a disabled
// cache degrades to recomputation.
TEST_P(FusionPropertyTest, CachedIouMatchesUncached) {
  auto method = CreateEnsembleMethod(GetParam());
  ASSERT_TRUE(method.ok());
  Rng rng(53);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<DetectionList> inputs(3);
    for (auto& list : inputs) {
      const int n = static_cast<int>(rng.UniformInt(6));
      for (int i = 0; i < n; ++i) {
        auto d = Det(rng.Uniform(0, 100), rng.Uniform(0, 100),
                     rng.Uniform(10, 40), rng.Uniform(10, 40),
                     rng.Uniform(0.1, 1.0), rng.UniformInt(2));
        d.box_variance = rng.Uniform(0.1, 10.0);
        list.push_back(d);
      }
    }
    const auto plain = (*method)->Fuse(inputs);

    const int num_ids = AssignFrameDetIds(inputs);
    const PairwiseIouCache tile(inputs, num_ids);
    std::vector<const DetectionList*> ptrs;
    for (const auto& list : inputs) ptrs.push_back(&list);
    const auto cached = (*method)->Fuse(DetectionListSpan(ptrs), &tile);
    const PairwiseIouCache disabled;
    const auto no_tile = (*method)->Fuse(DetectionListSpan(ptrs), &disabled);

    for (const auto* out : {&cached, &no_tile}) {
      ASSERT_EQ(plain.size(), out->size());
      for (size_t i = 0; i < plain.size(); ++i) {
        EXPECT_EQ(plain[i].confidence, (*out)[i].confidence);
        EXPECT_EQ(plain[i].label, (*out)[i].label);
        EXPECT_EQ(plain[i].box.x1, (*out)[i].box.x1);
        EXPECT_EQ(plain[i].box.y1, (*out)[i].box.y1);
        EXPECT_EQ(plain[i].box.x2, (*out)[i].box.x2);
        EXPECT_EQ(plain[i].box.y2, (*out)[i].box.y2);
        // Fused outputs never leak a frame-local id.
        EXPECT_EQ((*out)[i].frame_det_id, -1);
      }
    }
  }
}

// Reusing one output buffer across FuseInto calls must leave no trace of
// prior contents: the hot path hands every fusion call the same reserved
// DetectionList, so stale results from another mask or frame must be
// indistinguishable from a fresh Fuse.
TEST_P(FusionPropertyTest, FuseIntoReusedBufferMatchesFreshFuse) {
  auto method = CreateEnsembleMethod(GetParam());
  ASSERT_TRUE(method.ok());
  Rng rng(91);
  DetectionList reused;
  reused.push_back(Det(1, 2, 3, 4, 0.5));  // stale junk from a "previous" call
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<DetectionList> inputs(3);
    for (auto& list : inputs) {
      const int n = static_cast<int>(rng.UniformInt(6));
      for (int i = 0; i < n; ++i) {
        auto d = Det(rng.Uniform(0, 100), rng.Uniform(0, 100),
                     rng.Uniform(10, 40), rng.Uniform(10, 40),
                     rng.Uniform(0.1, 1.0), rng.UniformInt(2));
        d.box_variance = rng.Uniform(0.1, 10.0);
        list.push_back(d);
      }
    }
    const auto fresh = (*method)->Fuse(inputs);

    std::vector<const DetectionList*> ptrs;
    for (const auto& list : inputs) ptrs.push_back(&list);
    (*method)->FuseInto(DetectionListSpan(ptrs), nullptr, nullptr, &reused);

    ASSERT_EQ(fresh.size(), reused.size());
    for (size_t i = 0; i < fresh.size(); ++i) {
      EXPECT_EQ(fresh[i].confidence, reused[i].confidence);
      EXPECT_EQ(fresh[i].label, reused[i].label);
      EXPECT_EQ(fresh[i].box.x1, reused[i].box.x1);
      EXPECT_EQ(fresh[i].box.y1, reused[i].box.y1);
      EXPECT_EQ(fresh[i].box.x2, reused[i].box.x2);
      EXPECT_EQ(fresh[i].box.y2, reused[i].box.y2);
      EXPECT_EQ(fresh[i].box_variance, reused[i].box_variance);
    }
  }
}

// The per-frame SoA store's presorted class pools must be invisible in the
// results: fusing any subset of the frame's lists with the store engaged
// must match the generic flatten bit for bit — including equal-confidence
// ties, where the stable-sort-filter lemma carries the argument — and a
// span the store cannot map (descending list order) must quietly fall back.
TEST_P(FusionPropertyTest, SoAFastPathMatchesGenericFlatten) {
  auto method = CreateEnsembleMethod(GetParam());
  ASSERT_TRUE(method.ok());
  Rng rng(113);
  DetectionList with_soa, without;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<DetectionList> inputs(4);
    for (auto& list : inputs) {
      const int n = static_cast<int>(rng.UniformInt(8));
      for (int i = 0; i < n; ++i) {
        auto d = Det(rng.Uniform(0, 80), rng.Uniform(0, 80),
                     rng.Uniform(5, 40), rng.Uniform(5, 40),
                     rng.Uniform(0.1, 1.0),
                     static_cast<ClassId>(rng.UniformInt(3)));
        d.box_variance = rng.Uniform(0.1, 10.0);
        // Force score ties so the presorted pools' tie-breaks are exercised.
        if (rng.Bernoulli(0.3)) d.confidence = 0.5;
        list.push_back(d);
      }
    }
    const int num_ids = AssignFrameDetIds(inputs);
    const FrameSoA soa(inputs, num_ids);
    const PairwiseIouCache tile(soa);
    const PairwiseIouCache* iou =
        (*method)->ConsumesIouCache() ? &tile : nullptr;

    const auto expect_same = [&] {
      ASSERT_EQ(with_soa.size(), without.size());
      for (size_t i = 0; i < with_soa.size(); ++i) {
        EXPECT_EQ(with_soa[i].confidence, without[i].confidence);
        EXPECT_EQ(with_soa[i].label, without[i].label);
        EXPECT_EQ(with_soa[i].model_index, without[i].model_index);
        EXPECT_EQ(with_soa[i].frame_det_id, without[i].frame_det_id);
        EXPECT_EQ(with_soa[i].box_variance, without[i].box_variance);
        EXPECT_EQ(with_soa[i].box.x1, without[i].box.x1);
        EXPECT_EQ(with_soa[i].box.y1, without[i].box.y1);
        EXPECT_EQ(with_soa[i].box.x2, without[i].box.x2);
        EXPECT_EQ(with_soa[i].box.y2, without[i].box.y2);
      }
    };

    // Every non-empty subset of the lists, in ascending order — the order
    // the hot paths assemble and the fast path accepts.
    for (uint32_t mask = 1; mask < (1u << 4); ++mask) {
      std::vector<const DetectionList*> ptrs;
      for (int i = 0; i < 4; ++i) {
        if ((mask & (1u << i)) != 0) {
          ptrs.push_back(&inputs[static_cast<size_t>(i)]);
        }
      }
      (*method)->FuseInto(DetectionListSpan(ptrs), iou, &soa, &with_soa);
      (*method)->FuseInto(DetectionListSpan(ptrs), iou, nullptr, &without);
      expect_same();
    }

    // Descending list order cannot map onto the store's ascending source
    // walk: the fast path must decline, not mis-pool.
    std::vector<const DetectionList*> reversed;
    for (int i = 3; i >= 0; --i) {
      reversed.push_back(&inputs[static_cast<size_t>(i)]);
    }
    (*method)->FuseInto(DetectionListSpan(reversed), iou, &soa, &with_soa);
    (*method)->FuseInto(DetectionListSpan(reversed), iou, nullptr, &without);
    expect_same();
  }
}

// ------------------------------------------------------ SoA / IoU tile ---

// The SoA block kernel must agree with scalar IoU(a.box, b.box) bit for
// bit on every same-label pair — including degenerate geometry: zero-width
// and zero-height boxes, and byte-identical duplicates.
TEST(IouTileKernelTest, MatchesScalarIouBitForBit) {
  Rng rng(71);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<DetectionList> inputs(3);
    for (auto& list : inputs) {
      const int n = static_cast<int>(rng.UniformInt(10));
      for (int i = 0; i < n; ++i) {
        double w = rng.Uniform(0.0, 30.0);
        double h = rng.Uniform(0.0, 30.0);
        if (rng.Bernoulli(0.15)) w = 0.0;  // zero-area: degenerate width
        if (rng.Bernoulli(0.15)) h = 0.0;  // degenerate height
        list.push_back(Det(rng.Uniform(0, 60), rng.Uniform(0, 60), w, h,
                           rng.Uniform(0.05, 1.0),
                           static_cast<ClassId>(rng.UniformInt(3))));
        // Occasionally duplicate the box exactly (identical coordinates).
        if (rng.Bernoulli(0.2)) list.push_back(list.back());
      }
    }
    const int num_ids = AssignFrameDetIds(inputs);
    const FrameSoA soa(inputs, num_ids);
    const PairwiseIouCache tile(soa);

    std::vector<const Detection*> all;
    for (const auto& list : inputs) {
      for (const auto& d : list) {
        all.push_back(&d);
        // The SoA slot for this id must be a plain copy of the source.
        const size_t k = static_cast<size_t>(d.frame_det_id);
        ASSERT_TRUE(soa.id_filled(d.frame_det_id));
        EXPECT_EQ(soa.x1()[k], d.box.x1);
        EXPECT_EQ(soa.y1()[k], d.box.y1);
        EXPECT_EQ(soa.x2()[k], d.box.x2);
        EXPECT_EQ(soa.y2()[k], d.box.y2);
        EXPECT_EQ(soa.score()[k], d.confidence);
        EXPECT_EQ(soa.area()[k], d.box.Area());
        EXPECT_EQ(soa.label()[k], d.label);
      }
    }
    for (const Detection* a : all) {
      for (const Detection* b : all) {
        // Same-label pairs come from the tile; the rest recompute — both
        // must equal the scalar value exactly, in both orientations.
        EXPECT_EQ(tile.Get(*a, *b), IoU(a->box, b->box))
            << "trial " << trial << " ids " << a->frame_det_id << ","
            << b->frame_det_id;
      }
    }
  }
}

// Frames larger than kMaxCachedDetections skip the tile entirely; Get must
// degrade to recomputation for every pair, cached-range ids or not.
TEST(IouTileKernelTest, OverflowFallsBackToRecomputation) {
  Rng rng(9);
  std::vector<DetectionList> inputs(2);
  const int per_model = PairwiseIouCache::kMaxCachedDetections / 2 + 8;
  for (auto& list : inputs) {
    for (int i = 0; i < per_model; ++i) {
      list.push_back(Det(rng.Uniform(0, 200), rng.Uniform(0, 200),
                         rng.Uniform(5, 30), rng.Uniform(5, 30),
                         rng.Uniform(0.05, 1.0),
                         static_cast<ClassId>(rng.UniformInt(2))));
    }
  }
  const int num_ids = AssignFrameDetIds(inputs);
  ASSERT_GT(num_ids, PairwiseIouCache::kMaxCachedDetections);
  const PairwiseIouCache tile(inputs, num_ids);
  EXPECT_FALSE(tile.enabled());

  // Sampled pairs, including ids beyond the cacheable range and a mix of
  // assigned and unassigned (-1) ids.
  Detection fresh = Det(50, 50, 20, 20, 0.5);
  ASSERT_EQ(fresh.frame_det_id, -1);
  for (int s = 0; s < 500; ++s) {
    const auto& a = inputs[s % 2][rng.UniformInt(
        static_cast<uint64_t>(per_model))];
    const auto& b = inputs[(s + 1) % 2][rng.UniformInt(
        static_cast<uint64_t>(per_model))];
    EXPECT_EQ(tile.Get(a, b), IoU(a.box, b.box));
    EXPECT_EQ(tile.Get(a, fresh), IoU(a.box, fresh.box));
  }
}

// With the tile enabled, detections the tile has never seen (fresh fusion
// outputs with frame_det_id == -1, or ids outside the tile) recompute
// while in-range ids keep hitting the cache — mixed queries must all match
// the scalar value.
TEST(IouTileKernelTest, MixedCachedAndUncachedIds) {
  std::vector<DetectionList> inputs(2);
  inputs[0].push_back(Det(0, 0, 10, 10, 0.9));
  inputs[0].push_back(Det(5, 0, 10, 10, 0.8));
  inputs[1].push_back(Det(2, 0, 10, 10, 0.7));
  const int num_ids = AssignFrameDetIds(inputs);
  const PairwiseIouCache tile(inputs, num_ids);
  ASSERT_TRUE(tile.enabled());

  Detection fresh = Det(1, 1, 10, 10, 0.5);  // never assigned an id
  Detection stray = Det(3, 0, 10, 10, 0.6);
  stray.frame_det_id = num_ids + 5;  // id beyond the tile
  const Detection& cached_a = inputs[0][0];
  const Detection& cached_b = inputs[1][0];

  EXPECT_EQ(tile.Get(cached_a, cached_b), IoU(cached_a.box, cached_b.box));
  EXPECT_EQ(tile.Get(cached_a, fresh), IoU(cached_a.box, fresh.box));
  EXPECT_EQ(tile.Get(fresh, cached_a), IoU(fresh.box, cached_a.box));
  EXPECT_EQ(tile.Get(fresh, fresh), IoU(fresh.box, fresh.box));
  EXPECT_EQ(tile.Get(stray, cached_a), IoU(stray.box, cached_a.box));
  EXPECT_EQ(tile.Get(cached_a, stray), IoU(cached_a.box, stray.box));
}

// The indexed FrameMeanAp overload must match the list overload exactly.
TEST(GroundTruthIndexTest, IndexedFrameMeanApMatchesListOverload) {
  Rng rng(47);
  for (int trial = 0; trial < 20; ++trial) {
    GroundTruthList gt;
    const int num_gt = static_cast<int>(rng.UniformInt(8));
    for (int i = 0; i < num_gt; ++i) {
      GroundTruthBox g;
      g.box = BBox::FromXYWH(rng.Uniform(0, 100), rng.Uniform(0, 100), 20, 20);
      g.label = static_cast<ClassId>(rng.UniformInt(3));
      g.difficult = rng.Bernoulli(0.2);
      gt.push_back(g);
    }
    DetectionList dets;
    const int num_det = static_cast<int>(rng.UniformInt(10));
    for (int i = 0; i < num_det; ++i) {
      dets.push_back(Det(rng.Uniform(0, 100), rng.Uniform(0, 100), 20, 20,
                         rng.Uniform(0.05, 1.0),
                         static_cast<ClassId>(rng.UniformInt(4))));
    }
    const GroundTruthIndex index = BuildGroundTruthIndex(gt);
    EXPECT_EQ(FrameMeanAp(dets, gt, {}), FrameMeanAp(dets, index, {}));
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, FusionPropertyTest,
                         ::testing::ValuesIn(AllFusionKinds()),
                         [](const auto& info) {
                           std::string name = FusionKindToString(info.param);
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace vqe
