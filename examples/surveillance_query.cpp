// Surveillance-style declarative query (the paper's §1 motivation): find
// frames with at least two confident vehicles but no bus, using MES to pick
// the detector ensemble per frame, online, with a LiDAR-like reference.
//
//   ./build/examples/surveillance_query ["<query>"]

#include <cstdio>
#include <iostream>

#include "core/ensemble_id.h"
#include "query/executor.h"

int main(int argc, char** argv) {
  using namespace vqe;

  const std::string sql =
      argc > 1 ? argv[1]
               : "SELECT frameID "
                 "FROM (PROCESS nusc PRODUCE frameID, Detections "
                 "      USING MES(yolov7-tiny@clear, yolov7-tiny@night, "
                 "                yolov7-tiny@rainy; REF)) "
                 "WHERE COUNT(car) >= 2 AND NOT EXISTS(bus)";

  std::printf("Query:\n  %s\n\n", sql.c_str());

  QueryEngineOptions options;
  options.scene_scale = 0.02;  // small replica of V_nusc
  options.seed = 7;

  auto output = ExecuteQuery(sql, options);
  if (!output.ok()) {
    std::cerr << "query failed: " << output.status().ToString() << "\n";
    return 1;
  }

  std::printf("Processed %zu frames, %zu matched (%.1f%%).\n",
              output->frames_processed, output->frames_matched,
              output->frames_processed
                  ? 100.0 * output->frames_matched / output->frames_processed
                  : 0.0);
  std::printf("Simulated inference cost: %.1f ms (+ %.1f ms reference); "
              "wall clock %.2f s.\n",
              output->charged_cost_ms, output->reference_cost_ms,
              output->wall_seconds);

  std::printf("\nEnsembles MES settled on (top selections):\n");
  // Report the three most-selected ensembles.
  for (int rank = 0; rank < 3; ++rank) {
    size_t best = 0;
    uint64_t best_count = 0;
    for (size_t s = 1; s < output->selection_counts.size(); ++s) {
      if (output->selection_counts[s] > best_count) {
        best_count = output->selection_counts[s];
        best = s;
      }
    }
    if (best_count == 0) break;
    std::printf("  %-55s %6llu frames\n",
                EnsembleName(static_cast<EnsembleId>(best),
                             output->model_names)
                    .c_str(),
                static_cast<unsigned long long>(best_count));
    output->selection_counts[best] = 0;
  }

  std::printf("\nFirst matching frameIDs:");
  for (size_t i = 0; i < output->frame_ids.size() && i < 12; ++i) {
    std::printf(" %lld", static_cast<long long>(output->frame_ids[i]));
  }
  std::printf("%s\n", output->frame_ids.size() > 12 ? " ..." : "");
  return 0;
}
