// Fault-tolerant ingestion: a mid-video outage takes one detector down and
// a second one flakes at a low rate, yet every frame completes — failed
// members are retried under a deadline, their circuit breaker trips after
// repeated failures (masking them out of the bandit's candidate arms until
// a half-open probe succeeds), and each affected frame falls back to the
// surviving sub-ensemble. The run report shows where the time went.
//
//   ./build/examples/fault_tolerance

#include <cstdio>

#include "core/engine.h"
#include "core/experiment.h"
#include "core/mes.h"
#include "models/model_zoo.h"

int main() {
  using namespace vqe;

  const int m = 3;
  auto pool = std::move(BuildNuscenesPool(m)).value();

  ExperimentConfig config;
  config.dataset = *DatasetCatalog::Default().Find("nusc-night");
  config.scene_scale = 0.1;
  config.engine.compute_regret = false;

  // The fault-tolerance policy: one retry with a small backoff, and a
  // breaker that trips after 3 consecutive failures, cools down for 25
  // frames, then probes.
  config.matrix.retry.max_attempts = 2;
  config.matrix.retry.backoff_base_ms = 0.25;
  config.engine.breaker.failure_threshold = 3;
  config.engine.breaker.open_frames = 25;

  // The outage script: detector 0 is hard-down for frames [20, 80);
  // detector 1 drops a call now and then.
  std::vector<FaultScript> scripts(static_cast<size_t>(m));
  scripts[0].bursts.push_back(
      {/*begin_frame=*/20, /*end_frame=*/80, FaultKind::kError,
       /*context=*/-1});
  scripts[1].error_rate = 0.05;
  const DetectorPool faulty =
      std::move(ApplyFaultScripts(pool, scripts)).value();

  const auto clean = std::move(BuildTrialMatrix(config, pool, 0)).value();
  const auto degraded = std::move(BuildTrialMatrix(config, faulty, 0)).value();

  MesOptions mes_opt;
  mes_opt.gamma = 5;
  MesStrategy mes_clean(mes_opt);
  MesStrategy mes_degraded(mes_opt);
  const RunResult healthy =
      std::move(RunStrategy(clean, &mes_clean, config.engine)).value();
  const RunResult outage =
      std::move(RunStrategy(degraded, &mes_degraded, config.engine)).value();

  std::printf("MES over %zu frames of nusc-night, healthy vs outage:\n\n",
              healthy.frames_processed);
  std::printf("%-32s %12s %12s\n", "", "healthy", "outage");
  std::printf("%-32s %12.1f %12.1f\n", "sum of scores (s_sum)", healthy.s_sum,
              outage.s_sum);
  std::printf("%-32s %12.3f %12.3f\n", "avg true AP", healthy.avg_true_ap,
              outage.avg_true_ap);
  std::printf("%-32s %12zu %12zu\n", "frames processed",
              healthy.frames_processed, outage.frames_processed);
  std::printf("%-32s %12zu %12zu\n", "fallback frames",
              static_cast<size_t>(healthy.fallback_frames),
              static_cast<size_t>(outage.fallback_frames));
  std::printf("%-32s %12zu %12zu\n", "failed frames",
              static_cast<size_t>(healthy.failed_frames),
              static_cast<size_t>(outage.failed_frames));
  std::printf("%-32s %12.1f %12.1f\n", "detector time (ms)",
              healthy.breakdown.detector_ms, outage.breakdown.detector_ms);
  std::printf("%-32s %12.1f %12.1f\n\n", "time lost to faults (ms)",
              healthy.breakdown.fault_ms, outage.breakdown.fault_ms);

  std::printf("Per-model health in the outage run:\n");
  std::printf("%-24s %10s %8s %8s %10s\n", "model", "selected", "failed",
              "opens", "fault ms");
  for (int i = 0; i < m; ++i) {
    const auto& health = outage.model_availability[static_cast<size_t>(i)];
    std::printf("%-24s %10llu %8llu %8llu %10.1f\n",
                degraded.model_names[static_cast<size_t>(i)].c_str(),
                static_cast<unsigned long long>(health.frames_selected),
                static_cast<unsigned long long>(health.frames_failed),
                static_cast<unsigned long long>(health.breaker_opens),
                health.fault_ms);
  }

  std::printf(
      "\nExpected: every frame completes in both runs; the outage run "
      "shows fallback frames and fault time concentrated on the scripted "
      "detector, whose breaker opened during the outage and closed again "
      "after it.\n");
  return 0;
}
