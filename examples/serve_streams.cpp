// Multi-stream serving: six video streams with different bandit
// strategies and priority classes share one scheduler. The scheduler
// admits up to four at once and queues one more; the sixth submission is
// shed with kResourceExhausted instead of stalling. One stream runs
// against a flaky detector pool, and its failures surface in the fleet
// health snapshot without perturbing any other stream — every admitted
// stream's result is bit-identical to running it alone.
//
//   ./build/examples/serve_streams

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/baselines.h"
#include "core/engine.h"
#include "core/experiment.h"
#include "core/lazy_frame_evaluator.h"
#include "core/mes.h"
#include "models/model_zoo.h"
#include "serve/batch_dispatcher.h"
#include "serve/scheduler.h"
#include "serve/stream_session.h"

int main() {
  using namespace vqe;

  const int m = 3;
  const DetectorPool pool = std::move(BuildNuscenesPool(m)).value();

  // One flaky pool for the last stream: detector 0 goes dark mid-video.
  std::vector<FaultScript> scripts(static_cast<size_t>(m));
  scripts[0].bursts.push_back(
      {/*begin_frame=*/10, /*end_frame=*/60, FaultKind::kError,
       /*context=*/-1});

  const DatasetSpec& spec = **DatasetCatalog::Default().Find("nusc-night");
  SampleOptions sample;
  sample.scene_scale = 0.05;
  sample.seed = 11;
  const Video video = std::move(SampleVideo(spec, sample)).value();

  // Capacity: 4 active slots + a queue of 1. Submitting 6 sheds the last.
  ServeOptions options;
  options.max_sessions = 4;
  options.queue_depth = 1;
  options.quantum_ms = 100.0;
  StreamScheduler scheduler(options);
  BatchDispatcher dispatcher({/*batch_window=*/3});
  scheduler.AttachBatchDispatcher(&dispatcher);

  struct Spec {
    const char* name;
    PriorityClass priority;
    bool faulty;
  };
  const std::vector<Spec> streams = {
      {"dashcam-a", PriorityClass::kInteractive, false},
      {"dashcam-b", PriorityClass::kStandard, false},
      {"garage-cam", PriorityClass::kStandard, false},
      {"backfill", PriorityClass::kBatch, false},
      {"night-cam", PriorityClass::kStandard, true},
      {"overflow", PriorityClass::kBatch, false},
  };

  for (size_t i = 0; i < streams.size(); ++i) {
    const Spec& s = streams[i];
    std::vector<std::unique_ptr<DetectorPool>> owned;
    const DetectorPool* effective = &pool;
    if (s.faulty) {
      auto faulty = std::make_unique<DetectorPool>(
          std::move(ApplyFaultScripts(pool, scripts)).value());
      effective = faulty.get();
      owned.push_back(std::move(faulty));
    }
    auto batching = std::make_unique<DetectorPool>(
        std::move(MakeBatchingPool(*effective, &dispatcher, i)).value());
    const DetectorPool* serving = batching.get();
    owned.push_back(std::move(batching));

    auto source = std::move(LazyFrameEvaluator::Create(
                                video, *serving, /*trial_seed=*/i, {}))
                      .value();
    StreamSessionConfig cfg;
    cfg.name = s.name;
    cfg.priority = s.priority;
    cfg.engine.strategy_seed = 40 + i;
    cfg.engine.compute_regret = false;
    for (const auto& det : serving->detectors) {
      cfg.model_names.push_back(det->name());
    }
    MesOptions mes_opt;
    mes_opt.gamma = 2;
    auto session = std::move(StreamSession::Create(
                                 std::move(cfg), std::move(source),
                                 std::make_unique<MesStrategy>(mes_opt),
                                 std::move(owned)))
                       .value();
    auto id = scheduler.Submit(std::move(session));
    if (id.ok()) {
      std::printf("submitted %-10s (%s)\n", s.name,
                  PriorityClassToString(s.priority));
    } else {
      std::printf("SHED      %-10s : %s\n", s.name,
                  id.status().ToString().c_str());
    }
  }

  const ServeReport report = std::move(scheduler.RunUntilDrained()).value();

  std::printf("\nper-stream results (%zu frames each):\n\n",
              video.size());
  std::printf("%-12s %-12s %8s %10s %10s %8s\n", "stream", "priority",
              "rounds", "S-score", "cost(ms)", "failed");
  for (const StreamReport& s : report.streams) {
    std::printf("%-12s %-12s %8llu %10.2f %10.1f %8llu\n", s.name.c_str(),
                PriorityClassToString(s.priority),
                static_cast<unsigned long long>(s.rounds_active),
                s.result.s_sum, s.result.charged_cost_ms,
                static_cast<unsigned long long>(s.result.failed_frames));
  }

  std::printf("\nserve stats: %llu frames in %.1f ms wall "
              "(simulated frame-clock %.1f ms across streams), "
              "%llu/%llu admitted, %llu shed, mean batch %.2f\n",
              static_cast<unsigned long long>(report.stats.frames),
              report.stats.wall_ms, report.stats.simulated_ms,
              static_cast<unsigned long long>(report.stats.admitted),
              static_cast<unsigned long long>(report.stats.submitted),
              static_cast<unsigned long long>(report.stats.shed_submissions),
              report.stats.batching.MeanBatch());

  std::printf("\nper-class breakdown (simulated frame clock):\n");
  std::printf("  %-12s %9s %9s %6s %8s %10s %10s\n", "class", "submitted",
              "admitted", "shed", "frames", "p50(ms)", "p99(ms)");
  for (int c = 0; c < kNumPriorityClasses; ++c) {
    const auto& cs = report.stats.classes[c];
    if (cs.submitted == 0 && cs.frames == 0) continue;
    std::printf("  %-12s %9llu %9llu %6llu %8llu %10.3f %10.3f\n",
                PriorityClassToString(static_cast<PriorityClass>(c)),
                static_cast<unsigned long long>(cs.submitted),
                static_cast<unsigned long long>(cs.admitted),
                static_cast<unsigned long long>(cs.shed_submissions),
                static_cast<unsigned long long>(cs.frames), cs.sim_p50_ms,
                cs.sim_p99_ms);
  }

  std::printf("\nfleet health (from per-stream availability deltas):\n");
  for (const auto& h : report.stats.fleet_health) {
    std::printf("  %-22s %6llu ok %6llu failed  breaker=%s\n",
                h.model.c_str(),
                static_cast<unsigned long long>(h.successes),
                static_cast<unsigned long long>(h.failures),
                BreakerStateToString(h.state));
  }
  return 0;
}
