// Sharded fleet serving with live migration and failover: eight streams
// hash onto three shard threads; a chaos script migrates one live stream
// between shards mid-video (through the snapshot wire format) and then
// later kills a shard outright. The lost sessions restart on the survivors,
// and every stream still finishes with a result bit-identical to running
// it alone — the fleet may move work around, but never changes what any
// stream computes.
//
//   ./build/examples/fleet_serve

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/baselines.h"
#include "core/engine.h"
#include "core/lazy_frame_evaluator.h"
#include "core/mes.h"
#include "fleet/sharded_server.h"
#include "models/model_zoo.h"
#include "sim/dataset.h"

int main() {
  using namespace vqe;

  const DetectorPool pool = std::move(BuildNuscenesPool(3)).value();
  const DatasetSpec& spec = **DatasetCatalog::Default().Find("nusc-night");
  SampleOptions sample;
  sample.scene_scale = 0.05;
  sample.seed = 11;
  const Video video = std::move(SampleVideo(spec, sample)).value();

  // The factory is the stream's identity: the fleet calls it again for a
  // migration target or a failover restart, so it must rebuild the exact
  // same deterministic session every time.
  auto make_factory = [&video, &pool](std::string name, uint64_t seed) {
    return [&video, &pool, name = std::move(name),
            seed]() -> Result<std::unique_ptr<StreamSession>> {
      VQE_ASSIGN_OR_RETURN(
          auto source, LazyFrameEvaluator::Create(video, pool, seed, {}));
      StreamSessionConfig cfg;
      cfg.name = name;
      cfg.engine.strategy_seed = 40 + seed;
      cfg.engine.compute_regret = false;
      for (const auto& det : pool.detectors) {
        cfg.model_names.push_back(det->name());
      }
      MesOptions mes_opt;
      mes_opt.gamma = 2;
      return StreamSession::Create(std::move(cfg), std::move(source),
                                   std::make_unique<MesStrategy>(mes_opt),
                                   {});
    };
  };

  FleetOptions options;
  options.num_shards = 3;
  options.max_sessions = 8;
  options.max_restarts = 2;
  options.shard.max_sessions = 8;  // any survivor can absorb the fleet
  options.shard.quantum_ms = 50.0;
  options.shard.max_frames_per_round = 4;

  std::vector<FleetStreamSpec> streams;
  std::vector<RunResult> solo;
  for (uint64_t i = 0; i < 8; ++i) {
    const std::string name = "cam-" + std::to_string(i);
    auto source =
        std::move(LazyFrameEvaluator::Create(video, pool, i, {})).value();
    MesOptions mes_opt;
    mes_opt.gamma = 2;
    MesStrategy strategy(mes_opt);
    EngineOptions engine;
    engine.strategy_seed = 40 + i;
    engine.compute_regret = false;
    solo.push_back(
        std::move(RunStrategy(*source, &strategy, engine)).value());
    streams.push_back({name, make_factory(name, i)});
    std::printf("%-8s -> shard %llu\n", name.c_str(),
                static_cast<unsigned long long>(
                    FleetRouteHash(name) %
                    static_cast<uint64_t>(options.num_shards)));
  }

  // Chaos: move one of shard 0's streams onto shard 2 at shard 0's round
  // 2, then crash shard 2 at its round 25 — the migrated stream and
  // every other session there fail over to the survivors.
  ChaosScript chaos;
  ChaosEvent migrate;
  migrate.kind = ChaosEvent::Kind::kMigrate;
  migrate.at_round = 2;
  migrate.shard = 0;
  migrate.target_shard = 2;
  for (const auto& s : streams) {
    if (FleetRouteHash(s.name) % 3 == 0) {
      migrate.stream = s.name;
      break;
    }
  }
  chaos.events.push_back(migrate);
  ChaosEvent kill;
  kill.kind = ChaosEvent::Kind::kKillShard;
  kill.at_round = 25;
  kill.shard = 2;
  chaos.events.push_back(kill);

  ShardedServer server(options);
  const FleetReport report =
      std::move(server.Run(std::move(streams), chaos)).value();

  std::printf("\nper-stream outcomes:\n");
  std::printf("%-8s %6s %9s %11s %10s %10s\n", "stream", "shard",
              "restarts", "migrations", "S-score", "identical");
  for (size_t i = 0; i < report.streams.size(); ++i) {
    const FleetStreamReport& s = report.streams[i];
    const bool same =
        s.report.status.ok() &&
        s.report.result.s_sum == solo[i].s_sum &&
        s.report.result.frames_processed == solo[i].frames_processed &&
        s.report.result.selection_counts == solo[i].selection_counts;
    std::printf("%-8s %6d %9d %11d %10.2f %10s\n", s.name.c_str(), s.shard,
                s.restarts, s.migrations, s.report.result.s_sum,
                same ? "yes" : "NO");
  }

  const FleetStats& st = report.stats;
  std::printf("\nfleet: %llu/%llu streams completed on %d shards "
              "(%d killed, %llu failed over) in %.1f ms\n",
              static_cast<unsigned long long>(st.completed_streams),
              static_cast<unsigned long long>(st.admitted), st.num_shards,
              st.shards_killed,
              static_cast<unsigned long long>(st.failover_streams),
              st.wall_ms);
  std::printf("migrations: %llu attempted, %llu completed, "
              "%llu rejected corrupt, %llu fallback restarts\n",
              static_cast<unsigned long long>(st.migration.attempted),
              static_cast<unsigned long long>(st.migration.completed),
              static_cast<unsigned long long>(st.migration.rejected_corrupt),
              static_cast<unsigned long long>(
                  st.migration.fallback_restarts));
  for (const auto& shard : st.shards) {
    std::printf("  shard %d: %s, %llu frames, %llu rounds\n", shard.shard,
                shard.dead ? "DEAD (stats lost)" : "alive",
                static_cast<unsigned long long>(shard.stats.frames),
                static_cast<unsigned long long>(shard.stats.rounds));
  }
  return 0;
}
