// Command-line query runner: execute a query from the command line (or run
// a demo query), with EXPLAIN-only mode and tunable replica options.
//
//   ./build/examples/vqe_query_cli "<query>"
//   ./build/examples/vqe_query_cli --explain "<query>"
//   ./build/examples/vqe_query_cli --trace-out q.json "<query>"
//   ./build/examples/vqe_query_cli            # demo query
//
// --trace-out writes the run's Chrome trace-event JSON (loadable in
// Perfetto / chrome://tracing); --metrics-out writes Prometheus-style
// text exposition. Either flag enables the observability layer for the
// run; without them the executor runs with observability disabled.
//
// Exit code 0 on success, 1 on parse/execution errors (message on stderr).

#include <cstdio>
#include <cstring>
#include <iostream>

#include "core/ensemble_id.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "query/executor.h"
#include "query/explain.h"
#include "query/parser.h"

namespace {

constexpr const char* kDemoQuery =
    "SELECT frameID "
    "FROM (PROCESS nusc SCALE 0.02 SEED 7 PRODUCE frameID, Detections "
    "      USING MES(*; REF)) "
    "WHERE COUNT(car) >= 2 LIMIT 25";

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: vqe_query_cli [--explain] [--trace-out <path>]\n"
      "                     [--metrics-out <path>] [\"<query>\"]\n"
      "  --explain            print the logical plan without executing\n"
      "  --trace-out <path>   write Chrome trace-event JSON (Perfetto)\n"
      "  --metrics-out <path> write Prometheus-style metrics text\n"
      "  (no query)           runs a demo query against a nusc replica\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vqe;

  bool explain_only = false;
  std::string sql;
  std::string trace_out;
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--explain") == 0) {
      explain_only = true;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      PrintUsage();
      return 0;
    } else if (sql.empty()) {
      sql = argv[i];
    } else {
      PrintUsage();
      return 1;
    }
  }
  if (sql.empty()) sql = kDemoQuery;

  auto parsed = ParseQuery(sql);
  if (!parsed.ok()) {
    std::cerr << "parse error: " << parsed.status().ToString() << "\n";
    return 1;
  }
  std::fputs(ExplainQuery(*parsed).c_str(), stdout);
  if (explain_only) return 0;

  Observability obs;
  QueryEngineOptions options;
  if (!trace_out.empty() || !metrics_out.empty()) {
    options.obs = trace_out.empty() ? obs.metrics_handle() : obs.handle();
  }

  auto out = ExecuteQuery(*parsed, options);
  if (!out.ok()) {
    std::cerr << "execution error: " << out.status().ToString() << "\n";
    return 1;
  }

  std::printf("\nframeID\n-------\n");
  for (int64_t id : out->frame_ids) {
    std::printf("%lld\n", static_cast<long long>(id));
  }
  std::printf("-------\n%zu rows (%zu frames processed, %.0f ms simulated "
              "inference + %.0f ms reference, %.2f s wall clock)\n",
              out->frames_matched, out->frames_processed,
              out->charged_cost_ms, out->reference_cost_ms,
              out->wall_seconds);

  // Selection summary: the ensemble the strategy used most.
  size_t top = 0;
  for (size_t s = 1; s < out->selection_counts.size(); ++s) {
    if (out->selection_counts[s] > out->selection_counts[top]) top = s;
  }
  if (top != 0) {
    std::printf("most-selected ensemble: %s (%llu frames)\n",
                EnsembleName(static_cast<EnsembleId>(top), out->model_names)
                    .c_str(),
                static_cast<unsigned long long>(out->selection_counts[top]));
  }

  if (!trace_out.empty()) {
    Status s = WriteChromeTraceFile(obs.trace(), trace_out);
    if (!s.ok()) {
      std::cerr << "trace write failed: " << s.ToString() << "\n";
      return 1;
    }
    std::printf("wrote trace: %s (%zu events, %llu dropped)\n",
                trace_out.c_str(), obs.trace().event_count(),
                static_cast<unsigned long long>(obs.trace().dropped_events()));
  }
  if (!metrics_out.empty()) {
    Status s = WriteMetricsFile(obs.metrics(), metrics_out);
    if (!s.ok()) {
      std::cerr << "metrics write failed: " << s.ToString() << "\n";
      return 1;
    }
    std::printf("wrote metrics: %s\n", metrics_out.c_str());
  }
  return 0;
}
