// Track-level analytics: count distinct vehicles passing through a stream
// and answer a persistence query ("frames with at least two tracked cars"),
// combining MES ensemble selection, the SORT-style tracker, and the TRACKS
// aggregate of the query dialect.
//
//   ./build/examples/track_analytics

#include <cstdio>
#include <iostream>
#include <map>

#include "models/model_zoo.h"
#include "query/executor.h"
#include "query/explain.h"
#include "query/parser.h"
#include "sim/dataset.h"
#include "sim/object_classes.h"
#include "track/tracker.h"

int main() {
  using namespace vqe;

  // --- Part 1: declarative persistence query -----------------------------
  const std::string sql =
      "SELECT frameID "
      "FROM (PROCESS nusc-clear SCALE 0.05 SEED 11 PRODUCE frameID, "
      "      Detections USING MES(*; REF)) "
      "WHERE TRACKS(car) >= 2";

  auto parsed = ParseQuery(sql);
  if (!parsed.ok()) {
    std::cerr << parsed.status().ToString() << "\n";
    return 1;
  }
  std::printf("Plan:\n%s\n", ExplainQuery(*parsed).c_str());

  auto out = ExecuteQuery(*parsed);
  if (!out.ok()) {
    std::cerr << out.status().ToString() << "\n";
    return 1;
  }
  std::printf("Frames with >= 2 confirmed car tracks: %zu of %zu (%.1f%%)\n\n",
              out->frames_matched, out->frames_processed,
              100.0 * out->frames_matched / out->frames_processed);

  // --- Part 2: library-level track census ---------------------------------
  // Run the tracker over the full-pool detections of the same stream and
  // census the distinct objects per class.
  const DatasetSpec* spec = *DatasetCatalog::Default().Find("nusc-clear");
  SampleOptions sample;
  sample.scene_scale = 0.05;
  sample.seed = 11;
  const Video video = std::move(SampleVideo(*spec, sample)).value();
  auto pool = std::move(BuildNuscenesPool(3)).value();
  auto fusion = std::move(CreateEnsembleMethod(FusionKind::kWbf)).value();

  IouTracker tracker;
  for (const VideoFrame& frame : video.frames) {
    std::vector<DetectionList> outs;
    for (const auto& det : pool.detectors) {
      outs.push_back(det->Detect(frame, sample.seed));
    }
    tracker.Update(fusion->Fuse(outs), frame.frame_index);
  }

  std::map<ClassId, int> census;
  std::map<ClassId, double> lifetime;
  auto tally = [&](const Track& t) {
    if (t.hits < tracker.options().min_hits) return;
    ++census[t.label];
    lifetime[t.label] += static_cast<double>(t.Age());
  };
  for (const Track& t : tracker.finished_tracks()) tally(t);
  for (const Track& t : tracker.tracks()) tally(t);

  std::printf("Distinct tracked objects over %zu frames (confirmed only):\n",
              video.size());
  std::printf("  %-14s %8s %14s\n", "class", "tracks", "avg life (fr)");
  for (const auto& [cls, count] : census) {
    std::printf("  %-14s %8d %14.1f\n", ClassIdToName(cls).c_str(), count,
                lifetime[cls] / count);
  }

  // Actual distinct ground-truth objects, for reference.
  std::map<ClassId, std::map<int64_t, bool>> gt_objects;
  for (const auto& frame : video.frames) {
    for (const auto& obj : frame.objects) {
      gt_objects[obj.label][obj.object_id] = true;
    }
  }
  std::printf("\nGround truth distinct objects:\n");
  for (const auto& [cls, ids] : gt_objects) {
    std::printf("  %-14s %8zu\n", ClassIdToName(cls).c_str(), ids.size());
  }
  std::printf("\n(Track counts exceed GT counts when identities fragment — "
              "the classic MOT trade-off; raise min_hits to trade recall "
              "for purity.)\n");
  return 0;
}
