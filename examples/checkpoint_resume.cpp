// Crash-safe checkpointing: an ingestion run is killed every 40 frames and
// restarted from its newest on-disk snapshot generation, as a supervisor
// would restart a crashed worker. The demo then verifies the stitched-
// together run is bit-identical to one that never crashed, and reports what
// the checkpoints cost.
//
//   ./build/examples/checkpoint_resume

#include <cstdio>
#include <string>

#include "core/engine.h"
#include "core/experiment.h"
#include "core/mes.h"
#include "models/model_zoo.h"
#include "snapshot/checkpoint.h"

int main() {
  using namespace vqe;

  const int m = 3;
  auto pool = std::move(BuildNuscenesPool(m)).value();

  ExperimentConfig config;
  config.dataset = *DatasetCatalog::Default().Find("nusc-night");
  config.scene_scale = 0.1;
  config.engine.compute_regret = false;
  const auto matrix = std::move(BuildTrialMatrix(config, pool, 0)).value();

  MesOptions mes_opt;
  mes_opt.gamma = 5;

  // The uninterrupted reference run.
  MesStrategy reference(mes_opt);
  const RunResult baseline =
      std::move(RunStrategy(matrix, &reference, config.engine)).value();

  // The crash-looped run: snapshot every 10 frames, die after 40.
  EngineOptions engine = config.engine;
  engine.checkpoint.directory = "/tmp/vqe-checkpoint-demo";
  engine.checkpoint.every_frames = 10;
  engine.checkpoint.crash_after_frames = 40;

  {
    // Clear generations left by a previous demo invocation: they describe
    // an already-finished run and would (correctly) be resumed otherwise.
    CheckpointManager stale(engine.checkpoint.directory);
    for (const uint64_t sequence : stale.ListGenerations()) {
      std::remove(stale.GenerationPath(sequence).c_str());
    }
  }

  RunResult resumed;
  int restarts = 0;
  for (;;) {
    MesStrategy strategy(mes_opt);  // a restarted process starts cold
    Result<RunResult> run = RunStrategy(matrix, &strategy, engine);
    if (run.ok()) {
      resumed = std::move(run).value();
      break;
    }
    // Status::Aborted is the injected crash; anything else is a real bug.
    std::printf("  crash #%d: %s\n", ++restarts,
                run.status().ToString().c_str());
  }

  std::printf(
      "\nMES over %zu frames of nusc-night; killed every 40 frames, "
      "resumed %d times from %s\n\n",
      baseline.frames_processed, restarts,
      engine.checkpoint.directory.c_str());

  const bool identical =
      baseline.s_sum == resumed.s_sum &&
      baseline.avg_true_ap == resumed.avg_true_ap &&
      baseline.avg_norm_cost == resumed.avg_norm_cost &&
      baseline.charged_cost_ms == resumed.charged_cost_ms &&
      baseline.frames_processed == resumed.frames_processed &&
      baseline.selection_counts == resumed.selection_counts &&
      baseline.breakdown.detector_ms == resumed.breakdown.detector_ms &&
      baseline.breakdown.reference_ms == resumed.breakdown.reference_ms &&
      baseline.breakdown.ensembling_ms == resumed.breakdown.ensembling_ms;

  std::printf("%-36s %14s %14s\n", "", "uninterrupted", "crash-looped");
  std::printf("%-36s %14.3f %14.3f\n", "sum of scores (s_sum)",
              baseline.s_sum, resumed.s_sum);
  std::printf("%-36s %14.4f %14.4f\n", "avg true AP", baseline.avg_true_ap,
              resumed.avg_true_ap);
  std::printf("%-36s %14.1f %14.1f\n", "charged cost (ms)",
              baseline.charged_cost_ms, resumed.charged_cost_ms);
  std::printf("%-36s %14zu %14zu\n\n", "frames processed",
              baseline.frames_processed, resumed.frames_processed);

  const auto& report = resumed.checkpoint;
  std::printf("final invocation resumed from frame %zu\n",
              report.resumed_from_frame);
  std::printf("snapshots written (final invocation): %llu\n",
              static_cast<unsigned long long>(report.snapshots_written));
  if (report.snapshots_written > 0) {
    std::printf("checkpoint overhead: %.3f ms total, %.3f ms/snapshot\n",
                report.checkpoint_write_ms,
                report.checkpoint_write_ms /
                    static_cast<double>(report.snapshots_written));
  }

  std::printf("\nbit-identity verdict: %s\n",
              identical ? "IDENTICAL — every compared field matches bit "
                          "for bit"
                        : "MISMATCH — resume is broken, file a bug");
  return identical ? 0 : 1;
}
