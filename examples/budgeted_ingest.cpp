// Budgeted video ingestion (the TCVI problem): pre-process as much of a
// video archive as a fixed time budget allows using MES-B, then use LRBP to
// estimate the extra budget needed to finish the archive.
//
//   ./build/examples/budgeted_ingest [budget_ms]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/baselines.h"
#include "core/engine.h"
#include "core/experiment.h"
#include "core/lrbp.h"
#include "core/mes.h"
#include "core/mes_b.h"
#include "models/model_zoo.h"

int main(int argc, char** argv) {
  using namespace vqe;

  const double budget_ms = argc > 1 ? std::atof(argv[1]) : 8000.0;

  auto pool = std::move(BuildNuscenesPool(5)).value();
  ExperimentConfig config;
  config.dataset = *DatasetCatalog::Default().Find("nusc");
  config.scene_scale = 0.04;  // ~1700-frame replica of the archive

  auto matrix_result = BuildTrialMatrix(config, pool, /*trial=*/0);
  if (!matrix_result.ok()) {
    std::cerr << matrix_result.status().ToString() << "\n";
    return 1;
  }
  const FrameMatrix matrix = std::move(matrix_result).value();
  std::printf("Archive: %zu frames. Budget: %.0f ms of simulated GPU time.\n\n",
              matrix.size(), budget_ms);

  EngineOptions engine;
  engine.sc = ScoringFunction{0.5, 0.5};
  engine.budget_ms = budget_ms;
  engine.record_cost_curve = true;

  // MES-B: budget-aware (UCB-BV ratio) selection under Alg. 2 accounting.
  MesBStrategy mes_b;
  auto run_result = RunStrategy(matrix, &mes_b, engine);
  if (!run_result.ok()) {
    std::cerr << run_result.status().ToString() << "\n";
    return 1;
  }
  const RunResult run = std::move(run_result).value();

  std::printf("Processed |V_B| = %zu of %zu frames before exhausting B.\n",
              run.frames_processed, matrix.size());
  std::printf("  sum of scores: %.1f   avg AP: %.3f   avg cost: %.3f\n",
              run.s_sum, run.avg_true_ap, run.avg_norm_cost);
  std::printf("  consumed %.0f ms (overshoot <= one frame, per Alg. 2)\n\n",
              run.charged_cost_ms);

  if (run.frames_processed < matrix.size()) {
    const auto pred = PredictExtraBudget(run.cost_curve, matrix.size(), 0.3);
    if (pred.ok()) {
      std::printf("LRBP: finishing the remaining %zu frames under the same "
                  "strategy needs ~%.0f more ms\n",
                  matrix.size() - run.frames_processed, pred->b_extra);
      std::printf("      (fitted marginal cost %.2f ms/frame, R^2 = %.4f)\n",
                  pred->fit.slope, pred->fit.r_squared);

      // Verify the prediction by actually finishing without a budget.
      MesBStrategy mes_full;
      EngineOptions unrestricted = engine;
      unrestricted.budget_ms = 0.0;
      const auto full = RunStrategy(matrix, &mes_full, unrestricted);
      const double actual = full->charged_cost_ms - run.charged_cost_ms;
      std::printf("      actual extra cost: %.0f ms (prediction error "
                  "%.1f%%)\n",
                  actual, 100.0 * std::abs(pred->b_extra - actual) / actual);
    }
  } else {
    std::printf("Budget was sufficient for the whole archive.\n");
  }

  // Remedial alternative from §3.2: finish with the lightest detector.
  std::printf("\nAlternative: processing leftovers with the lightest single "
              "detector costs ~%.0f ms\n",
              static_cast<double>(matrix.size() - run.frames_processed) *
                  7.7);
  return 0;
}
