// Concept-drift adaptation (the TUVI-CD problem): a surveillance-style
// stream alternating between clear and night segments. Cumulative MES locks
// onto the long-run mixture while SW-MES re-specializes after every
// breakpoint; this example prints what each algorithm selects per segment.
//
//   ./build/examples/drift_adaptation

#include <cstdio>
#include <iostream>
#include <map>

#include "common/rng.h"
#include "core/engine.h"
#include "core/experiment.h"
#include "core/mes.h"
#include "models/model_zoo.h"
#include "sim/video.h"

namespace {

// A strategy wrapper that records the selection per frame.
class RecordingStrategy : public vqe::SelectionStrategy {
 public:
  explicit RecordingStrategy(std::unique_ptr<vqe::SelectionStrategy> inner)
      : inner_(std::move(inner)) {}
  const std::string& name() const override { return inner_->name(); }
  void BeginVideo(const vqe::StrategyContext& ctx) override {
    selections.clear();
    inner_->BeginVideo(ctx);
  }
  vqe::EnsembleId Select(size_t t) override {
    const vqe::EnsembleId s = inner_->Select(t);
    selections.push_back(s);
    return s;
  }
  void Observe(const vqe::FrameFeedback& feedback) override {
    inner_->Observe(feedback);
  }
  std::vector<vqe::EnsembleId> selections;

 private:
  std::unique_ptr<vqe::SelectionStrategy> inner_;
};

}  // namespace

int main() {
  using namespace vqe;

  auto pool = std::move(BuildNuscenesPool(5)).value();
  ExperimentConfig config;
  config.dataset = *DatasetCatalog::Default().Find("c&n");
  config.scene_scale = 0.5;  // segments of a few hundred frames

  // Sample the same drifting video the matrix is built from, to report the
  // per-segment contexts alongside the selections.
  SampleOptions sample;
  sample.scene_scale = config.scene_scale;
  sample.seed = HashCombine(config.base_seed, 0);
  const Video video =
      std::move(SampleVideo(*config.dataset, sample)).value();
  auto matrix = std::move(BuildTrialMatrix(config, pool, 0)).value();

  const auto breakpoints = ContextBreakpoints(video);
  std::printf("Drifting stream: %zu frames, %zu context breakpoints.\n\n",
              video.size(), breakpoints.size());

  EngineOptions engine;
  engine.sc = ScoringFunction{0.5, 0.5};

  RecordingStrategy mes(std::make_unique<MesStrategy>());
  SwMesOptions sw_opt;
  sw_opt.window = 450;
  sw_opt.exploration_scale = 0.05;
  RecordingStrategy sw(std::make_unique<SwMesStrategy>(sw_opt));

  const auto mes_run = RunStrategy(matrix, &mes, engine);
  const auto sw_run = RunStrategy(matrix, &sw, engine);

  std::printf("%-38s %12s %12s\n", "", "MES", "SW-MES");
  std::printf("%-38s %12.1f %12.1f\n", "sum of scores (s_sum)",
              mes_run->s_sum, sw_run->s_sum);
  std::printf("%-38s %12.3f %12.3f\n", "avg true AP", mes_run->avg_true_ap,
              sw_run->avg_true_ap);
  std::printf("%-38s %12.3f %12.3f\n\n", "avg normalized cost",
              mes_run->avg_norm_cost, sw_run->avg_norm_cost);

  // Per-segment modal selection of each algorithm.
  std::printf("Per-segment behaviour (modal ensemble selected):\n");
  std::printf("%-9s %-7s %-9s %-34s %s\n", "segment", "frames", "context",
              "MES", "SW-MES");
  size_t start = 0;
  int segment = 0;
  auto segment_mode = [&](const std::vector<EnsembleId>& sel, size_t lo,
                          size_t hi) {
    std::map<EnsembleId, int> counts;
    for (size_t t = lo; t < hi && t < sel.size(); ++t) ++counts[sel[t]];
    EnsembleId best = 1;
    int best_count = 0;
    for (const auto& [id, c] : counts) {
      if (c > best_count) {
        best_count = c;
        best = id;
      }
    }
    return best;
  };
  std::vector<size_t> bounds = breakpoints;
  bounds.push_back(video.size());
  for (size_t end : bounds) {
    if (segment >= 12) {  // keep the printout short
      std::printf("  ... (%zu more segments)\n", bounds.size() - segment);
      break;
    }
    const EnsembleId mes_mode = segment_mode(mes.selections, start, end);
    const EnsembleId sw_mode = segment_mode(sw.selections, start, end);
    std::printf("%-9d %-7zu %-9s %-34s %s\n", segment, end - start,
                SceneContextToString(video.frames[start].context),
                EnsembleName(mes_mode, matrix.model_names).c_str(),
                EnsembleName(sw_mode, matrix.model_names).c_str());
    start = end;
    ++segment;
  }

  std::printf("\nExpected: SW-MES's modal choice follows the segment context "
              "(night specialist during night segments) while MES settles "
              "on a fixed mixture-optimal choice.\n");
  return 0;
}
