// Quickstart: run MES against the baseline strategies on a small replica of
// the nuScenes dataset and print the §5.5 measurements.
//
//   ./build/examples/quickstart
//
// Walks through the full public API: build a detector pool, sample a video,
// evaluate all ensembles per frame, run selection strategies, report.

#include <cstdio>
#include <iostream>

#include "common/table_printer.h"
#include "core/experiment.h"
#include "models/model_zoo.h"

int main() {
  using namespace vqe;

  // 1. A pool of five detectors (mixed architectures / training contexts)
  //    plus the LiDAR-like reference model used to estimate AP online.
  auto pool_result = BuildNuscenesPool(/*m=*/5);
  if (!pool_result.ok()) {
    std::cerr << pool_result.status().ToString() << "\n";
    return 1;
  }
  DetectorPool pool = std::move(pool_result).value();
  std::cout << "Detector pool:\n";
  for (const auto& d : pool.detectors) {
    std::printf("  %-22s %-13s %5.1fM params\n", d->name().c_str(),
                d->structure_name().c_str(), d->param_count() / 1e6);
  }
  std::printf("  reference: %s (%s)\n\n", pool.reference->name().c_str(),
              pool.reference->structure_name().c_str());

  // 2. Experiment on a small replica of V_nusc: 5 trials, each re-sampling
  //    the video and the detector noise.
  ExperimentConfig config;
  auto dataset = DatasetCatalog::Default().Find("nusc");
  if (!dataset.ok()) {
    std::cerr << dataset.status().ToString() << "\n";
    return 1;
  }
  config.dataset = *dataset;
  config.scene_scale = 0.01;  // ~8 scenes, ~400 frames per trial
  config.trials = 5;
  config.engine.sc = ScoringFunction{0.5, 0.5};

  // 3. The Figure-4 line-up: OPT, BF, SGL, RAND, EF, MES.
  auto strategies = DefaultTuviStrategies(/*gamma=*/10, /*ef_explore=*/2);

  auto result = RunExperiment(config, pool, strategies);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }

  // 4. Report.
  std::printf("TUVI on a %.0f-frame replica of V_nusc (5 trials)\n",
              result->avg_video_frames);
  TablePrinter table({"algorithm", "s_sum(mean)", "s_sum(sd)", "avg AP",
                      "avg cost", "regret"});
  for (const auto& o : result->outcomes) {
    char s_sum[32], sd[32], ap[32], cost[32], regret[32];
    std::snprintf(s_sum, sizeof s_sum, "%.1f", o.s_sum.mean);
    std::snprintf(sd, sizeof sd, "%.1f", o.s_sum.stddev);
    std::snprintf(ap, sizeof ap, "%.3f", o.avg_true_ap.mean);
    std::snprintf(cost, sizeof cost, "%.3f", o.avg_norm_cost.mean);
    std::snprintf(regret, sizeof regret, "%.1f", o.regret.mean);
    table.AddRow({o.label, s_sum, sd, ap, cost, regret});
  }
  table.Print(std::cout);

  const auto* opt = result->Find("OPT");
  const auto* mes = result->Find("MES");
  if (opt != nullptr && mes != nullptr && opt->s_sum.mean > 0) {
    std::printf("\nMES reaches %.1f%% of OPT's score.\n",
                100.0 * mes->s_sum.mean / opt->s_sum.mean);
  }
  return 0;
}
