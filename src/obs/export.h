// Exporters and validators for the observability layer.
//
// Chrome trace-event JSON: the "JSON Object Format" Perfetto and
// chrome://tracing load directly — {"traceEvents": [...], ...} with 'X'
// complete spans, 'i' instants and 'M' metadata naming the two domain
// processes (pid 1 = simulated clock, pid 2 = wall clock) and each
// stream/node track. Timestamps are microseconds.
//
// Prometheus-style text exposition: `# HELP` / `# TYPE` comments,
// `{domain="sim"|"wall"}` labels, histograms as cumulative
// `_bucket{le=...}` series plus `_sum`/`_count`.
//
// Both formats come with a structural validator / parser in this file so
// tests and tools gate on well-formedness without external tooling:
// ValidateChromeTrace embeds a strict recursive-descent JSON parser and
// checks trace invariants (required fields, balanced B/E, per-track
// timestamp monotonicity); ParseMetricsText round-trips the exposition
// text back into samples.

#ifndef VQE_OBS_EXPORT_H_
#define VQE_OBS_EXPORT_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vqe {

/// Writes the recorder's events (plus `dropped_events` accounting) as
/// Chrome trace-event JSON. Never silent about overflow: a nonzero drop
/// count is surfaced both in "otherData" and as an instant event.
void WriteChromeTrace(const TraceRecorder& recorder, std::ostream& os);

/// WriteChromeTrace into a string.
std::string ChromeTraceJson(const TraceRecorder& recorder);

/// Structural validation of Chrome trace-event JSON (object-with-
/// "traceEvents" or bare-array form). Checks per event: required fields
/// (ph/name/pid/tid/ts), non-negative "dur" on 'X', balanced B/E nesting
/// per (pid, tid), and per-(pid, tid) monotone non-decreasing "ts" in
/// array order for 'X'/'B'/'i' events. Returns kParseError for malformed
/// JSON (with byte offset), kInvalidArgument for structural violations.
Status ValidateChromeTrace(std::string_view json);

/// Renders every metric in the registry as Prometheus-style text.
std::string ExportMetricsText(const MetricsRegistry& registry);

struct MetricSample {
  std::string name;  ///< full series name (incl. _bucket/_sum/_count)
  std::map<std::string, std::string> labels;
  double value = 0.0;
};

/// Parses Prometheus-style exposition text back into samples (comments
/// skipped). kParseError on malformed lines, with the line number.
Result<std::vector<MetricSample>> ParseMetricsText(std::string_view text);

/// Writes ExportMetricsText / ChromeTraceJson output to a file.
Status WriteMetricsFile(const MetricsRegistry& registry,
                        const std::string& path);
Status WriteChromeTraceFile(const TraceRecorder& recorder,
                            const std::string& path);

}  // namespace vqe

#endif  // VQE_OBS_EXPORT_H_
