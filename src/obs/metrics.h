// Deterministic metrics registry: named counters, gauges and fixed-bucket
// histograms shared by every layer of the serving stack.
//
// Two observation domains, kept strictly apart:
//
//   kSimulated — values derived only from the simulated frame clock
//     (charged costs, frame counts, breaker trips). Observations are
//     converted to fixed-point integer ticks before accumulation, and
//     integer atomic addition is associative, so a simulated-domain
//     counter's final value is a pure function of the SET of observations
//     — identical across worker counts, shard counts and scheduler
//     interleavings for the same seed. SimulatedFingerprint() renders
//     exactly these metrics (counters and histograms; gauges are
//     last-write-wins and excluded) for determinism gates.
//
//   kWall — real wall-clock measurements and process bookkeeping
//     (checkpoint write latency, scheduler rounds, batch sizes). Reported
//     alongside but never mixed into the deterministic fingerprint.
//
// Concurrency. Registration (Counter/Gauge/Histogram) takes a mutex and
// may allocate — do it at setup (handles are cached by the instrumented
// layers). Re-registering a name returns the existing id, so many
// sessions instrumenting the same registry share one set of series.
// Observation (Add/AddMs/Set/Observe) is lock-free, allocation-free and
// wait-free: one relaxed atomic RMW per call. Cells live in deques, so
// registration never relocates a cell another thread is updating.

#ifndef VQE_OBS_METRICS_H_
#define VQE_OBS_METRICS_H_

#include <atomic>
#include <cmath>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace vqe {

/// Which clock an observation lives on (see header comment).
enum class MetricDomain : uint8_t { kSimulated = 0, kWall = 1 };

/// How a metric's fixed-point value renders: a plain count or
/// milliseconds (tick-scaled).
enum class MetricUnit : uint8_t { kCount = 0, kMs = 1 };

enum class MetricKind : uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

const char* MetricDomainToString(MetricDomain domain);

/// Fixed-point scale for millisecond observations: 1 tick = 1 ns of
/// simulated time. Nanosecond resolution keeps rounding far below
/// simulator noise while leaving ~213 days of headroom in a uint64.
inline constexpr double kTicksPerMs = 1e6;

inline uint64_t MsToTicks(double ms) {
  return ms > 0.0 ? static_cast<uint64_t>(std::llround(ms * kTicksPerMs))
                  : 0u;
}
inline double TicksToMs(uint64_t ticks) {
  return static_cast<double>(ticks) / kTicksPerMs;
}

class MetricsRegistry {
 public:
  using Id = uint32_t;
  static constexpr Id kInvalidId = 0xFFFFFFFFu;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // --- registration (setup path: locking, may allocate) -----------------

  /// Registers (or looks up) a monotone counter. `unit` controls both the
  /// observation call (kCount -> Add, kMs -> AddMs) and text rendering.
  Id Counter(std::string_view name, MetricDomain domain,
             MetricUnit unit = MetricUnit::kCount,
             std::string_view help = "");

  /// Registers (or looks up) a last-write-wins gauge (double-valued).
  /// Gauges are excluded from SimulatedFingerprint(): concurrent setters
  /// race by design.
  Id Gauge(std::string_view name, MetricDomain domain,
           std::string_view help = "");

  /// Registers (or looks up) a histogram with fixed upper bucket bounds
  /// (ascending, exclusive of the implicit +Inf bucket). Bounds of an
  /// already-registered name must match exactly (kInvalidId otherwise).
  Id Histogram(std::string_view name, MetricDomain domain,
               std::vector<double> bounds, MetricUnit unit = MetricUnit::kMs,
               std::string_view help = "");

  // --- observation (hot path: lock-free, allocation-free) ---------------

  /// counter += n (kCount counters).
  void Add(Id id, uint64_t n = 1);
  /// counter += ticks(ms) (kMs counters). Negative deltas clamp to zero.
  void AddMs(Id id, double ms);
  /// gauge = v (last write wins).
  void Set(Id id, double v);
  /// Histogram observation (value in the metric's unit).
  void Observe(Id id, double v);

  // --- introspection / export (quiescent reads) -------------------------

  struct HistogramValue {
    std::vector<double> bounds;         ///< upper bounds, ascending
    std::vector<uint64_t> bucket_counts;///< size bounds.size() + 1 (+Inf)
    uint64_t count = 0;
    double sum = 0.0;  ///< in the metric's unit
  };

  struct MetricView {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    MetricDomain domain = MetricDomain::kSimulated;
    MetricUnit unit = MetricUnit::kCount;
    /// Counter: value in its unit (ticks decoded for kMs). Gauge: the
    /// last-written value.
    double value = 0.0;
    /// Counter: the raw fixed-point accumulator (exact, for fingerprints).
    uint64_t raw = 0;
    /// Histogram payload (kind == kHistogram only).
    HistogramValue histogram;
  };

  /// Every registered metric, name-sorted. Values are consistent only
  /// when no concurrent observation is in flight (export after a run).
  std::vector<MetricView> Snapshot() const;

  /// Canonical text of every simulated-domain counter and histogram (raw
  /// fixed-point values, name-sorted). Two runs of the same seeded work
  /// produce byte-identical fingerprints at any worker or shard count.
  std::string SimulatedFingerprint() const;

  size_t size() const;

 private:
  struct CounterCell {
    std::atomic<uint64_t> v{0};
  };
  struct GaugeCell {
    std::atomic<uint64_t> bits{0};  ///< bit_cast'd double
  };
  struct HistogramCell {
    std::vector<double> bounds;
    /// bounds.size() + 1 buckets; deque so registration never relocates.
    std::deque<CounterCell> buckets;
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum_ticks{0};
  };
  struct Meta {
    std::string name;
    std::string help;
    MetricKind kind;
    MetricDomain domain;
    MetricUnit unit;
    uint32_t cell;  ///< index into the kind's cell deque
  };

  Id RegisterLocked(std::string_view name, MetricKind kind,
                    MetricDomain domain, MetricUnit unit,
                    std::string_view help, std::vector<double> bounds);

  mutable std::mutex mu_;  ///< guards registration state only
  /// Deque (stable references) + release-published count so observers can
  /// index metrics_ while a late registration appends.
  std::deque<Meta> metrics_;
  std::atomic<size_t> published_{0};
  std::unordered_map<std::string, Id> by_name_;
  /// Deques: push_back never moves existing cells, so observers holding
  /// an Id need no lock.
  std::deque<CounterCell> counters_;
  std::deque<GaugeCell> gauges_;
  std::deque<HistogramCell> histograms_;
};

}  // namespace vqe

#endif  // VQE_OBS_METRICS_H_
