#include "obs/export.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <unordered_map>
#include <variant>

namespace vqe {
namespace {

// ---------------------------------------------------------------------------
// Shared formatting helpers
// ---------------------------------------------------------------------------

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Shortest text that round-trips the double (never NaN/Inf — JSON and
/// the exposition format both require finite numbers).
std::string FormatDouble(double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double back = std::strtod(buf, nullptr);
  if (back == v) {
    // Try shorter renderings for readability.
    for (int prec = 1; prec <= 16; ++prec) {
      char shorter[64];
      std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
      if (std::strtod(shorter, nullptr) == v) return shorter;
    }
  }
  return buf;
}

// ---------------------------------------------------------------------------
// Chrome trace-event writer
// ---------------------------------------------------------------------------

int PidForDomain(MetricDomain domain) {
  return domain == MetricDomain::kSimulated ? 1 : 2;
}

void WriteEventJson(const TraceEvent& e, std::ostream& os) {
  os << "{\"name\":\"" << JsonEscape(e.name) << "\",\"ph\":\"" << e.phase
     << "\",\"pid\":" << PidForDomain(e.domain) << ",\"tid\":" << e.track
     << ",\"ts\":" << FormatDouble(e.ts_ms * 1000.0);
  if (e.phase == 'X') {
    os << ",\"dur\":" << FormatDouble(e.dur_ms * 1000.0);
  }
  if (e.phase == 'i') {
    os << ",\"s\":\"t\"";  // thread-scoped instant
  }
  os << ",\"args\":{";
  bool first = true;
  if (e.frame >= 0) {
    os << "\"frame\":" << e.frame;
    first = false;
  }
  if (e.arg_name != nullptr) {
    if (!first) os << ",";
    os << "\"" << JsonEscape(e.arg_name)
       << "\":" << FormatDouble(e.arg_value);
  }
  os << "}}";
}

void WriteMetadataJson(int pid, int64_t tid, const char* what,
                       const std::string& name, std::ostream& os) {
  os << "{\"name\":\"" << what << "\",\"ph\":\"M\",\"pid\":" << pid
     << ",\"tid\":" << tid << ",\"ts\":0,\"args\":{\"name\":\""
     << JsonEscape(name) << "\"}}";
}

}  // namespace

void WriteChromeTrace(const TraceRecorder& recorder, std::ostream& os) {
  const std::vector<TraceEvent> events = recorder.Collect();
  const uint64_t dropped = recorder.dropped_events();

  os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":"
     << dropped << ",\"capacity_per_thread\":"
     << recorder.capacity_per_thread() << "},\"traceEvents\":[";

  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  // Metadata: name the two domain processes, then every track seen.
  sep();
  WriteMetadataJson(1, 0, "process_name", "simulated-time", os);
  sep();
  WriteMetadataJson(2, 0, "process_name", "wall-clock", os);
  std::set<std::pair<int, int64_t>> tracks;
  for (const TraceEvent& e : events) {
    tracks.emplace(PidForDomain(e.domain), e.track);
  }
  for (const auto& [pid, tid] : tracks) {
    std::string name = tid >= kNodeTrackBase
                           ? "node " + std::to_string(tid - kNodeTrackBase)
                           : "stream " + std::to_string(tid);
    sep();
    WriteMetadataJson(pid, tid, "thread_name", name, os);
  }

  if (dropped > 0) {
    // Overflow is never silent: surface it on the timeline too. Emitted
    // at ts 0 *before* the sorted events so per-track array order stays
    // timestamp-monotone.
    sep();
    TraceEvent marker;
    marker.domain = MetricDomain::kWall;
    marker.phase = 'i';
    marker.track = kNodeTrackBase;
    marker.frame = -1;
    marker.ts_ms = 0.0;
    marker.name = "trace_buffer_overflow";
    marker.arg_name = "dropped_events";
    marker.arg_value = static_cast<double>(dropped);
    WriteEventJson(marker, os);
  }
  for (const TraceEvent& e : events) {
    sep();
    WriteEventJson(e, os);
  }
  os << "]}\n";
}

std::string ChromeTraceJson(const TraceRecorder& recorder) {
  std::ostringstream os;
  WriteChromeTrace(recorder, os);
  return os.str();
}

// ---------------------------------------------------------------------------
// Strict JSON parser (validation only — builds a lightweight DOM)
// ---------------------------------------------------------------------------

namespace {

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      v = nullptr;

  bool is_object() const { return std::holds_alternative<JsonObject>(v); }
  bool is_array() const { return std::holds_alternative<JsonArray>(v); }
  bool is_string() const { return std::holds_alternative<std::string>(v); }
  bool is_number() const { return std::holds_alternative<double>(v); }

  const JsonValue* Find(std::string_view key) const {
    if (!is_object()) return nullptr;
    for (const auto& [k, val] : std::get<JsonObject>(v)) {
      if (k == key) return &val;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue root;
    VQE_RETURN_NOT_OK(ParseValue(&root, 0));
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing content after JSON document");
    }
    return root;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::ParseError(what + " (at byte " + std::to_string(pos_) +
                              ")");
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > 64) return Error("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"': {
        std::string s;
        VQE_RETURN_NOT_OK(ParseString(&s));
        out->v = std::move(s);
        return Status::OK();
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          out->v = true;
          return Status::OK();
        }
        return Error("invalid literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          out->v = false;
          return Status::OK();
        }
        return Error("invalid literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          out->v = nullptr;
          return Status::OK();
        }
        return Error("invalid literal");
      default: return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    JsonObject obj;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      out->v = std::move(obj);
      return Status::OK();
    }
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      VQE_RETURN_NOT_OK(ParseString(&key));
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Error("expected ':' after key");
      }
      ++pos_;
      JsonValue val;
      VQE_RETURN_NOT_OK(ParseValue(&val, depth + 1));
      obj.emplace_back(std::move(key), std::move(val));
      SkipWs();
      if (pos_ >= text_.size()) return Error("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        out->v = std::move(obj);
        return Status::OK();
      }
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    JsonArray arr;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      out->v = std::move(arr);
      return Status::OK();
    }
    while (true) {
      JsonValue val;
      VQE_RETURN_NOT_OK(ParseValue(&val, depth + 1));
      arr.push_back(std::move(val));
      SkipWs();
      if (pos_ >= text_.size()) return Error("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        out->v = std::move(arr);
        return Status::OK();
      }
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening '"'
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Error("unterminated escape");
        char e = text_[pos_];
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) return Error("short \\u escape");
            for (int i = 1; i <= 4; ++i) {
              if (!std::isxdigit(
                      static_cast<unsigned char>(text_[pos_ + i]))) {
                return Error("bad \\u escape");
              }
            }
            // Validation only: keep the escape textually.
            *out += "\\u";
            *out += text_.substr(pos_ + 1, 4);
            pos_ += 4;
            break;
          }
          default: return Error("bad escape character");
        }
        ++pos_;
        continue;
      }
      *out += c;
      ++pos_;
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    size_t digits = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
      ++digits;
    }
    if (digits == 0) return Error("invalid number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      size_t frac = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++frac;
      }
      if (frac == 0) return Error("invalid number (no fraction digits)");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      size_t exp = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++exp;
      }
      if (exp == 0) return Error("invalid number (no exponent digits)");
    }
    out->v = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                         nullptr);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

Status CheckTraceEvents(const JsonArray& events) {
  struct TrackState {
    int open_spans = 0;       // B/E nesting depth
    double last_ts = -std::numeric_limits<double>::infinity();
  };
  std::map<std::pair<double, double>, TrackState> tracks;

  for (size_t i = 0; i < events.size(); ++i) {
    const JsonValue& e = events[i];
    auto fail = [&](const std::string& what) {
      return Status::InvalidArgument("traceEvents[" + std::to_string(i) +
                                     "]: " + what);
    };
    if (!e.is_object()) return fail("event is not an object");
    const JsonValue* ph = e.Find("ph");
    if (ph == nullptr || !ph->is_string()) {
      return fail("missing string field \"ph\"");
    }
    const std::string& phase = std::get<std::string>(ph->v);
    if (phase.size() != 1) return fail("\"ph\" must be one character");
    const JsonValue* name = e.Find("name");
    if (name == nullptr || !name->is_string()) {
      return fail("missing string field \"name\"");
    }
    const JsonValue* pid = e.Find("pid");
    const JsonValue* tid = e.Find("tid");
    if (pid == nullptr || !pid->is_number()) {
      return fail("missing numeric field \"pid\"");
    }
    if (tid == nullptr || !tid->is_number()) {
      return fail("missing numeric field \"tid\"");
    }
    if (phase == "M") continue;  // metadata: no timing constraints

    const JsonValue* ts = e.Find("ts");
    if (ts == nullptr || !ts->is_number()) {
      return fail("missing numeric field \"ts\"");
    }
    double ts_v = std::get<double>(ts->v);
    TrackState& track = tracks[{std::get<double>(pid->v),
                                std::get<double>(tid->v)}];
    if (phase == "X") {
      const JsonValue* dur = e.Find("dur");
      if (dur == nullptr || !dur->is_number()) {
        return fail("'X' event missing numeric \"dur\"");
      }
      if (std::get<double>(dur->v) < 0.0) {
        return fail("'X' event with negative \"dur\"");
      }
    } else if (phase == "B") {
      ++track.open_spans;
    } else if (phase == "E") {
      if (track.open_spans <= 0) {
        return fail("'E' event with no matching 'B' on its track");
      }
      --track.open_spans;
    } else if (phase != "i" && phase != "I" && phase != "C") {
      return fail("unsupported phase \"" + phase + "\"");
    }
    // Monotonicity in array order per track ('E' may close at the same
    // or later ts; it shares the same check).
    if (ts_v + 1e-9 < track.last_ts) {
      return fail("timestamps not monotone on track (ts " +
                  FormatDouble(ts_v) + " after " +
                  FormatDouble(track.last_ts) + ")");
    }
    track.last_ts = std::max(track.last_ts, ts_v);
  }
  for (const auto& [key, track] : tracks) {
    if (track.open_spans != 0) {
      return Status::InvalidArgument(
          "unbalanced B/E events: " + std::to_string(track.open_spans) +
          " span(s) left open on a track");
    }
  }
  return Status::OK();
}

}  // namespace

Status ValidateChromeTrace(std::string_view json) {
  JsonParser parser(json);
  Result<JsonValue> parsed = parser.Parse();
  if (!parsed.ok()) return parsed.status();
  const JsonValue& root = parsed.value();

  const JsonArray* events = nullptr;
  if (root.is_array()) {
    events = &std::get<JsonArray>(root.v);
  } else if (root.is_object()) {
    const JsonValue* te = root.Find("traceEvents");
    if (te == nullptr || !te->is_array()) {
      return Status::InvalidArgument(
          "root object has no \"traceEvents\" array");
    }
    events = &std::get<JsonArray>(te->v);
  } else {
    return Status::InvalidArgument(
        "root must be an object or an event array");
  }
  return CheckTraceEvents(*events);
}

// ---------------------------------------------------------------------------
// Prometheus-style text exposition
// ---------------------------------------------------------------------------

namespace {

std::string LabelEscape(std::string_view s) {
  std::string out;
  for (char c : s) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

}  // namespace

std::string ExportMetricsText(const MetricsRegistry& registry) {
  std::ostringstream os;
  for (const MetricsRegistry::MetricView& m : registry.Snapshot()) {
    const std::string domain = MetricDomainToString(m.domain);
    if (!m.help.empty()) {
      os << "# HELP " << m.name << " " << m.help << "\n";
    }
    switch (m.kind) {
      case MetricKind::kCounter:
        os << "# TYPE " << m.name << " counter\n";
        os << m.name << "{domain=\"" << domain << "\"} "
           << (m.unit == MetricUnit::kMs ? FormatDouble(m.value)
                                         : std::to_string(m.raw))
           << "\n";
        break;
      case MetricKind::kGauge:
        os << "# TYPE " << m.name << " gauge\n";
        os << m.name << "{domain=\"" << domain << "\"} "
           << FormatDouble(m.value) << "\n";
        break;
      case MetricKind::kHistogram: {
        os << "# TYPE " << m.name << " histogram\n";
        uint64_t cumulative = 0;
        for (size_t i = 0; i < m.histogram.bucket_counts.size(); ++i) {
          cumulative += m.histogram.bucket_counts[i];
          std::string le = i < m.histogram.bounds.size()
                               ? FormatDouble(m.histogram.bounds[i])
                               : "+Inf";
          os << m.name << "_bucket{domain=\"" << domain << "\",le=\""
             << LabelEscape(le) << "\"} " << cumulative << "\n";
        }
        os << m.name << "_sum{domain=\"" << domain << "\"} "
           << FormatDouble(m.histogram.sum) << "\n";
        os << m.name << "_count{domain=\"" << domain << "\"} "
           << m.histogram.count << "\n";
        break;
      }
    }
  }
  return os.str();
}

Result<std::vector<MetricSample>> ParseMetricsText(std::string_view text) {
  std::vector<MetricSample> out;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    auto fail = [&](const std::string& what) {
      return Status::ParseError(what + " (line " + std::to_string(line_no) +
                                ")");
    };
    // Trim trailing CR and surrounding spaces.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.remove_suffix(1);
    }
    while (!line.empty() && line.front() == ' ') line.remove_prefix(1);
    if (line.empty() || line[0] == '#') continue;

    MetricSample sample;
    size_t i = 0;
    auto name_char = [](char c, bool first) {
      return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
             c == ':' || (!first && std::isdigit(static_cast<unsigned char>(c)));
    };
    while (i < line.size() && name_char(line[i], i == 0)) ++i;
    if (i == 0) return fail("expected metric name");
    sample.name = std::string(line.substr(0, i));

    if (i < line.size() && line[i] == '{') {
      ++i;
      while (true) {
        if (i >= line.size()) return fail("unterminated label set");
        if (line[i] == '}') {
          ++i;
          break;
        }
        size_t key_start = i;
        while (i < line.size() && name_char(line[i], i == key_start)) ++i;
        if (i == key_start) return fail("expected label name");
        std::string key(line.substr(key_start, i - key_start));
        if (i >= line.size() || line[i] != '=') {
          return fail("expected '=' after label name");
        }
        ++i;
        if (i >= line.size() || line[i] != '"') {
          return fail("expected '\"' to open label value");
        }
        ++i;
        std::string value;
        while (i < line.size() && line[i] != '"') {
          if (line[i] == '\\') {
            ++i;
            if (i >= line.size()) return fail("unterminated escape");
            switch (line[i]) {
              case '\\': value += '\\'; break;
              case '"': value += '"'; break;
              case 'n': value += '\n'; break;
              default: return fail("bad escape in label value");
            }
          } else {
            value += line[i];
          }
          ++i;
        }
        if (i >= line.size()) return fail("unterminated label value");
        ++i;  // closing '"'
        sample.labels.emplace(std::move(key), std::move(value));
        if (i < line.size() && line[i] == ',') ++i;
      }
    }
    while (i < line.size() && line[i] == ' ') ++i;
    if (i >= line.size()) return fail("missing sample value");
    std::string value_text(line.substr(i));
    if (value_text == "+Inf") {
      sample.value = std::numeric_limits<double>::infinity();
    } else if (value_text == "-Inf") {
      sample.value = -std::numeric_limits<double>::infinity();
    } else {
      char* end = nullptr;
      sample.value = std::strtod(value_text.c_str(), &end);
      if (end == value_text.c_str()) return fail("bad sample value");
      while (*end == ' ') ++end;
      if (*end != '\0') {
        // Optional trailing timestamp (integer), per the exposition format.
        char* ts_end = nullptr;
        (void)std::strtoll(end, &ts_end, 10);
        if (ts_end == end || *ts_end != '\0') {
          return fail("trailing garbage after sample value");
        }
      }
    }
    out.push_back(std::move(sample));
  }
  return out;
}

Status WriteMetricsFile(const MetricsRegistry& registry,
                        const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return Status::Internal("cannot open metrics file: " + path);
  os << ExportMetricsText(registry);
  os.flush();
  if (!os) return Status::Internal("failed writing metrics file: " + path);
  return Status::OK();
}

Status WriteChromeTraceFile(const TraceRecorder& recorder,
                            const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return Status::Internal("cannot open trace file: " + path);
  WriteChromeTrace(recorder, os);
  os.flush();
  if (!os) return Status::Internal("failed writing trace file: " + path);
  return Status::OK();
}

}  // namespace vqe
