// Structured tracing: span ("X" complete) and instant events captured
// into per-thread bounded buffers with no locks, no allocation and no
// cross-thread contention on the hot path.
//
// Each writing thread owns a private buffer (acquired once, on its first
// event, under a mutex; cached thread-locally afterwards). Events carry a
// domain clock (simulated frame-time or wall-clock), a track (stream id
// or node id), a frame index and a per-thread sequence number, so
// Collect() can merge all buffers into a stable
// (track, timestamp, frame, seq) order regardless of which worker
// recorded what.
//
// Capacity is bounded and overflow is never silent: once a thread's
// buffer is full, further events are counted in dropped_events() and the
// earliest `capacity` events are kept (keep-oldest keeps span starts and
// per-track timestamp monotonicity intact for export).

#ifndef VQE_OBS_TRACE_H_
#define VQE_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "obs/metrics.h"

namespace vqe {

struct TraceEvent {
  MetricDomain domain = MetricDomain::kSimulated;
  char phase = 'X';    ///< 'X' complete span, 'i' instant
  int64_t track = 0;   ///< stream id; node-level tracks use >= kNodeTrackBase
  int64_t frame = -1;  ///< frame index, -1 when not frame-scoped
  uint64_t seq = 0;    ///< per-thread monotone sequence
  double ts_ms = 0.0;  ///< start time on the domain clock
  double dur_ms = 0.0; ///< span duration ('X' only)
  const char* name = "";      ///< static string (never owned)
  const char* arg_name = nullptr;  ///< optional numeric argument
  double arg_value = 0.0;
};

/// Track ids at or above this are process/node-scoped (scheduler rounds,
/// shard events) rather than stream-scoped.
inline constexpr int64_t kNodeTrackBase = 1'000'000;

class TraceRecorder {
 public:
  /// `capacity_per_thread` bounds each writer thread's buffer; overflow
  /// increments dropped_events().
  explicit TraceRecorder(size_t capacity_per_thread = 1u << 16);
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // --- hot path (lock-free after a thread's first event) ----------------

  /// Records a completed span. `name` and `arg_name` must be string
  /// literals (or otherwise outlive the recorder).
  void Span(MetricDomain domain, int64_t track, int64_t frame,
            const char* name, double ts_ms, double dur_ms,
            const char* arg_name = nullptr, double arg_value = 0.0);

  /// Records an instant event.
  void Instant(MetricDomain domain, int64_t track, int64_t frame,
               const char* name, double ts_ms,
               const char* arg_name = nullptr, double arg_value = 0.0);

  // --- quiescent reads --------------------------------------------------

  /// Total events dropped to the capacity bound, across all threads.
  uint64_t dropped_events() const;

  /// Events currently retained, across all threads.
  size_t event_count() const;

  /// Merges every thread buffer into (track, ts, frame, seq) order. Call
  /// only when no writer is in flight (after a run completes).
  std::vector<TraceEvent> Collect() const;

  size_t capacity_per_thread() const { return capacity_; }

 private:
  struct ThreadBuffer {
    std::vector<TraceEvent> events;  ///< reserved to capacity up front
    uint64_t seq = 0;
    std::atomic<uint64_t> dropped{0};
  };

  ThreadBuffer* BufferForThisThread();
  void Record(const TraceEvent& event);

  const size_t capacity_;
  const uint64_t recorder_id_;  ///< process-unique key for TLS caching

  mutable std::mutex mu_;  ///< guards buffers_ growth only
  std::deque<ThreadBuffer> buffers_;
};

}  // namespace vqe

#endif  // VQE_OBS_TRACE_H_
