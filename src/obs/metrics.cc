#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <sstream>

namespace vqe {

const char* MetricDomainToString(MetricDomain domain) {
  return domain == MetricDomain::kSimulated ? "sim" : "wall";
}

MetricsRegistry::Id MetricsRegistry::RegisterLocked(
    std::string_view name, MetricKind kind, MetricDomain domain,
    MetricUnit unit, std::string_view help, std::vector<double> bounds) {
  auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) {
    const Meta& meta = metrics_[it->second];
    if (meta.kind != kind || meta.domain != domain || meta.unit != unit) {
      return kInvalidId;
    }
    if (kind == MetricKind::kHistogram &&
        histograms_[meta.cell].bounds != bounds) {
      return kInvalidId;
    }
    return it->second;
  }
  Meta meta;
  meta.name = std::string(name);
  meta.help = std::string(help);
  meta.kind = kind;
  meta.domain = domain;
  meta.unit = unit;
  switch (kind) {
    case MetricKind::kCounter:
      meta.cell = static_cast<uint32_t>(counters_.size());
      counters_.emplace_back();
      break;
    case MetricKind::kGauge:
      meta.cell = static_cast<uint32_t>(gauges_.size());
      gauges_.emplace_back();
      break;
    case MetricKind::kHistogram: {
      if (!std::is_sorted(bounds.begin(), bounds.end())) return kInvalidId;
      meta.cell = static_cast<uint32_t>(histograms_.size());
      histograms_.emplace_back();
      HistogramCell& cell = histograms_.back();
      cell.bounds = std::move(bounds);
      for (size_t i = 0; i <= cell.bounds.size(); ++i) {
        cell.buckets.emplace_back();
      }
      break;
    }
  }
  Id id = static_cast<Id>(metrics_.size());
  metrics_.push_back(std::move(meta));
  by_name_.emplace(metrics_.back().name, id);
  published_.store(metrics_.size(), std::memory_order_release);
  return id;
}

MetricsRegistry::Id MetricsRegistry::Counter(std::string_view name,
                                             MetricDomain domain,
                                             MetricUnit unit,
                                             std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  return RegisterLocked(name, MetricKind::kCounter, domain, unit, help, {});
}

MetricsRegistry::Id MetricsRegistry::Gauge(std::string_view name,
                                           MetricDomain domain,
                                           std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  return RegisterLocked(name, MetricKind::kGauge, domain, MetricUnit::kCount,
                        help, {});
}

MetricsRegistry::Id MetricsRegistry::Histogram(std::string_view name,
                                               MetricDomain domain,
                                               std::vector<double> bounds,
                                               MetricUnit unit,
                                               std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  return RegisterLocked(name, MetricKind::kHistogram, domain, unit, help,
                        std::move(bounds));
}

void MetricsRegistry::Add(Id id, uint64_t n) {
  if (id >= published_.load(std::memory_order_acquire)) return;
  counters_[metrics_[id].cell].v.fetch_add(n, std::memory_order_relaxed);
}

void MetricsRegistry::AddMs(Id id, double ms) {
  if (id >= published_.load(std::memory_order_acquire)) return;
  counters_[metrics_[id].cell].v.fetch_add(MsToTicks(ms),
                                           std::memory_order_relaxed);
}

void MetricsRegistry::Set(Id id, double v) {
  if (id >= published_.load(std::memory_order_acquire)) return;
  gauges_[metrics_[id].cell].bits.store(std::bit_cast<uint64_t>(v),
                                        std::memory_order_relaxed);
}

void MetricsRegistry::Observe(Id id, double v) {
  if (id >= published_.load(std::memory_order_acquire)) return;
  HistogramCell& cell = histograms_[metrics_[id].cell];
  // First bucket whose upper bound admits v; the final (+Inf) bucket
  // catches everything else.
  size_t bucket =
      std::upper_bound(cell.bounds.begin(), cell.bounds.end(), v) -
      cell.bounds.begin();
  if (bucket > 0 && bucket <= cell.bounds.size() &&
      v == cell.bounds[bucket - 1]) {
    // Prometheus buckets are inclusive of their upper bound.
    --bucket;
  }
  cell.buckets[bucket].v.fetch_add(1, std::memory_order_relaxed);
  cell.count.fetch_add(1, std::memory_order_relaxed);
  cell.sum_ticks.fetch_add(MsToTicks(v), std::memory_order_relaxed);
}

std::vector<MetricsRegistry::MetricView> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricView> out;
  out.reserve(metrics_.size());
  for (const Meta& meta : metrics_) {
    MetricView view;
    view.name = meta.name;
    view.help = meta.help;
    view.kind = meta.kind;
    view.domain = meta.domain;
    view.unit = meta.unit;
    switch (meta.kind) {
      case MetricKind::kCounter: {
        view.raw = counters_[meta.cell].v.load(std::memory_order_relaxed);
        view.value = meta.unit == MetricUnit::kMs
                         ? TicksToMs(view.raw)
                         : static_cast<double>(view.raw);
        break;
      }
      case MetricKind::kGauge: {
        view.raw = gauges_[meta.cell].bits.load(std::memory_order_relaxed);
        view.value = std::bit_cast<double>(view.raw);
        break;
      }
      case MetricKind::kHistogram: {
        const HistogramCell& cell = histograms_[meta.cell];
        view.histogram.bounds = cell.bounds;
        view.histogram.bucket_counts.reserve(cell.buckets.size());
        for (const CounterCell& b : cell.buckets) {
          view.histogram.bucket_counts.push_back(
              b.v.load(std::memory_order_relaxed));
        }
        view.histogram.count = cell.count.load(std::memory_order_relaxed);
        view.raw = cell.sum_ticks.load(std::memory_order_relaxed);
        view.histogram.sum = TicksToMs(view.raw);
        view.value = view.histogram.sum;
        break;
      }
    }
    out.push_back(std::move(view));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricView& a, const MetricView& b) {
              return a.name < b.name;
            });
  return out;
}

std::string MetricsRegistry::SimulatedFingerprint() const {
  std::ostringstream os;
  for (const MetricView& view : Snapshot()) {
    if (view.domain != MetricDomain::kSimulated) continue;
    switch (view.kind) {
      case MetricKind::kCounter:
        os << view.name << " " << view.raw << "\n";
        break;
      case MetricKind::kGauge:
        break;  // last-write-wins: ordering-dependent, excluded
      case MetricKind::kHistogram: {
        os << view.name << " sum_ticks=" << view.raw
           << " count=" << view.histogram.count << " buckets=";
        for (size_t i = 0; i < view.histogram.bucket_counts.size(); ++i) {
          if (i) os << ",";
          os << view.histogram.bucket_counts[i];
        }
        os << "\n";
        break;
      }
    }
  }
  return os.str();
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_.size();
}

}  // namespace vqe
