#include "obs/trace.h"

#include <algorithm>
#include <cstring>

namespace vqe {
namespace {

std::atomic<uint64_t> g_next_recorder_id{1};

/// TLS cache: most threads talk to exactly one recorder, so a one-entry
/// cache plus a small linear-probe overflow list avoids any per-event
/// hashing or allocation. Keyed by recorder id (not pointer) so a
/// recorder reallocated at the same address never aliases a stale entry.
struct TlsSlot {
  uint64_t recorder_id = 0;
  void* buffer = nullptr;
};
constexpr size_t kTlsSlots = 8;
thread_local TlsSlot tls_slots[kTlsSlots];

}  // namespace

TraceRecorder::TraceRecorder(size_t capacity_per_thread)
    : capacity_(capacity_per_thread == 0 ? 1 : capacity_per_thread),
      recorder_id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)) {}

TraceRecorder::ThreadBuffer* TraceRecorder::BufferForThisThread() {
  for (TlsSlot& slot : tls_slots) {
    if (slot.recorder_id == recorder_id_) {
      return static_cast<ThreadBuffer*>(slot.buffer);
    }
  }
  // First event from this thread: allocate its buffer (rare, locked).
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.emplace_back();
  ThreadBuffer* buffer = &buffers_.back();
  buffer->events.reserve(capacity_);
  for (TlsSlot& slot : tls_slots) {
    if (slot.recorder_id == 0) {
      slot = {recorder_id_, buffer};
      return buffer;
    }
  }
  // All TLS slots taken (a thread juggling > kTlsSlots live recorders):
  // evict the first slot. The evicted recorder re-registers a fresh
  // buffer on its next event from this thread, which is correct, just
  // slower.
  tls_slots[0] = {recorder_id_, buffer};
  return buffer;
}

void TraceRecorder::Record(const TraceEvent& event) {
  ThreadBuffer* buffer = BufferForThisThread();
  if (buffer->events.size() >= capacity_) {
    buffer->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer->events.push_back(event);
  buffer->events.back().seq = buffer->seq++;
}

void TraceRecorder::Span(MetricDomain domain, int64_t track, int64_t frame,
                         const char* name, double ts_ms, double dur_ms,
                         const char* arg_name, double arg_value) {
  TraceEvent event;
  event.domain = domain;
  event.phase = 'X';
  event.track = track;
  event.frame = frame;
  event.ts_ms = ts_ms;
  event.dur_ms = dur_ms < 0.0 ? 0.0 : dur_ms;
  event.name = name;
  event.arg_name = arg_name;
  event.arg_value = arg_value;
  Record(event);
}

void TraceRecorder::Instant(MetricDomain domain, int64_t track, int64_t frame,
                            const char* name, double ts_ms,
                            const char* arg_name, double arg_value) {
  TraceEvent event;
  event.domain = domain;
  event.phase = 'i';
  event.track = track;
  event.frame = frame;
  event.ts_ms = ts_ms;
  event.name = name;
  event.arg_name = arg_name;
  event.arg_value = arg_value;
  Record(event);
}

uint64_t TraceRecorder::dropped_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const ThreadBuffer& buffer : buffers_) {
    total += buffer.dropped.load(std::memory_order_relaxed);
  }
  return total;
}

size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const ThreadBuffer& buffer : buffers_) {
    total += buffer.events.size();
  }
  return total;
}

std::vector<TraceEvent> TraceRecorder::Collect() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    size_t total = 0;
    for (const ThreadBuffer& buffer : buffers_) total += buffer.events.size();
    out.reserve(total);
    for (const ThreadBuffer& buffer : buffers_) {
      out.insert(out.end(), buffer.events.begin(), buffer.events.end());
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.domain != b.domain) return a.domain < b.domain;
                     if (a.track != b.track) return a.track < b.track;
                     if (a.ts_ms != b.ts_ms) return a.ts_ms < b.ts_ms;
                     if (a.frame != b.frame) return a.frame < b.frame;
                     if (a.seq != b.seq) return a.seq < b.seq;
                     return std::strcmp(a.name, b.name) < 0;
                   });
  return out;
}

}  // namespace vqe
