// The observability facade threaded through the stack.
//
// `ObsHandle` is a cheap value (two pointers + a track id) passed down
// through options structs. Default-constructed it is disabled: every
// instrumentation site guards on `enabled()` (or the finer-grained
// `metrics`/`trace` pointers), so the disabled path costs one branch and
// performs zero allocations — outputs stay bit-identical to a build that
// never heard of observability. `Observability` owns the registry and
// recorder and hands out handles.
//
// Attribution: `WithStream(id)` rebinds the handle's trace track to a
// stream so engine-level spans land on that stream's timeline;
// `WithNodeTrack(n)` binds process-scoped tracks (scheduler, shards) at
// kNodeTrackBase + n. Metrics are registry-global — simulated-domain
// counters aggregate identically across worker and shard counts, which
// is what the determinism gate fingerprints.

#ifndef VQE_OBS_OBS_H_
#define VQE_OBS_OBS_H_

#include <cstdint>
#include <memory>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace vqe {

struct ObsHandle {
  MetricsRegistry* metrics = nullptr;
  TraceRecorder* trace = nullptr;
  int64_t track = 0;

  bool enabled() const { return metrics != nullptr || trace != nullptr; }

  ObsHandle WithStream(int64_t stream_id) const {
    ObsHandle h = *this;
    h.track = stream_id;
    return h;
  }
  ObsHandle WithNodeTrack(int64_t node) const {
    ObsHandle h = *this;
    h.track = kNodeTrackBase + node;
    return h;
  }

  // Convenience wrappers so call sites stay one-liners. All are no-ops
  // on a disabled handle / invalid id.
  void Count(MetricsRegistry::Id id, uint64_t n = 1) const {
    if (metrics) metrics->Add(id, n);
  }
  void CountMs(MetricsRegistry::Id id, double ms) const {
    if (metrics) metrics->AddMs(id, ms);
  }
  void Gauge(MetricsRegistry::Id id, double v) const {
    if (metrics) metrics->Set(id, v);
  }
  void Observe(MetricsRegistry::Id id, double v) const {
    if (metrics) metrics->Observe(id, v);
  }
  void Span(MetricDomain domain, int64_t frame, const char* name,
            double ts_ms, double dur_ms, const char* arg_name = nullptr,
            double arg_value = 0.0) const {
    if (trace) {
      trace->Span(domain, track, frame, name, ts_ms, dur_ms, arg_name,
                  arg_value);
    }
  }
  void Instant(MetricDomain domain, int64_t frame, const char* name,
               double ts_ms, const char* arg_name = nullptr,
               double arg_value = 0.0) const {
    if (trace) {
      trace->Instant(domain, track, frame, name, ts_ms, arg_name, arg_value);
    }
  }
};

/// Owns one registry + one recorder for a process (or a test).
class Observability {
 public:
  explicit Observability(size_t trace_capacity_per_thread = 1u << 16)
      : trace_(trace_capacity_per_thread) {}

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  TraceRecorder& trace() { return trace_; }
  const TraceRecorder& trace() const { return trace_; }

  ObsHandle handle() {
    ObsHandle h;
    h.metrics = &metrics_;
    h.trace = &trace_;
    return h;
  }
  /// Metrics only — for callers that want counters without trace volume.
  ObsHandle metrics_handle() {
    ObsHandle h;
    h.metrics = &metrics_;
    return h;
  }

 private:
  MetricsRegistry metrics_;
  TraceRecorder trace_;
};

}  // namespace vqe

#endif  // VQE_OBS_OBS_H_
