// Versioned, checksummed, length-prefixed snapshot container.
//
// File layout (all integers little-endian):
//
//   [8]  magic  "VQESNAP1"
//   [4]  u32    format version (currently 1)
//   [4]  u32    section count
//   [4]  u32    CRC-32 of the 16 header bytes above
//   per section:
//     [4+n] name        (u32 byte-length prefix + UTF-8 bytes)
//     [8]   u64         payload length
//     [...] payload     (section-private wire format, see engine_snapshot)
//     [4]   u32         CRC-32 of the whole section record (name length,
//                       name, payload length, payload) — a bit flip in
//                       the *name* must be caught too, since readers
//                       route by it
//
// SnapshotReader::Parse validates everything up front — magic, version,
// header CRC, every section CRC, duplicate names, truncation, trailing
// bytes — and returns DataLoss on the first inconsistency, so callers never
// see a partially-valid snapshot. Sections are looked up by name; unknown
// sections are ignored on read (forward compatibility within a version).

#ifndef VQE_SNAPSHOT_SNAPSHOT_H_
#define VQE_SNAPSHOT_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "snapshot/wire.h"

namespace vqe {

/// Current snapshot container format version.
inline constexpr uint32_t kSnapshotVersion = 1;

/// The 8-byte magic at the start of every snapshot file.
inline constexpr char kSnapshotMagic[8] = {'V', 'Q', 'E', 'S',
                                           'N', 'A', 'P', '1'};

/// Builds a snapshot file from named sections.
class SnapshotWriter {
 public:
  /// Opens a new section and returns its payload encoder. The reference
  /// stays valid until Finish(); section order is preserved in the file.
  /// Adding a duplicate name is a programming error (asserted).
  ByteWriter& AddSection(const std::string& name);

  /// Serializes header + all sections with their CRCs.
  std::vector<uint8_t> Finish() const;

 private:
  std::vector<std::pair<std::string, ByteWriter>> sections_;
};

/// Parses and validates a snapshot file; hands out per-section readers.
class SnapshotReader {
 public:
  /// A default-constructed reader has no sections; real readers come from
  /// Parse(). Public so aggregate holders (CheckpointManager::Loaded) work.
  SnapshotReader() = default;

  /// Full validation pass. Any structural problem (bad magic, version
  /// mismatch, CRC failure, truncation, duplicate or oversized section
  /// name, trailing bytes) returns DataLoss and no reader.
  static Result<SnapshotReader> Parse(std::vector<uint8_t> bytes);

  bool HasSection(const std::string& name) const {
    return sections_.count(name) != 0;
  }

  /// Reader over the named section's payload; NotFound if absent.
  Result<ByteReader> Section(const std::string& name) const;

  /// Section names in file order.
  const std::vector<std::string>& section_names() const { return names_; }

 private:
  std::vector<uint8_t> bytes_;  // owned so ByteReader views stay valid
  std::map<std::string, std::pair<size_t, size_t>> sections_;  // offset, len
  std::vector<std::string> names_;
};

}  // namespace vqe

#endif  // VQE_SNAPSHOT_SNAPSHOT_H_
