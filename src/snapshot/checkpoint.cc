#include "snapshot/checkpoint.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

namespace vqe {
namespace {

namespace fs = std::filesystem;

constexpr char kPrefix[] = "ckpt-";
constexpr char kSuffix[] = ".vqesnap";

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

/// Parses "<ckpt-><8+ digits><.vqesnap>" into a sequence number.
bool ParseGeneration(const std::string& filename, uint64_t* seq) {
  const size_t prefix_len = sizeof(kPrefix) - 1;
  const size_t suffix_len = sizeof(kSuffix) - 1;
  if (filename.size() <= prefix_len + suffix_len) return false;
  if (filename.compare(0, prefix_len, kPrefix) != 0) return false;
  if (filename.compare(filename.size() - suffix_len, suffix_len, kSuffix) !=
      0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = prefix_len; i < filename.size() - suffix_len; ++i) {
    const char c = filename[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *seq = value;
  return true;
}

/// Writes + fsyncs a file through a POSIX fd so the data is durable before
/// the rename makes it visible.
Status WriteFileDurably(const std::string& path,
                        const std::vector<uint8_t>& bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::Internal(Errno("open " + path));
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status st = Status::Internal(Errno("write " + path));
      ::close(fd);
      return st;
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const Status st = Status::Internal(Errno("fsync " + path));
    ::close(fd);
    return st;
  }
  if (::close(fd) != 0) return Status::Internal(Errno("close " + path));
  return Status::OK();
}

Status FsyncDirectory(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::Internal(Errno("open dir " + dir));
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::Internal(Errno("fsync dir " + dir));
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  if (in.bad()) return Status::Internal("read error on " + path);
  return bytes;
}

}  // namespace

Status CheckpointPolicy::Validate() const {
  if (!enabled()) {
    if (every_frames > 0 && directory.empty()) {
      return Status::InvalidArgument(
          "checkpoint cadence set but no directory given");
    }
    return Status::OK();
  }
  if (keep_generations < 1) {
    return Status::InvalidArgument("keep_generations must be >= 1");
  }
  return Status::OK();
}

CheckpointManager::CheckpointManager(std::string directory,
                                     int keep_generations)
    : directory_(std::move(directory)),
      keep_generations_(std::max(1, keep_generations)) {}

Status CheckpointManager::Init() {
  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec) {
    return Status::Internal("create_directories " + directory_ + ": " +
                            ec.message());
  }
  return Status::OK();
}

std::string CheckpointManager::GenerationPath(uint64_t sequence) const {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%08llu%s", kPrefix,
                static_cast<unsigned long long>(sequence), kSuffix);
  return directory_ + "/" + name;
}

Status CheckpointManager::Write(uint64_t sequence,
                                const std::vector<uint8_t>& bytes) {
  VQE_RETURN_NOT_OK(Init());
  const std::string final_path = GenerationPath(sequence);
  const std::string tmp_path = final_path + ".tmp";
  VQE_RETURN_NOT_OK(WriteFileDurably(tmp_path, bytes));
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return Status::Internal(Errno("rename " + tmp_path));
  }
  VQE_RETURN_NOT_OK(FsyncDirectory(directory_));

  // Prune: keep the newest keep_generations_ generations.
  std::vector<uint64_t> gens = ListGenerations();
  if (gens.size() > static_cast<size_t>(keep_generations_)) {
    const size_t drop = gens.size() - static_cast<size_t>(keep_generations_);
    for (size_t i = 0; i < drop; ++i) {
      std::error_code ec;
      fs::remove(GenerationPath(gens[i]), ec);  // best-effort
    }
  }
  return Status::OK();
}

std::vector<uint64_t> CheckpointManager::ListGenerations() const {
  std::vector<uint64_t> gens;
  std::error_code ec;
  fs::directory_iterator it(directory_, ec);
  if (ec) return gens;
  for (const auto& entry : it) {
    uint64_t seq;
    if (ParseGeneration(entry.path().filename().string(), &seq)) {
      gens.push_back(seq);
    }
  }
  std::sort(gens.begin(), gens.end());
  return gens;
}

Result<CheckpointManager::Loaded> CheckpointManager::LoadLatestGood() const {
  std::vector<uint64_t> gens = ListGenerations();
  int rejected = 0;
  for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
    auto bytes = ReadFileBytes(GenerationPath(*it));
    if (!bytes.ok()) {
      ++rejected;
      continue;
    }
    auto snap = SnapshotReader::Parse(std::move(bytes).value());
    if (!snap.ok()) {
      ++rejected;
      continue;
    }
    Loaded loaded;
    loaded.sequence = *it;
    loaded.snapshot = std::move(snap).value();
    loaded.rejected = rejected;
    corrupt_rejections_.fetch_add(static_cast<uint64_t>(rejected),
                                  std::memory_order_relaxed);
    return loaded;
  }
  corrupt_rejections_.fetch_add(static_cast<uint64_t>(rejected),
                                std::memory_order_relaxed);
  return Status::NotFound("no usable checkpoint generation in " + directory_);
}

}  // namespace vqe
