// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Used by the snapshot container to checksum every section payload so that
// truncated or bit-flipped files are rejected instead of silently resuming
// from garbage. Table-driven, byte-at-a-time: snapshot payloads are small
// (KBs) and written once per checkpoint cadence, so simplicity wins over
// slice-by-8 tricks.

#ifndef VQE_SNAPSHOT_CRC32_H_
#define VQE_SNAPSHOT_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace vqe {

/// Continues a CRC-32 over `size` bytes from a previous value. Start a fresh
/// checksum by passing crc = 0.
uint32_t Crc32Update(uint32_t crc, const void* data, size_t size);

/// CRC-32 of a single buffer.
inline uint32_t Crc32(const void* data, size_t size) {
  return Crc32Update(0, data, size);
}

}  // namespace vqe

#endif  // VQE_SNAPSHOT_CRC32_H_
