// Fixed-width little-endian wire encoding for snapshot payloads.
//
// ByteWriter appends primitives to a growable buffer; ByteReader consumes
// them with every read bounds-checked, returning Status instead of reading
// past the end. A hostile length prefix can never force an allocation larger
// than the bytes actually present (vector readers cap the element count by
// the remaining payload before reserving).
//
// Values are encoded byte-by-byte in little-endian order, so snapshots are
// portable across hosts regardless of native endianness. Doubles travel as
// their IEEE-754 bit pattern (std::bit_cast), preserving bit-identity of
// resumed runs — including NaN payloads.

#ifndef VQE_SNAPSHOT_WIRE_H_
#define VQE_SNAPSHOT_WIRE_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace vqe {

/// Append-only encoder. Never fails; the buffer grows as needed.
class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }

  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(uint8_t(v >> (8 * i)));
  }

  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(uint8_t(v >> (8 * i)));
  }

  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }

  void F64(double v) { U64(std::bit_cast<uint64_t>(v)); }

  void Bool(bool v) { U8(v ? 1 : 0); }

  /// u32 byte-length prefix followed by raw bytes.
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Bytes(s.data(), s.size());
  }

  void Bytes(const void* data, size_t size) {
    const auto* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + size);
  }

  const std::vector<uint8_t>& bytes() const { return buf_; }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

/// Bounds-checked decoder over a non-owned byte range.
class ByteReader {
 public:
  ByteReader() : data_(nullptr), size_(0), pos_(0) {}
  ByteReader(const void* data, size_t size)
      : data_(static_cast<const uint8_t*>(data)), size_(size), pos_(0) {}

  size_t remaining() const { return size_ - pos_; }
  size_t pos() const { return pos_; }

  /// Advances past `n` bytes without decoding them.
  Status Skip(size_t n) {
    VQE_RETURN_NOT_OK(Need(n));
    pos_ += n;
    return Status::OK();
  }

  Status U8(uint8_t* out) {
    VQE_RETURN_NOT_OK(Need(1));
    *out = data_[pos_++];
    return Status::OK();
  }

  Status U32(uint32_t* out) {
    VQE_RETURN_NOT_OK(Need(4));
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= uint32_t(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  Status U64(uint64_t* out) {
    VQE_RETURN_NOT_OK(Need(8));
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= uint64_t(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    *out = v;
    return Status::OK();
  }

  Status I64(int64_t* out) {
    uint64_t v = 0;
    VQE_RETURN_NOT_OK(U64(&v));
    *out = static_cast<int64_t>(v);
    return Status::OK();
  }

  Status F64(double* out) {
    uint64_t v = 0;
    VQE_RETURN_NOT_OK(U64(&v));
    *out = std::bit_cast<double>(v);
    return Status::OK();
  }

  /// A bool must be exactly 0 or 1 on the wire; anything else is corruption.
  Status Bool(bool* out) {
    uint8_t v = 0;
    VQE_RETURN_NOT_OK(U8(&v));
    if (v > 1) return Status::DataLoss("bool byte out of range");
    *out = (v == 1);
    return Status::OK();
  }

  Status Str(std::string* out) {
    uint32_t len = 0;
    VQE_RETURN_NOT_OK(U32(&len));
    VQE_RETURN_NOT_OK(Need(len));
    out->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return Status::OK();
  }

  /// Fails unless every byte has been consumed — catches payloads with
  /// trailing garbage (e.g. a stale section format).
  Status ExpectEnd() const {
    if (pos_ != size_) {
      return Status::DataLoss("payload has " + std::to_string(size_ - pos_) +
                              " unconsumed trailing byte(s)");
    }
    return Status::OK();
  }

 private:
  Status Need(size_t n) const {
    if (size_ - pos_ < n) {
      return Status::DataLoss("truncated payload: need " + std::to_string(n) +
                              " byte(s), have " +
                              std::to_string(size_ - pos_));
    }
    return Status::OK();
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_;
};

// -- Vector helpers -----------------------------------------------------
// u64 element-count prefix, then packed elements. Readers verify the count
// against the remaining payload BEFORE allocating, so a forged count cannot
// trigger an outsized allocation.

inline void WriteVecU64(ByteWriter& w, const std::vector<uint64_t>& v) {
  w.U64(v.size());
  for (uint64_t x : v) w.U64(x);
}

inline Status ReadVecU64(ByteReader& r, std::vector<uint64_t>* out) {
  uint64_t n = 0;
  VQE_RETURN_NOT_OK(r.U64(&n));
  if (n > r.remaining() / 8) return Status::DataLoss("vector count exceeds payload");
  out->clear();
  out->reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t x = 0;
    VQE_RETURN_NOT_OK(r.U64(&x));
    out->push_back(x);
  }
  return Status::OK();
}

inline void WriteVecF64(ByteWriter& w, const std::vector<double>& v) {
  w.U64(v.size());
  for (double x : v) w.F64(x);
}

inline Status ReadVecF64(ByteReader& r, std::vector<double>* out) {
  uint64_t n = 0;
  VQE_RETURN_NOT_OK(r.U64(&n));
  if (n > r.remaining() / 8) return Status::DataLoss("vector count exceeds payload");
  out->clear();
  out->reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    double x = 0;
    VQE_RETURN_NOT_OK(r.F64(&x));
    out->push_back(x);
  }
  return Status::OK();
}

inline void WriteVecU32(ByteWriter& w, const std::vector<uint32_t>& v) {
  w.U64(v.size());
  for (uint32_t x : v) w.U32(x);
}

inline Status ReadVecU32(ByteReader& r, std::vector<uint32_t>* out) {
  uint64_t n = 0;
  VQE_RETURN_NOT_OK(r.U64(&n));
  if (n > r.remaining() / 4) return Status::DataLoss("vector count exceeds payload");
  out->clear();
  out->reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t x = 0;
    VQE_RETURN_NOT_OK(r.U32(&x));
    out->push_back(x);
  }
  return Status::OK();
}

}  // namespace vqe

#endif  // VQE_SNAPSHOT_WIRE_H_
