// Crash-atomic checkpoint persistence with generational fallback.
//
// A checkpoint directory holds numbered generations:
//
//   <dir>/ckpt-00000003.vqesnap
//   <dir>/ckpt-00000004.vqesnap      <- newest
//
// Writes follow the classic crash-atomicity protocol: serialize to
// ckpt-<seq>.tmp, fsync the file, rename(2) onto the final name (atomic on
// POSIX), then fsync the directory so the rename itself is durable. A crash
// at any point leaves either the previous generation set intact or the new
// file fully in place — never a half-written visible snapshot.
//
// Loads walk generations newest-first and return the first one that passes
// full container validation (magic + version + per-section CRC32), counting
// how many corrupt/truncated generations were rejected along the way. This
// is the "fall back to the last good generation" behaviour the resume path
// relies on when the newest file was damaged mid-write or bit-flipped at
// rest.

#ifndef VQE_SNAPSHOT_CHECKPOINT_H_
#define VQE_SNAPSHOT_CHECKPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "snapshot/snapshot.h"

namespace vqe {

/// Checkpoint knobs shared by EngineOptions / ExperimentConfig /
/// QueryEngineOptions.
struct CheckpointPolicy {
  /// Write a snapshot every N processed frames (frame clock, not wall
  /// clock — keeps cadence deterministic). 0 disables checkpointing.
  size_t every_frames = 0;

  /// Directory for generation files. Created on demand.
  std::string directory;

  /// How many good generations to retain; older ones are pruned after each
  /// successful write. Minimum 1; 2 gives one fallback generation.
  int keep_generations = 2;

  /// When true (default), a run looks for an existing good generation in
  /// `directory` and resumes from it; when false it starts fresh (existing
  /// generations are left alone until overwritten by sequence number).
  bool resume = true;

  /// Snapshot the evaluation source's memo (lazy backend) alongside engine
  /// state. Costs snapshot bytes; without it a resumed lazy run recomputes
  /// cells on demand (results are identical either way — the memo is a
  /// cache — but the materialization counters then differ).
  bool include_source = true;

  /// Crash injection for tests/demos: abort the run (Status::Aborted) after
  /// processing this many frames IN THIS INVOCATION. 0 = off.
  size_t crash_after_frames = 0;

  bool enabled() const { return every_frames > 0 && !directory.empty(); }

  /// InvalidArgument when enabled with nonsensical knobs.
  Status Validate() const;
};

/// Owns the generation files of one checkpoint directory.
class CheckpointManager {
 public:
  explicit CheckpointManager(std::string directory, int keep_generations = 2);

  /// Creates the directory (mkdir -p semantics).
  Status Init();

  /// Atomically persists `bytes` as generation `sequence`, then prunes
  /// generations older than the retention window.
  Status Write(uint64_t sequence, const std::vector<uint8_t>& bytes);

  struct Loaded {
    uint64_t sequence = 0;     ///< generation number that validated
    SnapshotReader snapshot;   ///< fully parsed, CRC-verified container
    int rejected = 0;          ///< newer generations discarded as corrupt
  };

  /// Newest generation that passes full validation; NotFound when the
  /// directory has no usable generation (callers then start fresh).
  Result<Loaded> LoadLatestGood() const;

  /// Generation numbers present on disk, ascending (for tests/tools).
  std::vector<uint64_t> ListGenerations() const;

  /// Cumulative count of generations rejected as corrupt/unreadable across
  /// every LoadLatestGood on this manager. Unlike Loaded::rejected (one
  /// load's skips) this survives across loads, so long-lived holders —
  /// fleet failover, resumed sessions — can report silent-corruption totals.
  uint64_t corrupt_generations_detected() const {
    return corrupt_rejections_.load(std::memory_order_relaxed);
  }

  const std::string& directory() const { return directory_; }

  /// Path of a given generation file (exposed for corruption tests).
  std::string GenerationPath(uint64_t sequence) const;

 private:
  std::string directory_;
  int keep_generations_;
  /// See corrupt_generations_detected(); mutable because LoadLatestGood is
  /// logically const (atomic: Snapshot readers may poll concurrently).
  mutable std::atomic<uint64_t> corrupt_rejections_{0};
};

}  // namespace vqe

#endif  // VQE_SNAPSHOT_CHECKPOINT_H_
