#include "snapshot/snapshot.h"

#include <cassert>
#include <cstring>

#include "snapshot/crc32.h"

namespace vqe {
namespace {

// A section name longer than this is corruption, not a real name.
constexpr uint32_t kMaxSectionNameLen = 256;

}  // namespace

ByteWriter& SnapshotWriter::AddSection(const std::string& name) {
  assert(!name.empty() && name.size() <= kMaxSectionNameLen);
  for ([[maybe_unused]] const auto& [existing, writer] : sections_) {
    assert(existing != name && "duplicate snapshot section");
  }
  sections_.emplace_back(name, ByteWriter{});
  return sections_.back().second;
}

std::vector<uint8_t> SnapshotWriter::Finish() const {
  ByteWriter out;
  out.Bytes(kSnapshotMagic, sizeof(kSnapshotMagic));
  out.U32(kSnapshotVersion);
  out.U32(static_cast<uint32_t>(sections_.size()));
  out.U32(Crc32(out.bytes().data(), out.size()));
  for (const auto& [name, payload] : sections_) {
    // The CRC covers the whole section record — name length, name,
    // payload length, payload — so a flipped bit anywhere (including in
    // the name, which routing decisions hang off) is caught.
    const size_t section_start = out.size();
    out.Str(name);
    out.U64(payload.size());
    out.Bytes(payload.bytes().data(), payload.size());
    out.U32(Crc32(out.bytes().data() + section_start,
                  out.size() - section_start));
  }
  return out.bytes();
}

Result<SnapshotReader> SnapshotReader::Parse(std::vector<uint8_t> bytes) {
  SnapshotReader snap;
  snap.bytes_ = std::move(bytes);
  ByteReader r(snap.bytes_.data(), snap.bytes_.size());

  // Header: magic, version, section count, header CRC.
  if (snap.bytes_.size() < sizeof(kSnapshotMagic) + 12 ||
      std::memcmp(snap.bytes_.data(), kSnapshotMagic,
                  sizeof(kSnapshotMagic)) != 0) {
    return Status::DataLoss("bad or truncated snapshot magic");
  }
  VQE_RETURN_NOT_OK(r.Skip(sizeof(kSnapshotMagic)));
  uint32_t version = 0, section_count = 0, header_crc = 0;
  VQE_RETURN_NOT_OK(r.U32(&version));
  VQE_RETURN_NOT_OK(r.U32(&section_count));
  const size_t header_end = r.pos();
  VQE_RETURN_NOT_OK(r.U32(&header_crc));
  if (header_crc != Crc32(snap.bytes_.data(), header_end)) {
    return Status::DataLoss("snapshot header CRC mismatch");
  }
  if (version != kSnapshotVersion) {
    return Status::DataLoss("unsupported snapshot version " +
                            std::to_string(version));
  }

  for (uint32_t i = 0; i < section_count; ++i) {
    const size_t section_start = r.pos();
    std::string name;
    VQE_RETURN_NOT_OK(r.Str(&name));
    if (name.empty() || name.size() > kMaxSectionNameLen) {
      return Status::DataLoss("snapshot section name length out of range");
    }
    uint64_t payload_len = 0;
    VQE_RETURN_NOT_OK(r.U64(&payload_len));
    const size_t payload_off = r.pos();
    if (payload_len > r.remaining() ||
        !r.Skip(static_cast<size_t>(payload_len)).ok()) {
      return Status::DataLoss("section '" + name + "' payload truncated");
    }
    const size_t section_end = r.pos();  // CRC spans name through payload
    uint32_t crc = 0;
    VQE_RETURN_NOT_OK(r.U32(&crc));
    if (crc != Crc32(snap.bytes_.data() + section_start,
                     section_end - section_start)) {
      return Status::DataLoss("section '" + name + "' CRC mismatch");
    }
    if (!snap.sections_
             .emplace(name, std::make_pair(payload_off,
                                           static_cast<size_t>(payload_len)))
             .second) {
      return Status::DataLoss("duplicate snapshot section '" + name + "'");
    }
    snap.names_.push_back(name);
  }
  VQE_RETURN_NOT_OK(r.ExpectEnd());
  return snap;
}

Result<ByteReader> SnapshotReader::Section(const std::string& name) const {
  auto it = sections_.find(name);
  if (it == sections_.end()) {
    return Status::NotFound("snapshot section '" + name + "' missing");
  }
  return ByteReader(bytes_.data() + it->second.first, it->second.second);
}

}  // namespace vqe
