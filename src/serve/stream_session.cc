#include "serve/stream_session.h"

#include <utility>

namespace vqe {

int PriorityWeight(PriorityClass priority) {
  switch (priority) {
    case PriorityClass::kInteractive:
      return 4;
    case PriorityClass::kStandard:
      return 2;
    case PriorityClass::kBatch:
      return 1;
  }
  return 1;
}

const char* PriorityClassToString(PriorityClass priority) {
  switch (priority) {
    case PriorityClass::kInteractive:
      return "interactive";
    case PriorityClass::kStandard:
      return "standard";
    case PriorityClass::kBatch:
      return "batch";
  }
  return "unknown";
}

Status StreamSessionConfig::Validate() const {
  if (name.empty()) {
    return Status::InvalidArgument("stream session needs a name");
  }
  return engine.Validate();
}

StreamSession::StreamSession(
    StreamSessionConfig config, std::unique_ptr<EvaluationSource> source,
    std::unique_ptr<SelectionStrategy> strategy,
    std::vector<std::unique_ptr<DetectorPool>> owned_pools)
    : config_(std::move(config)),
      owned_pools_(std::move(owned_pools)),
      source_(std::move(source)),
      strategy_(std::move(strategy)) {}

Result<std::unique_ptr<StreamSession>> StreamSession::Create(
    StreamSessionConfig config, std::unique_ptr<EvaluationSource> source,
    std::unique_ptr<SelectionStrategy> strategy,
    std::vector<std::unique_ptr<DetectorPool>> owned_pools) {
  VQE_RETURN_NOT_OK(config.Validate());
  if (source == nullptr) {
    return Status::InvalidArgument("stream session needs an evaluation source");
  }
  if (strategy == nullptr) {
    return Status::InvalidArgument("stream session needs a strategy");
  }
  if (!config.model_names.empty() &&
      static_cast<int>(config.model_names.size()) != source->num_models()) {
    return Status::InvalidArgument(
        "model_names must be empty or index-aligned with the source's models");
  }
  std::unique_ptr<StreamSession> session(
      new StreamSession(std::move(config), std::move(source),
                        std::move(strategy), std::move(owned_pools)));
  VQE_ASSIGN_OR_RETURN(
      session->run_,
      EngineRun::Create(*session->source_, session->strategy_.get(),
                        session->config_.engine));
  return session;
}

Status StreamSession::ImplantState(const std::vector<uint8_t>& bytes) {
  VQE_ASSIGN_OR_RETURN(SnapshotReader snapshot,
                       SnapshotReader::Parse(bytes));
  VQE_RETURN_NOT_OK(run_->RestoreFromSnapshot(snapshot));
  // Sync the fleet-health cursors to the migrated counters: the source
  // shard already published this history, the target publishes only what
  // happens from here on.
  const auto& avail = run_->result().model_availability;
  published_selected_.assign(avail.size(), 0);
  published_failed_.assign(avail.size(), 0);
  for (size_t i = 0; i < avail.size(); ++i) {
    published_selected_[i] = avail[i].frames_selected;
    published_failed_[i] = avail[i].frames_failed;
  }
  return Status::OK();
}

Status StreamSession::StepFrame(uint64_t fleet_tick) {
  const Status status = run_->StepFrame();
  if (registry_ != nullptr && !config_.model_names.empty()) {
    // Publish outcome deltas even for a frame that Aborted mid-step (crash
    // injection fires after the member calls ran, so the counters moved).
    const auto& avail = run_->result().model_availability;
    published_selected_.resize(avail.size(), 0);
    published_failed_.resize(avail.size(), 0);
    for (size_t i = 0; i < avail.size() && i < config_.model_names.size();
         ++i) {
      const uint64_t selected = avail[i].frames_selected;
      const uint64_t failed = avail[i].frames_failed;
      const uint64_t d_selected = selected - published_selected_[i];
      const uint64_t d_failed = failed - published_failed_[i];
      published_selected_[i] = selected;
      published_failed_[i] = failed;
      // frames_selected counts attempts; the non-failed remainder is the
      // fleet-visible success signal.
      registry_->Record(config_.model_names[i], fleet_tick,
                        /*successes=*/d_selected - d_failed,
                        /*failures=*/d_failed);
    }
  }
  return status;
}

}  // namespace vqe
