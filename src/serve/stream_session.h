// One concurrent video stream inside the serving layer.
//
// A StreamSession bundles everything a stream needs to make progress one
// frame at a time: its evaluation backend (eager matrix view or lazy
// memoizing evaluator), its selection strategy (any SelectionStrategy —
// per-stream bandit state included), its EngineOptions (per-session
// circuit breakers, TCVI budget, optional per-session CheckpointPolicy for
// save/restore across process restarts) and the EngineRun that actually
// steps frames. Sessions are the unit the StreamScheduler multiplexes
// over the shared thread pool.
//
// Bit-identity: all mutable state is private to the session and every
// frame is a deterministic function of the session's own history, so any
// interleaving of sessions — any scheduler, any worker count, batching on
// or off, faults on or off — leaves each session's RunResult bit-identical
// to a solo RunStrategy over the same source/strategy/options
// (wall-clock fields aside). serve_test enforces this matrix.
//
// Fleet health: a session can publish its per-frame member-call outcomes
// to a shared BreakerRegistry (model-name keyed). Publication is
// write-only — the registry never influences the session's own selection,
// which is what keeps the bit-identity guarantee intact.

#ifndef VQE_SERVE_STREAM_SESSION_H_
#define VQE_SERVE_STREAM_SESSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "models/model_zoo.h"
#include "runtime/breaker_registry.h"

namespace vqe {

/// Scheduling class of a stream. Deficit-round-robin weights: interactive
/// streams earn 4x the per-round quantum of batch streams.
enum class PriorityClass : uint8_t {
  kInteractive = 0,
  kStandard = 1,
  kBatch = 2,
};

/// Number of priority classes (array extent for per-class accounting).
inline constexpr int kNumPriorityClasses = 3;

/// DRR weight of a class (4 / 2 / 1).
int PriorityWeight(PriorityClass priority);
const char* PriorityClassToString(PriorityClass priority);

/// Dense array index of a class (the enum's underlying value).
inline int PriorityClassIndex(PriorityClass priority) {
  return static_cast<int>(priority);
}

struct StreamSessionConfig {
  /// Human-readable stream name (reports, logs).
  std::string name;
  PriorityClass priority = PriorityClass::kStandard;
  /// Per-session engine knobs: scoring, budget, seed, per-session circuit
  /// breakers, and the per-session CheckpointPolicy (sessions with a
  /// checkpoint directory resume from their newest good generation on
  /// Create, exactly like a solo RunStrategy would).
  EngineOptions engine;
  /// Model names, index-aligned with the session's pool; used only to key
  /// fleet-health publication. Empty disables publication.
  std::vector<std::string> model_names;

  Status Validate() const;
};

class StreamSession {
 public:
  /// Builds a session over an owning source + strategy. `owned_pools`
  /// carries any decorated DetectorPool chain (fault wrappers, batching
  /// wrappers) the source borrows from, so the whole stack shares the
  /// session's lifetime. Create performs BeginVideo and checkpoint resume
  /// via EngineRun::Create.
  static Result<std::unique_ptr<StreamSession>> Create(
      StreamSessionConfig config, std::unique_ptr<EvaluationSource> source,
      std::unique_ptr<SelectionStrategy> strategy,
      std::vector<std::unique_ptr<DetectorPool>> owned_pools = {});

  const StreamSessionConfig& config() const { return config_; }
  const std::string& name() const { return config_.name; }
  PriorityClass priority() const { return config_.priority; }

  bool done() const { return run_->done(); }
  size_t next_frame() const { return run_->next_frame(); }
  size_t num_frames() const { return run_->num_frames(); }
  double charged_cost_ms() const { return run_->charged_cost_ms(); }
  const RunResult& live_result() const { return run_->result(); }

  /// Routes per-frame member outcomes to a shared fleet registry (see
  /// header comment). Requires config.model_names; no-op registry = null.
  void AttachHealthRegistry(BreakerRegistry* registry) {
    registry_ = registry;
  }

  /// Applies the scheduler's degradation-ladder overlay for the next
  /// frames (see EngineRun::SetDegradation). (0, 0) restores the
  /// undegraded path bit-exactly.
  void SetDegradation(int skip_boost, EnsembleId model_mask) {
    run_->SetDegradation(skip_boost, model_mask);
  }

  /// Binds the observability sink (see EngineRun::SetObs). The scheduler
  /// calls this at activation with the handle rebound to the stream's
  /// track; SetObs({}) restores the exact disabled path.
  void SetObs(const ObsHandle& obs) { run_->SetObs(obs); }

  /// Processes exactly one frame (EngineRun::StepFrame) and publishes
  /// member-call outcome deltas to the attached registry at `fleet_tick`.
  /// Not thread-safe against itself; the scheduler steps a session from
  /// one worker at a time.
  Status StepFrame(uint64_t fleet_tick = 0);

  /// Live-migration export: the session's complete resumable state (engine
  /// identity fingerprint included) in the snapshot wire format, produced
  /// in memory on the source shard's thread. The session stays usable.
  Result<std::vector<uint8_t>> ExportState() const {
    return run_->ExportSnapshot();
  }

  /// Live-migration implant: parses `bytes` (full container validation —
  /// any bit flip or truncation is DataLoss) and overlays the state onto
  /// this freshly created session. A payload exported from a session with
  /// a different configuration is FailedPrecondition (identity fingerprint
  /// mismatch). Both rejections happen before any session state is
  /// mutated. On success the fleet-health publication cursors are synced
  /// so only post-migration outcome deltas are published (the source shard
  /// already published the history).
  Status ImplantState(const std::vector<uint8_t>& bytes);

  /// Finalizes and returns the RunResult (callable once).
  Result<RunResult> Finish() { return run_->Finish(); }

 private:
  StreamSession(StreamSessionConfig config,
                std::unique_ptr<EvaluationSource> source,
                std::unique_ptr<SelectionStrategy> strategy,
                std::vector<std::unique_ptr<DetectorPool>> owned_pools);

  StreamSessionConfig config_;
  /// Decorated pool chain (outermost last); must outlive source_.
  std::vector<std::unique_ptr<DetectorPool>> owned_pools_;
  std::unique_ptr<EvaluationSource> source_;
  std::unique_ptr<SelectionStrategy> strategy_;
  std::unique_ptr<EngineRun> run_;
  BreakerRegistry* registry_ = nullptr;
  /// Last-published per-model counters, for delta publication.
  std::vector<uint64_t> published_selected_;
  std::vector<uint64_t> published_failed_;
};

}  // namespace vqe

#endif  // VQE_SERVE_STREAM_SESSION_H_
