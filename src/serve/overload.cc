#include "serve/overload.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace vqe {

const char* DegradationLevelToString(DegradationLevel level) {
  switch (level) {
    case DegradationLevel::kNormal:
      return "normal";
    case DegradationLevel::kSkipBoost:
      return "skip-boost";
    case DegradationLevel::kEnsembleShrink:
      return "ensemble-shrink";
    case DegradationLevel::kShedBatch:
      return "shed-batch";
  }
  return "unknown";
}

bool operator==(const DegradationTransition& a,
                const DegradationTransition& b) {
  return a.round == b.round && a.from == b.from && a.to == b.to &&
         a.trigger_class == b.trigger_class &&
         a.queue_triggered == b.queue_triggered &&
         a.observed_p99_ms == b.observed_p99_ms &&
         a.queue_depth == b.queue_depth;
}

double SamplePercentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  if (q <= 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest-rank: ceil(q * n), 1-based, clamped into the sample range.
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(samples.size())));
  if (rank == 0) rank = 1;
  if (rank > samples.size()) rank = samples.size();
  std::nth_element(samples.begin(), samples.begin() + (rank - 1),
                   samples.end());
  return samples[rank - 1];
}

Status OverloadOptions::Validate() const {
  if (!enabled) return Status::OK();
  if (window < 1 || window > (1 << 20)) {
    return Status::InvalidArgument("overload window out of range");
  }
  if (min_samples < 1 || min_samples > window) {
    return Status::InvalidArgument(
        "overload min_samples must be in [1, window]");
  }
  if (queue_trigger < 0) {
    return Status::InvalidArgument("overload queue_trigger negative");
  }
  if (dwell_rounds < 1 || recover_rounds < 1) {
    return Status::InvalidArgument(
        "overload dwell/recover rounds must be >= 1");
  }
  if (skip_boost < 0 || skip_boost > kMaxSkipBoost) {
    return Status::InvalidArgument("overload skip_boost out of range");
  }
  for (int c = 0; c < kNumPriorityClasses; ++c) {
    if (!std::isfinite(slo[c].p99_ms) || slo[c].p99_ms < 0.0) {
      return Status::InvalidArgument("overload SLO p99 must be finite >= 0");
    }
    if (!std::isfinite(slo[c].shed_budget) || slo[c].shed_budget < 0.0 ||
        slo[c].shed_budget > 1.0) {
      return Status::InvalidArgument(
          "overload shed_budget must be in [0, 1]");
    }
  }
  return Status::OK();
}

OverloadController::OverloadController(const OverloadOptions& options)
    : options_(options),
      // "Long ago": the first breach may transition without waiting out an
      // initial dwell.
      rounds_since_transition_(options.dwell_rounds) {
  for (auto& w : windows_) w.samples.reserve(options_.window);
}

void OverloadController::RecordFrameCost(PriorityClass cls, double sim_ms) {
  Window& w = windows_[PriorityClassIndex(cls)];
  if (w.samples.size() < static_cast<size_t>(options_.window)) {
    w.samples.push_back(sim_ms);
    w.next = w.samples.size() % static_cast<size_t>(options_.window);
    w.full = w.samples.size() == static_cast<size_t>(options_.window);
  } else {
    w.samples[w.next] = sim_ms;
    w.next = (w.next + 1) % w.samples.size();
    w.full = true;
  }
  w.touched_this_round = true;
}

double OverloadController::ClassP99(int class_index) const {
  if (class_index < 0 || class_index >= kNumPriorityClasses) return 0.0;
  return SamplePercentile(windows_[class_index].samples, 0.99);
}

void OverloadController::Transition(uint64_t round, int to, int trigger_class,
                                    bool queue_triggered, double observed_p99,
                                    int queue_depth) {
  DegradationTransition t;
  t.round = round;
  t.from = level_;
  t.to = to;
  t.trigger_class = trigger_class;
  t.queue_triggered = queue_triggered;
  t.observed_p99_ms = observed_p99;
  t.queue_depth = queue_depth;
  ledger_.push_back(t);
  level_ = to;
  rounds_since_transition_ = 0;
  healthy_streak_ = 0;
}

void OverloadController::EndRound(uint64_t round, int queue_depth) {
  ++rounds_since_transition_;

  // Stale-window hygiene: a class with no live traffic for recover_rounds
  // rounds is judged on nothing rather than on fossils. This is also how
  // the ladder recovers from its own shedding — a demoted batch class
  // produces no samples, its window drains, and the breach clears.
  for (auto& w : windows_) {
    if (w.touched_this_round) {
      w.idle_rounds = 0;
    } else if (++w.idle_rounds >= options_.recover_rounds) {
      w.Clear();
    }
    w.touched_this_round = false;
  }

  // Breach scan, lowest class index (most latency-sensitive) first so the
  // ledger's trigger_class attribution is deterministic.
  int breach_class = -1;
  double breach_p99 = 0.0;
  for (int c = 0; c < kNumPriorityClasses; ++c) {
    const SloTarget& slo = options_.slo[c];
    if (slo.p99_ms <= 0.0) continue;
    const Window& w = windows_[c];
    if (w.count() < static_cast<size_t>(options_.min_samples)) continue;
    const double p99 = SamplePercentile(w.samples, 0.99);
    if (p99 > slo.p99_ms) {
      breach_class = c;
      breach_p99 = p99;
      break;
    }
  }
  const bool queue_hot =
      options_.queue_trigger > 0 && queue_depth >= options_.queue_trigger;
  const bool overloaded = breach_class >= 0 || queue_hot;

  if (overloaded) {
    healthy_streak_ = 0;
    if (level_ + 1 < kNumDegradationLevels &&
        rounds_since_transition_ >= options_.dwell_rounds) {
      Transition(round, level_ + 1, breach_class,
                 breach_class < 0 && queue_hot, breach_p99, queue_depth);
    }
    return;
  }

  ++healthy_streak_;
  if (level_ > 0 && healthy_streak_ >= options_.recover_rounds &&
      rounds_since_transition_ >= options_.dwell_rounds) {
    Transition(round, level_ - 1, -1, false, 0.0, queue_depth);
  }
}

}  // namespace vqe
