// SLO-aware overload control: a deterministic hysteresis ladder that
// trades accuracy for survival when the serving layer is under pressure.
//
// Sensors. The controller watches two deterministic signals, both on the
// *simulated* clock (never wall time, never cross-thread order):
//   - per-priority-class rolling histograms of per-frame simulated cost
//     (EngineRun::charged_cost_ms deltas), merged by the scheduler at the
//     end of every round in slot order, judged against each class's p99
//     SLO target;
//   - the scheduler's admission-queue depth.
// A class whose window has no live traffic for `recover_rounds`
// consecutive rounds is drained instead of judged on fossil samples, so a
// paused or retired class can never wedge the ladder.
//
// Ladder. Four levels, stepped one rung at a time, dwell-gated in both
// directions so the ladder cannot flap:
//   0 kNormal          nothing degraded
//   1 kSkipBoost       every session's temporal gate plans `skip_boost`
//                      extra coasted frames per episode (cheapest knob:
//                      ODD-style "spend less per frame")
//   2 kEnsembleShrink  strategies are masked to `shrink_mask` ∩ healthy
//                      via SetEligibleModels (mask 0 = rung passes
//                      through, documented no-op)
//   3 kShedBatch       batch-class slots earn a quarter-quantum DRR
//                      trickle (full starvation could wedge an all-batch
//                      slot set and pin the queue sensor hot forever) and
//                      new batch submissions are shed kResourceExhausted
// Recovery steps back up one rung after `recover_rounds` consecutive
// healthy rounds (and the dwell), so a storm's end drains the ladder the
// same deterministic way it filled it.
//
// Every transition is appended to a ledger (round, from, to, trigger) that
// ServeStats surfaces — identical across reruns and worker counts, which
// bench_workload gates on.
//
// Bit-identity. With `enabled == false` the scheduler constructs no
// controller and never calls SetDegradation: every stream stays
// bit-identical to the controller-free serving path.

#ifndef VQE_SERVE_OVERLOAD_H_
#define VQE_SERVE_OVERLOAD_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/ensemble_id.h"
#include "serve/stream_session.h"

namespace vqe {

/// Rungs of the degradation ladder, mildest first.
enum class DegradationLevel : int {
  kNormal = 0,
  kSkipBoost = 1,
  kEnsembleShrink = 2,
  kShedBatch = 3,
};
inline constexpr int kNumDegradationLevels = 4;

const char* DegradationLevelToString(DegradationLevel level);

/// Per-priority-class service-level objective.
struct SloTarget {
  /// Simulated per-frame p99 latency target, ms; 0 = no latency SLO.
  double p99_ms = 0.0;
  /// Allowed shed fraction of this class's submissions (SLO verdict
  /// reporting; 1 = unbounded shedding tolerated).
  double shed_budget = 1.0;
};

struct OverloadOptions {
  /// Master switch; false constructs no controller at all.
  bool enabled = false;
  /// SLO targets indexed by PriorityClassIndex.
  SloTarget slo[kNumPriorityClasses];
  /// Rolling-histogram capacity per class (simulated per-frame samples).
  int window = 256;
  /// Minimum samples in a class window before its p99 is judged.
  int min_samples = 8;
  /// Queue depth at or above which the scheduler is under pressure even
  /// with every latency SLO met; 0 disables the queue sensor.
  int queue_trigger = 0;
  /// Minimum rounds between any two ladder transitions (hysteresis).
  int dwell_rounds = 2;
  /// Consecutive healthy rounds required before stepping back up (also the
  /// idle-round count after which a silent class's window drains).
  int recover_rounds = 3;
  /// Extra per-episode skips applied at level >= kSkipBoost.
  int skip_boost = 2;
  /// Model mask applied at level >= kEnsembleShrink (0 = rung is a
  /// documented pass-through; the ladder still transitions through it).
  EnsembleId shrink_mask = 0;

  Status Validate() const;
};

/// One ladder transition — the degradation ledger entry.
struct DegradationTransition {
  /// Scheduler round at whose end the transition fired.
  uint64_t round = 0;
  int from = 0;
  int to = 0;
  /// PriorityClassIndex of the class whose p99 breach triggered a
  /// step-down; -1 for queue-pressure steps and for recoveries.
  int trigger_class = -1;
  /// True when the queue-depth sensor (not a latency SLO) triggered.
  bool queue_triggered = false;
  /// Breaching class's observed p99 at the transition (0 when queue- or
  /// recovery-triggered).
  double observed_p99_ms = 0.0;
  int queue_depth = 0;
};

bool operator==(const DegradationTransition& a,
                const DegradationTransition& b);
inline bool operator!=(const DegradationTransition& a,
                       const DegradationTransition& b) {
  return !(a == b);
}

/// Nearest-rank percentile (q in [0, 1]) of a sample set; takes the
/// samples by value because selection reorders them. 0 on empty input.
double SamplePercentile(std::vector<double> samples, double q);

/// The ladder state machine. Driven by one StreamScheduler from its own
/// thread: RecordFrameCost in deterministic slot order after each round's
/// stepping, then EndRound exactly once per round. Not thread-safe.
class OverloadController {
 public:
  /// `options` must have passed Validate with enabled == true.
  explicit OverloadController(const OverloadOptions& options);

  /// Feeds one per-frame simulated-cost sample into `cls`'s histogram.
  void RecordFrameCost(PriorityClass cls, double sim_ms);

  /// Senses, then possibly moves one rung. Call at the end of round
  /// `round` with the post-round admission-queue depth.
  void EndRound(uint64_t round, int queue_depth);

  int level() const { return level_; }
  /// Actuator views of the current level (what the scheduler applies at
  /// the top of the NEXT round).
  int skip_boost() const {
    return level_ >= static_cast<int>(DegradationLevel::kSkipBoost)
               ? options_.skip_boost
               : 0;
  }
  EnsembleId model_mask() const {
    return level_ >= static_cast<int>(DegradationLevel::kEnsembleShrink)
               ? options_.shrink_mask
               : 0;
  }
  /// True at kShedBatch: batch slots are demoted to a quarter-quantum
  /// credit trickle and new batch submissions are shed.
  bool throttle_batch() const {
    return level_ >= static_cast<int>(DegradationLevel::kShedBatch);
  }

  /// Current rolling p99 of a class window (0 when empty) — sensor
  /// introspection for tests and reports.
  double ClassP99(int class_index) const;

  const std::vector<DegradationTransition>& ledger() const {
    return ledger_;
  }
  const OverloadOptions& options() const { return options_; }

 private:
  /// Fixed-capacity ring of the most recent samples.
  struct Window {
    std::vector<double> samples;
    size_t next = 0;
    bool full = false;
    /// Rounds since the window last received a sample.
    int idle_rounds = 0;
    bool touched_this_round = false;

    size_t count() const { return samples.size(); }
    void Clear() {
      samples.clear();
      next = 0;
      full = false;
    }
  };

  void Transition(uint64_t round, int to, int trigger_class,
                  bool queue_triggered, double observed_p99, int queue_depth);

  OverloadOptions options_;
  Window windows_[kNumPriorityClasses];
  int level_ = 0;
  /// Rounds since the last transition; starts "long ago" so the first
  /// breach may step immediately.
  int rounds_since_transition_;
  int healthy_streak_ = 0;
  std::vector<DegradationTransition> ledger_;
};

}  // namespace vqe

#endif  // VQE_SERVE_OVERLOAD_H_
