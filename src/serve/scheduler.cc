#include "serve/scheduler.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace vqe {
namespace {

/// Nearest-rank percentile of an unsorted sample set (q in [0, 1]).
double Percentile(std::vector<double>& samples, double q) {
  if (samples.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(
      std::min<double>(samples.size() - 1,
                       std::ceil(q * static_cast<double>(samples.size())) - 1));
  std::nth_element(samples.begin(), samples.begin() + rank, samples.end());
  return samples[rank];
}

}  // namespace

Status ServeOptions::Validate() const {
  if (max_sessions < 1) {
    return Status::InvalidArgument("max_sessions must be >= 1");
  }
  if (queue_depth < 0) {
    return Status::InvalidArgument("queue_depth must be >= 0");
  }
  if (quantum_ms <= 0.0) {
    return Status::InvalidArgument("quantum_ms must be > 0");
  }
  if (max_frames_per_round < 1) {
    return Status::InvalidArgument("max_frames_per_round must be >= 1");
  }
  if (parallelism < 0) {
    return Status::InvalidArgument("parallelism must be >= 0");
  }
  VQE_RETURN_NOT_OK(overload.Validate());
  return fleet_breaker.Validate();
}

StreamScheduler::StreamScheduler(ServeOptions options)
    : options_(options),
      own_registry_(options.fleet_breaker),
      registry_(&own_registry_) {
  if (options_.overload.enabled) {
    controller_ = std::make_unique<OverloadController>(options_.overload);
  }
  if (options_.obs.enabled()) {
    node_obs_ = options_.obs.WithNodeTrack(options_.obs_node);
    if (options_.obs.metrics != nullptr) {
      MetricsRegistry& reg = *options_.obs.metrics;
      const MetricDomain wall = MetricDomain::kWall;
      obs_ids_.rounds = reg.Counter("vqe_sched_rounds_total", wall,
                                    MetricUnit::kCount, "DRR rounds run");
      obs_ids_.round_ms =
          reg.Counter("vqe_sched_round_ms_total", wall, MetricUnit::kMs,
                      "Wall-clock spent inside DRR rounds");
      obs_ids_.frames =
          reg.Counter("vqe_sched_frames_total", wall, MetricUnit::kCount,
                      "Frames stepped by the scheduler");
      obs_ids_.drr_credit_ms =
          reg.Counter("vqe_sched_drr_credit_ms_total", wall, MetricUnit::kMs,
                      "Simulated-ms deficit credited to active slots");
      obs_ids_.drr_charge_ms =
          reg.Counter("vqe_sched_drr_charge_ms_total", wall, MetricUnit::kMs,
                      "Simulated-ms deficit charged for stepped frames");
      obs_ids_.admitted =
          reg.Counter("vqe_sched_admitted_total", wall, MetricUnit::kCount,
                      "Sessions activated into slots");
      obs_ids_.shed =
          reg.Counter("vqe_sched_shed_total", wall, MetricUnit::kCount,
                      "Submissions rejected with kResourceExhausted");
      obs_ids_.retired =
          reg.Counter("vqe_sched_retired_total", wall, MetricUnit::kCount,
                      "Sessions retired (drained or failed)");
      obs_ids_.stream_errors =
          reg.Counter("vqe_sched_stream_errors_total", wall,
                      MetricUnit::kCount, "Sessions retired with an error");
      obs_ids_.overload_transitions =
          reg.Counter("vqe_sched_overload_transitions_total", wall,
                      MetricUnit::kCount, "Degradation-ladder level changes");
    }
  }
}

void StreamScheduler::Activate(std::unique_ptr<StreamSession> session,
                               uint64_t id, uint64_t round,
                               SessionCarry carry) {
  auto slot = std::make_unique<Slot>();
  slot->session = std::move(session);
  slot->stream_id = id;
  slot->admitted_round = round;
  slot->frames = carry.frames;
  slot->rounds_active = carry.rounds_active;
  slot->session->AttachHealthRegistry(registry_);
  if (options_.obs.enabled()) {
    // Per-stream attribution: the engine's spans land on this stream's
    // trace track; metric series stay registry-global.
    slot->session->SetObs(options_.obs.WithStream(static_cast<int64_t>(id)));
    node_obs_.Count(obs_ids_.admitted);
  }
  ++stats_.classes[PriorityClassIndex(slot->session->priority())].admitted;
  active_.push_back(std::move(slot));
  ++stats_.admitted;
  stats_.peak_active =
      std::max(stats_.peak_active, static_cast<int>(active_.size()));
}

Result<uint64_t> StreamScheduler::Submit(
    std::unique_ptr<StreamSession> session) {
  VQE_RETURN_NOT_OK(options_.Validate());
  if (session == nullptr) {
    return Status::InvalidArgument("cannot submit a null session");
  }
  if (finished_) {
    return Status::FailedPrecondition(
        "scheduler already finished; submit before FinishServing");
  }
  ++stats_.submitted;
  const int cls = PriorityClassIndex(session->priority());
  ++stats_.classes[cls].submitted;

  // Fleet gate: a stream whose every model the fleet currently reports
  // open would only burn quanta on breaker-masked selections — shed it.
  const auto& models = session->config().model_names;
  if (!models.empty()) {
    bool any_callable = false;
    for (const std::string& model : models) {
      if (registry_->AllowsCall(model, round_)) {
        any_callable = true;
        break;
      }
    }
    if (!any_callable) {
      ++stats_.shed_submissions;
      node_obs_.Count(obs_ids_.shed);
      ++stats_.classes[cls].shed_submissions;
      return Status::ResourceExhausted(
          "session '" + session->name() +
          "' shed: fleet breakers report every model of its pool open");
    }
  }

  // Degradation-ladder level 3: the front door sheds NEW batch work so
  // interactive/standard traffic keeps the slots. Already-admitted batch
  // sessions stay (they drain on residual deficit; see RoundOnce).
  if (controller_ != nullptr && controller_->throttle_batch() &&
      session->priority() == PriorityClass::kBatch) {
    ++stats_.shed_submissions;
    node_obs_.Count(obs_ids_.shed);
    ++stats_.classes[cls].shed_submissions;
    return Status::ResourceExhausted(
        "session '" + session->name() +
        "' shed: overload ladder at shed-batch, batch submissions refused");
  }

  if (static_cast<int>(active_.size()) < options_.max_sessions) {
    const uint64_t id = next_stream_id_++;
    Activate(std::move(session), id, round_, {});
    return id;
  }
  if (static_cast<int>(queue_.size()) < options_.queue_depth) {
    const uint64_t id = next_stream_id_++;
    queue_.push_back(Queued{std::move(session), id, {}});
    stats_.peak_queued =
        std::max(stats_.peak_queued, static_cast<int>(queue_.size()));
    return id;
  }
  ++stats_.shed_submissions;
  node_obs_.Count(obs_ids_.shed);
  ++stats_.classes[cls].shed_submissions;
  return Status::ResourceExhausted(
      "session '" + session->name() + "' shed: " +
      std::to_string(active_.size()) + " active / " +
      std::to_string(queue_.size()) + " queued (max_sessions=" +
      std::to_string(options_.max_sessions) + ", queue_depth=" +
      std::to_string(options_.queue_depth) + ")");
}

Result<uint64_t> StreamScheduler::ImplantSession(
    std::unique_ptr<StreamSession> session, SessionCarry carry) {
  VQE_RETURN_NOT_OK(options_.Validate());
  if (session == nullptr) {
    return Status::InvalidArgument("cannot implant a null session");
  }
  if (finished_) {
    return Status::FailedPrecondition("scheduler already finished");
  }
  // No fleet-breaker gate and no batch-shed gate: the stream was admitted
  // fleet-wide before it started; migration must not re-litigate admission
  // mid-video.
  ++stats_.submitted;
  const int cls = PriorityClassIndex(session->priority());
  ++stats_.classes[cls].submitted;
  if (static_cast<int>(active_.size()) < options_.max_sessions) {
    const uint64_t id = next_stream_id_++;
    Activate(std::move(session), id, round_, carry);
    return id;
  }
  if (static_cast<int>(queue_.size()) < options_.queue_depth) {
    const uint64_t id = next_stream_id_++;
    queue_.push_back(Queued{std::move(session), id, carry});
    stats_.peak_queued =
        std::max(stats_.peak_queued, static_cast<int>(queue_.size()));
    return id;
  }
  ++stats_.shed_submissions;
  node_obs_.Count(obs_ids_.shed);
  ++stats_.classes[cls].shed_submissions;
  return Status::ResourceExhausted(
      "implant of '" + session->name() + "' rejected: shard full");
}

Result<StreamScheduler::ExtractedSession> StreamScheduler::ExtractSession(
    const std::string& name) {
  for (size_t i = 0; i < active_.size(); ++i) {
    Slot& slot = *active_[i];
    if (slot.session->name() != name) continue;
    if (!slot.status.ok() || slot.session->done()) {
      return Status::FailedPrecondition(
          "session '" + name + "' is finished; nothing left to migrate");
    }
    ExtractedSession out;
    out.session = std::move(slot.session);
    out.stream_id = slot.stream_id;
    out.carry.frames = slot.frames;
    out.carry.rounds_active = slot.rounds_active;
    // Latency samples were real steps on this shard: keep them in this
    // scheduler's pooled percentiles (wall and simulated alike).
    if (options_.record_frame_latency) {
      all_latencies_ms_.insert(all_latencies_ms_.end(),
                               slot.latency_ms.begin(),
                               slot.latency_ms.end());
    }
    const int cls = PriorityClassIndex(out.session->priority());
    class_sim_ms_[cls].insert(class_sim_ms_[cls].end(), slot.sim_ms.begin(),
                              slot.sim_ms.end());
    active_.erase(active_.begin() + static_cast<long>(i));
    return out;
  }
  for (size_t i = 0; i < queue_.size(); ++i) {
    if (queue_[i].session->name() != name) continue;
    ExtractedSession out;
    out.session = std::move(queue_[i].session);
    out.stream_id = queue_[i].stream_id;
    out.carry = queue_[i].carry;
    queue_.erase(queue_.begin() + static_cast<long>(i));
    return out;
  }
  return Status::NotFound("no live session named '" + name + "'");
}

std::vector<std::string> StreamScheduler::LiveStreamNames() const {
  std::vector<std::string> names;
  names.reserve(active_.size() + queue_.size());
  for (const auto& slot : active_) names.push_back(slot->session->name());
  for (const auto& q : queue_) names.push_back(q.session->name());
  return names;
}

void StreamScheduler::StepSlotRound(Slot& slot, uint64_t round) {
  StreamSession& session = *slot.session;
  bool stepped = false;
  int frames_this_round = 0;
  while (slot.status.ok() && !session.done() && slot.deficit_ms > 0.0 &&
         frames_this_round < options_.max_frames_per_round) {
    const double cost_before = session.charged_cost_ms();
    if (dispatcher_ != nullptr) dispatcher_->BeginStep();
    Stopwatch frame_watch;
    const Status status = session.StepFrame(round);
    const double latency = frame_watch.ElapsedMillis();
    if (dispatcher_ != nullptr) dispatcher_->EndStep();
    if (options_.record_frame_latency) slot.latency_ms.push_back(latency);
    ++slot.frames;
    ++frames_this_round;
    stepped = true;
    // Deficit is charged in *simulated* ms, so the schedule is a pure
    // function of the submitted work. A frame may overdraw the remaining
    // deficit; the overdraft carries as a negative balance (classic DRR).
    const double cost_delta = session.charged_cost_ms() - cost_before;
    slot.deficit_ms -= cost_delta;
    node_obs_.CountMs(obs_ids_.drr_charge_ms, cost_delta);
    if (options_.record_frame_latency || controller_ != nullptr) {
      slot.sim_ms.push_back(cost_delta);
    }
    if (!status.ok()) slot.status = status;
  }
  if (stepped) ++slot.rounds_active;
}

void StreamScheduler::Retire(Slot& slot) {
  StreamReport sr;
  sr.stream_id = slot.stream_id;
  sr.name = slot.session->name();
  sr.priority = slot.session->priority();
  sr.frames = slot.frames;
  sr.rounds_active = slot.rounds_active;
  sr.admitted_round = slot.admitted_round;
  sr.status = slot.status;
  if (slot.status.ok()) {
    Result<RunResult> finished = slot.session->Finish();
    if (finished.ok()) {
      sr.result = std::move(finished).value();
    } else {
      sr.status = finished.status();
      sr.result = slot.session->live_result();
    }
  } else {
    // Retired on a step error (crash injection, checkpoint I/O): keep the
    // live accumulators for post-mortem; averages stay unfinalized.
    sr.result = slot.session->live_result();
  }
  if (!sr.status.ok()) {
    // Surface WHY the stream died in the aggregate stats, not only in its
    // own report — fleet-level summaries read stats, not every stream.
    ++stats_.failed_streams;
    stats_.errors.push_back(ServeStats::StreamError{
        sr.stream_id, sr.name, sr.status.code(), sr.status.message()});
    node_obs_.Count(obs_ids_.stream_errors);
  }
  node_obs_.Count(obs_ids_.retired);
  stats_.frames += sr.frames;
  stats_.skipped_frames += sr.result.skip.skipped_frames;
  stats_.simulated_ms += sr.result.breakdown.SimulatedMs();
  stats_.algorithm_wall_ms += sr.result.breakdown.algorithm_ms;
  const int cls = PriorityClassIndex(sr.priority);
  stats_.classes[cls].frames += sr.frames;
  class_sim_ms_[cls].insert(class_sim_ms_[cls].end(), slot.sim_ms.begin(),
                            slot.sim_ms.end());
  if (options_.record_frame_latency) {
    all_latencies_ms_.insert(all_latencies_ms_.end(), slot.latency_ms.begin(),
                             slot.latency_ms.end());
  }
  retired_.push_back(std::move(sr));
}

Status StreamScheduler::BeginServing() {
  VQE_RETURN_NOT_OK(options_.Validate());
  if (finished_) {
    return Status::FailedPrecondition("scheduler already finished");
  }
  if (!serving_) {
    serving_ = true;
    wall_ = Stopwatch();
  }
  return Status::OK();
}

void StreamScheduler::RoundOnce() {
  ++round_;
  ++stats_.rounds;
  const bool obs_on = node_obs_.enabled();
  Stopwatch round_watch;

  // Admit from the queue into freed slots, FIFO — deterministic.
  while (!queue_.empty() &&
         static_cast<int>(active_.size()) < options_.max_sessions) {
    Queued q = std::move(queue_.front());
    queue_.erase(queue_.begin());
    Activate(std::move(q.session), q.stream_id, round_, q.carry);
  }
  uint64_t frames_at_round_start = 0;
  if (obs_on) {
    for (const auto& slot : active_) frames_at_round_start += slot->frames;
  }

  // Apply the ladder level decided at the END of the previous round to
  // every active session (newly admitted ones included) before any frame
  // steps — the actuation point is deterministic. With the controller
  // absent SetDegradation is never called: bit-identical to the
  // controller-free path.
  if (controller_ != nullptr) {
    const int boost = controller_->skip_boost();
    const EnsembleId mask = controller_->model_mask();
    for (auto& slot : active_) slot->session->SetDegradation(boost, mask);
    if (controller_->level() > 0) ++stats_.degraded_rounds;
    stats_.peak_degradation_level =
        std::max(stats_.peak_degradation_level, controller_->level());
  }

  // Credit deficits, then step every active session concurrently.
  // Sessions are independent (slot state is worker-private during the
  // round), so any interleaving yields the same per-stream results.
  // Ladder level 3 demotes batch: its slots earn a quarter quantum
  // instead of the full weighted share. The trickle guarantees forward
  // progress even when every active slot is a batch session — with zero
  // credit those slots would wedge, the queue could never drain, and the
  // queue-depth sensor would hold the ladder at level 3 forever.
  const bool demote_batch =
      controller_ != nullptr && controller_->throttle_batch();
  double credited_ms = 0.0;
  for (auto& slot : active_) {
    const bool demoted =
        demote_batch && slot->session->priority() == PriorityClass::kBatch;
    const double share =
        options_.quantum_ms * PriorityWeight(slot->session->priority());
    const double credit = demoted ? share * 0.25 : share;
    slot->deficit_ms += credit;
    credited_ms += credit;
  }
  if (obs_on) node_obs_.CountMs(obs_ids_.drr_credit_ms, credited_ms);
  ParallelFor(active_.size(), options_.parallelism,
              [&](size_t i) { StepSlotRound(*active_[i], round_); });

  // Sense and decide: merge this round's simulated frame costs into the
  // controller in slot order (deterministic — never the workers' wall
  // order), then let the ladder move at most one rung for next round.
  if (controller_ != nullptr) {
    for (auto& slot : active_) {
      const PriorityClass cls = slot->session->priority();
      for (size_t i = slot->sim_fed; i < slot->sim_ms.size(); ++i) {
        controller_->RecordFrameCost(cls, slot->sim_ms[i]);
      }
      slot->sim_fed = slot->sim_ms.size();
    }
    const int level_before = controller_->level();
    controller_->EndRound(round_, static_cast<int>(queue_.size()));
    if (obs_on && controller_->level() != level_before) {
      node_obs_.Count(obs_ids_.overload_transitions);
      node_obs_.Instant(MetricDomain::kWall, -1, "overload_level",
                        obs_wall_ledger_ms_, "level",
                        static_cast<double>(controller_->level()));
    }
  }

  // Retire drained and failed sessions, freeing slots for the queue.
  uint64_t frames_at_round_end = 0;
  for (size_t i = 0; i < active_.size();) {
    Slot& slot = *active_[i];
    if (obs_on) frames_at_round_end += slot.frames;
    if (!slot.status.ok() || slot.session->done()) {
      Retire(slot);
      active_.erase(active_.begin() + static_cast<long>(i));
    } else {
      ++i;
    }
  }
  if (obs_on) {
    const double round_ms = round_watch.ElapsedMillis();
    const uint64_t frames_this_round =
        frames_at_round_end - frames_at_round_start;
    node_obs_.Count(obs_ids_.rounds);
    node_obs_.CountMs(obs_ids_.round_ms, round_ms);
    node_obs_.Count(obs_ids_.frames, frames_this_round);
    node_obs_.Span(MetricDomain::kWall, -1, "round", obs_wall_ledger_ms_,
                   round_ms, "frames",
                   static_cast<double>(frames_this_round));
    obs_wall_ledger_ms_ += round_ms;
  }
}

Result<bool> StreamScheduler::RunRound() {
  if (!serving_) {
    return Status::FailedPrecondition("RunRound before BeginServing");
  }
  if (finished_) {
    return Status::FailedPrecondition("RunRound after FinishServing");
  }
  if (active_.empty() && queue_.empty()) return false;
  RoundOnce();
  return !active_.empty() || !queue_.empty();
}

std::vector<StreamReport> StreamScheduler::TakeRetired() {
  std::vector<StreamReport> out = std::move(retired_);
  retired_.clear();
  return out;
}

Result<ServeReport> StreamScheduler::FinishServing() {
  if (finished_) {
    return Status::FailedPrecondition("FinishServing is callable once");
  }
  finished_ = true;
  ServeReport report;
  report.streams = TakeRetired();
  std::sort(report.streams.begin(), report.streams.end(),
            [](const StreamReport& a, const StreamReport& b) {
              return a.stream_id < b.stream_id;
            });
  stats_.wall_ms = serving_ ? wall_.ElapsedMillis() : 0.0;
  if (!all_latencies_ms_.empty()) {
    stats_.frame_p50_ms = Percentile(all_latencies_ms_, 0.50);
    stats_.frame_p99_ms = Percentile(all_latencies_ms_, 0.99);
    stats_.frame_p999_ms = Percentile(all_latencies_ms_, 0.999);
  }
  for (int c = 0; c < kNumPriorityClasses; ++c) {
    ServeStats::ClassStats& cs = stats_.classes[c];
    if (!class_sim_ms_[c].empty()) {
      cs.sim_p50_ms = SamplePercentile(class_sim_ms_[c], 0.50);
      cs.sim_p99_ms = SamplePercentile(class_sim_ms_[c], 0.99);
      cs.sim_p999_ms = SamplePercentile(class_sim_ms_[c], 0.999);
    }
    cs.shed_rate = cs.submitted == 0
                       ? 0.0
                       : static_cast<double>(cs.shed_submissions) /
                             static_cast<double>(cs.submitted);
  }
  if (controller_ != nullptr) {
    stats_.degradation_level = controller_->level();
    stats_.degradations = controller_->ledger();
  }
  if (dispatcher_ != nullptr) stats_.batching = dispatcher_->stats();
  stats_.fleet_health = registry_->Snapshot(round_);
  report.stats = stats_;
  return report;
}

Result<ServeReport> StreamScheduler::RunUntilDrained() {
  VQE_RETURN_NOT_OK(BeginServing());
  while (true) {
    VQE_ASSIGN_OR_RETURN(const bool more, RunRound());
    if (!more) break;
  }
  return FinishServing();
}

}  // namespace vqe
