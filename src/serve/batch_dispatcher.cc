#include "serve/batch_dispatcher.h"

#include <algorithm>
#include <chrono>

#include "common/stopwatch.h"

namespace vqe {

Status BatchDispatcherOptions::Validate() const {
  if (batch_window < 1) {
    return Status::InvalidArgument("batch_window must be >= 1");
  }
  return Status::OK();
}

BatchDispatcher::BatchDispatcher(BatchDispatcherOptions options)
    : options_(options) {
  if (options_.batch_window < 1) options_.batch_window = 1;
}

void BatchDispatcher::SetObs(const ObsHandle& obs) {
  std::lock_guard<std::mutex> lock(mu_);
  obs_ = obs;
  if (obs_.metrics == nullptr) return;
  MetricsRegistry& reg = *obs_.metrics;
  const MetricDomain wall = MetricDomain::kWall;
  obs_flushes_ =
      reg.Counter("vqe_batch_flushes_total", wall, MetricUnit::kCount,
                  "Batched invocations fired");
  obs_requests_ =
      reg.Counter("vqe_batch_requests_total", wall, MetricUnit::kCount,
                  "Detector calls routed through the dispatcher");
  obs_flush_ms_ =
      reg.Counter("vqe_batch_flush_ms_total", wall, MetricUnit::kMs,
                  "Wall-clock spent executing fired batches");
  obs_batch_size_ = reg.Histogram(
      "vqe_batch_size", wall, {1.0, 2.0, 4.0, 8.0, 16.0, 32.0},
      MetricUnit::kCount, "Requests per fired batch");
}

void BatchDispatcher::BeginStep() {
  std::lock_guard<std::mutex> lock(mu_);
  ++active_steps_;
}

void BatchDispatcher::EndStep() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --active_steps_;
  }
  // A departed stepper can complete the "everyone left is blocked"
  // condition — wake the waiters so one of them fires.
  cv_.notify_all();
}

std::string BatchDispatcher::FireableKeyLocked() const {
  // Full window anywhere? Fire that model (smallest name on ties, so the
  // choice is reproducible given the same queue state).
  for (const auto& [key, queue] : pending_) {
    if (static_cast<int>(queue.size()) >= options_.batch_window) return key;
  }
  // Otherwise fire only when no running stepper could still contribute:
  // every in-flight step is parked in some queue (>= covers Detect calls
  // issued outside any BeginStep bracket). Pick the fullest queue so the
  // forced flush drains the wave in as few batches as possible.
  if (waiting_ > 0 && waiting_ >= active_steps_) {
    size_t best_size = 0;
    std::string best;
    for (const auto& [key, queue] : pending_) {
      if (queue.size() > best_size) {
        best_size = queue.size();
        best = key;
      }
    }
    return best;
  }
  return {};
}

void BatchDispatcher::ExecuteBatch(std::unique_lock<std::mutex>& lock,
                                   const std::string& key) {
  auto it = pending_.find(key);
  if (it == pending_.end()) return;
  std::vector<Request*> batch = std::move(it->second);
  pending_.erase(it);

  // Deterministic assembly: the batch executes as a sorted unit, so the
  // same set of requests always produces the same invocation order.
  std::sort(batch.begin(), batch.end(), [](const Request* a, const Request* b) {
    return a->stream_id != b->stream_id ? a->stream_id < b->stream_id
                                        : a->seq < b->seq;
  });

  ++stats_.batches;
  stats_.max_batch = std::max<uint64_t>(stats_.max_batch, batch.size());
  if (batch.size() >= 2) stats_.coalesced_requests += batch.size();

  lock.unlock();
  // The batched invocation. Each request still runs its own per-stream
  // call (fault decorators, Attempt vs Detect), so results are exactly
  // the stream's solo outputs; the batch is the scheduling unit a real
  // backend would hand to the accelerator as one forward pass.
  Stopwatch flush_watch;
  for (Request* r : batch) {
    (*r->fn)();
  }
  const double flush_ms = flush_watch.ElapsedMillis();
  lock.lock();
  if (obs_.enabled()) {
    obs_.Count(obs_flushes_);
    obs_.Count(obs_requests_, batch.size());
    obs_.CountMs(obs_flush_ms_, flush_ms);
    obs_.Observe(obs_batch_size_, static_cast<double>(batch.size()));
    obs_.Span(MetricDomain::kWall, -1, "batch_flush", flush_ledger_ms_,
              flush_ms, "batch_size", static_cast<double>(batch.size()));
    flush_ledger_ms_ += flush_ms;
  }
  for (Request* r : batch) r->done = true;
  cv_.notify_all();
}

void BatchDispatcher::Run(const std::string& model_name, uint64_t stream_id,
                          const std::function<void()>& fn) {
  Request req;
  req.stream_id = stream_id;
  req.fn = &fn;

  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.requests;
  req.seq = ++seq_;
  pending_[model_name].push_back(&req);
  ++waiting_;
  while (!req.done) {
    const std::string key = FireableKeyLocked();
    if (!key.empty()) {
      // This thread elects itself leader for the fireable batch (possibly
      // its own, possibly another model's) and loops to re-check.
      ExecuteBatch(lock, key);
      continue;
    }
    // Liveness backstop: the fire conditions are re-checked on every
    // notify (new request, EndStep, batch completion); the timeout only
    // guards against a missed edge and costs nothing on the happy path.
    cv_.wait_for(lock, std::chrono::milliseconds(50));
  }
  --waiting_;
}

BatchDispatcher::Stats BatchDispatcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Result<DetectorPool> MakeBatchingPool(const DetectorPool& base,
                                      BatchDispatcher* dispatcher,
                                      uint64_t stream_id) {
  if (dispatcher == nullptr) {
    return Status::InvalidArgument("dispatcher is null");
  }
  if (base.reference == nullptr) {
    return Status::InvalidArgument("pool has no reference model");
  }
  DetectorPool out;
  out.detectors.reserve(base.detectors.size());
  for (const auto& det : base.detectors) {
    // Fallibility must survive decoration (see BatchingFallibleDetector).
    if (const auto* fallible =
            dynamic_cast<const FallibleDetector*>(det.get())) {
      out.detectors.push_back(std::make_unique<BatchingFallibleDetector>(
          fallible, dispatcher, stream_id));
    } else {
      out.detectors.push_back(
          std::make_unique<BatchingDetector>(det.get(), dispatcher,
                                             stream_id));
    }
  }
  out.reference = std::make_unique<ReferenceDetector>(base.reference->profile());
  return out;
}

}  // namespace vqe
