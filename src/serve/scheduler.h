// Multi-stream scheduler: deficit round-robin over StreamSessions with
// priority classes, admission control and backpressure.
//
// Scheduling model. Time advances in rounds. At the top of each round the
// scheduler admits queued sessions into freed active slots (FIFO, so
// admission order is deterministic), then credits every active session's
// deficit counter with quantum_ms * PriorityWeight(class). Each session
// then steps frames — concurrently across sessions via the shared thread
// pool, serially within a session — until its deficit is spent, it
// finishes, or the per-round frame cap trips. The deficit currency is the
// engine's *simulated* charged cost (EngineRun::charged_cost_ms deltas),
// which is deterministic, so the frames-per-round schedule of every
// session is a pure function of the submitted work — independent of
// worker count, machine speed, and batching.
//
// Admission control. At most max_sessions sessions are active; up to
// queue_depth more wait in the admission queue. A Submit beyond both
// bounds — or a session whose entire pool the fleet breaker registry
// reports open — is shed immediately with kResourceExhausted. Overload
// therefore degrades by rejecting new work at the front door; admitted
// work always drains (a failing session retires with its error, it never
// wedges the scheduler).
//
// Isolation / bit-identity. The scheduler only decides WHEN a session
// steps; all per-frame state is session-private, so every stream's
// RunResult is bit-identical to a solo RunStrategy run of the same
// source/strategy/options at any max_sessions, parallelism, batch window
// or fault script (wall-clock fields aside). serve_test pins this matrix.

#ifndef VQE_SERVE_SCHEDULER_H_
#define VQE_SERVE_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "runtime/breaker_registry.h"
#include "serve/batch_dispatcher.h"
#include "serve/overload.h"
#include "serve/stream_session.h"

namespace vqe {

struct ServeOptions {
  /// Concurrently active sessions (admission bound).
  int max_sessions = 4;
  /// Admitted-but-waiting sessions beyond the active set; Submit sheds
  /// with kResourceExhausted once both are full.
  int queue_depth = 8;
  /// DRR quantum in simulated ms per weight unit per round: an
  /// interactive session earns 4x this, a batch session 1x.
  double quantum_ms = 200.0;
  /// Hard cap on frames one session may step in one round, whatever its
  /// deficit (bounds round latency under huge quanta).
  int max_frames_per_round = 64;
  /// Worker parallelism for stepping sessions within a round (semantics of
  /// ResolveWorkers: 0 = all cores, 1 = serial).
  int parallelism = 0;
  /// Capture per-frame wall-clock latency samples for the p50/p99 report.
  bool record_frame_latency = true;
  /// Options of the fleet-wide per-model breaker registry.
  CircuitBreakerOptions fleet_breaker;
  /// SLO-aware overload control (degradation ladder). Disabled by default;
  /// a scheduler with overload.enabled == false constructs no controller
  /// and leaves every stream bit-identical to the controller-free path.
  OverloadOptions overload;
  /// Observability sink. Disabled by default (no metrics, no tracing, no
  /// allocations, bit-identical results). When enabled, each activated
  /// session's engine gets the handle rebound to its stream track, and
  /// the scheduler itself emits rounds, DRR charges, shed/retire counts
  /// and overload-ladder transitions on the node track `obs_node` — all
  /// in the wall domain: which frames share a round is process
  /// bookkeeping, not a result, so it stays out of the simulated-domain
  /// determinism fingerprint.
  ObsHandle obs;
  /// Node index for the scheduler's trace track (fleet shards set their
  /// shard id; solo schedulers keep 0).
  int obs_node = 0;

  Status Validate() const;
};

/// Final state of one stream after RunUntilDrained.
struct StreamReport {
  uint64_t stream_id = 0;
  std::string name;
  PriorityClass priority = PriorityClass::kStandard;
  /// OK for a stream that drained; the step error (e.g. Aborted under
  /// crash injection) for one that retired early.
  Status status = Status::OK();
  /// Finished RunResult when status is OK; the live partial accumulators
  /// otherwise (useful for post-mortem, averages unfinalized).
  RunResult result;
  size_t frames = 0;
  /// Rounds in which this stream stepped at least one frame.
  uint64_t rounds_active = 0;
  /// Round at which the stream left the admission queue (0 = admitted on
  /// submit).
  uint64_t admitted_round = 0;
};

/// Aggregate serving statistics. Keeps the two time ledgers separate:
/// `wall_ms` is real elapsed time (streams overlap inside it), while
/// `simulated_ms` is the summed per-stream frame clock (additive across
/// streams by construction). Their ratio is the effective concurrency.
struct ServeStats {
  double wall_ms = 0.0;
  /// Σ per-stream TimeBreakdown::SimulatedMs() — additive frame-clock.
  double simulated_ms = 0.0;
  /// Σ per-stream algorithm_ms. Each sample is real wall-clock measured
  /// inside one stream; concurrent streams overlap, so this is a work
  /// total, NOT elapsed time — never compare it to wall_ms directly.
  double algorithm_wall_ms = 0.0;
  uint64_t rounds = 0;
  uint64_t frames = 0;
  /// Frames (inside `frames`) answered from tracker propagation by
  /// sessions running with EngineOptions::skip enabled.
  uint64_t skipped_frames = 0;
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  /// Submissions rejected with kResourceExhausted.
  uint64_t shed_submissions = 0;
  int peak_active = 0;
  int peak_queued = 0;
  /// Streams that retired with a non-OK terminal status (each also appears
  /// in `errors`), so fleet aggregation can report WHY streams died
  /// instead of folding failures silently into their results.
  uint64_t failed_streams = 0;
  struct StreamError {
    uint64_t stream_id = 0;
    std::string name;
    StatusCode code = StatusCode::kOk;
    std::string message;
  };
  /// Terminal error of every stream that retired non-OK, retirement order.
  std::vector<StreamError> errors;
  /// Per-frame step latency percentiles (real wall-clock, all streams
  /// pooled); zero when record_frame_latency is off.
  double frame_p50_ms = 0.0;
  double frame_p99_ms = 0.0;
  double frame_p999_ms = 0.0;
  /// Per-priority-class accounting. Latency percentiles here are on the
  /// *simulated* frame clock (per-frame charged-cost deltas) — the same
  /// deterministic signal the overload controller senses — so the SLO
  /// verdicts they support are identical across machines and reruns.
  struct ClassStats {
    uint64_t submitted = 0;
    uint64_t admitted = 0;
    /// Submissions of this class rejected with kResourceExhausted
    /// (admission-full, breaker-gated, or batch-shed at ladder level 3).
    uint64_t shed_submissions = 0;
    uint64_t frames = 0;
    double sim_p50_ms = 0.0;
    double sim_p99_ms = 0.0;
    double sim_p999_ms = 0.0;
    /// shed_submissions / submitted (0 when nothing submitted).
    double shed_rate = 0.0;
  };
  ClassStats classes[kNumPriorityClasses];
  /// Degradation-ladder observability (zeros when overload control is
  /// disabled): final + peak level, rounds spent at level >= 1, and the
  /// full transition ledger — deterministic across reruns/worker counts.
  int degradation_level = 0;
  int peak_degradation_level = 0;
  uint64_t degraded_rounds = 0;
  std::vector<DegradationTransition> degradations;
  /// Cross-stream batching counters (zeros when no dispatcher attached).
  BatchDispatcher::Stats batching;
  /// Fleet breaker state per model at drain time.
  std::vector<BreakerRegistry::ModelHealth> fleet_health;
};

struct ServeReport {
  ServeStats stats;
  /// Sorted by stream_id (= submission order).
  std::vector<StreamReport> streams;
};

class StreamScheduler {
 public:
  explicit StreamScheduler(ServeOptions options = {});

  /// Takes ownership of `session` and either activates it, parks it in
  /// the admission queue, or sheds it with kResourceExhausted (session
  /// destroyed). On success returns the stream id (dense, submission
  /// order). Also shed: sessions whose every published model the fleet
  /// registry currently reports open.
  Result<uint64_t> Submit(std::unique_ptr<StreamSession> session);

  /// Routes every session's same-model detector calls through
  /// `dispatcher` step-bracketing (BeginStep/EndStep around each frame),
  /// and folds its stats into the report. The dispatcher must outlive the
  /// scheduler; sessions must have been built over MakeBatchingPool(...,
  /// dispatcher, id) pools for coalescing to actually happen.
  void AttachBatchDispatcher(BatchDispatcher* dispatcher) {
    dispatcher_ = dispatcher;
  }

  /// Runs DRR rounds until every admitted session drained or retired with
  /// an error. Per-stream step errors are contained in their
  /// StreamReport::status — RunUntilDrained itself fails only on serving
  /// bugs (e.g. invalid options). Callable once. Implemented as
  /// BeginServing + RunRound until idle + FinishServing.
  Result<ServeReport> RunUntilDrained();

  // --- Incremental serving (the fleet shard drive) ---------------------
  //
  // A ShardedServer thread drives its scheduler one round at a time so it
  // can interleave control work (admissions, live-session extraction and
  // implantation, chaos commands) between rounds. All of these methods
  // must be called from one thread at a time — the scheduler itself is
  // not locked; the fleet serializes access by owning it from the shard
  // thread.

  /// Validates options and starts the serving wall clock. Idempotent.
  Status BeginServing();

  /// Runs exactly one DRR round (admission, deficit credit, concurrent
  /// session stepping, retirement). Returns true while sessions remain
  /// active or queued AFTER the round; false on an idle scheduler (no
  /// round is consumed). Requires BeginServing.
  Result<bool> RunRound();

  /// Moves out the StreamReports of sessions retired since the last call
  /// (completion order). The fleet forwards these incrementally; reports
  /// not taken are returned by FinishServing.
  std::vector<StreamReport> TakeRetired();

  /// Finalizes stats (wall clock, latency percentiles, fleet health) and
  /// returns the report with every not-yet-taken StreamReport. Callable
  /// once; the scheduler rejects further work afterwards.
  Result<ServeReport> FinishServing();

  // --- Live-session migration hooks ------------------------------------

  /// Scheduler-side state that must travel with a migrating session so
  /// the target shard's StreamReport continues the counters instead of
  /// restarting them.
  struct SessionCarry {
    size_t frames = 0;
    uint64_t rounds_active = 0;
  };
  struct ExtractedSession {
    std::unique_ptr<StreamSession> session;
    uint64_t stream_id = 0;
    SessionCarry carry;
  };

  /// Removes the named live session (active or still queued) and returns
  /// it with its carried counters. NotFound if no live session has that
  /// name; FailedPrecondition if the session is done (it will retire this
  /// round — there is nothing left worth migrating). Frame-latency samples
  /// it produced here stay in this scheduler's pooled percentiles.
  Result<ExtractedSession> ExtractSession(const std::string& name);

  /// Activates (or queues) a session arriving from another shard,
  /// continuing its carried counters. Bypasses the fleet-breaker admission
  /// gate — the fleet already admitted this stream — but still respects
  /// max_sessions/queue_depth (ResourceExhausted when full, session
  /// destroyed; the fleet picks another shard).
  Result<uint64_t> ImplantSession(std::unique_ptr<StreamSession> session,
                                  SessionCarry carry);

  /// Names of every live (active or queued) session, admission order.
  std::vector<std::string> LiveStreamNames() const;

  /// Publish health into `fleet` (shared across shards) instead of the
  /// scheduler-private registry. Must precede the first Submit; the
  /// registry must outlive the scheduler.
  void UseSharedRegistry(BreakerRegistry* fleet) { registry_ = fleet; }

  /// Shared fleet health registry (sessions publish on every step).
  BreakerRegistry& fleet_health() { return *registry_; }

  int active_sessions() const { return static_cast<int>(active_.size()); }
  int queued_sessions() const { return static_cast<int>(queue_.size()); }
  const ServeOptions& options() const { return options_; }

  /// Live ladder state (null when overload control is disabled). Sensor
  /// and ledger introspection for tests and the fleet layer.
  const OverloadController* overload_controller() const {
    return controller_.get();
  }

 private:
  /// One active session plus its scheduler-side state.
  struct Slot {
    std::unique_ptr<StreamSession> session;
    uint64_t stream_id = 0;
    double deficit_ms = 0.0;
    Status status = Status::OK();
    size_t frames = 0;
    uint64_t rounds_active = 0;
    uint64_t admitted_round = 0;
    /// Per-frame wall latency samples; touched only by the worker
    /// stepping this slot, so no locking.
    std::vector<double> latency_ms;
    /// Per-frame *simulated* cost deltas (same worker-private rule).
    /// Feeds the per-class percentiles and the overload controller.
    std::vector<double> sim_ms;
    /// Samples already fed to the controller (merged at round end in slot
    /// order, on the scheduler thread — deterministic).
    size_t sim_fed = 0;
  };

  void Activate(std::unique_ptr<StreamSession> session, uint64_t id,
                uint64_t round, SessionCarry carry);
  /// Steps `slot` for one round (runs on a pool worker).
  void StepSlotRound(Slot& slot, uint64_t round);
  void Retire(Slot& slot);
  /// One DRR round over a non-idle scheduler (body of RunRound).
  void RoundOnce();

  ServeOptions options_;
  BreakerRegistry own_registry_;
  /// Points at own_registry_ unless UseSharedRegistry rerouted it.
  BreakerRegistry* registry_;
  BatchDispatcher* dispatcher_ = nullptr;
  uint64_t next_stream_id_ = 0;
  uint64_t round_ = 0;
  bool serving_ = false;
  bool finished_ = false;
  Stopwatch wall_;
  std::vector<std::unique_ptr<Slot>> active_;
  struct Queued {
    std::unique_ptr<StreamSession> session;
    uint64_t stream_id = 0;
    SessionCarry carry;
  };
  std::vector<Queued> queue_;
  ServeStats stats_;
  /// Sessions retired since the last TakeRetired (completion order).
  std::vector<StreamReport> retired_;
  std::vector<double> all_latencies_ms_;
  /// Pooled per-class simulated frame-cost samples (merged on retirement
  /// and extraction) for the ClassStats percentiles.
  std::vector<double> class_sim_ms_[kNumPriorityClasses];
  /// Present only when options.overload.enabled.
  std::unique_ptr<OverloadController> controller_;

  /// Observability: node-track handle + cached ids (see ServeOptions::obs).
  ObsHandle node_obs_;
  struct ObsIds {
    MetricsRegistry::Id rounds = MetricsRegistry::kInvalidId;
    MetricsRegistry::Id round_ms = MetricsRegistry::kInvalidId;
    MetricsRegistry::Id frames = MetricsRegistry::kInvalidId;
    MetricsRegistry::Id drr_credit_ms = MetricsRegistry::kInvalidId;
    MetricsRegistry::Id drr_charge_ms = MetricsRegistry::kInvalidId;
    MetricsRegistry::Id admitted = MetricsRegistry::kInvalidId;
    MetricsRegistry::Id shed = MetricsRegistry::kInvalidId;
    MetricsRegistry::Id retired = MetricsRegistry::kInvalidId;
    MetricsRegistry::Id stream_errors = MetricsRegistry::kInvalidId;
    MetricsRegistry::Id overload_transitions = MetricsRegistry::kInvalidId;
  };
  ObsIds obs_ids_;
  /// Monotone wall timestamp base for this scheduler's round spans.
  double obs_wall_ledger_ms_ = 0.0;
};

}  // namespace vqe

#endif  // VQE_SERVE_SCHEDULER_H_
