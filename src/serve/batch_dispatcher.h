// Cross-stream detector batching.
//
// When N sessions step concurrently, each frame step invokes every model
// of its pool once (FrameEvalContext materializes per-model outputs). On
// real hardware those same-model invocations from different streams are
// exactly what a GPU wants as one batched forward pass. The dispatcher
// coalesces them: a stream's Detect call parks in a per-model queue, and a
// batch fires either when the queue reaches `batch_window` requests or as
// soon as every in-flight stream step is blocked waiting (so coalescing
// can never deadlock or stall the wave — a lone stream just runs batches
// of one).
//
// Determinism: the underlying Detect is a pure function of (detector,
// frame, trial_seed), so WHAT each stream observes is bit-identical to its
// solo run no matter how requests coalesce. Batch assembly is additionally
// made deterministic where it can be: requests inside a fired batch
// execute in ascending (stream_id, submission sequence) order, so a batch
// is a sorted, reproducible unit of work. Which requests land in the same
// batch depends on real-time interleaving and is reported only as
// statistics (like wall-clock, it is process bookkeeping, not a result).
//
// The per-stream hook is BatchingDetector, an ObjectDetector decorator
// that routes Detect through a shared dispatcher; MakeBatchingPool wraps a
// whole pool. Stacking order with fault injection: decorate faults first,
// then batching, so the batched call replays the stream's exact solo fault
// sequence.

#ifndef VQE_SERVE_BATCH_DISPATCHER_H_
#define VQE_SERVE_BATCH_DISPATCHER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "models/model_zoo.h"
#include "obs/obs.h"
#include "runtime/fallible_detector.h"

namespace vqe {

struct BatchDispatcherOptions {
  /// Maximum requests coalesced into one batched invocation of a model.
  /// 1 still routes calls through the dispatcher but never coalesces
  /// (useful as the control arm in benchmarks).
  int batch_window = 4;

  Status Validate() const;
};

class BatchDispatcher {
 public:
  explicit BatchDispatcher(BatchDispatcherOptions options = {});

  /// Brackets one stream's frame step. The dispatcher uses the count of
  /// in-flight steps to decide when no further same-wave requests can
  /// arrive (all steppers blocked => fire), which is what makes blocking
  /// safe under any scheduler interleaving. Steps may nest freely across
  /// threads; a Detect outside any bracket is treated as its own step.
  void BeginStep();
  void EndStep();

  /// Blocking: parks one model invocation until its batch fires, then
  /// runs `fn` (exactly once, on whichever thread leads the batch) and
  /// returns. `model_name` is the coalescing key — per-stream decorators
  /// of the same base model share it — and `stream_id` orders requests
  /// within a batch. `fn` captures the actual call (plain Detect or a
  /// fallible Attempt) plus its result slot, so one queue serves both
  /// detector interfaces without erasing their semantics.
  void Run(const std::string& model_name, uint64_t stream_id,
           const std::function<void()>& fn);

  struct Stats {
    uint64_t requests = 0;          ///< Detect calls routed through
    uint64_t batches = 0;           ///< batched invocations fired
    uint64_t coalesced_requests = 0;///< requests in batches of size >= 2
    uint64_t max_batch = 0;         ///< largest batch fired
    double MeanBatch() const {
      return batches == 0 ? 0.0
                          : static_cast<double>(requests) /
                                static_cast<double>(batches);
    }
  };
  Stats stats() const;

  /// Binds the observability sink (flush spans, batch-size histogram —
  /// all wall-domain: which requests coalesce is process bookkeeping).
  /// Call before serving traffic; registers metric series (locks, may
  /// allocate). The handle's track attributes flush spans (use
  /// ObsHandle::WithNodeTrack for shard dispatchers).
  void SetObs(const ObsHandle& obs);

  const BatchDispatcherOptions& options() const { return options_; }

 private:
  struct Request {
    uint64_t stream_id = 0;
    uint64_t seq = 0;  ///< global submission order (tie-break inside a batch)
    const std::function<void()>* fn = nullptr;
    bool done = false;
  };

  /// Key of a fireable batch, empty when none; call with mu_ held.
  std::string FireableKeyLocked() const;

  /// Takes `key`'s queue, executes it outside the lock in sorted order,
  /// marks the requests done and wakes everyone. Expects mu_ held via
  /// `lock`; returns with it held.
  void ExecuteBatch(std::unique_lock<std::mutex>& lock,
                    const std::string& key);

  BatchDispatcherOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int active_steps_ = 0;
  int waiting_ = 0;
  uint64_t seq_ = 0;
  std::map<std::string, std::vector<Request*>> pending_;
  Stats stats_;

  /// Observability (disabled by default; see SetObs). The flush ledger is
  /// the monotone wall timestamp base for flush spans, advanced under mu_.
  ObsHandle obs_;
  MetricsRegistry::Id obs_flushes_ = MetricsRegistry::kInvalidId;
  MetricsRegistry::Id obs_requests_ = MetricsRegistry::kInvalidId;
  MetricsRegistry::Id obs_flush_ms_ = MetricsRegistry::kInvalidId;
  MetricsRegistry::Id obs_batch_size_ = MetricsRegistry::kInvalidId;
  double flush_ledger_ms_ = 0.0;
};

/// ObjectDetector decorator routing Detect through a shared dispatcher.
/// InferenceCostMs and metadata pass straight through (cost lookup is a
/// pure profile read, not a model invocation). Non-owning: `inner` and
/// `dispatcher` must outlive the decorator.
class BatchingDetector final : public ObjectDetector {
 public:
  BatchingDetector(const ObjectDetector* inner, BatchDispatcher* dispatcher,
                   uint64_t stream_id)
      : inner_(inner), dispatcher_(dispatcher), stream_id_(stream_id) {}

  const std::string& name() const override { return inner_->name(); }
  DetectionList Detect(const VideoFrame& frame,
                       uint64_t trial_seed) const override {
    DetectionList out;
    dispatcher_->Run(inner_->name(), stream_id_,
                     [&] { out = inner_->Detect(frame, trial_seed); });
    return out;
  }
  double InferenceCostMs(const VideoFrame& frame,
                         uint64_t trial_seed) const override {
    return inner_->InferenceCostMs(frame, trial_seed);
  }
  uint64_t param_count() const override { return inner_->param_count(); }
  const std::string& structure_name() const override {
    return inner_->structure_name();
  }

 private:
  const ObjectDetector* inner_;
  BatchDispatcher* dispatcher_;
  uint64_t stream_id_;
};

/// FallibleDetector flavor of the same decorator. Crucial for faulted
/// pools: the retry layer (runtime/retry.h) dispatches on fallibility, so
/// a fallible inner wrapped in a plain ObjectDetector decorator would be
/// treated as infallible and lose its error channel. MakeBatchingPool
/// picks this wrapper whenever the inner detector is fallible, keeping
/// retry/deadline/fault semantics — and therefore bit-identity with the
/// unbatched run — intact.
class BatchingFallibleDetector final : public FallibleDetector {
 public:
  BatchingFallibleDetector(const FallibleDetector* inner,
                           BatchDispatcher* dispatcher, uint64_t stream_id)
      : inner_(inner), dispatcher_(dispatcher), stream_id_(stream_id) {}

  const std::string& name() const override { return inner_->name(); }
  AttemptOutcome Attempt(const VideoFrame& frame, uint64_t trial_seed,
                         int attempt) const override {
    AttemptOutcome out;
    dispatcher_->Run(inner_->name(), stream_id_, [&] {
      out = inner_->Attempt(frame, trial_seed, attempt);
    });
    return out;
  }
  DetectionList Detect(const VideoFrame& frame,
                       uint64_t trial_seed) const override {
    DetectionList out;
    dispatcher_->Run(inner_->name(), stream_id_,
                     [&] { out = inner_->Detect(frame, trial_seed); });
    return out;
  }
  double InferenceCostMs(const VideoFrame& frame,
                         uint64_t trial_seed) const override {
    return inner_->InferenceCostMs(frame, trial_seed);
  }
  uint64_t param_count() const override { return inner_->param_count(); }
  const std::string& structure_name() const override {
    return inner_->structure_name();
  }

 private:
  const FallibleDetector* inner_;
  BatchDispatcher* dispatcher_;
  uint64_t stream_id_;
};

/// Decorates every detector of `base` with the fallibility-preserving
/// batching wrapper for `stream_id`; the reference model is cloned
/// undecorated (it is the estimator channel, not a batched candidate arm).
/// Non-owning over the inner detectors: `base` and `dispatcher` must
/// outlive the result.
Result<DetectorPool> MakeBatchingPool(const DetectorPool& base,
                                      BatchDispatcher* dispatcher,
                                      uint64_t stream_id);

}  // namespace vqe

#endif  // VQE_SERVE_BATCH_DISPATCHER_H_
