#include "fusion/fusion_internal.h"

#include <algorithm>
#include <new>

namespace vqe {
namespace fusion_internal {

namespace {

/// The SoA fast path of GroupByClass: filter the frame's packed label
/// blocks down to the span's member lists. Returns false (leaving *out
/// untouched beyond scratch) when the span doesn't map onto the store.
bool GroupFromSoA(DetectionListSpan per_model, FrameArena& arena,
                  const FrameSoA& soa, bool sorted, ClassGroups* out) {
  const std::vector<DetectionList>* src = soa.source();
  if (src == nullptr) return false;

  // Map each span list to its source-vector position by address identity.
  // The forward-only scan enforces strictly ascending source order, the
  // precondition for packed (id-ascending) order to equal the span's
  // model-major flatten order.
  const size_t num_lists = src->size();
  int32_t* span_pos = arena.AllocateArray<int32_t>(num_lists);
  for (size_t q = 0; q < num_lists; ++q) span_pos[q] = -1;
  size_t scan = 0;
  for (size_t j = 0; j < per_model.size(); ++j) {
    const DetectionList* lp = &per_model[j];
    while (scan < num_lists && &(*src)[scan] != lp) ++scan;
    if (scan == num_lists) return false;
    span_pos[scan++] = static_cast<int32_t>(j);
  }

  // Per-block member counts. The totals must reconcile exactly with the
  // span: a shortfall means some detection never claimed its id slot
  // (stale or duplicate frame_det_ids), where only the generic flatten is
  // faithful.
  const auto& blocks = soa.blocks();
  const int32_t* plist = soa.packed_list();
  size_t* block_count = arena.AllocateArray<size_t>(blocks.size());
  size_t num_classes = 0;
  size_t total = 0;
  for (size_t b = 0; b < blocks.size(); ++b) {
    size_t cnt = 0;
    for (size_t s = blocks[b].begin; s < blocks[b].end; ++s) {
      if (span_pos[plist[s]] >= 0) ++cnt;
    }
    block_count[b] = cnt;
    if (cnt > 0) {
      ++num_classes;
      total += cnt;
    }
  }
  size_t span_total = 0;
  for (size_t j = 0; j < per_model.size(); ++j) {
    span_total += per_model[j].size();
  }
  if (total != span_total) return false;
  out->total = total;
  if (total == 0) return true;

  ClassGroup* groups = arena.AllocateArray<ClassGroup>(num_classes);
  Detection* grouped = arena.AllocateArray<Detection>(total);
  int32_t* sources = arena.AllocateArray<int32_t>(total);
  const Detection* const* psrc = soa.packed_src();
  const int32_t* sslot = soa.sorted_slot();
  size_t pos = 0;
  size_t g = 0;
  for (size_t b = 0; b < blocks.size(); ++b) {
    if (block_count[b] == 0) continue;
    ClassGroup* grp = new (groups + g++) ClassGroup();
    grp->label = blocks[b].label;
    grp->dets = grouped + pos;
    grp->sources = sources + pos;
    grp->size = block_count[b];
    for (size_t s = blocks[b].begin; s < blocks[b].end; ++s) {
      const size_t slot = sorted ? static_cast<size_t>(sslot[s]) : s;
      const int32_t j = span_pos[plist[slot]];
      if (j < 0) continue;
      new (grouped + pos) Detection(*psrc[slot]);
      sources[pos] = j;
      ++pos;
    }
  }
  out->groups = groups;
  out->size = num_classes;
  out->presorted = sorted;
  return true;
}

}  // namespace

ClassGroups GroupByClass(DetectionListSpan per_model, FrameArena& arena,
                         const std::vector<double>* model_weights,
                         const FrameSoA* soa, bool sorted) {
  ClassGroups out;
  const bool weights_active =
      model_weights != nullptr && model_weights->size() == per_model.size();
  if (soa != nullptr && !weights_active &&
      GroupFromSoA(per_model, arena, *soa, sorted, &out)) {
    return out;
  }
  out = ClassGroups();
  size_t total = 0;
  for (size_t i = 0; i < per_model.size(); ++i) total += per_model[i].size();
  out.total = total;
  if (total == 0) return out;

  const bool weighted =
      model_weights != nullptr && model_weights->size() == per_model.size();

  // Distinct labels, ascending — the iteration order the historical
  // std::map pooling produced.
  ClassId* labels = arena.AllocateArray<ClassId>(total);
  size_t k = 0;
  for (size_t i = 0; i < per_model.size(); ++i) {
    for (const auto& d : per_model[i]) labels[k++] = d.label;
  }
  std::sort(labels, labels + total);
  const size_t num_classes =
      static_cast<size_t>(std::unique(labels, labels + total) - labels);

  // Gather each class's detections in model-major input order (the order
  // the historical per-class push_backs produced), as mutable copies the
  // kernels may sort and edit. A counting scatter — size each class, then
  // place every detection at its class's running offset in one input-order
  // sweep — lands each entry in exactly that order without rescanning the
  // inputs once per class.
  ClassGroup* groups = arena.AllocateArray<ClassGroup>(num_classes);
  Detection* grouped = arena.AllocateArray<Detection>(total);
  int32_t* sources = arena.AllocateArray<int32_t>(total);
  size_t* offsets = arena.AllocateArray<size_t>(num_classes);
  for (size_t c = 0; c < num_classes; ++c) offsets[c] = 0;
  const auto class_index = [labels, num_classes](ClassId label) {
    return static_cast<size_t>(
        std::lower_bound(labels, labels + num_classes, label) - labels);
  };
  for (size_t i = 0; i < per_model.size(); ++i) {
    for (const auto& d : per_model[i]) ++offsets[class_index(d.label)];
  }
  size_t pos = 0;
  for (size_t c = 0; c < num_classes; ++c) {
    ClassGroup* g = new (groups + c) ClassGroup();
    g->label = labels[c];
    g->dets = grouped + pos;
    g->sources = sources + pos;
    g->size = offsets[c];
    const size_t count = offsets[c];
    offsets[c] = pos;
    pos += count;
  }
  for (size_t i = 0; i < per_model.size(); ++i) {
    for (const auto& d : per_model[i]) {
      const size_t slot_pos = offsets[class_index(d.label)]++;
      Detection* slot = new (grouped + slot_pos) Detection(d);
      if (weighted) {
        slot->confidence =
            std::min(1.0, slot->confidence * (*model_weights)[i]);
      }
      sources[slot_pos] = static_cast<int32_t>(i);
    }
  }

  out.groups = groups;
  out.size = num_classes;
  return out;
}

namespace {

/// Applies the stable descending-confidence permutation to `group` via an
/// index sort, so the parallel sources array follows the exact same
/// reordering as the detections.
void StableSortDescIndexed(const ClassGroup& group, FrameArena& arena) {
  const size_t n = group.size;
  ArenaScope scope(arena);
  uint32_t* idx = arena.AllocateArray<uint32_t>(n);
  for (size_t i = 0; i < n; ++i) idx[i] = static_cast<uint32_t>(i);
  const Detection* dets = group.dets;
  ArenaStableSort(idx, n, arena, [dets](uint32_t a, uint32_t b) {
    return dets[a].confidence > dets[b].confidence;
  });
  Detection* dtmp = arena.AllocateArray<Detection>(n);
  for (size_t i = 0; i < n; ++i) new (dtmp + i) Detection(group.dets[idx[i]]);
  for (size_t i = 0; i < n; ++i) group.dets[i] = dtmp[i];
  if (group.sources != nullptr) {
    int32_t* stmp = arena.AllocateArray<int32_t>(n);
    for (size_t i = 0; i < n; ++i) stmp[i] = group.sources[idx[i]];
    for (size_t i = 0; i < n; ++i) group.sources[i] = stmp[i];
  }
}

}  // namespace

void SortGroupDesc(const ClassGroup& group, FrameArena& arena) {
  if (group.size < 2) return;
  StableSortDescIndexed(group, arena);
}

void SortDescArena(DetectionList* dets, FrameArena& arena) {
  ArenaStableSort(dets->data(), dets->size(), arena,
                  [](const Detection& a, const Detection& b) {
                    return a.confidence > b.confidence;
                  });
}

void SortDesc(DetectionList* dets) {
  std::stable_sort(dets->begin(), dets->end(),
                   [](const Detection& a, const Detection& b) {
                     return a.confidence > b.confidence;
                   });
}

}  // namespace fusion_internal
}  // namespace vqe
