#include "fusion/fusion_internal.h"

#include <algorithm>

namespace vqe {
namespace fusion_internal {

std::map<ClassId, DetectionList> PoolByClass(DetectionListSpan per_model) {
  std::map<ClassId, DetectionList> by_class;
  for (size_t i = 0; i < per_model.size(); ++i) {
    for (const auto& d : per_model[i]) {
      by_class[d.label].push_back(d);
    }
  }
  return by_class;
}

void SortDesc(DetectionList* dets) {
  std::stable_sort(dets->begin(), dets->end(),
                   [](const Detection& a, const Detection& b) {
                     return a.confidence > b.confidence;
                   });
}

}  // namespace fusion_internal
}  // namespace vqe
