#include "fusion/fusion_internal.h"

#include <algorithm>

namespace vqe {
namespace fusion_internal {

std::map<ClassId, DetectionList> PoolByClass(
    const std::vector<DetectionList>& per_model) {
  std::map<ClassId, DetectionList> by_class;
  for (const auto& list : per_model) {
    for (const auto& d : list) {
      by_class[d.label].push_back(d);
    }
  }
  return by_class;
}

void SortDesc(DetectionList* dets) {
  std::stable_sort(dets->begin(), dets->end(),
                   [](const Detection& a, const Detection& b) {
                     return a.confidence > b.confidence;
                   });
}

}  // namespace fusion_internal
}  // namespace vqe
