// Agreement-based consensus fusion, after Wei, Ball & Anderson ("Fusion of
// an ensemble of augmented image detectors for robust object detection",
// Sensors 2018): a fused box is emitted only when enough ensemble members
// independently detect the object, making the ensemble robust to the false
// positives of any single member.

#ifndef VQE_FUSION_CONSENSUS_H_
#define VQE_FUSION_CONSENSUS_H_

#include "fusion/ensemble_method.h"

namespace vqe {

/// Consensus ("Fusion") ensembling.
///
/// Per class, boxes are clustered greedily by IoU across models. A cluster
/// survives when it contains detections from at least `min_votes` distinct
/// models (default: majority). The surviving box is the confidence-weighted
/// coordinate average; its confidence is the member mean scaled by the
/// fraction of agreeing models.
class ConsensusFusion : public EnsembleMethod {
 public:
  explicit ConsensusFusion(const FusionOptions& options) : options_(options) {}
  std::string name() const override { return "Fusion"; }
  void FuseInto(DetectionListSpan per_model, const PairwiseIouCache* iou,
                const FrameSoA* soa, DetectionList* out) const override;
  bool ConsumesIouCache() const override { return true; }

 private:
  FusionOptions options_;
};

}  // namespace vqe

#endif  // VQE_FUSION_CONSENSUS_H_
