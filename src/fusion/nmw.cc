#include "fusion/nmw.h"

#include "fusion/fusion_internal.h"

namespace vqe {

using fusion_internal::CachedIoU;
using fusion_internal::PoolByClass;
using fusion_internal::SortDesc;

DetectionList NmwFusion::Fuse(DetectionListSpan per_model,
                              const PairwiseIouCache* iou) const {
  DetectionList out;
  for (auto& [cls, pooled] : PoolByClass(per_model)) {
    DetectionList dets = pooled;
    SortDesc(&dets);
    std::vector<bool> used(dets.size(), false);
    for (size_t i = 0; i < dets.size(); ++i) {
      if (used[i]) continue;
      used[i] = true;

      // Gather the cluster: every unused box overlapping the top box.
      double wsum = 0.0;
      double x1 = 0.0, y1 = 0.0, x2 = 0.0, y2 = 0.0;
      auto accumulate = [&](const Detection& d, double iou) {
        const double w = d.confidence * iou;
        x1 += w * d.box.x1;
        y1 += w * d.box.y1;
        x2 += w * d.box.x2;
        y2 += w * d.box.y2;
        wsum += w;
      };
      accumulate(dets[i], 1.0);  // the top box votes with IoU 1 to itself
      for (size_t j = i + 1; j < dets.size(); ++j) {
        if (used[j]) continue;
        const double overlap = CachedIoU(iou, dets[i], dets[j]);
        if (overlap > options_.iou_threshold) {
          used[j] = true;
          accumulate(dets[j], overlap);
        }
      }

      Detection fused = dets[i];  // confidence = max of the cluster
      if (wsum > 0.0) {
        fused.box = BBox{x1 / wsum, y1 / wsum, x2 / wsum, y2 / wsum};
      }
      fused.model_index = -1;
      fused.frame_det_id = -1;
      if (fused.confidence >= options_.score_threshold) out.push_back(fused);
    }
  }
  SortDesc(&out);
  return out;
}

}  // namespace vqe
