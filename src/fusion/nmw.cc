#include "fusion/nmw.h"

#include "common/arena.h"
#include "fusion/fusion_internal.h"

namespace vqe {

using fusion_internal::CachedIoU;
using fusion_internal::ClassGroup;
using fusion_internal::GroupByClass;
using fusion_internal::SortDescArena;
using fusion_internal::SortGroupDesc;

void NmwFusion::FuseInto(DetectionListSpan per_model,
                         const PairwiseIouCache* iou, const FrameSoA* soa,
                         DetectionList* out) const {
  out->clear();
  FrameArena& arena = FrameArena::ThreadLocal();
  ArenaScope scope(arena);
  const auto groups =
      GroupByClass(per_model, arena, nullptr, soa, /*sorted=*/true);
  for (const ClassGroup& group : groups) {
    Detection* dets = group.dets;
    const size_t n = group.size;
    if (!groups.presorted) SortGroupDesc(group, arena);
    uint8_t* used = arena.AllocateArray<uint8_t>(n);
    for (size_t i = 0; i < n; ++i) used[i] = 0;
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      used[i] = 1;

      // Gather the cluster: every unused box overlapping the top box.
      double wsum = 0.0;
      double x1 = 0.0, y1 = 0.0, x2 = 0.0, y2 = 0.0;
      auto accumulate = [&](const Detection& d, double overlap) {
        const double w = d.confidence * overlap;
        x1 += w * d.box.x1;
        y1 += w * d.box.y1;
        x2 += w * d.box.x2;
        y2 += w * d.box.y2;
        wsum += w;
      };
      accumulate(dets[i], 1.0);  // the top box votes with IoU 1 to itself
      for (size_t j = i + 1; j < n; ++j) {
        if (used[j]) continue;
        const double overlap = CachedIoU(iou, dets[i], dets[j]);
        if (overlap > options_.iou_threshold) {
          used[j] = 1;
          accumulate(dets[j], overlap);
        }
      }

      Detection fused = dets[i];  // confidence = max of the cluster
      if (wsum > 0.0) {
        fused.box = BBox{x1 / wsum, y1 / wsum, x2 / wsum, y2 / wsum};
      }
      fused.model_index = -1;
      fused.frame_det_id = -1;
      if (fused.confidence >= options_.score_threshold) out->push_back(fused);
    }
  }
  SortDescArena(out, arena);
}

}  // namespace vqe
