#include "fusion/wbf.h"

#include <algorithm>

#include "fusion/fusion_internal.h"

namespace vqe {

using fusion_internal::PoolByClass;
using fusion_internal::SortDesc;

namespace {

struct WbfCluster {
  DetectionList members;
  Detection fused;

  // Recomputes the fused box as the confidence-weighted average of member
  // coordinates, and the fused confidence as the member mean.
  void Refresh() {
    double wsum = 0.0;
    double x1 = 0.0, y1 = 0.0, x2 = 0.0, y2 = 0.0;
    double conf_sum = 0.0;
    double var_sum = 0.0;
    for (const auto& m : members) {
      const double w = m.confidence;
      x1 += w * m.box.x1;
      y1 += w * m.box.y1;
      x2 += w * m.box.x2;
      y2 += w * m.box.y2;
      wsum += w;
      conf_sum += m.confidence;
      var_sum += m.box_variance;
    }
    if (wsum > 0.0) {
      fused.box = BBox{x1 / wsum, y1 / wsum, x2 / wsum, y2 / wsum};
    }
    fused.confidence = conf_sum / static_cast<double>(members.size());
    fused.box_variance = var_sum / static_cast<double>(members.size());
    fused.label = members.front().label;
    fused.model_index = -1;
  }
};

}  // namespace

// WBF deliberately ignores the IoU cache (ConsumesIouCache() stays
// false): candidates are matched against the *fused* box of each cluster,
// a derived confidence-weighted average — even a single-member cluster's
// center is (w·x)/w, not bitwise x — so no raw-pair tile can serve these
// queries bit-identically.
DetectionList WbfFusion::Fuse(DetectionListSpan per_model,
                              const PairwiseIouCache* /*iou*/) const {
  const size_t num_models = per_model.size();
  DetectionList out;

  // Per-model weighting (Solovyev et al.): scale each model's confidences
  // before pooling. Ignored unless the weight vector matches the input.
  DetectionListSpan inputs = per_model;
  std::vector<DetectionList> weighted;
  if (options_.model_weights.size() == num_models) {
    weighted.resize(num_models);
    for (size_t i = 0; i < num_models; ++i) {
      weighted[i] = per_model[i];
      for (auto& d : weighted[i]) {
        d.confidence =
            std::min(1.0, d.confidence * options_.model_weights[i]);
      }
    }
    inputs = DetectionListSpan(weighted);
  }

  for (auto& [cls, pooled] : PoolByClass(inputs)) {
    DetectionList dets = pooled;
    SortDesc(&dets);

    std::vector<WbfCluster> clusters;
    for (const auto& d : dets) {
      // Find the best-matching existing cluster by fused-box IoU.
      int best = -1;
      double best_iou = options_.iou_threshold;
      for (size_t c = 0; c < clusters.size(); ++c) {
        const double iou = IoU(clusters[c].fused.box, d.box);
        if (iou > best_iou) {
          best_iou = iou;
          best = static_cast<int>(c);
        }
      }
      if (best >= 0) {
        clusters[static_cast<size_t>(best)].members.push_back(d);
        clusters[static_cast<size_t>(best)].Refresh();
      } else {
        WbfCluster c;
        c.members.push_back(d);
        c.Refresh();
        clusters.push_back(std::move(c));
      }
    }

    for (auto& c : clusters) {
      // Confidence rescaling: penalize clusters fewer models contributed to.
      if (num_models > 0) {
        const double n = static_cast<double>(c.members.size());
        const double t = static_cast<double>(num_models);
        c.fused.confidence *= std::min(n, t) / t;
      }
      if (c.fused.confidence >= options_.score_threshold) {
        out.push_back(c.fused);
      }
    }
  }
  SortDesc(&out);
  return out;
}

}  // namespace vqe
