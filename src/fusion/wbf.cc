#include "fusion/wbf.h"

#include <algorithm>

#include "common/arena.h"
#include "fusion/fusion_internal.h"

namespace vqe {

using fusion_internal::ClassGroup;
using fusion_internal::GroupByClass;
using fusion_internal::SortDescArena;
using fusion_internal::SortGroupDesc;

namespace {

// A cluster carries the running member folds instead of the member list.
// The historical cluster refolded its members front-to-back after every
// insertion; since members only ever append, the running sums after k
// insertions are, by induction, the exact partial sums of that refold —
// so each Add produces a fused box, confidence and variance bit-identical
// to a from-scratch recomputation, at O(1) instead of O(k).
struct WbfCluster {
  double wsum = 0.0;
  double x1 = 0.0, y1 = 0.0, x2 = 0.0, y2 = 0.0;
  double conf_sum = 0.0;
  double var_sum = 0.0;
  size_t size = 0;
  Detection fused;
  // fused.box.Area(), maintained alongside the box so the candidate scan
  // can use the hoisted-area IoU (bit-identical: same Area() expression,
  // evaluated on the same box).
  double fused_area = 0.0;

  void Add(const Detection& m) {
    const double w = m.confidence;
    x1 += w * m.box.x1;
    y1 += w * m.box.y1;
    x2 += w * m.box.x2;
    y2 += w * m.box.y2;
    wsum += w;
    conf_sum += m.confidence;
    var_sum += m.box_variance;
    if (size == 0) fused.label = m.label;  // members.front().label
    ++size;
    if (wsum > 0.0) {
      fused.box = BBox{x1 / wsum, y1 / wsum, x2 / wsum, y2 / wsum};
      fused_area = fused.box.Area();
    }
    fused.confidence = conf_sum / static_cast<double>(size);
    fused.box_variance = var_sum / static_cast<double>(size);
    fused.model_index = -1;
  }
};

}  // namespace

// WBF deliberately ignores the IoU cache (ConsumesIouCache() stays
// false): candidates are matched against the *fused* box of each cluster,
// a derived confidence-weighted average — even a single-member cluster's
// center is (w·x)/w, not bitwise x — so no raw-pair tile can serve these
// queries bit-identically.
void WbfFusion::FuseInto(DetectionListSpan per_model,
                         const PairwiseIouCache* /*iou*/, const FrameSoA* soa,
                         DetectionList* out) const {
  const size_t num_models = per_model.size();
  out->clear();
  FrameArena& arena = FrameArena::ThreadLocal();
  ArenaScope scope(arena);

  // Per-model weighting (Solovyev et al.) happens during the grouped
  // flatten; GroupByClass ignores the weights unless they match the input
  // (and declines the SoA fast path when they are active, since weighting
  // rescales the sort keys).
  const auto groups = GroupByClass(per_model, arena, &options_.model_weights,
                                   soa, /*sorted=*/true);
  for (const ClassGroup& group : groups) {
    Detection* dets = group.dets;
    if (!groups.presorted) SortGroupDesc(group, arena);

    // At most one cluster per pooled detection: a flat arena run replaces
    // the historical vector-of-clusters.
    WbfCluster* clusters = arena.AllocateArray<WbfCluster>(group.size);
    size_t num_clusters = 0;
    for (size_t i = 0; i < group.size; ++i) {
      const Detection& d = dets[i];
      // Find the best-matching existing cluster by fused-box IoU (candidate
      // area hoisted out of the cluster sweep).
      const double d_area = d.box.Area();
      int best = -1;
      double best_iou = options_.iou_threshold;
      for (size_t c = 0; c < num_clusters; ++c) {
        const double iou = IoUWithAreas(clusters[c].fused.box,
                                        clusters[c].fused_area, d.box, d_area);
        if (iou > best_iou) {
          best_iou = iou;
          best = static_cast<int>(c);
        }
      }
      if (best < 0) {
        new (clusters + num_clusters) WbfCluster();
        best = static_cast<int>(num_clusters++);
      }
      clusters[static_cast<size_t>(best)].Add(d);
    }

    for (size_t ci = 0; ci < num_clusters; ++ci) {
      WbfCluster& c = clusters[ci];
      // Confidence rescaling: penalize clusters fewer models contributed to.
      if (num_models > 0) {
        const double n = static_cast<double>(c.size);
        const double t = static_cast<double>(num_models);
        c.fused.confidence *= std::min(n, t) / t;
      }
      if (c.fused.confidence >= options_.score_threshold) {
        out->push_back(c.fused);
      }
    }
  }
  SortDescArena(out, arena);
}

}  // namespace vqe
