#include "fusion/consensus.h"

#include <map>
#include <set>

#include "fusion/fusion_internal.h"

namespace vqe {

using fusion_internal::CachedIoU;
using fusion_internal::SortDesc;

DetectionList ConsensusFusion::Fuse(DetectionListSpan per_model,
                                    const PairwiseIouCache* iou) const {
  const int num_models = static_cast<int>(per_model.size());
  const int required =
      options_.min_votes > 0
          ? options_.min_votes
          : (num_models + 1) / 2;  // majority by default

  // Pool with the *positional* model id, so vote counting is correct even
  // when producers left model_index unset.
  struct Tagged {
    Detection det;
    int source = 0;
  };
  std::map<ClassId, std::vector<Tagged>> by_class;
  for (int m = 0; m < num_models; ++m) {
    for (const auto& d : per_model[static_cast<size_t>(m)]) {
      by_class[d.label].push_back(Tagged{d, m});
    }
  }

  DetectionList out;
  for (auto& [cls, tagged] : by_class) {
    std::stable_sort(tagged.begin(), tagged.end(),
                     [](const Tagged& a, const Tagged& b) {
                       return a.det.confidence > b.det.confidence;
                     });
    std::vector<bool> used(tagged.size(), false);
    for (size_t i = 0; i < tagged.size(); ++i) {
      if (used[i]) continue;
      used[i] = true;
      std::vector<size_t> cluster{i};
      for (size_t j = i + 1; j < tagged.size(); ++j) {
        if (used[j]) continue;
        if (CachedIoU(iou, tagged[i].det, tagged[j].det) >
            options_.iou_threshold) {
          used[j] = true;
          cluster.push_back(j);
        }
      }

      std::set<int> voters;
      for (size_t k : cluster) voters.insert(tagged[k].source);
      if (static_cast<int>(voters.size()) < required) continue;

      double wsum = 0.0;
      double x1 = 0.0, y1 = 0.0, x2 = 0.0, y2 = 0.0;
      double conf_sum = 0.0;
      for (size_t k : cluster) {
        const Detection& d = tagged[k].det;
        const double w = d.confidence;
        x1 += w * d.box.x1;
        y1 += w * d.box.y1;
        x2 += w * d.box.x2;
        y2 += w * d.box.y2;
        wsum += w;
        conf_sum += d.confidence;
      }
      Detection fused;
      fused.label = cls;
      fused.model_index = -1;
      if (wsum > 0.0) {
        fused.box = BBox{x1 / wsum, y1 / wsum, x2 / wsum, y2 / wsum};
      }
      const double agreement = num_models > 0
                                   ? static_cast<double>(voters.size()) /
                                         static_cast<double>(num_models)
                                   : 1.0;
      fused.confidence =
          (conf_sum / static_cast<double>(cluster.size())) * agreement;
      if (fused.confidence >= options_.score_threshold) out.push_back(fused);
    }
  }
  SortDesc(&out);
  return out;
}

}  // namespace vqe
