#include "fusion/consensus.h"

#include "common/arena.h"
#include "fusion/fusion_internal.h"

namespace vqe {

using fusion_internal::CachedIoU;
using fusion_internal::ClassGroup;
using fusion_internal::GroupByClass;
using fusion_internal::SortDescArena;
using fusion_internal::SortGroupDesc;

void ConsensusFusion::FuseInto(DetectionListSpan per_model,
                               const PairwiseIouCache* iou,
                               const FrameSoA* soa, DetectionList* out) const {
  const int num_models = static_cast<int>(per_model.size());
  const int required =
      options_.min_votes > 0
          ? options_.min_votes
          : (num_models + 1) / 2;  // majority by default

  out->clear();
  FrameArena& arena = FrameArena::ThreadLocal();
  ArenaScope scope(arena);
  // Vote counting uses the group's *positional* sources array, so it is
  // correct even when producers left model_index unset.
  const auto groups =
      GroupByClass(per_model, arena, nullptr, soa, /*sorted=*/true);
  for (const ClassGroup& group : groups) {
    Detection* dets = group.dets;
    const int32_t* sources = group.sources;
    const size_t n = group.size;
    if (!groups.presorted) SortGroupDesc(group, arena);

    uint8_t* used = arena.AllocateArray<uint8_t>(n);
    for (size_t i = 0; i < n; ++i) used[i] = 0;
    // Reused cluster index buffer (capacity n covers any cluster).
    uint32_t* cluster = arena.AllocateArray<uint32_t>(n);
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      used[i] = 1;
      size_t cluster_size = 0;
      cluster[cluster_size++] = static_cast<uint32_t>(i);
      for (size_t j = i + 1; j < n; ++j) {
        if (used[j]) continue;
        if (CachedIoU(iou, dets[i], dets[j]) > options_.iou_threshold) {
          used[j] = 1;
          cluster[cluster_size++] = static_cast<uint32_t>(j);
        }
      }

      // Count distinct voting models with a linear scan (clusters are at
      // most a handful of boxes — no need for a set).
      int voters = 0;
      for (size_t k = 0; k < cluster_size; ++k) {
        const int32_t src = sources[cluster[k]];
        bool seen = false;
        for (size_t p = 0; p < k && !seen; ++p) {
          seen = sources[cluster[p]] == src;
        }
        if (!seen) ++voters;
      }
      if (voters < required) continue;

      double wsum = 0.0;
      double x1 = 0.0, y1 = 0.0, x2 = 0.0, y2 = 0.0;
      double conf_sum = 0.0;
      for (size_t k = 0; k < cluster_size; ++k) {
        const Detection& d = dets[cluster[k]];
        const double w = d.confidence;
        x1 += w * d.box.x1;
        y1 += w * d.box.y1;
        x2 += w * d.box.x2;
        y2 += w * d.box.y2;
        wsum += w;
        conf_sum += d.confidence;
      }
      Detection fused;
      fused.label = group.label;
      fused.model_index = -1;
      if (wsum > 0.0) {
        fused.box = BBox{x1 / wsum, y1 / wsum, x2 / wsum, y2 / wsum};
      }
      const double agreement = num_models > 0
                                   ? static_cast<double>(voters) /
                                         static_cast<double>(num_models)
                                   : 1.0;
      fused.confidence =
          (conf_sum / static_cast<double>(cluster_size)) * agreement;
      if (fused.confidence >= options_.score_threshold) out->push_back(fused);
    }
  }
  SortDescArena(out, arena);
}

}  // namespace vqe
