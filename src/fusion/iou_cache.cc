#include "fusion/iou_cache.h"

namespace vqe {

int AssignFrameDetIds(std::vector<DetectionList>& per_model) {
  int32_t next = 0;
  for (auto& list : per_model) {
    for (auto& d : list) d.frame_det_id = next++;
  }
  return static_cast<int>(next);
}

PairwiseIouCache::PairwiseIouCache(const std::vector<DetectionList>& per_model,
                                   int num_ids) {
  if (num_ids <= 0 || num_ids > kMaxCachedDetections) return;
  n_ = num_ids;
  const size_t n = static_cast<size_t>(n_);
  tile_.assign(n * n, -1.0);

  std::vector<const Detection*> by_id(n, nullptr);
  for (const auto& list : per_model) {
    for (const auto& d : list) {
      if (d.frame_det_id >= 0 && d.frame_det_id < n_) {
        by_id[static_cast<size_t>(d.frame_det_id)] = &d;
      }
    }
  }
  // Fill same-label pairs only: fusion pools per class, so cross-label
  // pairs are never queried. IoU is FP-symmetric, so one computation per
  // unordered pair serves both orientations bit-identically.
  for (size_t i = 0; i < n; ++i) {
    const Detection* a = by_id[i];
    if (a == nullptr) continue;
    for (size_t j = i; j < n; ++j) {
      const Detection* b = by_id[j];
      if (b == nullptr || b->label != a->label) continue;
      const double iou = IoU(a->box, b->box);
      tile_[i * n + j] = iou;
      tile_[j * n + i] = iou;
    }
  }
}

double PairwiseIouCache::Get(const Detection& a, const Detection& b) const {
  if (a.frame_det_id >= 0 && a.frame_det_id < n_ && b.frame_det_id >= 0 &&
      b.frame_det_id < n_) {
    const double v = tile_[static_cast<size_t>(a.frame_det_id) *
                               static_cast<size_t>(n_) +
                           static_cast<size_t>(b.frame_det_id)];
    if (v >= 0.0) return v;
  }
  return IoU(a.box, b.box);
}

}  // namespace vqe
