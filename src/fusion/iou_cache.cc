#include "fusion/iou_cache.h"

#include <algorithm>

#include "detection/frame_soa.h"

namespace vqe {

int AssignFrameDetIds(std::vector<DetectionList>& per_model) {
  int32_t next = 0;
  for (auto& list : per_model) {
    for (auto& d : list) d.frame_det_id = next++;
  }
  return static_cast<int>(next);
}

PairwiseIouCache::PairwiseIouCache(const FrameSoA& soa) {
  if (soa.num_ids() <= 0 || soa.num_ids() > kMaxCachedDetections) return;
  n_ = soa.num_ids();
  const size_t n = static_cast<size_t>(n_);
  tile_.assign(n * n, -1.0);

  // Fill same-label pairs only, one label block at a time: fusion pools
  // per class, so cross-label pairs are never queried. Each block's
  // coordinates are packed over contiguous lanes, so the inner sweep is a
  // straight min/max/multiply pipeline with a branch-free select — the
  // form auto-vectorizers handle — and only the final tile stores are
  // scattered (through the packed-slot → frame_det_id map).
  //
  // Bit-identity with scalar IoU(a.box, b.box), pair by pair:
  //   * iw/ih are the identical min/max expressions;
  //   * max(iw, 0) * max(ih, 0) equals iw*ih whenever both are positive
  //     (the only case scalar IntersectionArea multiplies) and otherwise
  //     yields a non-positive product that the final select maps to the
  //     same literal 0.0 the scalar early-outs return;
  //   * packed_area is BBox::Area() evaluated by the same expression, and
  //     the union folds area_a + area_b − inter in the scalar's order.
  // IoU is FP-symmetric (min/max of coordinates and commutative
  // additions), so one computation per unordered pair serves both
  // orientations bit-identically. NaN-free inputs are a precondition
  // (detections are finite by construction); min/max ordering under NaN
  // is the one place the kernel and scalar could otherwise part ways.
  double* tile = tile_.data();
  const int32_t* ids = soa.packed_id();
  const double* px1 = soa.packed_x1();
  const double* py1 = soa.packed_y1();
  const double* px2 = soa.packed_x2();
  const double* py2 = soa.packed_y2();
  const double* parea = soa.packed_area();
  for (const FrameSoA::LabelBlock& block : soa.blocks()) {
    for (size_t i = block.begin; i < block.end; ++i) {
      const double ax1 = px1[i];
      const double ay1 = py1[i];
      const double ax2 = px2[i];
      const double ay2 = py2[i];
      const double aarea = parea[i];
      const size_t row = static_cast<size_t>(ids[i]) * n;
      for (size_t j = i; j < block.end; ++j) {
        const double iw = std::min(ax2, px2[j]) - std::max(ax1, px1[j]);
        const double ih = std::min(ay2, py2[j]) - std::max(ay1, py1[j]);
        const double inter = std::max(iw, 0.0) * std::max(ih, 0.0);
        const double uni = aarea + parea[j] - inter;
        const double iou =
            (inter > 0.0 && uni > 0.0) ? inter / uni : 0.0;
        tile[row + static_cast<size_t>(ids[j])] = iou;
        tile[static_cast<size_t>(ids[j]) * n + static_cast<size_t>(ids[i])] =
            iou;
      }
    }
  }
}

PairwiseIouCache::PairwiseIouCache(const std::vector<DetectionList>& per_model,
                                   int num_ids)
    : PairwiseIouCache(FrameSoA(per_model, num_ids)) {}

double PairwiseIouCache::Get(const Detection& a, const Detection& b) const {
  if (a.frame_det_id >= 0 && a.frame_det_id < n_ && b.frame_det_id >= 0 &&
      b.frame_det_id < n_) {
    const double v = tile_[static_cast<size_t>(a.frame_det_id) *
                               static_cast<size_t>(n_) +
                           static_cast<size_t>(b.frame_det_id)];
    if (v >= 0.0) return v;
  }
  return IoU(a.box, b.box);
}

}  // namespace vqe
