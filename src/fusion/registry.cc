#include "common/strings.h"
#include "fusion/consensus.h"
#include "fusion/ensemble_method.h"
#include "fusion/nms.h"
#include "fusion/nmw.h"
#include "fusion/wbf.h"

namespace vqe {

const char* FusionKindToString(FusionKind kind) {
  switch (kind) {
    case FusionKind::kNms:
      return "NMS";
    case FusionKind::kSoftNmsLinear:
      return "Soft-NMS(linear)";
    case FusionKind::kSoftNmsGaussian:
      return "Soft-NMS(gauss)";
    case FusionKind::kSofterNms:
      return "Softer-NMS";
    case FusionKind::kWbf:
      return "WBF";
    case FusionKind::kNmw:
      return "NMW";
    case FusionKind::kConsensus:
      return "Fusion";
  }
  return "Unknown";
}

Result<FusionKind> FusionKindFromString(const std::string& name) {
  const std::string n = ToLower(name);
  if (n == "nms") return FusionKind::kNms;
  if (n == "soft-nms" || n == "soft-nms(linear)" || n == "softnms") {
    return FusionKind::kSoftNmsLinear;
  }
  if (n == "soft-nms(gauss)" || n == "soft-nms-gaussian") {
    return FusionKind::kSoftNmsGaussian;
  }
  if (n == "softer-nms" || n == "softernms") return FusionKind::kSofterNms;
  if (n == "wbf") return FusionKind::kWbf;
  if (n == "nmw") return FusionKind::kNmw;
  if (n == "fusion" || n == "consensus") return FusionKind::kConsensus;
  return Status::NotFound("unknown fusion method: " + name);
}

Status FusionOptions::Validate() const {
  if (iou_threshold < 0.0 || iou_threshold > 1.0) {
    return Status::InvalidArgument("iou_threshold must be in [0, 1]");
  }
  if (score_threshold < 0.0 || score_threshold > 1.0) {
    return Status::InvalidArgument("score_threshold must be in [0, 1]");
  }
  if (sigma <= 0.0) {
    return Status::InvalidArgument("sigma must be positive");
  }
  if (min_votes < 0) {
    return Status::InvalidArgument("min_votes must be non-negative");
  }
  for (double w : model_weights) {
    if (w <= 0.0) {
      return Status::InvalidArgument("model_weights must be positive");
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<EnsembleMethod>> CreateEnsembleMethod(
    FusionKind kind, const FusionOptions& options) {
  VQE_RETURN_NOT_OK(options.Validate());
  switch (kind) {
    case FusionKind::kNms:
      return std::unique_ptr<EnsembleMethod>(new NmsFusion(options));
    case FusionKind::kSoftNmsLinear:
      return std::unique_ptr<EnsembleMethod>(
          new SoftNmsFusion(options, SoftNmsFusion::Decay::kLinear));
    case FusionKind::kSoftNmsGaussian:
      return std::unique_ptr<EnsembleMethod>(
          new SoftNmsFusion(options, SoftNmsFusion::Decay::kGaussian));
    case FusionKind::kSofterNms:
      return std::unique_ptr<EnsembleMethod>(new SofterNmsFusion(options));
    case FusionKind::kWbf:
      return std::unique_ptr<EnsembleMethod>(new WbfFusion(options));
    case FusionKind::kNmw:
      return std::unique_ptr<EnsembleMethod>(new NmwFusion(options));
    case FusionKind::kConsensus:
      return std::unique_ptr<EnsembleMethod>(new ConsensusFusion(options));
  }
  return Status::InvalidArgument("unhandled FusionKind");
}

std::vector<FusionKind> AllFusionKinds() {
  return {FusionKind::kNms,          FusionKind::kSoftNmsLinear,
          FusionKind::kSoftNmsGaussian, FusionKind::kSofterNms,
          FusionKind::kWbf,          FusionKind::kNmw,
          FusionKind::kConsensus};
}

}  // namespace vqe
