// NMS-family fusion: classic greedy Non-Maximum Suppression, Soft-NMS
// (Bodla et al., linear and Gaussian decay) and Softer-NMS (He et al.,
// variance voting), applied to the pooled detections of an ensemble.

#ifndef VQE_FUSION_NMS_H_
#define VQE_FUSION_NMS_H_

#include "fusion/ensemble_method.h"

namespace vqe {

/// Classic greedy NMS over the pooled per-class detections: repeatedly keep
/// the highest-confidence box and discard remaining boxes overlapping it
/// with IoU > iou_threshold.
class NmsFusion : public EnsembleMethod {
 public:
  explicit NmsFusion(const FusionOptions& options) : options_(options) {}
  std::string name() const override { return "NMS"; }
  void FuseInto(DetectionListSpan per_model, const PairwiseIouCache* iou,
                const FrameSoA* soa, DetectionList* out) const override;
  bool ConsumesIouCache() const override { return true; }

 private:
  FusionOptions options_;
};

/// Soft-NMS: instead of discarding overlapping boxes, decays their scores —
/// linearly (s *= 1 − IoU when IoU > threshold) or with a Gaussian kernel
/// (s *= exp(−IoU² / sigma)). Boxes whose decayed score falls below
/// score_threshold are dropped.
class SoftNmsFusion : public EnsembleMethod {
 public:
  enum class Decay { kLinear, kGaussian };

  SoftNmsFusion(const FusionOptions& options, Decay decay)
      : options_(options), decay_(decay) {}
  std::string name() const override {
    return decay_ == Decay::kLinear ? "Soft-NMS(linear)" : "Soft-NMS(gauss)";
  }
  void FuseInto(DetectionListSpan per_model, const PairwiseIouCache* iou,
                const FrameSoA* soa, DetectionList* out) const override;
  bool ConsumesIouCache() const override { return true; }

 private:
  FusionOptions options_;
  Decay decay_;
};

/// Softer-NMS: greedy selection as in NMS, but the kept box's coordinates
/// are re-estimated by variance voting — an inverse-variance-weighted
/// average over all pooled boxes with IoU > iou_threshold to the selected
/// box, with weights further decayed by exp(−(1−IoU)²/sigma). Detections
/// lacking a variance estimate use (1 − confidence) + ε as a proxy.
class SofterNmsFusion : public EnsembleMethod {
 public:
  explicit SofterNmsFusion(const FusionOptions& options) : options_(options) {}
  std::string name() const override { return "Softer-NMS"; }
  void FuseInto(DetectionListSpan per_model, const PairwiseIouCache* iou,
                const FrameSoA* soa, DetectionList* out) const override;
  bool ConsumesIouCache() const override { return true; }

 private:
  FusionOptions options_;
};

}  // namespace vqe

#endif  // VQE_FUSION_NMS_H_
