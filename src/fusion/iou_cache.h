// Per-frame pairwise-IoU tile cache. Matrix construction and the lazy
// frame evaluator fuse the same m cached detection lists under up to
// 2^m − 1 masks; every mask containing models {i, j} used to recompute
// IoU between the same raw boxes. The cache computes each same-label pair
// once per frame and serves every fusion call from the tile.
//
// Bit-identity contract: the tile stores exactly what IoU(a.box, b.box)
// returns (IoU is FP-symmetric: max/min of coordinates and commutative
// additions), so a cached lookup is indistinguishable from recomputation.
// Only raw *input* detections are cacheable — methods that measure IoU
// against derived boxes (WBF's evolving cluster centers) must not consume
// the cache, and fusion outputs reset frame_det_id to −1.

#ifndef VQE_FUSION_IOU_CACHE_H_
#define VQE_FUSION_IOU_CACHE_H_

#include <cstdint>
#include <vector>

#include "detection/detection.h"

namespace vqe {

class FrameSoA;  // detection/frame_soa.h

/// Assigns ascending frame-local ids (Detection::frame_det_id) across all
/// detections of the per-model lists, in list-then-element order. Returns
/// the total number of ids assigned.
int AssignFrameDetIds(std::vector<DetectionList>& per_model);

/// Dense tile of pairwise IoUs between a frame's cached detections,
/// indexed by frame_det_id. Same-label pairs are filled eagerly (fusion
/// only compares within a class); Get falls back to computing IoU for any
/// pair the tile does not cover. Read-only after construction, so safe to
/// share across concurrent Fuse calls.
class PairwiseIouCache {
 public:
  /// Frames with more cached detections than this skip the tile (the n²
  /// footprint stops paying for itself); Get then always recomputes.
  static constexpr int kMaxCachedDetections = 1024;

  /// An empty, disabled cache: Get always recomputes.
  PairwiseIouCache() = default;

  /// Builds the tile from a frame's SoA detection store: the fast path.
  /// Same-label pairs are swept one label block at a time over the store's
  /// packed coordinate lanes — branch-light, unit-stride, vectorizable —
  /// while honouring the bit-identity contract above.
  explicit PairwiseIouCache(const FrameSoA& soa);

  /// Builds the tile over `per_model`, whose detections must carry the ids
  /// a prior AssignFrameDetIds(per_model) assigned; `num_ids` is its
  /// return value. Convenience wrapper: materializes a FrameSoA and runs
  /// the block kernel over it.
  PairwiseIouCache(const std::vector<DetectionList>& per_model, int num_ids);

  bool enabled() const { return n_ > 0; }

  /// IoU(a.box, b.box), from the tile when both detections carry in-range
  /// ids and the pair was precomputed, recomputed otherwise.
  double Get(const Detection& a, const Detection& b) const;

 private:
  int n_ = 0;
  /// n_ × n_ row-major tile; negative sentinel marks unfilled pairs.
  std::vector<double> tile_;
};

}  // namespace vqe

#endif  // VQE_FUSION_IOU_CACHE_H_
