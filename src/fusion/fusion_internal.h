// Helpers shared by the fusion algorithm implementations. Not part of the
// public API.

#ifndef VQE_FUSION_FUSION_INTERNAL_H_
#define VQE_FUSION_FUSION_INTERNAL_H_

#include <map>
#include <vector>

#include "detection/detection.h"
#include "fusion/ensemble_method.h"
#include "fusion/iou_cache.h"

namespace vqe {
namespace fusion_internal {

/// Flattens per-model lists into one pool, preserving model_index, and
/// groups the pooled detections by class label.
std::map<ClassId, DetectionList> PoolByClass(DetectionListSpan per_model);

/// Sorts a detection list by descending confidence (stable).
void SortDesc(DetectionList* dets);

/// IoU(a.box, b.box) through the per-frame tile cache when one is
/// available, recomputed otherwise. Only valid for *raw* input detections
/// (see PairwiseIouCache's bit-identity contract).
inline double CachedIoU(const PairwiseIouCache* cache, const Detection& a,
                        const Detection& b) {
  return cache != nullptr ? cache->Get(a, b) : IoU(a.box, b.box);
}

}  // namespace fusion_internal
}  // namespace vqe

#endif  // VQE_FUSION_FUSION_INTERNAL_H_
