// Helpers shared by the fusion algorithm implementations. Not part of the
// public API.

#ifndef VQE_FUSION_FUSION_INTERNAL_H_
#define VQE_FUSION_FUSION_INTERNAL_H_

#include <map>
#include <vector>

#include "detection/detection.h"
#include "fusion/ensemble_method.h"

namespace vqe {
namespace fusion_internal {

/// Flattens per-model lists into one pool, preserving model_index, and
/// groups the pooled detections by class label.
std::map<ClassId, DetectionList> PoolByClass(DetectionListSpan per_model);

/// Sorts a detection list by descending confidence (stable).
void SortDesc(DetectionList* dets);

}  // namespace fusion_internal
}  // namespace vqe

#endif  // VQE_FUSION_FUSION_INTERNAL_H_
