// Helpers shared by the fusion algorithm implementations. Not part of the
// public API.
//
// The fusion kernels are allocation-free in steady state: every transient
// they need (class-grouped pools, sort buffers, suppression flags, cluster
// scratch) comes from the calling thread's FrameArena, claimed under an
// ArenaScope at the top of each FuseInto and reclaimed wholesale when the
// call returns. Only the caller-owned output list touches the heap, and
// only until its capacity has warmed up.

#ifndef VQE_FUSION_FUSION_INTERNAL_H_
#define VQE_FUSION_FUSION_INTERNAL_H_

#include <cstdint>
#include <vector>

#include "common/arena.h"
#include "detection/detection.h"
#include "detection/frame_soa.h"
#include "fusion/ensemble_method.h"
#include "fusion/iou_cache.h"

namespace vqe {
namespace fusion_internal {

/// The pooled detections of one class: a mutable arena-backed run the
/// owning kernel may sort and edit freely (entries are copies).
/// `sources` carries each entry's *positional* model index within the
/// Fuse call (parallel to dets) for methods that count votes; it follows
/// every permutation ApplySortDesc performs.
struct ClassGroup {
  ClassId label = 0;
  Detection* dets = nullptr;
  int32_t* sources = nullptr;
  size_t size = 0;
};

/// Flattens per-model lists into per-class pools held in `arena`,
/// preserving the historical grouping semantics exactly: classes iterate
/// in ascending label order and, within a class, detections keep
/// model-major input order. When `model_weights` matches the number of
/// input lists, model i's confidences are pre-scaled by
/// min(1, conf · weight_i) during the flatten (WBF's weighting step);
/// pass nullptr or a mismatched vector to skip, mirroring WbfFusion.
///
/// The returned group array and everything it points at live in `arena`
/// and die with the caller's ArenaScope.
struct ClassGroups {
  const ClassGroup* groups = nullptr;
  size_t size = 0;
  /// Total pooled detections across all groups.
  size_t total = 0;
  /// True when every group was emitted already in stable
  /// descending-confidence order (the SoA fast path with `sorted` set), so
  /// the caller's SortGroupDesc would be a no-op and can be skipped.
  bool presorted = false;

  const ClassGroup* begin() const { return groups; }
  const ClassGroup* end() const { return groups + size; }
};
/// `soa`, when non-null, enables the per-frame fast path: the frame's
/// FrameSoA already holds every input list grouped by class, in model-major
/// order, with a per-class stable descending-score permutation computed
/// once. The flatten then filters the packed blocks down to the span's
/// member lists (mapped by address identity against soa->source()) instead
/// of re-deriving labels and offsets per call, emitting groups either in
/// model-major order (`sorted` false) or descending-confidence order
/// (`sorted` true, reported via ClassGroups::presorted). Both orders are
/// bit-identical to the historical flatten(+sort): filtering a stably
/// sorted sequence to a subset yields exactly the stable sort of that
/// subset. The fast path declines (falls back to the generic flatten) when
/// the span's lists don't map cleanly onto soa->source() in ascending
/// order, when any detection lacks its id slot, or when model weights are
/// active (weights rescale the sort keys, invalidating the precomputed
/// permutation).
ClassGroups GroupByClass(DetectionListSpan per_model, FrameArena& arena,
                         const std::vector<double>* model_weights = nullptr,
                         const FrameSoA* soa = nullptr, bool sorted = false);

/// Stable descending-confidence sort of a group's detections (and its
/// parallel sources array when present), using arena scratch instead of
/// std::stable_sort's per-call heap buffer. A stable sort's permutation is
/// unique, so the order — and every value fused from it — matches the
/// historical std::stable_sort exactly.
void SortGroupDesc(const ClassGroup& group, FrameArena& arena);

/// Stable descending-confidence sort of a finished output list with arena
/// scratch (the allocation-free replacement for the old SortDesc helper on
/// hot paths).
void SortDescArena(DetectionList* dets, FrameArena& arena);

/// Sorts a detection list by descending confidence (stable). Kept for
/// cold call sites and tests; hot kernels use SortDescArena.
void SortDesc(DetectionList* dets);

/// IoU(a.box, b.box) through the per-frame tile cache when one is
/// available, recomputed otherwise. Only valid for *raw* input detections
/// (see PairwiseIouCache's bit-identity contract).
inline double CachedIoU(const PairwiseIouCache* cache, const Detection& a,
                        const Detection& b) {
  return cache != nullptr ? cache->Get(a, b) : IoU(a.box, b.box);
}

}  // namespace fusion_internal
}  // namespace vqe

#endif  // VQE_FUSION_FUSION_INTERNAL_H_
