// Weighted Boxes Fusion (Solovyev, Wang & Gabruseva, Image and Vision
// Computing 2021) — the fusion method the paper selects for all MES
// experiments (§5.2). Unlike NMS it *averages* clustered boxes instead of
// discarding them, which is why it wins on ensembles.

#ifndef VQE_FUSION_WBF_H_
#define VQE_FUSION_WBF_H_

#include "fusion/ensemble_method.h"

namespace vqe {

/// Weighted Boxes Fusion.
///
/// Per class, boxes from all models are processed in descending confidence
/// order. Each box joins the first existing cluster whose *fused* box it
/// overlaps with IoU > iou_threshold, else it starts a new cluster. A
/// cluster's fused box is the confidence-weighted average of its members'
/// coordinates; its confidence is the members' mean confidence, rescaled at
/// the end by min(N, T)/T where N = cluster size and T = number of models —
/// penalizing boxes few models agree on.
class WbfFusion : public EnsembleMethod {
 public:
  explicit WbfFusion(const FusionOptions& options) : options_(options) {}
  std::string name() const override { return "WBF"; }
  void FuseInto(DetectionListSpan per_model, const PairwiseIouCache* iou,
                const FrameSoA* soa, DetectionList* out) const override;

 private:
  FusionOptions options_;
};

}  // namespace vqe

#endif  // VQE_FUSION_WBF_H_
