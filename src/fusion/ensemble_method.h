// Box-fusion ("model prediction ensembling") interface. Given the raw
// detections of each model in an ensemble on one frame, a fusion method
// produces the combined detection list D_{S|v} of the paper (§2.1).
//
// Implemented methods (all compared in §5.2 of the paper, WBF selected):
//   NMS, Soft-NMS (linear & Gaussian), Softer-NMS (variance voting),
//   WBF (weighted boxes fusion), NMW (non-maximum weighted),
//   Fusion (agreement-based consensus).

#ifndef VQE_FUSION_ENSEMBLE_METHOD_H_
#define VQE_FUSION_ENSEMBLE_METHOD_H_

#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "detection/detection.h"

namespace vqe {

class PairwiseIouCache;  // fusion/iou_cache.h
class FrameSoA;          // detection/frame_soa.h

/// Identifier of a fusion algorithm.
enum class FusionKind {
  kNms,
  kSoftNmsLinear,
  kSoftNmsGaussian,
  kSofterNms,
  kWbf,
  kNmw,
  kConsensus,
};

/// Human-readable name (e.g. "WBF").
const char* FusionKindToString(FusionKind kind);

/// Parses a case-insensitive name ("wbf", "soft-nms", ...).
Result<FusionKind> FusionKindFromString(const std::string& name);

// DetectionListSpan (the non-owning per-model input view of Fuse) lives in
// detection/detection.h alongside DetectionList, so SoA frame stores and
// other detection-layer code can speak it without depending on fusion.

/// Strategy interface for combining per-model detections into one list.
class EnsembleMethod {
 public:
  virtual ~EnsembleMethod() = default;

  virtual std::string name() const = 0;

  /// Fuses the outputs of the ensemble's models on one frame into `*out`
  /// (cleared first, capacity kept — the hot path hands the same buffer
  /// to thousands of calls and steady-state performs zero heap
  /// allocations; transient scratch lives in the calling thread's
  /// FrameArena).
  ///
  /// `per_model` holds one detection list per model in the ensemble (order
  /// is irrelevant to correctness but kept stable for determinism). The
  /// result is a single detection list with `model_index == -1` and
  /// `frame_det_id == -1`. Implementations are stateless and safe to call
  /// concurrently (per-thread arenas never alias).
  ///
  /// `iou` is an optional per-frame pairwise-IoU tile over the *raw* input
  /// detections (see fusion/iou_cache.h). Methods that report
  /// ConsumesIouCache() read raw-pair IoUs through it (bit-identical to
  /// recomputation, by the cache's contract); others ignore it. Pass
  /// nullptr when no cache is available.
  ///
  /// `soa` is an optional per-frame SoA store over the *same* cached
  /// per-model outputs (detection/frame_soa.h), built right after
  /// AssignFrameDetIds. When present, the grouped flatten filters the
  /// store's precomputed per-class, presorted pools instead of re-pooling
  /// and re-sorting per call — bit-identical by the stable-sort filter
  /// lemma, and verified cheap to decline (implementations fall back to
  /// the generic flatten whenever the span doesn't map onto the store).
  /// Pass nullptr when no store is available.
  virtual void FuseInto(DetectionListSpan per_model,
                        const PairwiseIouCache* iou, const FrameSoA* soa,
                        DetectionList* out) const = 0;

  /// Value-returning convenience over FuseInto (one allocation per call;
  /// hot paths reuse an output buffer via FuseInto instead).
  DetectionList Fuse(DetectionListSpan per_model,
                     const PairwiseIouCache* iou) const {
    DetectionList out;
    FuseInto(per_model, iou, /*soa=*/nullptr, &out);
    return out;
  }

  /// Cache-less convenience overload.
  DetectionList Fuse(DetectionListSpan per_model) const {
    return Fuse(per_model, nullptr);
  }

  /// Convenience for braced calls, e.g. Fuse({a, b}). The initializer
  /// list's backing array lives for the caller's full expression, which
  /// covers the nested virtual call — safe by construction, unlike a
  /// span over a braced list bound to a named variable (which is why
  /// DetectionListSpan has no initializer_list constructor).
  DetectionList Fuse(std::initializer_list<DetectionList> lists) const {
    return Fuse(DetectionListSpan(lists.begin(), lists.size()), nullptr);
  }

  /// True when Fuse benefits from a PairwiseIouCache: the method's only
  /// IoU queries are between raw input detections (NMS family, NMW,
  /// Consensus). False for methods that measure IoU against *derived*
  /// boxes — WBF compares candidates to evolving confidence-weighted
  /// cluster centers, which no raw-pair tile can serve bit-identically —
  /// so callers skip building the tile entirely.
  virtual bool ConsumesIouCache() const { return false; }
};

/// Tuning knobs shared by the fusion algorithms. Fields irrelevant to a
/// given algorithm are ignored by it.
struct FusionOptions {
  /// IoU above which two boxes are considered the same object.
  double iou_threshold = 0.55;
  /// Post-fusion confidence floor; fused boxes below it are dropped.
  double score_threshold = 0.0;
  /// Gaussian decay sigma (Soft-NMS gaussian) / variance-voting sigma_t
  /// (Softer-NMS).
  double sigma = 0.5;
  /// Minimum number of agreeing models for Consensus fusion; 0 means
  /// majority (ceil(n_models / 2)).
  int min_votes = 0;
  /// Optional per-model weights (Solovyev et al. §2.2): when non-empty,
  /// model i's confidences are scaled by model_weights[i] before fusion.
  /// Must match the number of per-model lists passed to Fuse, with every
  /// weight positive. Consumed by WBF; other methods ignore it.
  std::vector<double> model_weights;

  /// Validates ranges; returns InvalidArgument with a reason otherwise.
  Status Validate() const;
};

/// Creates a fusion method instance.
Result<std::unique_ptr<EnsembleMethod>> CreateEnsembleMethod(
    FusionKind kind, const FusionOptions& options = {});

/// Lists all implemented fusion kinds (for comparison benches).
std::vector<FusionKind> AllFusionKinds();

}  // namespace vqe

#endif  // VQE_FUSION_ENSEMBLE_METHOD_H_
