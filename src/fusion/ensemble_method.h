// Box-fusion ("model prediction ensembling") interface. Given the raw
// detections of each model in an ensemble on one frame, a fusion method
// produces the combined detection list D_{S|v} of the paper (§2.1).
//
// Implemented methods (all compared in §5.2 of the paper, WBF selected):
//   NMS, Soft-NMS (linear & Gaussian), Softer-NMS (variance voting),
//   WBF (weighted boxes fusion), NMW (non-maximum weighted),
//   Fusion (agreement-based consensus).

#ifndef VQE_FUSION_ENSEMBLE_METHOD_H_
#define VQE_FUSION_ENSEMBLE_METHOD_H_

#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "detection/detection.h"

namespace vqe {

class PairwiseIouCache;  // fusion/iou_cache.h

/// Identifier of a fusion algorithm.
enum class FusionKind {
  kNms,
  kSoftNmsLinear,
  kSoftNmsGaussian,
  kSofterNms,
  kWbf,
  kNmw,
  kConsensus,
};

/// Human-readable name (e.g. "WBF").
const char* FusionKindToString(FusionKind kind);

/// Parses a case-insensitive name ("wbf", "soft-nms", ...).
Result<FusionKind> FusionKindFromString(const std::string& name);

/// Non-owning view of the per-model detection lists handed to Fuse: either
/// a contiguous array of lists or an array of list pointers. Lets callers
/// assemble an ensemble's inputs from cached per-model outputs without
/// deep-copying a single detection (the hot path of matrix construction
/// fuses the same m lists under 2^m − 1 masks). The referenced lists must
/// outlive the span.
class DetectionListSpan {
 public:
  DetectionListSpan() = default;
  /// View over an owning vector of lists.
  DetectionListSpan(const std::vector<DetectionList>& lists)
      : contiguous_(lists.data()), size_(lists.size()) {}
  /// View over a vector of non-null list pointers.
  DetectionListSpan(const std::vector<const DetectionList*>& ptrs)
      : indirect_(ptrs.data()), size_(ptrs.size()) {}
  /// View over `n` contiguous lists starting at `data`, which must outlive
  /// the span.
  DetectionListSpan(const DetectionList* data, size_t n)
      : contiguous_(data), size_(n) {}
  // There is deliberately no initializer_list constructor: one would store
  // lists.begin() and dangle the moment a braced list is bound to a named
  // span. Braced calls like Fuse({a, b}) instead go through the non-virtual
  // EnsembleMethod::Fuse(initializer_list) overload, whose backing array is
  // guaranteed to outlive the nested virtual call.

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const DetectionList& operator[](size_t i) const {
    return contiguous_ != nullptr ? contiguous_[i] : *indirect_[i];
  }

 private:
  const DetectionList* contiguous_ = nullptr;
  const DetectionList* const* indirect_ = nullptr;
  size_t size_ = 0;
};

/// Strategy interface for combining per-model detections into one list.
class EnsembleMethod {
 public:
  virtual ~EnsembleMethod() = default;

  virtual std::string name() const = 0;

  /// Fuses the outputs of the ensemble's models on one frame.
  ///
  /// `per_model` holds one detection list per model in the ensemble (order
  /// is irrelevant to correctness but kept stable for determinism). The
  /// result is a single detection list with `model_index == -1` and
  /// `frame_det_id == -1`. Implementations are stateless and safe to call
  /// concurrently.
  ///
  /// `iou` is an optional per-frame pairwise-IoU tile over the *raw* input
  /// detections (see fusion/iou_cache.h). Methods that report
  /// ConsumesIouCache() read raw-pair IoUs through it (bit-identical to
  /// recomputation, by the cache's contract); others ignore it. Pass
  /// nullptr when no cache is available.
  virtual DetectionList Fuse(DetectionListSpan per_model,
                             const PairwiseIouCache* iou) const = 0;

  /// Cache-less convenience overload.
  DetectionList Fuse(DetectionListSpan per_model) const {
    return Fuse(per_model, nullptr);
  }

  /// Convenience for braced calls, e.g. Fuse({a, b}). The initializer
  /// list's backing array lives for the caller's full expression, which
  /// covers the nested virtual call — safe by construction, unlike a
  /// span over a braced list bound to a named variable (which is why
  /// DetectionListSpan has no initializer_list constructor). Overriders
  /// pull this overload back in with `using EnsembleMethod::Fuse;`.
  DetectionList Fuse(std::initializer_list<DetectionList> lists) const {
    return Fuse(DetectionListSpan(lists.begin(), lists.size()), nullptr);
  }

  /// True when Fuse benefits from a PairwiseIouCache: the method's only
  /// IoU queries are between raw input detections (NMS family, NMW,
  /// Consensus). False for methods that measure IoU against *derived*
  /// boxes — WBF compares candidates to evolving confidence-weighted
  /// cluster centers, which no raw-pair tile can serve bit-identically —
  /// so callers skip building the tile entirely.
  virtual bool ConsumesIouCache() const { return false; }
};

/// Tuning knobs shared by the fusion algorithms. Fields irrelevant to a
/// given algorithm are ignored by it.
struct FusionOptions {
  /// IoU above which two boxes are considered the same object.
  double iou_threshold = 0.55;
  /// Post-fusion confidence floor; fused boxes below it are dropped.
  double score_threshold = 0.0;
  /// Gaussian decay sigma (Soft-NMS gaussian) / variance-voting sigma_t
  /// (Softer-NMS).
  double sigma = 0.5;
  /// Minimum number of agreeing models for Consensus fusion; 0 means
  /// majority (ceil(n_models / 2)).
  int min_votes = 0;
  /// Optional per-model weights (Solovyev et al. §2.2): when non-empty,
  /// model i's confidences are scaled by model_weights[i] before fusion.
  /// Must match the number of per-model lists passed to Fuse, with every
  /// weight positive. Consumed by WBF; other methods ignore it.
  std::vector<double> model_weights;

  /// Validates ranges; returns InvalidArgument with a reason otherwise.
  Status Validate() const;
};

/// Creates a fusion method instance.
Result<std::unique_ptr<EnsembleMethod>> CreateEnsembleMethod(
    FusionKind kind, const FusionOptions& options = {});

/// Lists all implemented fusion kinds (for comparison benches).
std::vector<FusionKind> AllFusionKinds();

}  // namespace vqe

#endif  // VQE_FUSION_ENSEMBLE_METHOD_H_
