#include "fusion/nms.h"

#include <cmath>

#include "common/arena.h"
#include "fusion/fusion_internal.h"

namespace vqe {

using fusion_internal::CachedIoU;
using fusion_internal::ClassGroup;
using fusion_internal::GroupByClass;
using fusion_internal::SortGroupDesc;

void NmsFusion::FuseInto(DetectionListSpan per_model,
                         const PairwiseIouCache* iou, const FrameSoA* soa,
                         DetectionList* out) const {
  out->clear();
  FrameArena& arena = FrameArena::ThreadLocal();
  ArenaScope scope(arena);
  const auto groups =
      GroupByClass(per_model, arena, nullptr, soa, /*sorted=*/true);
  for (const ClassGroup& group : groups) {
    Detection* dets = group.dets;
    const size_t n = group.size;
    if (!groups.presorted) SortGroupDesc(group, arena);
    uint8_t* suppressed = arena.AllocateArray<uint8_t>(n);
    for (size_t i = 0; i < n; ++i) suppressed[i] = 0;
    for (size_t i = 0; i < n; ++i) {
      if (suppressed[i]) continue;
      Detection kept = dets[i];
      kept.model_index = -1;
      kept.frame_det_id = -1;
      if (kept.confidence >= options_.score_threshold) out->push_back(kept);
      for (size_t j = i + 1; j < n; ++j) {
        if (suppressed[j]) continue;
        if (CachedIoU(iou, dets[i], dets[j]) > options_.iou_threshold) {
          suppressed[j] = 1;
        }
      }
    }
  }
}

void SoftNmsFusion::FuseInto(DetectionListSpan per_model,
                             const PairwiseIouCache* iou, const FrameSoA* soa,
                             DetectionList* out) const {
  // Drop decayed boxes below this floor even when the caller sets a zero
  // score_threshold, matching the reference implementation's behaviour.
  const double floor =
      options_.score_threshold > 0.0 ? options_.score_threshold : 1e-3;

  out->clear();
  FrameArena& arena = FrameArena::ThreadLocal();
  ArenaScope scope(arena);
  // Soft-NMS needs its pools in model-major input order (its argmax scan's
  // first-of-equals tie-break depends on it), so the SoA path is asked for
  // the unsorted grouping.
  for (const ClassGroup& group :
       GroupByClass(per_model, arena, nullptr, soa, /*sorted=*/false)) {
    // The group's detections are this kernel's working set, edited in
    // place: `rem` is the live prefix (the historical `remaining` list).
    Detection* dets = group.dets;
    size_t rem = group.size;
    while (rem > 0) {
      // Select the current maximum-score box (first of equals, as the
      // historical strict-> scan did).
      size_t best = 0;
      for (size_t i = 1; i < rem; ++i) {
        if (dets[i].confidence > dets[best].confidence) best = i;
      }
      // `kept` retains its frame_det_id for the decay loop's cached IoU
      // queries (its box is the raw input box); the emitted copy resets
      // the fusion-output identity fields.
      const Detection kept = dets[best];
      for (size_t i = best; i + 1 < rem; ++i) dets[i] = dets[i + 1];
      --rem;
      if (kept.confidence < floor) continue;
      Detection emitted = kept;
      emitted.model_index = -1;
      emitted.frame_det_id = -1;
      out->push_back(emitted);

      // Decay the scores of overlapping survivors, compacting in place —
      // the same survivor order the historical rebuilt `next` list kept.
      size_t w = 0;
      for (size_t i = 0; i < rem; ++i) {
        const double overlap = CachedIoU(iou, kept, dets[i]);
        double decayed = dets[i].confidence;
        if (decay_ == Decay::kLinear) {
          if (overlap > options_.iou_threshold) decayed *= (1.0 - overlap);
        } else {
          decayed *= std::exp(-(overlap * overlap) / options_.sigma);
        }
        if (decayed >= floor) {
          dets[w] = dets[i];
          dets[w].confidence = decayed;
          ++w;
        }
      }
      rem = w;
    }
  }
}

void SofterNmsFusion::FuseInto(DetectionListSpan per_model,
                               const PairwiseIouCache* iou,
                               const FrameSoA* soa, DetectionList* out) const {
  constexpr double kVarianceEpsilon = 1e-3;
  out->clear();
  FrameArena& arena = FrameArena::ThreadLocal();
  ArenaScope scope(arena);
  const auto groups =
      GroupByClass(per_model, arena, nullptr, soa, /*sorted=*/true);
  for (const ClassGroup& group : groups) {
    Detection* dets = group.dets;
    const size_t n = group.size;
    if (!groups.presorted) SortGroupDesc(group, arena);
    uint8_t* suppressed = arena.AllocateArray<uint8_t>(n);
    for (size_t i = 0; i < n; ++i) suppressed[i] = 0;
    for (size_t i = 0; i < n; ++i) {
      if (suppressed[i]) continue;
      // Variance voting: average the coordinates of all boxes overlapping
      // the selected one, weighted by exp(-(1-IoU)^2/sigma) / variance.
      double wsum = 0.0;
      BBox voted{0, 0, 0, 0};
      for (size_t j = 0; j < n; ++j) {
        const double overlap = CachedIoU(iou, dets[i], dets[j]);
        const bool is_self = j == i;
        if (!is_self && overlap <= options_.iou_threshold) continue;
        const double variance =
            dets[j].box_variance > 0.0
                ? dets[j].box_variance
                : (1.0 - dets[j].confidence) + kVarianceEpsilon;
        const double w =
            std::exp(-(1.0 - overlap) * (1.0 - overlap) / options_.sigma) /
            variance;
        voted.x1 += w * dets[j].box.x1;
        voted.y1 += w * dets[j].box.y1;
        voted.x2 += w * dets[j].box.x2;
        voted.y2 += w * dets[j].box.y2;
        wsum += w;
        if (!is_self && overlap > options_.iou_threshold) suppressed[j] = 1;
      }
      Detection kept = dets[i];
      if (wsum > 0.0) {
        kept.box = BBox{voted.x1 / wsum, voted.y1 / wsum, voted.x2 / wsum,
                        voted.y2 / wsum};
      }
      kept.model_index = -1;
      kept.frame_det_id = -1;
      if (kept.confidence >= options_.score_threshold) out->push_back(kept);
    }
  }
}

}  // namespace vqe
