#include "fusion/nms.h"

#include <cmath>

#include "fusion/fusion_internal.h"

namespace vqe {

using fusion_internal::CachedIoU;
using fusion_internal::PoolByClass;
using fusion_internal::SortDesc;

DetectionList NmsFusion::Fuse(DetectionListSpan per_model,
                              const PairwiseIouCache* iou) const {
  DetectionList out;
  for (auto& [cls, pooled] : PoolByClass(per_model)) {
    DetectionList dets = pooled;
    SortDesc(&dets);
    std::vector<bool> suppressed(dets.size(), false);
    for (size_t i = 0; i < dets.size(); ++i) {
      if (suppressed[i]) continue;
      Detection kept = dets[i];
      kept.model_index = -1;
      kept.frame_det_id = -1;
      if (kept.confidence >= options_.score_threshold) out.push_back(kept);
      for (size_t j = i + 1; j < dets.size(); ++j) {
        if (suppressed[j]) continue;
        if (CachedIoU(iou, dets[i], dets[j]) > options_.iou_threshold) {
          suppressed[j] = true;
        }
      }
    }
  }
  return out;
}

DetectionList SoftNmsFusion::Fuse(DetectionListSpan per_model,
                                  const PairwiseIouCache* iou) const {
  // Drop decayed boxes below this floor even when the caller sets a zero
  // score_threshold, matching the reference implementation's behaviour.
  const double floor =
      options_.score_threshold > 0.0 ? options_.score_threshold : 1e-3;

  DetectionList out;
  for (auto& [cls, pooled] : PoolByClass(per_model)) {
    DetectionList remaining = pooled;
    while (!remaining.empty()) {
      // Select the current maximum-score box.
      size_t best = 0;
      for (size_t i = 1; i < remaining.size(); ++i) {
        if (remaining[i].confidence > remaining[best].confidence) best = i;
      }
      // `kept` retains its frame_det_id for the decay loop's cached IoU
      // queries (its box is the raw input box); the emitted copy resets
      // the fusion-output identity fields.
      const Detection kept = remaining[best];
      remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(best));
      if (kept.confidence < floor) continue;
      Detection emitted = kept;
      emitted.model_index = -1;
      emitted.frame_det_id = -1;
      out.push_back(emitted);

      // Decay the scores of overlapping survivors.
      DetectionList next;
      next.reserve(remaining.size());
      for (auto& d : remaining) {
        const double overlap = CachedIoU(iou, kept, d);
        double decayed = d.confidence;
        if (decay_ == Decay::kLinear) {
          if (overlap > options_.iou_threshold) decayed *= (1.0 - overlap);
        } else {
          decayed *= std::exp(-(overlap * overlap) / options_.sigma);
        }
        if (decayed >= floor) {
          d.confidence = decayed;
          next.push_back(d);
        }
      }
      remaining = std::move(next);
    }
  }
  return out;
}

DetectionList SofterNmsFusion::Fuse(DetectionListSpan per_model,
                                    const PairwiseIouCache* iou) const {
  constexpr double kVarianceEpsilon = 1e-3;
  DetectionList out;
  for (auto& [cls, pooled] : PoolByClass(per_model)) {
    DetectionList dets = pooled;
    SortDesc(&dets);
    std::vector<bool> suppressed(dets.size(), false);
    for (size_t i = 0; i < dets.size(); ++i) {
      if (suppressed[i]) continue;
      // Variance voting: average the coordinates of all boxes overlapping
      // the selected one, weighted by exp(-(1-IoU)^2/sigma) / variance.
      double wsum = 0.0;
      BBox voted{0, 0, 0, 0};
      for (size_t j = 0; j < dets.size(); ++j) {
        const double overlap = CachedIoU(iou, dets[i], dets[j]);
        const bool is_self = j == i;
        if (!is_self && overlap <= options_.iou_threshold) continue;
        const double variance =
            dets[j].box_variance > 0.0
                ? dets[j].box_variance
                : (1.0 - dets[j].confidence) + kVarianceEpsilon;
        const double w =
            std::exp(-(1.0 - overlap) * (1.0 - overlap) / options_.sigma) /
            variance;
        voted.x1 += w * dets[j].box.x1;
        voted.y1 += w * dets[j].box.y1;
        voted.x2 += w * dets[j].box.x2;
        voted.y2 += w * dets[j].box.y2;
        wsum += w;
        if (!is_self && overlap > options_.iou_threshold) suppressed[j] = true;
      }
      Detection kept = dets[i];
      if (wsum > 0.0) {
        kept.box = BBox{voted.x1 / wsum, voted.y1 / wsum, voted.x2 / wsum,
                        voted.y2 / wsum};
      }
      kept.model_index = -1;
      kept.frame_det_id = -1;
      if (kept.confidence >= options_.score_threshold) out.push_back(kept);
    }
  }
  return out;
}

}  // namespace vqe
