// Non-Maximum Weighted fusion (Zhou et al., "CAD: scale invariant framework
// for real-time object detection", ICCV-W 2017): NMS-style clustering around
// the maximum-confidence box, but the reported box is the weighted average
// of the cluster with weights confidence × IoU(box, top box).

#ifndef VQE_FUSION_NMW_H_
#define VQE_FUSION_NMW_H_

#include "fusion/ensemble_method.h"

namespace vqe {

/// Non-Maximum Weighted box fusion.
class NmwFusion : public EnsembleMethod {
 public:
  explicit NmwFusion(const FusionOptions& options) : options_(options) {}
  std::string name() const override { return "NMW"; }
  void FuseInto(DetectionListSpan per_model, const PairwiseIouCache* iou,
                const FrameSoA* soa, DetectionList* out) const override;
  bool ConsumesIouCache() const override { return true; }

 private:
  FusionOptions options_;
};

}  // namespace vqe

#endif  // VQE_FUSION_NMW_H_
