#include "runtime/retry.h"

#include <string>
#include <utility>

#include "runtime/fallible_detector.h"

namespace vqe {

Status RetryPolicy::Validate() const {
  if (max_attempts < 1) {
    return Status::InvalidArgument("RetryPolicy.max_attempts must be >= 1");
  }
  if (backoff_base_ms < 0.0) {
    return Status::InvalidArgument("RetryPolicy.backoff_base_ms must be >= 0");
  }
  if (backoff_multiplier < 1.0) {
    return Status::InvalidArgument(
        "RetryPolicy.backoff_multiplier must be >= 1");
  }
  return Status::OK();
}

namespace {

// One attempt against a detector that has no failure channel of its own.
// Detect before InferenceCostMs: FrameEvalContext always called them in
// that order, and both consume the detector's RNG stream, so swapping them
// would silently change every seeded result in the repo.
AttemptOutcome InfallibleAttempt(const ObjectDetector& detector,
                                 const VideoFrame& frame,
                                 uint64_t trial_seed) {
  AttemptOutcome out;
  out.detections = detector.Detect(frame, trial_seed);
  out.latency_ms = detector.InferenceCostMs(frame, trial_seed);
  out.status = Status::OK();
  return out;
}

}  // namespace

DetectorCallOutcome DetectWithRetries(const ObjectDetector& detector,
                                      const VideoFrame& frame,
                                      uint64_t trial_seed,
                                      const RetryPolicy& policy) {
  const auto* fallible = dynamic_cast<const FallibleDetector*>(&detector);
  DetectorCallOutcome call;
  double backoff = policy.backoff_base_ms;
  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    if (attempt > 0) {
      call.fault_ms += backoff;
      backoff *= policy.backoff_multiplier;
    }
    ++call.attempts;
    AttemptOutcome outcome =
        fallible ? fallible->Attempt(frame, trial_seed, attempt)
                 : InfallibleAttempt(detector, frame, trial_seed);
    if (outcome.status.ok() && policy.deadline_ms > 0.0 &&
        outcome.latency_ms > policy.deadline_ms) {
      // The attempt would have answered eventually, but past the deadline:
      // the caller abandons it at the deadline mark and pays exactly that.
      outcome.status = Status::DeadlineExceeded(
          detector.name() + ": attempt exceeded deadline");
      outcome.latency_ms = policy.deadline_ms;
      outcome.detections.clear();
    }
    if (outcome.status.ok()) {
      call.status = Status::OK();
      call.detections = std::move(outcome.detections);
      call.inference_ms = outcome.latency_ms;
      return call;
    }
    call.fault_ms += outcome.latency_ms;
    call.status = std::move(outcome.status);
  }
  return call;
}

}  // namespace vqe
