#include "runtime/circuit_breaker.h"

namespace vqe {

Status CircuitBreakerOptions::Validate() const {
  if (failure_threshold < 1) {
    return Status::InvalidArgument(
        "CircuitBreakerOptions.failure_threshold must be >= 1");
  }
  if (open_frames < 1) {
    return Status::InvalidArgument(
        "CircuitBreakerOptions.open_frames must be >= 1");
  }
  if (half_open_probes < 1) {
    return Status::InvalidArgument(
        "CircuitBreakerOptions.half_open_probes must be >= 1");
  }
  return Status::OK();
}

const char* BreakerStateToString(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

BreakerState CircuitBreaker::StateAt(size_t t) {
  if (state_ == BreakerState::kOpen &&
      t >= opened_at_ + options_.open_frames) {
    state_ = BreakerState::kHalfOpen;
    probe_successes_ = 0;
  }
  return state_;
}

void CircuitBreaker::RecordSuccess(size_t t) {
  ++successes_;
  switch (StateAt(t)) {
    case BreakerState::kClosed:
      consecutive_failures_ = 0;
      break;
    case BreakerState::kHalfOpen:
      if (++probe_successes_ >= options_.half_open_probes) {
        state_ = BreakerState::kClosed;
        consecutive_failures_ = 0;
      }
      break;
    case BreakerState::kOpen:
      // A success while open (caller bypassed the breaker) is recorded in
      // the counters but does not change state.
      break;
  }
}

void CircuitBreaker::RecordFailure(size_t t) {
  ++failures_;
  switch (StateAt(t)) {
    case BreakerState::kClosed:
      if (++consecutive_failures_ >= options_.failure_threshold) TripOpen(t);
      break;
    case BreakerState::kHalfOpen:
      // A failed probe re-opens immediately and restarts the cool-down.
      TripOpen(t);
      break;
    case BreakerState::kOpen:
      break;
  }
}

void CircuitBreaker::TripOpen(size_t t) {
  state_ = BreakerState::kOpen;
  opened_at_ = t;
  consecutive_failures_ = 0;
  probe_successes_ = 0;
  ++opens_;
}

}  // namespace vqe
