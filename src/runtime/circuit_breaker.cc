#include "runtime/circuit_breaker.h"

namespace vqe {

Status CircuitBreakerOptions::Validate() const {
  if (failure_threshold < 1) {
    return Status::InvalidArgument(
        "CircuitBreakerOptions.failure_threshold must be >= 1");
  }
  if (open_frames < 1) {
    return Status::InvalidArgument(
        "CircuitBreakerOptions.open_frames must be >= 1");
  }
  if (half_open_probes < 1) {
    return Status::InvalidArgument(
        "CircuitBreakerOptions.half_open_probes must be >= 1");
  }
  return Status::OK();
}

const char* BreakerStateToString(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

BreakerState CircuitBreaker::StateAt(size_t t) {
  if (state_ == BreakerState::kOpen &&
      t >= opened_at_ + options_.open_frames) {
    state_ = BreakerState::kHalfOpen;
    probe_successes_ = 0;
  }
  return state_;
}

void CircuitBreaker::RecordSuccess(size_t t) {
  ++successes_;
  switch (StateAt(t)) {
    case BreakerState::kClosed:
      consecutive_failures_ = 0;
      break;
    case BreakerState::kHalfOpen:
      if (++probe_successes_ >= options_.half_open_probes) {
        state_ = BreakerState::kClosed;
        consecutive_failures_ = 0;
      }
      break;
    case BreakerState::kOpen:
      // A success while open (caller bypassed the breaker) is recorded in
      // the counters but does not change state.
      break;
  }
}

void CircuitBreaker::RecordFailure(size_t t) {
  ++failures_;
  switch (StateAt(t)) {
    case BreakerState::kClosed:
      if (++consecutive_failures_ >= options_.failure_threshold) TripOpen(t);
      break;
    case BreakerState::kHalfOpen:
      // A failed probe re-opens immediately and restarts the cool-down.
      TripOpen(t);
      break;
    case BreakerState::kOpen:
      break;
  }
}

Status CircuitBreaker::SaveState(ByteWriter& writer) const {
  writer.U8(static_cast<uint8_t>(state_));
  writer.U64(opened_at_);
  writer.I64(consecutive_failures_);
  writer.I64(probe_successes_);
  writer.U64(successes_);
  writer.U64(failures_);
  writer.U64(opens_);
  return Status::OK();
}

Status CircuitBreaker::RestoreState(ByteReader& reader) {
  uint8_t state = 0;
  uint64_t opened_at = 0, successes = 0, failures = 0, opens = 0;
  int64_t consecutive_failures = 0, probe_successes = 0;
  VQE_RETURN_NOT_OK(reader.U8(&state));
  VQE_RETURN_NOT_OK(reader.U64(&opened_at));
  VQE_RETURN_NOT_OK(reader.I64(&consecutive_failures));
  VQE_RETURN_NOT_OK(reader.I64(&probe_successes));
  VQE_RETURN_NOT_OK(reader.U64(&successes));
  VQE_RETURN_NOT_OK(reader.U64(&failures));
  VQE_RETURN_NOT_OK(reader.U64(&opens));
  if (state > static_cast<uint8_t>(BreakerState::kHalfOpen)) {
    return Status::DataLoss("breaker state enum out of range");
  }
  if (consecutive_failures < 0 || probe_successes < 0) {
    return Status::DataLoss("breaker counters negative");
  }
  state_ = static_cast<BreakerState>(state);
  opened_at_ = static_cast<size_t>(opened_at);
  consecutive_failures_ = static_cast<int>(consecutive_failures);
  probe_successes_ = static_cast<int>(probe_successes);
  successes_ = successes;
  failures_ = failures;
  opens_ = opens;
  return Status::OK();
}

void CircuitBreaker::TripOpen(size_t t) {
  state_ = BreakerState::kOpen;
  opened_at_ = t;
  consecutive_failures_ = 0;
  probe_successes_ = 0;
  ++opens_;
}

}  // namespace vqe
