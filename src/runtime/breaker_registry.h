// Fleet-wide per-model circuit breakers shared across serving sessions.
//
// Each StreamSession keeps its OWN engine breakers (runtime/circuit_breaker
// driven on the session's private frame clock) — that is what keeps every
// stream's run bit-identical to its solo execution. The registry is the
// cross-session layer on top: every session publishes its per-frame
// member-call outcomes here, keyed by model NAME, so one breaker per model
// aggregates health across the whole fleet. The serving layer uses it for
//
//   * fleet health reporting (ServeStats::fleet_health), and
//   * admission gating: a session whose entire pool is fleet-open can be
//     refused admission instead of burning scheduler quanta on a dark pool.
//
// By design the registry never feeds back into a running session's
// selection — that would couple streams and break solo bit-identity.
//
// Ticks: breakers need a non-decreasing clock. Sessions publish with their
// own frame indexes interleaved arbitrarily, so the registry clamps every
// caller-supplied tick to be monotone (max of all ticks seen). The
// scheduler passes its global round number, which is naturally monotone.
//
// Thread-safe: sessions step concurrently on pool workers and publish
// without external locking.

#ifndef VQE_RUNTIME_BREAKER_REGISTRY_H_
#define VQE_RUNTIME_BREAKER_REGISTRY_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/circuit_breaker.h"

namespace vqe {

class BreakerRegistry {
 public:
  explicit BreakerRegistry(CircuitBreakerOptions options = {})
      : options_(options) {}

  /// Publishes `successes` member-call successes and `failures` failures
  /// for `model` at (monotone-clamped) tick. Successes are applied before
  /// failures so a frame that both succeeded and failed leaves the
  /// consecutive-failure count intact — the conservative reading for a
  /// trip-on-consecutive-failures breaker.
  void Record(const std::string& model, uint64_t tick, uint64_t successes,
              uint64_t failures);

  /// True when the fleet breaker for `model` admits calls at tick. Unknown
  /// models are healthy by definition (closed breaker).
  bool AllowsCall(const std::string& model, uint64_t tick);

  struct ModelHealth {
    std::string model;
    BreakerState state = BreakerState::kClosed;
    uint64_t successes = 0;
    uint64_t failures = 0;
    uint64_t opens = 0;
  };

  /// Per-model fleet health, sorted by model name. Resolves open →
  /// half-open transitions as of `tick`.
  std::vector<ModelHealth> Snapshot(uint64_t tick);

 private:
  /// Non-decreasing clock over all callers; call with mu_ held.
  uint64_t ClampTickLocked(uint64_t tick);

  std::mutex mu_;
  CircuitBreakerOptions options_;
  std::map<std::string, CircuitBreaker> breakers_;
  uint64_t last_tick_ = 0;
};

}  // namespace vqe

#endif  // VQE_RUNTIME_BREAKER_REGISTRY_H_
