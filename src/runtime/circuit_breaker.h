// Per-model circuit breaker on the deterministic frame clock.
//
// The classic closed → open → half-open state machine, with one twist: time
// is measured in *frames*, not wall-clock. An open breaker stays open for
// `open_frames` frames and then admits half-open probes. Frame time is part
// of the deterministic replay (every run visits frames 0..n-1 in order), so
// breaker trajectories — and therefore which models the bandit may select —
// are bit-identical across worker counts and evaluation backends.

#ifndef VQE_RUNTIME_CIRCUIT_BREAKER_H_
#define VQE_RUNTIME_CIRCUIT_BREAKER_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "snapshot/wire.h"

namespace vqe {

struct CircuitBreakerOptions {
  /// Consecutive failures that trip a closed breaker open.
  int failure_threshold = 3;
  /// Frames an open breaker waits before admitting half-open probes.
  size_t open_frames = 30;
  /// Consecutive half-open successes required to close again.
  int half_open_probes = 1;

  Status Validate() const;
};

enum class BreakerState : uint8_t {
  kClosed = 0,
  kOpen,
  kHalfOpen,
};

const char* BreakerStateToString(BreakerState state);

/// One model's breaker. Callers drive it with the current frame index t:
/// query StateAt(t) before calling the model, then record the outcome with
/// RecordSuccess/RecordFailure(t). t must be non-decreasing across calls.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(CircuitBreakerOptions options = {})
      : options_(options) {}

  /// The state governing calls at frame t (resolves open → half-open once
  /// the cool-down has elapsed).
  BreakerState StateAt(size_t t);

  /// True when a call may be issued at frame t (closed or half-open).
  bool AllowsCallAt(size_t t) { return StateAt(t) != BreakerState::kOpen; }

  void RecordSuccess(size_t t);
  void RecordFailure(size_t t);

  const CircuitBreakerOptions& options() const { return options_; }

  // Lifetime health counters (reporting).
  uint64_t successes() const { return successes_; }
  uint64_t failures() const { return failures_; }
  uint64_t opens() const { return opens_; }

  /// Serializes the full state machine (state, clocks, counters) so a
  /// resumed run replays breaker trajectories bit-identically.
  Status SaveState(ByteWriter& writer) const;

  /// Restores a SaveState payload; DataLoss on malformed bytes (e.g. an
  /// out-of-range state enum), leaving the breaker untouched.
  Status RestoreState(ByteReader& reader);

 private:
  void TripOpen(size_t t);

  CircuitBreakerOptions options_;
  BreakerState state_ = BreakerState::kClosed;
  size_t opened_at_ = 0;
  int consecutive_failures_ = 0;
  int probe_successes_ = 0;
  uint64_t successes_ = 0;
  uint64_t failures_ = 0;
  uint64_t opens_ = 0;
};

}  // namespace vqe

#endif  // VQE_RUNTIME_CIRCUIT_BREAKER_H_
