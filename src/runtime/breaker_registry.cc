#include "runtime/breaker_registry.h"

namespace vqe {

uint64_t BreakerRegistry::ClampTickLocked(uint64_t tick) {
  if (tick > last_tick_) last_tick_ = tick;
  return last_tick_;
}

void BreakerRegistry::Record(const std::string& model, uint64_t tick,
                             uint64_t successes, uint64_t failures) {
  if (successes == 0 && failures == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t t = ClampTickLocked(tick);
  auto it = breakers_.find(model);
  if (it == breakers_.end()) {
    it = breakers_.emplace(model, CircuitBreaker(options_)).first;
  }
  for (uint64_t i = 0; i < successes; ++i) {
    it->second.RecordSuccess(static_cast<size_t>(t));
  }
  for (uint64_t i = 0; i < failures; ++i) {
    it->second.RecordFailure(static_cast<size_t>(t));
  }
}

bool BreakerRegistry::AllowsCall(const std::string& model, uint64_t tick) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t t = ClampTickLocked(tick);
  auto it = breakers_.find(model);
  if (it == breakers_.end()) return true;
  return it->second.AllowsCallAt(static_cast<size_t>(t));
}

std::vector<BreakerRegistry::ModelHealth> BreakerRegistry::Snapshot(
    uint64_t tick) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t t = ClampTickLocked(tick);
  std::vector<ModelHealth> out;
  out.reserve(breakers_.size());
  for (auto& [name, breaker] : breakers_) {
    ModelHealth h;
    h.model = name;
    h.state = breaker.StateAt(static_cast<size_t>(t));
    h.successes = breaker.successes();
    h.failures = breaker.failures();
    h.opens = breaker.opens();
    out.push_back(std::move(h));
  }
  return out;  // std::map iteration is already name-sorted
}

}  // namespace vqe
