#include "runtime/fault_injection.h"

#include <string>
#include <utility>

#include "common/rng.h"
#include "sim/object_classes.h"

namespace vqe {

namespace {

uint64_t NameHash(const std::string& name) {
  uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a
  for (unsigned char c : name) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

uint64_t FrameKey(const VideoFrame& frame) {
  return HashCombine(static_cast<uint64_t>(frame.scene_id),
                     static_cast<uint64_t>(frame.frame_index));
}

// Confidently wrong output: plausible-looking boxes at random locations
// with high confidence, so fusion weights them seriously. Deterministic in
// (seed, uid, frame, attempt) like every other fault draw.
DetectionList MakeGarbage(const VideoFrame& frame, Rng& rng) {
  const auto& classes = DrivingClasses();
  DetectionList out;
  const int n = 3 + static_cast<int>(rng.UniformInt(5));
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto& cls = classes[rng.UniformInt(classes.size())];
    Detection d;
    d.label = cls.id;
    const double w = rng.Uniform(cls.width_mean * 0.5, cls.width_mean * 1.5);
    const double h = w * cls.aspect_mean;
    const double cx = rng.Uniform(0.0, frame.image_width);
    const double cy = rng.Uniform(0.0, frame.image_height);
    d.box = BBox::FromCenter(cx, cy, w, h)
                .ClippedTo(frame.image_width, frame.image_height);
    if (d.box.IsEmpty()) continue;
    d.confidence = rng.Uniform(0.80, 0.98);
    d.box_variance = 4.0;
    out.push_back(d);
  }
  return out;
}

}  // namespace

Status FaultScript::Validate() const {
  for (double rate : {error_rate, spike_rate, empty_rate, garbage_rate}) {
    if (rate < 0.0 || rate > 1.0) {
      return Status::InvalidArgument("FaultScript rates must be in [0, 1]");
    }
  }
  if (error_rate + spike_rate + empty_rate + garbage_rate > 1.0) {
    return Status::InvalidArgument("FaultScript rates must sum to <= 1");
  }
  if (spike_factor < 1.0) {
    return Status::InvalidArgument("FaultScript.spike_factor must be >= 1");
  }
  if (error_latency_ms < 0.0) {
    return Status::InvalidArgument(
        "FaultScript.error_latency_ms must be >= 0");
  }
  for (const FaultBurst& burst : bursts) {
    if (burst.end_frame < burst.begin_frame) {
      return Status::InvalidArgument("FaultBurst range must have end >= begin");
    }
    if (burst.kind == FaultKind::kNone) {
      return Status::InvalidArgument("FaultBurst.kind must not be kNone");
    }
    if (burst.context >= kNumSceneContexts) {
      return Status::InvalidArgument("FaultBurst.context out of range");
    }
  }
  return Status::OK();
}

FaultInjectingDetector::FaultInjectingDetector(const ObjectDetector* inner,
                                               FaultScript script)
    : inner_(inner),
      script_(std::move(script)),
      uid_(NameHash(inner_->name())) {}

FaultInjectingDetector::FaultInjectingDetector(
    std::unique_ptr<ObjectDetector> inner, FaultScript script)
    : owned_(std::move(inner)),
      inner_(owned_.get()),
      script_(std::move(script)),
      uid_(NameHash(inner_->name())) {}

FaultKind FaultInjectingDetector::FaultAt(const VideoFrame& frame,
                                          uint64_t trial_seed,
                                          int attempt) const {
  // Scripted bursts dominate random faults and persist across attempts —
  // an outage does not clear because the caller retried.
  for (const FaultBurst& burst : script_.bursts) {
    if (frame.frame_index < burst.begin_frame ||
        frame.frame_index >= burst.end_frame) {
      continue;
    }
    if (burst.context >= 0 &&
        burst.context != static_cast<int>(frame.context)) {
      continue;
    }
    return burst.kind;
  }
  const double total = script_.error_rate + script_.spike_rate +
                       script_.empty_rate + script_.garbage_rate;
  if (total <= 0.0) return FaultKind::kNone;
  // One uniform draw per attempt against cumulative thresholds: at most one
  // fault kind fires, and a fresh attempt redraws — transient faults can
  // clear on retry.
  Rng rng = MakeStreamRng(trial_seed, HashCombine(uid_, script_.salt),
                          FrameKey(frame),
                          static_cast<uint64_t>(attempt), 0xFA017ULL);
  const double u = rng.NextDouble();
  double cum = script_.error_rate;
  if (u < cum) return FaultKind::kError;
  cum += script_.spike_rate;
  if (u < cum) return FaultKind::kLatencySpike;
  cum += script_.empty_rate;
  if (u < cum) return FaultKind::kEmptyOutput;
  cum += script_.garbage_rate;
  if (u < cum) return FaultKind::kGarbageOutput;
  return FaultKind::kNone;
}

AttemptOutcome FaultInjectingDetector::Attempt(const VideoFrame& frame,
                                               uint64_t trial_seed,
                                               int attempt) const {
  AttemptOutcome out;
  const FaultKind kind = FaultAt(frame, trial_seed, attempt);
  if (kind == FaultKind::kError) {
    // Hard failure: no inner call at all (the session is down), just the
    // connection-reset latency.
    out.status = Status::Unavailable(inner_->name() + ": injected fault");
    out.latency_ms = script_.error_latency_ms;
    return out;
  }
  // Detect before InferenceCostMs — the evaluation stack's historical call
  // order; both consume the inner detector's RNG stream.
  out.detections = inner_->Detect(frame, trial_seed);
  out.latency_ms = inner_->InferenceCostMs(frame, trial_seed);
  out.status = Status::OK();
  switch (kind) {
    case FaultKind::kLatencySpike:
      out.latency_ms *= script_.spike_factor;
      break;
    case FaultKind::kEmptyOutput:
      out.detections.clear();
      break;
    case FaultKind::kGarbageOutput: {
      Rng rng = MakeStreamRng(trial_seed, HashCombine(uid_, script_.salt),
                              FrameKey(frame),
                              static_cast<uint64_t>(attempt), 0x6A12BA6EULL);
      out.detections = MakeGarbage(frame, rng);
      break;
    }
    case FaultKind::kNone:
    case FaultKind::kError:
      break;
  }
  return out;
}

DetectionList FaultInjectingDetector::Detect(const VideoFrame& frame,
                                             uint64_t trial_seed) const {
  // Legacy view: attempt 0 with hard errors degraded to empty output. Code
  // on the old interface still experiences the outage, just without the
  // explicit error signal.
  AttemptOutcome out = Attempt(frame, trial_seed, /*attempt=*/0);
  if (!out.status.ok()) return {};
  return std::move(out.detections);
}

double FaultInjectingDetector::InferenceCostMs(const VideoFrame& frame,
                                               uint64_t trial_seed) const {
  return Attempt(frame, trial_seed, /*attempt=*/0).latency_ms;
}

}  // namespace vqe
