// Deadline + bounded-retry policy for one detector call.
//
// DetectWithRetries is the single choke point through which the evaluation
// stack (frame_eval, the lazy evaluator, the online query executor) invokes
// a detector. It enforces a per-call deadline, retries transient failures
// with exponential backoff, and splits the charged time into productive
// inference and wasted fault time so TimeBreakdown can report them
// separately. All of it runs on the simulated clock — latencies come from
// the detector, backoff is charged arithmetically — so outcomes are a pure
// function of (detector, frame, trial_seed, policy) and stay bit-identical
// across worker counts.

#ifndef VQE_RUNTIME_RETRY_H_
#define VQE_RUNTIME_RETRY_H_

#include <cstdint>

#include "common/status.h"
#include "detection/detection.h"
#include "models/detector.h"
#include "sim/video.h"

namespace vqe {

/// Knobs for one resilient detector call.
struct RetryPolicy {
  /// Total attempts per logical call (1 = no retries).
  int max_attempts = 1;
  /// Per-attempt deadline in simulated ms; <= 0 disables the deadline. An
  /// attempt whose latency exceeds the deadline is abandoned at the
  /// deadline: the call is charged `deadline_ms`, not the full latency.
  double deadline_ms = 0.0;
  /// Backoff charged before retry k (k >= 1): base * multiplier^(k-1) ms.
  double backoff_base_ms = 0.5;
  double backoff_multiplier = 2.0;

  Status Validate() const;
};

/// The aggregate outcome of one logical detector call (all attempts).
struct DetectorCallOutcome {
  /// OK iff some attempt succeeded; otherwise the last attempt's error.
  Status status;
  /// Valid only when status is OK.
  DetectionList detections;
  /// Simulated latency of the successful attempt (0 when the call failed).
  double inference_ms = 0.0;
  /// Wasted time: failed attempts' latencies plus backoff waits.
  double fault_ms = 0.0;
  /// Number of attempts made (>= 1).
  int attempts = 0;

  bool ok() const { return status.ok(); }
  /// Everything the call cost, productive or not.
  double charged_ms() const { return inference_ms + fault_ms; }
};

/// Runs one logical detector call under `policy`.
///
/// FallibleDetector instances go through their Attempt API; any other
/// ObjectDetector is treated as infallible (one attempt, Detect +
/// InferenceCostMs, in that order — the same call order the evaluation
/// stack used before the runtime existed, preserving RNG-stream
/// bit-identity) and can only fail by deadline overrun.
DetectorCallOutcome DetectWithRetries(const ObjectDetector& detector,
                                      const VideoFrame& frame,
                                      uint64_t trial_seed,
                                      const RetryPolicy& policy);

}  // namespace vqe

#endif  // VQE_RUNTIME_RETRY_H_
