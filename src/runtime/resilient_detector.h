// ResilientDetector: the full fault-tolerance stack around one detector —
// per-call deadline, bounded retry with exponential backoff (retry.h), and
// a circuit breaker (circuit_breaker.h) that short-circuits calls while the
// model is known-bad. This is the runtime path the online query executor
// uses; the offline evaluation stack inlines the same pieces (retry inside
// FrameEvalContext, breakers inside the engine loop) because its call
// pattern is matrix-shaped rather than per-model-object.

#ifndef VQE_RUNTIME_RESILIENT_DETECTOR_H_
#define VQE_RUNTIME_RESILIENT_DETECTOR_H_

#include <cstdint>

#include "common/status.h"
#include "detection/detection.h"
#include "runtime/circuit_breaker.h"
#include "runtime/retry.h"
#include "sim/video.h"

namespace vqe {

/// Wraps a detector (not owned) with retry + breaker state. Stateful:
/// breaker transitions depend on the call history, so one ResilientDetector
/// serves one sequential run.
class ResilientDetector {
 public:
  struct Stats {
    uint64_t calls = 0;           // logical calls issued (incl. short-circuits)
    uint64_t failures = 0;        // calls that exhausted retries
    uint64_t short_circuits = 0;  // calls refused by an open breaker
    uint64_t retries = 0;         // extra attempts beyond the first
    double fault_ms = 0.0;        // wasted time across all calls
  };

  ResilientDetector(const ObjectDetector* inner, RetryPolicy retry,
                    CircuitBreakerOptions breaker_options)
      : inner_(inner), retry_(retry), breaker_(breaker_options) {}

  /// One fault-tolerant call at frame t. An open breaker refuses the call
  /// at zero cost (status kUnavailable); otherwise the call runs under the
  /// retry policy and its outcome feeds the breaker.
  DetectorCallOutcome Call(const VideoFrame& frame, uint64_t trial_seed,
                           size_t t);

  /// The non-throwing runtime path of ISSUE 3: detections or an error.
  Result<DetectionList> TryDetect(const VideoFrame& frame, uint64_t trial_seed,
                                  size_t t);

  /// Breaker state governing frame t (advances open → half-open).
  BreakerState StateAt(size_t t) { return breaker_.StateAt(t); }

  const ObjectDetector& inner() const { return *inner_; }
  const CircuitBreaker& breaker() const { return breaker_; }
  const RetryPolicy& retry_policy() const { return retry_; }
  const Stats& stats() const { return stats_; }

  /// Serializes breaker state + lifetime stats. The retry policy and inner
  /// detector are configuration, reconstructed by the caller on resume.
  Status SaveState(ByteWriter& writer) const {
    VQE_RETURN_NOT_OK(breaker_.SaveState(writer));
    writer.U64(stats_.calls);
    writer.U64(stats_.failures);
    writer.U64(stats_.short_circuits);
    writer.U64(stats_.retries);
    writer.F64(stats_.fault_ms);
    return Status::OK();
  }

  /// Restores a SaveState payload; DataLoss on malformed bytes.
  Status RestoreState(ByteReader& reader) {
    VQE_RETURN_NOT_OK(breaker_.RestoreState(reader));
    VQE_RETURN_NOT_OK(reader.U64(&stats_.calls));
    VQE_RETURN_NOT_OK(reader.U64(&stats_.failures));
    VQE_RETURN_NOT_OK(reader.U64(&stats_.short_circuits));
    VQE_RETURN_NOT_OK(reader.U64(&stats_.retries));
    VQE_RETURN_NOT_OK(reader.F64(&stats_.fault_ms));
    return Status::OK();
  }

 private:
  const ObjectDetector* inner_;
  RetryPolicy retry_;
  CircuitBreaker breaker_;
  Stats stats_;
};

}  // namespace vqe

#endif  // VQE_RUNTIME_RESILIENT_DETECTOR_H_
