// Failure-aware extension of the black-box detector interface.
//
// The base ObjectDetector contract (models/detector.h) assumes every call
// succeeds: Detect returns detections, InferenceCostMs returns the charge.
// A production runtime cannot assume that — a remote session dies, a call
// overruns its deadline — so fault-aware detectors expose an *attempt*
// API that reports the outcome of one call explicitly: a Status, the
// detections (valid only on success), and the latency the attempt consumed
// whether or not it succeeded.
//
// Plain ObjectDetectors keep working everywhere: the retry layer
// (runtime/retry.h) treats any detector that is not a FallibleDetector as
// infallible, so the fault-tolerant path is a strict superset of the old
// behavior.

#ifndef VQE_RUNTIME_FALLIBLE_DETECTOR_H_
#define VQE_RUNTIME_FALLIBLE_DETECTOR_H_

#include <cstdint>

#include "common/status.h"
#include "detection/detection.h"
#include "models/detector.h"
#include "sim/video.h"

namespace vqe {

/// The result of one detector attempt: status, detections (meaningful only
/// when status is OK), and the simulated latency the attempt consumed.
/// Failed attempts still burn time — that latency is charged as fault time
/// by the retry layer.
struct AttemptOutcome {
  Status status;
  DetectionList detections;
  double latency_ms = 0.0;
};

/// An ObjectDetector whose calls can fail. `attempt` numbers retries within
/// one logical call (0 = first try), letting implementations model
/// transient faults that clear on retry versus persistent outages that do
/// not.
class FallibleDetector : public ObjectDetector {
 public:
  virtual AttemptOutcome Attempt(const VideoFrame& frame, uint64_t trial_seed,
                                 int attempt) const = 0;
};

}  // namespace vqe

#endif  // VQE_RUNTIME_FALLIBLE_DETECTOR_H_
