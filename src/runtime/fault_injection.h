// Deterministic fault injection for detectors.
//
// FaultInjectingDetector decorates any ObjectDetector with a scripted
// failure channel: hard errors, latency spikes, empty or garbage output,
// and failure *bursts* pinned to frame ranges or scene contexts (the
// drift-style outage of ISSUE 3 — a model that dies when the scene turns to
// night). Faults are a pure function of (trial_seed, detector uid, frame,
// attempt): the same script and seed reproduce the same outage on every
// run, every worker count, and both evaluation backends, which is what
// makes fault-tolerance testable bit-for-bit.

#ifndef VQE_RUNTIME_FAULT_INJECTION_H_
#define VQE_RUNTIME_FAULT_INJECTION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "runtime/fallible_detector.h"
#include "sim/scene_context.h"

namespace vqe {

/// What an injected fault does to one attempt.
enum class FaultKind : uint8_t {
  kNone = 0,
  /// The attempt fails hard (kUnavailable) after a short error latency.
  kError,
  /// The attempt succeeds but takes spike_factor × the normal latency —
  /// the raw material for deadline overruns.
  kLatencySpike,
  /// The attempt "succeeds" with zero detections (a silently dead head).
  kEmptyOutput,
  /// The attempt succeeds with confident random boxes (a corrupted model —
  /// worse than silence, because fusion will believe it).
  kGarbageOutput,
};

/// A scripted outage over a frame range [begin_frame, end_frame), optionally
/// gated to one scene context. Bursts are persistent: they hit every
/// attempt of every call in range, so retries cannot clear them (unlike the
/// per-attempt random rates below).
struct FaultBurst {
  int64_t begin_frame = 0;
  int64_t end_frame = 0;  // exclusive
  FaultKind kind = FaultKind::kError;
  /// When >= 0, the burst only fires in this SceneContext (cast to int).
  int context = -1;
};

/// Per-detector fault configuration.
struct FaultScript {
  /// Independent per-attempt probabilities; at most one fault fires per
  /// attempt (cumulative thresholds over one uniform draw, so rates must
  /// sum to <= 1).
  double error_rate = 0.0;
  double spike_rate = 0.0;
  double empty_rate = 0.0;
  double garbage_rate = 0.0;
  /// Latency multiplier applied by kLatencySpike.
  double spike_factor = 25.0;
  /// Latency a hard error burns before failing (connection-reset cost).
  double error_latency_ms = 0.5;
  /// Scripted outages; the first burst containing the frame wins.
  std::vector<FaultBurst> bursts;
  /// Extra key mixed into the fault RNG stream, so two scripts with equal
  /// rates on the same detector can draw independent faults.
  uint64_t salt = 0;

  /// True when any fault source is configured.
  bool enabled() const {
    return error_rate > 0.0 || spike_rate > 0.0 || empty_rate > 0.0 ||
           garbage_rate > 0.0 || !bursts.empty();
  }

  Status Validate() const;
};

/// Decorates a detector with a FaultScript. Name, cost model, and metadata
/// pass through to the inner detector; Attempt applies the scripted fault
/// for (frame, trial_seed, attempt). The legacy Detect/InferenceCostMs
/// views reflect attempt 0 with hard errors degraded to empty output, so
/// code that has not adopted the runtime path still sees the outage, just
/// without the error signal.
class FaultInjectingDetector final : public FallibleDetector {
 public:
  /// Non-owning: `inner` must outlive this decorator.
  FaultInjectingDetector(const ObjectDetector* inner, FaultScript script);
  /// Owning variant.
  FaultInjectingDetector(std::unique_ptr<ObjectDetector> inner,
                         FaultScript script);

  AttemptOutcome Attempt(const VideoFrame& frame, uint64_t trial_seed,
                         int attempt) const override;

  /// The fault scheduled for (frame, seed, attempt); kNone when healthy.
  FaultKind FaultAt(const VideoFrame& frame, uint64_t trial_seed,
                    int attempt) const;

  // ObjectDetector pass-through.
  const std::string& name() const override { return inner_->name(); }
  DetectionList Detect(const VideoFrame& frame,
                       uint64_t trial_seed) const override;
  double InferenceCostMs(const VideoFrame& frame,
                         uint64_t trial_seed) const override;
  uint64_t param_count() const override { return inner_->param_count(); }
  const std::string& structure_name() const override {
    return inner_->structure_name();
  }

  const FaultScript& script() const { return script_; }
  const ObjectDetector& inner() const { return *inner_; }

 private:
  std::unique_ptr<ObjectDetector> owned_;
  const ObjectDetector* inner_;
  FaultScript script_;
  uint64_t uid_;
};

}  // namespace vqe

#endif  // VQE_RUNTIME_FAULT_INJECTION_H_
