#include "runtime/resilient_detector.h"

#include <utility>

namespace vqe {

DetectorCallOutcome ResilientDetector::Call(const VideoFrame& frame,
                                            uint64_t trial_seed, size_t t) {
  ++stats_.calls;
  if (!breaker_.AllowsCallAt(t)) {
    ++stats_.short_circuits;
    DetectorCallOutcome refused;
    refused.status =
        Status::Unavailable(inner_->name() + ": circuit breaker open");
    return refused;
  }
  DetectorCallOutcome outcome =
      DetectWithRetries(*inner_, frame, trial_seed, retry_);
  stats_.retries += static_cast<uint64_t>(outcome.attempts - 1);
  stats_.fault_ms += outcome.fault_ms;
  if (outcome.ok()) {
    breaker_.RecordSuccess(t);
  } else {
    ++stats_.failures;
    breaker_.RecordFailure(t);
  }
  return outcome;
}

Result<DetectionList> ResilientDetector::TryDetect(const VideoFrame& frame,
                                                   uint64_t trial_seed,
                                                   size_t t) {
  DetectorCallOutcome outcome = Call(frame, trial_seed, t);
  if (!outcome.ok()) return outcome.status;
  return std::move(outcome.detections);
}

}  // namespace vqe
