#include "fleet/chaos.h"

namespace vqe {

const char* ChaosEventKindToString(ChaosEvent::Kind kind) {
  switch (kind) {
    case ChaosEvent::Kind::kKillShard:
      return "kill-shard";
    case ChaosEvent::Kind::kMigrate:
      return "migrate";
    case ChaosEvent::Kind::kCorruptNextMigration:
      return "corrupt-next-migration";
  }
  return "unknown";
}

Status ChaosScript::Validate(int num_shards) const {
  for (const ChaosEvent& event : events) {
    if (event.shard < 0 || event.shard >= num_shards) {
      return Status::InvalidArgument(
          std::string(ChaosEventKindToString(event.kind)) +
          " event targets shard " + std::to_string(event.shard) +
          " outside [0, " + std::to_string(num_shards) + ")");
    }
    if (event.kind == ChaosEvent::Kind::kMigrate) {
      if (event.target_shard < 0 || event.target_shard >= num_shards) {
        return Status::InvalidArgument(
            "migrate event targets shard " +
            std::to_string(event.target_shard) + " outside [0, " +
            std::to_string(num_shards) + ")");
      }
      if (event.target_shard == event.shard) {
        return Status::InvalidArgument(
            "migrate event has source == target shard " +
            std::to_string(event.shard));
      }
      if (event.stream.empty()) {
        return Status::InvalidArgument("migrate event needs a stream name");
      }
    }
    if (event.kind == ChaosEvent::Kind::kCorruptNextMigration &&
        event.flip_bit < 0) {
      return Status::InvalidArgument("flip_bit must be >= 0");
    }
  }
  return Status::OK();
}

}  // namespace vqe
