// Sharded fleet serving: N StreamScheduler shards on their own threads,
// a fleet-level admission front door, live session migration between
// shards, shard failover, and deterministic chaos injection.
//
// Architecture. The coordinator (the thread calling Run) owns the stream
// table and the fleet event queue; each shard thread owns one
// StreamScheduler and drives it one DRR round at a time, interleaving
// control work between rounds. All cross-thread traffic flows through two
// mutex-protected queues — coordinator -> shard inboxes (submit, implant,
// extract, stop) and shard -> coordinator fleet events (stream done,
// migration payload, implant result, shard death) — so no scheduler is
// ever touched by two threads at once.
//
// Admission. Run hashes each stream (FNV-1a of its name) onto a shard;
// a full shard falls over to the least-loaded one with capacity. The
// fleet admits at most max_sessions streams overall; the rest are shed
// with kResourceExhausted and appear in the report as terminal
// stream entries (and in FleetStats::shed).
//
// Migration. A live session moves between shards as a MigrationPayload:
// the source shard exports the engine snapshot (identity fingerprint
// included), the coordinator routes the envelope, the target builds a
// fresh session from the stream's factory and overlays the state. A
// corrupt payload is rejected with DataLoss and a fingerprint mismatch
// with FailedPrecondition — both BEFORE the target session is mutated —
// and the coordinator falls back to restarting the stream from scratch
// (or from its checkpoint directory), so damage costs work, never
// correctness.
//
// Failover. A killed shard loses its live sessions and its shard-local
// stats (crash semantics). The coordinator restarts the lost streams on
// surviving shards from their factories; streams with a checkpoint
// directory resume from their newest good generation. Each stream has a
// bounded restart budget; past it (or with no shard left) it goes
// terminal with the last failure.
//
// Bit-identity. Because every session's state is private and every frame
// deterministic, a stream that completes — directly, migrated mid-video,
// or restarted after a crash — produces a RunResult bit-identical to its
// solo RunStrategy run (wall-clock fields aside). fleet_test pins this
// under the full chaos matrix.

#ifndef VQE_FLEET_SHARDED_SERVER_H_
#define VQE_FLEET_SHARDED_SERVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "fleet/chaos.h"
#include "fleet/migration.h"
#include "obs/obs.h"
#include "runtime/breaker_registry.h"
#include "serve/scheduler.h"
#include "serve/stream_session.h"

namespace vqe {

/// Builds a fresh StreamSession for a stream — used for initial submission
/// AND for failover restarts / migration targets, so it must be callable
/// repeatedly and deterministically. Must be safe to invoke from any shard
/// thread (sessions themselves are single-threaded once built).
using SessionFactory =
    std::function<Result<std::unique_ptr<StreamSession>>()>;

struct FleetStreamSpec {
  /// Fleet-wide unique stream name (the routing and migration key).
  std::string name;
  SessionFactory factory;
};

struct FleetOptions {
  /// Number of shard threads (each runs one StreamScheduler).
  int num_shards = 2;
  /// Fleet-wide admission cap: streams beyond this are shed up front.
  int max_sessions = 64;
  /// Per-stream failover budget (restarts after shard death or a corrupt
  /// migration payload; per-stream step errors are terminal, not retried).
  int max_restarts = 2;
  /// When > 0, the coordinator migrates a stream off the most loaded
  /// shard whenever its live-stream count exceeds the least loaded one's
  /// by at least this much. 0 disables skew rebalancing.
  int rebalance_threshold = 0;
  /// Per-shard scheduler knobs (its fleet_breaker field is ignored: all
  /// shards publish into the single fleet-wide registry below).
  ServeOptions shard;
  /// Options of the fleet-wide per-model breaker registry shared by every
  /// shard.
  CircuitBreakerOptions fleet_breaker;
  /// Observability sink. Disabled by default (no metrics, no tracing,
  /// bit-identical results). When enabled, each shard's scheduler gets the
  /// handle with obs_node = its shard id (round spans land on "node i"
  /// tracks), sessions trace on their stream tracks, and the coordinator
  /// emits migration/failover/shard-death counters plus instant events on
  /// the node track `num_shards` — all wall-domain: shard placement and
  /// crash recovery are process bookkeeping, not results.
  ObsHandle obs;

  Status Validate() const;
};

/// Migration ledger for one Run.
struct MigrationStats {
  /// Extractions requested (chaos + rebalance).
  uint64_t attempted = 0;
  /// Sessions successfully implanted on their target shard.
  uint64_t completed = 0;
  /// Payloads rejected with DataLoss (bit flips, truncation).
  uint64_t rejected_corrupt = 0;
  /// Payloads rejected with FailedPrecondition (identity mismatch).
  uint64_t rejected_identity = 0;
  /// Streams restarted from their factory after a rejected or
  /// undeliverable payload.
  uint64_t fallback_restarts = 0;
  /// Extractions that found nothing to move (stream already finished or
  /// already elsewhere) — benign under chaos.
  uint64_t aborted = 0;
  /// Handoff latency (payload leaving the source shard -> implant
  /// confirmed), coordinator-measured wall clock.
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
};

struct FleetStats {
  int num_shards = 0;
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  /// Streams shed at the fleet front door.
  uint64_t shed = 0;
  int shards_killed = 0;
  /// Streams restarted because their shard died.
  uint64_t failover_streams = 0;
  uint64_t completed_streams = 0;
  uint64_t failed_streams = 0;
  double wall_ms = 0.0;
  MigrationStats migration;
  /// Degradation-ladder aggregates across surviving shards (each shard
  /// runs its own deterministic OverloadController when
  /// options.shard.overload.enabled; per-shard ledgers live in
  /// ShardSummary::stats.degradations). Zeros when overload control is
  /// off or every shard died.
  int peak_degradation_level = 0;
  uint64_t degradation_transitions = 0;
  /// Shard-local serving stats; `dead` shards crashed and lost theirs.
  struct ShardSummary {
    int shard = 0;
    bool dead = false;
    ServeStats stats;
  };
  std::vector<ShardSummary> shards;
  /// Fleet-wide per-model breaker state at drain time.
  std::vector<BreakerRegistry::ModelHealth> fleet_health;
};

/// Terminal state of one stream across its whole fleet lifetime
/// (migrations and restarts included).
struct FleetStreamReport {
  std::string name;
  /// Shard the stream finished on (-1 for shed / never-placed streams).
  int shard = -1;
  int restarts = 0;
  int migrations = 0;
  /// The final StreamReport (status OK for completed streams; the
  /// admission / step / failover error otherwise).
  StreamReport report;
};

struct FleetReport {
  FleetStats stats;
  /// One entry per submitted spec, submission order.
  std::vector<FleetStreamReport> streams;
};

class ShardedServer {
 public:
  explicit ShardedServer(FleetOptions options = {});

  /// Serves `specs` to completion under `chaos` (empty script = no
  /// faults). Blocking; the calling thread becomes the fleet coordinator.
  /// Returns the fleet report once every admitted stream is terminal.
  /// Fails fast (before starting shards) on invalid options or script.
  /// Callable once per ShardedServer.
  Result<FleetReport> Run(std::vector<FleetStreamSpec> specs,
                          ChaosScript chaos = {});

  const FleetOptions& options() const { return options_; }

 private:
  FleetOptions options_;
  bool ran_ = false;
};

/// FNV-1a hash of a stream name — the shard routing function (exposed so
/// tests can place streams deliberately).
uint64_t FleetRouteHash(const std::string& name);

}  // namespace vqe

#endif  // VQE_FLEET_SHARDED_SERVER_H_
