#include "fleet/sharded_server.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "common/stopwatch.h"

namespace vqe {
namespace {

double Percentile(std::vector<double>& samples, double q) {
  if (samples.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(
      std::min<double>(samples.size() - 1,
                       std::ceil(q * static_cast<double>(samples.size())) - 1));
  std::nth_element(samples.begin(), samples.begin() + rank, samples.end());
  return samples[rank];
}

// --- Cross-thread plumbing ----------------------------------------------

/// Coordinator -> shard command.
struct ShardCommand {
  enum class Kind : uint8_t {
    kSubmit,   ///< build a fresh session from `factory` and Submit it
    kImplant,  ///< decode `payload`, overlay onto a fresh session, implant
    kExtract,  ///< extract `stream`, serialize, post the payload upward
    kStop,     ///< graceful shutdown: exit the loop (scheduler survives)
  };
  Kind kind = Kind::kStop;
  std::string stream;
  SessionFactory factory;      // kSubmit, kImplant (fresh shell to overlay)
  std::vector<uint8_t> payload;  // kImplant
  StreamScheduler::SessionCarry carry;  // kImplant (from the envelope)
  int target_shard = 0;        // kExtract: where the payload is headed
  uint64_t sequence = 0;       // migration bookkeeping
};

/// Shard -> coordinator event.
struct FleetEvent {
  enum class Kind : uint8_t {
    kStreamDone,     ///< a stream retired (report.status says how)
    kSubmitFailed,   ///< a kSubmit could not be admitted on this shard
    kPayload,        ///< an extracted session, serialized, needs routing
    kImplantResult,  ///< outcome of a kImplant on the target shard
    kExtractFailed,  ///< a kExtract found nothing to move
    kShardDead,      ///< this shard crashed; `lost_streams` were live on it
  };
  Kind kind = Kind::kStreamDone;
  int shard = 0;
  std::string stream;
  Status status = Status::OK();
  StreamReport report;            // kStreamDone
  std::vector<uint8_t> payload;   // kPayload
  int target_shard = 0;           // kPayload
  uint64_t sequence = 0;
  std::vector<std::string> lost_streams;  // kShardDead
};

class EventQueue {
 public:
  void Push(FleetEvent event) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      events_.push_back(std::move(event));
    }
    cv_.notify_one();
  }
  FleetEvent Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !events_.empty(); });
    FleetEvent event = std::move(events_.front());
    events_.pop_front();
    return event;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<FleetEvent> events_;
};

struct Shard {
  int id = 0;
  StreamScheduler scheduler;
  /// kMigrate / kKillShard events for this shard, sorted by at_round.
  std::vector<ChaosEvent> script;
  size_t next_event = 0;
  /// Rounds this shard actually ran (the chaos clock).
  uint64_t rounds_run = 0;
  uint64_t next_sequence = 0;

  std::thread thread;
  std::mutex mu;
  std::condition_variable cv;
  std::deque<ShardCommand> inbox;
  /// Cleared (under mu) when the shard stops serving — kill or stop — so
  /// Post() can never enqueue into a queue nobody will drain.
  bool accepting = true;

  explicit Shard(ServeOptions options) : scheduler(options) {}
};

/// Enqueues `cmd` unless the shard has stopped accepting; false means the
/// caller must handle the command itself (shard dead or stopped).
bool Post(Shard& shard, ShardCommand cmd) {
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (!shard.accepting) return false;
    shard.inbox.push_back(std::move(cmd));
  }
  shard.cv.notify_one();
  return true;
}

// --- Shard thread --------------------------------------------------------

/// Handles one inbox command on the shard thread. Returns false on kStop.
bool HandleCommand(Shard& shard, EventQueue& events, ShardCommand cmd) {
  switch (cmd.kind) {
    case ShardCommand::Kind::kStop:
      return false;
    case ShardCommand::Kind::kSubmit: {
      Result<std::unique_ptr<StreamSession>> session = cmd.factory();
      Status status = session.status();
      if (status.ok()) {
        status = shard.scheduler.Submit(std::move(session).value()).status();
      }
      if (!status.ok()) {
        FleetEvent ev;
        ev.kind = FleetEvent::Kind::kSubmitFailed;
        ev.shard = shard.id;
        ev.stream = cmd.stream;
        ev.status = status;
        events.Push(std::move(ev));
      }
      return true;
    }
    case ShardCommand::Kind::kImplant: {
      FleetEvent ev;
      ev.kind = FleetEvent::Kind::kImplantResult;
      ev.shard = shard.id;
      ev.stream = cmd.stream;
      ev.sequence = cmd.sequence;
      ev.status = [&]() -> Status {
        VQE_ASSIGN_OR_RETURN(MigrationPayload payload,
                             DecodeMigrationPayload(cmd.payload));
        if (payload.stream_name != cmd.stream) {
          return Status::DataLoss("migration payload names stream '" +
                                  payload.stream_name + "', expected '" +
                                  cmd.stream + "'");
        }
        VQE_ASSIGN_OR_RETURN(std::unique_ptr<StreamSession> session,
                             cmd.factory());
        VQE_RETURN_NOT_OK(session->ImplantState(payload.engine_snapshot));
        return shard.scheduler
            .ImplantSession(std::move(session), payload.carry)
            .status();
      }();
      events.Push(std::move(ev));
      return true;
    }
    case ShardCommand::Kind::kExtract: {
      Result<StreamScheduler::ExtractedSession> extracted =
          shard.scheduler.ExtractSession(cmd.stream);
      if (!extracted.ok()) {
        FleetEvent ev;
        ev.kind = FleetEvent::Kind::kExtractFailed;
        ev.shard = shard.id;
        ev.stream = cmd.stream;
        ev.status = extracted.status();
        events.Push(std::move(ev));
        return true;
      }
      StreamScheduler::ExtractedSession session =
          std::move(extracted).value();
      Result<std::vector<uint8_t>> snapshot =
          session.session->ExportState();
      if (!snapshot.ok()) {
        // Export failed (should not happen on a live session): keep the
        // session here rather than losing it, and report the abort.
        (void)shard.scheduler.ImplantSession(std::move(session.session),
                                             session.carry);
        FleetEvent ev;
        ev.kind = FleetEvent::Kind::kExtractFailed;
        ev.shard = shard.id;
        ev.stream = cmd.stream;
        ev.status = snapshot.status();
        events.Push(std::move(ev));
        return true;
      }
      MigrationPayload payload;
      payload.stream_name = cmd.stream;
      payload.source_shard = shard.id;
      payload.sequence = cmd.sequence;
      payload.carry = session.carry;
      payload.engine_snapshot = std::move(snapshot).value();
      FleetEvent ev;
      ev.kind = FleetEvent::Kind::kPayload;
      ev.shard = shard.id;
      ev.stream = cmd.stream;
      ev.sequence = cmd.sequence;
      ev.target_shard = cmd.target_shard;
      ev.payload = EncodeMigrationPayload(payload);
      events.Push(std::move(ev));
      return true;
    }
  }
  return true;
}

/// Crash path: stop accepting, answer every queued command with a failure
/// event (so no stream is silently lost), report the live sessions as
/// lost, and exit WITHOUT FinishServing — a dead shard's stats die with
/// it.
void CrashShard(Shard& shard, EventQueue& events) {
  std::deque<ShardCommand> pending;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.accepting = false;
    pending.swap(shard.inbox);
  }
  for (ShardCommand& cmd : pending) {
    FleetEvent ev;
    ev.shard = shard.id;
    ev.stream = cmd.stream;
    ev.sequence = cmd.sequence;
    ev.status = Status::Unavailable("shard " + std::to_string(shard.id) +
                                    " died before handling the command");
    switch (cmd.kind) {
      case ShardCommand::Kind::kSubmit:
        ev.kind = FleetEvent::Kind::kSubmitFailed;
        break;
      case ShardCommand::Kind::kImplant:
        ev.kind = FleetEvent::Kind::kImplantResult;
        break;
      case ShardCommand::Kind::kExtract:
        ev.kind = FleetEvent::Kind::kExtractFailed;
        break;
      case ShardCommand::Kind::kStop:
        continue;
    }
    events.Push(std::move(ev));
  }
  FleetEvent dead;
  dead.kind = FleetEvent::Kind::kShardDead;
  dead.shard = shard.id;
  dead.lost_streams = shard.scheduler.LiveStreamNames();
  events.Push(std::move(dead));
}

void ShardMain(Shard& shard, EventQueue& events) {
  if (Status begun = shard.scheduler.BeginServing(); !begun.ok()) {
    CrashShard(shard, events);
    return;
  }
  while (true) {
    // 1. Drain the inbox (non-blocking).
    std::deque<ShardCommand> commands;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      commands.swap(shard.inbox);
    }
    for (ShardCommand& cmd : commands) {
      if (!HandleCommand(shard, events, std::move(cmd))) {
        std::lock_guard<std::mutex> lock(shard.mu);
        shard.accepting = false;
        return;  // kStop: scheduler stays intact for FinishServing
      }
    }

    // 2. Scripted chaos, anchored to this shard's own round clock.
    while (shard.next_event < shard.script.size() &&
           shard.script[shard.next_event].at_round <= shard.rounds_run) {
      const ChaosEvent event = shard.script[shard.next_event++];
      if (event.kind == ChaosEvent::Kind::kKillShard) {
        CrashShard(shard, events);
        return;
      }
      if (event.kind == ChaosEvent::Kind::kMigrate) {
        ShardCommand extract;
        extract.kind = ShardCommand::Kind::kExtract;
        extract.stream = event.stream;
        extract.target_shard = event.target_shard;
        extract.sequence =
            (static_cast<uint64_t>(shard.id) << 32) | shard.next_sequence++;
        HandleCommand(shard, events, std::move(extract));
      }
      // kCorruptNextMigration is coordinator-side; never in shard scripts.
    }

    // 3. One DRR round, or sleep until the coordinator sends work.
    const bool had_work = shard.scheduler.active_sessions() +
                              shard.scheduler.queued_sessions() >
                          0;
    if (had_work) {
      if (!shard.scheduler.RunRound().ok()) {
        CrashShard(shard, events);  // serving bug; fail loudly as a crash
        return;
      }
      ++shard.rounds_run;
      for (StreamReport& report : shard.scheduler.TakeRetired()) {
        FleetEvent ev;
        ev.kind = FleetEvent::Kind::kStreamDone;
        ev.shard = shard.id;
        ev.stream = report.name;
        ev.report = std::move(report);
        events.Push(std::move(ev));
      }
    } else {
      std::unique_lock<std::mutex> lock(shard.mu);
      shard.cv.wait(lock, [&] { return !shard.inbox.empty(); });
    }
  }
}

}  // namespace

uint64_t FleetRouteHash(const std::string& name) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : name) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

Status FleetOptions::Validate() const {
  if (num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (max_sessions < 1) {
    return Status::InvalidArgument("fleet max_sessions must be >= 1");
  }
  if (max_restarts < 0) {
    return Status::InvalidArgument("max_restarts must be >= 0");
  }
  if (rebalance_threshold < 0) {
    return Status::InvalidArgument("rebalance_threshold must be >= 0");
  }
  VQE_RETURN_NOT_OK(shard.Validate());
  return fleet_breaker.Validate();
}

ShardedServer::ShardedServer(FleetOptions options)
    : options_(std::move(options)) {}

// --- Coordinator ---------------------------------------------------------

namespace {

/// Coordinator-side state of one submitted stream.
struct StreamState {
  FleetStreamSpec spec;
  int shard = -1;
  int restarts = 0;
  int migrations = 0;
  bool terminal = false;
  /// An extraction or implant is in flight; suppress rebalancing and
  /// shard-death failover for the stream (the migration path owns it).
  bool migrating = false;
  StreamReport report;
};

struct InFlightMigration {
  int target_shard = 0;
  Stopwatch handoff;
};

}  // namespace

Result<FleetReport> ShardedServer::Run(std::vector<FleetStreamSpec> specs,
                                       ChaosScript chaos) {
  VQE_RETURN_NOT_OK(options_.Validate());
  VQE_RETURN_NOT_OK(chaos.Validate(options_.num_shards));
  if (ran_) {
    return Status::FailedPrecondition("ShardedServer::Run is callable once");
  }
  ran_ = true;
  for (size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].name.empty() || specs[i].factory == nullptr) {
      return Status::InvalidArgument("spec " + std::to_string(i) +
                                     " needs a name and a factory");
    }
    for (size_t j = 0; j < i; ++j) {
      if (specs[j].name == specs[i].name) {
        return Status::InvalidArgument("duplicate stream name '" +
                                       specs[i].name + "'");
      }
    }
  }

  Stopwatch wall;
  BreakerRegistry fleet_health(options_.fleet_breaker);
  EventQueue events;

  // Coordinator-side observability (wall domain; see FleetOptions::obs).
  // Instant-event timestamps ride the coordinator's real wall clock —
  // events are handled serially on this thread, so per-track timestamps
  // stay monotone.
  const bool obs_on = options_.obs.enabled();
  ObsHandle coord_obs;
  MetricsRegistry::Id obs_mig_attempted = MetricsRegistry::kInvalidId;
  MetricsRegistry::Id obs_mig_completed = MetricsRegistry::kInvalidId;
  MetricsRegistry::Id obs_mig_rejected = MetricsRegistry::kInvalidId;
  MetricsRegistry::Id obs_mig_fallbacks = MetricsRegistry::kInvalidId;
  MetricsRegistry::Id obs_failovers = MetricsRegistry::kInvalidId;
  MetricsRegistry::Id obs_shards_killed = MetricsRegistry::kInvalidId;
  MetricsRegistry::Id obs_mig_latency = MetricsRegistry::kInvalidId;
  if (obs_on) {
    coord_obs = options_.obs.WithNodeTrack(options_.num_shards);
    if (options_.obs.metrics != nullptr) {
      MetricsRegistry& reg = *options_.obs.metrics;
      const MetricDomain w = MetricDomain::kWall;
      obs_mig_attempted =
          reg.Counter("vqe_fleet_migrations_attempted_total", w,
                      MetricUnit::kCount, "Live-migration extractions asked");
      obs_mig_completed =
          reg.Counter("vqe_fleet_migrations_completed_total", w,
                      MetricUnit::kCount, "Sessions implanted on targets");
      obs_mig_rejected =
          reg.Counter("vqe_fleet_migrations_rejected_total", w,
                      MetricUnit::kCount,
                      "Payloads rejected (corrupt or identity mismatch)");
      obs_mig_fallbacks =
          reg.Counter("vqe_fleet_migration_fallback_restarts_total", w,
                      MetricUnit::kCount,
                      "Factory restarts after failed migrations");
      obs_failovers =
          reg.Counter("vqe_fleet_failover_streams_total", w,
                      MetricUnit::kCount, "Streams restarted off dead shards");
      obs_shards_killed =
          reg.Counter("vqe_fleet_shards_killed_total", w, MetricUnit::kCount,
                      "Shard threads that crashed");
      obs_mig_latency = reg.Histogram(
          "vqe_fleet_migration_latency_ms", w,
          {0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0}, MetricUnit::kMs,
          "Handoff latency: payload leaves source -> implant confirmed");
    }
  }

  // Build shards; split the chaos script. Corruption events stay with the
  // coordinator as per-target-shard FIFOs consumed by arriving payloads.
  std::vector<std::unique_ptr<Shard>> shards;
  std::vector<std::deque<ChaosEvent>> pending_corruption(
      static_cast<size_t>(options_.num_shards));
  for (int i = 0; i < options_.num_shards; ++i) {
    ServeOptions shard_options = options_.shard;
    if (obs_on) {
      // Shard i traces on node track i; the coordinator keeps track
      // num_shards for itself.
      shard_options.obs = options_.obs;
      shard_options.obs_node = i;
    }
    auto shard = std::make_unique<Shard>(shard_options);
    shard->id = i;
    shard->scheduler.UseSharedRegistry(&fleet_health);
    shards.push_back(std::move(shard));
  }
  {
    std::vector<ChaosEvent> sorted = chaos.events;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const ChaosEvent& a, const ChaosEvent& b) {
                       return a.at_round < b.at_round;
                     });
    for (const ChaosEvent& event : sorted) {
      if (event.kind == ChaosEvent::Kind::kCorruptNextMigration) {
        pending_corruption[static_cast<size_t>(event.shard)].push_back(event);
      } else {
        shards[static_cast<size_t>(event.shard)]->script.push_back(event);
      }
    }
  }

  FleetReport out;
  out.stats.num_shards = options_.num_shards;
  out.stats.submitted = specs.size();

  // Fleet front door: global cap, hash placement, least-loaded fallback.
  const int per_shard_capacity =
      options_.shard.max_sessions + options_.shard.queue_depth;
  std::vector<int> load(static_cast<size_t>(options_.num_shards), 0);
  std::vector<bool> dead(static_cast<size_t>(options_.num_shards), false);
  std::vector<StreamState> streams;
  streams.reserve(specs.size());
  std::map<std::string, size_t> by_name;
  size_t remaining = 0;

  auto least_loaded_live = [&]() -> int {
    int best = -1;
    for (int i = 0; i < options_.num_shards; ++i) {
      if (dead[static_cast<size_t>(i)]) continue;
      if (load[static_cast<size_t>(i)] >= per_shard_capacity) continue;
      if (best < 0 ||
          load[static_cast<size_t>(i)] < load[static_cast<size_t>(best)]) {
        best = i;
      }
    }
    return best;
  };

  for (FleetStreamSpec& spec : specs) {
    StreamState state;
    state.spec = std::move(spec);
    state.report.name = state.spec.name;
    if (static_cast<int>(out.stats.admitted) >= options_.max_sessions) {
      ++out.stats.shed;
      state.terminal = true;
      state.report.status = Status::ResourceExhausted(
          "fleet shed '" + state.spec.name + "': " +
          std::to_string(out.stats.admitted) + " streams admitted (fleet "
          "max_sessions=" + std::to_string(options_.max_sessions) + ")");
    } else {
      int target = static_cast<int>(
          FleetRouteHash(state.spec.name) %
          static_cast<uint64_t>(options_.num_shards));
      if (load[static_cast<size_t>(target)] >= per_shard_capacity) {
        target = least_loaded_live();
      }
      if (target < 0) {
        ++out.stats.shed;
        state.terminal = true;
        state.report.status = Status::ResourceExhausted(
            "fleet shed '" + state.spec.name + "': every shard is full");
      } else {
        ++out.stats.admitted;
        state.shard = target;
        ++load[static_cast<size_t>(target)];
        ++remaining;
      }
    }
    by_name[state.spec.name] = streams.size();
    streams.push_back(std::move(state));
  }

  // Start shard threads, then feed them their streams.
  for (auto& shard : shards) {
    Shard* raw = shard.get();
    shard->thread = std::thread([raw, &events] { ShardMain(*raw, events); });
  }
  for (StreamState& state : streams) {
    if (state.terminal) continue;
    ShardCommand submit;
    submit.kind = ShardCommand::Kind::kSubmit;
    submit.stream = state.spec.name;
    submit.factory = state.spec.factory;
    if (!Post(*shards[static_cast<size_t>(state.shard)],
              std::move(submit))) {
      // Shard crashed at round 0 before the submit landed; the kShardDead
      // handler below cannot see this stream (it was never live there), so
      // reroute immediately.
      FleetEvent ev;
      ev.kind = FleetEvent::Kind::kSubmitFailed;
      ev.shard = state.shard;
      ev.stream = state.spec.name;
      ev.status = Status::Unavailable("shard died before submission");
      events.Push(std::move(ev));
    }
  }

  std::map<std::string, InFlightMigration> in_flight;
  std::vector<double> migration_latency_ms;

  // Restart `state` from its factory on the least-loaded live shard.
  // Terminal kUnavailable when the budget or the fleet is exhausted.
  auto restart_stream = [&](StreamState& state, const Status& why) {
    state.migrating = false;
    if (state.shard >= 0) {
      --load[static_cast<size_t>(state.shard)];
      state.shard = -1;
    }
    const int target = least_loaded_live();
    if (state.restarts >= options_.max_restarts || target < 0) {
      state.terminal = true;
      state.report.status =
          target < 0 ? Status::Unavailable("no live shard left for '" +
                                           state.spec.name + "': " +
                                           why.message())
                     : Status::Unavailable(
                           "restart budget exhausted for '" +
                           state.spec.name + "': " + why.message());
      --remaining;
      return;
    }
    ++state.restarts;
    state.shard = target;
    ++load[static_cast<size_t>(target)];
    ShardCommand submit;
    submit.kind = ShardCommand::Kind::kSubmit;
    submit.stream = state.spec.name;
    submit.factory = state.spec.factory;
    if (!Post(*shards[static_cast<size_t>(target)], std::move(submit))) {
      FleetEvent ev;
      ev.kind = FleetEvent::Kind::kSubmitFailed;
      ev.shard = target;
      ev.stream = state.spec.name;
      ev.status = Status::Unavailable("shard died before resubmission");
      events.Push(std::move(ev));
    }
  };

  // Skew rebalancing: move one stream from the most to the least loaded
  // shard when the spread reaches the threshold.
  auto maybe_rebalance = [&] {
    if (options_.rebalance_threshold <= 0) return;
    int busiest = -1, idlest = -1;
    for (int i = 0; i < options_.num_shards; ++i) {
      if (dead[static_cast<size_t>(i)]) continue;
      if (busiest < 0 ||
          load[static_cast<size_t>(i)] > load[static_cast<size_t>(busiest)]) {
        busiest = i;
      }
      if (idlest < 0 ||
          load[static_cast<size_t>(i)] < load[static_cast<size_t>(idlest)]) {
        idlest = i;
      }
    }
    if (busiest < 0 || idlest < 0 || busiest == idlest) return;
    if (load[static_cast<size_t>(busiest)] -
            load[static_cast<size_t>(idlest)] <
        options_.rebalance_threshold) {
      return;
    }
    for (StreamState& state : streams) {
      if (state.terminal || state.migrating || state.shard != busiest) {
        continue;
      }
      ShardCommand extract;
      extract.kind = ShardCommand::Kind::kExtract;
      extract.stream = state.spec.name;
      extract.target_shard = idlest;
      extract.sequence = 0;
      if (Post(*shards[static_cast<size_t>(busiest)], std::move(extract))) {
        state.migrating = true;
        ++out.stats.migration.attempted;
        coord_obs.Count(obs_mig_attempted);
      }
      return;  // one stream per pass keeps the loads settling smoothly
    }
  };

  // Hash skew is visible at admission time — rebalance once up front so a
  // lopsided initial placement starts spreading before any stream has to
  // finish (the event loop only wakes on shard events, which an idle
  // fleet member never produces).
  maybe_rebalance();

  // --- Event loop: runs until every admitted stream is terminal. --------
  while (remaining > 0) {
    FleetEvent ev = events.Pop();
    const auto it = by_name.find(ev.stream);
    StreamState* state =
        it == by_name.end() ? nullptr : &streams[it->second];
    switch (ev.kind) {
      case FleetEvent::Kind::kStreamDone: {
        if (state == nullptr || state->terminal) break;
        state->terminal = true;
        state->report = std::move(ev.report);
        if (state->shard >= 0) --load[static_cast<size_t>(state->shard)];
        state->shard = ev.shard;
        --remaining;
        break;
      }
      case FleetEvent::Kind::kSubmitFailed: {
        if (state == nullptr || state->terminal) break;
        if (ev.status.code() == StatusCode::kUnavailable) {
          restart_stream(*state, ev.status);  // shard died under the submit
        } else {
          // Factory or admission error: deterministic, retrying is futile.
          state->terminal = true;
          state->report.status = ev.status;
          if (state->shard >= 0) --load[static_cast<size_t>(state->shard)];
          state->shard = -1;
          --remaining;
        }
        break;
      }
      case FleetEvent::Kind::kPayload: {
        if (state == nullptr || state->terminal) break;
        // Chaos-initiated extractions surface here without a coordinator
        // request; account for them now.
        if (!state->migrating) {
          state->migrating = true;
          ++out.stats.migration.attempted;
          coord_obs.Count(obs_mig_attempted);
        }
        auto& corrupt_queue =
            pending_corruption[static_cast<size_t>(ev.target_shard)];
        if (!corrupt_queue.empty()) {
          const ChaosEvent damage = corrupt_queue.front();
          corrupt_queue.pop_front();
          if (damage.truncate) {
            ev.payload.resize(ev.payload.size() / 2);
          } else if (!ev.payload.empty()) {
            ev.payload[damage.flip_byte % ev.payload.size()] ^=
                static_cast<uint8_t>(1u << (damage.flip_bit % 8));
          }
        }
        InFlightMigration flight;
        flight.target_shard = ev.target_shard;
        in_flight[ev.stream] = flight;
        ShardCommand implant;
        implant.kind = ShardCommand::Kind::kImplant;
        implant.stream = ev.stream;
        implant.factory = state->spec.factory;
        implant.payload = std::move(ev.payload);
        implant.sequence = ev.sequence;
        if (!Post(*shards[static_cast<size_t>(ev.target_shard)],
                  std::move(implant))) {
          in_flight.erase(ev.stream);
          ++out.stats.migration.fallback_restarts;
          coord_obs.Count(obs_mig_fallbacks);
          restart_stream(*state,
                         Status::Unavailable("migration target died"));
        }
        break;
      }
      case FleetEvent::Kind::kImplantResult: {
        if (state == nullptr || state->terminal) break;
        const auto flight = in_flight.find(ev.stream);
        if (ev.status.ok()) {
          if (flight != in_flight.end()) {
            const double handoff_ms = flight->second.handoff.ElapsedMillis();
            migration_latency_ms.push_back(handoff_ms);
            coord_obs.Observe(obs_mig_latency, handoff_ms);
            in_flight.erase(flight);
          }
          ++out.stats.migration.completed;
          if (obs_on) {
            coord_obs.Count(obs_mig_completed);
            coord_obs.Instant(MetricDomain::kWall, -1, "migration_complete",
                              wall.ElapsedMillis(), "target_shard",
                              static_cast<double>(ev.shard));
          }
          if (state->shard >= 0) --load[static_cast<size_t>(state->shard)];
          state->shard = ev.shard;
          ++load[static_cast<size_t>(ev.shard)];
          ++state->migrations;
          state->migrating = false;
        } else {
          if (flight != in_flight.end()) in_flight.erase(flight);
          if (ev.status.code() == StatusCode::kDataLoss) {
            ++out.stats.migration.rejected_corrupt;
            coord_obs.Count(obs_mig_rejected);
          } else if (ev.status.code() == StatusCode::kFailedPrecondition) {
            ++out.stats.migration.rejected_identity;
            coord_obs.Count(obs_mig_rejected);
          }
          // The session is gone (its state rejected or its target dead):
          // restart from the factory — checkpointed streams resume, the
          // rest replay deterministically from frame 0.
          ++out.stats.migration.fallback_restarts;
          coord_obs.Count(obs_mig_fallbacks);
          restart_stream(*state, ev.status);
        }
        break;
      }
      case FleetEvent::Kind::kExtractFailed: {
        if (state != nullptr) state->migrating = false;
        ++out.stats.migration.aborted;
        break;
      }
      case FleetEvent::Kind::kShardDead: {
        const size_t shard_index = static_cast<size_t>(ev.shard);
        if (!dead[shard_index]) {
          dead[shard_index] = true;
          ++out.stats.shards_killed;
          if (obs_on) {
            coord_obs.Count(obs_shards_killed);
            coord_obs.Instant(MetricDomain::kWall, -1, "shard_dead",
                              wall.ElapsedMillis(), "shard",
                              static_cast<double>(ev.shard));
          }
        }
        for (const std::string& name : ev.lost_streams) {
          const auto lost_it = by_name.find(name);
          if (lost_it == by_name.end()) continue;
          StreamState& lost = streams[lost_it->second];
          if (lost.terminal || lost.migrating) continue;
          ++out.stats.failover_streams;
          coord_obs.Count(obs_failovers);
          restart_stream(lost, Status::Unavailable(
                                   "shard " + std::to_string(ev.shard) +
                                   " died with the stream live on it"));
        }
        break;
      }
    }
    maybe_rebalance();
  }

  // Shut down: stop live shards, join everyone, then finalize surviving
  // schedulers from this thread (safe after join).
  for (auto& shard : shards) {
    ShardCommand stop;
    stop.kind = ShardCommand::Kind::kStop;
    Post(*shard, std::move(stop));
  }
  for (auto& shard : shards) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  for (auto& shard : shards) {
    FleetStats::ShardSummary summary;
    summary.shard = shard->id;
    summary.dead = dead[static_cast<size_t>(shard->id)];
    if (!summary.dead) {
      Result<ServeReport> report = shard->scheduler.FinishServing();
      if (report.ok()) summary.stats = std::move(report).value().stats;
      out.stats.peak_degradation_level =
          std::max(out.stats.peak_degradation_level,
                   summary.stats.peak_degradation_level);
      out.stats.degradation_transitions += summary.stats.degradations.size();
    }
    out.stats.shards.push_back(std::move(summary));
  }

  out.streams.reserve(streams.size());
  for (StreamState& state : streams) {
    if (state.report.status.ok()) {
      ++out.stats.completed_streams;
    } else {
      ++out.stats.failed_streams;
    }
    FleetStreamReport fsr;
    fsr.name = state.spec.name;
    fsr.shard = state.shard;
    fsr.restarts = state.restarts;
    fsr.migrations = state.migrations;
    fsr.report = std::move(state.report);
    out.streams.push_back(std::move(fsr));
  }
  out.stats.migration.latency_p50_ms = Percentile(migration_latency_ms, 0.5);
  out.stats.migration.latency_p99_ms =
      Percentile(migration_latency_ms, 0.99);
  out.stats.fleet_health = fleet_health.Snapshot(~0ull >> 1);
  out.stats.wall_ms = wall.ElapsedMillis();
  return out;
}

}  // namespace vqe
