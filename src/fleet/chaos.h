// Deterministic chaos injection for the sharded fleet.
//
// Chaos is SCRIPTED, not random: a ChaosScript is an explicit list of
// events, each anchored to a shard's own round counter — "kill shard 1 at
// its round 5", "migrate stream s3 off shard 0 at its round 3", "corrupt
// the next migration payload shard 2 receives". Anchoring to per-shard
// round counts (not wall clock) makes every chaos run reproducible: a
// shard's round counter advances only when IT steps sessions, so the
// fault always lands at the same point of that shard's schedule no matter
// how the OS interleaves threads. fleet_test replays the same scripts
// under ASan/TSan and across worker counts and asserts bit-identical
// stream results every time.

#ifndef VQE_FLEET_CHAOS_H_
#define VQE_FLEET_CHAOS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace vqe {

struct ChaosEvent {
  enum class Kind : uint8_t {
    /// Shard `shard` crashes at its round `at_round`: it stops serving
    /// immediately, loses every live session and its shard-local stats,
    /// and never reports again. The coordinator restarts the lost streams
    /// from their factories (or their checkpoint directories).
    kKillShard,
    /// Extract `stream` from `shard` at its round `at_round` and implant
    /// it into `target_shard` through the migration wire format.
    kMigrate,
    /// Damage the NEXT migration payload addressed to `shard` after its
    /// round `at_round`: flip bit `flip_bit` of byte `flip_byte` (modulo
    /// payload size), or truncate the payload when `truncate` is set. The
    /// target must reject the implant with DataLoss and the coordinator
    /// must fall back to a fresh restart — never corrupt results.
    kCorruptNextMigration,
  };

  Kind kind = Kind::kKillShard;
  /// Shard round count at which the event fires (the shard checks its
  /// script between rounds; 0 fires before the first round).
  uint64_t at_round = 0;
  /// Shard the event targets (source shard for kMigrate).
  int shard = 0;
  /// kMigrate: the stream to move.
  std::string stream;
  /// kMigrate: destination shard.
  int target_shard = 0;
  /// kCorruptNextMigration: damage coordinates.
  size_t flip_byte = 0;
  int flip_bit = 0;
  bool truncate = false;
};

const char* ChaosEventKindToString(ChaosEvent::Kind kind);

struct ChaosScript {
  std::vector<ChaosEvent> events;

  bool empty() const { return events.empty(); }

  /// InvalidArgument when any event references a shard outside
  /// [0, num_shards) or a kMigrate has source == target.
  Status Validate(int num_shards) const;
};

}  // namespace vqe

#endif  // VQE_FLEET_CHAOS_H_
