// Live-migration wire envelope.
//
// A migrating session travels between shards as a MigrationPayload: the
// engine snapshot produced by StreamSession::ExportState wrapped in an
// OUTER snapshot container together with routing metadata (stream name,
// source shard, fleet sequence number) and the scheduler-side counters
// that must continue on the target (frames stepped, rounds active). Using
// the container for the envelope means the outer per-section CRCs protect
// the metadata exactly as the inner CRCs protect the engine state — a bit
// flip anywhere in the payload is DataLoss at Decode, BEFORE any target
// session is touched. A payload that decodes cleanly but was exported from
// a different session configuration is still rejected later by
// StreamSession::ImplantState (identity fingerprint, FailedPrecondition).

#ifndef VQE_FLEET_MIGRATION_H_
#define VQE_FLEET_MIGRATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/scheduler.h"

namespace vqe {

struct MigrationPayload {
  /// Fleet-wide stream name (routing key on the target coordinator).
  std::string stream_name;
  /// Shard the session was extracted from (diagnostics).
  int source_shard = 0;
  /// Coordinator-assigned migration sequence number (latency bookkeeping).
  uint64_t sequence = 0;
  /// Scheduler counters that continue on the target shard.
  StreamScheduler::SessionCarry carry;
  /// The session's full resumable state (inner snapshot container from
  /// StreamSession::ExportState, CRCs and identity fingerprint included).
  std::vector<uint8_t> engine_snapshot;
};

/// Serializes the payload into the snapshot container wire format.
std::vector<uint8_t> EncodeMigrationPayload(const MigrationPayload& payload);

/// Parses and fully validates an encoded payload. Any structural damage —
/// bit flip, truncation, trailing bytes, bad magic — returns DataLoss;
/// nothing is partially decoded.
Result<MigrationPayload> DecodeMigrationPayload(
    const std::vector<uint8_t>& bytes);

}  // namespace vqe

#endif  // VQE_FLEET_MIGRATION_H_
