#include "fleet/migration.h"

#include <utility>

#include "snapshot/snapshot.h"

namespace vqe {
namespace {

constexpr char kMetaSection[] = "fleet.meta";
constexpr char kEngineSection[] = "fleet.engine";

}  // namespace

std::vector<uint8_t> EncodeMigrationPayload(const MigrationPayload& payload) {
  SnapshotWriter writer;
  ByteWriter& meta = writer.AddSection(kMetaSection);
  meta.Str(payload.stream_name);
  meta.I64(payload.source_shard);
  meta.U64(payload.sequence);
  meta.U64(payload.carry.frames);
  meta.U64(payload.carry.rounds_active);
  ByteWriter& engine = writer.AddSection(kEngineSection);
  // Str = u32 length prefix + raw bytes; bounds-checked on read. Engine
  // snapshots are KBs, far under the u32 ceiling.
  engine.Str(std::string(payload.engine_snapshot.begin(),
                         payload.engine_snapshot.end()));
  return writer.Finish();
}

Result<MigrationPayload> DecodeMigrationPayload(
    const std::vector<uint8_t>& bytes) {
  VQE_ASSIGN_OR_RETURN(SnapshotReader snapshot, SnapshotReader::Parse(bytes));
  MigrationPayload payload;

  VQE_ASSIGN_OR_RETURN(ByteReader meta, snapshot.Section(kMetaSection));
  VQE_RETURN_NOT_OK(meta.Str(&payload.stream_name));
  int64_t source_shard = 0;
  VQE_RETURN_NOT_OK(meta.I64(&source_shard));
  payload.source_shard = static_cast<int>(source_shard);
  VQE_RETURN_NOT_OK(meta.U64(&payload.sequence));
  uint64_t frames = 0;
  VQE_RETURN_NOT_OK(meta.U64(&frames));
  payload.carry.frames = static_cast<size_t>(frames);
  VQE_RETURN_NOT_OK(meta.U64(&payload.carry.rounds_active));
  VQE_RETURN_NOT_OK(meta.ExpectEnd());

  VQE_ASSIGN_OR_RETURN(ByteReader engine, snapshot.Section(kEngineSection));
  std::string blob;
  VQE_RETURN_NOT_OK(engine.Str(&blob));
  VQE_RETURN_NOT_OK(engine.ExpectEnd());
  payload.engine_snapshot.assign(blob.begin(), blob.end());
  return payload;
}

}  // namespace vqe
