// Wall-clock stopwatch for measuring real overheads (Figure 13 style
// breakdowns distinguish simulated inference cost from real algorithm
// overhead, which this measures).

#ifndef VQE_COMMON_STOPWATCH_H_
#define VQE_COMMON_STOPWATCH_H_

#include <chrono>

namespace vqe {

/// Monotonic stopwatch with microsecond resolution.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts timing from now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time across many timed sections.
class TimeAccumulator {
 public:
  /// Adds `seconds` to the running total.
  void Add(double seconds) { total_seconds_ += seconds; }

  double total_seconds() const { return total_seconds_; }

  void Reset() { total_seconds_ = 0.0; }

 private:
  double total_seconds_ = 0.0;
};

/// RAII guard that adds the guarded scope's duration to an accumulator.
class ScopedTimer {
 public:
  explicit ScopedTimer(TimeAccumulator* acc) : acc_(acc) {}
  ~ScopedTimer() { acc_->Add(watch_.ElapsedSeconds()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimeAccumulator* acc_;
  Stopwatch watch_;
};

}  // namespace vqe

#endif  // VQE_COMMON_STOPWATCH_H_
