#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

namespace vqe {

namespace {

thread_local int t_parallel_depth = 0;

// RAII marker for "this thread is executing a parallel-region body".
struct RegionGuard {
  RegionGuard() { ++t_parallel_depth; }
  ~RegionGuard() { --t_parallel_depth; }
};

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 0) num_threads = 0;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Shutdown();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

bool ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    // Inline pool: the acceptance check still honours the shutdown
    // contract (a rejected task is never executed).
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) return false;
    }
    task();
    return true;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return false;  // deterministic rejection, never a drop
    queue_.push(std::move(task));
  }
  cv_.notify_one();
  return true;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

ThreadPool& SharedThreadPool() {
  static ThreadPool* pool = [] {
    int cores = static_cast<int>(std::thread::hardware_concurrency());
    if (cores < 1) cores = 1;
    return new ThreadPool(cores - 1);
  }();
  return *pool;
}

bool InParallelRegion() { return t_parallel_depth > 0; }

int ResolveWorkers(int parallelism, size_t n) {
  if (n <= 1 || parallelism == 1 || InParallelRegion()) return 1;
  int workers = parallelism;
  if (workers <= 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
    if (workers < 1) workers = 1;
  }
  workers = std::min(workers, SharedThreadPool().num_threads() + 1);
  if (n < static_cast<size_t>(workers)) workers = static_cast<int>(n);
  return std::max(workers, 1);
}

void ParallelFor(size_t n, int parallelism,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const int workers = ResolveWorkers(parallelism, n);
  if (workers <= 1) {
    // Serial path: exceptions propagate to the caller naturally.
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Work-stealing by atomic chunk: every participating thread (workers − 1
  // pool threads plus the caller) claims the next unprocessed *range* of
  // indices. Chunking amortizes the contended fetch_add and the
  // std::function dispatch over `chunk` body calls — per-index claiming
  // made fine-grained bodies lose to the plain serial loop (the m=4/m=6
  // regression in BENCH_matrix_build.json). Eight chunks per worker keeps
  // enough slack for load balancing when per-index costs are skewed.
  // fetch_add partitions [0, n) into disjoint ranges, so each index still
  // runs exactly once; which thread runs it stays nondeterministic.
  const size_t chunk =
      std::max<size_t>(1, n / (static_cast<size_t>(workers) * 8));
  auto next = std::make_shared<std::atomic<size_t>>(0);

  // First-exception capture: a throwing body must not escape into the pool's
  // worker loop (that would terminate the process). The first exception from
  // any participant is stashed here and rethrown on the calling thread after
  // the completion handshake; later exceptions are dropped. Once an exception
  // is recorded the index counter is slammed to n so remaining chunks are
  // abandoned — the exactly-once guarantee does not hold for indices after a
  // throw.
  std::mutex err_mu;
  std::exception_ptr err;

  // Capturing err_mu/err by reference is safe for the same reason `fn` is:
  // the caller blocks on the completion handshake until every task finished.
  auto drain = [next, n, chunk, &fn, &err_mu, &err] {
    RegionGuard region;
    while (true) {
      const size_t begin = next->fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) break;
      const size_t end = std::min(n, begin + chunk);
      for (size_t i = begin; i < end; ++i) {
        try {
          fn(i);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(err_mu);
            if (!err) err = std::current_exception();
          }
          next->store(n, std::memory_order_relaxed);  // cancel remaining work
          return;
        }
      }
    }
  };

  // Completion state lives on the heap, shared by value with every task:
  // after the last decrement wakes the caller, ParallelFor may return (and
  // unwind its stack) while a worker is still between its decrement and its
  // notify — the state block must outlive that worker's notify, not the call.
  struct Completion {
    std::mutex mu;
    std::condition_variable cv;
    int pending = 0;
  };
  auto done = std::make_shared<Completion>();
  done->pending = workers - 1;
  for (int w = 0; w < workers - 1; ++w) {
    // `drain` by reference is safe: the caller blocks until every task has
    // finished drain() and decremented pending. A rejected submission
    // (pool shutting down — cannot happen for the leaked shared pool, but
    // the contract demands handling) just means one less helper: the
    // caller's own drain() below still completes every index.
    const bool accepted = SharedThreadPool().Submit([done, &drain] {
      drain();
      {
        std::lock_guard<std::mutex> lock(done->mu);
        --done->pending;
      }
      done->cv.notify_one();
    });
    if (!accepted) {
      std::lock_guard<std::mutex> lock(done->mu);
      --done->pending;
    }
  }
  drain();  // the caller participates
  {
    std::unique_lock<std::mutex> lock(done->mu);
    done->cv.wait(lock, [&] { return done->pending == 0; });
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace vqe
