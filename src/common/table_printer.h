// Aligned plain-text table printing for the benchmark harness, so every
// bench binary emits the paper's tables/figure series in a uniform format.

#ifndef VQE_COMMON_TABLE_PRINTER_H_
#define VQE_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace vqe {

/// Collects rows of string cells and renders them with column alignment.
///
/// Usage:
///   TablePrinter t({"Dataset", "s_sum", "mean"});
///   t.AddRow({"V_nusc", "123.4", "0.81"});
///   t.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a data row. Rows shorter than the header are padded with "".
  void AddRow(std::vector<std::string> cells);

  /// Renders the table with a header rule. Numeric-looking cells are
  /// right-aligned; everything else is left-aligned.
  void Print(std::ostream& os) const;

  /// Writes the table as RFC-4180 CSV (quotes cells containing commas,
  /// quotes or newlines) for downstream plotting.
  void WriteCsv(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vqe

#endif  // VQE_COMMON_TABLE_PRINTER_H_
