#include "common/table_printer.h"

#include <algorithm>
#include <cctype>

namespace vqe {
namespace {

bool LooksNumeric(const std::string& s) {
  if (s.empty()) return false;
  bool digit_seen = false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit_seen = true;
    } else if (c != '.' && c != '-' && c != '+' && c != 'e' && c != 'E' &&
               c != '%' && c != ',') {
      return false;
    }
  }
  return digit_seen;
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row, bool align_num) {
    os << "|";
    for (size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : header_[c];
      const size_t pad = widths[c] - cell.size();
      os << ' ';
      if (align_num && LooksNumeric(cell)) {
        os << std::string(pad, ' ') << cell;
      } else {
        os << cell << std::string(pad, ' ');
      }
      os << " |";
    }
    os << '\n';
  };

  emit_row(header_, /*align_num=*/false);
  os << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row, /*align_num=*/true);
}

void TablePrinter::WriteCsv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < header_.size(); ++c) {
      if (c > 0) os << ',';
      const std::string& cell = c < row.size() ? row[c] : "";
      const bool needs_quoting =
          cell.find_first_of(",\"\n") != std::string::npos;
      if (needs_quoting) {
        os << '"';
        for (char ch : cell) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cell;
      }
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace vqe
