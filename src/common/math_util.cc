#include "common/math_util.h"

#include <algorithm>
#include <limits>

namespace vqe {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double SampleStdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = Mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - mu) * (x - mu);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double Min(const std::vector<double>& xs) {
  if (xs.empty()) return std::numeric_limits<double>::infinity();
  return *std::min_element(xs.begin(), xs.end());
}

double Max(const std::vector<double>& xs) {
  if (xs.empty()) return -std::numeric_limits<double>::infinity();
  return *std::max_element(xs.begin(), xs.end());
}

SampleSummary Summarize(const std::vector<double>& xs) {
  SampleSummary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.mean = Mean(xs);
  s.stddev = SampleStdDev(xs);
  s.min = Min(xs);
  s.max = Max(xs);
  return s;
}

Result<LinearFit> FitLine(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  if (xs.size() != ys.size()) {
    return Status::InvalidArgument("FitLine: xs and ys differ in length");
  }
  const size_t n = xs.size();
  if (n < 2) {
    return Status::InvalidArgument("FitLine: need at least two points");
  }
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) {
    return Status::InvalidArgument("FitLine: all x values are identical");
  }
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

}  // namespace vqe
