// Status / Result error-handling primitives (Arrow/RocksDB idiom).
//
// Library code returns Status (or Result<T>) instead of throwing across
// module boundaries. Hot paths that cannot fail take plain values.

#ifndef VQE_COMMON_STATUS_H_
#define VQE_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace vqe {

/// Coarse error taxonomy for this library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kParseError,
  kResourceExhausted,
  kInternal,
  /// A per-call deadline elapsed before the operation finished (the
  /// fault-tolerant detector runtime's timeout signal).
  kDeadlineExceeded,
  /// A dependency is (possibly transiently) down — retrying may succeed.
  kUnavailable,
  /// Persisted data is unrecoverably corrupt (bad magic, CRC mismatch,
  /// truncated section) — the snapshot/serialization layer's rejection signal.
  kDataLoss,
  /// The operation was deliberately interrupted before completion (e.g. the
  /// crash-injection harness killing a run mid-video).
  kAborted,
};

/// Every StatusCode, for exhaustive enumeration in tests/diagnostics.
inline constexpr StatusCode kAllStatusCodes[] = {
    StatusCode::kOk,           StatusCode::kInvalidArgument,
    StatusCode::kOutOfRange,   StatusCode::kNotFound,
    StatusCode::kAlreadyExists, StatusCode::kFailedPrecondition,
    StatusCode::kParseError,   StatusCode::kResourceExhausted,
    StatusCode::kInternal,     StatusCode::kDeadlineExceeded,
    StatusCode::kUnavailable,  StatusCode::kDataLoss,
    StatusCode::kAborted,
};

/// Returns a human-readable name for a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A success-or-error outcome carrying a code and a message.
///
/// Cheap to copy in the OK case (no allocation). Use the factory functions
/// (Status::OK(), Status::InvalidArgument(...)) rather than the constructor.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Result<T>: either a value or an error Status. Modeled after
/// arrow::Result. Accessing the value of an errored Result is a programming
/// error (asserted in debug builds).
template <typename T>
class Result {
 public:
  // Implicit construction from a value or an error, for ergonomic returns.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() &&
           "Result<T> must not be constructed from an OK Status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status; Status::OK() when this Result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  /// Returns the value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

/// Propagates a non-OK Status from an expression, RocksDB-style.
#define VQE_RETURN_NOT_OK(expr)            \
  do {                                     \
    ::vqe::Status _st = (expr);            \
    if (!_st.ok()) return _st;             \
  } while (false)

#define VQE_CONCAT_IMPL(a, b) a##b
#define VQE_CONCAT(a, b) VQE_CONCAT_IMPL(a, b)

/// Assigns the value of a Result expression or propagates its error.
#define VQE_ASSIGN_OR_RETURN(lhs, expr) \
  VQE_ASSIGN_OR_RETURN_IMPL(VQE_CONCAT(_vqe_res_, __LINE__), lhs, expr)

#define VQE_ASSIGN_OR_RETURN_IMPL(res, lhs, expr) \
  auto&& res = (expr);                            \
  if (!res.ok()) return res.status();             \
  lhs = std::move(res).value()

}  // namespace vqe

#endif  // VQE_COMMON_STATUS_H_
