#include "common/arena.h"

#include <cassert>
#include <new>

namespace vqe {

namespace {

inline size_t AlignUp(size_t value, size_t align) {
  return (value + align - 1) & ~(align - 1);
}

}  // namespace

FrameArena::FrameArena(size_t min_block_bytes)
    : min_block_bytes_(min_block_bytes > 0 ? min_block_bytes
                                           : kDefaultBlockBytes) {}

FrameArena::~FrameArena() { ReleaseAll(); }

void* FrameArena::Allocate(size_t bytes, size_t align) {
  assert(align > 0 && (align & (align - 1)) == 0);
  ++stats_.alloc_calls;
  if (blocks_.empty()) NextBlock(bytes + align);
  // Align the absolute address, not the intra-block offset: block bases
  // from ::operator new only honour fundamental alignment, so a request
  // with extended alignment (> 16) could land misaligned if only the
  // offset were rounded. Over-reserving by `align` in NextBlock keeps the
  // padded request in bounds.
  const auto aligned_offset = [this, align](size_t offset) {
    const uintptr_t base =
        reinterpret_cast<uintptr_t>(blocks_[cur_block_].data);
    return static_cast<size_t>(AlignUp(base + offset, align) - base);
  };
  size_t offset = aligned_offset(cur_offset_);
  if (offset + bytes > blocks_[cur_block_].size) {
    NextBlock(bytes + align);
    offset = aligned_offset(cur_offset_);
  }
  void* p = blocks_[cur_block_].data + offset;
  cur_offset_ = offset + bytes;
  const size_t live = live_bytes();
  if (live > stats_.high_water_bytes) stats_.high_water_bytes = live;
  return p;
}

void FrameArena::NextBlock(size_t bytes) {
  // Reuse a retained block when the next one is big enough; otherwise
  // insert a fresh block at the cursor. Fresh blocks double the working
  // size so arenas converge to O(log) block count regardless of demand.
  const size_t next = blocks_.empty() ? 0 : cur_block_ + 1;
  if (next < blocks_.size() && blocks_[next].size >= bytes) {
    cur_block_ = next;
    cur_offset_ = 0;
    return;
  }
  size_t size = min_block_bytes_;
  if (!blocks_.empty()) size = blocks_.back().size * 2;
  if (size < bytes) size = bytes;
  Block b;
  b.data = static_cast<char*>(::operator new(size));
  b.size = size;
  ++stats_.block_allocs;
  stats_.bytes_reserved += size;
  blocks_.insert(blocks_.begin() + static_cast<ptrdiff_t>(next), b);
  cur_block_ = next;
  cur_offset_ = 0;
}

void FrameArena::Rewind(const Marker& m) {
  assert(m.block < blocks_.size() || (m.block == 0 && m.offset == 0));
  if (blocks_.empty()) return;
  cur_block_ = m.block;
  cur_offset_ = m.offset;
}

void FrameArena::ReleaseAll() {
  for (auto& b : blocks_) ::operator delete(b.data);
  blocks_.clear();
  cur_block_ = 0;
  cur_offset_ = 0;
}

size_t FrameArena::live_bytes() const {
  if (blocks_.empty()) return 0;
  size_t live = cur_offset_;
  for (size_t i = 0; i < cur_block_; ++i) live += blocks_[i].size;
  return live;
}

FrameArena& FrameArena::ThreadLocal() {
  thread_local FrameArena arena;
  return arena;
}

}  // namespace vqe
