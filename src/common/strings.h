// String helpers used by the query parser, configuration handling and the
// benchmark table printer.

#ifndef VQE_COMMON_STRINGS_H_
#define VQE_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace vqe {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);

/// ASCII upper-casing.
std::string ToUpper(std::string_view s);

/// True when `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace vqe

#endif  // VQE_COMMON_STRINGS_H_
