// Shared worker-pool subsystem. One process-wide pool backs every parallel
// region (trial-level in RunExperiment, frame-level in BuildFrameMatrix),
// so nested parallelism degrades to serial execution instead of
// oversubscribing the machine: a ParallelFor issued from inside another
// ParallelFor body always runs inline on the calling thread.
//
// Determinism contract: ParallelFor(n, p, fn) calls fn(i) exactly once for
// every i in [0, n), each index on exactly one thread. Callers that write
// only to index-i-owned state (e.g. pre-sized output slots) therefore get
// bit-identical results for every parallelism setting.

#ifndef VQE_COMMON_THREAD_POOL_H_
#define VQE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace vqe {

/// A fixed-size pool of worker threads consuming a FIFO task queue.
///
/// Shutdown contract: once Shutdown() has been called (the destructor
/// calls it first), every task accepted before that point still runs to
/// completion — the workers drain the queue before exiting — and every
/// Submit at or after that point returns false without enqueueing. A task
/// is therefore either executed exactly once or rejected visibly at the
/// submission site; there is no window in which a submission is silently
/// dropped or left to hang.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 is valid: Submit then runs the task
  /// inline on the calling thread).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task; runs it inline when the pool has no workers. Returns
  /// true when the task was accepted (it WILL run, even if Shutdown begins
  /// immediately after) and false when the pool is shutting down — the
  /// task was not enqueued and will never run. Callers that submit into a
  /// pool they do not own must handle rejection (e.g. run the work inline
  /// or on the calling thread), never assume acceptance.
  [[nodiscard]] bool Submit(std::function<void()> task);

  /// Begins shutdown: already-accepted tasks drain, subsequent Submit
  /// calls are rejected deterministically. Idempotent and thread-safe;
  /// does not join the workers (the destructor does).
  void Shutdown();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// The process-wide pool: hardware_concurrency − 1 workers (the calling
/// thread is always the extra participant in a parallel region). Created on
/// first use.
ThreadPool& SharedThreadPool();

/// True while the calling thread is executing a ParallelFor body — nested
/// parallel regions detect this and run serially.
bool InParallelRegion();

/// Resolves a parallelism knob to the worker count a ParallelFor over `n`
/// items will use: `parallelism` <= 1 or n <= 1 or a nested region gives 1;
/// 0 means "all hardware cores"; the result is capped at n and at the
/// shared pool size + 1 (the caller participates). Nesting is
/// all-or-nothing: an inner region runs serially even when the outer one
/// uses fewer workers than the pool has, so leftover capacity is never
/// borrowed (keeps resolved worker counts independent of scheduling).
int ResolveWorkers(int parallelism, size_t n);

/// Runs fn(i) for every i in [0, n) across ResolveWorkers(parallelism, n)
/// threads (shared-pool workers plus the calling thread), blocking until
/// all indices are done. Threads claim chunks of consecutive indices
/// (~8 chunks per worker) so the atomic claim and closure dispatch are
/// amortized over the chunk; each index still runs exactly once.
///
/// Exceptions: if any fn(i) throws, the first exception (by capture order,
/// which is nondeterministic under contention) is rethrown on the calling
/// thread after all participants stop; remaining unclaimed indices are
/// abandoned, so the exactly-once guarantee holds only for non-throwing
/// runs.
void ParallelFor(size_t n, int parallelism,
                 const std::function<void(size_t)>& fn);

}  // namespace vqe

#endif  // VQE_COMMON_THREAD_POOL_H_
