// Per-frame bump allocation for the fusion/scoring hot path. Evaluating
// one frame fuses and scores up to 2^m − 1 masks, and every mask used to
// pay dozens of heap allocations for transient scratch (class-grouped
// pools, suppression flags, match records, PR curves). A FrameArena turns
// all of that into pointer bumps over a few reusable blocks: scratch is
// claimed with Allocate, reclaimed wholesale by rewinding to a mark, and
// the blocks themselves are recycled frame after frame — steady state
// performs zero heap allocations (see stats().block_allocs).
//
// Concurrency model: arenas are single-threaded by design. Hot-path code
// uses FrameArena::ThreadLocal(), one arena per thread, so ParallelFor
// workers never contend and never share scratch. Lifetime discipline is
// strictly LIFO: an ArenaScope rewinds everything allocated after its
// construction, so arena memory must never outlive the innermost scope
// that allocated it — return long-lived data in regular containers.

#ifndef VQE_COMMON_ARENA_H_
#define VQE_COMMON_ARENA_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace vqe {

/// A chunked bump allocator with LIFO (mark/rewind) reclamation.
class FrameArena {
 public:
  /// Allocation counters; block_allocs is the number the zero-allocation
  /// regression gate watches — it must stop growing once the hot path has
  /// warmed the arena to its high-water mark.
  struct Stats {
    /// Heap blocks ever requested from the system allocator.
    uint64_t block_allocs = 0;
    /// Total bytes of those blocks.
    uint64_t bytes_reserved = 0;
    /// Allocate() calls served (bumps, not heap traffic).
    uint64_t alloc_calls = 0;
    /// Maximum live bytes observed across the arena's lifetime.
    uint64_t high_water_bytes = 0;
  };

  /// Position for Rewind: the block index and intra-block offset at the
  /// time of Mark. Treat as opaque.
  struct Marker {
    size_t block = 0;
    size_t offset = 0;
  };

  static constexpr size_t kDefaultBlockBytes = size_t{256} * 1024;

  explicit FrameArena(size_t min_block_bytes = kDefaultBlockBytes);
  ~FrameArena();

  FrameArena(const FrameArena&) = delete;
  FrameArena& operator=(const FrameArena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two).
  /// Never returns nullptr; zero-byte requests yield a unique aligned
  /// pointer into the current block.
  void* Allocate(size_t bytes, size_t align);

  /// Typed convenience: uninitialized storage for `n` objects of T.
  template <typename T>
  T* AllocateArray(size_t n) {
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Current position; pass to Rewind to release everything allocated
  /// after this call. Strictly LIFO: rewinding invalidates every pointer
  /// obtained since the mark.
  Marker Mark() const { return Marker{cur_block_, cur_offset_}; }
  void Rewind(const Marker& m);

  /// Rewinds to empty, keeping the blocks for reuse.
  void Reset() { Rewind(Marker{0, 0}); }

  /// Frees all blocks (stats are kept). Mainly for tests and teardown.
  void ReleaseAll();

  const Stats& stats() const { return stats_; }
  /// Bytes currently live (sum of full blocks before the cursor plus the
  /// current block's offset).
  size_t live_bytes() const;

  /// The calling thread's arena. One per thread, created on first use, so
  /// ParallelFor workers bump their own cursors without synchronization.
  static FrameArena& ThreadLocal();

 private:
  struct Block {
    char* data = nullptr;
    size_t size = 0;
  };

  /// Makes the cursor point at a block with at least `bytes` of room,
  /// reusing retained blocks before growing the footprint.
  void NextBlock(size_t bytes);

  std::vector<Block> blocks_;
  size_t cur_block_ = 0;
  size_t cur_offset_ = 0;
  size_t min_block_bytes_;
  Stats stats_;
};

/// RAII mark/rewind: everything the protected region allocates from the
/// arena is reclaimed at scope exit. Scopes nest LIFO; allocations that
/// must survive the scope belong in regular containers.
class ArenaScope {
 public:
  explicit ArenaScope(FrameArena& arena)
      : arena_(&arena), mark_(arena.Mark()) {}
  ~ArenaScope() { arena_->Rewind(mark_); }

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  FrameArena* arena_;
  FrameArena::Marker mark_;
};

/// std::allocator adapter over a FrameArena. deallocate is a no-op —
/// storage is reclaimed by the enclosing ArenaScope — so containers may
/// "leak" grown-out buffers into the scope; size scratch with reserve
/// where the bound is known.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(FrameArena& arena) : arena_(&arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(size_t n) { return arena_->AllocateArray<T>(n); }
  void deallocate(T*, size_t) {}

  FrameArena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& o) const {
    return arena_ == o.arena();
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>& o) const {
    return arena_ != o.arena();
  }

 private:
  FrameArena* arena_;
};

/// Vector whose storage lives in a FrameArena; construct with the arena's
/// allocator and keep it inside the owning ArenaScope.
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

template <typename T>
ArenaVector<T> MakeArenaVector(FrameArena& arena) {
  return ArenaVector<T>(ArenaAllocator<T>(arena));
}

namespace arena_internal {

/// Merges two sorted runs [a, a+na) and [b, b+nb) into out, taking from
/// the first run on ties (what makes the sort stable).
template <typename T, typename Less>
void MergeRuns(const T* a, size_t na, const T* b, size_t nb, T* out,
               Less less) {
  size_t i = 0, j = 0, k = 0;
  while (i < na && j < nb) {
    // Take b[j] only when strictly less than a[i]: equal elements keep
    // their original (first-run-first) order.
    out[k++] = less(b[j], a[i]) ? b[j++] : a[i++];
  }
  while (i < na) out[k++] = a[i++];
  while (j < nb) out[k++] = b[j++];
}

}  // namespace arena_internal

/// Stable sort with arena-backed temporaries. std::stable_sort heap-
/// allocates a merge buffer on every call, which the zero-allocation hot
/// path cannot afford; this bottom-up merge sort borrows the buffer from
/// the arena instead. A stable sort's output permutation is uniquely
/// determined by (input, comparator), so replacing std::stable_sort with
/// this keeps every downstream value bit-identical.
template <typename T, typename Less>
void ArenaStableSort(T* data, size_t n, FrameArena& arena, Less less) {
  if (n < 2) return;
  // Already-sorted fast path: a stable sort of a sorted sequence is the
  // identity permutation, so returning unchanged is the same result. The
  // fusion/scoring pipeline sorts many lists that arrive pre-sorted
  // (fused outputs are emitted in descending confidence), making this
  // O(n) check pay for itself many times over.
  bool sorted = true;
  for (size_t i = 1; i < n; ++i) {
    if (less(data[i], data[i - 1])) {
      sorted = false;
      break;
    }
  }
  if (sorted) return;
  ArenaScope scope(arena);
  T* buf = arena.AllocateArray<T>(n);
  T* src = data;
  T* dst = buf;
  for (size_t width = 1; width < n; width *= 2) {
    for (size_t lo = 0; lo < n; lo += 2 * width) {
      const size_t mid = std::min(lo + width, n);
      const size_t hi = std::min(lo + 2 * width, n);
      arena_internal::MergeRuns(src + lo, mid - lo, src + mid, hi - mid,
                                dst + lo, less);
    }
    std::swap(src, dst);
  }
  if (src != data) {
    for (size_t i = 0; i < n; ++i) data[i] = src[i];
  }
}

}  // namespace vqe

#endif  // VQE_COMMON_ARENA_H_
