// Deterministic pseudo-random number generation.
//
// Every stochastic component of the simulator draws from a seeded stream
// derived from stable integer keys (trial, frame, model, purpose), so that
// (a) experiments are reproducible bit-for-bit, and (b) the randomness seen
// by one component is independent of how often other components sample.

#ifndef VQE_COMMON_RNG_H_
#define VQE_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <numbers>

namespace vqe {

/// SplitMix64 hash step; used both as a seeding mixer and a key combiner.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Combines a seed with a stream key into a new seed (order-sensitive).
inline uint64_t HashCombine(uint64_t seed, uint64_t key) {
  return SplitMix64(seed ^ (key + 0x9E3779B97F4A7C15ULL + (seed << 6) +
                            (seed >> 2)));
}

/// xoshiro256** 1.0 — small, fast, high-quality generator.
///
/// Satisfies UniformRandomBitGenerator. Construct from a single 64-bit seed;
/// internal state is expanded with SplitMix64 per the reference
/// implementation's recommendation.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0xC0FFEE123456789ULL) { Reseed(seed); }

  void Reseed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) {
      sm = SplitMix64(sm);
      word = sm;
    }
    // Guard against the (astronomically unlikely) all-zero state.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  /// Copies the full 256-bit generator state out (for snapshots). A
  /// generator restored with SetState continues the exact same stream,
  /// which is what makes RAND/EF and scene sampling resumable.
  void GetState(uint64_t out[4]) const {
    for (int i = 0; i < 4; ++i) out[i] = state_[i];
  }

  /// Restores state captured by GetState. Returns false (leaving the
  /// generator untouched) for the all-zero state, which is not a valid
  /// xoshiro256** state and can only come from corrupt input.
  bool SetState(const uint64_t in[4]) {
    if ((in[0] | in[1] | in[2] | in[3]) == 0) return false;
    for (int i = 0; i < 4; ++i) state_[i] = in[i];
    return true;
  }

  uint64_t operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t UniformInt(uint64_t n) {
    // Lemire's nearly-divisionless bounded sampling.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < n) {
      uint64_t t = (~n + 1) % n;
      while (l < t) {
        x = Next();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return NextDouble() < p;
  }

  /// Standard normal via Box–Muller (no cached spare: keeps streams
  /// key-derivable without hidden state).
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    // Avoid log(0).
    u1 = u1 < 1e-300 ? 1e-300 : u1;
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Poisson draw. Uses Knuth's method for small lambda and a normal
  /// approximation above 30 (adequate for simulation workloads).
  int Poisson(double lambda) {
    if (lambda <= 0.0) return 0;
    if (lambda > 30.0) {
      double v = Gaussian(lambda, std::sqrt(lambda));
      return v < 0.0 ? 0 : static_cast<int>(v + 0.5);
    }
    const double limit = std::exp(-lambda);
    double prod = NextDouble();
    int n = 0;
    while (prod > limit) {
      prod *= NextDouble();
      ++n;
    }
    return n;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

/// Derives an independent Rng from a root seed and up to four stream keys.
/// Identical keys always yield identical streams.
inline Rng MakeStreamRng(uint64_t root_seed, uint64_t k1, uint64_t k2 = 0,
                         uint64_t k3 = 0, uint64_t k4 = 0) {
  uint64_t s = HashCombine(root_seed, k1);
  s = HashCombine(s, k2);
  s = HashCombine(s, k3);
  s = HashCombine(s, k4);
  return Rng(s);
}

}  // namespace vqe

#endif  // VQE_COMMON_RNG_H_
