// Small numeric helpers shared across modules: summary statistics,
// least-squares line fitting (used by LRBP), and clamping.

#ifndef VQE_COMMON_MATH_UTIL_H_
#define VQE_COMMON_MATH_UTIL_H_

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/status.h"

namespace vqe {

/// Clamps x into [lo, hi].
inline double Clamp(double x, double lo, double hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

/// True when |a - b| <= tol.
inline bool Near(double a, double b, double tol = 1e-9) {
  return std::fabs(a - b) <= tol;
}

/// Arithmetic mean; 0 for an empty vector.
double Mean(const std::vector<double>& xs);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
double SampleStdDev(const std::vector<double>& xs);

/// Minimum; +inf for an empty vector.
double Min(const std::vector<double>& xs);

/// Maximum; -inf for an empty vector.
double Max(const std::vector<double>& xs);

/// Summary of a sample: mean, sample stddev, min, max, count.
struct SampleSummary {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  size_t count = 0;
};

/// Computes all summary statistics in one pass over xs.
SampleSummary Summarize(const std::vector<double>& xs);

/// A fitted line y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination of the fit, in [0, 1].
  double r_squared = 0.0;

  double Predict(double x) const { return slope * x + intercept; }
};

/// Ordinary least squares fit of y on x.
///
/// Requires xs.size() == ys.size() and at least two distinct x values;
/// returns InvalidArgument otherwise.
Result<LinearFit> FitLine(const std::vector<double>& xs,
                          const std::vector<double>& ys);

}  // namespace vqe

#endif  // VQE_COMMON_MATH_UTIL_H_
