#include "query/executor.h"

#include <bit>
#include <cmath>
#include <limits>
#include <memory>

#include "common/stopwatch.h"
#include "snapshot/snapshot.h"
#include "snapshot/wire.h"
#include "common/strings.h"
#include "core/baselines.h"
#include "core/frame_eval.h"
#include "core/mes.h"
#include "core/mes_b.h"
#include "detection/ap.h"
#include "detection/frame_soa.h"
#include "fusion/iou_cache.h"
#include "models/model_zoo.h"
#include "query/parser.h"
#include "query/predicate.h"
#include "runtime/resilient_detector.h"
#include "sim/dataset.h"
#include "temporal/gate.h"
#include "track/tracker.h"

namespace vqe {

Status QueryEngineOptions::Validate() const {
  if (scene_scale <= 0.0 || scene_scale > 1.0) {
    return Status::InvalidArgument("scene_scale must be in (0, 1]");
  }
  if (gamma < 1) return Status::InvalidArgument("gamma must be >= 1");
  if (sw_window < 2) return Status::InvalidArgument("sw_window must be >= 2");
  VQE_RETURN_NOT_OK(sc.Validate());
  VQE_RETURN_NOT_OK(retry.Validate());
  VQE_RETURN_NOT_OK(breaker.Validate());
  for (const FaultScript& script : fault_scripts) {
    VQE_RETURN_NOT_OK(script.Validate());
  }
  VQE_RETURN_NOT_OK(checkpoint.Validate());
  VQE_RETURN_NOT_OK(skip.Validate());
  return matrix.Validate();
}

namespace {

// Section names of a query checkpoint (container format in
// snapshot/snapshot.h).
constexpr char kQueryMetaSection[] = "query.meta";
constexpr char kQueryCursorSection[] = "query.cursor";
constexpr char kQueryOutputSection[] = "query.output";
constexpr char kQueryStrategySection[] = "strategy";
constexpr char kQueryRuntimeSection[] = "runtime";
constexpr char kQueryTrackerSection[] = "tracker";
// Skip gate state (policy + propagation tracker); present only in
// skip-enabled runs. When the gate is enabled it owns the only tracker in
// the run, so the standalone tracker section is not written.
constexpr char kQueryTemporalSection[] = "temporal";

bool SameBits(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

/// The configuration fingerprint a query checkpoint was taken under.
/// Resuming under a different fingerprint would silently change the query's
/// output, so every determinism-affecting knob is compared exactly.
struct QueryRunIdentity {
  std::string strategy_name;  // canonical (upper-cased) USING name
  std::string video_name;
  int num_models = 0;
  uint64_t num_video_frames = 0;
  uint64_t stride = 1;
  uint64_t seed = 0;
  double scene_scale = 0.0;
  double budget_ms = 0.0;
  uint64_t limit = 0;
  ScoringFunction sc;
  uint64_t gamma = 0;
  uint64_t sw_window = 0;
  SkipOptions skip;

  Status ExpectMatches(const QueryRunIdentity& other) const {
    if (strategy_name != other.strategy_name ||
        video_name != other.video_name) {
      return Status::FailedPrecondition(
          "checkpoint belongs to a different query (strategy/video)");
    }
    if (num_models != other.num_models ||
        num_video_frames != other.num_video_frames ||
        stride != other.stride) {
      return Status::FailedPrecondition(
          "checkpoint pool/video shape differs from this query");
    }
    if (seed != other.seed || !SameBits(scene_scale, other.scene_scale)) {
      return Status::FailedPrecondition("checkpoint sampling seed differs");
    }
    if (!SameBits(budget_ms, other.budget_ms) || limit != other.limit) {
      return Status::FailedPrecondition("checkpoint budget/limit differs");
    }
    if (!SameBits(sc.w1, other.sc.w1) || !SameBits(sc.w2, other.sc.w2) ||
        sc.form != other.sc.form) {
      return Status::FailedPrecondition("checkpoint scoring function differs");
    }
    if (gamma != other.gamma || sw_window != other.sw_window) {
      return Status::FailedPrecondition("checkpoint bandit knobs differ");
    }
    return ExpectSkipOptionsMatch(skip, other.skip);
  }
};

void WriteQueryIdentity(ByteWriter& w, const QueryRunIdentity& id) {
  w.Str(id.strategy_name);
  w.Str(id.video_name);
  w.I64(id.num_models);
  w.U64(id.num_video_frames);
  w.U64(id.stride);
  w.U64(id.seed);
  w.F64(id.scene_scale);
  w.F64(id.budget_ms);
  w.U64(id.limit);
  w.F64(id.sc.w1);
  w.F64(id.sc.w2);
  w.U8(static_cast<uint8_t>(id.sc.form));
  w.U64(id.gamma);
  w.U64(id.sw_window);
  WriteSkipOptionsIdentity(w, id.skip);
}

Status ReadQueryIdentity(ByteReader& r, QueryRunIdentity* id) {
  int64_t num_models = 0;
  uint8_t form = 0;
  VQE_RETURN_NOT_OK(r.Str(&id->strategy_name));
  VQE_RETURN_NOT_OK(r.Str(&id->video_name));
  VQE_RETURN_NOT_OK(r.I64(&num_models));
  VQE_RETURN_NOT_OK(r.U64(&id->num_video_frames));
  VQE_RETURN_NOT_OK(r.U64(&id->stride));
  VQE_RETURN_NOT_OK(r.U64(&id->seed));
  VQE_RETURN_NOT_OK(r.F64(&id->scene_scale));
  VQE_RETURN_NOT_OK(r.F64(&id->budget_ms));
  VQE_RETURN_NOT_OK(r.U64(&id->limit));
  VQE_RETURN_NOT_OK(r.F64(&id->sc.w1));
  VQE_RETURN_NOT_OK(r.F64(&id->sc.w2));
  VQE_RETURN_NOT_OK(r.U8(&form));
  VQE_RETURN_NOT_OK(r.U64(&id->gamma));
  VQE_RETURN_NOT_OK(r.U64(&id->sw_window));
  VQE_RETURN_NOT_OK(ReadSkipOptionsIdentity(r, &id->skip));
  if (num_models < 1 || num_models > kMaxPoolSize) {
    return Status::DataLoss("query identity num_models out of range");
  }
  if (form > static_cast<uint8_t>(ScoreForm::kLinear)) {
    return Status::DataLoss("query identity score form out of range");
  }
  id->num_models = static_cast<int>(num_models);
  id->sc.form = static_cast<ScoreForm>(form);
  return Status::OK();
}

/// Serializes every QueryOutput accumulator except wall_seconds (wall
/// clock), model_names (reconstructed from the pool) and the per-invocation
/// CheckpointReport.
void WriteQueryOutput(ByteWriter& w, const QueryOutput& out) {
  w.U64(out.frame_ids.size());
  for (int64_t id : out.frame_ids) w.I64(id);
  w.U64(out.frames_processed);
  w.U64(out.frames_matched);
  w.F64(out.charged_cost_ms);
  w.F64(out.reference_cost_ms);
  WriteVecU64(w, out.selection_counts);
  w.U64(out.fallback_frames);
  w.U64(out.failed_frames);
  w.F64(out.fault_ms);
  WriteVecU64(w, out.model_failures);
  w.U64(out.skipped_frames);
  w.F64(out.tracker_ms);
}

Status ReadQueryOutput(ByteReader& r, QueryOutput* out) {
  uint64_t ids = 0, frames_processed = 0, frames_matched = 0, fallback = 0, failed = 0;
  VQE_RETURN_NOT_OK(r.U64(&ids));
  if (ids > r.remaining() / 8) {
    return Status::DataLoss("frame-id count exceeds payload");
  }
  out->frame_ids.clear();
  out->frame_ids.reserve(static_cast<size_t>(ids));
  for (uint64_t i = 0; i < ids; ++i) {
    int64_t id = 0;
    VQE_RETURN_NOT_OK(r.I64(&id));
    out->frame_ids.push_back(id);
  }
  VQE_RETURN_NOT_OK(r.U64(&frames_processed));
  VQE_RETURN_NOT_OK(r.U64(&frames_matched));
  VQE_RETURN_NOT_OK(r.F64(&out->charged_cost_ms));
  VQE_RETURN_NOT_OK(r.F64(&out->reference_cost_ms));
  VQE_RETURN_NOT_OK(ReadVecU64(r, &out->selection_counts));
  VQE_RETURN_NOT_OK(r.U64(&fallback));
  VQE_RETURN_NOT_OK(r.U64(&failed));
  VQE_RETURN_NOT_OK(r.F64(&out->fault_ms));
  VQE_RETURN_NOT_OK(ReadVecU64(r, &out->model_failures));
  uint64_t skipped = 0;
  VQE_RETURN_NOT_OK(r.U64(&skipped));
  VQE_RETURN_NOT_OK(r.F64(&out->tracker_ms));
  out->skipped_frames = static_cast<size_t>(skipped);
  out->frames_processed = static_cast<size_t>(frames_processed);
  out->frames_matched = static_cast<size_t>(frames_matched);
  out->fallback_frames = static_cast<size_t>(fallback);
  out->failed_frames = static_cast<size_t>(failed);
  return Status::OK();
}

/// Serializes the complete resumable state of a query run.
Result<std::vector<uint8_t>> BuildQuerySnapshot(
    const QueryRunIdentity& identity, size_t next_t, size_t next_iteration,
    const QueryOutput& out, const SelectionStrategy& strategy,
    const std::vector<ResilientDetector>& runtime, const IouTracker* tracker,
    const TemporalGate* gate) {
  SnapshotWriter snap;
  WriteQueryIdentity(snap.AddSection(kQueryMetaSection), identity);
  {
    ByteWriter& w = snap.AddSection(kQueryCursorSection);
    w.U64(next_t);
    w.U64(next_iteration);
  }
  WriteQueryOutput(snap.AddSection(kQueryOutputSection), out);
  VQE_RETURN_NOT_OK(strategy.SaveState(snap.AddSection(kQueryStrategySection)));
  {
    ByteWriter& w = snap.AddSection(kQueryRuntimeSection);
    w.U64(runtime.size());
    for (const ResilientDetector& d : runtime) {
      VQE_RETURN_NOT_OK(d.SaveState(w));
    }
  }
  if (tracker != nullptr) {
    VQE_RETURN_NOT_OK(
        tracker->SaveState(snap.AddSection(kQueryTrackerSection)));
  }
  if (gate != nullptr) {
    VQE_RETURN_NOT_OK(gate->SaveState(snap.AddSection(kQueryTemporalSection)));
  }
  return snap.Finish();
}

/// Overlays a validated snapshot onto a freshly initialized query run.
Status RestoreQueryRun(const SnapshotReader& snap,
                       const QueryRunIdentity& expected, uint32_t num_masks,
                       SelectionStrategy* strategy,
                       std::vector<ResilientDetector>* runtime,
                       IouTracker* tracker, TemporalGate* gate,
                       QueryOutput* out, size_t* next_t,
                       size_t* next_iteration) {
  VQE_ASSIGN_OR_RETURN(ByteReader meta, snap.Section(kQueryMetaSection));
  QueryRunIdentity saved;
  VQE_RETURN_NOT_OK(ReadQueryIdentity(meta, &saved));
  VQE_RETURN_NOT_OK(meta.ExpectEnd());
  VQE_RETURN_NOT_OK(saved.ExpectMatches(expected));

  VQE_ASSIGN_OR_RETURN(ByteReader cursor, snap.Section(kQueryCursorSection));
  uint64_t t = 0, iteration = 0;
  VQE_RETURN_NOT_OK(cursor.U64(&t));
  VQE_RETURN_NOT_OK(cursor.U64(&iteration));
  VQE_RETURN_NOT_OK(cursor.ExpectEnd());
  if (t >= expected.num_video_frames) {
    return Status::DataLoss("query checkpoint cursor beyond end of video");
  }

  VQE_ASSIGN_OR_RETURN(ByteReader res, snap.Section(kQueryOutputSection));
  QueryOutput restored;
  VQE_RETURN_NOT_OK(ReadQueryOutput(res, &restored));
  VQE_RETURN_NOT_OK(res.ExpectEnd());
  if (restored.selection_counts.size() != num_masks + 1 ||
      restored.model_failures.size() !=
          static_cast<size_t>(expected.num_models)) {
    return Status::DataLoss("query checkpoint output shape mismatch");
  }

  VQE_ASSIGN_OR_RETURN(ByteReader strat, snap.Section(kQueryStrategySection));
  VQE_RETURN_NOT_OK(strategy->RestoreState(strat));
  VQE_RETURN_NOT_OK(strat.ExpectEnd());

  VQE_ASSIGN_OR_RETURN(ByteReader rt, snap.Section(kQueryRuntimeSection));
  uint64_t runtime_count = 0;
  VQE_RETURN_NOT_OK(rt.U64(&runtime_count));
  if (runtime_count != runtime->size()) {
    return Status::DataLoss("query checkpoint runtime count mismatch");
  }
  for (ResilientDetector& d : *runtime) {
    VQE_RETURN_NOT_OK(d.RestoreState(rt));
  }
  VQE_RETURN_NOT_OK(rt.ExpectEnd());

  if (tracker != nullptr) {
    if (!snap.HasSection(kQueryTrackerSection)) {
      return Status::DataLoss(
          "query checkpoint is missing the tracker section");
    }
    VQE_ASSIGN_OR_RETURN(ByteReader trk, snap.Section(kQueryTrackerSection));
    VQE_RETURN_NOT_OK(tracker->RestoreState(trk));
    VQE_RETURN_NOT_OK(trk.ExpectEnd());
  }

  if (gate != nullptr) {
    if (!snap.HasSection(kQueryTemporalSection)) {
      return Status::DataLoss(
          "query checkpoint is missing the temporal section");
    }
    VQE_ASSIGN_OR_RETURN(ByteReader tmp, snap.Section(kQueryTemporalSection));
    VQE_RETURN_NOT_OK(gate->RestoreState(tmp));
    VQE_RETURN_NOT_OK(tmp.ExpectEnd());
  }

  // model_names and the per-invocation report are rebuilt by the caller.
  restored.model_names = std::move(out->model_names);
  restored.checkpoint = out->checkpoint;
  *out = std::move(restored);
  *next_t = static_cast<size_t>(t);
  *next_iteration = static_cast<size_t>(iteration);
  return Status::OK();
}

Result<std::unique_ptr<SelectionStrategy>> MakeStrategy(
    const Query& query, const QueryEngineOptions& options) {
  const UsingClause& clause = query.using_clause;
  const double budget_ms = query.budget_ms;
  const std::string name = ToUpper(clause.strategy);
  const bool needs_ref =
      name == "MES" || name == "MES-B" || name == "MES-A" || name == "SW-MES";
  if (needs_ref && !clause.has_reference) {
    return Status::InvalidArgument(
        clause.strategy + " requires a reference model: USING " +
        clause.strategy + "(...; REF)");
  }
  // WINDOW binds the sliding-window length λ — meaningless for strategies
  // without one, so reject instead of silently ignoring the clause.
  if (query.window > 0 && name != "SW-MES") {
    return Status::InvalidArgument(
        "WINDOW applies only to SW-MES; " + clause.strategy +
        " has no sliding window (at offset " +
        std::to_string(query.window_pos) + ")");
  }
  if (name == "MES") {
    MesOptions mes;
    mes.gamma = options.gamma;
    return std::unique_ptr<SelectionStrategy>(
        std::make_unique<MesStrategy>(mes));
  }
  if (name == "MES-B") {
    if (budget_ms <= 0.0) {
      return Status::InvalidArgument("MES-B requires a BUDGET clause");
    }
    MesBOptions mes_b;
    mes_b.gamma = options.gamma;
    return std::unique_ptr<SelectionStrategy>(
        std::make_unique<MesBStrategy>(mes_b));
  }
  if (name == "MES-A") {
    MesOptions mes;
    mes.gamma = options.gamma;
    mes.subset_updates = false;
    return std::unique_ptr<SelectionStrategy>(
        std::make_unique<MesStrategy>(mes));
  }
  if (name == "SW-MES") {
    SwMesOptions sw;
    sw.gamma = options.gamma;
    sw.window = query.window > 0 ? query.window : options.sw_window;
    sw.exploration_scale = 0.05;
    return std::unique_ptr<SelectionStrategy>(
        std::make_unique<SwMesStrategy>(sw));
  }
  if (name == "BF") {
    return std::unique_ptr<SelectionStrategy>(
        std::make_unique<BruteForceStrategy>());
  }
  if (name == "RAND") {
    return std::unique_ptr<SelectionStrategy>(
        std::make_unique<RandomStrategy>());
  }
  if (name == "EF") {
    return std::unique_ptr<SelectionStrategy>(
        std::make_unique<ExploreFirstStrategy>());
  }
  if (name == "OPT" || name == "SGL") {
    return Status::InvalidArgument(
        name + " is an offline oracle baseline and cannot run in a query");
  }
  return Status::NotFound("unknown strategy: " + clause.strategy);
}

/// Metric ids of the query executor (all kInvalidId when obs is off, so
/// every observation site is a guarded no-op).
struct QueryObsIds {
  MetricsRegistry::Id frames = MetricsRegistry::kInvalidId;
  MetricsRegistry::Id matched = MetricsRegistry::kInvalidId;
  MetricsRegistry::Id skipped = MetricsRegistry::kInvalidId;
  MetricsRegistry::Id failed = MetricsRegistry::kInvalidId;
  MetricsRegistry::Id fallback = MetricsRegistry::kInvalidId;
  MetricsRegistry::Id charged_ms = MetricsRegistry::kInvalidId;
  MetricsRegistry::Id reference_ms = MetricsRegistry::kInvalidId;
  MetricsRegistry::Id fault_ms = MetricsRegistry::kInvalidId;
  MetricsRegistry::Id model_failures = MetricsRegistry::kInvalidId;
  MetricsRegistry::Id frame_cost = MetricsRegistry::kInvalidId;
  MetricsRegistry::Id ckpt_writes = MetricsRegistry::kInvalidId;
  MetricsRegistry::Id ckpt_write_ms = MetricsRegistry::kInvalidId;
  MetricsRegistry::Id wall_ms = MetricsRegistry::kInvalidId;
};

QueryObsIds RegisterQueryObs(MetricsRegistry& reg) {
  QueryObsIds ids;
  const MetricDomain sim = MetricDomain::kSimulated;
  const MetricDomain wall = MetricDomain::kWall;
  ids.frames = reg.Counter("vqe_query_frames_total", sim, MetricUnit::kCount,
                           "Frames consumed by the query loop");
  ids.matched = reg.Counter("vqe_query_frames_matched_total", sim,
                            MetricUnit::kCount, "Frames passing WHERE");
  ids.skipped =
      reg.Counter("vqe_query_frames_skipped_total", sim, MetricUnit::kCount,
                  "Frames answered from tracker propagation");
  ids.failed =
      reg.Counter("vqe_query_frames_failed_total", sim, MetricUnit::kCount,
                  "Frames where every selected member failed");
  ids.fallback =
      reg.Counter("vqe_query_fallback_frames_total", sim, MetricUnit::kCount,
                  "Frames completed on a strict sub-mask of the selection");
  ids.charged_ms =
      reg.Counter("vqe_query_charged_cost_ms_total", sim, MetricUnit::kMs,
                  "Simulated inference cost charged (Eq. 12/14)");
  ids.reference_ms =
      reg.Counter("vqe_query_reference_ms_total", sim, MetricUnit::kMs,
                  "Simulated reference-model cost");
  ids.fault_ms =
      reg.Counter("vqe_query_fault_ms_total", sim, MetricUnit::kMs,
                  "Simulated time lost to faults");
  ids.model_failures =
      reg.Counter("vqe_query_model_call_failures_total", sim,
                  MetricUnit::kCount, "Per-model failed calls");
  ids.frame_cost = reg.Histogram(
      "vqe_query_frame_cost_ms", sim,
      {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0}, MetricUnit::kMs,
      "Per-frame simulated charged cost");
  ids.ckpt_writes =
      reg.Counter("vqe_query_checkpoint_writes_total", sim,
                  MetricUnit::kCount, "Snapshots durably written");
  ids.ckpt_write_ms =
      reg.Counter("vqe_query_checkpoint_write_ms_total", wall, MetricUnit::kMs,
                  "Wall-clock spent writing snapshots");
  ids.wall_ms = reg.Counter("vqe_query_wall_ms_total", wall, MetricUnit::kMs,
                            "Wall-clock of whole query executions");
  return ids;
}

}  // namespace

Result<QueryOutput> ExecuteQuery(const Query& query,
                                 const QueryEngineOptions& options) {
  VQE_RETURN_NOT_OK(options.Validate());
  VQE_RETURN_NOT_OK(ValidatePredicate(query.where.get()));

  // Observability registration happens once, up front (locks, may
  // allocate); the frame loop then only touches lock-free counters.
  const ObsHandle& obs = options.obs;
  QueryObsIds qobs;
  if (obs.metrics != nullptr) qobs = RegisterQueryObs(*obs.metrics);

  Stopwatch wall;

  // Resolve the input video.
  VQE_ASSIGN_OR_RETURN(const DatasetSpec* dataset,
                       DatasetCatalog::Default().Find(query.video_name));
  SampleOptions sample;
  sample.scene_scale =
      query.process.scale > 0.0 ? query.process.scale : options.scene_scale;
  sample.seed = query.process.seed > 0 ? query.process.seed : options.seed;
  VQE_ASSIGN_OR_RETURN(Video video, SampleVideo(*dataset, sample));
  const size_t stride = std::max<size_t>(query.process.stride, 1);

  // Resolve the detector pool.
  DetectorPool pool;
  if (query.using_clause.detector_names.empty()) {
    VQE_ASSIGN_OR_RETURN(pool, BuildPoolForDataset(dataset->name));
  } else {
    std::vector<DetectorProfile> profiles;
    for (const auto& det_name : query.using_clause.detector_names) {
      VQE_ASSIGN_OR_RETURN(DetectorProfile p, ParseDetectorName(det_name));
      profiles.push_back(std::move(p));
    }
    VQE_ASSIGN_OR_RETURN(pool, BuildPool(profiles));
  }
  if (!options.fault_scripts.empty()) {
    if (options.fault_scripts.size() != pool.detectors.size()) {
      return Status::InvalidArgument(
          "fault_scripts size must equal the pool size");
    }
    for (size_t i = 0; i < pool.detectors.size(); ++i) {
      pool.detectors[i] = std::make_unique<FaultInjectingDetector>(
          std::move(pool.detectors[i]), options.fault_scripts[i]);
    }
  }
  const int m = static_cast<int>(pool.size());
  const uint32_t num_masks = NumEnsembles(m);

  VQE_ASSIGN_OR_RETURN(auto strategy, MakeStrategy(query, options));
  VQE_ASSIGN_OR_RETURN(auto fusion,
                       CreateEnsembleMethod(options.matrix.fusion,
                                            options.matrix.fusion_options));

  StrategyContext ctx;
  ctx.num_models = m;
  ctx.num_frames = video.size();
  ctx.sc = options.sc;
  ctx.seed = options.seed;
  ctx.oracle = nullptr;  // queries run online: no ground truth exists
  strategy->BeginVideo(ctx);

  QueryOutput out;
  out.selection_counts.assign(num_masks + 1, 0);
  out.model_failures.assign(static_cast<size_t>(m), 0);
  for (const auto& d : pool.detectors) out.model_names.push_back(d->name());

  // The fault-tolerance stack: one ResilientDetector (retry + breaker) per
  // pool model. With the default policy and no fault scripts every call
  // succeeds on the first attempt, the breakers never leave closed, and the
  // execution is bit-identical to the pre-runtime path.
  std::vector<ResilientDetector> runtime;
  runtime.reserve(pool.detectors.size());
  for (const auto& d : pool.detectors) {
    runtime.emplace_back(d.get(), options.retry, options.breaker);
  }

  // Temporal predicates (TRACKS) need an online tracker over the fused
  // detections of the selected ensembles.
  const bool needs_tracks = PredicateUsesTracks(query.where.get());
  IouTracker tracker;

  // The temporal skip/detect gate. When enabled, its propagation tracker
  // is THE tracker of the run: TRACKS() predicates read it instead of the
  // standalone one, so detections are never tracked twice.
  std::unique_ptr<TemporalGate> gate;
  if (options.skip.enabled()) {
    VQE_ASSIGN_OR_RETURN(gate, TemporalGate::Create(options.skip));
  }
  IouTracker* standalone_tracker =
      (needs_tracks && gate == nullptr) ? &tracker : nullptr;

  std::vector<double> est_score(num_masks + 1);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<DetectionList> model_out(static_cast<size_t>(m));
  // Steady-state scratch for the per-frame subset-fusion loop: the input
  // span, the fused-output buffer FuseInto refills, and (when the fusion
  // method consumes it) the SoA store behind the pairwise-IoU tile. All
  // reused across frames so the serving loop stops allocating once these
  // have warmed up.
  std::vector<const DetectionList*> inputs;
  inputs.reserve(static_cast<size_t>(m));
  DetectionList fused;

  // Checkpointing: fingerprint the query configuration, then try to resume
  // from the newest good generation in the checkpoint directory.
  QueryRunIdentity identity;
  identity.strategy_name = ToUpper(query.using_clause.strategy);
  identity.video_name = query.video_name;
  identity.num_models = m;
  identity.num_video_frames = video.size();
  identity.stride = stride;
  identity.seed = sample.seed;
  identity.scene_scale = sample.scene_scale;
  identity.budget_ms = query.budget_ms;
  identity.limit = query.limit;
  identity.sc = options.sc;
  identity.gamma = options.gamma;
  // The fingerprint records the *effective* λ, so a checkpoint taken with
  // a WINDOW clause cannot resume under a different window.
  identity.sw_window = query.window > 0 ? query.window : options.sw_window;
  identity.skip = options.skip;

  size_t start_t = 0;
  size_t iteration = 0;
  uint64_t next_generation = 1;
  std::unique_ptr<CheckpointManager> ckpt;
  if (options.checkpoint.enabled()) {
    ckpt = std::make_unique<CheckpointManager>(
        options.checkpoint.directory, options.checkpoint.keep_generations);
    if (options.checkpoint.resume) {
      Result<CheckpointManager::Loaded> loaded = ckpt->LoadLatestGood();
      if (loaded.ok()) {
        out.checkpoint.generations_rejected = loaded->rejected;
        VQE_RETURN_NOT_OK(RestoreQueryRun(
            loaded->snapshot, identity, num_masks, strategy.get(), &runtime,
            standalone_tracker, gate.get(), &out, &start_t, &iteration));
        out.checkpoint.resumed = true;
        out.checkpoint.resumed_from_iteration = iteration;
        next_generation = loaded->sequence + 1;
      } else if (loaded.status().code() != StatusCode::kNotFound) {
        return loaded.status();
      }
    }
  }
  size_t frames_this_invocation = 0;

  // Simulated clock at the top of the current frame (per-frame span base
  // and cost-delta anchor for the epilogue's observations).
  double frame_sim0 = 0.0;

  // Shared per-frame epilogue — skipped or detected, failed or not, the
  // frame was consumed and the run state advanced, so it is a valid
  // checkpoint boundary.
  auto frame_epilogue = [&](size_t t) -> Status {
    ++out.frames_processed;
    ++frames_this_invocation;
    if (obs.enabled()) {
      const double frame_ms = out.charged_cost_ms - frame_sim0;
      obs.Count(qobs.frames);
      obs.CountMs(qobs.charged_ms, frame_ms);
      obs.Observe(qobs.frame_cost, frame_ms);
      obs.Span(MetricDomain::kSimulated, video.frames[t].frame_index,
               "query_frame", frame_sim0, frame_ms);
    }

    if (ckpt != nullptr &&
        out.frames_processed % options.checkpoint.every_frames == 0 &&
        t + stride < video.size()) {
      Stopwatch watch;
      VQE_ASSIGN_OR_RETURN(
          std::vector<uint8_t> bytes,
          BuildQuerySnapshot(identity, t + stride, iteration, out, *strategy,
                             runtime, standalone_tracker, gate.get()));
      VQE_RETURN_NOT_OK(ckpt->Write(next_generation, bytes));
      ++next_generation;
      ++out.checkpoint.snapshots_written;
      const double write_ms = watch.ElapsedMillis();
      out.checkpoint.checkpoint_write_ms += write_ms;
      obs.Count(qobs.ckpt_writes);
      obs.CountMs(qobs.ckpt_write_ms, write_ms);
    }

    // Crash injection for the resume tests (see CheckpointPolicy): abort
    // after any checkpoint due at this frame has been durably written.
    if (options.checkpoint.crash_after_frames > 0 &&
        frames_this_invocation >= options.checkpoint.crash_after_frames &&
        t + stride < video.size()) {
      return Status::Aborted("crash injection after query frame " +
                             std::to_string(t));
    }
    return Status::OK();
  };

  for (size_t t = start_t; t < video.size(); t += stride) {
    if (query.budget_ms > 0.0 && out.charged_cost_ms > query.budget_ms) break;
    if (query.limit > 0 && out.frames_matched >= query.limit) break;
    const VideoFrame& frame = video.frames[t];
    frame_sim0 = out.charged_cost_ms;

    // Temporal fast path: answer the frame from coasted tracks. No model
    // runs, no selection is made, and the strategy/breaker iteration clock
    // does not tick — the bandit's frame sequence is simply the detect
    // frames, with gaps where the gate skipped.
    if (gate != nullptr && gate->ShouldSkip(frame.context)) {
      const DetectionList& propagated = gate->Propagate();
      const double tracker_cost = SimulatedTrackerCostMs(propagated.size());
      out.charged_cost_ms += tracker_cost;
      out.tracker_ms += tracker_cost;
      std::vector<Track> active_tracks;
      if (needs_tracks) active_tracks = gate->tracker().ActiveConfirmed();
      if (EvaluatePredicate(query.where.get(), propagated,
                            needs_tracks ? &active_tracks : nullptr)) {
        out.frame_ids.push_back(frame.frame_index);
        ++out.frames_matched;
        obs.Count(qobs.matched);
      }
      ++out.skipped_frames;
      obs.Count(qobs.skipped);
      VQE_RETURN_NOT_OK(frame_epilogue(t));
      continue;
    }

    const size_t frame_t = iteration++;

    // Mask breaker-open models out of the candidate ensembles for this
    // frame. All-open degenerates to the full pool: the strategy must pick
    // something, and half-open probes are how breakers recover.
    EnsembleId healthy = 0;
    for (int i = 0; i < m; ++i) {
      if (runtime[static_cast<size_t>(i)].StateAt(frame_t) !=
          BreakerState::kOpen) {
        healthy |= Singleton(i);
      }
    }
    if (healthy == 0) healthy = FullEnsemble(m);
    strategy->SetEligibleModels(healthy);

    const EnsembleId selected = strategy->Select(frame_t);
    if (selected == 0 || selected > num_masks) {
      return Status::Internal("strategy selected an invalid ensemble");
    }

    // Run exactly the selected models (online behaviour).
    double frame_cost = 0.0;
    double full_cost_bound = 0.0;
    for (int i = 0; i < m; ++i) {
      // c_max normalization needs every model's cost; cost simulation is
      // free to query (a deployment would use calibrated per-model costs).
      full_cost_bound +=
          pool.detectors[static_cast<size_t>(i)]->InferenceCostMs(
              frame, options.seed);
    }
    std::vector<double> model_cost(static_cast<size_t>(m), 0.0);
    EnsembleId realized = 0;
    for (int i = 0; i < m; ++i) {
      if (!ContainsModel(selected, i)) {
        model_out[static_cast<size_t>(i)].clear();
        continue;
      }
      // The fault-tolerant call path: retries + deadline under the policy,
      // short-circuited at zero cost while the model's breaker is open.
      DetectorCallOutcome call =
          runtime[static_cast<size_t>(i)].Call(frame, options.seed, frame_t);
      out.fault_ms += call.fault_ms;
      obs.CountMs(qobs.fault_ms, call.fault_ms);
      frame_cost += call.charged_ms();
      if (call.ok()) {
        model_out[static_cast<size_t>(i)] = std::move(call.detections);
        model_cost[static_cast<size_t>(i)] = call.inference_ms;
        realized |= Singleton(i);
      } else {
        model_out[static_cast<size_t>(i)].clear();
        ++out.model_failures[static_cast<size_t>(i)];
        obs.Count(qobs.model_failures);
      }
    }

    if (realized == 0) {
      // Every selected member failed: the frame yields no detections, so
      // there is nothing to fuse, learn from, or match. The cost already
      // burnt (retries, error latency) is still charged; the tracker sees
      // an empty frame so stale tracks age out on schedule.
      out.charged_cost_ms += frame_cost;
      ++out.failed_frames;
      obs.Count(qobs.failed);
      if (gate != nullptr) {
        // The gate still observes the (empty) frame: stale tracks age out,
        // the open skip episode closes, and tracker time is charged.
        gate->ObserveDetections(DetectionList{}, frame.frame_index);
        const double tracker_cost = SimulatedTrackerCostMs(0);
        out.charged_cost_ms += tracker_cost;
        out.tracker_ms += tracker_cost;
      } else if (needs_tracks) {
        tracker.Update(DetectionList{}, frame.frame_index);
      }
    } else {
      if (realized != selected) {
        ++out.fallback_frames;
        obs.Count(qobs.fallback);
      }

      // Reference model (AP estimation) when the strategy learns from it.
      GroundTruthList ref_gt;
      if (strategy->UsesReferenceModel()) {
        const DetectionList ref_out =
            pool.reference->Detect(frame, options.seed);
        const double ref_ms =
            pool.reference->InferenceCostMs(frame, options.seed);
        out.reference_cost_ms += ref_ms;
        obs.CountMs(qobs.reference_ms, ref_ms);
        ref_gt = DetectionsAsGroundTruth(
            ref_out, options.matrix.ref_confidence_threshold);
      }

      // Fuse every subset of the *realized* ensemble (outputs are reused;
      // only the cheap box fusion re-runs) and estimate its reward — failed
      // members contribute nothing, so the realized sub-masks are the only
      // arms with honest observations. The subsets all fuse the same cached
      // boxes, so share one pairwise-IoU tile across them (model_out is
      // reused between frames: re-id every frame).
      est_score.assign(num_masks + 1, nan);
      DetectionList selected_fused;
      GroundTruthIndex ref_index;
      if (strategy->UsesReferenceModel()) {
        ref_index = BuildGroundTruthIndex(ref_gt);
      }
      const int num_ids = AssignFrameDetIds(model_out);
      const FrameSoA frame_soa(model_out, num_ids);
      PairwiseIouCache iou_tile;
      if (fusion->ConsumesIouCache()) {
        iou_tile = PairwiseIouCache(frame_soa);
      }
      ForEachSubset(realized, [&](EnsembleId sub) {
        inputs.clear();
        size_t boxes = 0;
        double cost = 0.0;
        for (int i = 0; i < m; ++i) {
          if (!ContainsModel(sub, i)) continue;
          const DetectionList& out_i = model_out[static_cast<size_t>(i)];
          inputs.push_back(&out_i);
          boxes += out_i.size();
          cost += model_cost[static_cast<size_t>(i)];
        }
        fusion->FuseInto(DetectionListSpan(inputs), &iou_tile, &frame_soa,
                         &fused);
        const double overhead = SimulatedFusionOverheadMs(boxes);
        frame_cost += overhead;
        cost += overhead;
        if (strategy->UsesReferenceModel()) {
          const double est_ap =
              FrameMeanAp(fused, ref_index, options.matrix.ap);
          const double full_bound = full_cost_bound + overhead;
          est_score[sub] = options.sc.Score(
              est_ap, full_bound > 0 ? cost / full_bound : 0.0);
        }
        if (sub == realized) selected_fused = fused;
      });
      out.charged_cost_ms += frame_cost;

      FrameFeedback feedback;
      feedback.t = frame_t;
      feedback.selected = selected;
      feedback.realized = realized;
      feedback.est_score = &est_score;
      strategy->Observe(feedback);

      if (gate != nullptr) {
        gate->ObserveDetections(selected_fused, frame.frame_index);
        const double tracker_cost =
            SimulatedTrackerCostMs(selected_fused.size());
        out.charged_cost_ms += tracker_cost;
        out.tracker_ms += tracker_cost;
      } else if (needs_tracks) {
        tracker.Update(selected_fused, frame.frame_index);
      }
      std::vector<Track> active_tracks;
      if (needs_tracks) {
        active_tracks = gate != nullptr ? gate->tracker().ActiveConfirmed()
                                        : tracker.ActiveConfirmed();
      }
      if (EvaluatePredicate(query.where.get(), selected_fused,
                            needs_tracks ? &active_tracks : nullptr)) {
        out.frame_ids.push_back(frame.frame_index);
        ++out.frames_matched;
        obs.Count(qobs.matched);
      }
    }

    ++out.selection_counts[selected];
    VQE_RETURN_NOT_OK(frame_epilogue(t));
  }

  out.wall_seconds = wall.ElapsedSeconds();
  if (obs.enabled()) {
    const double wall_ms = out.wall_seconds * 1000.0;
    obs.CountMs(qobs.wall_ms, wall_ms);
    obs.Span(MetricDomain::kWall, -1, "execute_query", 0.0, wall_ms);
  }
  return out;
}

Result<QueryOutput> ExecuteQuery(const std::string& sql,
                                 const QueryEngineOptions& options) {
  VQE_ASSIGN_OR_RETURN(Query query, ParseQuery(sql));
  return ExecuteQuery(query, options);
}

}  // namespace vqe
