#include "query/executor.h"

#include <cmath>
#include <limits>
#include <memory>

#include "common/stopwatch.h"
#include "common/strings.h"
#include "core/baselines.h"
#include "core/frame_eval.h"
#include "core/mes.h"
#include "core/mes_b.h"
#include "detection/ap.h"
#include "fusion/iou_cache.h"
#include "models/model_zoo.h"
#include "query/parser.h"
#include "query/predicate.h"
#include "runtime/resilient_detector.h"
#include "sim/dataset.h"
#include "track/tracker.h"

namespace vqe {

Status QueryEngineOptions::Validate() const {
  if (scene_scale <= 0.0 || scene_scale > 1.0) {
    return Status::InvalidArgument("scene_scale must be in (0, 1]");
  }
  if (gamma < 1) return Status::InvalidArgument("gamma must be >= 1");
  if (sw_window < 2) return Status::InvalidArgument("sw_window must be >= 2");
  VQE_RETURN_NOT_OK(sc.Validate());
  VQE_RETURN_NOT_OK(retry.Validate());
  VQE_RETURN_NOT_OK(breaker.Validate());
  for (const FaultScript& script : fault_scripts) {
    VQE_RETURN_NOT_OK(script.Validate());
  }
  return matrix.Validate();
}

namespace {

Result<std::unique_ptr<SelectionStrategy>> MakeStrategy(
    const UsingClause& clause, const QueryEngineOptions& options,
    double budget_ms) {
  const std::string name = ToUpper(clause.strategy);
  const bool needs_ref =
      name == "MES" || name == "MES-B" || name == "MES-A" || name == "SW-MES";
  if (needs_ref && !clause.has_reference) {
    return Status::InvalidArgument(
        clause.strategy + " requires a reference model: USING " +
        clause.strategy + "(...; REF)");
  }
  if (name == "MES") {
    MesOptions mes;
    mes.gamma = options.gamma;
    return std::unique_ptr<SelectionStrategy>(
        std::make_unique<MesStrategy>(mes));
  }
  if (name == "MES-B") {
    if (budget_ms <= 0.0) {
      return Status::InvalidArgument("MES-B requires a BUDGET clause");
    }
    MesBOptions mes_b;
    mes_b.gamma = options.gamma;
    return std::unique_ptr<SelectionStrategy>(
        std::make_unique<MesBStrategy>(mes_b));
  }
  if (name == "MES-A") {
    MesOptions mes;
    mes.gamma = options.gamma;
    mes.subset_updates = false;
    return std::unique_ptr<SelectionStrategy>(
        std::make_unique<MesStrategy>(mes));
  }
  if (name == "SW-MES") {
    SwMesOptions sw;
    sw.gamma = options.gamma;
    sw.window = options.sw_window;
    sw.exploration_scale = 0.05;
    return std::unique_ptr<SelectionStrategy>(
        std::make_unique<SwMesStrategy>(sw));
  }
  if (name == "BF") {
    return std::unique_ptr<SelectionStrategy>(
        std::make_unique<BruteForceStrategy>());
  }
  if (name == "RAND") {
    return std::unique_ptr<SelectionStrategy>(
        std::make_unique<RandomStrategy>());
  }
  if (name == "EF") {
    return std::unique_ptr<SelectionStrategy>(
        std::make_unique<ExploreFirstStrategy>());
  }
  if (name == "OPT" || name == "SGL") {
    return Status::InvalidArgument(
        name + " is an offline oracle baseline and cannot run in a query");
  }
  return Status::NotFound("unknown strategy: " + clause.strategy);
}

}  // namespace

Result<QueryOutput> ExecuteQuery(const Query& query,
                                 const QueryEngineOptions& options) {
  VQE_RETURN_NOT_OK(options.Validate());
  VQE_RETURN_NOT_OK(ValidatePredicate(query.where.get()));

  Stopwatch wall;

  // Resolve the input video.
  VQE_ASSIGN_OR_RETURN(const DatasetSpec* dataset,
                       DatasetCatalog::Default().Find(query.video_name));
  SampleOptions sample;
  sample.scene_scale =
      query.process.scale > 0.0 ? query.process.scale : options.scene_scale;
  sample.seed = query.process.seed > 0 ? query.process.seed : options.seed;
  VQE_ASSIGN_OR_RETURN(Video video, SampleVideo(*dataset, sample));
  const size_t stride = std::max<size_t>(query.process.stride, 1);

  // Resolve the detector pool.
  DetectorPool pool;
  if (query.using_clause.detector_names.empty()) {
    VQE_ASSIGN_OR_RETURN(pool, BuildPoolForDataset(dataset->name));
  } else {
    std::vector<DetectorProfile> profiles;
    for (const auto& det_name : query.using_clause.detector_names) {
      VQE_ASSIGN_OR_RETURN(DetectorProfile p, ParseDetectorName(det_name));
      profiles.push_back(std::move(p));
    }
    VQE_ASSIGN_OR_RETURN(pool, BuildPool(profiles));
  }
  if (!options.fault_scripts.empty()) {
    if (options.fault_scripts.size() != pool.detectors.size()) {
      return Status::InvalidArgument(
          "fault_scripts size must equal the pool size");
    }
    for (size_t i = 0; i < pool.detectors.size(); ++i) {
      pool.detectors[i] = std::make_unique<FaultInjectingDetector>(
          std::move(pool.detectors[i]), options.fault_scripts[i]);
    }
  }
  const int m = static_cast<int>(pool.size());
  const uint32_t num_masks = NumEnsembles(m);

  VQE_ASSIGN_OR_RETURN(
      auto strategy, MakeStrategy(query.using_clause, options,
                                  query.budget_ms));
  VQE_ASSIGN_OR_RETURN(auto fusion,
                       CreateEnsembleMethod(options.matrix.fusion,
                                            options.matrix.fusion_options));

  StrategyContext ctx;
  ctx.num_models = m;
  ctx.num_frames = video.size();
  ctx.sc = options.sc;
  ctx.seed = options.seed;
  ctx.oracle = nullptr;  // queries run online: no ground truth exists
  strategy->BeginVideo(ctx);

  QueryOutput out;
  out.selection_counts.assign(num_masks + 1, 0);
  out.model_failures.assign(static_cast<size_t>(m), 0);
  for (const auto& d : pool.detectors) out.model_names.push_back(d->name());

  // The fault-tolerance stack: one ResilientDetector (retry + breaker) per
  // pool model. With the default policy and no fault scripts every call
  // succeeds on the first attempt, the breakers never leave closed, and the
  // execution is bit-identical to the pre-runtime path.
  std::vector<ResilientDetector> runtime;
  runtime.reserve(pool.detectors.size());
  for (const auto& d : pool.detectors) {
    runtime.emplace_back(d.get(), options.retry, options.breaker);
  }

  // Temporal predicates (TRACKS) need an online tracker over the fused
  // detections of the selected ensembles.
  const bool needs_tracks = PredicateUsesTracks(query.where.get());
  IouTracker tracker;

  std::vector<double> est_score(num_masks + 1);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<DetectionList> model_out(static_cast<size_t>(m));

  size_t iteration = 0;
  for (size_t t = 0; t < video.size(); t += stride) {
    if (query.budget_ms > 0.0 && out.charged_cost_ms > query.budget_ms) break;
    if (query.limit > 0 && out.frames_matched >= query.limit) break;
    const VideoFrame& frame = video.frames[t];
    const size_t frame_t = iteration++;

    // Mask breaker-open models out of the candidate ensembles for this
    // frame. All-open degenerates to the full pool: the strategy must pick
    // something, and half-open probes are how breakers recover.
    EnsembleId healthy = 0;
    for (int i = 0; i < m; ++i) {
      if (runtime[static_cast<size_t>(i)].StateAt(frame_t) !=
          BreakerState::kOpen) {
        healthy |= Singleton(i);
      }
    }
    if (healthy == 0) healthy = FullEnsemble(m);
    strategy->SetEligibleModels(healthy);

    const EnsembleId selected = strategy->Select(frame_t);
    if (selected == 0 || selected > num_masks) {
      return Status::Internal("strategy selected an invalid ensemble");
    }

    // Run exactly the selected models (online behaviour).
    double frame_cost = 0.0;
    double full_cost_bound = 0.0;
    for (int i = 0; i < m; ++i) {
      // c_max normalization needs every model's cost; cost simulation is
      // free to query (a deployment would use calibrated per-model costs).
      full_cost_bound +=
          pool.detectors[static_cast<size_t>(i)]->InferenceCostMs(
              frame, options.seed);
    }
    std::vector<double> model_cost(static_cast<size_t>(m), 0.0);
    EnsembleId realized = 0;
    for (int i = 0; i < m; ++i) {
      if (!ContainsModel(selected, i)) {
        model_out[static_cast<size_t>(i)].clear();
        continue;
      }
      // The fault-tolerant call path: retries + deadline under the policy,
      // short-circuited at zero cost while the model's breaker is open.
      DetectorCallOutcome call =
          runtime[static_cast<size_t>(i)].Call(frame, options.seed, frame_t);
      out.fault_ms += call.fault_ms;
      frame_cost += call.charged_ms();
      if (call.ok()) {
        model_out[static_cast<size_t>(i)] = std::move(call.detections);
        model_cost[static_cast<size_t>(i)] = call.inference_ms;
        realized |= Singleton(i);
      } else {
        model_out[static_cast<size_t>(i)].clear();
        ++out.model_failures[static_cast<size_t>(i)];
      }
    }

    if (realized == 0) {
      // Every selected member failed: the frame yields no detections, so
      // there is nothing to fuse, learn from, or match. The cost already
      // burnt (retries, error latency) is still charged; the tracker sees
      // an empty frame so stale tracks age out on schedule.
      out.charged_cost_ms += frame_cost;
      ++out.failed_frames;
      ++out.selection_counts[selected];
      ++out.frames_processed;
      if (needs_tracks) tracker.Update(DetectionList{}, frame.frame_index);
      continue;
    }
    if (realized != selected) ++out.fallback_frames;

    // Reference model (AP estimation) when the strategy learns from it.
    GroundTruthList ref_gt;
    if (strategy->UsesReferenceModel()) {
      const DetectionList ref_out =
          pool.reference->Detect(frame, options.seed);
      out.reference_cost_ms +=
          pool.reference->InferenceCostMs(frame, options.seed);
      ref_gt = DetectionsAsGroundTruth(ref_out,
                                       options.matrix.ref_confidence_threshold);
    }

    // Fuse every subset of the *realized* ensemble (outputs are reused;
    // only the cheap box fusion re-runs) and estimate its reward — failed
    // members contribute nothing, so the realized sub-masks are the only
    // arms with honest observations. The subsets all fuse the same cached
    // boxes, so share one pairwise-IoU tile across them (model_out is
    // reused between frames: re-id every frame).
    est_score.assign(num_masks + 1, nan);
    DetectionList selected_fused;
    GroundTruthIndex ref_index;
    if (strategy->UsesReferenceModel()) ref_index = BuildGroundTruthIndex(ref_gt);
    PairwiseIouCache iou_tile;
    if (fusion->ConsumesIouCache()) {
      const int num_ids = AssignFrameDetIds(model_out);
      iou_tile = PairwiseIouCache(model_out, num_ids);
    }
    std::vector<const DetectionList*> inputs;
    inputs.reserve(static_cast<size_t>(m));
    ForEachSubset(realized, [&](EnsembleId sub) {
      inputs.clear();
      size_t boxes = 0;
      double cost = 0.0;
      for (int i = 0; i < m; ++i) {
        if (!ContainsModel(sub, i)) continue;
        const DetectionList& out_i = model_out[static_cast<size_t>(i)];
        inputs.push_back(&out_i);
        boxes += out_i.size();
        cost += model_cost[static_cast<size_t>(i)];
      }
      DetectionList fused = fusion->Fuse(DetectionListSpan(inputs), &iou_tile);
      const double overhead = SimulatedFusionOverheadMs(boxes);
      frame_cost += overhead;
      cost += overhead;
      if (strategy->UsesReferenceModel()) {
        const double est_ap = FrameMeanAp(fused, ref_index, options.matrix.ap);
        const double full_bound = full_cost_bound + overhead;
        est_score[sub] = options.sc.Score(
            est_ap, full_bound > 0 ? cost / full_bound : 0.0);
      }
      if (sub == realized) selected_fused = std::move(fused);
    });
    out.charged_cost_ms += frame_cost;

    FrameFeedback feedback;
    feedback.t = frame_t;
    feedback.selected = selected;
    feedback.realized = realized;
    feedback.est_score = &est_score;
    strategy->Observe(feedback);

    ++out.selection_counts[selected];
    ++out.frames_processed;
    std::vector<Track> active_tracks;
    if (needs_tracks) {
      tracker.Update(selected_fused, frame.frame_index);
      active_tracks = tracker.ActiveConfirmed();
    }
    if (EvaluatePredicate(query.where.get(), selected_fused,
                          needs_tracks ? &active_tracks : nullptr)) {
      out.frame_ids.push_back(frame.frame_index);
      ++out.frames_matched;
    }
  }

  out.wall_seconds = wall.ElapsedSeconds();
  return out;
}

Result<QueryOutput> ExecuteQuery(const std::string& sql,
                                 const QueryEngineOptions& options) {
  VQE_ASSIGN_OR_RETURN(Query query, ParseQuery(sql));
  return ExecuteQuery(query, options);
}

}  // namespace vqe
