// EXPLAIN support: renders a parsed query's logical plan — input video,
// detector pool, selection strategy, predicate tree — as indented text, for
// debugging queries and documenting what the executor will do.

#ifndef VQE_QUERY_EXPLAIN_H_
#define VQE_QUERY_EXPLAIN_H_

#include <string>

#include "query/ast.h"

namespace vqe {

/// Renders the predicate tree (parenthesized infix form). A null predicate
/// renders as "true".
std::string PredicateToString(const Predicate* pred);

/// Renders the full logical plan of a query.
///
/// Example:
///   Select frameID
///     Filter: (COUNT(car) >= 2 AND NOT EXISTS(bus))
///       Process video=nusc strategy=MES detectors=[...] ref=yes
std::string ExplainQuery(const Query& query);

}  // namespace vqe

#endif  // VQE_QUERY_EXPLAIN_H_
