// Tokenizer for the video-query dialect.

#ifndef VQE_QUERY_LEXER_H_
#define VQE_QUERY_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace vqe {

enum class TokenType {
  kIdentifier,  // keywords are identifiers, matched case-insensitively
  kNumber,
  kString,      // 'quoted'
  kLParen,
  kRParen,
  kComma,
  kSemicolon,
  kStar,
  kOperator,    // = != < <= > >=
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  double number = 0.0;
  /// Byte offset in the query string (for error messages).
  size_t position = 0;
};

/// Tokenizes a query string. Identifiers may contain [A-Za-z0-9_@.&-]
/// (detector names such as "yolov7-tiny@clear" and dataset names such as
/// "c&n" are single identifiers).
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace vqe

#endif  // VQE_QUERY_LEXER_H_
