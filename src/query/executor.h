// Streaming query executor: runs a parsed query end-to-end — samples the
// named dataset, builds the detector pool, and processes the video frame by
// frame exactly as a deployment would: the strategy picks an ensemble, only
// those models run, their outputs are fused, the reference model estimates
// AP for the bandit update, and the WHERE predicate filters the frame.
//
// Unlike the experiment engine (core/engine.h), which replays precomputed
// evaluation matrices for measurement, this executor is genuinely online:
// nothing about a frame is computed unless the selected ensemble needs it.

#ifndef VQE_QUERY_EXECUTOR_H_
#define VQE_QUERY_EXECUTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/ensemble_id.h"
#include "core/frame_matrix.h"
#include "core/scoring.h"
#include "obs/obs.h"
#include "query/ast.h"
#include "runtime/circuit_breaker.h"
#include "runtime/fault_injection.h"
#include "runtime/retry.h"
#include "snapshot/checkpoint.h"
#include "temporal/skip_policy.h"

namespace vqe {

/// Executor configuration (defaults mirror the experiment harness).
struct QueryEngineOptions {
  uint64_t seed = 1;
  /// Scale of the sampled dataset replica (1.0 = full Table 1/2 sizes).
  double scene_scale = 0.02;
  ScoringFunction sc;
  /// γ for MES-family strategies.
  size_t gamma = 10;
  /// λ for SW-MES.
  size_t sw_window = 450;
  MatrixOptions matrix;  // fusion method + AP options + REF threshold
  /// Per-call fault-tolerance policy for every pool detector (defaults:
  /// single attempt, no deadline — bit-identical to the pre-runtime path).
  RetryPolicy retry;
  /// Per-model circuit breakers on the frame clock; an open model is masked
  /// out of the strategy's candidate ensembles until it recovers.
  CircuitBreakerOptions breaker;
  /// When non-empty, must be index-aligned with the resolved pool; each
  /// detector is wrapped with its FaultScript (the reference model never
  /// is). Used to rehearse outages end-to-end through a live query.
  std::vector<FaultScript> fault_scripts;
  /// Crash-safe checkpointing of the whole query run (strategy state,
  /// per-model runtime stacks, tracker, output accumulators, cursor).
  /// Resumed queries produce bit-identical output (wall_seconds aside).
  CheckpointPolicy checkpoint;
  /// Temporal-coherence fast path: skipped frames are answered from
  /// tracker propagation and charge only simulated tracker time; the
  /// strategy/breaker iteration clock ticks only on detect frames. Default
  /// OFF — queries are then bit-identical to the pre-skip executor. When
  /// enabled alongside a TRACKS() predicate the gate's tracker doubles as
  /// the predicate tracker (exactly one tracker per run).
  SkipOptions skip;
  /// Observability sink. Disabled by default: no metrics, no tracing, no
  /// allocations in the frame loop, output bit-identical to a build that
  /// never heard of observability. When enabled the executor emits
  /// simulated-domain per-frame counters/spans (deterministic — queries
  /// are single-threaded) and wall-domain bookkeeping on the handle's
  /// track. Never serialized into checkpoints and absent from the resume
  /// identity fingerprint.
  ObsHandle obs;

  Status Validate() const;
};

/// Result of executing one query.
struct QueryOutput {
  /// frameIDs matching the WHERE clause, ascending.
  std::vector<int64_t> frame_ids;
  size_t frames_processed = 0;
  size_t frames_matched = 0;
  /// Simulated inference cost charged (Eq. 12/14), ms.
  double charged_cost_ms = 0.0;
  /// Simulated reference-model cost, ms.
  double reference_cost_ms = 0.0;
  /// Real wall-clock of the whole execution, seconds.
  double wall_seconds = 0.0;
  /// Ensemble selection counts, indexed by mask.
  std::vector<uint64_t> selection_counts;
  /// Pool model names, index-aligned with mask bits.
  std::vector<std::string> model_names;
  /// Frames completed on a strict sub-mask of the selection because some
  /// selected member failed (retries exhausted or breaker open).
  size_t fallback_frames = 0;
  /// Frames where every selected member failed: no detections, no bandit
  /// update, and the WHERE predicate is not evaluated.
  size_t failed_frames = 0;
  /// Simulated time lost to faults (error latency, failed retries, backoff).
  double fault_ms = 0.0;
  /// Per-model failed calls (retries exhausted or breaker short-circuit),
  /// index-aligned with model_names.
  std::vector<uint64_t> model_failures;
  /// Frames answered from tracker propagation instead of detector
  /// inference (counted inside frames_processed, never selection_counts).
  size_t skipped_frames = 0;
  /// Simulated tracker time charged by the temporal fast path, ms
  /// (already included in charged_cost_ms).
  double tracker_ms = 0.0;

  /// What checkpointing did during THIS invocation (never serialized into
  /// snapshots — wall-clock and resume bookkeeping legitimately differ
  /// between a resumed and an uninterrupted run).
  struct CheckpointReport {
    bool resumed = false;
    /// Frame-clock iteration this invocation resumed at.
    size_t resumed_from_iteration = 0;
    uint64_t snapshots_written = 0;
    /// Corrupt/truncated generations skipped while locating the newest
    /// good one.
    int generations_rejected = 0;
    /// Real wall-clock spent serializing + durably writing snapshots, ms.
    double checkpoint_write_ms = 0.0;
  };
  CheckpointReport checkpoint;
};

/// Parses and executes a query string.
Result<QueryOutput> ExecuteQuery(const std::string& sql,
                                 const QueryEngineOptions& options = {});

/// Executes an already-parsed query.
Result<QueryOutput> ExecuteQuery(const Query& query,
                                 const QueryEngineOptions& options = {});

}  // namespace vqe

#endif  // VQE_QUERY_EXECUTOR_H_
