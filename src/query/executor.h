// Streaming query executor: runs a parsed query end-to-end — samples the
// named dataset, builds the detector pool, and processes the video frame by
// frame exactly as a deployment would: the strategy picks an ensemble, only
// those models run, their outputs are fused, the reference model estimates
// AP for the bandit update, and the WHERE predicate filters the frame.
//
// Unlike the experiment engine (core/engine.h), which replays precomputed
// evaluation matrices for measurement, this executor is genuinely online:
// nothing about a frame is computed unless the selected ensemble needs it.

#ifndef VQE_QUERY_EXECUTOR_H_
#define VQE_QUERY_EXECUTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/ensemble_id.h"
#include "core/frame_matrix.h"
#include "core/scoring.h"
#include "query/ast.h"

namespace vqe {

/// Executor configuration (defaults mirror the experiment harness).
struct QueryEngineOptions {
  uint64_t seed = 1;
  /// Scale of the sampled dataset replica (1.0 = full Table 1/2 sizes).
  double scene_scale = 0.02;
  ScoringFunction sc;
  /// γ for MES-family strategies.
  size_t gamma = 10;
  /// λ for SW-MES.
  size_t sw_window = 450;
  MatrixOptions matrix;  // fusion method + AP options + REF threshold

  Status Validate() const;
};

/// Result of executing one query.
struct QueryOutput {
  /// frameIDs matching the WHERE clause, ascending.
  std::vector<int64_t> frame_ids;
  size_t frames_processed = 0;
  size_t frames_matched = 0;
  /// Simulated inference cost charged (Eq. 12/14), ms.
  double charged_cost_ms = 0.0;
  /// Simulated reference-model cost, ms.
  double reference_cost_ms = 0.0;
  /// Real wall-clock of the whole execution, seconds.
  double wall_seconds = 0.0;
  /// Ensemble selection counts, indexed by mask.
  std::vector<uint64_t> selection_counts;
  /// Pool model names, index-aligned with mask bits.
  std::vector<std::string> model_names;
};

/// Parses and executes a query string.
Result<QueryOutput> ExecuteQuery(const std::string& sql,
                                 const QueryEngineOptions& options = {});

/// Executes an already-parsed query.
Result<QueryOutput> ExecuteQuery(const Query& query,
                                 const QueryEngineOptions& options = {});

}  // namespace vqe

#endif  // VQE_QUERY_EXECUTOR_H_
