#include "query/explain.h"

#include "common/strings.h"

namespace vqe {

namespace {

const char* AggregateName(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kCount:
      return "COUNT";
    case AggregateKind::kExists:
      return "EXISTS";
    case AggregateKind::kMaxConf:
      return "MAX_CONF";
    case AggregateKind::kAvgConf:
      return "AVG_CONF";
    case AggregateKind::kTracks:
      return "TRACKS";
  }
  return "?";
}

const char* OpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::string NumberToString(double v) {
  // Integers without the trailing ".000000".
  if (v == static_cast<double>(static_cast<long long>(v))) {
    return std::to_string(static_cast<long long>(v));
  }
  return StrFormat("%g", v);
}

}  // namespace

std::string PredicateToString(const Predicate* pred) {
  if (pred == nullptr) return "true";
  switch (pred->type) {
    case Predicate::Type::kComparison: {
      std::string agg = std::string(AggregateName(pred->aggregate.kind)) +
                        "(" + pred->aggregate.class_name + ")";
      if (pred->aggregate.kind == AggregateKind::kExists) return agg;
      return agg + " " + OpName(pred->op) + " " + NumberToString(pred->value);
    }
    case Predicate::Type::kNot:
      return "NOT " + PredicateToString(pred->lhs.get());
    case Predicate::Type::kAnd:
      return "(" + PredicateToString(pred->lhs.get()) + " AND " +
             PredicateToString(pred->rhs.get()) + ")";
    case Predicate::Type::kOr:
      return "(" + PredicateToString(pred->lhs.get()) + " OR " +
             PredicateToString(pred->rhs.get()) + ")";
  }
  return "?";
}

std::string ExplainQuery(const Query& query) {
  std::string out;
  out += "Select " + query.select_column + "\n";
  std::string indent = "  ";
  if (query.limit > 0) {
    out += indent + "Limit: " + std::to_string(query.limit) + "\n";
    indent += "  ";
  }
  if (query.where != nullptr) {
    out += indent + "Filter: " + PredicateToString(query.where.get()) + "\n";
    indent += "  ";
  }
  out += indent + "Process video=" + query.video_name;
  if (query.process.scale > 0.0) {
    out += " scale=" + NumberToString(query.process.scale);
  }
  if (query.process.seed > 0) {
    out += " seed=" + std::to_string(query.process.seed);
  }
  if (query.process.stride > 1) {
    out += " stride=" + std::to_string(query.process.stride);
  }
  out += " strategy=" + query.using_clause.strategy;
  if (query.using_clause.detector_names.empty()) {
    out += " detectors=[default pool]";
  } else {
    out += " detectors=[" + Join(query.using_clause.detector_names, ", ") +
           "]";
  }
  out += std::string(" ref=") +
         (query.using_clause.has_reference ? "yes" : "no");
  if (query.budget_ms > 0) {
    out += " budget=" + NumberToString(query.budget_ms) + "ms";
  }
  if (query.window > 0) {
    out += " window=" + std::to_string(query.window);
  }
  out += "\n";
  return out;
}

}  // namespace vqe
