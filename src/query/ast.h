// Abstract syntax for the paper's video-query dialect (§1):
//
//   SELECT frameID
//   FROM (PROCESS nusc PRODUCE frameID, Detections
//         USING MES(yolov7-tiny@clear, yolov7-tiny@night; REF))
//   WHERE COUNT(car) >= 2 AND NOT EXISTS(bus)
//   LIMIT 100
//
// The PROCESS clause names the input video and the detector ensemble
// machinery; the WHERE clause filters frames on their fused detections.

#ifndef VQE_QUERY_AST_H_
#define VQE_QUERY_AST_H_

#include <memory>
#include <string>
#include <vector>

namespace vqe {

/// Per-frame aggregate over the fused detections.
enum class AggregateKind {
  kCount,    // COUNT(class): detections of the class
  kExists,   // EXISTS(class): 1 when any detection of the class is present
  kMaxConf,  // MAX_CONF(class): highest confidence (0 when absent)
  kAvgConf,  // AVG_CONF(class): mean confidence (0 when absent)
  kTracks,   // TRACKS(class): confirmed tracks of the class active now
};

/// An aggregate term, e.g. COUNT(car). Class "*" matches every label.
struct AggregateExpr {
  AggregateKind kind = AggregateKind::kCount;
  std::string class_name = "*";
  /// Detections below this confidence are ignored by the aggregate.
  double min_confidence = 0.25;
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Boolean predicate tree over one frame's detections.
struct Predicate {
  enum class Type { kComparison, kAnd, kOr, kNot };

  Type type = Type::kComparison;
  // kComparison:
  AggregateExpr aggregate;
  CompareOp op = CompareOp::kGe;
  double value = 0.0;
  // kAnd / kOr: both children; kNot: lhs only.
  std::unique_ptr<Predicate> lhs;
  std::unique_ptr<Predicate> rhs;
};

/// Optional PROCESS-clause modifiers.
struct ProcessOptions {
  /// Replica scale of the sampled dataset; 0 = use the engine default.
  double scale = 0.0;
  /// Sampling seed; 0 = use the engine default.
  uint64_t seed = 0;
  /// Process every stride-th frame (frame skipping, the orthogonal
  /// optimization of the paper's §3.2 references [16, 41]). Must be >= 1.
  size_t stride = 1;
};

/// The USING clause: selection strategy plus its detector pool.
struct UsingClause {
  /// Strategy name: MES, MES-B, SW-MES, MES-A, BF, RAND, EF.
  std::string strategy = "MES";
  /// Detector names resolved against the model zoo ("structure@context").
  /// Empty means "the default pool for the video's dataset".
  std::vector<std::string> detector_names;
  /// True when the clause names REF after ';' (required by MES variants).
  bool has_reference = false;
};

/// A parsed query.
struct Query {
  /// Projected column; the dialect supports frameID.
  std::string select_column = "frameID";
  /// Input video: a dataset name from the catalog.
  std::string video_name;
  ProcessOptions process;
  UsingClause using_clause;
  /// Null when the query has no WHERE clause (all frames match).
  std::unique_ptr<Predicate> where;
  /// Max rows to return; 0 = unlimited.
  size_t limit = 0;
  /// Optional TCVI budget in ms (BUDGET <number>); 0 = unrestricted.
  double budget_ms = 0.0;
  /// Optional sliding-window length λ (WINDOW <n>); 0 = clause absent.
  /// Maps onto SW-MES's window; every other strategy rejects it.
  size_t window = 0;
  /// Byte offset of the WINDOW keyword in the query string (error
  /// attribution when the clause is paired with a non-SW strategy).
  size_t window_pos = 0;
};

}  // namespace vqe

#endif  // VQE_QUERY_AST_H_
