#include "query/lexer.h"

#include <cctype>
#include <cstdlib>

namespace vqe {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '@' ||
         c == '.' || c == '&' || c == '-';
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.position = i;
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(input[j])) ++j;
      tok.type = TokenType::kIdentifier;
      tok.text = input.substr(i, j - i);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t j = i;
      while (j < n && (std::isdigit(static_cast<unsigned char>(input[j])) ||
                       input[j] == '.')) {
        ++j;
      }
      tok.type = TokenType::kNumber;
      tok.text = input.substr(i, j - i);
      tok.number = std::strtod(tok.text.c_str(), nullptr);
      i = j;
    } else if (c == '\'') {
      size_t j = i + 1;
      while (j < n && input[j] != '\'') ++j;
      if (j >= n) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(i));
      }
      tok.type = TokenType::kString;
      tok.text = input.substr(i + 1, j - i - 1);
      i = j + 1;
    } else if (c == '(') {
      tok.type = TokenType::kLParen;
      tok.text = "(";
      ++i;
    } else if (c == ')') {
      tok.type = TokenType::kRParen;
      tok.text = ")";
      ++i;
    } else if (c == ',') {
      tok.type = TokenType::kComma;
      tok.text = ",";
      ++i;
    } else if (c == ';') {
      tok.type = TokenType::kSemicolon;
      tok.text = ";";
      ++i;
    } else if (c == '*') {
      tok.type = TokenType::kStar;
      tok.text = "*";
      ++i;
    } else if (c == '=' || c == '<' || c == '>' || c == '!') {
      size_t j = i + 1;
      if (j < n && input[j] == '=') ++j;
      tok.type = TokenType::kOperator;
      tok.text = input.substr(i, j - i);
      if (tok.text == "!") {
        return Status::ParseError("unexpected '!' at offset " +
                                  std::to_string(i) + " (did you mean !=?)");
      }
      i = j;
    } else {
      return Status::ParseError(std::string("unexpected character '") + c +
                                "' at offset " + std::to_string(i));
    }
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace vqe
