// Recursive-descent parser for the video-query dialect; see ast.h for the
// grammar's shape and executor.h for evaluation.

#ifndef VQE_QUERY_PARSER_H_
#define VQE_QUERY_PARSER_H_

#include <string>

#include "common/status.h"
#include "query/ast.h"

namespace vqe {

/// Parses a query string into an AST. Keywords are case-insensitive.
///
/// Grammar (informal):
///   query    := SELECT frameID FROM '(' process ')' [WHERE pred]
///               [BUDGET number] [LIMIT number]
///   process  := PROCESS source [SCALE number] [SEED number]
///               [STRIDE number] PRODUCE frameID ',' Detections USING using
///   using    := name '(' models [';' REF] ')'
///   models   := '*' | name (',' name)*
///   pred     := conj (OR conj)*
///   conj     := unary (AND unary)*
///   unary    := NOT unary | '(' pred ')' | cmp
///   cmp      := agg op number | EXISTS '(' class ')'
///   agg      := (COUNT | MAX_CONF | AVG_CONF) '(' class ')'
///   class    := '*' | name | string
Result<Query> ParseQuery(const std::string& input);

}  // namespace vqe

#endif  // VQE_QUERY_PARSER_H_
