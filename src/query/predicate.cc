#include "query/predicate.h"

#include <algorithm>

#include "sim/object_classes.h"

namespace vqe {

Status ValidatePredicate(const Predicate* pred) {
  if (pred == nullptr) return Status::OK();
  switch (pred->type) {
    case Predicate::Type::kComparison: {
      if (pred->aggregate.class_name != "*") {
        VQE_ASSIGN_OR_RETURN(ClassId id,
                             ClassIdFromName(pred->aggregate.class_name));
        (void)id;
      }
      return Status::OK();
    }
    case Predicate::Type::kNot:
      if (pred->lhs == nullptr) {
        return Status::InvalidArgument("NOT node has no operand");
      }
      return ValidatePredicate(pred->lhs.get());
    case Predicate::Type::kAnd:
    case Predicate::Type::kOr:
      if (pred->lhs == nullptr || pred->rhs == nullptr) {
        return Status::InvalidArgument("binary predicate missing operand");
      }
      VQE_RETURN_NOT_OK(ValidatePredicate(pred->lhs.get()));
      return ValidatePredicate(pred->rhs.get());
  }
  return Status::Internal("unhandled predicate type");
}

bool PredicateUsesTracks(const Predicate* pred) {
  if (pred == nullptr) return false;
  switch (pred->type) {
    case Predicate::Type::kComparison:
      return pred->aggregate.kind == AggregateKind::kTracks;
    case Predicate::Type::kNot:
      return PredicateUsesTracks(pred->lhs.get());
    case Predicate::Type::kAnd:
    case Predicate::Type::kOr:
      return PredicateUsesTracks(pred->lhs.get()) ||
             PredicateUsesTracks(pred->rhs.get());
  }
  return false;
}

double EvaluateAggregate(const AggregateExpr& agg, const DetectionList& dets,
                         const std::vector<Track>* tracks) {
  const bool any_class = agg.class_name == "*";
  ClassId cls = -1;
  if (!any_class) {
    auto id = ClassIdFromName(agg.class_name);
    if (!id.ok()) return 0.0;  // unknown class matches nothing
    cls = *id;
  }

  if (agg.kind == AggregateKind::kTracks) {
    if (tracks == nullptr) return 0.0;
    size_t n = 0;
    for (const Track& t : *tracks) {
      if (any_class || t.label == cls) ++n;
    }
    return static_cast<double>(n);
  }

  size_t count = 0;
  double max_conf = 0.0;
  double conf_sum = 0.0;
  for (const auto& d : dets) {
    if (d.confidence < agg.min_confidence) continue;
    if (!any_class && d.label != cls) continue;
    ++count;
    max_conf = std::max(max_conf, d.confidence);
    conf_sum += d.confidence;
  }

  switch (agg.kind) {
    case AggregateKind::kCount:
      return static_cast<double>(count);
    case AggregateKind::kExists:
      return count > 0 ? 1.0 : 0.0;
    case AggregateKind::kMaxConf:
      return max_conf;
    case AggregateKind::kAvgConf:
      return count > 0 ? conf_sum / static_cast<double>(count) : 0.0;
    case AggregateKind::kTracks:
      return 0.0;  // handled above
  }
  return 0.0;
}

namespace {

bool Compare(double lhs, CompareOp op, double rhs) {
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

}  // namespace

bool EvaluatePredicate(const Predicate* pred, const DetectionList& dets,
                       const std::vector<Track>* tracks) {
  if (pred == nullptr) return true;
  switch (pred->type) {
    case Predicate::Type::kComparison:
      return Compare(EvaluateAggregate(pred->aggregate, dets, tracks),
                     pred->op, pred->value);
    case Predicate::Type::kNot:
      return !EvaluatePredicate(pred->lhs.get(), dets, tracks);
    case Predicate::Type::kAnd:
      return EvaluatePredicate(pred->lhs.get(), dets, tracks) &&
             EvaluatePredicate(pred->rhs.get(), dets, tracks);
    case Predicate::Type::kOr:
      return EvaluatePredicate(pred->lhs.get(), dets, tracks) ||
             EvaluatePredicate(pred->rhs.get(), dets, tracks);
  }
  return false;
}

}  // namespace vqe
