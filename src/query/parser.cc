#include "query/parser.h"

#include "common/strings.h"
#include "query/lexer.h"

namespace vqe {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> Parse() {
    Query q;
    VQE_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    VQE_ASSIGN_OR_RETURN(q.select_column, ExpectIdentifier("column name"));
    if (ToLower(q.select_column) != "frameid") {
      return Error("only frameID can be selected, got '" + q.select_column +
                   "'");
    }
    VQE_RETURN_NOT_OK(ExpectKeyword("FROM"));
    VQE_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
    VQE_RETURN_NOT_OK(ParseProcess(&q));
    VQE_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));

    if (AcceptKeyword("WHERE")) {
      VQE_ASSIGN_OR_RETURN(q.where, ParsePredicate());
    }
    if (AcceptKeyword("BUDGET")) {
      VQE_ASSIGN_OR_RETURN(q.budget_ms, ExpectNumber("budget"));
      if (q.budget_ms <= 0) return Error("BUDGET must be positive");
    }
    // WINDOW binds λ of SW-MES. Whether the strategy accepts it is an
    // executor decision (kInvalidArgument there, not a parse error), so
    // remember where the keyword sat for that diagnostic.
    const size_t window_kw_pos = Peek().position;
    if (AcceptKeyword("WINDOW")) {
      VQE_ASSIGN_OR_RETURN(double win, ExpectNumber("window"));
      if (win < 2) return Error("WINDOW must be >= 2");
      q.window = static_cast<size_t>(win);
      q.window_pos = window_kw_pos;
    }
    if (AcceptKeyword("LIMIT")) {
      VQE_ASSIGN_OR_RETURN(double lim, ExpectNumber("limit"));
      if (lim < 1) return Error("LIMIT must be >= 1");
      q.limit = static_cast<size_t>(lim);
    }
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing token '" + Peek().text + "'");
    }
    return q;
  }

 private:
  Status ParseProcess(Query* q) {
    VQE_RETURN_NOT_OK(ExpectKeyword("PROCESS"));
    VQE_ASSIGN_OR_RETURN(q->video_name, ExpectNameOrString("video name"));
    while (true) {
      if (AcceptKeyword("SCALE")) {
        VQE_ASSIGN_OR_RETURN(q->process.scale, ExpectNumber("scale"));
        if (q->process.scale <= 0.0 || q->process.scale > 1.0) {
          return Error("SCALE must be in (0, 1]");
        }
      } else if (AcceptKeyword("SEED")) {
        VQE_ASSIGN_OR_RETURN(double seed, ExpectNumber("seed"));
        if (seed < 1) return Error("SEED must be >= 1");
        q->process.seed = static_cast<uint64_t>(seed);
      } else if (AcceptKeyword("STRIDE")) {
        VQE_ASSIGN_OR_RETURN(double stride, ExpectNumber("stride"));
        if (stride < 1) return Error("STRIDE must be >= 1");
        q->process.stride = static_cast<size_t>(stride);
      } else {
        break;
      }
    }
    VQE_RETURN_NOT_OK(ExpectKeyword("PRODUCE"));
    VQE_ASSIGN_OR_RETURN(std::string col1, ExpectIdentifier("frameID"));
    if (ToLower(col1) != "frameid") {
      return Error("PRODUCE must start with frameID");
    }
    VQE_RETURN_NOT_OK(Expect(TokenType::kComma, "','"));
    VQE_ASSIGN_OR_RETURN(std::string col2, ExpectIdentifier("Detections"));
    if (ToLower(col2) != "detections") {
      return Error("PRODUCE's second column must be Detections");
    }
    VQE_RETURN_NOT_OK(ExpectKeyword("USING"));
    VQE_ASSIGN_OR_RETURN(q->using_clause.strategy,
                         ExpectIdentifier("strategy name"));
    VQE_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
    if (Peek().type == TokenType::kStar) {
      Advance();  // '*': default pool
    } else {
      VQE_ASSIGN_OR_RETURN(std::string first,
                           ExpectNameOrString("detector name"));
      q->using_clause.detector_names.push_back(std::move(first));
      while (Peek().type == TokenType::kComma) {
        Advance();
        VQE_ASSIGN_OR_RETURN(std::string next,
                             ExpectNameOrString("detector name"));
        q->using_clause.detector_names.push_back(std::move(next));
      }
    }
    if (Peek().type == TokenType::kSemicolon) {
      Advance();
      VQE_ASSIGN_OR_RETURN(std::string ref, ExpectIdentifier("REF"));
      if (ToUpper(ref) != "REF") {
        return Error("expected REF after ';', got '" + ref + "'");
      }
      q->using_clause.has_reference = true;
    }
    return Expect(TokenType::kRParen, "')'");
  }

  Result<std::unique_ptr<Predicate>> ParsePredicate() {
    VQE_ASSIGN_OR_RETURN(auto lhs, ParseConjunction());
    while (AcceptKeyword("OR")) {
      VQE_ASSIGN_OR_RETURN(auto rhs, ParseConjunction());
      auto node = std::make_unique<Predicate>();
      node->type = Predicate::Type::kOr;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<std::unique_ptr<Predicate>> ParseConjunction() {
    VQE_ASSIGN_OR_RETURN(auto lhs, ParseUnary());
    while (AcceptKeyword("AND")) {
      VQE_ASSIGN_OR_RETURN(auto rhs, ParseUnary());
      auto node = std::make_unique<Predicate>();
      node->type = Predicate::Type::kAnd;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<std::unique_ptr<Predicate>> ParseUnary() {
    if (AcceptKeyword("NOT")) {
      VQE_ASSIGN_OR_RETURN(auto inner, ParseUnary());
      auto node = std::make_unique<Predicate>();
      node->type = Predicate::Type::kNot;
      node->lhs = std::move(inner);
      return node;
    }
    if (Peek().type == TokenType::kLParen) {
      Advance();
      VQE_ASSIGN_OR_RETURN(auto inner, ParsePredicate());
      VQE_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      return inner;
    }
    return ParseComparison();
  }

  Result<std::unique_ptr<Predicate>> ParseComparison() {
    VQE_ASSIGN_OR_RETURN(std::string fn, ExpectIdentifier("aggregate"));
    const std::string fname = ToUpper(fn);
    auto node = std::make_unique<Predicate>();
    node->type = Predicate::Type::kComparison;
    if (fname == "COUNT") {
      node->aggregate.kind = AggregateKind::kCount;
    } else if (fname == "EXISTS") {
      node->aggregate.kind = AggregateKind::kExists;
    } else if (fname == "MAX_CONF") {
      node->aggregate.kind = AggregateKind::kMaxConf;
    } else if (fname == "AVG_CONF") {
      node->aggregate.kind = AggregateKind::kAvgConf;
    } else if (fname == "TRACKS") {
      node->aggregate.kind = AggregateKind::kTracks;
    } else {
      return Error("unknown aggregate '" + fn + "'");
    }
    VQE_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
    if (Peek().type == TokenType::kStar) {
      Advance();
      node->aggregate.class_name = "*";
    } else {
      VQE_ASSIGN_OR_RETURN(node->aggregate.class_name,
                           ExpectNameOrString("object class"));
    }
    VQE_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));

    if (node->aggregate.kind == AggregateKind::kExists) {
      // EXISTS(cls) desugars to COUNT-style truthiness: >= 1 match.
      node->op = CompareOp::kGe;
      node->value = 1.0;
      return node;
    }
    VQE_ASSIGN_OR_RETURN(node->op, ExpectOperator());
    VQE_ASSIGN_OR_RETURN(node->value, ExpectNumber("comparison value"));
    return node;
  }

  // --- token helpers -------------------------------------------------------

  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() { ++pos_; }

  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " (at offset " +
                              std::to_string(Peek().position) + ")");
  }

  Status Expect(TokenType type, const std::string& what) {
    if (Peek().type != type) {
      return Error("expected " + what + ", got '" + Peek().text + "'");
    }
    Advance();
    return Status::OK();
  }

  bool AcceptKeyword(const std::string& kw) {
    if (Peek().type == TokenType::kIdentifier && ToUpper(Peek().text) == kw) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectKeyword(const std::string& kw) {
    if (!AcceptKeyword(kw)) {
      return Error("expected " + kw + ", got '" + Peek().text + "'");
    }
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier(const std::string& what) {
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected " + what + ", got '" + Peek().text + "'");
    }
    std::string text = Peek().text;
    Advance();
    return text;
  }

  Result<std::string> ExpectNameOrString(const std::string& what) {
    if (Peek().type == TokenType::kIdentifier ||
        Peek().type == TokenType::kString) {
      std::string text = Peek().text;
      Advance();
      return text;
    }
    return Error("expected " + what + ", got '" + Peek().text + "'");
  }

  Result<double> ExpectNumber(const std::string& what) {
    if (Peek().type != TokenType::kNumber) {
      return Error("expected " + what + ", got '" + Peek().text + "'");
    }
    double v = Peek().number;
    Advance();
    return v;
  }

  Result<CompareOp> ExpectOperator() {
    if (Peek().type != TokenType::kOperator) {
      return Error("expected comparison operator, got '" + Peek().text + "'");
    }
    const std::string& op = Peek().text;
    CompareOp out;
    if (op == "=" || op == "==") {
      out = CompareOp::kEq;
    } else if (op == "!=") {
      out = CompareOp::kNe;
    } else if (op == "<") {
      out = CompareOp::kLt;
    } else if (op == "<=") {
      out = CompareOp::kLe;
    } else if (op == ">") {
      out = CompareOp::kGt;
    } else if (op == ">=") {
      out = CompareOp::kGe;
    } else {
      return Error("unknown operator '" + op + "'");
    }
    Advance();
    return out;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> ParseQuery(const std::string& input) {
  VQE_ASSIGN_OR_RETURN(auto tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace vqe
