// Predicate evaluation: aggregates over one frame's fused detections.

#ifndef VQE_QUERY_PREDICATE_H_
#define VQE_QUERY_PREDICATE_H_

#include "common/status.h"
#include "detection/detection.h"
#include "query/ast.h"
#include "track/tracker.h"

namespace vqe {

/// Validates a predicate tree: known class names and well-formed nodes.
/// Class "*" is always valid.
Status ValidatePredicate(const Predicate* pred);

/// True when any comparison in the tree uses the TRACKS aggregate (the
/// executor then maintains a tracker for the query).
bool PredicateUsesTracks(const Predicate* pred);

/// Evaluates an aggregate over the detections (class names resolved via the
/// driving vocabulary; "*" matches all labels). TRACKS aggregates count
/// confirmed active tracks in `tracks` (0 when tracks is null).
double EvaluateAggregate(const AggregateExpr& agg, const DetectionList& dets,
                         const std::vector<Track>* tracks = nullptr);

/// Evaluates the predicate over one frame's detections (and, for TRACKS
/// aggregates, the frame's confirmed active tracks). A null predicate
/// matches every frame.
bool EvaluatePredicate(const Predicate* pred, const DetectionList& dets,
                       const std::vector<Track>* tracks = nullptr);

}  // namespace vqe

#endif  // VQE_QUERY_PREDICATE_H_
