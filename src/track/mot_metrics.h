// CLEAR-MOT style evaluation of tracker output against ground truth:
// misses, false positives, identity switches and the aggregate MOTA score
// (Bernardin & Stiefelhagen's protocol, simplified to IoU gating). Used to
// validate the tracker substrate and by the track-analytics tooling.

#ifndef VQE_TRACK_MOT_METRICS_H_
#define VQE_TRACK_MOT_METRICS_H_

#include <cstdint>
#include <vector>

#include "detection/detection.h"
#include "track/tracker.h"

namespace vqe {

/// Aggregate CLEAR-MOT counts over a sequence.
struct MotMetrics {
  /// Ground-truth object instances over all frames (the denominator).
  size_t num_gt = 0;
  /// GT instances with no matched track (false negatives).
  size_t misses = 0;
  /// Track instances with no matched GT (false positives).
  size_t false_positives = 0;
  /// Frames where a GT object's matched track id changed.
  size_t id_switches = 0;
  /// Matched pairs over all frames.
  size_t matches = 0;
  /// Sum of IoU over matched pairs (for MOTP).
  double iou_sum = 0.0;

  /// MOTA = 1 − (misses + FPs + ID switches) / num_gt. Can be negative.
  double Mota() const {
    if (num_gt == 0) return matches == 0 && false_positives == 0 ? 1.0 : 0.0;
    return 1.0 - static_cast<double>(misses + false_positives + id_switches) /
                     static_cast<double>(num_gt);
  }

  /// MOTP = mean IoU of matched pairs (higher is better here; some papers
  /// report 1 − IoU).
  double Motp() const {
    return matches == 0 ? 0.0 : iou_sum / static_cast<double>(matches);
  }
};

/// One frame's tracker output for evaluation: the confirmed tracks active
/// on that frame.
using TrackFrame = std::vector<Track>;

/// Evaluates per-frame track output against per-frame ground truth.
///
/// Matching per frame is greedy best-IoU with the given gate, same-class
/// only, each side matched at most once. Identity switches are counted when
/// a GT object (by object_id) is matched to a different track_id than in
/// its previous matched frame. Inputs must be index-aligned.
MotMetrics EvaluateMot(const std::vector<TrackFrame>& tracks_per_frame,
                       const std::vector<GroundTruthList>& gt_per_frame,
                       double iou_gate = 0.5);

}  // namespace vqe

#endif  // VQE_TRACK_MOT_METRICS_H_
