#include "track/tracker.h"

#include <algorithm>
#include <numeric>

namespace vqe {

Status TrackerOptions::Validate() const {
  if (iou_threshold <= 0.0 || iou_threshold > 1.0) {
    return Status::InvalidArgument("iou_threshold must be in (0, 1]");
  }
  if (max_missed < 0) {
    return Status::InvalidArgument("max_missed must be >= 0");
  }
  if (min_hits < 1) {
    return Status::InvalidArgument("min_hits must be >= 1");
  }
  if (min_confidence < 0.0 || min_confidence > 1.0) {
    return Status::InvalidArgument("min_confidence must be in [0, 1]");
  }
  return Status::OK();
}

IouTracker::IouTracker(TrackerOptions options) : options_(options) {}

void IouTracker::Reset() {
  tracks_.clear();
  finished_.clear();
  next_id_ = 1;
}

namespace {

void SaveTrack(ByteWriter& w, const Track& t) {
  w.I64(t.track_id);
  w.I64(t.label);
  w.F64(t.box.x1);
  w.F64(t.box.y1);
  w.F64(t.box.x2);
  w.F64(t.box.y2);
  w.F64(t.confidence);
  w.I64(t.hits);
  w.I64(t.missed);
  w.I64(t.first_frame);
  w.I64(t.last_frame);
  w.F64(t.vx);
  w.F64(t.vy);
}

Status RestoreTrack(ByteReader& r, Track* t) {
  int64_t label, hits, missed;
  VQE_RETURN_NOT_OK(r.I64(&t->track_id));
  VQE_RETURN_NOT_OK(r.I64(&label));
  VQE_RETURN_NOT_OK(r.F64(&t->box.x1));
  VQE_RETURN_NOT_OK(r.F64(&t->box.y1));
  VQE_RETURN_NOT_OK(r.F64(&t->box.x2));
  VQE_RETURN_NOT_OK(r.F64(&t->box.y2));
  VQE_RETURN_NOT_OK(r.F64(&t->confidence));
  VQE_RETURN_NOT_OK(r.I64(&hits));
  VQE_RETURN_NOT_OK(r.I64(&missed));
  VQE_RETURN_NOT_OK(r.I64(&t->first_frame));
  VQE_RETURN_NOT_OK(r.I64(&t->last_frame));
  VQE_RETURN_NOT_OK(r.F64(&t->vx));
  VQE_RETURN_NOT_OK(r.F64(&t->vy));
  if (t->track_id < 1) return Status::DataLoss("track id out of range");
  if (hits < 0 || missed < 0) return Status::DataLoss("track counters negative");
  t->label = static_cast<ClassId>(label);
  t->hits = static_cast<int>(hits);
  t->missed = static_cast<int>(missed);
  return Status::OK();
}

Status RestoreTrackList(ByteReader& r, std::vector<Track>* out) {
  uint64_t n = 0;
  VQE_RETURN_NOT_OK(r.U64(&n));
  // Each track is 13 fixed 8-byte fields on the wire.
  if (n > r.remaining() / (13 * 8)) {
    return Status::DataLoss("track count exceeds payload");
  }
  out->clear();
  out->reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    Track t;
    VQE_RETURN_NOT_OK(RestoreTrack(r, &t));
    out->push_back(t);
  }
  return Status::OK();
}

}  // namespace

Status IouTracker::SaveState(ByteWriter& writer) const {
  writer.I64(next_id_);
  writer.U64(tracks_.size());
  for (const Track& t : tracks_) SaveTrack(writer, t);
  writer.U64(finished_.size());
  for (const Track& t : finished_) SaveTrack(writer, t);
  return Status::OK();
}

Status IouTracker::RestoreState(ByteReader& reader) {
  int64_t next_id = 0;
  std::vector<Track> tracks, finished;
  VQE_RETURN_NOT_OK(reader.I64(&next_id));
  if (next_id < 1) return Status::DataLoss("tracker next_id out of range");
  VQE_RETURN_NOT_OK(RestoreTrackList(reader, &tracks));
  VQE_RETURN_NOT_OK(RestoreTrackList(reader, &finished));
  next_id_ = next_id;
  tracks_ = std::move(tracks);
  finished_ = std::move(finished);
  return Status::OK();
}

void IouTracker::CoastOne() {
  for (Track& t : tracks_) {
    t.box = BBox{t.box.x1 + t.vx, t.box.y1 + t.vy, t.box.x2 + t.vx,
                 t.box.y2 + t.vy};
  }
}

const std::vector<Track>& IouTracker::Update(const DetectionList& detections,
                                             int64_t frame_index) {
  last_stats_ = TrackerUpdateStats{};
  // 1. Predict: advance every track by its velocity estimate.
  std::vector<BBox> predicted(tracks_.size());
  for (size_t i = 0; i < tracks_.size(); ++i) {
    const Track& t = tracks_[i];
    predicted[i] = BBox{t.box.x1 + t.vx, t.box.y1 + t.vy, t.box.x2 + t.vx,
                        t.box.y2 + t.vy};
  }

  // 2. Associate greedily: detections in confidence order claim the best
  // unclaimed same-class track by predicted-box IoU.
  std::vector<size_t> order(detections.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return detections[a].confidence > detections[b].confidence;
  });

  std::vector<bool> track_claimed(tracks_.size(), false);
  std::vector<bool> det_used(detections.size(), false);
  for (size_t det_idx : order) {
    const Detection& det = detections[det_idx];
    if (det.confidence < options_.min_confidence) continue;
    double best_iou = options_.iou_threshold;
    int best_track = -1;
    for (size_t i = 0; i < tracks_.size(); ++i) {
      if (track_claimed[i]) continue;
      if (tracks_[i].label != det.label) continue;
      const double iou = IoU(predicted[i], det.box);
      if (iou >= best_iou) {
        best_iou = iou;
        best_track = static_cast<int>(i);
      }
    }
    if (best_track < 0) continue;
    track_claimed[static_cast<size_t>(best_track)] = true;
    det_used[det_idx] = true;
    ++last_stats_.matched;

    Track& t = tracks_[static_cast<size_t>(best_track)];
    // Velocity from consecutive associations (EMA for stability).
    const double new_vx = det.box.cx() - t.box.cx();
    const double new_vy = det.box.cy() - t.box.cy();
    t.vx = 0.5 * t.vx + 0.5 * new_vx;
    t.vy = 0.5 * t.vy + 0.5 * new_vy;
    t.box = det.box;
    t.confidence = det.confidence;
    ++t.hits;
    t.missed = 0;
    t.last_frame = frame_index;
  }

  // 3. Age unmatched tracks; retire the stale ones.
  std::vector<Track> survivors;
  survivors.reserve(tracks_.size() + detections.size());
  for (size_t i = 0; i < tracks_.size(); ++i) {
    Track& t = tracks_[i];
    if (!track_claimed[i]) {
      ++t.missed;
      ++last_stats_.unmatched;
      t.box = predicted[i];  // coast on the predicted position
      if (t.missed > options_.max_missed) {
        finished_.push_back(t);
        ++last_stats_.retired;
        continue;
      }
    }
    survivors.push_back(t);
  }

  // 4. Birth new tracks from unmatched confident detections.
  for (size_t det_idx = 0; det_idx < detections.size(); ++det_idx) {
    if (det_used[det_idx]) continue;
    const Detection& det = detections[det_idx];
    if (det.confidence < options_.min_confidence) continue;
    Track t;
    t.track_id = next_id_++;
    t.label = det.label;
    t.box = det.box;
    t.confidence = det.confidence;
    t.hits = 1;
    t.missed = 0;
    t.first_frame = frame_index;
    t.last_frame = frame_index;
    survivors.push_back(t);
    ++last_stats_.births;
  }

  tracks_ = std::move(survivors);
  return tracks_;
}

std::vector<Track> IouTracker::ActiveConfirmed() const {
  std::vector<Track> out;
  for (const Track& t : tracks_) {
    if (t.IsConfirmed(options_) && t.UpdatedThisFrame()) out.push_back(t);
  }
  return out;
}

}  // namespace vqe
